// pdpa_batch — run the full evaluation grid (workloads x loads x policies)
// and emit one CSV row per (cell, application class), ready for plotting.
//
// Usage:
//   pdpa_batch                          # the paper's full grid to stdout
//   pdpa_batch --workloads w1,w3 --loads 0.6,1.0 --policies equip,pdpa
//   pdpa_batch --seed 7 --untuned
//   pdpa_batch --events_out ev_ --timeseries_out ts_   # per-cell recordings
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/flags.h"
#include "src/common/logging.h"
#include "src/common/strings.h"
#include "src/obs/counters.h"
#include "src/obs/event_log.h"
#include "src/obs/timeseries.h"
#include "src/workload/experiment.h"

namespace pdpa {
namespace {

// Short id for filenames ("w1"), without the descriptive suffix that
// WorkloadName adds ("w1(swim+bt)" would put parentheses in paths).
const char* ShortWorkloadName(WorkloadId id) {
  switch (id) {
    case WorkloadId::kW1:
      return "w1";
    case WorkloadId::kW2:
      return "w2";
    case WorkloadId::kW3:
      return "w3";
    case WorkloadId::kW4:
      return "w4";
  }
  return "w";
}

int Run(int argc, char** argv) {
  FlagSet flags = FlagSet::Parse(argc - 1, argv + 1);

  const std::string log_level = flags.GetString("log_level", "warning");
  LogLevel level = LogLevel::kWarning;
  if (!ParseLogLevel(log_level, &level)) {
    std::fprintf(stderr, "unknown --log_level %s\n", log_level.c_str());
    return 2;
  }
  SetLogLevel(level);

  std::vector<WorkloadId> workloads;
  for (const std::string& token :
       SplitTokens(flags.GetString("workloads", "w1,w2,w3,w4"), ',')) {
    if (token == "w1") {
      workloads.push_back(WorkloadId::kW1);
    } else if (token == "w2") {
      workloads.push_back(WorkloadId::kW2);
    } else if (token == "w3") {
      workloads.push_back(WorkloadId::kW3);
    } else if (token == "w4") {
      workloads.push_back(WorkloadId::kW4);
    } else {
      std::fprintf(stderr, "unknown workload %s\n", token.c_str());
      return 2;
    }
  }
  std::vector<double> loads;
  for (const std::string& token : SplitTokens(flags.GetString("loads", "0.6,0.8,1.0"), ',')) {
    double load = 0;
    if (!ParseDouble(token, &load) || load <= 0) {
      std::fprintf(stderr, "bad load %s\n", token.c_str());
      return 2;
    }
    loads.push_back(load);
  }
  std::vector<PolicyKind> policies;
  for (const std::string& token :
       SplitTokens(flags.GetString("policies", "irix,equip,equal_eff,pdpa"), ',')) {
    if (token == "irix") {
      policies.push_back(PolicyKind::kIrix);
    } else if (token == "equip") {
      policies.push_back(PolicyKind::kEquipartition);
    } else if (token == "equal_eff") {
      policies.push_back(PolicyKind::kEqualEfficiency);
    } else if (token == "pdpa") {
      policies.push_back(PolicyKind::kPdpa);
    } else if (token == "dynamic") {
      policies.push_back(PolicyKind::kMcCannDynamic);
    } else {
      std::fprintf(stderr, "unknown policy %s\n", token.c_str());
      return 2;
    }
  }
  const std::uint64_t seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  const bool untuned = flags.GetBool("untuned", false);

  // Flight-recorder prefixes: each grid cell writes
  // <prefix><workload>_<load>_<policy>.jsonl / .csv.
  const std::string events_prefix = flags.GetString("events_out", "");
  const std::string timeseries_prefix = flags.GetString("timeseries_out", "");
  const bool want_counters = flags.GetBool("counters", false);

  for (const std::string& unknown : flags.UnconsumedFlags()) {
    std::fprintf(stderr, "unknown flag --%s\n", unknown.c_str());
    return 2;
  }

  std::printf(
      "workload,load,policy,class,jobs,avg_response_s,p50_response_s,p95_response_s,"
      "avg_exec_s,avg_wait_s,avg_cpus,makespan_s,max_ml,reallocations,completed\n");
  for (WorkloadId workload : workloads) {
    for (double load : loads) {
      for (PolicyKind policy : policies) {
        ExperimentConfig config;
        config.workload = workload;
        config.load = load;
        config.policy = policy;
        config.seed = seed;
        config.untuned = untuned;

        const std::string cell = StrFormat("%s_%.2f_%s", ShortWorkloadName(workload), load,
                                           PolicyKindName(policy));
        std::ofstream events_stream;
        if (!events_prefix.empty()) {
          const std::string path = events_prefix + cell + ".jsonl";
          events_stream.open(path);
          if (!events_stream) {
            std::fprintf(stderr, "cannot open %s\n", path.c_str());
            return 2;
          }
        }
        EventLog events(events_prefix.empty() ? nullptr : &events_stream);
        if (events.enabled()) {
          config.event_log = &events;
        }
        TimeSeriesSampler timeseries;
        if (!timeseries_prefix.empty()) {
          config.timeseries = &timeseries;
        }

        const ExperimentResult r = RunExperiment(config);
        for (const auto& [app_class, m] : r.metrics.per_class) {
          std::printf("%s,%.2f,%s,%s,%d,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f,%d,%lld,%d\n",
                      WorkloadName(workload), load, r.policy_name.c_str(),
                      AppClassName(app_class), m.count, m.avg_response_s, m.p50_response_s,
                      m.p95_response_s, m.avg_exec_s, m.avg_wait_s, m.avg_alloc,
                      r.metrics.makespan_s, r.max_ml, r.reallocations, r.completed ? 1 : 0);
        }
        if (!timeseries_prefix.empty()) {
          const std::string path = timeseries_prefix + cell + ".csv";
          std::ofstream out(path);
          if (!out) {
            std::fprintf(stderr, "cannot open %s\n", path.c_str());
            return 2;
          }
          timeseries.WriteCsv(out);
        }
      }
    }
  }
  if (want_counters) {
    std::fprintf(stderr, "\ncounters (whole grid):\n%s",
                 Registry::Default().Snapshot().ToString().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace pdpa

int main(int argc, char** argv) { return pdpa::Run(argc, argv); }
