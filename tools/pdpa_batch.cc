// pdpa_batch — run the full evaluation grid (workloads x loads x policies)
// and emit one CSV row per (cell, application class), ready for plotting.
//
// Usage:
//   pdpa_batch                          # the paper's full grid to stdout
//   pdpa_batch --workloads w1,w3 --loads 0.6,1.0 --policies equip,pdpa
//   pdpa_batch --seed 7 --untuned
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/flags.h"
#include "src/common/strings.h"
#include "src/workload/experiment.h"

namespace pdpa {
namespace {

int Run(int argc, char** argv) {
  FlagSet flags = FlagSet::Parse(argc - 1, argv + 1);

  std::vector<WorkloadId> workloads;
  for (const std::string& token :
       SplitTokens(flags.GetString("workloads", "w1,w2,w3,w4"), ',')) {
    if (token == "w1") {
      workloads.push_back(WorkloadId::kW1);
    } else if (token == "w2") {
      workloads.push_back(WorkloadId::kW2);
    } else if (token == "w3") {
      workloads.push_back(WorkloadId::kW3);
    } else if (token == "w4") {
      workloads.push_back(WorkloadId::kW4);
    } else {
      std::fprintf(stderr, "unknown workload %s\n", token.c_str());
      return 2;
    }
  }
  std::vector<double> loads;
  for (const std::string& token : SplitTokens(flags.GetString("loads", "0.6,0.8,1.0"), ',')) {
    double load = 0;
    if (!ParseDouble(token, &load) || load <= 0) {
      std::fprintf(stderr, "bad load %s\n", token.c_str());
      return 2;
    }
    loads.push_back(load);
  }
  std::vector<PolicyKind> policies;
  for (const std::string& token :
       SplitTokens(flags.GetString("policies", "irix,equip,equal_eff,pdpa"), ',')) {
    if (token == "irix") {
      policies.push_back(PolicyKind::kIrix);
    } else if (token == "equip") {
      policies.push_back(PolicyKind::kEquipartition);
    } else if (token == "equal_eff") {
      policies.push_back(PolicyKind::kEqualEfficiency);
    } else if (token == "pdpa") {
      policies.push_back(PolicyKind::kPdpa);
    } else if (token == "dynamic") {
      policies.push_back(PolicyKind::kMcCannDynamic);
    } else {
      std::fprintf(stderr, "unknown policy %s\n", token.c_str());
      return 2;
    }
  }
  const std::uint64_t seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  const bool untuned = flags.GetBool("untuned", false);

  for (const std::string& unknown : flags.UnconsumedFlags()) {
    std::fprintf(stderr, "unknown flag --%s\n", unknown.c_str());
    return 2;
  }

  std::printf(
      "workload,load,policy,class,jobs,avg_response_s,p50_response_s,p95_response_s,"
      "avg_exec_s,avg_wait_s,avg_cpus,makespan_s,max_ml,reallocations,completed\n");
  for (WorkloadId workload : workloads) {
    for (double load : loads) {
      for (PolicyKind policy : policies) {
        ExperimentConfig config;
        config.workload = workload;
        config.load = load;
        config.policy = policy;
        config.seed = seed;
        config.untuned = untuned;
        const ExperimentResult r = RunExperiment(config);
        for (const auto& [app_class, m] : r.metrics.per_class) {
          std::printf("%s,%.2f,%s,%s,%d,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f,%d,%lld,%d\n",
                      WorkloadName(workload), load, r.policy_name.c_str(),
                      AppClassName(app_class), m.count, m.avg_response_s, m.p50_response_s,
                      m.p95_response_s, m.avg_exec_s, m.avg_wait_s, m.avg_alloc,
                      r.metrics.makespan_s, r.max_ml, r.reallocations, r.completed ? 1 : 0);
        }
      }
    }
  }
  return 0;
}

}  // namespace
}  // namespace pdpa

int main(int argc, char** argv) { return pdpa::Run(argc, argv); }
