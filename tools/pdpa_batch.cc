// pdpa_batch — run the full evaluation grid (workloads x loads x policies x
// seeds) and emit one CSV row per (cell, application class), ready for
// plotting. Cells run concurrently on a worker pool (--jobs); output is in
// deterministic grid order, byte-identical to a serial run.
//
// Usage:
//   pdpa_batch                          # the paper's full grid to stdout
//   pdpa_batch --workloads w1,w3 --loads 0.6,1.0 --policies equip,pdpa
//   pdpa_batch --seed 7 --untuned
//   pdpa_batch --seeds 8 --jobs 8       # 8 replicas per cell, 8 workers
//   pdpa_batch --events_out ev_ --timeseries_out ts_   # per-cell recordings
//   pdpa_batch --counters               # per-cell counter dumps to stderr
//   pdpa_batch --counters_out c_        # ... or to c_<cell>.txt files
//   pdpa_batch --jobs 8 --progress      # completion ticker on stderr
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "src/common/flags.h"
#include "src/common/logging.h"
#include "src/common/strings.h"
#include "src/obs/prof.h"
#include "src/obs/trace_export.h"
#include "src/workload/sweep.h"

namespace pdpa {
namespace {

constexpr const char* kUsage = R"(usage: pdpa_batch [flags]

grid axes:
  --workloads LIST         comma list of w1..w4 (default w1,w2,w3,w4)
  --loads LIST             comma list of load fractions (default 0.6,0.8,1.0)
  --policies LIST          comma list of irix,equip,equal_eff,pdpa,dynamic
                           (default irix,equip,equal_eff,pdpa)
  --seed N                 first RNG seed (default 42)
  --seeds N                replicas per cell under consecutive seeds
                           (default 1); adds per-class mean/p50/p95 rows
  --untuned                override every request to 30 CPUs
  --exact_ticks            fire the progress tick at every grid point

cluster (nodes > 1 runs every cell on a cluster of SMPs):
  --nodes N                cluster nodes (default 1 = single 60-CPU SMP)
  --cpus_per_node N        processors per node (default 60); the machine
                           is nodes x cpus_per_node
  --placement LIST         comma list of rr,mf,ll placement policies,
                           swept as a grid axis (default rr); the CSV
                           policy column reads "<policy>@<placement>"
  --cluster_shards N       worker event loops per cluster cell (default 1;
                           outputs are shard-count invariant)
  --no_arrival_batch       disable the cluster engine's epoch-batched
                           arrival handling (one barrier per arrival, the
                           reference protocol; outputs differ only in the
                           cluster.*_batch* counters). Requires --nodes > 1

execution:
  --jobs N                 worker threads (default: hardware concurrency)
  --no_fork                run every cell cold from t=0 instead of forking
                           eligible cells from their group's shared-prefix
                           snapshot (output is byte-identical either way)
  --progress               completion ticker on stderr

output (CSV on stdout):
  --slowdown               append slowdown_p50/p95/p99 columns (per-replica
                           and merged-across-replica percentiles)

flight recorder (per-cell files, <prefix><cell>.<ext>):
  --events_out P           event logs (JSONL)
  --timeseries_out P       time-series (CSV)
  --counters_out P         counter snapshots (TXT)
  --counters               per-cell counter dumps to stderr

profiling & tracing:
  --trace_out FILE         write one Chrome/Perfetto trace of the whole
                           sweep: per-cell sim-time tracks, plus host-time
                           worker spans when --prof is also set
  --prof                   print the merged host-time profiler breakdown on
                           stderr (hit counts deterministic; ns are not)
  --prof_out FILE          write the merged profiler spans as JSONL
  --log_level LEVEL        debug|info|warning|error|none (default warning)
  --help                   this text
)";

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  out << content;
  return true;
}

int Run(int argc, char** argv) {
  FlagSet flags = FlagSet::Parse(argc - 1, argv + 1);
  if (flags.GetBool("help", false)) {
    std::printf("%s", kUsage);
    return 0;
  }

  const std::string log_level = flags.GetString("log_level", "warning");
  LogLevel level = LogLevel::kWarning;
  if (!ParseLogLevel(log_level, &level)) {
    std::fprintf(stderr, "unknown --log_level %s\n", log_level.c_str());
    return 2;
  }
  SetLogLevel(level);

  SweepGrid grid;
  grid.workloads.clear();
  for (const std::string& token :
       SplitTokens(flags.GetString("workloads", "w1,w2,w3,w4"), ',')) {
    if (token == "w1") {
      grid.workloads.push_back(WorkloadId::kW1);
    } else if (token == "w2") {
      grid.workloads.push_back(WorkloadId::kW2);
    } else if (token == "w3") {
      grid.workloads.push_back(WorkloadId::kW3);
    } else if (token == "w4") {
      grid.workloads.push_back(WorkloadId::kW4);
    } else {
      std::fprintf(stderr, "unknown workload %s\n", token.c_str());
      return 2;
    }
  }
  grid.loads.clear();
  for (const std::string& token : SplitTokens(flags.GetString("loads", "0.6,0.8,1.0"), ',')) {
    double load = 0;
    if (!ParseDouble(token, &load) || load <= 0) {
      std::fprintf(stderr, "bad load %s\n", token.c_str());
      return 2;
    }
    grid.loads.push_back(load);
  }
  grid.policies.clear();
  for (const std::string& token :
       SplitTokens(flags.GetString("policies", "irix,equip,equal_eff,pdpa"), ',')) {
    if (token == "irix") {
      grid.policies.push_back(PolicyKind::kIrix);
    } else if (token == "equip") {
      grid.policies.push_back(PolicyKind::kEquipartition);
    } else if (token == "equal_eff") {
      grid.policies.push_back(PolicyKind::kEqualEfficiency);
    } else if (token == "pdpa") {
      grid.policies.push_back(PolicyKind::kPdpa);
    } else if (token == "dynamic") {
      grid.policies.push_back(PolicyKind::kMcCannDynamic);
    } else {
      std::fprintf(stderr, "unknown policy %s\n", token.c_str());
      return 2;
    }
  }
  const std::uint64_t seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  // Replication: run every (workload, load, policy) cell under `--seeds`
  // consecutive seeds starting at --seed, and append per-class
  // mean/p50/p95 aggregate rows.
  const int num_seeds = flags.GetInt("seeds", 1);
  if (num_seeds < 1) {
    std::fprintf(stderr, "--seeds must be >= 1\n");
    return 2;
  }
  grid.seeds.clear();
  for (int i = 0; i < num_seeds; ++i) {
    grid.seeds.push_back(seed + static_cast<std::uint64_t>(i));
  }
  grid.base.untuned = flags.GetBool("untuned", false);
  grid.base.rm.exact_ticks = flags.GetBool("exact_ticks", false);
  grid.nodes = flags.GetInt("nodes", 1);
  grid.cpus_per_node = flags.GetInt("cpus_per_node", 60);
  grid.cluster_shards = flags.GetInt("cluster_shards", 1);
  if (grid.nodes < 1 || grid.cpus_per_node < 1 || grid.cluster_shards < 1) {
    std::fprintf(stderr, "--nodes, --cpus_per_node and --cluster_shards must be >= 1\n");
    return 2;
  }
  grid.arrival_batch = !flags.GetBool("no_arrival_batch", false);
  if (!grid.arrival_batch && grid.nodes <= 1) {
    std::fprintf(stderr, "--no_arrival_batch is cluster-only (requires --nodes > 1)\n");
    return 2;
  }
  grid.placements.clear();
  for (const std::string& token : SplitTokens(flags.GetString("placement", "rr"), ',')) {
    PlacementPolicy placement = PlacementPolicy::kRoundRobin;
    if (!ParsePlacementPolicy(token, &placement)) {
      std::fprintf(stderr, "unknown placement %s\n", token.c_str());
      return 2;
    }
    grid.placements.push_back(placement);
  }

  SweepOptions options;
  // Worker threads; 0 (the default) auto-detects hardware concurrency.
  options.jobs = flags.GetInt("jobs", 0);
  // Escape hatch for the shared-prefix fork (DESIGN.md §12).
  options.fork = !flags.GetBool("no_fork", false);
  ForkStats fork_stats;
  options.fork_stats = &fork_stats;

  // Flight-recorder prefixes: each grid cell writes
  // <prefix><workload>_<load>_<policy>[_s<seed>].jsonl / .csv.
  const std::string events_prefix = flags.GetString("events_out", "");
  const std::string timeseries_prefix = flags.GetString("timeseries_out", "");
  const std::string counters_prefix = flags.GetString("counters_out", "");
  const bool want_counters = flags.GetBool("counters", false);
  const bool want_slowdown = flags.GetBool("slowdown", false);
  const std::string trace_out = flags.GetString("trace_out", "");
  const bool want_prof = flags.GetBool("prof", false);
  const std::string prof_out = flags.GetString("prof_out", "");
  options.capture_events = !events_prefix.empty() || !trace_out.empty();
  options.capture_timeseries = !timeseries_prefix.empty();
  options.capture_counters = want_counters || !counters_prefix.empty();
  options.capture_prof = want_prof || !prof_out.empty();

  // Completion ticker for long grids. The engine serializes on_progress
  // under its progress mutex, so stderr lines never interleave.
  std::vector<SweepCell> cell_names;
  if (flags.GetBool("progress", false)) {
    cell_names = ExpandGrid(grid);
    options.on_progress = [&cell_names](const SweepProgress& progress) {
      std::fprintf(stderr, "[%zu/%zu] %s\n", progress.done, progress.total,
                   cell_names[progress.cell_index].name.c_str());
    };
  }

  for (const std::string& unknown : flags.UnconsumedFlags()) {
    std::fprintf(stderr, "unknown flag --%s (see --help)\n", unknown.c_str());
    return 2;
  }
  if (flags.had_parse_error()) {
    std::fprintf(stderr, "malformed flag value (see --help)\n");
    return 2;
  }

  // Open the trace sink before the sweep so a bad path fails fast.
  std::ofstream trace_stream;
  if (!trace_out.empty()) {
    trace_stream.open(trace_out);
    if (!trace_stream) {
      std::fprintf(stderr, "cannot open %s\n", trace_out.c_str());
      return 2;
    }
  }

  const std::vector<SweepCellResult> results = RunSweep(grid, options);
  PDPA_LOG(Info) << "fork: " << fork_stats.prefixes_built << "/" << fork_stats.groups
                 << " group prefixes built, " << fork_stats.forked_cells << " cells forked, "
                 << fork_stats.cold_cells << " cold";
  SweepCsv(results, grid.seeds.size(), std::cout, want_slowdown);
  std::cout.flush();

  if (!trace_out.empty()) {
    TraceEventWriter writer(&trace_stream);
    writer.ProcessName(1, "sweep host");
    if (options.capture_prof && !results.empty()) {
      // Host-time tracks: one thread row per sweep worker, one complete
      // span per cell, timestamps relative to the earliest cell start.
      long long epoch_ns = results.front().host_begin_ns;
      for (const SweepCellResult& r : results) {
        epoch_ns = std::min(epoch_ns, r.host_begin_ns);
      }
      std::map<int, bool> workers_named;
      for (const SweepCellResult& r : results) {
        if (!workers_named[r.worker]) {
          workers_named[r.worker] = true;
          std::string name = "worker ";
          name += std::to_string(r.worker);
          writer.ThreadName(1, r.worker, name);
        }
        writer.Complete(1, r.worker, r.cell.name, (r.host_begin_ns - epoch_ns) / 1000,
                        (r.host_end_ns - r.host_begin_ns) / 1000);
      }
    }
    long long bad_lines = 0;
    for (const SweepCellResult& r : results) {
      bad_lines += ExportSimTrace(r.events_jsonl, 2 + static_cast<long long>(r.cell.index),
                                  r.cell.name, &writer);
    }
    writer.Finish();
    if (bad_lines > 0) {
      std::fprintf(stderr, "trace export skipped %lld malformed event lines\n", bad_lines);
    }
    std::fprintf(stderr, "trace: %lld trace events written to %s\n", writer.events_written(),
                 trace_out.c_str());
  }
  if (options.capture_prof) {
    const Profiler merged = MergeProfiles(results);
    if (want_prof) {
      std::string table;
      AppendProfTable(merged, &table);
      std::fprintf(stderr, "\nhost-time profile (hits are deterministic; times are not):\n%s",
                   table.c_str());
    }
    if (!prof_out.empty()) {
      std::string jsonl;
      AppendProfJsonl(merged, "pdpa_batch", &jsonl);
      if (!WriteFile(prof_out, jsonl)) {
        return 2;
      }
      std::fprintf(stderr, "profile: %lld span hits written to %s\n", merged.TotalHits(),
                   prof_out.c_str());
    }
  }

  // Per-cell recordings, written in grid order after the sweep.
  for (const SweepCellResult& r : results) {
    if (!events_prefix.empty() &&
        !WriteFile(events_prefix + r.cell.name + ".jsonl", r.events_jsonl)) {
      return 2;
    }
    if (!timeseries_prefix.empty() &&
        !WriteFile(timeseries_prefix + r.cell.name + ".csv", r.timeseries_csv)) {
      return 2;
    }
    if (!counters_prefix.empty() &&
        !WriteFile(counters_prefix + r.cell.name + ".txt", r.counters.ToString())) {
      return 2;
    }
    if (want_counters) {
      // One section per cell: each run has its own registry, so these are
      // genuinely per-cell values, not a cumulative grid total.
      std::fprintf(stderr, "\ncounters (%s):\n%s", r.cell.name.c_str(),
                   r.counters.ToString().c_str());
    }
  }
  return 0;
}

}  // namespace
}  // namespace pdpa

int main(int argc, char** argv) { return pdpa::Run(argc, argv); }
