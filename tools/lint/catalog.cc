// The rule catalog: ids, one-line summaries (--list-rules), rationale and
// approved escape hatch (--explain). layer-cycle and layer-up are one
// catalog row (one rule family, two finding ids).
#include "tools/lint/lint.h"

namespace pdpa {
namespace lint {

const std::vector<RuleInfo>& RuleCatalog() {
  static const std::vector<RuleInfo>* catalog = new std::vector<RuleInfo>{
      {"wall-clock",
       "no wall-clock/nondeterministic sources in sim code (src/, tools/); "
       "simulation time is the only clock (sanctioned host clock: steady_clock "
       "in src/obs/prof.cc only)",
       "Every headline result is a byte-identity contract (elided == exact, "
       "forked == cold, sharded == serial). A single wall-clock read or rand() "
       "call on a sim path makes outputs run-dependent and turns those golden "
       "comparisons into flakes. Simulation time (SimTime) is the only clock; "
       "the one sanctioned host-clock read is steady_clock in src/obs/prof.cc, "
       "the self-profiler's single translation unit.",
       "Per-line `// lint: wall-clock-ok (reason)` for dev-tool paths that "
       "genuinely need the host clock; a counted, expiring waiver in "
       "lint_waivers.txt for whole-file exemptions."},
      {"unordered-iter",
       "no range-for over unordered containers (unspecified order feeds output "
       "or allocation decisions); justify with // lint: ordered-ok",
       "Iteration order of std::unordered_{map,set} is unspecified and varies "
       "across libstdc++ versions and hash seeds. Anything it feeds — CSV rows, "
       "event streams, allocation decisions — becomes nondeterministic. Sort "
       "keys first, or iterate an ordered mirror.",
       "Per-line `// lint: ordered-ok (reason)` when the loop provably cannot "
       "influence output or decisions (e.g. accumulating into a commutative "
       "sum); a waiver in lint_waivers.txt otherwise."},
      {"float-eq",
       "no ==/!= against floating-point literals; use NearlyEqual "
       "(src/common/stats.h) or justify with // lint: float-eq-ok",
       "Exact comparison against a floating-point literal is almost always a "
       "latent bug: the value being compared went through arithmetic whose "
       "rounding differs across optimization levels and platforms.",
       "Use NearlyEqual (src/common/stats.h); `// lint: float-eq-ok (reason)` "
       "for genuine sentinel comparisons (a value assigned, never computed)."},
      {"direct-io",
       "no printf-family calls or std::cout/cerr in src/; use the obs layer or "
       "PDPA_LOG",
       "src/ output goes through the obs layer (EventLog, counters, "
       "TimeSeriesSampler) or PDPA_LOG so recordings stay deterministic, "
       "capturable per-cell, and silenceable. Direct stdout/stderr writes "
       "bypass all three and interleave nondeterministically under the "
       "parallel sweep.",
       "Per-line `// lint: direct-io-ok (reason)` for crash-path diagnostics "
       "that must not depend on live obs state; a waiver in lint_waivers.txt "
       "for whole-file exemptions (see src/common/logging.cc)."},
      {"stream-flush",
       "no std::endl/std::flush in src/; a flush per line is a syscall per line "
       "and defeats BufWriter — write '\\n' and Flush() once",
       "std::endl flushes the stream every line: a syscall per line, which "
       "defeats BufWriter's 64 KiB batching and dominated serialization cost "
       "before the PR 6 fast path. Write '\\n' and Flush() once at the end.",
       "Per-line `// lint: stream-flush-ok (reason)` when an intermediate "
       "flush is load-bearing (handing a buffer to another process)."},
      {"layer-cycle/layer-up",
       "src/ #include edges must respect the architecture DAG in "
       "tools/lint/layers.txt: no cycles between directories, no includes of a "
       "higher layer",
       "The architecture is a DAG of src/ subdirectories (tools/lint/layers.txt, "
       "foundation first). An include that reaches up a layer, or a cycle "
       "between directories, couples modules both ways: builds lose their "
       "topological order, and the next subsystem (service daemon, policy zoo) "
       "inherits tangled dependencies. Phase 1 indexes every #include over "
       "src/; this rule fails on any edge that points upward (layer-up) and on "
       "any directory cycle, with the offending path printed (layer-cycle).",
       "Move the shared code down a layer (usually into src/common/ or a new "
       "lower directory), or — if the architecture genuinely changed — update "
       "tools/lint/layers.txt in the same PR and say why in DESIGN.md §8. "
       "`// lint: layer-up-ok (reason)` suppresses a single include line "
       "during a staged refactor; cycles have no per-line escape."},
      {"lock-order",
       "every pdpa::Mutex declares PDPA_LOCK_RANK(n); MutexLock sites must "
       "acquire in strictly increasing rank order (runtime twin: -DPDPA_AUDIT)",
       "Lock-order inversions deadlock only under the interleaving that "
       "exhibits them, so they survive test suites. The repo pins one global "
       "hierarchy: every pdpa::Mutex declares PDPA_LOCK_RANK(n) and chains "
       "must acquire in strictly increasing rank. This rule checks it "
       "statically from the phase-1 mutex inventory and lock-site table; the "
       "-DPDPA_AUDIT build checks the same hierarchy at runtime (thread-local "
       "held-rank stack in src/common/mutex.h) for the std::unique_lock and "
       "condition-variable paths token patterns cannot see.",
       "Assign ranks consistent with the acquisition order (table in DESIGN.md "
       "§8) — the annotation is the fix, not a suppression. For a site the "
       "textual held-set over-approximates (guard released early on another "
       "path), `// lint: lock-order-ok (reason)`."},
      {"ptr-taint",
       "no pointer/this/thread-id values reaching deterministic sinks (fmt "
       "appends, JsonObjectWriter, EventLog) or used as ordered-container keys",
       "Pointer values change run to run under ASLR and allocation order. A "
       "pointer (or this, or std::this_thread::get_id(), or std::hash of a "
       "pointer) that reaches a deterministic sink — fmt.h appends, "
       "JsonObjectWriter fields, EventLog records — or that keys an ordered "
       "container (iteration = address order) silently breaks byte-identity. "
       "The classic trap: JsonObjectWriter::Field(\"k\", &x) compiles via the "
       "bool overload and serializes `true`.",
       "Emit a stable id instead (node index, job id, interned name). "
       "`// lint: ptr-taint-ok (reason)` when the value provably never "
       "reaches an output (e.g. a debug-build-only diagnostic)."},
  };
  return *catalog;
}

const RuleInfo* FindRuleInfo(const std::string& id) {
  for (const RuleInfo& rule : RuleCatalog()) {
    if (id == rule.id) {
      return &rule;
    }
  }
  if (id == "layer-cycle" || id == "layer-up") {
    return FindRuleInfo("layer-cycle/layer-up");
  }
  return nullptr;
}

bool IsKnownRuleId(const std::string& id) {
  if (id == "layer-cycle" || id == "layer-up") {
    return true;
  }
  if (id == "layer-cycle/layer-up") {
    return false;  // catalog row, not a finding id
  }
  return FindRuleInfo(id) != nullptr;
}

const std::map<std::string, std::string>& DirectiveTable() {
  static const std::map<std::string, std::string>* table =
      new std::map<std::string, std::string>{
          {"wall-clock-ok", "wall-clock"},     {"ordered-ok", "unordered-iter"},
          {"float-eq-ok", "float-eq"},         {"direct-io-ok", "direct-io"},
          {"stream-flush-ok", "stream-flush"}, {"layer-up-ok", "layer-up"},
          {"lock-order-ok", "lock-order"},     {"ptr-taint-ok", "ptr-taint"},
      };
  return *table;
}

bool FindingBefore(const Finding& a, const Finding& b) {
  if (a.file != b.file) {
    return a.file < b.file;
  }
  if (a.line != b.line) {
    return a.line < b.line;
  }
  if (a.rule != b.rule) {
    return a.rule < b.rule;
  }
  return a.message < b.message;
}

}  // namespace lint
}  // namespace pdpa
