// Waiver lifecycle: counted, expiring per-file suppressions
// (lint_waivers.txt), plus the civil-calendar day arithmetic behind the
// non-fatal --waiver-expiry-within warning (pure integers — the linter
// itself must pass its own wall-clock rule, so the only wall-clock read is
// the fenced TodayYyyymmdd fallback).
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <ctime>  // lint: wall-clock-ok (waiver expiry needs today's date)
#include <fstream>
#include <sstream>

#include "src/common/strings.h"
#include "tools/lint/lint.h"

namespace pdpa {
namespace lint {
namespace {

// Days since the civil epoch 1970-01-01 (Howard Hinnant's days_from_civil;
// exact for all Gregorian dates).
long DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const int yoe = y - era * 400;
  const int doy = (153 * (m > 2 ? m - 3 : m + 9) + 2) / 5 + d - 1;
  const int doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return static_cast<long>(era) * 146097 + doe - 719468;
}

long DaysFromYyyymmdd(int yyyymmdd) {
  return DaysFromCivil(yyyymmdd / 10000, (yyyymmdd / 100) % 100, yyyymmdd % 100);
}

}  // namespace

int ParseDate(const std::string& text) {
  if (text.size() != 10 || text[4] != '-' || text[7] != '-') {
    return 0;
  }
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (i == 4 || i == 7) {
      continue;
    }
    if (!std::isdigit(static_cast<unsigned char>(text[i]))) {
      return 0;
    }
  }
  return std::atoi(text.substr(0, 4).c_str()) * 10000 +
         std::atoi(text.substr(5, 2).c_str()) * 100 + std::atoi(text.substr(8, 2).c_str());
}

int TodayYyyymmdd() {
  const std::time_t now = std::time(nullptr);  // lint: wall-clock-ok (lint is a dev tool)
  std::tm tm_buf{};
  localtime_r(&now, &tm_buf);
  return (tm_buf.tm_year + 1900) * 10000 + (tm_buf.tm_mon + 1) * 100 + tm_buf.tm_mday;
}

long DaysBetween(int from_yyyymmdd, int to_yyyymmdd) {
  return DaysFromYyyymmdd(to_yyyymmdd) - DaysFromYyyymmdd(from_yyyymmdd);
}

bool LoadWaivers(const std::string& path, std::vector<Waiver>* waivers, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = StrFormat("cannot open waiver file %s", path.c_str());
    return false;
  }
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') {
      continue;
    }
    std::istringstream fields(line);
    Waiver waiver;
    std::string count_text, expires_text;
    if (!(fields >> waiver.rule >> waiver.path >> count_text >> expires_text)) {
      *error = StrFormat("%s:%d: expected <rule> <path> <count> <expires> <reason>",
                         path.c_str(), line_no);
      return false;
    }
    if (!IsKnownRuleId(waiver.rule)) {
      *error = StrFormat("%s:%d: unknown rule-id '%s'", path.c_str(), line_no,
                         waiver.rule.c_str());
      return false;
    }
    if (!ParseInt(count_text, &waiver.max_findings) || waiver.max_findings < 1) {
      *error = StrFormat("%s:%d: bad count '%s'", path.c_str(), line_no, count_text.c_str());
      return false;
    }
    waiver.expires = ParseDate(expires_text);
    if (waiver.expires == 0) {
      *error = StrFormat("%s:%d: bad expiry '%s' (want YYYY-MM-DD)", path.c_str(), line_no,
                         expires_text.c_str());
      return false;
    }
    std::getline(fields, waiver.reason);
    const std::size_t start = waiver.reason.find_first_not_of(" \t");
    waiver.reason = start == std::string::npos ? "" : waiver.reason.substr(start);
    if (waiver.reason.empty()) {
      *error = StrFormat("%s:%d: waiver needs a reason", path.c_str(), line_no);
      return false;
    }
    waiver.source_line = line_no;
    waivers->push_back(std::move(waiver));
  }
  return true;
}

void ApplyWaivers(const std::vector<Waiver>& waivers, int today,
                  std::vector<Finding>* findings) {
  for (const Waiver& waiver : waivers) {
    std::vector<Finding*> matches;
    for (Finding& finding : *findings) {
      if (finding.rule == waiver.rule && finding.file == waiver.path) {
        matches.push_back(&finding);
      }
    }
    waiver.used = static_cast<int>(matches.size());
    if (matches.empty()) {
      std::fprintf(stderr,
                   "pdpa_lint: note: stale waiver (line %d: %s %s) matches nothing; "
                   "remove it\n",
                   waiver.source_line, waiver.rule.c_str(), waiver.path.c_str());
      continue;
    }
    if (today > waiver.expires) {
      std::fprintf(stderr, "pdpa_lint: note: waiver expired (line %d: %s %s); findings "
                           "surface until it is re-justified\n",
                   waiver.source_line, waiver.rule.c_str(), waiver.path.c_str());
      continue;
    }
    if (static_cast<int>(matches.size()) > waiver.max_findings) {
      std::fprintf(stderr,
                   "pdpa_lint: note: waiver over budget (line %d: %s %s allows %d, found "
                   "%zu); findings surface\n",
                   waiver.source_line, waiver.rule.c_str(), waiver.path.c_str(),
                   waiver.max_findings, matches.size());
      continue;
    }
    for (Finding* finding : matches) {
      finding->waived = true;
    }
  }
}

}  // namespace lint
}  // namespace pdpa
