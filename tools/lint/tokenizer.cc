// Phase-1 tokenizer: comments (directive capture), string/char/raw-string
// literals, identifiers, numbers (exponent signs attached), two-character
// operators kept whole. Exactly enough structure for token-pattern rules.
#include <algorithm>
#include <cctype>
#include <sstream>
#include <string_view>

#include "tools/lint/lint.h"

namespace pdpa {
namespace lint {
namespace {

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool IsIdentChar(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }
bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

// Registers the `// lint: ...` directives of one comment on `line`.
void ParseDirectives(const std::string& comment, int line, ScanResult* out) {
  const std::size_t pos = comment.find("lint:");
  if (pos == std::string::npos) {
    return;
  }
  std::istringstream words(comment.substr(pos + 5));
  std::string word;
  while (words >> word) {
    while (!word.empty() && (word.back() == ',' || word.back() == '.')) {
      word.pop_back();
    }
    const auto it = DirectiveTable().find(word);
    if (it != DirectiveTable().end()) {
      out->suppressed[line].insert(it->second);
    }
  }
}

// Two-character operators we keep whole (only ==, != and :: matter to the
// rules; the rest are tokenized whole so neighbours stay meaningful).
bool IsTwoCharOp(char a, char b) {
  static const char* kOps[] = {"==", "!=", "<=", ">=", "::", "->", "&&", "||", "<<",
                               ">>", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
                               "++", "--"};
  for (const char* op : kOps) {
    if (op[0] == a && op[1] == b) {
      return true;
    }
  }
  return false;
}

}  // namespace

ScanResult Scan(const std::string& text) {
  ScanResult result;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = text.size();
  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment: capture for directives.
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      const std::size_t start = i + 2;
      while (i < n && text[i] != '\n') {
        ++i;
      }
      ParseDirectives(text.substr(start, i - start), line, &result);
      continue;
    }
    // Block comment: directives register on the line the comment opens.
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      const int open_line = line;
      const std::size_t start = i + 2;
      i += 2;
      while (i + 1 < n && !(text[i] == '*' && text[i + 1] == '/')) {
        if (text[i] == '\n') {
          ++line;
        }
        ++i;
      }
      ParseDirectives(text.substr(start, i - start), open_line, &result);
      i = std::min(n, i + 2);
      continue;
    }
    // Raw string literal: R"delim(...)delim" — skip the payload verbatim.
    if (c == 'R' && i + 1 < n && text[i + 1] == '"') {
      std::size_t d = i + 2;
      while (d < n && text[d] != '(') {
        ++d;
      }
      const std::string closer = ")" + text.substr(i + 2, d - (i + 2)) + "\"";
      const std::size_t end = text.find(closer, d);
      const std::size_t stop = end == std::string::npos ? n : end + closer.size();
      result.tokens.push_back({Token::Kind::kString, "R\"...\"", line});
      for (std::size_t k = i; k < stop; ++k) {
        if (text[k] == '\n') {
          ++line;
        }
      }
      i = stop;
      continue;
    }
    // String / char literal (escapes honoured, payload not tokenized).
    if (c == '"' || c == '\'') {
      const char quote = c;
      ++i;
      while (i < n && text[i] != quote) {
        if (text[i] == '\\' && i + 1 < n) {
          ++i;
        }
        if (text[i] == '\n') {
          ++line;
        }
        ++i;
      }
      ++i;
      result.tokens.push_back({Token::Kind::kString, std::string(1, quote), line});
      continue;
    }
    if (IsIdentStart(c)) {
      const std::size_t start = i;
      while (i < n && IsIdentChar(text[i])) {
        ++i;
      }
      result.tokens.push_back({Token::Kind::kIdent, text.substr(start, i - start), line});
      continue;
    }
    if (IsDigit(c) || (c == '.' && i + 1 < n && IsDigit(text[i + 1]))) {
      const std::size_t start = i;
      while (i < n) {
        const char d = text[i];
        if (IsIdentChar(d) || d == '.' || d == '\'') {
          // Exponent signs belong to the number: 1e+9, 0x1p-3.
          if ((d == 'e' || d == 'E' || d == 'p' || d == 'P') && i + 1 < n &&
              (text[i + 1] == '+' || text[i + 1] == '-')) {
            ++i;
          }
          ++i;
          continue;
        }
        break;
      }
      result.tokens.push_back({Token::Kind::kNumber, text.substr(start, i - start), line});
      continue;
    }
    if (i + 1 < n && IsTwoCharOp(c, text[i + 1])) {
      result.tokens.push_back({Token::Kind::kPunct, text.substr(i, 2), line});
      i += 2;
      continue;
    }
    result.tokens.push_back({Token::Kind::kPunct, std::string(1, c), line});
    ++i;
  }
  return result;
}

bool IsFloatLiteral(const Token& token) {
  if (token.kind != Token::Kind::kNumber) {
    return false;
  }
  const std::string& t = token.text;
  if (t.size() > 1 && t[0] == '0' && (t[1] == 'x' || t[1] == 'X')) {
    return t.find('.') != std::string::npos || t.find('p') != std::string::npos ||
           t.find('P') != std::string::npos;
  }
  return t.find('.') != std::string::npos || t.find('e') != std::string::npos ||
         t.find('E') != std::string::npos || t.back() == 'f' || t.back() == 'F';
}

bool Suppressed(const ScanResult& scan, int line, const std::string& rule) {
  const auto it = scan.suppressed.find(line);
  return it != scan.suppressed.end() && it->second.contains(rule);
}

std::vector<IncludeRef> ExtractIncludes(const std::string& text) {
  std::vector<IncludeRef> includes;
  int line = 1;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::size_t len = (eol == std::string::npos ? text.size() : eol) - pos;
    std::string_view view(text.data() + pos, len);
    const auto skip_ws = [&view] {
      while (!view.empty() && (view.front() == ' ' || view.front() == '\t')) {
        view.remove_prefix(1);
      }
    };
    skip_ws();
    if (!view.empty() && view.front() == '#') {
      view.remove_prefix(1);
      skip_ws();
      if (view.rfind("include", 0) == 0) {
        view.remove_prefix(7);
        skip_ws();
        if (!view.empty() && view.front() == '"') {
          view.remove_prefix(1);
          const std::size_t close = view.find('"');
          if (close != std::string_view::npos) {
            includes.push_back({std::string(view.substr(0, close)), line});
          }
        }
      }
    }
    if (eol == std::string::npos) {
      break;
    }
    pos = eol + 1;
    ++line;
  }
  return includes;
}

}  // namespace lint
}  // namespace pdpa
