// pdpa_lint's rule library — the linter split into testable units.
//
// Two-phase design (DESIGN.md §8):
//
//   phase 1  every input file is tokenized once (Scan) and the repo-wide
//            indexes are built from the token streams (BuildRepoIndex):
//            the #include graph over src/, the pdpa::Mutex inventory
//            (every declaration with its PDPA_LOCK_RANK), the lock-site
//            table (every MutexLock with the set of locks textually held
//            at that point), and the deterministic-sink method set.
//   phase 2  the five per-file rules run against each file's tokens, and
//            the three whole-program rule families (layer-cycle/layer-up,
//            lock-order, ptr-taint) run against the indexes.
//
// The tokenizer is deliberately self-contained (no libclang): it
// understands comments, string/char/raw-string literals and two-character
// operators, which is exactly enough for token-pattern rules with no
// build-system coupling. The price is that rules are textual — they see
// declarations and call sites, not types — so the repo pairs the static
// lock-order rule with the -DPDPA_AUDIT runtime auditor in
// src/common/mutex.h, which catches the std::unique_lock paths the token
// patterns cannot.
//
// Everything here is pure: no flag parsing, no process exit, no stdout.
// tools/pdpa_lint.cc is the driver.
#ifndef TOOLS_LINT_LINT_H_
#define TOOLS_LINT_LINT_H_

#include <map>
#include <set>
#include <string>
#include <vector>

namespace pdpa {
namespace lint {

// ---------------------------------------------------------------------------
// Tokenizer (phase 1)
// ---------------------------------------------------------------------------

struct Token {
  enum class Kind { kIdent, kNumber, kString, kPunct };
  Kind kind = Kind::kPunct;
  std::string text;
  int line = 0;
};

struct ScanResult {
  std::vector<Token> tokens;
  // line -> rule ids suppressed on that line by `// lint: <directive>`.
  std::map<int, std::set<std::string>> suppressed;
};

ScanResult Scan(const std::string& text);
bool IsFloatLiteral(const Token& token);
bool Suppressed(const ScanResult& scan, int line, const std::string& rule);

// Inline-suppression comment spelling -> rule id ("float-eq-ok" -> "float-eq").
const std::map<std::string, std::string>& DirectiveTable();

// `#include "..."` targets of one file, with the line they appear on.
// Quoted includes only: system headers cannot participate in repo layering.
struct IncludeRef {
  std::string target;
  int line = 0;
};
std::vector<IncludeRef> ExtractIncludes(const std::string& text);

// ---------------------------------------------------------------------------
// Rule catalog
// ---------------------------------------------------------------------------

enum class Scope { kSrc, kTools, kBench, kOther };

struct RuleInfo {
  const char* id;        // catalog row; layer-cycle/layer-up share one row
  const char* summary;   // one line, shown by --list-rules
  const char* rationale; // paragraph, shown by --explain
  const char* escape;    // the approved escape hatch, shown by --explain
};

// The 8 catalog rows, in display order.
const std::vector<RuleInfo>& RuleCatalog();

// Catalog row for a rule id; accepts the finding ids `layer-cycle` and
// `layer-up` for the combined row. Null when unknown.
const RuleInfo* FindRuleInfo(const std::string& id);

// Whether `id` is a valid finding id (waiver files use these; the combined
// catalog row is not itself a finding id).
bool IsKnownRuleId(const std::string& id);

// ---------------------------------------------------------------------------
// Findings
// ---------------------------------------------------------------------------

struct Finding {
  std::string file;  // root-relative
  int line = 0;
  std::string rule;
  std::string message;
  bool waived = false;
};

// Deterministic report order: (file, line, rule).
bool FindingBefore(const Finding& a, const Finding& b);

// One scanned input: root-relative path, rule scope, token stream, includes.
struct SourceFile {
  std::string rel_path;
  Scope scope = Scope::kOther;
  ScanResult scan;
  std::vector<IncludeRef> includes;
};

// ---------------------------------------------------------------------------
// Repo-wide indexes (phase 1 output)
// ---------------------------------------------------------------------------

// One pdpa::Mutex declaration: `Mutex <member>{PDPA_LOCK_RANK(n)};`.
struct MutexDecl {
  std::string file;
  int line = 0;
  std::string member;
  int rank = -1;  // -1: declared without PDPA_LOCK_RANK
};

// One `MutexLock guard(&...-><member>)` acquisition, with the mutex members
// textually held at that point (enclosing MutexLock guards still in scope).
struct LockSite {
  std::string file;
  int line = 0;
  std::string member;
  std::vector<std::string> held;
};

// The architecture DAG from layers.txt: one layer per line, foundation
// first; each line lists the src/ subdirectories in that layer. A file in
// layer k may include only layers <= k.
struct LayerMap {
  std::vector<std::vector<std::string>> layers;  // layers[k] = dirs at k
  std::map<std::string, int> dir_layer;          // "sim" -> k
};
bool LoadLayers(const std::string& path, LayerMap* layers, std::string* error);

// One dir-level include edge ("qs" -> "rm") with a representative
// file:line (the first include that creates it, in sorted-file order).
struct DirEdge {
  std::string from_dir;
  std::string to_dir;
  std::string file;
  int line = 0;
};

struct RepoIndex {
  std::vector<MutexDecl> mutexes;
  std::vector<LockSite> lock_sites;
  std::vector<DirEdge> dir_edges;
  // Deterministic sinks: methods (flagged when called as `x.M(...)`) and
  // free functions (arg 0 — the destination out-param — is exempt).
  std::set<std::string> sink_methods;
  std::set<std::string> sink_free_fns;
  LayerMap layers;
  bool have_layers = false;
};

// Builds every index from the scanned files. `layers` may be null (layer
// rules are then skipped; per-file fixture runs have no layers.txt).
RepoIndex BuildRepoIndex(const std::vector<SourceFile>& files, const LayerMap* layers);

// ---------------------------------------------------------------------------
// Per-file rules (phase 2)
// ---------------------------------------------------------------------------

void CheckWallClock(const SourceFile& file, std::vector<Finding>* findings);
void CheckUnorderedIter(const SourceFile& file, std::vector<Finding>* findings);
void CheckFloatEq(const SourceFile& file, std::vector<Finding>* findings);
void CheckDirectIo(const SourceFile& file, std::vector<Finding>* findings);
void CheckStreamFlush(const SourceFile& file, std::vector<Finding>* findings);

// ---------------------------------------------------------------------------
// Whole-program rules (phase 2)
// ---------------------------------------------------------------------------

// layer-cycle + layer-up against index.layers (no-ops when !have_layers).
void CheckLayerRules(const std::vector<SourceFile>& files, const RepoIndex& index,
                     std::vector<Finding>* findings);

// Unranked/duplicate declarations and rank-order inversions at lock sites.
void CheckLockOrder(const std::vector<SourceFile>& files, const RepoIndex& index,
                    std::vector<Finding>* findings);

// Pointer/this/thread-id values reaching deterministic sinks; pointer-keyed
// containers; std::hash over pointer types. Per-file but sink-set-driven,
// so it lives with the whole-program rules.
void CheckPtrTaint(const SourceFile& file, const RepoIndex& index,
                   std::vector<Finding>* findings);

// ---------------------------------------------------------------------------
// Waivers
// ---------------------------------------------------------------------------

struct Waiver {
  std::string rule;
  std::string path;  // root-relative
  int max_findings = 0;
  int expires = 0;  // yyyymmdd
  std::string reason;
  int source_line = 0;
  mutable int used = 0;
};

// "YYYY-MM-DD" -> yyyymmdd; 0 on malformed input.
int ParseDate(const std::string& text);
int TodayYyyymmdd();

// Civil-calendar day count from `from` to `to` (positive when `to` is
// later). Pure integer arithmetic — no wall-clock reads.
long DaysBetween(int from_yyyymmdd, int to_yyyymmdd);

bool LoadWaivers(const std::string& path, std::vector<Waiver>* waivers, std::string* error);

// Marks findings covered by an in-date, in-budget waiver. Expired, stale or
// over-budget waivers leave their findings unwaived (note on stderr).
void ApplyWaivers(const std::vector<Waiver>& waivers, int today,
                  std::vector<Finding>* findings);

}  // namespace lint
}  // namespace pdpa

#endif  // TOOLS_LINT_LINT_H_
