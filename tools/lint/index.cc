// Phase 1: the repo-wide indexes. One pass over each file's token stream
// collects the pdpa::Mutex inventory (declaration + PDPA_LOCK_RANK) and the
// MutexLock lock-site table with textually-held sets (a stack of in-scope
// guards tracked by brace depth); the include lists collected at load time
// become the dir-level include graph; the deterministic-sink set is seeded
// with the known fmt.h / obs sinks and widened with whatever methods the
// scanned sink classes actually declare, so a new JsonObjectWriter overload
// is a sink the moment it is written.
#include <cctype>
#include <fstream>
#include <sstream>
#include <utility>

#include "src/common/strings.h"
#include "tools/lint/lint.h"

namespace pdpa {
namespace lint {
namespace {

// src/<dir>/... -> "dir"; empty when the path is not a src/ subdirectory.
std::string SrcDirOf(const std::string& path) {
  if (path.rfind("src/", 0) != 0) {
    return "";
  }
  const std::size_t slash = path.find('/', 4);
  if (slash == std::string::npos) {
    return "";
  }
  return path.substr(4, slash - 4);
}

// Scans one file's tokens for mutex declarations and lock sites. The held
// stack tracks MutexLock guards by the brace depth they were declared at;
// a guard leaves scope when its block closes.
void IndexMutexes(const SourceFile& file, RepoIndex* index) {
  const std::vector<Token>& tokens = file.scan.tokens;
  struct HeldGuard {
    int depth;
    std::string member;
  };
  std::vector<HeldGuard> held;
  int depth = 0;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& token = tokens[i];
    if (token.text == "{") {
      ++depth;
      continue;
    }
    if (token.text == "}") {
      --depth;
      while (!held.empty() && held.back().depth > depth) {
        held.pop_back();
      }
      continue;
    }
    if (token.kind != Token::Kind::kIdent) {
      continue;
    }
    // Declaration: `Mutex <member> { PDPA_LOCK_RANK ( n ) }` (paren init
    // accepted too); `Mutex <member>;` is an unranked declaration. `Mutex`
    // followed by anything else — `(`, `*`, `&`, `>` — is the class name in
    // a signature or template argument, not a declaration.
    if (token.text == "Mutex" && i + 2 < tokens.size() &&
        tokens[i + 1].kind == Token::Kind::kIdent) {
      const std::string& member = tokens[i + 1].text;
      const std::string& init = tokens[i + 2].text;
      if (init == ";") {
        index->mutexes.push_back({file.rel_path, token.line, member, -1});
      } else if (init == "{" || init == "(") {
        const std::string closer = init == "{" ? "}" : ")";
        int rank = -1;
        int init_depth = 1;
        for (std::size_t j = i + 3; j < tokens.size() && init_depth > 0; ++j) {
          if (tokens[j].text == init) {
            ++init_depth;
          } else if (tokens[j].text == closer) {
            --init_depth;
          } else if (tokens[j].text == "PDPA_LOCK_RANK" && j + 2 < tokens.size() &&
                     tokens[j + 1].text == "(" &&
                     tokens[j + 2].kind == Token::Kind::kNumber) {
            ParseInt(tokens[j + 2].text, &rank);
          }
        }
        index->mutexes.push_back({file.rel_path, token.line, member, rank});
      }
      continue;
    }
    // Lock site: `MutexLock <guard> ( & ... <member> )`. The mutex member
    // is the last identifier of the argument expression
    // (`&state->mutex`, `&group.group_mutex`, `&engine_mutex_`).
    if (token.text == "MutexLock" && i + 2 < tokens.size() &&
        tokens[i + 1].kind == Token::Kind::kIdent && tokens[i + 2].text == "(") {
      std::string member;
      int arg_depth = 1;
      for (std::size_t j = i + 3; j < tokens.size() && arg_depth > 0; ++j) {
        if (tokens[j].text == "(") {
          ++arg_depth;
        } else if (tokens[j].text == ")") {
          --arg_depth;
        } else if (tokens[j].kind == Token::Kind::kIdent) {
          member = tokens[j].text;
        }
      }
      if (!member.empty()) {
        LockSite site{file.rel_path, token.line, member, {}};
        for (const HeldGuard& guard : held) {
          site.held.push_back(guard.member);
        }
        index->lock_sites.push_back(std::move(site));
        held.push_back({depth, member});
      }
    }
  }
}

// Widens the sink set from what the scanned tree declares: every Append*
// free function in src/common/fmt.h, and every public-looking method of the
// serialization classes. Construction/reset/flush plumbing is excluded —
// `event_log.Reset(&sink)` wires a destination, it does not format values.
void DeriveSinks(const SourceFile& file, RepoIndex* index) {
  static const std::set<std::string>* kSinkClasses = new std::set<std::string>{
      "JsonObjectWriter", "LegacyJsonObjectWriter", "EventLog"};
  static const std::set<std::string>* kExcluded = new std::set<std::string>{
      "Reset", "Flush", "Handoff", "HandoffConfinement"};
  const std::vector<Token>& tokens = file.scan.tokens;
  if (file.rel_path == "src/common/fmt.h") {
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
      if (tokens[i].kind == Token::Kind::kIdent &&
          tokens[i].text.rfind("Append", 0) == 0 && tokens[i + 1].text == "(") {
        index->sink_free_fns.insert(tokens[i].text);
      }
    }
  }
  for (std::size_t i = 0; i + 2 < tokens.size(); ++i) {
    if (tokens[i].text != "class" || tokens[i + 1].kind != Token::Kind::kIdent ||
        !kSinkClasses->contains(tokens[i + 1].text)) {
      continue;
    }
    const std::string& class_name = tokens[i + 1].text;
    // Find the class body and harvest `<Ident> (` method spellings.
    std::size_t j = i + 2;
    while (j < tokens.size() && tokens[j].text != "{" && tokens[j].text != ";") {
      ++j;
    }
    if (j >= tokens.size() || tokens[j].text == ";") {
      continue;  // forward declaration
    }
    int body_depth = 1;
    for (++j; j < tokens.size() && body_depth > 0; ++j) {
      if (tokens[j].text == "{") {
        ++body_depth;
      } else if (tokens[j].text == "}") {
        --body_depth;
      } else if (tokens[j].kind == Token::Kind::kIdent && j + 1 < tokens.size() &&
                 tokens[j + 1].text == "(") {
        const std::string& name = tokens[j].text;
        if (name != class_name && !name.empty() &&
            std::isupper(static_cast<unsigned char>(name[0])) != 0 &&
            name.rfind("PDPA_", 0) != 0 && !kExcluded->contains(name)) {
          index->sink_methods.insert(name);
        }
      }
    }
  }
}

}  // namespace

bool LoadLayers(const std::string& path, LayerMap* layers, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = StrFormat("cannot open layers file %s", path.c_str());
    return false;
  }
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') {
      continue;
    }
    std::istringstream fields(line);
    std::vector<std::string> dirs;
    std::string dir;
    while (fields >> dir) {
      if (layers->dir_layer.contains(dir)) {
        *error = StrFormat("%s:%d: directory '%s' listed twice", path.c_str(), line_no,
                           dir.c_str());
        return false;
      }
      layers->dir_layer[dir] = static_cast<int>(layers->layers.size());
      dirs.push_back(dir);
    }
    if (!dirs.empty()) {
      layers->layers.push_back(std::move(dirs));
    }
  }
  if (layers->layers.empty()) {
    *error = StrFormat("%s: no layers defined", path.c_str());
    return false;
  }
  return true;
}

RepoIndex BuildRepoIndex(const std::vector<SourceFile>& files, const LayerMap* layers) {
  RepoIndex index;
  // Known sinks, so self-contained fixture files exercise the rule without
  // scanning fmt.h/event_log.h; DeriveSinks widens this from the real tree.
  index.sink_methods = {"Field", "Emit"};
  index.sink_free_fns = {"AppendInt", "AppendUint", "AppendGeneral", "AppendFixed"};
  if (layers != nullptr) {
    index.layers = *layers;
    index.have_layers = true;
  }
  std::set<std::pair<std::string, std::string>> seen_edges;
  for (const SourceFile& file : files) {
    IndexMutexes(file, &index);
    DeriveSinks(file, &index);
    const std::string from_dir = SrcDirOf(file.rel_path);
    if (from_dir.empty()) {
      continue;
    }
    for (const IncludeRef& include : file.includes) {
      const std::string to_dir = SrcDirOf(include.target);
      if (to_dir.empty() || to_dir == from_dir) {
        continue;
      }
      if (seen_edges.insert({from_dir, to_dir}).second) {
        index.dir_edges.push_back({from_dir, to_dir, file.rel_path, include.line});
      }
    }
  }
  return index;
}

}  // namespace lint
}  // namespace pdpa
