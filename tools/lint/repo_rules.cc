// Phase-2 whole-program rules, running against the phase-1 indexes:
//
//   layer-up     an #include that reaches a higher layer of the
//                architecture DAG (tools/lint/layers.txt), flagged at the
//                include line; also any src/ directory missing from the DAG.
//   layer-cycle  a cycle in the dir-level include graph, reported once per
//                distinct cycle (canonical rotation) at the first edge's
//                representative include.
//   lock-order   unranked or ambiguous pdpa::Mutex declarations, duplicate
//                ranks, and any MutexLock acquisition whose textually-held
//                set violates the strictly-increasing rank order.
//   ptr-taint    pointer/this/thread-id values reaching deterministic
//                sinks; pointer-keyed containers; std::hash over pointers.
#include <algorithm>
#include <map>
#include <utility>

#include "src/common/strings.h"
#include "tools/lint/lint.h"

namespace pdpa {
namespace lint {
namespace {

void AddFinding(std::vector<Finding>* findings, const ScanResult* scan, const std::string& file,
                int line, const char* rule, std::string message) {
  if (scan != nullptr && Suppressed(*scan, line, rule)) {
    return;
  }
  findings->push_back(Finding{file, line, rule, std::move(message), false});
}

std::string SrcDirOf(const std::string& path) {
  if (path.rfind("src/", 0) != 0) {
    return "";
  }
  const std::size_t slash = path.find('/', 4);
  if (slash == std::string::npos) {
    return "";
  }
  return path.substr(4, slash - 4);
}

// DFS over the dir graph collecting every cycle reachable via a back edge,
// canonicalized (rotated to the lexicographically smallest dir) so each
// distinct cycle is reported exactly once regardless of discovery order.
struct CycleFinder {
  const std::map<std::string, std::vector<std::string>>* adjacency;
  std::map<std::string, int> color;  // 0 white, 1 on stack, 2 done
  std::vector<std::string> stack;
  std::set<std::vector<std::string>> cycles;  // canonical rotations

  void Visit(const std::string& dir) {
    color[dir] = 1;
    stack.push_back(dir);
    const auto it = adjacency->find(dir);
    if (it != adjacency->end()) {
      for (const std::string& next : it->second) {
        if (color[next] == 1) {
          const auto start = std::find(stack.begin(), stack.end(), next);
          std::vector<std::string> cycle(start, stack.end());
          const auto min_it = std::min_element(cycle.begin(), cycle.end());
          std::rotate(cycle.begin(), min_it, cycle.end());
          cycles.insert(std::move(cycle));
        } else if (color[next] == 0) {
          Visit(next);
        }
      }
    }
    stack.pop_back();
    color[dir] = 2;
  }
};

}  // namespace

void CheckLayerRules(const std::vector<SourceFile>& files, const RepoIndex& index,
                     std::vector<Finding>* findings) {
  if (!index.have_layers) {
    return;
  }
  const std::map<std::string, int>& layer_of = index.layers.dir_layer;

  // Directories outside the DAG: the architecture must name every src/
  // subdirectory before its dependencies can be checked. Anchored at the
  // first file of the directory (files arrive sorted).
  std::set<std::string> unassigned_reported;
  for (const SourceFile& file : files) {
    const std::string dir = SrcDirOf(file.rel_path);
    if (dir.empty() || layer_of.contains(dir) || !unassigned_reported.insert(dir).second) {
      continue;
    }
    AddFinding(findings, nullptr, file.rel_path, 1, "layer-up",
               StrFormat("directory 'src/%s' has no layer in layers.txt; add it to the "
                         "architecture DAG before depending on it",
                         dir.c_str()));
  }

  // Upward includes, flagged at each offending #include line.
  for (const SourceFile& file : files) {
    const std::string from_dir = SrcDirOf(file.rel_path);
    if (from_dir.empty() || !layer_of.contains(from_dir)) {
      continue;
    }
    const int from_layer = layer_of.at(from_dir);
    for (const IncludeRef& include : file.includes) {
      const std::string to_dir = SrcDirOf(include.target);
      if (to_dir.empty() || to_dir == from_dir || !layer_of.contains(to_dir)) {
        continue;
      }
      const int to_layer = layer_of.at(to_dir);
      if (to_layer > from_layer) {
        AddFinding(findings, &file.scan, file.rel_path, include.line, "layer-up",
                   StrFormat("#include \"%s\" reaches up from layer %d (src/%s) to layer "
                             "%d (src/%s); dependencies must point downward in the "
                             "architecture DAG (layers.txt)",
                             include.target.c_str(), from_layer, from_dir.c_str(), to_layer,
                             to_dir.c_str()));
      }
    }
  }

  // Cycles in the dir-level graph, one finding per distinct cycle.
  std::map<std::string, std::vector<std::string>> adjacency;
  std::map<std::pair<std::string, std::string>, const DirEdge*> edge_rep;
  for (const DirEdge& edge : index.dir_edges) {
    adjacency[edge.from_dir].push_back(edge.to_dir);
    edge_rep[{edge.from_dir, edge.to_dir}] = &edge;
  }
  CycleFinder finder;
  finder.adjacency = &adjacency;
  for (const auto& [dir, targets] : adjacency) {
    (void)targets;
    if (finder.color[dir] == 0) {
      finder.Visit(dir);
    }
  }
  for (const std::vector<std::string>& cycle : finder.cycles) {
    std::string path;
    for (const std::string& dir : cycle) {
      path += "src/" + dir + " -> ";
    }
    path += "src/" + cycle.front();
    const DirEdge* rep = edge_rep.at({cycle.front(), cycle[1 % cycle.size()]});
    AddFinding(findings, nullptr, rep->file, rep->line, "layer-cycle",
               StrFormat("#include cycle across src/ directories: %s", path.c_str()));
  }
}

void CheckLockOrder(const std::vector<SourceFile>& files, const RepoIndex& index,
                    std::vector<Finding>* findings) {
  std::map<std::string, const ScanResult*> scan_of;
  for (const SourceFile& file : files) {
    scan_of[file.rel_path] = &file.scan;
  }
  const auto scan_for = [&scan_of](const std::string& file) -> const ScanResult* {
    const auto it = scan_of.find(file);
    return it == scan_of.end() ? nullptr : it->second;
  };

  // Declaration hygiene: every mutex ranked, member names and ranks unique
  // (lock-site resolution is by member name; a duplicate makes the static
  // rank lookup ambiguous, so it is itself a finding).
  std::map<std::string, const MutexDecl*> by_member;
  std::map<int, const MutexDecl*> by_rank;
  std::set<std::string> ambiguous_members;
  for (const MutexDecl& decl : index.mutexes) {
    if (decl.rank < 0) {
      AddFinding(findings, scan_for(decl.file), decl.file, decl.line, "lock-order",
                 StrFormat("pdpa::Mutex '%s' declared without PDPA_LOCK_RANK(n); every "
                           "mutex states its position in the lock hierarchy (DESIGN.md §8)",
                           decl.member.c_str()));
    }
    const auto [member_it, member_new] = by_member.insert({decl.member, &decl});
    if (!member_new) {
      ambiguous_members.insert(decl.member);
      AddFinding(findings, scan_for(decl.file), decl.file, decl.line, "lock-order",
                 StrFormat("mutex member name '%s' is ambiguous (also declared at %s:%d); "
                           "static rank resolution needs repo-unique member names",
                           decl.member.c_str(), member_it->second->file.c_str(),
                           member_it->second->line));
    }
    if (decl.rank >= 0) {
      const auto [rank_it, rank_new] = by_rank.insert({decl.rank, &decl});
      if (!rank_new) {
        AddFinding(findings, scan_for(decl.file), decl.file, decl.line, "lock-order",
                   StrFormat("PDPA_LOCK_RANK(%d) already used by '%s' (%s:%d); ranks are "
                             "unique per mutex",
                             decl.rank, rank_it->second->member.c_str(),
                             rank_it->second->file.c_str(), rank_it->second->line));
      }
    }
  }

  // Resolves a site's member to its declared rank; ambiguous or unranked
  // members were already flagged above and resolve to "unknown" here.
  const auto rank_of = [&](const std::string& member) -> const MutexDecl* {
    if (ambiguous_members.contains(member)) {
      return nullptr;
    }
    const auto it = by_member.find(member);
    return it == by_member.end() || it->second->rank < 0 ? nullptr : it->second;
  };

  for (const LockSite& site : index.lock_sites) {
    const MutexDecl* acquiring = rank_of(site.member);
    if (acquiring == nullptr) {
      if (!by_member.contains(site.member) && !ambiguous_members.contains(site.member)) {
        AddFinding(findings, scan_for(site.file), site.file, site.line, "lock-order",
                   StrFormat("cannot resolve mutex member '%s' to a PDPA_LOCK_RANK "
                             "declaration (is the declaring file outside the lint set?)",
                             site.member.c_str()));
      }
      continue;
    }
    for (const std::string& held_member : site.held) {
      const MutexDecl* held = rank_of(held_member);
      if (held != nullptr && held->rank >= acquiring->rank) {
        AddFinding(findings, scan_for(site.file), site.file, site.line, "lock-order",
                   StrFormat("acquiring '%s' (rank %d) while holding '%s' (rank %d); ranks "
                             "must strictly increase along every acquisition chain "
                             "(DESIGN.md §8)",
                             site.member.c_str(), acquiring->rank, held_member.c_str(),
                             held->rank));
      }
    }
  }
}

void CheckPtrTaint(const SourceFile& file, const RepoIndex& index,
                   std::vector<Finding>* findings) {
  if (file.scope != Scope::kSrc) {
    return;  // Tools and benches may print whatever aids debugging.
  }
  static const std::set<std::string>* kKeyedContainers = new std::set<std::string>{
      "map", "set", "multimap", "multiset", "unordered_map", "unordered_set"};
  const std::vector<Token>& tokens = file.scan.tokens;

  // Checks one sink-call argument list starting at the `(` in tokens[open].
  // `skip_first` exempts the destination out-param of Append* free
  // functions (`AppendInt(&out, v)` formats v, not &out).
  const auto check_sink_args = [&](std::size_t open, const std::string& sink, int line,
                                   bool skip_first) {
    int depth = 1;
    int arg_index = 0;
    bool at_arg_start = true;
    for (std::size_t j = open + 1; j < tokens.size() && depth > 0; ++j) {
      const Token& t = tokens[j];
      if (t.text == "(" || t.text == "[" || t.text == "{") {
        ++depth;
      } else if (t.text == ")" || t.text == "]" || t.text == "}") {
        --depth;
      } else if (t.text == "," && depth == 1) {
        ++arg_index;
        at_arg_start = true;
        continue;
      }
      const bool exempt = skip_first && arg_index == 0;
      if (!exempt) {
        if (at_arg_start && t.text == "&" && j + 1 < tokens.size() &&
            (tokens[j + 1].kind == Token::Kind::kIdent || tokens[j + 1].text == "(")) {
          AddFinding(findings, &file.scan, file.rel_path, line, "ptr-taint",
                     StrFormat("address-of expression reaches deterministic sink '%s' "
                               "(pointer values are run-dependent; emit a stable id)",
                               sink.c_str()));
        } else if (t.text == "this") {
          AddFinding(findings, &file.scan, file.rel_path, line, "ptr-taint",
                     StrFormat("'this' reaches deterministic sink '%s' (pointer values "
                               "are run-dependent; emit a stable id)",
                               sink.c_str()));
        } else if (t.text == "get_id") {
          AddFinding(findings, &file.scan, file.rel_path, line, "ptr-taint",
                     StrFormat("thread id reaches deterministic sink '%s' (thread ids are "
                               "run-dependent; use the worker index)",
                               sink.c_str()));
        }
      }
      at_arg_start = false;
    }
  };

  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& token = tokens[i];
    if (token.kind != Token::Kind::kIdent) {
      continue;
    }
    const std::string& prev = i > 0 ? tokens[i - 1].text : "";
    // Method sink: `x.Field(...)` / `log->Emit(...)`.
    if ((prev == "." || prev == "->") && index.sink_methods.contains(token.text) &&
        i + 1 < tokens.size() && tokens[i + 1].text == "(") {
      check_sink_args(i + 1, token.text, token.line, /*skip_first=*/false);
      continue;
    }
    // Free-function sink: `AppendInt(&out, v)` (possibly `pdpa::`-qualified).
    if (prev != "." && prev != "->" && index.sink_free_fns.contains(token.text) &&
        i + 1 < tokens.size() && tokens[i + 1].text == "(") {
      check_sink_args(i + 1, token.text, token.line, /*skip_first=*/true);
      continue;
    }
    // std::hash over a pointer type: run-dependent whatever consumes it.
    if (token.text == "hash" && i + 1 < tokens.size() && tokens[i + 1].text == "<") {
      int angle = 1;
      bool saw_pointer = false;
      for (std::size_t j = i + 2; j < tokens.size() && angle > 0; ++j) {
        if (tokens[j].text == "<") {
          ++angle;
        } else if (tokens[j].text == ">") {
          --angle;
        } else if (tokens[j].text == ">>") {
          angle -= 2;
        } else if (tokens[j].text == "*") {
          saw_pointer = true;
        } else if (tokens[j].text == ";") {
          break;
        }
      }
      if (saw_pointer) {
        AddFinding(findings, &file.scan, file.rel_path, token.line, "ptr-taint",
                   "std::hash over a pointer type is run-dependent (hash a stable id "
                   "instead)");
      }
      continue;
    }
    // Pointer-keyed container: map/set order (or hash) pointers by address.
    if (kKeyedContainers->contains(token.text) && i + 1 < tokens.size() &&
        tokens[i + 1].text == "<") {
      int angle = 1;
      bool key_has_pointer = false;
      for (std::size_t j = i + 2; j < tokens.size() && angle > 0; ++j) {
        if (tokens[j].text == "<") {
          ++angle;
        } else if (tokens[j].text == ">") {
          --angle;
        } else if (tokens[j].text == ">>") {
          angle -= 2;
        } else if (tokens[j].text == "," && angle == 1) {
          break;  // end of the key type
        } else if (tokens[j].text == "*" && angle == 1) {
          key_has_pointer = true;
        } else if (tokens[j].text == ";") {
          break;
        }
      }
      if (key_has_pointer) {
        AddFinding(findings, &file.scan, file.rel_path, token.line, "ptr-taint",
                   StrFormat("pointer-keyed '%s': pointer keys order/hash by address "
                             "(run-dependent; key by a stable id)",
                             token.text.c_str()));
      }
    }
  }
}

}  // namespace lint
}  // namespace pdpa
