// Phase-2 per-file rules: each runs over one file's token stream. Moved
// verbatim from the v1 monolith; behaviour (messages, line anchors, scope
// gating) is pinned by tests/lint_fixture_test.cmake.
#include "src/common/strings.h"
#include "tools/lint/lint.h"

namespace pdpa {
namespace lint {
namespace {

void AddFinding(std::vector<Finding>* findings, const ScanResult& scan, const std::string& file,
                int line, const char* rule, std::string message) {
  if (Suppressed(scan, line, rule)) {
    return;
  }
  findings->push_back(Finding{file, line, rule, std::move(message), false});
}

// Names declared (or bound as parameters) with an unordered container type:
// `std::unordered_map<K, V>[&*] name`. Template arguments are skipped by
// angle-depth counting; `>>` is one token and closes two levels.
std::set<std::string> UnorderedTypedNames(const std::vector<Token>& tokens) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].kind != Token::Kind::kIdent ||
        tokens[i].text.find("unordered") == std::string::npos) {
      continue;
    }
    std::size_t j = i + 1;
    if (j < tokens.size() && tokens[j].text == "<") {
      int angle = 1;
      for (++j; j < tokens.size() && angle > 0; ++j) {
        if (tokens[j].text == "<") {
          ++angle;
        } else if (tokens[j].text == ">") {
          --angle;
        } else if (tokens[j].text == ">>") {
          angle -= 2;
        } else if (tokens[j].text == ";") {
          angle = 0;  // malformed; bail out of the template scan
        }
      }
    }
    while (j < tokens.size() &&
           (tokens[j].text == "&" || tokens[j].text == "*" || tokens[j].text == "&&" ||
            tokens[j].text == "const")) {
      ++j;
    }
    if (j < tokens.size() && tokens[j].kind == Token::Kind::kIdent) {
      names.insert(tokens[j].text);
    }
  }
  return names;
}

}  // namespace

void CheckWallClock(const SourceFile& file, std::vector<Finding>* findings) {
  if (file.scope != Scope::kSrc && file.scope != Scope::kTools) {
    return;  // bench/ measures wall time by design.
  }
  static const std::set<std::string>* kBannedIdents = new std::set<std::string>{
      "rand", "srand", "system_clock", "high_resolution_clock", "steady_clock"};
  static const std::set<std::string>* kBannedCalls =
      new std::set<std::string>{"time", "clock"};
  const std::vector<Token>& tokens = file.scan.tokens;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& token = tokens[i];
    if (token.kind != Token::Kind::kIdent) {
      continue;
    }
    if (kBannedIdents->contains(token.text)) {
      // Sanctioned-clock allowance: the host-time self-profiler's one
      // translation unit is the only place in src/ allowed to read
      // steady_clock (everything else calls prof::NowNanos()). Only that
      // exact token in that exact file — system_clock etc. stay banned.
      if (token.text == "steady_clock" && file.rel_path == "src/obs/prof.cc") {
        continue;
      }
      AddFinding(findings, file.scan, file.rel_path, token.line, "wall-clock",
                 StrFormat("nondeterministic source '%s' in sim code (use SimTime)",
                           token.text.c_str()));
      continue;
    }
    if (kBannedCalls->contains(token.text) && i + 1 < tokens.size() &&
        tokens[i + 1].text == "(") {
      AddFinding(findings, file.scan, file.rel_path, token.line, "wall-clock",
                 StrFormat("nondeterministic source '%s()' in sim code (use SimTime)",
                           token.text.c_str()));
    }
  }
}

void CheckUnorderedIter(const SourceFile& file, std::vector<Finding>* findings) {
  const std::vector<Token>& tokens = file.scan.tokens;
  const std::set<std::string> unordered_names = UnorderedTypedNames(tokens);
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i].kind != Token::Kind::kIdent || tokens[i].text != "for" ||
        tokens[i + 1].text != "(") {
      continue;
    }
    // Walk the for-header; a range-for has a `:` at depth 1. `::` is one
    // token, so a bare `:` is unambiguous.
    int depth = 0;
    bool seen_colon = false;
    for (std::size_t j = i + 1; j < tokens.size(); ++j) {
      const Token& t = tokens[j];
      if (t.text == "(" || t.text == "[" || t.text == "{") {
        ++depth;
      } else if (t.text == ")" || t.text == "]" || t.text == "}") {
        --depth;
        if (depth == 0) {
          break;
        }
      } else if (t.text == ":" && depth == 1) {
        seen_colon = true;
      } else if (seen_colon && t.kind == Token::Kind::kIdent &&
                 (t.text.find("unordered") != std::string::npos ||
                  unordered_names.contains(t.text))) {
        AddFinding(findings, file.scan, file.rel_path, tokens[i].line, "unordered-iter",
                   "range-for over an unordered container: iteration order is "
                   "unspecified (sort first, or justify with // lint: ordered-ok)");
        break;
      }
    }
  }
}

void CheckFloatEq(const SourceFile& file, std::vector<Finding>* findings) {
  const std::vector<Token>& tokens = file.scan.tokens;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& token = tokens[i];
    if (token.kind != Token::Kind::kPunct || (token.text != "==" && token.text != "!=")) {
      continue;
    }
    const bool prev_float = i > 0 && IsFloatLiteral(tokens[i - 1]);
    const bool next_float = i + 1 < tokens.size() && IsFloatLiteral(tokens[i + 1]);
    if (prev_float || next_float) {
      AddFinding(findings, file.scan, file.rel_path, token.line, "float-eq",
                 StrFormat("'%s' against a floating-point literal (use NearlyEqual from "
                           "src/common/stats.h)",
                           token.text.c_str()));
    }
  }
}

void CheckDirectIo(const SourceFile& file, std::vector<Finding>* findings) {
  if (file.scope != Scope::kSrc) {
    return;  // Tools and benches own their stdout/stderr.
  }
  static const std::set<std::string>* kBannedCalls =
      new std::set<std::string>{"printf", "fprintf", "puts", "putchar"};
  static const std::set<std::string>* kBannedStreams =
      new std::set<std::string>{"cout", "cerr"};
  const std::vector<Token>& tokens = file.scan.tokens;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& token = tokens[i];
    if (token.kind != Token::Kind::kIdent) {
      continue;
    }
    // Call-position only: `printf` inside `__attribute__((format(printf,..)))`
    // is an identifier, not output.
    if (kBannedCalls->contains(token.text) && i + 1 < tokens.size() &&
        tokens[i + 1].text == "(") {
      AddFinding(findings, file.scan, file.rel_path, token.line, "direct-io",
                 StrFormat("'%s()' in src/ (emit through the obs layer or PDPA_LOG)",
                           token.text.c_str()));
      continue;
    }
    if (kBannedStreams->contains(token.text)) {
      AddFinding(findings, file.scan, file.rel_path, token.line, "direct-io",
                 StrFormat("'std::%s' in src/ (emit through the obs layer or PDPA_LOG)",
                           token.text.c_str()));
    }
  }
}

void CheckStreamFlush(const SourceFile& file, std::vector<Finding>* findings) {
  if (file.scope != Scope::kSrc) {
    return;  // Tools and benches own their streams' flushing policy.
  }
  const std::vector<Token>& tokens = file.scan.tokens;
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const Token& token = tokens[i];
    if (token.kind != Token::Kind::kIdent ||
        (token.text != "endl" && token.text != "flush")) {
      continue;
    }
    // Qualified (std::endl) or streamed (<< endl under a using-directive);
    // a plain identifier named `flush` is someone's variable, not I/O.
    const std::string& prev = tokens[i - 1].text;
    if (prev != "::" && prev != "<<") {
      continue;
    }
    AddFinding(findings, file.scan, file.rel_path, token.line, "stream-flush",
               StrFormat("'%s' in src/ flushes per line (write '\\n' and let BufWriter "
                         "batch; Flush() once at the end)",
                         token.text.c_str()));
  }
}

}  // namespace lint
}  // namespace pdpa
