// prv_stats — offline analysis of archived Paraver traces, the equivalent
// of the measurements the paper extracts with the Paraver tool (Table 2):
// kernel-thread migrations, burst statistics and machine utilization.
//
// Usage: prv_stats trace.prv [trace2.prv ...]
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/flags.h"
#include "src/trace/paraver_reader.h"

namespace pdpa {
namespace {

constexpr const char* kUsage = R"(usage: prv_stats trace.prv [more.prv ...]

Prints per-trace kernel-thread migrations, burst statistics and machine
utilization for archived Paraver traces.

flags:
  --help   this text
)";

int Run(int argc, char** argv) {
  FlagSet flags = FlagSet::Parse(argc - 1, argv + 1);
  if (flags.GetBool("help", false)) {
    std::printf("%s", kUsage);
    return 0;
  }
  const std::vector<std::string> inputs = flags.positional();
  for (const std::string& unknown : flags.UnconsumedFlags()) {
    std::fprintf(stderr, "unknown flag --%s (see --help)\n", unknown.c_str());
    return 2;
  }
  if (flags.had_parse_error()) {
    std::fprintf(stderr, "malformed flag value (see --help)\n");
    return 2;
  }
  if (inputs.empty()) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }
  std::printf("%-32s %12s %14s %14s %6s\n", "trace", "migrations", "avg burst(ms)",
              "bursts/cpu", "util");
  for (const std::string& input : inputs) {
    std::ifstream in(input);
    if (!in) {
      std::fprintf(stderr, "%s: cannot open\n", input.c_str());
      return 2;
    }
    ParaverTrace trace;
    std::string error;
    if (!ReadParaverTrace(in, &trace, &error)) {
      std::fprintf(stderr, "%s: %s\n", input.c_str(), error.c_str());
      return 2;
    }
    const TraceStats stats = ComputeStatsFromTrace(trace);
    std::printf("%-32s %12lld %14.0f %14.0f %5.0f%%\n", input.c_str(), stats.migrations,
                stats.avg_burst_ms, stats.avg_bursts_per_cpu, stats.utilization * 100.0);
  }
  return 0;
}

}  // namespace
}  // namespace pdpa

int main(int argc, char** argv) { return pdpa::Run(argc, argv); }
