// prv_stats — offline analysis of archived Paraver traces, the equivalent
// of the measurements the paper extracts with the Paraver tool (Table 2):
// kernel-thread migrations, burst statistics and machine utilization.
//
// Usage: prv_stats trace.prv [trace2.prv ...]
#include <cstdio>
#include <fstream>

#include "src/trace/paraver_reader.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: prv_stats trace.prv [more.prv ...]\n");
    return 2;
  }
  std::printf("%-32s %12s %14s %14s %6s\n", "trace", "migrations", "avg burst(ms)",
              "bursts/cpu", "util");
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i]);
    if (!in) {
      std::fprintf(stderr, "%s: cannot open\n", argv[i]);
      return 2;
    }
    pdpa::ParaverTrace trace;
    std::string error;
    if (!pdpa::ReadParaverTrace(in, &trace, &error)) {
      std::fprintf(stderr, "%s: %s\n", argv[i], error.c_str());
      return 2;
    }
    const pdpa::TraceStats stats = pdpa::ComputeStatsFromTrace(trace);
    std::printf("%-32s %12lld %14.0f %14.0f %5.0f%%\n", argv[i], stats.migrations,
                stats.avg_burst_ms, stats.avg_bursts_per_cpu, stats.utilization * 100.0);
  }
  return 0;
}
