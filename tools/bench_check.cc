// bench_check — compare a freshly generated BENCH_*.json against the
// committed baseline and fail on regression.
//
// The BENCH files are flat JSON objects (ParseFlatJson reads them), and the
// metrics fall into four classes:
//   * informational: wall-seconds and rates (hardware-dependent; CI runners
//     are not the machine the baseline was recorded on), plus run-shape
//     fields (jobs, shards, threads, repeat, hardware_concurrency).
//     Reported, never compared.
//   * ratio metrics (name contains "speedup" or "factor"): higher is
//     better and the ratio of two same-machine measurements transfers
//     across hardware, so the fresh value must stay within a relative
//     tolerance *below* the baseline (default 30%, override with --tol).
//   * booleans / strings: exact match (e.g. output_identical must stay
//     true).
//   * everything else (deterministic counts: ticks, cells, events): exact.
// --min imposes absolute floors (e.g. --min events_speedup=2 keeps the
// fast path's ">= 2x" acceptance criterion enforced in CI).
//
// Usage: bench_check BASELINE FRESH [flags]
//   --tol name=frac,...   per-metric relative tolerance (overrides class)
//   --min name=value,...  require fresh[name] >= value
//   --ignore name,...     skip these metrics entirely
//   --help                this text
// Exit: 0 ok, 1 regression, 2 usage/IO/parse error.
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/flags.h"
#include "src/common/strings.h"
#include "src/obs/event_log.h"

namespace pdpa {
namespace {

constexpr const char* kUsage = R"(usage: bench_check BASELINE FRESH [flags]

Compares a freshly generated bench JSON against the committed baseline:
deterministic counts and booleans must match exactly, ratio metrics
("speedup"/"factor") may drop at most the relative tolerance below the
baseline, wall-seconds and rates are informational only.

flags:
  --tol name=frac,...   per-metric relative tolerance (e.g. events_speedup=0.5)
  --min name=value,...  require fresh[name] >= value
  --ignore name,...     skip these metrics
  --help                this text
)";

using Fields = std::map<std::string, std::string>;

bool LoadFlatJson(const std::string& path, Fields* fields) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_check: cannot open %s\n", path.c_str());
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  if (!ParseFlatJson(text.str(), fields)) {
    std::fprintf(stderr, "bench_check: %s is not a flat JSON object\n", path.c_str());
    return false;
  }
  // "{}" parses fine but compares everything against nothing — every metric
  // silently passes. A bench that wrote no metrics is a broken run, not a
  // clean one.
  if (fields->empty()) {
    std::fprintf(stderr, "bench_check: %s has no metrics (empty JSON object — truncated bench run?)\n",
                 path.c_str());
    return false;
  }
  // ParseFlatJson keeps JSON null as the literal token "null"; a null metric
  // means the bench aborted mid-write, so refuse to compare against it.
  for (const auto& [name, value] : *fields) {
    if (value == "null") {
      std::fprintf(stderr, "bench_check: %s: metric '%s' is null (bench aborted mid-write?)\n",
                   path.c_str(), name.c_str());
      return false;
    }
  }
  return true;
}

bool Contains(const std::string& name, const char* needle) {
  return name.find(needle) != std::string::npos;
}

bool EndsWith(const std::string& name, const char* suffix) {
  const std::string s(suffix);
  return name.size() >= s.size() && name.compare(name.size() - s.size(), s.size(), s) == 0;
}

// Hardware-dependent or run-shape metrics: reported, never compared.
// skipped_single_cpu is a run-shape fact about the machine (sweep_bench and
// cluster_bench omit their parallel A/B on 1-CPU runners), so it can never
// "regress"; jobs/shards/threads are the worker counts those benches sized
// to the runner at hand.
bool IsInformational(const std::string& name) {
  return EndsWith(name, "_wall_s") || EndsWith(name, "_per_s") || name == "jobs" ||
         name == "shards" || name == "threads" || name == "repeat" ||
         name == "hardware_concurrency" || name == "skipped_single_cpu";
}

// Ratio of two same-machine measurements (or a deterministic ratio):
// transfers across hardware, compared as higher-is-better within tolerance.
bool IsRatio(const std::string& name) {
  return Contains(name, "speedup") || Contains(name, "factor");
}

// Parses "name=value,name=value" into the map; returns false on bad syntax.
bool ParseAssignments(const std::string& text, const char* flag,
                      std::map<std::string, double>* out) {
  for (const std::string& token : SplitTokens(text, ',')) {
    const std::size_t eq = token.find('=');
    double value = 0.0;
    if (eq == std::string::npos || !ParseDouble(token.substr(eq + 1), &value)) {
      std::fprintf(stderr, "bench_check: bad --%s entry '%s' (want name=value)\n", flag,
                   token.c_str());
      return false;
    }
    (*out)[token.substr(0, eq)] = value;
  }
  return true;
}

int Run(int argc, char** argv) {
  FlagSet flags = FlagSet::Parse(argc - 1, argv + 1);
  if (flags.GetBool("help", false)) {
    std::printf("%s", kUsage);
    return 0;
  }
  const std::string tol_text = flags.GetString("tol", "");
  const std::string min_text = flags.GetString("min", "");
  const std::string ignore_text = flags.GetString("ignore", "");
  const std::vector<std::string> inputs = flags.positional();
  for (const std::string& unknown : flags.UnconsumedFlags()) {
    std::fprintf(stderr, "unknown flag --%s (see --help)\n", unknown.c_str());
    return 2;
  }
  if (flags.had_parse_error()) {
    std::fprintf(stderr, "malformed flag value (see --help)\n");
    return 2;
  }
  if (inputs.size() != 2) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }
  std::map<std::string, double> tolerances;
  std::map<std::string, double> minimums;
  if (!ParseAssignments(tol_text, "tol", &tolerances) ||
      !ParseAssignments(min_text, "min", &minimums)) {
    return 2;
  }
  std::set<std::string> ignored;
  for (const std::string& name : SplitTokens(ignore_text, ',')) {
    ignored.insert(name);
  }

  Fields baseline;
  Fields fresh;
  if (!LoadFlatJson(inputs[0], &baseline) || !LoadFlatJson(inputs[1], &fresh)) {
    return 2;
  }

  int regressions = 0;
  const auto fail = [&regressions](const std::string& name, const char* why,
                                   const std::string& base_text, const std::string& fresh_text) {
    ++regressions;
    std::printf("FAIL %-32s %s (baseline %s, fresh %s)\n", name.c_str(), why, base_text.c_str(),
                fresh_text.c_str());
  };

  // A fresh run flagged skipped_single_cpu legitimately omits its parallel
  // A/B metrics: a baseline recorded on a multi-core machine then has fields
  // a 1-CPU runner cannot produce. Tolerate those as skips, not regressions.
  const auto skipped_it = fresh.find("skipped_single_cpu");
  const bool fresh_skipped = skipped_it != fresh.end() && skipped_it->second == "true";

  for (const auto& [name, base_text] : baseline) {
    if (ignored.contains(name)) {
      std::printf("skip %-32s (--ignore)\n", name.c_str());
      continue;
    }
    const auto it = fresh.find(name);
    if (it == fresh.end()) {
      if (fresh_skipped) {
        std::printf("skip %-32s (fresh run skipped on single CPU)\n", name.c_str());
      } else {
        fail(name, "missing from fresh run", base_text, "<absent>");
      }
      continue;
    }
    const std::string& fresh_text = it->second;
    double base_value = 0.0;
    double fresh_value = 0.0;
    const bool numeric =
        ParseDouble(base_text, &base_value) && ParseDouble(fresh_text, &fresh_value);
    if (IsInformational(name)) {
      std::printf("info %-32s baseline %s, fresh %s\n", name.c_str(), base_text.c_str(),
                  fresh_text.c_str());
      continue;
    }
    if (!numeric) {
      if (base_text != fresh_text) {
        fail(name, "value changed", base_text, fresh_text);
      } else {
        std::printf("ok   %-32s %s\n", name.c_str(), base_text.c_str());
      }
      continue;
    }
    const auto tol_it = tolerances.find(name);
    if (IsRatio(name) || tol_it != tolerances.end()) {
      const double tol = tol_it != tolerances.end() ? tol_it->second : 0.30;
      if (fresh_value < base_value * (1.0 - tol)) {
        fail(name, "dropped below tolerance", base_text, fresh_text);
      } else {
        std::printf("ok   %-32s baseline %s, fresh %s (tol %.0f%%)\n", name.c_str(),
                    base_text.c_str(), fresh_text.c_str(), tol * 100.0);
      }
      continue;
    }
    if (base_value != fresh_value) {  // lint: float-eq-ok — exact contract
      fail(name, "deterministic value changed", base_text, fresh_text);
    } else {
      std::printf("ok   %-32s %s\n", name.c_str(), base_text.c_str());
    }
  }
  for (const auto& [name, value] : minimums) {
    const auto it = fresh.find(name);
    double fresh_value = 0.0;
    if (it == fresh.end() || !ParseDouble(it->second, &fresh_value)) {
      fail(name, "--min metric missing or non-numeric", "<n/a>",
           it == fresh.end() ? "<absent>" : it->second);
      continue;
    }
    if (fresh_value < value) {
      ++regressions;
      std::printf("FAIL %-32s below --min %g (fresh %s)\n", name.c_str(), value,
                  it->second.c_str());
    } else {
      std::printf("ok   %-32s >= %g (fresh %s)\n", name.c_str(), value, it->second.c_str());
    }
  }
  for (const auto& [name, value] : fresh) {
    if (!baseline.contains(name)) {
      std::printf("new  %-32s %s (not in baseline)\n", name.c_str(), value.c_str());
    }
  }
  if (regressions > 0) {
    std::printf("bench_check: %d regression%s\n", regressions, regressions == 1 ? "" : "s");
    return 1;
  }
  std::printf("bench_check: ok (%zu metrics)\n", baseline.size());
  return 0;
}

}  // namespace
}  // namespace pdpa

int main(int argc, char** argv) { return pdpa::Run(argc, argv); }
