// pdpa_sim — command-line driver for the NANOS/PDPA simulator.
//
// Run any workload under any policy and inspect the paper's metrics, or
// replay/archive SWF traces and dump Paraver/ASCII execution views.
//
// Examples:
//   pdpa_sim --workload w3 --load 1.0 --policy pdpa
//   pdpa_sim --workload w4 --policy equip --untuned --ml 4
//   pdpa_sim --swf-in trace.swf --policy pdpa --view --prv-out run.prv
//   pdpa_sim --workload w2 --load 0.8 --swf-out w2.swf --dry-run
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/common/flags.h"
#include "src/common/logging.h"
#include "src/common/strings.h"
#include "src/obs/counters.h"
#include "src/obs/event_log.h"
#include "src/obs/prof.h"
#include "src/obs/timeseries.h"
#include "src/obs/trace_export.h"
#include "src/qs/swf.h"
#include "src/trace/paraver_writer.h"
#include "src/workload/cluster_cell.h"
#include "src/workload/experiment.h"

namespace pdpa {
namespace {

constexpr const char* kUsage = R"(usage: pdpa_sim [flags]

workload selection (one of):
  --workload w1|w2|w3|w4   generated workload (default w1)
  --swf-in FILE            replay an SWF trace instead

generator flags:
  --load F                 target machine load fraction (default 1.0)
  --seed N                 RNG seed (default 42)
  --untuned                override every request to 30 CPUs
  --swf-out FILE           archive the generated workload as SWF
  --dry-run                generate/archive only, do not simulate

scheduler flags:
  --policy irix|equip|equal_eff|pdpa|dynamic   (default pdpa)
  --queue-order fcfs|sjf   job selection within the queue (default fcfs)
  --ml N                   fixed ML (baselines) / default ML (PDPA), default 4
  --cpus N                 usable processors (default 60)
  --nodes N                cluster of N SMP nodes instead of one machine
                           (default 1; the machine is then nodes x
                           cpus_per_node and --cpus is ignored)
  --cpus_per_node N        processors per cluster node (default 60)
  --placement rr|mf|ll     cluster placement policy: round-robin, most-free,
                           least-loaded (default rr)
  --shards N               worker event loops for the cluster engine
                           (default 1; outputs are shard-count invariant)
  --no_arrival_batch       disable the cluster engine's epoch-batched
                           arrival handling (one barrier per arrival, the
                           reference protocol; outputs differ only in the
                           cluster.*_batch* counters). Requires --nodes > 1
  --target-eff F           PDPA target efficiency (default 0.7)
  --high-eff F             PDPA high efficiency (default 0.9)
  --step N                 PDPA allocation step (default 4)
  --no-relative-speedup    disable PDPA's RelativeSpeedup test (ablation)
  --no-coordination        disable PDPA's coordinated ML rule (ablation)
  --dynamic-target         load-adaptive target efficiency
  --exact_ticks            fire the progress tick at every grid point
                           (disables event-horizon tick elision; A/B check)

output flags:
  --view                   print the ASCII execution view (Fig. 5 style)
  --prv-out FILE           write a Paraver trace of the execution
  --pcf-out FILE           write the companion Paraver config (names/colors)
  --ml-timeline            print the multiprogramming level over time
  --help                   this text

flight recorder (observability):
  --events_out FILE        write the structured event log (JSONL; feed to
                           pdpa_report for per-app timelines)
  --timeseries_out FILE    write the per-quantum allocation time-series (CSV)
  --trace_out FILE         write a Chrome/Perfetto trace (trace-event JSON):
                           job lifecycle tracks + allocation counters,
                           reconstructed from the event log (load the file
                           in ui.perfetto.dev or chrome://tracing)
  --prof                   print the host-time self-profiler breakdown
                           (span hit counts are deterministic; ns are not)
  --prof_out FILE          write the profiler spans as JSONL
  --counters               print the counters-registry snapshot after the run
  --log_level LEVEL        debug|info|warning|error|none (default warning);
                           log lines are stamped with simulation time
)";

int Run(int argc, char** argv) {
  FlagSet flags = FlagSet::Parse(argc - 1, argv + 1);
  if (flags.GetBool("help", false)) {
    std::printf("%s", kUsage);
    return 0;
  }

  const std::string log_level = flags.GetString("log_level", "warning");
  LogLevel level = LogLevel::kWarning;
  if (!ParseLogLevel(log_level, &level)) {
    std::fprintf(stderr, "unknown --log_level %s\n", log_level.c_str());
    return 2;
  }
  SetLogLevel(level);

  ExperimentConfig config;
  const std::string workload = flags.GetString("workload", "w1");
  if (workload == "w1") {
    config.workload = WorkloadId::kW1;
  } else if (workload == "w2") {
    config.workload = WorkloadId::kW2;
  } else if (workload == "w3") {
    config.workload = WorkloadId::kW3;
  } else if (workload == "w4") {
    config.workload = WorkloadId::kW4;
  } else {
    std::fprintf(stderr, "unknown --workload %s\n", workload.c_str());
    return 2;
  }
  config.load = flags.GetDouble("load", 1.0);
  config.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  config.untuned = flags.GetBool("untuned", false);
  config.rm.exact_ticks = flags.GetBool("exact_ticks", false);

  const std::string policy = flags.GetString("policy", "pdpa");
  if (policy == "irix") {
    config.policy = PolicyKind::kIrix;
  } else if (policy == "equip") {
    config.policy = PolicyKind::kEquipartition;
  } else if (policy == "equal_eff") {
    config.policy = PolicyKind::kEqualEfficiency;
  } else if (policy == "pdpa") {
    config.policy = PolicyKind::kPdpa;
  } else if (policy == "dynamic") {
    config.policy = PolicyKind::kMcCannDynamic;
  } else {
    std::fprintf(stderr, "unknown --policy %s\n", policy.c_str());
    return 2;
  }
  const std::string queue_order = flags.GetString("queue-order", "fcfs");
  if (queue_order == "sjf") {
    config.queue_order = QueueOrder::kShortestDemandFirst;
  } else if (queue_order != "fcfs") {
    std::fprintf(stderr, "unknown --queue-order %s\n", queue_order.c_str());
    return 2;
  }
  config.multiprogramming_level = flags.GetInt("ml", 4);
  config.num_cpus = flags.GetInt("cpus", 60);
  const int nodes = flags.GetInt("nodes", 1);
  const int cpus_per_node = flags.GetInt("cpus_per_node", 60);
  const int shards = flags.GetInt("shards", 1);
  const std::string placement_name = flags.GetString("placement", "rr");
  PlacementPolicy placement = PlacementPolicy::kRoundRobin;
  if (!ParsePlacementPolicy(placement_name, &placement)) {
    std::fprintf(stderr, "unknown --placement %s\n", placement_name.c_str());
    return 2;
  }
  if (nodes < 1 || cpus_per_node < 1 || shards < 1) {
    std::fprintf(stderr, "--nodes, --cpus_per_node and --shards must be >= 1\n");
    return 2;
  }
  const bool no_arrival_batch = flags.GetBool("no_arrival_batch", false);
  if (no_arrival_batch && nodes <= 1) {
    std::fprintf(stderr, "--no_arrival_batch is cluster-only (requires --nodes > 1)\n");
    return 2;
  }
  if (nodes > 1) {
    // Workload generation (and SWF archiving) must see the whole cluster's
    // capacity so arrival rates scale with it.
    config.num_cpus = nodes * cpus_per_node;
  }
  config.pdpa.target_eff = flags.GetDouble("target-eff", 0.7);
  config.pdpa.high_eff = flags.GetDouble("high-eff", 0.9);
  config.pdpa.step = flags.GetInt("step", 4);
  config.pdpa.use_relative_speedup = !flags.GetBool("no-relative-speedup", false);
  config.pdpa.dynamic_target = flags.GetBool("dynamic-target", false);
  config.pdpa_coordinated_ml = !flags.GetBool("no-coordination", false);

  const std::string swf_in = flags.GetString("swf-in", "");
  if (!swf_in.empty()) {
    std::ifstream in(swf_in);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", swf_in.c_str());
      return 2;
    }
    std::string error;
    if (!ReadSwf(in, &config.jobs_override, &error)) {
      std::fprintf(stderr, "SWF parse error in %s: %s\n", swf_in.c_str(), error.c_str());
      return 2;
    }
  }

  const bool want_view = flags.GetBool("view", false);
  const std::string prv_out = flags.GetString("prv-out", "");
  const std::string pcf_out = flags.GetString("pcf-out", "");
  const bool want_ml_timeline = flags.GetBool("ml-timeline", false);
  config.record_trace = want_view || !prv_out.empty();

  const std::string swf_out = flags.GetString("swf-out", "");
  const bool dry_run = flags.GetBool("dry-run", false);

  const std::string events_out = flags.GetString("events_out", "");
  const std::string timeseries_out = flags.GetString("timeseries_out", "");
  const std::string trace_out = flags.GetString("trace_out", "");
  const bool want_prof = flags.GetBool("prof", false);
  const std::string prof_out = flags.GetString("prof_out", "");
  const bool want_counters = flags.GetBool("counters", false);

  for (const std::string& unknown : flags.UnconsumedFlags()) {
    std::fprintf(stderr, "unknown flag --%s (see --help)\n", unknown.c_str());
    return 2;
  }
  if (flags.had_parse_error()) {
    std::fprintf(stderr, "malformed flag value (see --help)\n");
    return 2;
  }

  if (!swf_out.empty() || dry_run) {
    std::vector<JobSpec> jobs = config.jobs_override;
    if (jobs.empty()) {
      jobs = BuildWorkload(config.workload, config.load, config.seed, config.untuned,
                           config.num_cpus);
    }
    if (!swf_out.empty()) {
      std::ofstream out(swf_out);
      WriteSwf(jobs, out, WorkloadName(config.workload));
      std::printf("wrote %zu jobs to %s\n", jobs.size(), swf_out.c_str());
    }
    if (dry_run) {
      return 0;
    }
    config.jobs_override = jobs;
  }

  if (nodes > 1) {
    // Cluster mode: per-node simulations via the sharded engine
    // (src/cluster). Trace/queue-order features are wired through a single
    // machine's RM and stay single-node only; --prof profiles the
    // controller thread (plus the node spans when --shards 1).
    if (config.record_trace || !pcf_out.empty() || want_ml_timeline || !trace_out.empty() ||
        config.queue_order != QueueOrder::kFcfs) {
      std::fprintf(stderr,
                   "--view/--prv-out/--pcf-out/--ml-timeline/--trace_out/"
                   "--queue-order sjf are single-node only (incompatible with --nodes)\n");
      return 2;
    }
    Profiler profiler;
    if (want_prof || !prof_out.empty()) {
      config.profiler = &profiler;
    }
    ClusterCellConfig cluster;
    cluster.nodes = nodes;
    cluster.cpus_per_node = cpus_per_node;
    cluster.placement = placement;
    cluster.shards = shards;
    cluster.arrival_batch = !no_arrival_batch;
    cluster.capture_counters = want_counters;
    cluster.capture_events = !events_out.empty();
    cluster.capture_timeseries = !timeseries_out.empty();
    const ClusterCellOutput out = RunClusterCell(config, cluster, BuildJobs(config));
    const ExperimentResult& result = out.result;
    std::printf("policy %s, %d jobs, makespan %.1f s, peak node ML %d%s\n",
                result.policy_name.c_str(), result.metrics.jobs, result.metrics.makespan_s,
                result.max_ml, result.completed ? "" : "  [CUTOFF HIT]");
    std::printf("cluster: %d nodes x %d cpus, %d shard(s)\n", nodes, cpus_per_node, shards);
    std::printf("%-10s %6s %12s %12s %10s %10s\n", "class", "jobs", "response(s)", "exec(s)",
                "wait(s)", "avg cpus");
    for (const auto& [app_class, metrics] : result.metrics.per_class) {
      std::printf("%-10s %6d %12.1f %12.1f %10.1f %10.1f\n", AppClassName(app_class),
                  metrics.count, metrics.avg_response_s, metrics.avg_exec_s,
                  metrics.avg_wait_s, metrics.avg_alloc);
    }
    if (!events_out.empty()) {
      std::ofstream out_stream(events_out);
      if (!out_stream) {
        std::fprintf(stderr, "cannot open %s\n", events_out.c_str());
        return 2;
      }
      out_stream << out.events_jsonl;
      const long long lines =
          static_cast<long long>(std::count(out.events_jsonl.begin(), out.events_jsonl.end(), '\n'));
      std::printf("event log: %lld events written to %s\n", lines, events_out.c_str());
    }
    if (!timeseries_out.empty()) {
      std::ofstream out_stream(timeseries_out);
      if (!out_stream) {
        std::fprintf(stderr, "cannot open %s\n", timeseries_out.c_str());
        return 2;
      }
      out_stream << out.timeseries_csv;
      std::printf("time-series: merged cluster CSV written to %s\n", timeseries_out.c_str());
    }
    if (want_prof) {
      std::string table;
      AppendProfTable(profiler, &table);
      std::printf("\nhost-time profile (hits are deterministic; times are not):\n%s",
                  table.c_str());
    }
    if (!prof_out.empty()) {
      std::ofstream prof_stream(prof_out);
      if (!prof_stream) {
        std::fprintf(stderr, "cannot open %s\n", prof_out.c_str());
        return 2;
      }
      std::string jsonl;
      AppendProfJsonl(profiler, "pdpa_sim", &jsonl);
      prof_stream << jsonl;
      std::printf("profile: %lld span hits written to %s\n", profiler.TotalHits(),
                  prof_out.c_str());
    }
    if (want_counters) {
      std::printf("\ncounters:\n%s", out.counters.ToString().c_str());
    }
    return 0;
  }

  std::ofstream events_stream;
  if (!events_out.empty()) {
    events_stream.open(events_out);
    if (!events_stream) {
      std::fprintf(stderr, "cannot open %s\n", events_out.c_str());
      return 2;
    }
  }
  std::ofstream trace_stream;
  if (!trace_out.empty()) {
    trace_stream.open(trace_out);
    if (!trace_stream) {
      std::fprintf(stderr, "cannot open %s\n", trace_out.c_str());
      return 2;
    }
  }
  // The trace exporter replays the event log, so --trace_out captures the
  // records in memory; --events_out then writes that same byte stream (the
  // recording is identical either way).
  std::ostringstream events_buffer;
  std::ostream* events_sink = nullptr;
  if (!trace_out.empty()) {
    events_sink = &events_buffer;
  } else if (!events_out.empty()) {
    events_sink = &events_stream;
  }
  EventLog events(events_sink);
  if (events.enabled()) {
    config.event_log = &events;
  }
  TimeSeriesSampler timeseries;
  if (!timeseries_out.empty()) {
    config.timeseries = &timeseries;
  }
  Profiler profiler;
  if (want_prof || !prof_out.empty()) {
    config.profiler = &profiler;
  }
  // A run-local registry keeps the --counters dump scoped to this run (and
  // exercises the same per-run path the sweep engine uses).
  Registry registry;
  config.registry = &registry;

  const ExperimentResult result = RunExperiment(config);
  std::printf("policy %s, %d jobs, makespan %.1f s, peak ML %d%s\n",
              result.policy_name.c_str(), result.metrics.jobs, result.metrics.makespan_s,
              result.max_ml, result.completed ? "" : "  [CUTOFF HIT]");
  if (config.record_trace) {
    std::printf("migrations %lld, avg burst %.0f ms, utilization %.0f%%\n",
                result.trace_stats.migrations, result.trace_stats.avg_burst_ms,
                result.utilization * 100.0);
  }
  std::printf("%-10s %6s %12s %12s %10s %10s\n", "class", "jobs", "response(s)", "exec(s)",
              "wait(s)", "avg cpus");
  for (const auto& [app_class, metrics] : result.metrics.per_class) {
    std::printf("%-10s %6d %12.1f %12.1f %10.1f %10.1f\n", AppClassName(app_class),
                metrics.count, metrics.avg_response_s, metrics.avg_exec_s, metrics.avg_wait_s,
                metrics.avg_alloc);
  }
  if (want_view) {
    std::printf("\n%s", result.ascii_view.c_str());
  }
  if (want_ml_timeline) {
    std::printf("\nmultiprogramming level timeline (s, jobs):\n");
    for (const auto& [when, ml] : result.ml_timeline_s) {
      std::printf("  %8.1f %d\n", when, ml);
    }
  }
  if (!prv_out.empty()) {
    std::ofstream out(prv_out);
    out << result.paraver_trace;
    std::printf("\nParaver trace written to %s\n", prv_out.c_str());
  }
  if (!pcf_out.empty()) {
    std::ofstream out(pcf_out);
    WriteParaverConfig(result.metrics.jobs, out);
    std::printf("Paraver config written to %s\n", pcf_out.c_str());
  }
  if (events.enabled()) {
    events.Flush();  // The log buffers; push bytes out before reporting.
    if (!trace_out.empty()) {
      const std::string captured = events_buffer.str();
      if (!events_out.empty()) {
        events_stream << captured;
      }
      TraceEventWriter writer(&trace_stream);
      const std::string process_name =
          StrFormat("%s_%.2f_%s", workload.c_str(), config.load, result.policy_name.c_str());
      const long long bad_lines = ExportSimTrace(captured, 1, process_name, &writer);
      writer.Finish();
      if (bad_lines > 0) {
        std::fprintf(stderr, "trace export skipped %lld malformed event lines\n", bad_lines);
      }
      std::printf("trace: %lld trace events written to %s\n", writer.events_written(),
                  trace_out.c_str());
    }
    if (!events_out.empty()) {
      std::printf("event log: %lld events written to %s\n", events.lines_written(),
                  events_out.c_str());
    }
  }
  if (!timeseries_out.empty()) {
    std::ofstream out(timeseries_out);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", timeseries_out.c_str());
      return 2;
    }
    timeseries.WriteCsv(out);
    std::printf("time-series: %zu app windows, %zu machine samples written to %s\n",
                timeseries.apps().size(), timeseries.machine().size(), timeseries_out.c_str());
  }
  if (want_prof) {
    std::string table;
    AppendProfTable(profiler, &table);
    std::printf("\nhost-time profile (hits are deterministic; times are not):\n%s",
                table.c_str());
  }
  if (!prof_out.empty()) {
    std::ofstream out(prof_out);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", prof_out.c_str());
      return 2;
    }
    std::string jsonl;
    AppendProfJsonl(profiler, "pdpa_sim", &jsonl);
    out << jsonl;
    std::printf("profile: %lld span hits written to %s\n", profiler.TotalHits(),
                prof_out.c_str());
  }
  if (want_counters) {
    std::printf("\ncounters:\n%s", registry.Snapshot().ToString().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace pdpa

int main(int argc, char** argv) { return pdpa::Run(argc, argv); }
