// pdpa_lint — the project's determinism & hygiene linter.
//
// A self-contained tokenizer (no libclang) over C++ sources that enforces
// the invariants the golden byte-identity tests depend on, at lint time
// instead of test time:
//
//   wall-clock      no wall-clock / nondeterministic sources in sim code
//                   (src/, tools/): std::rand, srand, time(, clock(,
//                   system_clock, high_resolution_clock, steady_clock.
//                   bench/ is exempt (benchmarks measure wall time).
//                   Sanctioned-clock allowance: steady_clock is allowed in
//                   src/obs/prof.cc — the self-profiler's single host-clock
//                   TU; everything else must call prof::NowNanos().
//   unordered-iter  no range-for over std::unordered_{map,set}: iteration
//                   order is unspecified, so anything it feeds (output,
//                   allocation decisions) becomes nondeterministic.
//   float-eq        no ==/!= against floating-point literals; use
//                   NearlyEqual (src/common/stats.h).
//   direct-io       no printf/fprintf/puts/putchar calls or std::cout/cerr
//                   in src/ — output goes through the obs layer or
//                   PDPA_LOG.
//   stream-flush    no std::endl / std::flush in src/ — a flush per line is
//                   a syscall per line and defeats BufWriter batching; write
//                   '\n' and Flush() once at the end.
//
// Per-line suppression: a trailing `// lint: <rule>-ok` comment (e.g.
// `// lint: ordered-ok`) justifies one line. Per-file suppression: counted,
// expiring waivers in lint_waivers.txt (see --help for the format).
//
// Output is `file:line: rule-id: message`, deterministic (files sorted,
// findings in line order). Exit 0 clean, 1 findings, 2 usage/IO error.
// There is deliberately no --fix: every violation is either a real bug or
// deserves a written justification.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <ctime>  // lint: wall-clock-ok (waiver expiry needs today's date)
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/flags.h"
#include "src/common/strings.h"

namespace pdpa {
namespace {

constexpr const char* kUsage = R"(usage: pdpa_lint [paths...] [flags]

Lints C++ sources (*.h, *.cc) for determinism and hygiene violations.
With no paths, lints src/ tools/ bench/ under --root.

flags:
  --root DIR        repo root; scopes rules and waiver paths (default ".")
  --waivers FILE    waiver list (default <root>/lint_waivers.txt if present)
  --json FILE       also write a JSON report ("-" for stdout)
  --today YYYY-MM-DD  waiver-expiry reference date (default: today)
  --treat-as DIR    classify explicit paths as src|tools|bench for rule
                    scoping (fixture testing)
  --list-rules      print the rule catalog and exit
  --help            this text

waiver format (lint_waivers.txt), one per line:
  <rule-id> <path-relative-to-root> <max-findings> <expires:YYYY-MM-DD> <reason...>
A waiver suppresses up to <max-findings> findings of <rule-id> in <path>
until <expires>; expired or over-budget waivers surface every finding.
)";

// ---------------------------------------------------------------------------
// Rule catalog
// ---------------------------------------------------------------------------

enum class Scope { kSrc, kTools, kBench, kOther };

struct Rule {
  const char* id;
  const char* summary;
};

constexpr Rule kRules[] = {
    {"wall-clock",
     "no wall-clock/nondeterministic sources in sim code (src/, tools/); "
     "simulation time is the only clock (sanctioned host clock: steady_clock "
     "in src/obs/prof.cc only)"},
    {"unordered-iter",
     "no range-for over unordered containers (unspecified order feeds output "
     "or allocation decisions); justify with // lint: ordered-ok"},
    {"float-eq",
     "no ==/!= against floating-point literals; use NearlyEqual "
     "(src/common/stats.h) or justify with // lint: float-eq-ok"},
    {"direct-io",
     "no printf-family calls or std::cout/cerr in src/; use the obs layer or "
     "PDPA_LOG"},
    {"stream-flush",
     "no std::endl/std::flush in src/; a flush per line is a syscall per line "
     "and defeats BufWriter — write '\\n' and Flush() once"},
};

// Inline-suppression comment spelling -> rule id.
const std::map<std::string, std::string>& DirectiveTable() {
  static const std::map<std::string, std::string>* table =
      new std::map<std::string, std::string>{
          {"wall-clock-ok", "wall-clock"},
          {"ordered-ok", "unordered-iter"},
          {"float-eq-ok", "float-eq"},
          {"direct-io-ok", "direct-io"},
          {"stream-flush-ok", "stream-flush"},
      };
  return *table;
}

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

struct Token {
  enum class Kind { kIdent, kNumber, kString, kPunct };
  Kind kind = Kind::kPunct;
  std::string text;
  int line = 0;
};

struct ScanResult {
  std::vector<Token> tokens;
  // line -> rule ids suppressed on that line by `// lint: <directive>`.
  std::map<int, std::set<std::string>> suppressed;
};

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool IsIdentChar(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }
bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

// Registers the `// lint: ...` directives of one comment on `line`.
void ParseDirectives(const std::string& comment, int line, ScanResult* out) {
  const std::size_t pos = comment.find("lint:");
  if (pos == std::string::npos) {
    return;
  }
  std::istringstream words(comment.substr(pos + 5));
  std::string word;
  while (words >> word) {
    while (!word.empty() && (word.back() == ',' || word.back() == '.')) {
      word.pop_back();
    }
    const auto it = DirectiveTable().find(word);
    if (it != DirectiveTable().end()) {
      out->suppressed[line].insert(it->second);
    }
  }
}

// Two-character operators we keep whole (only ==, != and :: matter to the
// rules; the rest are tokenized whole so neighbours stay meaningful).
bool IsTwoCharOp(char a, char b) {
  static const char* kOps[] = {"==", "!=", "<=", ">=", "::", "->", "&&", "||", "<<",
                               ">>", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
                               "++", "--"};
  for (const char* op : kOps) {
    if (op[0] == a && op[1] == b) {
      return true;
    }
  }
  return false;
}

ScanResult Scan(const std::string& text) {
  ScanResult result;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = text.size();
  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment: capture for directives.
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      const std::size_t start = i + 2;
      while (i < n && text[i] != '\n') {
        ++i;
      }
      ParseDirectives(text.substr(start, i - start), line, &result);
      continue;
    }
    // Block comment: directives register on the line the comment opens.
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      const int open_line = line;
      const std::size_t start = i + 2;
      i += 2;
      while (i + 1 < n && !(text[i] == '*' && text[i + 1] == '/')) {
        if (text[i] == '\n') {
          ++line;
        }
        ++i;
      }
      ParseDirectives(text.substr(start, i - start), open_line, &result);
      i = std::min(n, i + 2);
      continue;
    }
    // Raw string literal: R"delim(...)delim" — skip the payload verbatim.
    if (c == 'R' && i + 1 < n && text[i + 1] == '"') {
      std::size_t d = i + 2;
      while (d < n && text[d] != '(') {
        ++d;
      }
      const std::string closer = ")" + text.substr(i + 2, d - (i + 2)) + "\"";
      const std::size_t end = text.find(closer, d);
      const std::size_t stop = end == std::string::npos ? n : end + closer.size();
      result.tokens.push_back({Token::Kind::kString, "R\"...\"", line});
      for (std::size_t k = i; k < stop; ++k) {
        if (text[k] == '\n') {
          ++line;
        }
      }
      i = stop;
      continue;
    }
    // String / char literal (escapes honoured, payload not tokenized).
    if (c == '"' || c == '\'') {
      const char quote = c;
      ++i;
      while (i < n && text[i] != quote) {
        if (text[i] == '\\' && i + 1 < n) {
          ++i;
        }
        if (text[i] == '\n') {
          ++line;
        }
        ++i;
      }
      ++i;
      result.tokens.push_back({Token::Kind::kString, std::string(1, quote), line});
      continue;
    }
    if (IsIdentStart(c)) {
      const std::size_t start = i;
      while (i < n && IsIdentChar(text[i])) {
        ++i;
      }
      result.tokens.push_back({Token::Kind::kIdent, text.substr(start, i - start), line});
      continue;
    }
    if (IsDigit(c) || (c == '.' && i + 1 < n && IsDigit(text[i + 1]))) {
      const std::size_t start = i;
      while (i < n) {
        const char d = text[i];
        if (IsIdentChar(d) || d == '.' || d == '\'') {
          // Exponent signs belong to the number: 1e+9, 0x1p-3.
          if ((d == 'e' || d == 'E' || d == 'p' || d == 'P') && i + 1 < n &&
              (text[i + 1] == '+' || text[i + 1] == '-')) {
            ++i;
          }
          ++i;
          continue;
        }
        break;
      }
      result.tokens.push_back({Token::Kind::kNumber, text.substr(start, i - start), line});
      continue;
    }
    if (i + 1 < n && IsTwoCharOp(c, text[i + 1])) {
      result.tokens.push_back({Token::Kind::kPunct, text.substr(i, 2), line});
      i += 2;
      continue;
    }
    result.tokens.push_back({Token::Kind::kPunct, std::string(1, c), line});
    ++i;
  }
  return result;
}

bool IsFloatLiteral(const Token& token) {
  if (token.kind != Token::Kind::kNumber) {
    return false;
  }
  const std::string& t = token.text;
  if (t.size() > 1 && t[0] == '0' && (t[1] == 'x' || t[1] == 'X')) {
    return t.find('.') != std::string::npos || t.find('p') != std::string::npos ||
           t.find('P') != std::string::npos;
  }
  return t.find('.') != std::string::npos || t.find('e') != std::string::npos ||
         t.find('E') != std::string::npos || t.back() == 'f' || t.back() == 'F';
}

// ---------------------------------------------------------------------------
// Findings & rules
// ---------------------------------------------------------------------------

struct Finding {
  std::string file;  // root-relative
  int line = 0;
  std::string rule;
  std::string message;
  bool waived = false;
};

bool Suppressed(const ScanResult& scan, int line, const std::string& rule) {
  const auto it = scan.suppressed.find(line);
  return it != scan.suppressed.end() && it->second.contains(rule);
}

void AddFinding(std::vector<Finding>* findings, const ScanResult& scan, const std::string& file,
                int line, const char* rule, std::string message) {
  if (Suppressed(scan, line, rule)) {
    return;
  }
  findings->push_back(Finding{file, line, rule, std::move(message), false});
}

void CheckWallClock(const ScanResult& scan, Scope scope, const std::string& file,
                    std::vector<Finding>* findings) {
  if (scope != Scope::kSrc && scope != Scope::kTools) {
    return;  // bench/ measures wall time by design.
  }
  static const std::set<std::string>* kBannedIdents = new std::set<std::string>{
      "rand", "srand", "system_clock", "high_resolution_clock", "steady_clock"};
  static const std::set<std::string>* kBannedCalls =
      new std::set<std::string>{"time", "clock"};
  const std::vector<Token>& tokens = scan.tokens;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& token = tokens[i];
    if (token.kind != Token::Kind::kIdent) {
      continue;
    }
    if (kBannedIdents->contains(token.text)) {
      // Sanctioned-clock allowance: the host-time self-profiler's one
      // translation unit is the only place in src/ allowed to read
      // steady_clock (everything else calls prof::NowNanos()). Only that
      // exact token in that exact file — system_clock etc. stay banned.
      if (token.text == "steady_clock" && file == "src/obs/prof.cc") {
        continue;
      }
      AddFinding(findings, scan, file, token.line, "wall-clock",
                 StrFormat("nondeterministic source '%s' in sim code (use SimTime)",
                           token.text.c_str()));
      continue;
    }
    if (kBannedCalls->contains(token.text) && i + 1 < tokens.size() &&
        tokens[i + 1].text == "(") {
      AddFinding(findings, scan, file, token.line, "wall-clock",
                 StrFormat("nondeterministic source '%s()' in sim code (use SimTime)",
                           token.text.c_str()));
    }
  }
}

// Names declared (or bound as parameters) with an unordered container type:
// `std::unordered_map<K, V>[&*] name`. Template arguments are skipped by
// angle-depth counting; `>>` is one token and closes two levels.
std::set<std::string> UnorderedTypedNames(const std::vector<Token>& tokens) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].kind != Token::Kind::kIdent ||
        tokens[i].text.find("unordered") == std::string::npos) {
      continue;
    }
    std::size_t j = i + 1;
    if (j < tokens.size() && tokens[j].text == "<") {
      int angle = 1;
      for (++j; j < tokens.size() && angle > 0; ++j) {
        if (tokens[j].text == "<") {
          ++angle;
        } else if (tokens[j].text == ">") {
          --angle;
        } else if (tokens[j].text == ">>") {
          angle -= 2;
        } else if (tokens[j].text == ";") {
          angle = 0;  // malformed; bail out of the template scan
        }
      }
    }
    while (j < tokens.size() &&
           (tokens[j].text == "&" || tokens[j].text == "*" || tokens[j].text == "&&" ||
            tokens[j].text == "const")) {
      ++j;
    }
    if (j < tokens.size() && tokens[j].kind == Token::Kind::kIdent) {
      names.insert(tokens[j].text);
    }
  }
  return names;
}

void CheckUnorderedIter(const ScanResult& scan, const std::string& file,
                        std::vector<Finding>* findings) {
  const std::vector<Token>& tokens = scan.tokens;
  const std::set<std::string> unordered_names = UnorderedTypedNames(tokens);
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i].kind != Token::Kind::kIdent || tokens[i].text != "for" ||
        tokens[i + 1].text != "(") {
      continue;
    }
    // Walk the for-header; a range-for has a `:` at depth 1. `::` is one
    // token, so a bare `:` is unambiguous.
    int depth = 0;
    bool seen_colon = false;
    for (std::size_t j = i + 1; j < tokens.size(); ++j) {
      const Token& t = tokens[j];
      if (t.text == "(" || t.text == "[" || t.text == "{") {
        ++depth;
      } else if (t.text == ")" || t.text == "]" || t.text == "}") {
        --depth;
        if (depth == 0) {
          break;
        }
      } else if (t.text == ":" && depth == 1) {
        seen_colon = true;
      } else if (seen_colon && t.kind == Token::Kind::kIdent &&
                 (t.text.find("unordered") != std::string::npos ||
                  unordered_names.contains(t.text))) {
        AddFinding(findings, scan, file, tokens[i].line, "unordered-iter",
                   "range-for over an unordered container: iteration order is "
                   "unspecified (sort first, or justify with // lint: ordered-ok)");
        break;
      }
    }
  }
}

void CheckFloatEq(const ScanResult& scan, const std::string& file,
                  std::vector<Finding>* findings) {
  const std::vector<Token>& tokens = scan.tokens;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& token = tokens[i];
    if (token.kind != Token::Kind::kPunct || (token.text != "==" && token.text != "!=")) {
      continue;
    }
    const bool prev_float = i > 0 && IsFloatLiteral(tokens[i - 1]);
    const bool next_float = i + 1 < tokens.size() && IsFloatLiteral(tokens[i + 1]);
    if (prev_float || next_float) {
      AddFinding(findings, scan, file, token.line, "float-eq",
                 StrFormat("'%s' against a floating-point literal (use NearlyEqual from "
                           "src/common/stats.h)",
                           token.text.c_str()));
    }
  }
}

void CheckDirectIo(const ScanResult& scan, Scope scope, const std::string& file,
                   std::vector<Finding>* findings) {
  if (scope != Scope::kSrc) {
    return;  // Tools and benches own their stdout/stderr.
  }
  static const std::set<std::string>* kBannedCalls =
      new std::set<std::string>{"printf", "fprintf", "puts", "putchar"};
  static const std::set<std::string>* kBannedStreams =
      new std::set<std::string>{"cout", "cerr"};
  const std::vector<Token>& tokens = scan.tokens;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& token = tokens[i];
    if (token.kind != Token::Kind::kIdent) {
      continue;
    }
    // Call-position only: `printf` inside `__attribute__((format(printf,..)))`
    // is an identifier, not output.
    if (kBannedCalls->contains(token.text) && i + 1 < tokens.size() &&
        tokens[i + 1].text == "(") {
      AddFinding(findings, scan, file, token.line, "direct-io",
                 StrFormat("'%s()' in src/ (emit through the obs layer or PDPA_LOG)",
                           token.text.c_str()));
      continue;
    }
    if (kBannedStreams->contains(token.text)) {
      AddFinding(findings, scan, file, token.line, "direct-io",
                 StrFormat("'std::%s' in src/ (emit through the obs layer or PDPA_LOG)",
                           token.text.c_str()));
    }
  }
}

void CheckStreamFlush(const ScanResult& scan, Scope scope, const std::string& file,
                      std::vector<Finding>* findings) {
  if (scope != Scope::kSrc) {
    return;  // Tools and benches own their streams' flushing policy.
  }
  const std::vector<Token>& tokens = scan.tokens;
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const Token& token = tokens[i];
    if (token.kind != Token::Kind::kIdent ||
        (token.text != "endl" && token.text != "flush")) {
      continue;
    }
    // Qualified (std::endl) or streamed (<< endl under a using-directive);
    // a plain identifier named `flush` is someone's variable, not I/O.
    const std::string& prev = tokens[i - 1].text;
    if (prev != "::" && prev != "<<") {
      continue;
    }
    AddFinding(findings, scan, file, token.line, "stream-flush",
               StrFormat("'%s' in src/ flushes per line (write '\\n' and let BufWriter "
                         "batch; Flush() once at the end)",
                         token.text.c_str()));
  }
}

// ---------------------------------------------------------------------------
// Waivers
// ---------------------------------------------------------------------------

struct Waiver {
  std::string rule;
  std::string path;  // root-relative
  int max_findings = 0;
  int expires = 0;  // yyyymmdd
  std::string reason;
  int source_line = 0;
  mutable int used = 0;
};

// "YYYY-MM-DD" -> yyyymmdd; 0 on malformed input.
int ParseDate(const std::string& text) {
  if (text.size() != 10 || text[4] != '-' || text[7] != '-') {
    return 0;
  }
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (i == 4 || i == 7) {
      continue;
    }
    if (!IsDigit(text[i])) {
      return 0;
    }
  }
  return std::atoi(text.substr(0, 4).c_str()) * 10000 +
         std::atoi(text.substr(5, 2).c_str()) * 100 + std::atoi(text.substr(8, 2).c_str());
}

int TodayYyyymmdd() {
  const std::time_t now = std::time(nullptr);  // lint: wall-clock-ok (lint is a dev tool)
  std::tm tm_buf{};
  localtime_r(&now, &tm_buf);
  return (tm_buf.tm_year + 1900) * 10000 + (tm_buf.tm_mon + 1) * 100 + tm_buf.tm_mday;
}

bool LoadWaivers(const std::string& path, std::vector<Waiver>* waivers, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = StrFormat("cannot open waiver file %s", path.c_str());
    return false;
  }
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') {
      continue;
    }
    std::istringstream fields(line);
    Waiver waiver;
    std::string count_text, expires_text;
    if (!(fields >> waiver.rule >> waiver.path >> count_text >> expires_text)) {
      *error = StrFormat("%s:%d: expected <rule> <path> <count> <expires> <reason>",
                         path.c_str(), line_no);
      return false;
    }
    bool known = false;
    for (const Rule& rule : kRules) {
      known = known || waiver.rule == rule.id;
    }
    if (!known) {
      *error = StrFormat("%s:%d: unknown rule-id '%s'", path.c_str(), line_no,
                         waiver.rule.c_str());
      return false;
    }
    if (!ParseInt(count_text, &waiver.max_findings) || waiver.max_findings < 1) {
      *error = StrFormat("%s:%d: bad count '%s'", path.c_str(), line_no, count_text.c_str());
      return false;
    }
    waiver.expires = ParseDate(expires_text);
    if (waiver.expires == 0) {
      *error = StrFormat("%s:%d: bad expiry '%s' (want YYYY-MM-DD)", path.c_str(), line_no,
                         expires_text.c_str());
      return false;
    }
    std::getline(fields, waiver.reason);
    const std::size_t start = waiver.reason.find_first_not_of(" \t");
    waiver.reason = start == std::string::npos ? "" : waiver.reason.substr(start);
    if (waiver.reason.empty()) {
      *error = StrFormat("%s:%d: waiver needs a reason", path.c_str(), line_no);
      return false;
    }
    waiver.source_line = line_no;
    waivers->push_back(std::move(waiver));
  }
  return true;
}

// Marks findings covered by an in-date, in-budget waiver. Expired or
// over-budget waivers leave their findings unwaived (and say why on stderr).
void ApplyWaivers(const std::vector<Waiver>& waivers, int today,
                  std::vector<Finding>* findings) {
  for (const Waiver& waiver : waivers) {
    std::vector<Finding*> matches;
    for (Finding& finding : *findings) {
      if (finding.rule == waiver.rule && finding.file == waiver.path) {
        matches.push_back(&finding);
      }
    }
    waiver.used = static_cast<int>(matches.size());
    if (matches.empty()) {
      std::fprintf(stderr,
                   "pdpa_lint: note: stale waiver (line %d: %s %s) matches nothing; "
                   "remove it\n",
                   waiver.source_line, waiver.rule.c_str(), waiver.path.c_str());
      continue;
    }
    if (today > waiver.expires) {
      std::fprintf(stderr, "pdpa_lint: note: waiver expired (line %d: %s %s); findings "
                           "surface until it is re-justified\n",
                   waiver.source_line, waiver.rule.c_str(), waiver.path.c_str());
      continue;
    }
    if (static_cast<int>(matches.size()) > waiver.max_findings) {
      std::fprintf(stderr,
                   "pdpa_lint: note: waiver over budget (line %d: %s %s allows %d, found "
                   "%zu); findings surface\n",
                   waiver.source_line, waiver.rule.c_str(), waiver.path.c_str(),
                   waiver.max_findings, matches.size());
      continue;
    }
    for (Finding* finding : matches) {
      finding->waived = true;
    }
  }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

Scope ScopeOf(const std::string& rel_path) {
  if (rel_path.rfind("src/", 0) == 0) {
    return Scope::kSrc;
  }
  if (rel_path.rfind("tools/", 0) == 0) {
    return Scope::kTools;
  }
  if (rel_path.rfind("bench/", 0) == 0) {
    return Scope::kBench;
  }
  return Scope::kOther;
}

bool IsSourceFile(const std::filesystem::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cc" || ext == ".h" || ext == ".cpp" || ext == ".hpp";
}

// Expands files/directories into a sorted list of source files.
bool CollectFiles(const std::vector<std::string>& paths, std::vector<std::string>* files,
                  std::string* error) {
  namespace fs = std::filesystem;
  for (const std::string& path : paths) {
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      for (fs::recursive_directory_iterator it(path, ec), end; it != end; ++it) {
        if (it->is_regular_file() && IsSourceFile(it->path())) {
          files->push_back(it->path().lexically_normal().string());
        }
      }
      continue;
    }
    if (fs::is_regular_file(path, ec)) {
      files->push_back(fs::path(path).lexically_normal().string());
      continue;
    }
    *error = StrFormat("no such file or directory: %s", path.c_str());
    return false;
  }
  std::sort(files->begin(), files->end());
  files->erase(std::unique(files->begin(), files->end()), files->end());
  return true;
}

std::string JsonEscapeMin(const std::string& text) {
  std::string out;
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  return out;
}

void WriteJsonReport(const std::vector<Finding>& findings, std::size_t files_scanned,
                     const std::string& today, std::ostream& out) {
  std::size_t unwaived = 0;
  for (const Finding& finding : findings) {
    unwaived += finding.waived ? 0 : 1;
  }
  out << "{\n  \"version\": 1,\n  \"today\": \"" << today << "\",\n  \"files_scanned\": "
      << files_scanned << ",\n  \"findings\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << "    {\"file\": \"" << JsonEscapeMin(f.file) << "\", \"line\": " << f.line
        << ", \"rule\": \"" << f.rule << "\", \"waived\": " << (f.waived ? "true" : "false")
        << ", \"message\": \"" << JsonEscapeMin(f.message) << "\"}"
        << (i + 1 < findings.size() ? ",\n" : "\n");
  }
  out << "  ],\n  \"summary\": {\"total\": " << findings.size() << ", \"unwaived\": " << unwaived
      << ", \"waived\": " << findings.size() - unwaived << "}\n}\n";
}

int Run(int argc, char** argv) {
  FlagSet flags = FlagSet::Parse(argc - 1, argv + 1);
  if (flags.GetBool("help", false)) {
    std::printf("%s", kUsage);
    return 0;
  }
  if (flags.GetBool("list-rules", false)) {
    for (const Rule& rule : kRules) {
      std::printf("%-15s %s\n", rule.id, rule.summary);
    }
    return 0;
  }
  const std::string root = flags.GetString("root", ".");
  const std::string waivers_flag = flags.GetString("waivers", "");
  const std::string json_path = flags.GetString("json", "");
  const std::string today_text = flags.GetString("today", "");
  const std::string treat_as = flags.GetString("treat-as", "");
  std::vector<std::string> inputs = flags.positional();
  for (const std::string& unknown : flags.UnconsumedFlags()) {
    std::fprintf(stderr, "pdpa_lint: unknown flag --%s (see --help)\n", unknown.c_str());
    return 2;
  }
  if (flags.had_parse_error()) {
    std::fprintf(stderr, "pdpa_lint: malformed flag value (see --help)\n");
    return 2;
  }
  int today = TodayYyyymmdd();
  if (!today_text.empty()) {
    today = ParseDate(today_text);
    if (today == 0) {
      std::fprintf(stderr, "pdpa_lint: bad --today %s (want YYYY-MM-DD)\n", today_text.c_str());
      return 2;
    }
  }
  Scope forced_scope = Scope::kOther;
  bool have_forced_scope = false;
  if (!treat_as.empty()) {
    have_forced_scope = true;
    if (treat_as == "src") {
      forced_scope = Scope::kSrc;
    } else if (treat_as == "tools") {
      forced_scope = Scope::kTools;
    } else if (treat_as == "bench") {
      forced_scope = Scope::kBench;
    } else {
      std::fprintf(stderr, "pdpa_lint: bad --treat-as %s (want src|tools|bench)\n",
                   treat_as.c_str());
      return 2;
    }
  }

  namespace fs = std::filesystem;
  if (inputs.empty()) {
    for (const char* dir : {"src", "tools", "bench"}) {
      const fs::path path = fs::path(root) / dir;
      std::error_code ec;
      if (fs::is_directory(path, ec)) {
        inputs.push_back(path.string());
      }
    }
    if (inputs.empty()) {
      std::fprintf(stderr, "pdpa_lint: nothing to lint under --root %s\n", root.c_str());
      return 2;
    }
  }
  std::vector<std::string> files;
  std::string error;
  if (!CollectFiles(inputs, &files, &error)) {
    std::fprintf(stderr, "pdpa_lint: %s\n", error.c_str());
    return 2;
  }

  std::vector<Waiver> waivers;
  std::string waiver_path = waivers_flag;
  if (waiver_path.empty()) {
    const fs::path fallback = fs::path(root) / "lint_waivers.txt";
    std::error_code ec;
    if (fs::is_regular_file(fallback, ec)) {
      waiver_path = fallback.string();
    }
  }
  if (!waiver_path.empty() && !LoadWaivers(waiver_path, &waivers, &error)) {
    std::fprintf(stderr, "pdpa_lint: %s\n", error.c_str());
    return 2;
  }

  std::vector<Finding> findings;
  for (const std::string& file : files) {
    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "pdpa_lint: cannot open %s\n", file.c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const ScanResult scan = Scan(buffer.str());

    // Waiver paths and reported paths are root-relative when the file lies
    // under --root, verbatim otherwise.
    std::error_code ec;
    const fs::path rel = fs::relative(file, root, ec);
    std::string rel_path = (ec || rel.empty() || *rel.begin() == "..")
                               ? file
                               : rel.lexically_normal().generic_string();
    const Scope scope = have_forced_scope ? forced_scope : ScopeOf(rel_path);

    CheckWallClock(scan, scope, rel_path, &findings);
    CheckUnorderedIter(scan, rel_path, &findings);
    CheckFloatEq(scan, rel_path, &findings);
    CheckDirectIo(scan, scope, rel_path, &findings);
    CheckStreamFlush(scan, scope, rel_path, &findings);
  }

  ApplyWaivers(waivers, today, &findings);

  int unwaived = 0;
  for (const Finding& finding : findings) {
    if (finding.waived) {
      continue;
    }
    std::printf("%s:%d: %s: %s\n", finding.file.c_str(), finding.line, finding.rule.c_str(),
                finding.message.c_str());
    ++unwaived;
  }

  if (!json_path.empty()) {
    const std::string today_str = StrFormat("%04d-%02d-%02d", today / 10000,
                                            (today / 100) % 100, today % 100);
    if (json_path == "-") {
      WriteJsonReport(findings, files.size(), today_str, std::cout);
    } else {
      std::ofstream out(json_path);
      if (!out) {
        std::fprintf(stderr, "pdpa_lint: cannot write %s\n", json_path.c_str());
        return 2;
      }
      WriteJsonReport(findings, files.size(), today_str, out);
    }
  }

  if (unwaived > 0) {
    std::fprintf(stderr, "pdpa_lint: %d finding%s in %zu files\n", unwaived,
                 unwaived == 1 ? "" : "s", files.size());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace pdpa

int main(int argc, char** argv) { return pdpa::Run(argc, argv); }
