// pdpa_lint — the project's determinism & hygiene linter (driver).
//
// The rules live in tools/lint/ (see tools/lint/lint.h for the two-phase
// design). This file owns the CLI: flag parsing, file collection, the two
// phases' sequencing, waiver application, report formatting, exit codes.
//
//   phase 1: tokenize every input file, build the repo-wide indexes
//            (#include graph, mutex/rank inventory, lock-site table,
//            deterministic-sink set, layers.txt DAG).
//   phase 2: run the five per-file rules on each file and the three
//            whole-program rule families against the indexes.
//
// Output is `file:line: rule-id: message`, deterministic (sorted by file,
// line, rule). Exit 0 clean, 1 findings, 2 usage/IO error. There is
// deliberately no --fix: every violation is either a real bug or deserves
// a written justification (see --explain <rule-id> for each rule's
// approved escape hatch).
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/flags.h"
#include "src/common/strings.h"
#include "tools/lint/lint.h"

namespace pdpa {
namespace {

using lint::Finding;
using lint::LayerMap;
using lint::RepoIndex;
using lint::RuleInfo;
using lint::Scope;
using lint::SourceFile;
using lint::Waiver;

constexpr const char* kUsage = R"(usage: pdpa_lint [paths...] [flags]

Lints C++ sources (*.h, *.cc) for determinism and hygiene violations.
With no paths, lints src/ tools/ bench/ under --root. Phase 1 indexes the
whole input set (includes, mutex ranks, lock sites); phase 2 runs per-file
and whole-program rules, so repo-wide rules see every file at once.

flags:
  --root DIR        repo root; scopes rules and waiver paths (default ".")
  --waivers FILE    waiver list (default <root>/lint_waivers.txt if present)
  --layers FILE     architecture DAG (default <root>/tools/lint/layers.txt
                    if present; layer rules are skipped without one)
  --json FILE       also write a JSON report ("-" for stdout)
  --today YYYY-MM-DD  waiver-expiry reference date (default: today)
  --treat-as DIR    classify explicit paths as src|tools|bench for rule
                    scoping (fixture testing)
  --list-rules      print the rule catalog and exit
  --explain RULE    print one rule's rationale and escape hatch, then exit
  --waiver-expiry-within N
                    report-only mode: warn (exit 0) for waivers expiring
                    within N days of --today, instead of linting
  --help            this text

waiver format (lint_waivers.txt), one per line:
  <rule-id> <path-relative-to-root> <max-findings> <expires:YYYY-MM-DD> <reason...>
A waiver suppresses up to <max-findings> findings of <rule-id> in <path>
until <expires>; expired or over-budget waivers surface every finding.
)";

Scope ScopeOf(const std::string& rel_path) {
  if (rel_path.rfind("src/", 0) == 0) {
    return Scope::kSrc;
  }
  if (rel_path.rfind("tools/", 0) == 0) {
    return Scope::kTools;
  }
  if (rel_path.rfind("bench/", 0) == 0) {
    return Scope::kBench;
  }
  return Scope::kOther;
}

bool IsSourceFile(const std::filesystem::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cc" || ext == ".h" || ext == ".cpp" || ext == ".hpp";
}

// Expands files/directories into a sorted list of source files.
bool CollectFiles(const std::vector<std::string>& paths, std::vector<std::string>* files,
                  std::string* error) {
  namespace fs = std::filesystem;
  for (const std::string& path : paths) {
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      for (fs::recursive_directory_iterator it(path, ec), end; it != end; ++it) {
        if (it->is_regular_file() && IsSourceFile(it->path())) {
          files->push_back(it->path().lexically_normal().string());
        }
      }
      continue;
    }
    if (fs::is_regular_file(path, ec)) {
      files->push_back(fs::path(path).lexically_normal().string());
      continue;
    }
    *error = StrFormat("no such file or directory: %s", path.c_str());
    return false;
  }
  std::sort(files->begin(), files->end());
  files->erase(std::unique(files->begin(), files->end()), files->end());
  return true;
}

std::string JsonEscapeMin(const std::string& text) {
  std::string out;
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  return out;
}

void WriteJsonReport(const std::vector<Finding>& findings, std::size_t files_scanned,
                     const std::string& today, std::ostream& out) {
  std::size_t unwaived = 0;
  for (const Finding& finding : findings) {
    unwaived += finding.waived ? 0 : 1;
  }
  out << "{\n  \"version\": 2,\n  \"today\": \"" << today << "\",\n  \"files_scanned\": "
      << files_scanned << ",\n  \"rules\": [\n";
  const std::vector<RuleInfo>& catalog = lint::RuleCatalog();
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    out << "    {\"id\": \"" << catalog[i].id << "\", \"summary\": \""
        << JsonEscapeMin(catalog[i].summary) << "\"}"
        << (i + 1 < catalog.size() ? ",\n" : "\n");
  }
  out << "  ],\n  \"findings\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << "    {\"file\": \"" << JsonEscapeMin(f.file) << "\", \"line\": " << f.line
        << ", \"rule\": \"" << f.rule << "\", \"waived\": " << (f.waived ? "true" : "false")
        << ", \"message\": \"" << JsonEscapeMin(f.message) << "\"}"
        << (i + 1 < findings.size() ? ",\n" : "\n");
  }
  out << "  ],\n  \"summary\": {\"total\": " << findings.size() << ", \"unwaived\": " << unwaived
      << ", \"waived\": " << findings.size() - unwaived << "}\n}\n";
}

// --waiver-expiry-within N: report-only advisory (always exit 0 unless the
// waiver file itself is broken). Separate from linting so lint_repo can
// pin --today for date-independence while CI still surfaces approaching
// expirations as a non-fatal, distinct message.
int RunWaiverExpiry(const std::string& waiver_path, int today, int within_days) {
  std::vector<Waiver> waivers;
  std::string error;
  if (!waiver_path.empty() && !lint::LoadWaivers(waiver_path, &waivers, &error)) {
    std::fprintf(stderr, "pdpa_lint: %s\n", error.c_str());
    return 2;
  }
  int flagged = 0;
  for (const Waiver& waiver : waivers) {
    const long days_left = lint::DaysBetween(today, waiver.expires);
    const std::string date = StrFormat("%04d-%02d-%02d", waiver.expires / 10000,
                                       (waiver.expires / 100) % 100, waiver.expires % 100);
    if (days_left < 0) {
      std::printf("pdpa_lint: waiver-expiry: line %d (%s %s) EXPIRED %s; re-justify or "
                  "remove it\n",
                  waiver.source_line, waiver.rule.c_str(), waiver.path.c_str(), date.c_str());
      ++flagged;
    } else if (days_left <= within_days) {
      std::printf("pdpa_lint: waiver-expiry: line %d (%s %s) expires in %ld day%s (%s)\n",
                  waiver.source_line, waiver.rule.c_str(), waiver.path.c_str(), days_left,
                  days_left == 1 ? "" : "s", date.c_str());
      ++flagged;
    }
  }
  std::printf("pdpa_lint: waiver-expiry: %zu waiver%s checked, %d within %d days "
              "(advisory only)\n",
              waivers.size(), waivers.size() == 1 ? "" : "s", flagged, within_days);
  return 0;
}

int RunExplain(const std::string& rule_id) {
  const RuleInfo* rule = lint::FindRuleInfo(rule_id);
  if (rule == nullptr) {
    std::fprintf(stderr, "pdpa_lint: unknown rule '%s' (see --list-rules)\n", rule_id.c_str());
    return 2;
  }
  std::printf("rule: %s\n\nsummary:\n  %s\n\nrationale:\n  %s\n\nescape hatch:\n  %s\n",
              rule->id, rule->summary, rule->rationale, rule->escape);
  return 0;
}

int Run(int argc, char** argv) {
  FlagSet flags = FlagSet::Parse(argc - 1, argv + 1);
  if (flags.GetBool("help", false)) {
    std::printf("%s", kUsage);
    return 0;
  }
  if (flags.GetBool("list-rules", false)) {
    for (const RuleInfo& rule : lint::RuleCatalog()) {
      std::printf("%-21s %s\n", rule.id, rule.summary);
    }
    return 0;
  }
  const std::string explain = flags.GetString("explain", "");
  if (!explain.empty()) {
    return RunExplain(explain);
  }
  const std::string root = flags.GetString("root", ".");
  const std::string waivers_flag = flags.GetString("waivers", "");
  const std::string layers_flag = flags.GetString("layers", "");
  const std::string json_path = flags.GetString("json", "");
  const std::string today_text = flags.GetString("today", "");
  const std::string treat_as = flags.GetString("treat-as", "");
  const int expiry_within = flags.GetInt("waiver-expiry-within", -1);
  std::vector<std::string> inputs = flags.positional();
  for (const std::string& unknown : flags.UnconsumedFlags()) {
    std::fprintf(stderr, "pdpa_lint: unknown flag --%s (see --help)\n", unknown.c_str());
    return 2;
  }
  if (flags.had_parse_error()) {
    std::fprintf(stderr, "pdpa_lint: malformed flag value (see --help)\n");
    return 2;
  }
  int today = lint::TodayYyyymmdd();
  if (!today_text.empty()) {
    today = lint::ParseDate(today_text);
    if (today == 0) {
      std::fprintf(stderr, "pdpa_lint: bad --today %s (want YYYY-MM-DD)\n", today_text.c_str());
      return 2;
    }
  }
  Scope forced_scope = Scope::kOther;
  bool have_forced_scope = false;
  if (!treat_as.empty()) {
    have_forced_scope = true;
    if (treat_as == "src") {
      forced_scope = Scope::kSrc;
    } else if (treat_as == "tools") {
      forced_scope = Scope::kTools;
    } else if (treat_as == "bench") {
      forced_scope = Scope::kBench;
    } else {
      std::fprintf(stderr, "pdpa_lint: bad --treat-as %s (want src|tools|bench)\n",
                   treat_as.c_str());
      return 2;
    }
  }

  namespace fs = std::filesystem;
  std::string waiver_path = waivers_flag;
  if (waiver_path.empty()) {
    const fs::path fallback = fs::path(root) / "lint_waivers.txt";
    std::error_code ec;
    if (fs::is_regular_file(fallback, ec)) {
      waiver_path = fallback.string();
    }
  }
  if (expiry_within >= 0) {
    return RunWaiverExpiry(waiver_path, today, expiry_within);
  }

  if (inputs.empty()) {
    for (const char* dir : {"src", "tools", "bench"}) {
      const fs::path path = fs::path(root) / dir;
      std::error_code ec;
      if (fs::is_directory(path, ec)) {
        inputs.push_back(path.string());
      }
    }
    if (inputs.empty()) {
      std::fprintf(stderr, "pdpa_lint: nothing to lint under --root %s\n", root.c_str());
      return 2;
    }
  }
  std::vector<std::string> files;
  std::string error;
  if (!CollectFiles(inputs, &files, &error)) {
    std::fprintf(stderr, "pdpa_lint: %s\n", error.c_str());
    return 2;
  }

  std::vector<Waiver> waivers;
  if (!waiver_path.empty() && !lint::LoadWaivers(waiver_path, &waivers, &error)) {
    std::fprintf(stderr, "pdpa_lint: %s\n", error.c_str());
    return 2;
  }

  LayerMap layers;
  bool have_layers = false;
  std::string layers_path = layers_flag;
  if (layers_path.empty()) {
    const fs::path fallback = fs::path(root) / "tools" / "lint" / "layers.txt";
    std::error_code ec;
    if (fs::is_regular_file(fallback, ec)) {
      layers_path = fallback.string();
    }
  }
  if (!layers_path.empty()) {
    if (!lint::LoadLayers(layers_path, &layers, &error)) {
      std::fprintf(stderr, "pdpa_lint: %s\n", error.c_str());
      return 2;
    }
    have_layers = true;
  }

  // Phase 1: scan everything, build the repo-wide indexes.
  std::vector<SourceFile> sources;
  sources.reserve(files.size());
  for (const std::string& file : files) {
    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "pdpa_lint: cannot open %s\n", file.c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();

    // Waiver paths and reported paths are root-relative when the file lies
    // under --root, verbatim otherwise.
    std::error_code ec;
    const fs::path rel = fs::relative(file, root, ec);
    std::string rel_path = (ec || rel.empty() || *rel.begin() == "..")
                               ? file
                               : rel.lexically_normal().generic_string();
    SourceFile source;
    source.scope = have_forced_scope ? forced_scope : ScopeOf(rel_path);
    source.rel_path = std::move(rel_path);
    source.scan = lint::Scan(text);
    source.includes = lint::ExtractIncludes(text);
    sources.push_back(std::move(source));
  }
  const RepoIndex index = lint::BuildRepoIndex(sources, have_layers ? &layers : nullptr);

  // Phase 2: per-file rules, then the whole-program rules on the indexes.
  std::vector<Finding> findings;
  for (const SourceFile& source : sources) {
    lint::CheckWallClock(source, &findings);
    lint::CheckUnorderedIter(source, &findings);
    lint::CheckFloatEq(source, &findings);
    lint::CheckDirectIo(source, &findings);
    lint::CheckStreamFlush(source, &findings);
    lint::CheckPtrTaint(source, index, &findings);
  }
  lint::CheckLayerRules(sources, index, &findings);
  lint::CheckLockOrder(sources, index, &findings);

  lint::ApplyWaivers(waivers, today, &findings);
  std::sort(findings.begin(), findings.end(), lint::FindingBefore);

  int unwaived = 0;
  for (const Finding& finding : findings) {
    if (finding.waived) {
      continue;
    }
    std::printf("%s:%d: %s: %s\n", finding.file.c_str(), finding.line, finding.rule.c_str(),
                finding.message.c_str());
    ++unwaived;
  }

  if (!json_path.empty()) {
    const std::string today_str = StrFormat("%04d-%02d-%02d", today / 10000,
                                            (today / 100) % 100, today % 100);
    if (json_path == "-") {
      WriteJsonReport(findings, files.size(), today_str, std::cout);
    } else {
      std::ofstream out(json_path);
      if (!out) {
        std::fprintf(stderr, "pdpa_lint: cannot write %s\n", json_path.c_str());
        return 2;
      }
      WriteJsonReport(findings, files.size(), today_str, out);
    }
  }

  if (unwaived > 0) {
    std::fprintf(stderr, "pdpa_lint: %d finding%s in %zu files\n", unwaived,
                 unwaived == 1 ? "" : "s", files.size());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace pdpa

int main(int argc, char** argv) { return pdpa::Run(argc, argv); }
