// pdpa_report — render a flight-recorder event log (JSONL, produced by
// pdpa_sim --events_out) as a human-readable report: one timeline per
// application plus event-type and PDPA-transition summaries.
//
// Examples:
//   pdpa_sim --workload w1 --events_out ev.jsonl
//   pdpa_report ev.jsonl
//   pdpa_report ev.jsonl --jobs 3,7 --no-timeline
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/common/flags.h"
#include "src/common/strings.h"
#include "src/obs/event_log.h"

namespace pdpa {
namespace {

constexpr const char* kUsage = R"(usage: pdpa_report FILE [flags]

Renders a pdpa_sim/pdpa_batch event log (JSONL) as per-application
timelines plus event and PDPA-transition summaries.

flags:
  --jobs N,M,...   only show the timelines of these job ids
  --no-timeline    summaries only
  --help           this text
)";

using Fields = std::map<std::string, std::string>;

std::string Get(const Fields& fields, const std::string& key) {
  const auto it = fields.find(key);
  return it == fields.end() ? std::string() : it->second;
}

double Seconds(const Fields& fields, const std::string& key) {
  double us = 0.0;
  (void)ParseDouble(Get(fields, key), &us);
  return us / 1e6;
}

// One timeline entry: formatted text, keyed by (time, input order) so each
// app's events stay chronological even across run segments.
struct TimelineEntry {
  double t_s = 0.0;
  long long order = 0;
  std::string text;
};

int Run(int argc, char** argv) {
  FlagSet flags = FlagSet::Parse(argc - 1, argv + 1);
  if (flags.GetBool("help", false)) {
    std::printf("%s", kUsage);
    return 0;
  }
  const std::string jobs_filter_text = flags.GetString("jobs", "");
  const bool no_timeline = flags.GetBool("no-timeline", false);
  const std::vector<std::string> inputs = flags.positional();
  for (const std::string& unknown : flags.UnconsumedFlags()) {
    std::fprintf(stderr, "unknown flag --%s (see --help)\n", unknown.c_str());
    return 2;
  }
  if (flags.had_parse_error()) {
    std::fprintf(stderr, "malformed flag value (see --help)\n");
    return 2;
  }
  if (inputs.size() != 1) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }
  std::set<long long> jobs_filter;
  for (const std::string& token : SplitTokens(jobs_filter_text, ',')) {
    long long id = 0;
    if (!ParseInt64(token, &id)) {
      std::fprintf(stderr, "bad --jobs entry '%s' (want comma-separated ids)\n", token.c_str());
      return 2;
    }
    jobs_filter.insert(id);
  }

  std::ifstream in(inputs[0]);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", inputs[0].c_str());
    return 2;
  }

  std::map<std::string, long long> type_counts;
  std::map<std::string, long long> transition_targets;
  std::map<std::string, std::string> job_class;
  std::map<std::string, std::vector<TimelineEntry>> timelines;
  long long moved_total = 0;
  long long migrations_total = 0;
  long long holds = 0;
  long long bad_lines = 0;
  long long order = 0;
  int segment = 0;

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    Fields fields;
    if (!ParseFlatJson(line, &fields)) {
      ++bad_lines;
      continue;
    }
    const std::string type = Get(fields, "type");
    ++type_counts[type];
    ++order;
    const double t_s = Seconds(fields, "t_us");
    const std::string job = Get(fields, "job");

    if (type == "run_start") {
      ++segment;
      std::printf("run %d: policy %s, workload %s, load %s, seed %s, %s cpus\n", segment,
                  Get(fields, "policy").c_str(), Get(fields, "workload").c_str(),
                  Get(fields, "load").c_str(), Get(fields, "seed").c_str(),
                  Get(fields, "cpus").c_str());
      continue;
    }
    if (type == "run_end") {
      std::printf("run %d: ended at %.3f s, %s jobs, completed=%s\n", segment, t_s,
                  Get(fields, "jobs").c_str(), Get(fields, "completed").c_str());
      continue;
    }
    if (type == "cpu_handoffs") {
      moved_total += std::atoll(Get(fields, "moved").c_str());
      migrations_total += std::atoll(Get(fields, "migrations").c_str());
      continue;
    }
    if (type == "admit_hold") {
      ++holds;
      continue;
    }
    if (job.empty()) {
      continue;
    }

    TimelineEntry entry;
    entry.t_s = t_s;
    entry.order = order;
    if (type == "job_submit") {
      job_class[job] = Get(fields, "class");
      entry.text = StrFormat("submitted (class %s, request %s%s)", Get(fields, "class").c_str(),
                             Get(fields, "request").c_str(),
                             Get(fields, "rigid") == "true" ? ", rigid" : "");
    } else if (type == "job_start") {
      entry.text = StrFormat("started with %s cpus (running %s, queued %s)",
                             Get(fields, "alloc").c_str(), Get(fields, "running").c_str(),
                             Get(fields, "queued").c_str());
    } else if (type == "job_finish") {
      const double wait_s = Seconds(fields, "start_us") - Seconds(fields, "submit_us");
      const double exec_s = t_s - Seconds(fields, "start_us");
      entry.text = StrFormat("finished (wait %.1f s, exec %.1f s)", wait_s, exec_s);
    } else if (type == "pdpa_transition") {
      ++transition_targets[Get(fields, "to")];
      entry.text = StrFormat("%s -> %s, alloc %s -> %s (S=%s, eff=%s, target=%s, %s)",
                             Get(fields, "from").c_str(), Get(fields, "to").c_str(),
                             Get(fields, "from_alloc").c_str(), Get(fields, "to_alloc").c_str(),
                             Get(fields, "speedup").c_str(), Get(fields, "eff").c_str(),
                             Get(fields, "target").c_str(), Get(fields, "trigger").c_str());
    } else if (type == "perf_sample") {
      entry.text = StrFormat("measured S=%s on %s cpus (eff %s)", Get(fields, "speedup").c_str(),
                             Get(fields, "procs").c_str(), Get(fields, "eff").c_str());
    } else {
      entry.text = type;
    }
    timelines[job].push_back(std::move(entry));
  }

  if (!no_timeline) {
    for (const auto& [job, entries] : timelines) {
      const long long id = std::atoll(job.c_str());
      if (!jobs_filter.empty() && !jobs_filter.contains(id)) {
        continue;
      }
      const auto cls = job_class.find(job);
      std::printf("\njob %s%s%s:\n", job.c_str(), cls == job_class.end() ? "" : " class ",
                  cls == job_class.end() ? "" : cls->second.c_str());
      for (const TimelineEntry& entry : entries) {
        std::printf("  %10.3f s  %s\n", entry.t_s, entry.text.c_str());
      }
    }
  }

  std::printf("\nevent counts:\n");
  for (const auto& [type, count] : type_counts) {
    std::printf("  %-20s %lld\n", type.c_str(), count);
  }
  if (!transition_targets.empty()) {
    std::printf("\npdpa transitions by target state:\n");
    for (const auto& [state, count] : transition_targets) {
      std::printf("  %-10s %lld\n", state.c_str(), count);
    }
  }
  if (moved_total > 0 || migrations_total > 0) {
    std::printf("\ncpu handoffs: %lld moved, %lld job-to-job migrations\n", moved_total,
                migrations_total);
  }
  if (holds > 0) {
    std::printf("admission holds: %lld\n", holds);
  }
  if (bad_lines > 0) {
    std::fprintf(stderr, "warning: %lld malformed lines skipped\n", bad_lines);
  }
  return 0;
}

}  // namespace
}  // namespace pdpa

int main(int argc, char** argv) { return pdpa::Run(argc, argv); }
