// pdpa_report — render a flight-recorder event log (JSONL, produced by
// pdpa_sim --events_out) as a human-readable report: one timeline per
// application plus event-type and PDPA-transition summaries.
//
// Examples:
//   pdpa_sim --workload w1 --events_out ev.jsonl
//   pdpa_report ev.jsonl
//   pdpa_report ev.jsonl --jobs 3,7 --no-timeline
//
// The report body goes through a BufWriter over stdout (one write per
// ~64 KiB instead of one printf per line); number fields are formatted
// with the src/common/fmt.h appenders. Diagnostics stay on stderr.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/common/bufwriter.h"
#include "src/common/flags.h"
#include "src/common/fmt.h"
#include "src/common/strings.h"
#include "src/obs/event_log.h"

namespace pdpa {
namespace {

constexpr const char* kUsage = R"(usage: pdpa_report FILE [flags]

Renders a pdpa_sim/pdpa_batch event log (JSONL) as per-application
timelines plus event and PDPA-transition summaries.

flags:
  --jobs N,M,...   only show the timelines of these job ids
  --no-timeline    summaries only
  --help           this text
)";

using Fields = std::map<std::string, std::string>;

std::string Get(const Fields& fields, const std::string& key) {
  const auto it = fields.find(key);
  return it == fields.end() ? std::string() : it->second;
}

double Seconds(const Fields& fields, const std::string& key) {
  double us = 0.0;
  (void)ParseDouble(Get(fields, key), &us);
  return us / 1e6;
}

// printf "%<width>.3f"-style cell: fixed 3 decimals, space-padded on the
// left to at least `width` characters.
void AppendFixed3Padded(std::string* out, double value, std::size_t width) {
  const std::size_t start = out->size();
  AppendFixed(out, value, 3);
  const std::size_t len = out->size() - start;
  if (len < width) {
    out->insert(start, width - len, ' ');
  }
}

// printf "%-<width>s"-style cell: space-padded on the right.
void AppendLeftAligned(std::string* out, std::string_view text, std::size_t width) {
  out->append(text);
  if (text.size() < width) {
    out->append(width - text.size(), ' ');
  }
}

// One timeline entry: formatted text, keyed by (time, input order) so each
// app's events stay chronological even across run segments.
struct TimelineEntry {
  double t_s = 0.0;
  long long order = 0;
  std::string text;
};

// One host-time profiler span (prof_span records from --prof_out), kept in
// input order. Hit counts are deterministic; the nanosecond columns are not.
struct ProfRow {
  std::string span;
  long long hits = 0;
  long long total_ns = 0;
  long long self_ns = 0;
};

int Run(int argc, char** argv) {
  FlagSet flags = FlagSet::Parse(argc - 1, argv + 1);
  if (flags.GetBool("help", false)) {
    std::printf("%s", kUsage);
    return 0;
  }
  const std::string jobs_filter_text = flags.GetString("jobs", "");
  const bool no_timeline = flags.GetBool("no-timeline", false);
  const std::vector<std::string> inputs = flags.positional();
  for (const std::string& unknown : flags.UnconsumedFlags()) {
    std::fprintf(stderr, "unknown flag --%s (see --help)\n", unknown.c_str());
    return 2;
  }
  if (flags.had_parse_error()) {
    std::fprintf(stderr, "malformed flag value (see --help)\n");
    return 2;
  }
  if (inputs.size() != 1) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }
  std::set<long long> jobs_filter;
  for (const std::string& token : SplitTokens(jobs_filter_text, ',')) {
    long long id = 0;
    if (!ParseInt64(token, &id)) {
      std::fprintf(stderr, "bad --jobs entry '%s' (want comma-separated ids)\n", token.c_str());
      return 2;
    }
    jobs_filter.insert(id);
  }

  std::ifstream in(inputs[0]);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", inputs[0].c_str());
    return 2;
  }

  std::map<std::string, long long> type_counts;
  std::map<std::string, long long> transition_targets;
  std::map<std::string, std::string> job_class;
  std::map<std::string, std::vector<TimelineEntry>> timelines;
  long long moved_total = 0;
  long long migrations_total = 0;
  long long holds = 0;
  std::vector<ProfRow> prof_rows;
  long long bad_lines = 0;
  long long order = 0;
  int segment = 0;

  BufWriter writer(&std::cout);
  std::string row;
  row.reserve(160);

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    Fields fields;
    if (!ParseFlatJson(line, &fields)) {
      ++bad_lines;
      continue;
    }
    const std::string type = Get(fields, "type");
    ++type_counts[type];
    ++order;
    const double t_s = Seconds(fields, "t_us");
    const std::string job = Get(fields, "job");

    if (type == "run_start") {
      ++segment;
      row.clear();
      row.append("run ");
      AppendInt(&row, segment);
      row.append(": policy ");
      row.append(Get(fields, "policy"));
      row.append(", workload ");
      row.append(Get(fields, "workload"));
      row.append(", load ");
      row.append(Get(fields, "load"));
      row.append(", seed ");
      row.append(Get(fields, "seed"));
      row.append(", ");
      row.append(Get(fields, "cpus"));
      row.append(" cpus\n");
      writer.Append(row);
      continue;
    }
    if (type == "run_end") {
      row.clear();
      row.append("run ");
      AppendInt(&row, segment);
      row.append(": ended at ");
      AppendFixed(&row, t_s, 3);
      row.append(" s, ");
      row.append(Get(fields, "jobs"));
      row.append(" jobs, completed=");
      row.append(Get(fields, "completed"));
      row.push_back('\n');
      writer.Append(row);
      continue;
    }
    if (type == "cpu_handoffs") {
      moved_total += std::atoll(Get(fields, "moved").c_str());
      migrations_total += std::atoll(Get(fields, "migrations").c_str());
      continue;
    }
    if (type == "admit_hold") {
      ++holds;
      continue;
    }
    if (type == "prof_span") {
      ProfRow prof;
      prof.span = Get(fields, "span");
      prof.hits = std::atoll(Get(fields, "hits").c_str());
      prof.total_ns = std::atoll(Get(fields, "total_ns").c_str());
      prof.self_ns = std::atoll(Get(fields, "self_ns").c_str());
      prof_rows.push_back(std::move(prof));
      continue;
    }
    if (type == "prof_meta") {
      continue;
    }
    if (job.empty()) {
      continue;
    }

    TimelineEntry entry;
    entry.t_s = t_s;
    entry.order = order;
    if (type == "job_submit") {
      job_class[job] = Get(fields, "class");
      entry.text.append("submitted (class ");
      entry.text.append(Get(fields, "class"));
      entry.text.append(", request ");
      entry.text.append(Get(fields, "request"));
      if (Get(fields, "rigid") == "true") {
        entry.text.append(", rigid");
      }
      entry.text.push_back(')');
    } else if (type == "job_start") {
      entry.text.append("started with ");
      entry.text.append(Get(fields, "alloc"));
      entry.text.append(" cpus (running ");
      entry.text.append(Get(fields, "running"));
      entry.text.append(", queued ");
      entry.text.append(Get(fields, "queued"));
      entry.text.push_back(')');
    } else if (type == "job_finish") {
      const double wait_s = Seconds(fields, "start_us") - Seconds(fields, "submit_us");
      const double exec_s = t_s - Seconds(fields, "start_us");
      entry.text.append("finished (wait ");
      AppendFixed(&entry.text, wait_s, 1);
      entry.text.append(" s, exec ");
      AppendFixed(&entry.text, exec_s, 1);
      entry.text.append(" s)");
    } else if (type == "pdpa_transition") {
      ++transition_targets[Get(fields, "to")];
      entry.text.append(Get(fields, "from"));
      entry.text.append(" -> ");
      entry.text.append(Get(fields, "to"));
      entry.text.append(", alloc ");
      entry.text.append(Get(fields, "from_alloc"));
      entry.text.append(" -> ");
      entry.text.append(Get(fields, "to_alloc"));
      entry.text.append(" (S=");
      entry.text.append(Get(fields, "speedup"));
      entry.text.append(", eff=");
      entry.text.append(Get(fields, "eff"));
      entry.text.append(", target=");
      entry.text.append(Get(fields, "target"));
      entry.text.append(", ");
      entry.text.append(Get(fields, "trigger"));
      entry.text.push_back(')');
    } else if (type == "perf_sample") {
      entry.text.append("measured S=");
      entry.text.append(Get(fields, "speedup"));
      entry.text.append(" on ");
      entry.text.append(Get(fields, "procs"));
      entry.text.append(" cpus (eff ");
      entry.text.append(Get(fields, "eff"));
      entry.text.push_back(')');
    } else {
      entry.text = type;
    }
    timelines[job].push_back(std::move(entry));
  }

  if (!no_timeline) {
    for (const auto& [job, entries] : timelines) {
      const long long id = std::atoll(job.c_str());
      if (!jobs_filter.empty() && !jobs_filter.contains(id)) {
        continue;
      }
      const auto cls = job_class.find(job);
      row.clear();
      row.append("\njob ");
      row.append(job);
      if (cls != job_class.end()) {
        row.append(" class ");
        row.append(cls->second);
      }
      row.append(":\n");
      writer.Append(row);
      for (const TimelineEntry& entry : entries) {
        row.clear();
        row.append("  ");
        AppendFixed3Padded(&row, entry.t_s, 10);
        row.append(" s  ");
        row.append(entry.text);
        row.push_back('\n');
        writer.Append(row);
      }
    }
  }

  writer.Append("\nevent counts:\n");
  for (const auto& [type, count] : type_counts) {
    row.clear();
    row.append("  ");
    AppendLeftAligned(&row, type, 20);
    row.push_back(' ');
    AppendInt(&row, count);
    row.push_back('\n');
    writer.Append(row);
  }
  if (!transition_targets.empty()) {
    writer.Append("\npdpa transitions by target state:\n");
    for (const auto& [state, count] : transition_targets) {
      row.clear();
      row.append("  ");
      AppendLeftAligned(&row, state, 10);
      row.push_back(' ');
      AppendInt(&row, count);
      row.push_back('\n');
      writer.Append(row);
    }
  }
  if (moved_total > 0 || migrations_total > 0) {
    row.clear();
    row.append("\ncpu handoffs: ");
    AppendInt(&row, moved_total);
    row.append(" moved, ");
    AppendInt(&row, migrations_total);
    row.append(" job-to-job migrations\n");
    writer.Append(row);
  }
  if (holds > 0) {
    row.clear();
    row.append("admission holds: ");
    AppendInt(&row, holds);
    row.push_back('\n');
    writer.Append(row);
  }
  if (!prof_rows.empty()) {
    writer.Append("\nhost-time profile (hits are deterministic; times are not):\n");
    writer.Append("  span              hits        total_ms     self_ms\n");
    for (const ProfRow& prof : prof_rows) {
      row.clear();
      row.append("  ");
      AppendLeftAligned(&row, prof.span, 16);
      const std::size_t hits_start = row.size();
      AppendInt(&row, prof.hits);
      if (row.size() - hits_start < 10) {
        row.insert(hits_start, 10 - (row.size() - hits_start), ' ');
      }
      row.append("  ");
      AppendFixed3Padded(&row, static_cast<double>(prof.total_ns) / 1e6, 10);
      row.append("  ");
      AppendFixed3Padded(&row, static_cast<double>(prof.self_ns) / 1e6, 10);
      row.push_back('\n');
      writer.Append(row);
    }
  }
  writer.Flush();
  if (bad_lines > 0) {
    std::fprintf(stderr, "warning: %lld malformed lines skipped\n", bad_lines);
  }
  return 0;
}

}  // namespace
}  // namespace pdpa

int main(int argc, char** argv) { return pdpa::Run(argc, argv); }
