# ctest driver for the bench_check CLI contract. Invoked as
#   cmake -DBENCH_CHECK=<bench_check> -DFIXTURES=<tests/bench_check_fixtures>
#         -P bench_check_cases.cmake
# Pins the metric classification (informational vs ratio vs exact), the
# --tol/--min/--ignore overrides, and the exit-code contract (0 ok,
# 1 regression, 2 usage error) against fixture baselines.

if(NOT BENCH_CHECK OR NOT FIXTURES)
  message(FATAL_ERROR "usage: cmake -DBENCH_CHECK=... -DFIXTURES=... -P bench_check_cases.cmake")
endif()

# expect_check(<exit> <stream:out|err> <regex> <args...>)
function(expect_check expected_exit stream pattern)
  execute_process(COMMAND ${BENCH_CHECK} ${ARGN}
                  RESULT_VARIABLE exit_code
                  OUTPUT_VARIABLE stdout
                  ERROR_VARIABLE stderr)
  if(NOT exit_code EQUAL expected_exit)
    message(SEND_ERROR "bench_check ${ARGN}: exit ${exit_code}, want ${expected_exit}\n${stdout}${stderr}")
    return()
  endif()
  if(stream STREQUAL "out")
    set(haystack "${stdout}")
  else()
    set(haystack "${stderr}")
  endif()
  if(NOT haystack MATCHES "${pattern}")
    message(SEND_ERROR "bench_check ${ARGN}: ${stream} does not match '${pattern}'\n${stdout}${stderr}")
  endif()
endfunction()

set(BASE ${FIXTURES}/baseline.json)

# Identical files compare clean.
expect_check(0 out "bench_check: ok" ${BASE} ${BASE})

# Hardware-dependent drift (wall seconds, rates, jobs, shards, threads) is
# informational; a ratio within tolerance passes; new metrics are reported,
# not failed.
expect_check(0 out "bench_check: ok" ${BASE} ${FIXTURES}/fresh_ok.json)
expect_check(0 out "info serial_wall_s" ${BASE} ${FIXTURES}/fresh_ok.json)
expect_check(0 out "info shards" ${BASE} ${FIXTURES}/fresh_ok.json)
expect_check(0 out "info threads" ${BASE} ${FIXTURES}/fresh_ok.json)
expect_check(0 out "new  extra_metric" ${BASE} ${FIXTURES}/fresh_ok.json)

# Cluster throughput is a rate (hardware-dependent: informational), but the
# epoch-batch counters are outputs of the deterministic protocol, so they
# compare exact even though they only exist because of a wall-clock
# optimization.
expect_check(0 out "info cluster_jobs_per_s" ${BASE} ${FIXTURES}/fresh_ok.json)
expect_check(0 out "ok   arrival_batches" ${BASE} ${FIXTURES}/fresh_ok.json)
expect_check(0 out "ok   batched_arrivals" ${BASE} ${FIXTURES}/fresh_ok.json)

# A regressed run: deterministic counts changed (cells, arrival_batches), a
# ratio below tolerance, and a boolean flipped — four findings, exit 1. The
# slower cluster_jobs_per_s stays informational even in a failing run.
expect_check(1 out "bench_check: 4 regressions" ${BASE} ${FIXTURES}/fresh_regressed.json)
expect_check(1 out "FAIL cells" ${BASE} ${FIXTURES}/fresh_regressed.json)
expect_check(1 out "FAIL arrival_batches.*deterministic value changed" ${BASE} ${FIXTURES}/fresh_regressed.json)
expect_check(1 out "FAIL speedup" ${BASE} ${FIXTURES}/fresh_regressed.json)
expect_check(1 out "FAIL output_identical" ${BASE} ${FIXTURES}/fresh_regressed.json)
expect_check(1 out "info cluster_jobs_per_s" ${BASE} ${FIXTURES}/fresh_regressed.json)

# --tol tightens (or loosens) a single metric's band.
expect_check(1 out "FAIL speedup" ${BASE} ${FIXTURES}/fresh_ok.json --tol speedup=0.1)
expect_check(0 out "bench_check: ok" ${BASE} ${FIXTURES}/fresh_regressed.json
             --tol speedup=0.9 --ignore cells,output_identical,arrival_batches)

# --min imposes an absolute floor on a fresh metric.
expect_check(0 out "events_speedup.*>= 2" ${BASE} ${FIXTURES}/fresh_ok.json
             --min events_speedup=2)
expect_check(1 out "below --min 99" ${BASE} ${FIXTURES}/fresh_ok.json
             --min events_speedup=99)

# Usage / IO errors are exit 2 with a pointed message.
expect_check(0 out "usage: bench_check" --help)
expect_check(2 err "usage: bench_check" ${BASE})
expect_check(2 err "unknown flag --bogus" ${BASE} ${BASE} --bogus)
expect_check(2 err "cannot open" ${BASE} ${FIXTURES}/does_not_exist.json)
expect_check(2 err "bad --tol entry" ${BASE} ${BASE} --tol speedup)
expect_check(2 err "bad --min entry" ${BASE} ${BASE} --min speedup=abc)

# Degenerate inputs are usage errors, not clean passes: a null metric means
# the bench aborted mid-write, and an empty object has nothing to compare
# (it would otherwise vacuously pass every check).
expect_check(2 err "metric 'speedup' is null" ${FIXTURES}/baseline_null.json ${BASE})
expect_check(2 err "metric 'speedup' is null" ${BASE} ${FIXTURES}/baseline_null.json)
expect_check(2 err "has no metrics" ${BASE} ${FIXTURES}/fresh_empty.json)
expect_check(2 err "has no metrics" ${FIXTURES}/fresh_empty.json ${BASE})

message(STATUS "bench_check CLI checks done")
