// Unit and property tests for the machine model: CpuSet and the
// affinity-preserving allocation engine.
#include <gtest/gtest.h>

#include <map>

#include "src/common/rng.h"
#include "src/machine/cpuset.h"
#include "src/machine/machine.h"

namespace pdpa {
namespace {

TEST(CpuSetTest, BasicOps) {
  CpuSet set;
  EXPECT_TRUE(set.Empty());
  EXPECT_EQ(set.First(), -1);
  set.Add(3);
  set.Add(5);
  EXPECT_EQ(set.Count(), 2);
  EXPECT_TRUE(set.Contains(3));
  EXPECT_FALSE(set.Contains(4));
  EXPECT_EQ(set.First(), 3);
  set.Remove(3);
  EXPECT_FALSE(set.Contains(3));
  EXPECT_EQ(set.Count(), 1);
  EXPECT_FALSE(set.Contains(-1));
  EXPECT_FALSE(set.Contains(kMaxCpus));
}

TEST(CpuSetTest, RangeAndToVector) {
  const CpuSet set = CpuSet::Range(4, 3);
  EXPECT_EQ(set.Count(), 3);
  EXPECT_EQ(set.ToVector(), (std::vector<int>{4, 5, 6}));
}

TEST(CpuSetTest, SetAlgebra) {
  const CpuSet a = CpuSet::Range(0, 4);   // 0-3
  const CpuSet b = CpuSet::Range(2, 4);   // 2-5
  EXPECT_EQ(a.Union(b).Count(), 6);
  EXPECT_EQ(a.Intersect(b).ToVector(), (std::vector<int>{2, 3}));
  EXPECT_EQ(a.Minus(b).ToVector(), (std::vector<int>{0, 1}));
  EXPECT_TRUE(a.Intersect(CpuSet{}).Empty());
}

TEST(CpuSetTest, ToStringCompactsRuns) {
  CpuSet set;
  set.Add(0);
  set.Add(1);
  set.Add(2);
  set.Add(8);
  set.Add(10);
  set.Add(11);
  EXPECT_EQ(set.ToString(), "0-2,8,10-11");
  EXPECT_EQ(CpuSet{}.ToString(), "");
}

TEST(CpuSetTest, WordBoundaryBits) {
  // Bits straddling the 64-bit word seams of the two-word representation.
  CpuSet set;
  for (int cpu : {0, 63, 64, 127}) {
    set.Add(cpu);
    EXPECT_TRUE(set.Contains(cpu));
  }
  EXPECT_EQ(set.Count(), 4);
  EXPECT_EQ(set.First(), 0);
  EXPECT_EQ(set.ToVector(), (std::vector<int>{0, 63, 64, 127}));
  EXPECT_EQ(set.ToString(), "0,63-64,127");
  set.Remove(63);
  set.Remove(0);
  EXPECT_EQ(set.First(), 64);
  EXPECT_EQ(set.Count(), 2);
}

TEST(CpuSetTest, NextIteratesInOrder) {
  CpuSet set;
  const std::vector<int> cpus = {3, 62, 63, 64, 65, 100, 126, 127};
  for (int cpu : cpus) {
    set.Add(cpu);
  }
  std::vector<int> seen;
  for (int cpu = set.First(); cpu >= 0; cpu = set.Next(cpu)) {
    seen.push_back(cpu);
  }
  EXPECT_EQ(seen, cpus);
  EXPECT_EQ(set.Next(127), -1);
  EXPECT_EQ(CpuSet{}.First(), -1);
  EXPECT_EQ(CpuSet{}.Next(0), -1);
}

TEST(MachineTest, StartsIdle) {
  Machine machine(8);
  EXPECT_EQ(machine.FreeCpus(), 8);
  EXPECT_EQ(machine.OwnerOf(0), kIdleJob);
  EXPECT_TRUE(machine.RunningJobs().empty());
}

TEST(MachineTest, ApplyAllocationAssignsExactCounts) {
  Machine machine(10);
  const auto handoffs = machine.ApplyAllocation({{1, 4}, {2, 3}});
  EXPECT_EQ(machine.CountOf(1), 4);
  EXPECT_EQ(machine.CountOf(2), 3);
  EXPECT_EQ(machine.FreeCpus(), 3);
  EXPECT_EQ(handoffs.size(), 7u);
  for (const CpuHandoff& h : handoffs) {
    EXPECT_EQ(h.from, kIdleJob);
  }
}

TEST(MachineTest, ShrinkReleasesHighestCpusFirst) {
  Machine machine(10);
  machine.ApplyAllocation({{1, 6}});
  // Job 1 owns cpus 0-5. Shrink to 3: cpus 3-5 released, 0-2 kept (affinity).
  machine.ApplyAllocation({{1, 3}});
  EXPECT_EQ(machine.CpusOf(1).ToVector(), (std::vector<int>{0, 1, 2}));
}

TEST(MachineTest, GrowPrefersIdleCpus) {
  Machine machine(10);
  machine.ApplyAllocation({{1, 3}, {2, 3}});
  const CpuSet before = machine.CpusOf(1);
  machine.ApplyAllocation({{1, 5}, {2, 3}});
  // Job 1 kept all its CPUs and gained two idle ones; job 2 untouched.
  EXPECT_EQ(machine.CpusOf(1).Intersect(before).Count(), 3);
  EXPECT_EQ(machine.CountOf(2), 3);
}

TEST(MachineTest, DirectHandoffCollapsesReleaseAcquirePairs) {
  Machine machine(4);
  machine.ApplyAllocation({{1, 4}});
  // All CPUs move from job 1 to job 2: each handoff must be 1 -> 2 directly,
  // not 1 -> idle plus idle -> 2.
  const auto handoffs = machine.ApplyAllocation({{2, 4}});
  ASSERT_EQ(handoffs.size(), 4u);
  for (const CpuHandoff& h : handoffs) {
    EXPECT_EQ(h.from, 1);
    EXPECT_EQ(h.to, 2);
  }
}

TEST(MachineTest, JobAbsentFromTargetIsReleased) {
  Machine machine(6);
  machine.ApplyAllocation({{1, 3}, {2, 3}});
  machine.ApplyAllocation({{2, 3}});
  EXPECT_EQ(machine.CountOf(1), 0);
  EXPECT_EQ(machine.CountOf(2), 3);
  EXPECT_EQ(machine.FreeCpus(), 3);
}

TEST(MachineTest, ReleaseJobFreesEverything) {
  Machine machine(6);
  machine.ApplyAllocation({{7, 4}});
  const auto handoffs = machine.ReleaseJob(7);
  EXPECT_EQ(handoffs.size(), 4u);
  EXPECT_EQ(machine.FreeCpus(), 6);
  EXPECT_TRUE(machine.ReleaseJob(7).empty());
}

TEST(MachineTest, RunningJobsListsOwners) {
  Machine machine(6);
  machine.ApplyAllocation({{3, 2}, {9, 2}});
  const auto jobs = machine.RunningJobs();
  EXPECT_EQ(jobs.size(), 2u);
}

TEST(MachineDeathTest, OvercommitRejected) {
  Machine machine(4);
  EXPECT_DEATH(machine.ApplyAllocation({{1, 3}, {2, 3}}), "Check failed");
}

TEST(MachineDeathTest, NegativeCountRejected) {
  Machine machine(4);
  EXPECT_DEATH(machine.ApplyAllocation({{1, -1}}), "Check failed");
}

// Property test: random sequences of allocations maintain exact counts and
// never move a CPU without reporting a handoff.
TEST(MachinePropertyTest, RandomAllocationSequencesStayConsistent) {
  Rng rng(2024);
  Machine machine(60);
  std::map<JobId, int> current;
  for (int round = 0; round < 300; ++round) {
    // Mutate the target randomly under the capacity constraint.
    std::map<JobId, int> target = current;
    const JobId job = rng.UniformInt(0, 7);
    int others = 0;
    for (const auto& [j, c] : target) {
      if (j != job) {
        others += c;
      }
    }
    target[job] = rng.UniformInt(0, 60 - others);
    if (target[job] == 0) {
      target.erase(job);
    }

    // Snapshot, apply, verify.
    std::map<JobId, CpuSet> before;
    for (const auto& [j, c] : current) {
      before[j] = machine.CpusOf(j);
    }
    const auto handoffs = machine.ApplyAllocation(target);
    int total = 0;
    for (const auto& [j, c] : target) {
      ASSERT_EQ(machine.CountOf(j), c) << "round " << round;
      total += c;
    }
    ASSERT_EQ(machine.FreeCpus(), 60 - total);
    // Affinity: a job whose target did not shrink keeps all previous CPUs.
    for (const auto& [j, set] : before) {
      const auto it = target.find(j);
      const int want = it == target.end() ? 0 : it->second;
      if (want >= set.Count()) {
        ASSERT_EQ(machine.CpusOf(j).Intersect(set).Count(), set.Count())
            << "job " << j << " lost a CPU it should have kept";
      }
    }
    // Every ownership difference is covered by exactly one handoff.
    for (const CpuHandoff& h : handoffs) {
      ASSERT_EQ(machine.OwnerOf(h.cpu), h.to);
    }
    current = target;
  }
}

}  // namespace
}  // namespace pdpa
