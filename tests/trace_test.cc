// Tests for the trace recorder, statistics, ASCII views and Paraver output.
#include <gtest/gtest.h>

#include <sstream>

#include "src/trace/ascii_view.h"
#include "src/trace/paraver_reader.h"
#include "src/trace/paraver_writer.h"
#include "src/trace/trace_recorder.h"

namespace pdpa {
namespace {

TEST(TraceRecorderTest, CountsMigrationsOnlyBetweenJobs) {
  TraceRecorder recorder(4);
  recorder.OnHandoff(0, CpuHandoff{0, kIdleJob, 1});    // placement: no migration
  recorder.OnHandoff(1000, CpuHandoff{0, 1, 2});        // job -> job: migration
  recorder.OnHandoff(2000, CpuHandoff{0, 2, kIdleJob});  // release: no migration
  recorder.Finalize(3000);
  const TraceStats stats = recorder.ComputeStats();
  EXPECT_EQ(stats.migrations, 1);
}

TEST(TraceRecorderTest, BurstAccounting) {
  TraceRecorder recorder(2);
  recorder.OnHandoff(0, CpuHandoff{0, kIdleJob, 1});
  recorder.OnHandoff(10 * kMillisecond, CpuHandoff{0, 1, 2});
  recorder.OnHandoff(40 * kMillisecond, CpuHandoff{0, 2, kIdleJob});
  recorder.Finalize(100 * kMillisecond);
  const TraceStats stats = recorder.ComputeStats();
  // Bursts: job1 for 10 ms, job2 for 30 ms.
  EXPECT_EQ(stats.total_bursts, 2);
  EXPECT_NEAR(stats.avg_burst_ms, 20.0, 1e-9);
  EXPECT_NEAR(stats.avg_bursts_per_cpu, 1.0, 1e-9);
}

TEST(TraceRecorderTest, FinalizeClosesOpenBursts) {
  TraceRecorder recorder(1);
  recorder.OnHandoff(0, CpuHandoff{0, kIdleJob, 5});
  recorder.Finalize(50 * kMillisecond);
  const TraceStats stats = recorder.ComputeStats();
  EXPECT_EQ(stats.total_bursts, 1);
  EXPECT_NEAR(stats.avg_burst_ms, 50.0, 1e-9);
}

TEST(TraceRecorderTest, UtilizationIntegral) {
  TraceRecorder recorder(2);
  // One of two CPUs busy for the whole run: utilization 0.5.
  recorder.OnHandoff(0, CpuHandoff{0, kIdleJob, 1});
  recorder.Finalize(kSecond);
  EXPECT_NEAR(recorder.ComputeStats().utilization, 0.5, 1e-9);
}

TEST(TraceRecorderTest, NoOpHandoffIgnored) {
  TraceRecorder recorder(2);
  recorder.OnHandoff(0, CpuHandoff{0, kIdleJob, 1});
  recorder.OnHandoff(100, CpuHandoff{0, 1, 1});  // same owner
  recorder.Finalize(1000);
  EXPECT_EQ(recorder.ComputeStats().migrations, 0);
  EXPECT_EQ(recorder.ComputeStats().total_bursts, 1);
}

TEST(TraceRecorderTest, SamplesGridAtPeriod) {
  TraceRecorder recorder(2, /*sample_period=*/100 * kMillisecond);
  recorder.OnHandoff(0, CpuHandoff{1, kIdleJob, 3});
  for (SimTime t = 0; t <= kSecond; t += 20 * kMillisecond) {
    recorder.Tick(t);
  }
  const auto& samples = recorder.samples();
  ASSERT_GE(samples.size(), 10u);
  EXPECT_EQ(samples[0][1], 3);
  EXPECT_EQ(samples[0][0], kIdleJob);
}

TEST(TraceRecorderDeathTest, StatsBeforeFinalizeAbort) {
  TraceRecorder recorder(1);
  EXPECT_DEATH(recorder.ComputeStats(), "Finalize");
}

TEST(AsciiViewTest, RendersJobsAndIdle) {
  TraceRecorder recorder(2, 100 * kMillisecond);
  recorder.OnHandoff(0, CpuHandoff{0, kIdleJob, 0});  // job 0 -> 'a'
  for (SimTime t = 0; t <= 500 * kMillisecond; t += 100 * kMillisecond) {
    recorder.Tick(t);
  }
  AsciiViewOptions options;
  options.cpu_stride = 1;
  const std::string view = RenderAsciiView(recorder, options);
  EXPECT_NE(view.find("cpu  0 |aaaaaa"), std::string::npos) << view;
  EXPECT_NE(view.find("cpu  1 |......"), std::string::npos) << view;
}

TEST(AsciiViewTest, EmptyTraceHandled) {
  TraceRecorder recorder(2);
  EXPECT_EQ(RenderAsciiView(recorder), "(no samples)\n");
}

TEST(ParaverWriterTest, EmitsHeaderAndStateRecords) {
  TraceRecorder recorder(2, 100 * kMillisecond);
  recorder.OnHandoff(0, CpuHandoff{0, kIdleJob, 1});
  for (SimTime t = 0; t <= 300 * kMillisecond; t += 100 * kMillisecond) {
    recorder.Tick(t);
  }
  std::ostringstream out;
  WriteParaverTrace(recorder, /*num_jobs=*/2, out);
  const std::string text = out.str();
  EXPECT_EQ(text.rfind("#Paraver", 0), 0u) << text;
  // One state record for cpu 1 (index 0 in our numbering -> "1:" cpu field),
  // application 2 (job 1 is 1-based 2), state 1.
  EXPECT_NE(text.find("1:1:2:1:1:0:"), std::string::npos) << text;
  EXPECT_NE(text.find(":1\n"), std::string::npos);
}

TEST(ParaverReaderTest, RoundTripsWriterOutput) {
  TraceRecorder recorder(3, 100 * kMillisecond);
  recorder.OnHandoff(0, CpuHandoff{0, kIdleJob, 0});
  recorder.OnHandoff(0, CpuHandoff{1, kIdleJob, 1});
  for (SimTime t = 0; t <= kSecond; t += 100 * kMillisecond) {
    if (t == 500 * kMillisecond) {
      recorder.OnHandoff(t, CpuHandoff{0, 0, 1});  // direct handoff: migration
    }
    recorder.Tick(t);
  }
  std::ostringstream out;
  WriteParaverTrace(recorder, /*num_jobs=*/2, out);

  std::istringstream in(out.str());
  ParaverTrace trace;
  std::string error;
  ASSERT_TRUE(ReadParaverTrace(in, &trace, &error)) << error;
  EXPECT_EQ(trace.num_cpus, 3);
  EXPECT_EQ(trace.num_jobs, 2);
  ASSERT_GE(trace.records.size(), 3u);

  const TraceStats stats = ComputeStatsFromTrace(trace);
  EXPECT_EQ(stats.migrations, 1);   // cpu0: job0 -> job1 back-to-back
  EXPECT_EQ(stats.total_bursts, 3);  // cpu0 x2 + cpu1 x1
  // cpu2 idle, cpus 0-1 busy all along: utilization ~2/3.
  EXPECT_NEAR(stats.utilization, 2.0 / 3.0, 0.05);
}

TEST(ParaverReaderTest, RejectsMalformedInput) {
  ParaverTrace trace;
  std::string error;
  std::istringstream no_header("hello\n");
  EXPECT_FALSE(ReadParaverTrace(no_header, &trace, &error));
  EXPECT_NE(error.find("header"), std::string::npos);

  std::istringstream bad_record(
      "#Paraver (01/01/00 at 00:00):1000_ns:1(2):1:1(1:1)\n"
      "1:1:1:1:1:0\n");
  trace = ParaverTrace{};
  EXPECT_FALSE(ReadParaverTrace(bad_record, &trace, &error));
}

TEST(ParaverReaderTest, SkipsNonStateRecords) {
  std::istringstream in(
      "#Paraver (01/01/00 at 00:00):1000_ns:1(2):1:1(1:1)\n"
      "# a comment\n"
      "2:1:1:1:1:500:42\n"  // event record: ignored
      "1:1:1:1:1:0:1000:1\n");
  ParaverTrace trace;
  std::string error;
  ASSERT_TRUE(ReadParaverTrace(in, &trace, &error)) << error;
  ASSERT_EQ(trace.records.size(), 1u);
  EXPECT_EQ(trace.records[0].cpu, 0);
  EXPECT_EQ(trace.records[0].job, 0);
  EXPECT_EQ(trace.records[0].end_ns, 1000);
}

TEST(TraceRecorderTest, FinalizeAtZeroYieldsAllZeroStats) {
  // Empty run, Finalize(0): every denominator (bursts, end_time) is zero and
  // every stat must come back zero-and-finite, not NaN/inf.
  TraceRecorder recorder(4);
  recorder.Finalize(0);
  const TraceStats stats = recorder.ComputeStats();
  EXPECT_EQ(stats.migrations, 0);
  EXPECT_EQ(stats.total_bursts, 0);
  EXPECT_DOUBLE_EQ(stats.avg_burst_ms, 0.0);
  EXPECT_DOUBLE_EQ(stats.avg_bursts_per_cpu, 0.0);
  EXPECT_DOUBLE_EQ(stats.utilization, 0.0);
}

TEST(TraceRecorderTest, UtilizationIsClampedToOne) {
  TraceRecorder recorder(1);
  recorder.OnHandoff(0, CpuHandoff{0, kIdleJob, 1});
  recorder.Finalize(kSecond);
  const TraceStats stats = recorder.ComputeStats();
  EXPECT_GE(stats.utilization, 0.0);
  EXPECT_LE(stats.utilization, 1.0);
  EXPECT_DOUBLE_EQ(stats.utilization, 1.0);
}

TEST(ParaverWriterTest, ConfigListsAllJobs) {
  std::ostringstream out;
  WriteParaverConfig(3, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("STATES"), std::string::npos);
  EXPECT_NE(text.find("1    job_0"), std::string::npos);
  EXPECT_NE(text.find("3    job_2"), std::string::npos);
  EXPECT_NE(text.find("GRADIENT_COLOR"), std::string::npos);
}

}  // namespace
}  // namespace pdpa
