// Unit tests for the discrete-event core: ordering, cancellation, periodic
// tasks, run-loop semantics.
#include <gtest/gtest.h>

#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/simulation.h"

namespace pdpa {
namespace {

TEST(EventQueueTest, FiresInTimeOrder) {
  EventQueue queue;
  std::vector<int> fired;
  queue.Schedule(30, [&] { fired.push_back(3); });
  queue.Schedule(10, [&] { fired.push_back(1); });
  queue.Schedule(20, [&] { fired.push_back(2); });
  while (!queue.empty()) {
    queue.RunNext();
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, SameTimeFifo) {
  EventQueue queue;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) {
    queue.Schedule(100, [&fired, i] { fired.push_back(i); });
  }
  while (!queue.empty()) {
    queue.RunNext();
  }
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue queue;
  bool ran = false;
  const EventId id = queue.Schedule(10, [&] { ran = true; });
  EXPECT_TRUE(queue.Cancel(id));
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(queue.Cancel(id));  // double cancel
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, CancelInvalidIdFails) {
  EventQueue queue;
  EXPECT_FALSE(queue.Cancel(0));
  EXPECT_FALSE(queue.Cancel(12345));
}

TEST(EventQueueTest, CallbackMaySchedule) {
  EventQueue queue;
  std::vector<SimTime> times;
  queue.Schedule(1, [&] {
    times.push_back(1);
    queue.Schedule(5, [&] { times.push_back(5); });
  });
  while (!queue.empty()) {
    queue.RunNext();
  }
  EXPECT_EQ(times, (std::vector<SimTime>{1, 5}));
}

TEST(EventQueueTest, NextTimeSkipsCancelled) {
  EventQueue queue;
  const EventId early = queue.Schedule(10, [] {});
  queue.Schedule(20, [] {});
  queue.Cancel(early);
  EXPECT_EQ(queue.NextTime(), 20);
  EXPECT_EQ(queue.size(), 1u);
}

TEST(EventQueueDeathTest, SchedulingInThePastAborts) {
  EventQueue queue;
  queue.Schedule(100, [] {});
  queue.RunNext();
  EXPECT_DEATH(queue.Schedule(50, [] {}), "Check failed");
}

TEST(SimulationTest, RunUntilStopsAtHorizon) {
  Simulation sim;
  int fired = 0;
  sim.events().Schedule(10, [&] { ++fired; });
  sim.events().Schedule(100, [&] { ++fired; });
  sim.RunUntil(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 10);
  sim.RunUntil(200);
  EXPECT_EQ(fired, 2);
}

TEST(SimulationTest, AfterSchedulesRelative) {
  Simulation sim;
  SimTime fire_time = -1;
  sim.events().Schedule(100, [&] { sim.After(50, [&] { fire_time = sim.now(); }); });
  sim.RunToCompletion();
  EXPECT_EQ(fire_time, 150);
}

TEST(SimulationTest, PeriodicTaskFiresRegularly) {
  Simulation sim;
  std::vector<SimTime> fires;
  sim.SchedulePeriodic(10, 10, [&](SimTime now) { fires.push_back(now); });
  sim.RunUntil(55);
  EXPECT_EQ(fires, (std::vector<SimTime>{10, 20, 30, 40, 50}));
}

TEST(SimulationTest, StopPeriodicHalts) {
  Simulation sim;
  int count = 0;
  int handle = -1;
  handle = sim.SchedulePeriodic(10, 10, [&](SimTime) {
    if (++count == 3) {
      sim.StopPeriodic(handle);
    }
  });
  sim.RunUntil(1000);
  EXPECT_EQ(count, 3);
}

TEST(SimulationTest, TwoPeriodicTasksInterleaveDeterministically) {
  Simulation sim;
  std::vector<int> order;
  sim.SchedulePeriodic(10, 20, [&](SimTime) { order.push_back(1); });
  sim.SchedulePeriodic(10, 20, [&](SimTime) { order.push_back(2); });
  sim.RunUntil(50);
  // Same-time events fire in scheduling order every period.
  EXPECT_EQ(order, (std::vector<int>{1, 2, 1, 2, 1, 2}));
}

TEST(SimulationTest, RunToCompletionAdvancesToLastEvent) {
  Simulation sim;
  sim.events().Schedule(77, [] {});
  sim.RunToCompletion();
  EXPECT_EQ(sim.now(), 77);
}

// --- EventQueue slot reuse / stale-id semantics ---------------------------

TEST(EventQueueTest, SlotReuseInvalidatesOldId) {
  EventQueue queue;
  int fired = 0;
  const EventId first = queue.Schedule(10, [&] { ++fired; });
  ASSERT_TRUE(queue.Cancel(first));
  // The freed slot is recycled for the next event, under a new generation.
  const EventId second = queue.Schedule(20, [&] { fired += 10; });
  EXPECT_NE(first, second);
  // The stale id must not cancel the slot's new occupant.
  EXPECT_FALSE(queue.Cancel(first));
  queue.RunNext();
  EXPECT_EQ(fired, 10);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueueTest, IdStaysInvalidAfterRun) {
  EventQueue queue;
  const EventId id = queue.Schedule(5, [] {});
  queue.RunNext();
  EXPECT_FALSE(queue.Cancel(id));
  // Heavy churn through the free list: ids never repeat even as slots do.
  EventId last = id;
  for (int i = 0; i < 1000; ++i) {
    const EventId next = queue.Schedule(10 + i, [] {});
    EXPECT_NE(next, last);
    last = next;
    queue.RunNext();
    EXPECT_FALSE(queue.Cancel(next));
  }
}

TEST(EventQueueTest, CancelledEntriesDoNotCountTowardSize) {
  EventQueue queue;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(queue.Schedule(100 + i, [] {}));
  }
  for (int i = 0; i < 100; i += 2) {
    EXPECT_TRUE(queue.Cancel(ids[i]));
  }
  EXPECT_EQ(queue.size(), 50u);
  int ran = 0;
  while (!queue.empty()) {
    queue.RunNext();
    ++ran;
  }
  EXPECT_EQ(ran, 50);
}

// --- RunUntil contract (documented in simulation.h) -----------------------

TEST(SimulationTest, RunUntilPeriodicStraddlesHorizon) {
  Simulation sim;
  std::vector<SimTime> fires;
  sim.SchedulePeriodic(70, 70, [&](SimTime now) { fires.push_back(now); });
  // The next instance (140) lies beyond the horizon: now() stays at the
  // last dispatched firing, not at `until`.
  EXPECT_EQ(sim.RunUntil(100), 70);
  EXPECT_EQ(sim.now(), 70);
  EXPECT_EQ(fires, (std::vector<SimTime>{70}));
  // Resuming picks up the queued instance; again now() ends on a firing.
  EXPECT_EQ(sim.RunUntil(300), 280);
  EXPECT_EQ(fires, (std::vector<SimTime>{70, 140, 210, 280}));
}

TEST(SimulationTest, RunUntilDrainedQueueReachesHorizonExactly) {
  Simulation sim;
  sim.events().Schedule(30, [] {});
  EXPECT_EQ(sim.RunUntil(100), 100);
  EXPECT_EQ(sim.now(), 100);
}

TEST(SimulationTest, RunUntilRequestStopLeavesClockAtLastEvent) {
  Simulation sim;
  sim.events().Schedule(40, [&sim] { sim.RequestStop(); });
  sim.events().Schedule(60, [] {});
  EXPECT_EQ(sim.RunUntil(100), 40);
  EXPECT_EQ(sim.now(), 40);
  // The 60 event is still pending and fires on the next run.
  EXPECT_EQ(sim.RunUntil(100), 100);
}

}  // namespace
}  // namespace pdpa
