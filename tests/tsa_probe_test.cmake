# ctest driver for the clang negative-compile probes. Invoked as
#   cmake -DCOMPILER=<clang++> -DSOURCE=<probe.cc> -DROOT=<repo> -DEXPECT=fail|pass
#         [-DPATTERN=<stderr regex>] -P tsa_probe_test.cmake
#
# EXPECT=fail probes must be rejected, and the diagnostic must match PATTERN
# (default: the thread-safety-analysis "requires holding mutex"); this makes
# the annotations load-bearing — deleting a PDPA_GUARDED_BY (or un-deleting
# Mutex's default ctor) turns the probe compilable and fails the test.
# EXPECT=pass is the control proving the flags work at all.

if(NOT COMPILER OR NOT SOURCE OR NOT ROOT OR NOT EXPECT)
  message(FATAL_ERROR
          "usage: cmake -DCOMPILER=... -DSOURCE=... -DROOT=... -DEXPECT=fail|pass -P ...")
endif()
if(NOT PATTERN)
  set(PATTERN "requires holding mutex")
endif()

execute_process(
  COMMAND ${COMPILER} -fsyntax-only -std=c++20 -Wthread-safety
          -Werror=thread-safety-analysis -I${ROOT} ${SOURCE}
  RESULT_VARIABLE exit_code
  ERROR_VARIABLE stderr)

if(EXPECT STREQUAL "pass")
  if(NOT exit_code EQUAL 0)
    message(FATAL_ERROR "control probe failed to compile:\n${stderr}")
  endif()
elseif(EXPECT STREQUAL "fail")
  if(exit_code EQUAL 0)
    message(FATAL_ERROR
            "probe compiled cleanly — a GUARDED_BY annotation was dropped: ${SOURCE}")
  endif()
  if(NOT stderr MATCHES "${PATTERN}")
    message(FATAL_ERROR "probe failed for the wrong reason:\n${stderr}")
  endif()
else()
  message(FATAL_ERROR "bad EXPECT '${EXPECT}' (want fail|pass)")
endif()
message(STATUS "tsa probe ok: ${SOURCE} (${EXPECT})")
