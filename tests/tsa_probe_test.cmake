# ctest driver for the clang thread-safety probes. Invoked as
#   cmake -DCOMPILER=<clang++> -DSOURCE=<probe.cc> -DROOT=<repo> -DEXPECT=fail|pass
#         -P tsa_probe_test.cmake
#
# EXPECT=fail probes access guarded state without the lock and must be
# rejected with "requires holding mutex"; this makes the annotations
# load-bearing — deleting a PDPA_GUARDED_BY turns the probe compilable and
# fails the test. EXPECT=pass is the control proving the flags work at all.

if(NOT COMPILER OR NOT SOURCE OR NOT ROOT OR NOT EXPECT)
  message(FATAL_ERROR
          "usage: cmake -DCOMPILER=... -DSOURCE=... -DROOT=... -DEXPECT=fail|pass -P ...")
endif()

execute_process(
  COMMAND ${COMPILER} -fsyntax-only -std=c++20 -Wthread-safety
          -Werror=thread-safety-analysis -I${ROOT} ${SOURCE}
  RESULT_VARIABLE exit_code
  ERROR_VARIABLE stderr)

if(EXPECT STREQUAL "pass")
  if(NOT exit_code EQUAL 0)
    message(FATAL_ERROR "control probe failed to compile:\n${stderr}")
  endif()
elseif(EXPECT STREQUAL "fail")
  if(exit_code EQUAL 0)
    message(FATAL_ERROR
            "probe compiled cleanly — a GUARDED_BY annotation was dropped: ${SOURCE}")
  endif()
  if(NOT stderr MATCHES "requires holding mutex")
    message(FATAL_ERROR "probe failed for the wrong reason:\n${stderr}")
  endif()
else()
  message(FATAL_ERROR "bad EXPECT '${EXPECT}' (want fail|pass)")
endif()
message(STATUS "tsa probe ok: ${SOURCE} (${EXPECT})")
