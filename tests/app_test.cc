// Tests for speedup models, the application catalog, and the malleable
// iterative application model.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/app/app_profile.h"
#include "src/app/application.h"
#include "src/app/speedup_model.h"

namespace pdpa {
namespace {

TEST(AmdahlSpeedupTest, Formula) {
  AmdahlSpeedup model(0.9);
  EXPECT_DOUBLE_EQ(model.SpeedupAt(1), 1.0);
  EXPECT_NEAR(model.SpeedupAt(10), 1.0 / (0.1 + 0.09), 1e-9);
  EXPECT_DOUBLE_EQ(model.SpeedupAt(0), 0.0);
  // Fully serial never speeds up; fully parallel is linear.
  EXPECT_DOUBLE_EQ(AmdahlSpeedup(0.0).SpeedupAt(32), 1.0);
  EXPECT_DOUBLE_EQ(AmdahlSpeedup(1.0).SpeedupAt(32), 32.0);
}

TEST(TableSpeedupTest, InterpolatesAndExtrapolatesFlat) {
  TableSpeedup model({{1, 1.0}, {4, 3.0}, {8, 5.0}});
  EXPECT_DOUBLE_EQ(model.SpeedupAt(1), 1.0);
  EXPECT_DOUBLE_EQ(model.SpeedupAt(4), 3.0);
  EXPECT_DOUBLE_EQ(model.SpeedupAt(2.5), 2.0);
  EXPECT_DOUBLE_EQ(model.SpeedupAt(6), 4.0);
  EXPECT_DOUBLE_EQ(model.SpeedupAt(100), 5.0);  // flat extrapolation
  EXPECT_DOUBLE_EQ(model.SpeedupAt(0.5), 0.5);  // through the (0,0) anchor
  EXPECT_DOUBLE_EQ(model.SpeedupAt(0), 0.0);
}

TEST(TableSpeedupTest, EfficiencyDerived) {
  TableSpeedup model({{1, 1.0}, {10, 8.0}});
  EXPECT_NEAR(model.EfficiencyAt(10), 0.8, 1e-12);
  EXPECT_DOUBLE_EQ(model.EfficiencyAt(0), 1.0);
}

TEST(SaturatingSpeedupTest, MonotoneAndBounded) {
  const auto model = MakeSaturatingSpeedup(8, 16);
  double prev = 0.0;
  for (int p = 1; p <= 64; ++p) {
    const double s = model->SpeedupAt(p);
    EXPECT_GE(s, prev);
    EXPECT_LE(s, 16.0 + 1e-9);
    prev = s;
  }
  EXPECT_NEAR(model->SpeedupAt(8), 8.0, 1e-9);
}

TEST(AppProfileTest, CatalogShapesMatchPaper) {
  const AppProfile swim = MakeSwimProfile();
  const AppProfile bt = MakeBtProfile();
  const AppProfile hydro = MakeHydro2dProfile();
  const AppProfile apsi = MakeApsiProfile();

  // swim is superlinear through 30 CPUs with the knee at 16.
  EXPECT_GT(swim.speedup->EfficiencyAt(12), 1.0);
  EXPECT_GT(swim.speedup->EfficiencyAt(16), swim.speedup->EfficiencyAt(20));
  // bt has good scalability: eff ~0.85-0.9 at 20, ~0.70 at 30.
  EXPECT_NEAR(bt.speedup->EfficiencyAt(20), 0.87, 0.04);
  EXPECT_NEAR(bt.speedup->EfficiencyAt(30), 0.70, 0.03);
  // hydro2d is medium: crosses the 0.7 efficiency line around 10 CPUs.
  EXPECT_GT(hydro.speedup->EfficiencyAt(8), 0.7);
  EXPECT_LT(hydro.speedup->EfficiencyAt(12), 0.7);
  // apsi does not scale.
  EXPECT_LT(apsi.speedup->SpeedupAt(30), 1.5);
  EXPECT_EQ(apsi.default_request, 2);

  // All catalog speedups are monotone non-decreasing up to 32.
  for (const AppProfile* p : {&swim, &bt, &hydro, &apsi}) {
    double prev = 0.0;
    for (int c = 1; c <= 32; ++c) {
      const double s = p->speedup->SpeedupAt(c);
      EXPECT_GE(s, prev - 0.05) << p->name << " at " << c;
      prev = s;
    }
  }
}

TEST(AppProfileTest, IdealExecAndDemand) {
  const AppProfile bt = MakeBtProfile();
  EXPECT_NEAR(bt.IdealExecSeconds(1), bt.sequential_work_s, 1e-9);
  EXPECT_NEAR(bt.IdealExecSeconds(30), bt.sequential_work_s / 21.0, 1e-6);
  EXPECT_NEAR(bt.CpuDemandAtRequest(), bt.IdealExecSeconds(30) * 30, 1e-6);
}

// A tiny deterministic profile for application-model tests: linear speedup,
// 10 iterations of 1 second sequential work each.
AppProfile TestProfile() {
  AppProfile profile;
  profile.name = "test";
  profile.speedup = std::make_shared<TableSpeedup>(
      std::vector<std::pair<double, double>>{{1, 1.0}, {32, 32.0}});
  profile.sequential_work_s = 10.0;
  profile.iterations = 10;
  profile.default_request = 8;
  profile.baseline_procs = 1;
  return profile;
}

AppCosts NoCosts() {
  AppCosts costs;
  costs.reconfig_freeze = 0;
  costs.warmup = 0;
  return costs;
}

TEST(ApplicationTest, RunsToCompletionAtExpectedTime) {
  Application app(1, TestProfile(), NoCosts());
  app.SetAllocation(2, 0);
  app.Start(0);
  // 10 s of work at speedup 2 -> 5 s wall time.
  SimTime now = 0;
  while (!app.finished() && now < 100 * kSecond) {
    app.Advance(now, 20 * kMillisecond);
    now += 20 * kMillisecond;
  }
  EXPECT_TRUE(app.finished());
  EXPECT_EQ(app.finish_time(), 5 * kSecond);
  EXPECT_EQ(app.completed_iterations(), 10);
}

TEST(ApplicationTest, IterationBoundariesAtExactSubTickInstants) {
  Application app(1, TestProfile(), NoCosts());
  app.SetAllocation(1, 0);
  app.Start(0);
  std::vector<IterationRecord> records;
  app.set_iteration_callback([&](const IterationRecord& r) { records.push_back(r); });
  // Advance with a tick that does not divide the 1 s iteration time.
  SimTime now = 0;
  while (!app.finished()) {
    app.Advance(now, 30 * kMillisecond);
    now += 30 * kMillisecond;
  }
  ASSERT_EQ(records.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(records[static_cast<std::size_t>(i)].end_time, (i + 1) * kSecond);
    EXPECT_EQ(records[static_cast<std::size_t>(i)].wall_time, kSecond);
    EXPECT_TRUE(records[static_cast<std::size_t>(i)].clean);
    EXPECT_EQ(records[static_cast<std::size_t>(i)].procs, 1);
  }
}

TEST(ApplicationTest, MultipleIterationsInOneTick) {
  Application app(1, TestProfile(), NoCosts());
  app.SetAllocation(32, 0);  // speedup 32: iteration takes 31.25 ms
  app.Start(0);
  int iterations = 0;
  app.set_iteration_callback([&](const IterationRecord&) { ++iterations; });
  app.Advance(0, 100 * kMillisecond);  // should complete 3 iterations
  EXPECT_EQ(iterations, 3);
}

TEST(ApplicationTest, ReconfigFreezeDelaysProgress) {
  AppCosts costs;
  costs.reconfig_freeze = 100 * kMillisecond;
  costs.warmup = 0;
  Application app(1, TestProfile(), costs);
  app.SetAllocation(1, 0);
  app.Start(0);
  app.Advance(0, kSecond);  // completes iteration 1 exactly at t=1s
  EXPECT_EQ(app.completed_iterations(), 1);
  // Reallocate: 100 ms freeze. The same amount of work now needs 1.1 s... at
  // the same 1-CPU speed.
  app.SetAllocation(1 + 0, kSecond);  // same count: no freeze
  app.Advance(kSecond, kSecond);
  EXPECT_EQ(app.completed_iterations(), 2);
  app.SetAllocation(2, 2 * kSecond);  // real change: freeze applies
  app.Advance(2 * kSecond, kSecond);
  // 100 ms frozen, then 900 ms at speedup 2 = 1.8 s of work < 2.0 s needed
  // for two more iterations; exactly 1.8 -> completes one iteration (1.0)
  // and 0.8 into the next.
  EXPECT_EQ(app.completed_iterations(), 3);
  EXPECT_NEAR(app.progress_s(), 3.8, 1e-9);
}

TEST(ApplicationTest, TaintedIterationMarkedUnclean) {
  Application app(1, TestProfile(), NoCosts());
  app.SetAllocation(1, 0);
  app.Start(0);
  std::vector<IterationRecord> records;
  app.set_iteration_callback([&](const IterationRecord& r) { records.push_back(r); });
  app.Advance(0, 500 * kMillisecond);        // mid-iteration
  app.SetAllocation(2, 500 * kMillisecond);  // reallocation taints it
  app.Advance(500 * kMillisecond, kSecond);
  ASSERT_GE(records.size(), 1u);
  EXPECT_FALSE(records[0].clean);
  // The following iteration is clean again.
  while (records.size() < 2) {
    app.Advance(app.finish_time(), kSecond);  // keep advancing
    break;
  }
}

TEST(ApplicationTest, WarmupSlowsNewCpus) {
  AppCosts costs;
  costs.reconfig_freeze = 0;
  costs.warmup = 400 * kMillisecond;
  Application warm(1, TestProfile(), costs);
  warm.SetAllocation(16, 0);
  warm.Start(0);
  // warm_procs_ starts at the full 16 (Start initializes it), so grow it.
  warm.SetAllocation(32, 0);
  warm.Advance(0, 100 * kMillisecond);

  Application instant(2, TestProfile(), NoCosts());
  instant.SetAllocation(16, 0);
  instant.Start(0);
  instant.SetAllocation(32, 0);
  instant.Advance(0, 100 * kMillisecond);

  // The warming application made strictly less progress.
  EXPECT_LT(warm.progress_s(), instant.progress_s());
  EXPECT_GT(warm.progress_s(), 0.0);
}

TEST(ApplicationTest, ForcedProcsCapEffectiveProcs) {
  Application app(1, TestProfile(), NoCosts());
  app.SetAllocation(8, 0);
  app.ForceProcs(2, 0);
  app.Start(0);
  EXPECT_EQ(app.EffectiveProcs(), 2);
  app.ForceProcs(0, 0);
  EXPECT_EQ(app.EffectiveProcs(), 8);
  // Force larger than allocation is capped by the allocation.
  app.ForceProcs(100, 0);
  EXPECT_EQ(app.EffectiveProcs(), 8);
}

TEST(ApplicationTest, TimeSharedAdvanceUsesFractionalProcs) {
  Application app(1, TestProfile(), NoCosts());
  app.SetAllocation(8, 0);
  app.Start(0);
  app.AdvanceTimeShared(0, kSecond, 4.0, 0.5);
  // 1 s at speedup 4 with overhead 0.5 -> 2 s of progress.
  EXPECT_NEAR(app.progress_s(), 2.0, 1e-9);
}

TEST(ApplicationTest, NoProgressWhenNotStartedOrZeroProcs) {
  Application app(1, TestProfile(), NoCosts());
  app.SetAllocation(4, 0);
  app.Advance(0, kSecond);
  EXPECT_DOUBLE_EQ(app.progress_s(), 0.0);
}

TEST(ApplicationTest, RigidFoldingSlowsProportionally) {
  AppProfile profile = TestProfile();  // linear speedup
  profile.default_request = 8;
  AppCosts costs = NoCosts();
  costs.folding_overhead = 0.8;
  Application app(1, profile, costs);
  app.set_request(8);
  app.set_rigid(true);
  app.SetAllocation(4, 0);  // folded 2:1
  app.Start(0);
  app.Advance(0, kSecond);
  // speed = S(8) * (4/8) * 0.8 = 8 * 0.5 * 0.8 = 3.2.
  EXPECT_NEAR(app.progress_s(), 3.2, 1e-9);
}

TEST(ApplicationTest, RigidFullAllocationHasNoFoldingPenalty) {
  AppProfile profile = TestProfile();
  profile.default_request = 8;
  Application app(1, profile, NoCosts());
  app.set_request(8);
  app.set_rigid(true);
  app.SetAllocation(8, 0);
  app.Start(0);
  app.Advance(0, kSecond);
  EXPECT_NEAR(app.progress_s(), 8.0, 1e-9);  // full S(8), no overhead
}

TEST(AppProfileBuilderTest, DefaultsAndOverrides) {
  const AppProfile defaults = AppProfileBuilder("d").Build();
  EXPECT_EQ(defaults.name, "d");
  EXPECT_GT(defaults.sequential_work_s, 0.0);
  EXPECT_GE(defaults.iterations, 1);

  const AppProfile custom = AppProfileBuilder("c")
                                .WithAmdahl(0.5)
                                .WithWork(10.0)
                                .WithIterations(5)
                                .WithRequest(16)
                                .WithBaselineProcs(2)
                                .Build();
  EXPECT_DOUBLE_EQ(custom.sequential_work_s, 10.0);
  EXPECT_EQ(custom.iterations, 5);
  EXPECT_EQ(custom.default_request, 16);
  EXPECT_EQ(custom.baseline_procs, 2);
  // Amdahl f=0.5: S(inf) -> 2.
  EXPECT_NEAR(custom.speedup->SpeedupAt(1000), 2.0, 0.01);
}

TEST(AppProfileBuilderTest, CurveAndSaturatingVariants) {
  const AppProfile curve =
      AppProfileBuilder("t").WithCurve({{1, 1.0}, {8, 6.0}}).Build();
  EXPECT_DOUBLE_EQ(curve.speedup->SpeedupAt(8), 6.0);

  const AppProfile saturating = AppProfileBuilder("s").WithSaturating(4, 10).Build();
  EXPECT_NEAR(saturating.speedup->SpeedupAt(4), 4.0, 1e-9);
  EXPECT_LE(saturating.speedup->SpeedupAt(256), 10.0 + 1e-9);
}

TEST(ApplicationDeathTest, StartWithoutAllocationAborts) {
  Application app(1, TestProfile(), NoCosts());
  EXPECT_DEATH(app.Start(0), "Check failed");
}

}  // namespace
}  // namespace pdpa
