// Tests for the live runtime: malleable team, kernels, wall-clock tuner and
// the in-process PDPA resource manager. These run real threads and real
// timers, so tolerances are generous; the latency-bound kernel gives true
// wall-clock speedup even on a single-core host.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

#include "src/rt/kernels.h"
#include "src/rt/malleable_team.h"
#include "src/rt/process_rm.h"
#include "src/rt/self_tuner.h"

namespace pdpa {
namespace {

TEST(MalleableTeamTest, AllWorkersExecuteBody) {
  MalleableTeam team(4);
  std::atomic<int> hits{0};
  std::atomic<int> mask{0};
  team.ParallelRegion(4, [&](int worker, int width) {
    EXPECT_EQ(width, 4);
    hits.fetch_add(1);
    mask.fetch_or(1 << worker);
  });
  EXPECT_EQ(hits.load(), 4);
  EXPECT_EQ(mask.load(), 0b1111);
}

TEST(MalleableTeamTest, WidthChangesBetweenRegions) {
  MalleableTeam team(8);
  for (int width : {1, 8, 3, 5, 1, 8}) {
    std::atomic<int> hits{0};
    team.ParallelRegion(width, [&](int, int) { hits.fetch_add(1); });
    EXPECT_EQ(hits.load(), width);
  }
  EXPECT_EQ(team.regions_executed(), 6);
}

TEST(MalleableTeamTest, ManySmallRegionsNoDeadlock) {
  MalleableTeam team(4);
  std::atomic<long long> sum{0};
  for (int i = 0; i < 500; ++i) {
    team.ParallelRegion(1 + (i % 4), [&](int, int) { sum.fetch_add(1); });
  }
  EXPECT_GT(sum.load(), 500);
}

TEST(MalleableTeamTest, ChunkedSumIsCorrect) {
  MalleableTeam team(4);
  // Sum 0..9999 split across workers; verifies chunk indexing logic that
  // clients typically write.
  constexpr int kN = 10000;
  std::vector<long long> partial(4, 0);
  team.ParallelRegion(4, [&](int worker, int width) {
    long long local = 0;
    for (int i = worker; i < kN; i += width) {
      local += i;
    }
    partial[static_cast<std::size_t>(worker)] = local;
  });
  long long total = 0;
  for (long long p : partial) {
    total += p;
  }
  EXPECT_EQ(total, static_cast<long long>(kN) * (kN - 1) / 2);
}

TEST(LatencyKernelTest, ScalesWithWidth) {
  LatencyKernel kernel(/*work_ms=*/40.0, /*serial_fraction=*/0.0, /*scalability=*/1.0);
  MalleableTeam team(4);
  const auto t0 = std::chrono::steady_clock::now();
  team.ParallelRegion(1, [&](int w, int width) { kernel.RunChunk(w, width); });
  const auto t1 = std::chrono::steady_clock::now();
  team.ParallelRegion(4, [&](int w, int width) { kernel.RunChunk(w, width); });
  const auto t2 = std::chrono::steady_clock::now();
  const double serial_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  const double wide_ms = std::chrono::duration<double, std::milli>(t2 - t1).count();
  EXPECT_GT(serial_ms, wide_ms * 1.8) << "4-wide should be ~4x faster";
}

TEST(LatencyKernelTest, ZeroScalabilityDoesNotSpeedUp) {
  LatencyKernel kernel(/*work_ms=*/30.0, /*serial_fraction=*/0.0, /*scalability=*/0.0);
  MalleableTeam team(4);
  const auto t0 = std::chrono::steady_clock::now();
  team.ParallelRegion(4, [&](int w, int width) { kernel.RunChunk(w, width); });
  const auto t1 = std::chrono::steady_clock::now();
  const double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  // Per-worker share = 30/4 * 4^1 = 30 ms: as slow as serial.
  EXPECT_GT(ms, 25.0);
}

TEST(BusyKernelTest, RunsAndAccumulatesChecksum) {
  BusyKernel kernel(100000, 0.1);
  kernel.RunSerialPart();
  kernel.RunChunk(0, 2);
  EXPECT_GT(kernel.checksum(), 0.0);
}

TEST(SelfTunerTest, BaselineThenReports) {
  SelfTuner tuner(3, SelfTuner::Params{.baseline_iterations = 2, .baseline_width = 1,
                                       .amdahl_factor = 1.0});
  EXPECT_EQ(tuner.WidthFor(8), 1);  // baseline engaged
  tuner.OnIteration(0.1, 1);
  EXPECT_FALSE(tuner.baseline_done());
  tuner.OnIteration(0.1, 1);
  EXPECT_TRUE(tuner.baseline_done());
  EXPECT_NEAR(tuner.baseline_seconds(), 0.1, 1e-9);
  EXPECT_EQ(tuner.WidthFor(8), 8);

  tuner.OnIteration(0.025, 4);  // 4x faster with 4 workers
  const auto report = tuner.LatestReport();
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->job, 3);
  EXPECT_EQ(report->procs, 4);
  EXPECT_NEAR(report->speedup, 4.0, 1e-6);
  EXPECT_NEAR(report->efficiency, 1.0, 1e-6);
}

TEST(SelfTunerTest, WideIterationsIgnoredDuringBaseline) {
  SelfTuner tuner(0, SelfTuner::Params{.baseline_iterations = 1, .baseline_width = 2,
                                       .amdahl_factor = 0.95});
  tuner.OnIteration(0.05, 8);  // not a baseline sample
  EXPECT_FALSE(tuner.baseline_done());
  tuner.OnIteration(0.2, 2);
  EXPECT_TRUE(tuner.baseline_done());
  // Normalization uses amdahl_factor * baseline_width.
  tuner.OnIteration(0.1, 4);
  ASSERT_TRUE(tuner.LatestReport().has_value());
  EXPECT_NEAR(tuner.LatestReport()->speedup, 2.0 * 0.95 * 2.0, 1e-6);
}

TEST(InProcessRmTest, ScalableAppGrowsNonScalableShrinks) {
  InProcessRm::Params params;
  params.cpu_budget = 8;
  params.quantum_ms = 10.0;
  // Tolerate wall-clock noise from thread wake-up latency on loaded hosts.
  params.pdpa.target_eff = 0.3;
  InProcessRm rm(params);

  // App 1 scales perfectly (latency-bound, fully parallel).
  rm.AddApplication(std::make_unique<RtApplication>(
      1, "scalable", std::make_unique<LatencyKernel>(40.0, 0.0, 1.0), /*iterations=*/16,
      /*request=*/6, SelfTuner::Params{.baseline_iterations = 1, .baseline_width = 1,
                                       .amdahl_factor = 1.0}));
  // App 2 does not scale at all.
  rm.AddApplication(std::make_unique<RtApplication>(
      2, "flat", std::make_unique<LatencyKernel>(40.0, 0.0, 0.05), /*iterations=*/16,
      /*request=*/6, SelfTuner::Params{.baseline_iterations = 1, .baseline_width = 1,
                                       .amdahl_factor = 1.0}));
  rm.Run();

  const PdpaAutomaton* scalable = rm.AutomatonFor(1);
  const PdpaAutomaton* flat = rm.AutomatonFor(2);
  ASSERT_NE(scalable, nullptr);
  ASSERT_NE(flat, nullptr);
  // The live PDPA loop must have shrunk the non-scalable app to the floor
  // and grown (or at least kept) the scalable one.
  EXPECT_LE(flat->current_alloc(), 2);
  EXPECT_GE(scalable->current_alloc(), 3);
}

TEST(InProcessRmTest, CoordinatedAdmissionQueuesBeyondDefaultMl) {
  InProcessRm::Params params;
  params.cpu_budget = 4;
  params.quantum_ms = 5.0;
  params.default_ml = 1;  // one app at a time until it settles
  InProcessRm rm(params);
  for (JobId job = 0; job < 3; ++job) {
    rm.AddApplication(std::make_unique<RtApplication>(
        job, "queued", std::make_unique<LatencyKernel>(10.0, 0.0, 0.05), /*iterations=*/12,
        /*request=*/4,
        SelfTuner::Params{.baseline_iterations = 1, .baseline_width = 1,
                          .amdahl_factor = 1.0}));
  }
  rm.Run();
  // Every application ran to completion...
  for (JobId job = 0; job < 3; ++job) {
    EXPECT_NE(rm.AutomatonFor(job), nullptr);
  }
  // ...and the coordinated rule admitted more than the default ML once the
  // flat (non-scalable) apps settled at 1 worker each.
  EXPECT_GE(rm.max_concurrency(), 2);
}

TEST(RtApplicationTest, DpdModeDetectsIterationsAndTunes) {
  // "Binary-only" path: the application never announces iteration
  // boundaries; the runtime discovers them from the parallel-loop stream
  // with the Dynamic Periodicity Detector and still feeds the tuner.
  InProcessRm::Params params;
  params.cpu_budget = 4;
  params.quantum_ms = 5.0;
  // Loose efficiency bounds: on a loaded single-core CI box, thread wake-up
  // latency adds noise to the wall-clock measurements this test rides on.
  params.pdpa.target_eff = 0.3;
  params.pdpa.high_eff = 0.9;
  InProcessRm rm(params);

  RtApplication::Options options;
  options.loops_per_iteration = 3;
  options.detect_iterations_with_dpd = true;
  auto app = std::make_unique<RtApplication>(
      0, "binary-only", std::make_unique<LatencyKernel>(24.0, 0.0, 1.0), /*iterations=*/20,
      /*request=*/4,
      SelfTuner::Params{.baseline_iterations = 1, .baseline_width = 1, .amdahl_factor = 1.0},
      options);
  RtApplication* raw = app.get();
  rm.AddApplication(std::move(app));
  rm.Run();

  EXPECT_TRUE(raw->finished());
  EXPECT_EQ(raw->completed_iterations(), 20);
  // The detector needs a few periods to lock on, then reports boundaries.
  EXPECT_GT(raw->detected_boundaries(), 8);
  // The tuner produced measurements (baseline done) through the DPD path.
  EXPECT_TRUE(raw->tuner().baseline_done());
  // And PDPA acted on them: a perfectly scalable app should have grown.
  EXPECT_GE(rm.AutomatonFor(0)->current_alloc(), 2);
}

TEST(InProcessRmTest, SingleAppRunsToCompletion) {
  InProcessRm::Params params;
  params.cpu_budget = 4;
  params.quantum_ms = 5.0;
  InProcessRm rm(params);
  auto app = std::make_unique<RtApplication>(
      0, "solo", std::make_unique<LatencyKernel>(8.0, 0.1, 1.0), 10, 4,
      SelfTuner::Params{.baseline_iterations = 1, .baseline_width = 1, .amdahl_factor = 1.0});
  RtApplication* raw = app.get();
  rm.AddApplication(std::move(app));
  rm.Run();
  EXPECT_TRUE(raw->finished());
  EXPECT_EQ(raw->completed_iterations(), 10);
}

}  // namespace
}  // namespace pdpa
