// Unit tests for src/common: rng, stats, strings, time types, logging.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/strings.h"
#include "src/common/time_types.h"

namespace pdpa {
namespace {

TEST(TimeTypesTest, Conversions) {
  EXPECT_EQ(SecondsToTime(1.0), kSecond);
  EXPECT_EQ(SecondsToTime(0.5), 500 * kMillisecond);
  EXPECT_EQ(MillisToTime(20), 20 * kMillisecond);
  EXPECT_DOUBLE_EQ(TimeToSeconds(kSecond * 3), 3.0);
  EXPECT_DOUBLE_EQ(TimeToMillis(kMillisecond * 7), 7.0);
  // Round-trip within one microsecond.
  EXPECT_NEAR(TimeToSeconds(SecondsToTime(123.456789)), 123.456789, 1e-6);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.NextU64() == b.NextU64() ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformIntBoundsInclusive) {
  Rng rng(9);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  RunningStat stat;
  for (int i = 0; i < 50000; ++i) {
    stat.Add(rng.Gaussian(10.0, 2.0));
  }
  EXPECT_NEAR(stat.mean(), 10.0, 0.05);
  EXPECT_NEAR(stat.stddev(), 2.0, 0.05);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(13);
  RunningStat stat;
  for (int i = 0; i < 50000; ++i) {
    stat.Add(rng.Exponential(0.25));
  }
  EXPECT_NEAR(stat.mean(), 4.0, 0.1);
}

TEST(RngTest, ForkDecorrelates) {
  Rng a(5);
  Rng child = a.Fork();
  // The child stream should not equal the parent's continuation.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.NextU64() == child.NextU64() ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(RunningStatTest, Basics) {
  RunningStat stat;
  EXPECT_EQ(stat.count(), 0u);
  EXPECT_DOUBLE_EQ(stat.mean(), 0.0);
  stat.Add(2.0);
  stat.Add(4.0);
  stat.Add(6.0);
  EXPECT_EQ(stat.count(), 3u);
  EXPECT_DOUBLE_EQ(stat.mean(), 4.0);
  EXPECT_DOUBLE_EQ(stat.variance(), 4.0);
  EXPECT_DOUBLE_EQ(stat.min(), 2.0);
  EXPECT_DOUBLE_EQ(stat.max(), 6.0);
  EXPECT_DOUBLE_EQ(stat.sum(), 12.0);
}

TEST(PercentileTest, InterpolatesBetweenOrderStatistics) {
  std::vector<double> values = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(Percentile(values, 0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 100), 40.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 50), 25.0);
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0.0);
  EXPECT_DOUBLE_EQ(Percentile({7}, 99), 7.0);
}

TEST(MeanTest, Basics) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3}), 2.0);
}

TEST(EwmaTest, ConvergesTowardConstantInput) {
  Ewma ewma(0.5);
  EXPECT_TRUE(ewma.empty());
  ewma.Add(10);
  EXPECT_DOUBLE_EQ(ewma.value(), 10.0);
  ewma.Add(20);
  EXPECT_DOUBLE_EQ(ewma.value(), 15.0);
  ewma.Add(20);
  EXPECT_DOUBLE_EQ(ewma.value(), 17.5);
}

TEST(StringsTest, SplitTokens) {
  const auto tokens = SplitTokens("  a  bb   ccc ", ' ');
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "a");
  EXPECT_EQ(tokens[1], "bb");
  EXPECT_EQ(tokens[2], "ccc");
  EXPECT_TRUE(SplitTokens("", ' ').empty());
  EXPECT_TRUE(SplitTokens("   ", ' ').empty());
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("x"), "x");
  EXPECT_EQ(Trim("  "), "");
  EXPECT_EQ(Trim("\ta b\n"), "a b");
}

TEST(StringsTest, ParseNumbers) {
  double d = 0;
  EXPECT_TRUE(ParseDouble("3.5", &d));
  EXPECT_DOUBLE_EQ(d, 3.5);
  EXPECT_TRUE(ParseDouble(" -2e3 ", &d));
  EXPECT_DOUBLE_EQ(d, -2000.0);
  EXPECT_FALSE(ParseDouble("abc", &d));
  EXPECT_FALSE(ParseDouble("", &d));
  EXPECT_FALSE(ParseDouble("1.5x", &d));

  int i = 0;
  EXPECT_TRUE(ParseInt("42", &i));
  EXPECT_EQ(i, 42);
  EXPECT_TRUE(ParseInt("-1", &i));
  EXPECT_EQ(i, -1);
  EXPECT_FALSE(ParseInt("4.2", &i));
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.234), "1.23");
}

TEST(LoggingTest, LevelGating) {
  const LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kNone);
  PDPA_LOG(Error) << "must not crash and must not print";
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(saved);
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH({ PDPA_CHECK(1 == 2) << "boom"; }, "Check failed");
  EXPECT_DEATH({ PDPA_CHECK_EQ(1, 2); }, "Check failed");
}

}  // namespace
}  // namespace pdpa
