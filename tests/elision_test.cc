// Event-horizon tick elision: the coarsened runs must be *byte-identical*
// to fine-tick runs.
//  * Integration linearity: advancing an application over [t, t+dt] in one
//    span equals two half-spans exactly (bit-for-bit), in steady state —
//    the property that makes span-sized Advance calls safe to substitute
//    for per-tick ones.
//  * Golden equivalence: for every policy x workload pair, a run with
//    elision enabled produces the same event log, time-series CSV, and
//    metrics as a run with --exact_ticks.
//  * And the coarse run must actually fire fewer ticks, or the machinery
//    is vacuous.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "src/app/application.h"
#include "src/obs/counters.h"
#include "src/obs/event_log.h"
#include "src/obs/timeseries.h"
#include "src/workload/experiment.h"

namespace pdpa {
namespace {

AppCosts NoCosts() {
  AppCosts costs;
  costs.reconfig_freeze = 0;
  costs.warmup = 0;
  return costs;
}

AppProfile BoundaryProfile() {
  AppProfile profile;
  profile.name = "elision-app";
  profile.speedup = std::make_shared<TableSpeedup>(
      std::vector<std::pair<double, double>>{{1, 1.0}, {16, 11.0}});
  profile.sequential_work_s = 13.0;
  profile.iterations = 7;  // boundaries land off the tick grid
  profile.default_request = 12;
  profile.baseline_procs = 2;
  return profile;
}

// ---------------------------------------------------------------------------
// Integration linearity. Two identical applications in steady state: one
// advanced over [t, t+dt] whole, the other over two halves. Progress,
// iteration counts and finish instants must match *exactly* — EXPECT_EQ on
// doubles on purpose. This holds because Integrate anchors each
// constant-speed segment once and computes every boundary from the anchor,
// so chopping a span cannot move any intermediate value.

TEST(IntegrationLinearityTest, WholeSpanEqualsTwoHalfSpansExactly) {
  const AppProfile profile = BoundaryProfile();
  Application whole(1, profile, NoCosts());
  Application halves(2, profile, NoCosts());
  for (Application* app : {&whole, &halves}) {
    app->SetAllocation(9, 0);
    app->Start(0);
  }

  // Deliberately awkward span: 17ms crosses iteration boundaries at odd
  // microsecond offsets.
  const SimDuration dt = 17 * kMillisecond;
  SimTime now = 0;
  while (!whole.finished() && now < 60 * kSecond) {
    whole.Advance(now, dt);
    halves.Advance(now, dt / 2);
    halves.Advance(now + dt / 2, dt - dt / 2);
    ASSERT_EQ(whole.progress_s(), halves.progress_s()) << "at t=" << now;
    ASSERT_EQ(whole.completed_iterations(), halves.completed_iterations()) << "at t=" << now;
    now += dt;
  }
  ASSERT_TRUE(whole.finished());
  ASSERT_TRUE(halves.finished());
  EXPECT_EQ(whole.finish_time(), halves.finish_time());
}

TEST(IntegrationLinearityTest, SpanSplitIsExactAcrossWarmupSettle) {
  // Same property with a real warmup ramp: once the ramp has settled (the
  // Advance snap), the segment is steady and span splitting is exact again.
  AppCosts costs;
  costs.reconfig_freeze = 0;
  costs.warmup = 100 * kMillisecond;
  const AppProfile profile = BoundaryProfile();
  Application whole(1, profile, costs);
  Application halves(2, profile, costs);
  for (Application* app : {&whole, &halves}) {
    app->SetAllocation(9, 0);
    app->Start(0);
  }
  const SimDuration dt = 20 * kMillisecond;
  SimTime now = 0;
  while (!whole.finished() && now < 60 * kSecond) {
    whole.Advance(now, dt);
    halves.Advance(now, dt / 2);
    halves.Advance(now + dt / 2, dt - dt / 2);
    // During the ramp the two integrate different p_eff midpoints; only
    // compare once both report steady (ElisionReady) state.
    if (whole.ElisionReady(now + dt) && halves.ElisionReady(now + dt)) {
      ASSERT_EQ(whole.progress_s(), halves.progress_s()) << "at t=" << now;
    }
    now += dt;
  }
}

// ---------------------------------------------------------------------------
// Golden equivalence: elided vs exact-tick runs of the full experiment
// stack must produce byte-identical observable output. Counters are
// exempt by design (rm.ticks / rm.ticks_elided legitimately differ).

struct GoldenCase {
  PolicyKind policy;
  WorkloadId workload;
};

std::string CaseName(const ::testing::TestParamInfo<GoldenCase>& info) {
  return std::string(PolicyKindName(info.param.policy)) + "_" +
         WorkloadShortName(info.param.workload);
}

struct CapturedRun {
  std::string events;
  std::string timeseries;
  long long ticks = 0;
  ExperimentResult result;
};

CapturedRun RunCaptured(const GoldenCase& c, bool exact_ticks) {
  ExperimentConfig config;
  config.workload = c.workload;
  config.load = 1.0;
  config.seed = 42;
  config.policy = c.policy;
  config.rm.exact_ticks = exact_ticks;

  CapturedRun run;
  std::ostringstream events_stream;
  EventLog events(&events_stream);
  TimeSeriesSampler timeseries;
  Registry registry;
  config.event_log = &events;
  config.timeseries = &timeseries;
  config.registry = &registry;
  run.result = RunExperiment(config);
  events.Flush();  // The log buffers; push bytes out before reading.
  run.events = events_stream.str();
  std::ostringstream ts_stream;
  timeseries.WriteCsv(ts_stream);
  run.timeseries = ts_stream.str();
  for (const CounterSnapshot& counter : registry.Snapshot().counters) {
    if (counter.name == "rm.ticks") {
      run.ticks = counter.value;
    }
  }
  return run;
}

class GoldenEquivalenceTest : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenEquivalenceTest, ElidedRunIsByteIdenticalToExactTicks) {
  const CapturedRun fine = RunCaptured(GetParam(), /*exact_ticks=*/true);
  const CapturedRun coarse = RunCaptured(GetParam(), /*exact_ticks=*/false);

  EXPECT_EQ(fine.events, coarse.events);
  EXPECT_EQ(fine.timeseries, coarse.timeseries);

  EXPECT_EQ(fine.result.completed, coarse.result.completed);
  EXPECT_EQ(fine.result.sim_end_s, coarse.result.sim_end_s);
  EXPECT_EQ(fine.result.max_ml, coarse.result.max_ml);
  EXPECT_EQ(fine.result.utilization, coarse.result.utilization);
  EXPECT_EQ(fine.result.reallocations, coarse.result.reallocations);
  EXPECT_EQ(fine.result.metrics.jobs, coarse.result.metrics.jobs);
  EXPECT_EQ(fine.result.metrics.makespan_s, coarse.result.metrics.makespan_s);
  ASSERT_EQ(fine.result.metrics.per_class.size(), coarse.result.metrics.per_class.size());
  for (const auto& [app_class, fine_metrics] : fine.result.metrics.per_class) {
    const auto it = coarse.result.metrics.per_class.find(app_class);
    ASSERT_NE(it, coarse.result.metrics.per_class.end());
    EXPECT_EQ(fine_metrics.count, it->second.count);
    EXPECT_EQ(fine_metrics.avg_response_s, it->second.avg_response_s);
    EXPECT_EQ(fine_metrics.avg_exec_s, it->second.avg_exec_s);
    EXPECT_EQ(fine_metrics.avg_wait_s, it->second.avg_wait_s);
    EXPECT_EQ(fine_metrics.p50_response_s, it->second.p50_response_s);
    EXPECT_EQ(fine_metrics.p95_response_s, it->second.p95_response_s);
    EXPECT_EQ(fine_metrics.avg_alloc, it->second.avg_alloc);
  }

  // The elision must not be vacuous: non-time-sharing policies fire fewer
  // ticks when it is on. IRIX is time-sharing — elision stays disabled and
  // the counts match instead.
  if (GetParam().policy == PolicyKind::kIrix) {
    EXPECT_EQ(coarse.ticks, fine.ticks);
  } else {
    EXPECT_LT(coarse.ticks, fine.ticks);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndWorkloads, GoldenEquivalenceTest,
    ::testing::Values(GoldenCase{PolicyKind::kEquipartition, WorkloadId::kW1},
                      GoldenCase{PolicyKind::kEquipartition, WorkloadId::kW2},
                      GoldenCase{PolicyKind::kEqualEfficiency, WorkloadId::kW1},
                      GoldenCase{PolicyKind::kEqualEfficiency, WorkloadId::kW2},
                      GoldenCase{PolicyKind::kPdpa, WorkloadId::kW1},
                      GoldenCase{PolicyKind::kPdpa, WorkloadId::kW2},
                      GoldenCase{PolicyKind::kIrix, WorkloadId::kW1},
                      GoldenCase{PolicyKind::kIrix, WorkloadId::kW2}),
    CaseName);

}  // namespace
}  // namespace pdpa
