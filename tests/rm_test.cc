// Integration tests for the ResourceManager: job lifecycle, policy
// plumbing, plan application, trace hookup, admission coordination.
#include <gtest/gtest.h>

#include "src/core/pdpa_policy.h"
#include "src/rm/equipartition.h"
#include "src/rm/irix.h"
#include "src/rm/resource_manager.h"

namespace pdpa {
namespace {

AppProfile FastLinearProfile(double work_s = 4.0, int iters = 8) {
  AppProfile profile;
  profile.name = "fast";
  profile.speedup = std::make_shared<TableSpeedup>(
      std::vector<std::pair<double, double>>{{1, 1.0}, {32, 32.0}});
  profile.sequential_work_s = work_s;
  profile.iterations = iters;
  profile.default_request = 8;
  profile.baseline_procs = 2;
  return profile;
}

ResourceManager::Params FastParams() {
  ResourceManager::Params params;
  params.num_cpus = 16;
  params.analyzer.noise_sigma = 0.0;
  params.analyzer.amdahl_factor = 1.0;
  params.app_costs.reconfig_freeze = 0;
  params.app_costs.warmup = 0;
  return params;
}

TEST(ResourceManagerTest, StartRunFinishUnderEquipartition) {
  Simulation sim;
  ResourceManager rm(FastParams(), std::make_unique<Equipartition>(4), &sim, nullptr, Rng(1));
  std::vector<JobId> finished;
  rm.set_job_finish_callback([&](JobId job, SimTime) { finished.push_back(job); });
  rm.Start();
  rm.StartJob(0, FastLinearProfile(), 8, 0);
  EXPECT_EQ(rm.running_jobs(), 1);
  EXPECT_EQ(rm.AllocationOf(0), 8);
  EXPECT_EQ(rm.machine().FreeCpus(), 8);
  sim.RunUntil(60 * kSecond);
  EXPECT_EQ(finished, std::vector<JobId>{0});
  EXPECT_EQ(rm.running_jobs(), 0);
  EXPECT_EQ(rm.machine().FreeCpus(), 16);
}

TEST(ResourceManagerTest, EquipartitionRepartitionsOnSecondArrival) {
  Simulation sim;
  ResourceManager rm(FastParams(), std::make_unique<Equipartition>(4), &sim, nullptr, Rng(1));
  rm.Start();
  rm.StartJob(0, FastLinearProfile(40.0, 40), 16, 0);
  EXPECT_EQ(rm.AllocationOf(0), 16);
  sim.RunUntil(kSecond);
  rm.StartJob(1, FastLinearProfile(40.0, 40), 16, sim.now());
  EXPECT_EQ(rm.AllocationOf(0), 8);
  EXPECT_EQ(rm.AllocationOf(1), 8);
}

TEST(ResourceManagerTest, PdpaShrinksUnscalableJob) {
  Simulation sim;
  // A job that does not scale: speedup flat at 1.3 beyond 2 procs.
  AppProfile profile;
  profile.name = "flat";
  profile.speedup = std::make_shared<TableSpeedup>(
      std::vector<std::pair<double, double>>{{1, 1.0}, {2, 1.25}, {32, 1.3}});
  profile.sequential_work_s = 60.0;
  profile.iterations = 60;
  profile.default_request = 16;
  profile.baseline_procs = 1;

  ResourceManager rm(FastParams(), std::make_unique<PdpaPolicy>(PdpaParams{}, PdpaMlParams{}),
                     &sim, nullptr, Rng(1));
  rm.Start();
  rm.StartJob(0, profile, 16, 0);
  EXPECT_EQ(rm.AllocationOf(0), 16);
  sim.RunUntil(30 * kSecond);
  // PDPA must have walked the allocation down to the floor.
  EXPECT_LE(rm.AllocationOf(0), 2);
}

TEST(ResourceManagerTest, PdpaGrowsEfficientJobIntoFreePool) {
  Simulation sim;
  ResourceManager rm(FastParams(), std::make_unique<PdpaPolicy>(PdpaParams{}, PdpaMlParams{}),
                     &sim, nullptr, Rng(1));
  rm.Start();
  // Request 16 but only 4 free at start (simulated by a squatter job).
  rm.StartJob(9, FastLinearProfile(400.0, 100), 12, 0);
  rm.StartJob(0, FastLinearProfile(100.0, 100), 16, 0);
  EXPECT_EQ(rm.AllocationOf(0), 4);
  sim.RunUntil(20 * kSecond);
  // Linear speedup: efficiency ~1 at every count; PDPA grows it to the pool
  // limit... the squatter holds 12, so job 0 ends at 4 until the squatter
  // finishes, then grows. We mainly assert no shrink happened.
  EXPECT_GE(rm.AllocationOf(0), 4);
  const int total = rm.AllocationOf(0) + rm.AllocationOf(9);
  EXPECT_LE(total, 16);
}

TEST(ResourceManagerTest, AllocIntegralAccumulates) {
  Simulation sim;
  ResourceManager rm(FastParams(), std::make_unique<Equipartition>(4), &sim, nullptr, Rng(1));
  rm.Start();
  rm.StartJob(0, FastLinearProfile(), 8, 0);
  sim.RunUntil(60 * kSecond);
  const auto& integral = rm.alloc_integral_us();
  ASSERT_TRUE(integral.contains(0));
  // 4 s of work at 8 procs (after a baseline phase at 2): the integral is
  // roughly procs * exec_time; just sanity-check the order of magnitude.
  EXPECT_GT(integral.at(0), 0.5 * 8 * kSecond);
}

TEST(ResourceManagerTest, TraceReceivesHandoffs) {
  Simulation sim;
  TraceRecorder trace(16);
  ResourceManager rm(FastParams(), std::make_unique<Equipartition>(4), &sim, &trace, Rng(1));
  rm.Start();
  rm.StartJob(0, FastLinearProfile(), 8, 0);
  sim.RunUntil(30 * kSecond);
  trace.Finalize(sim.now());
  const TraceStats stats = trace.ComputeStats();
  EXPECT_GT(stats.total_bursts, 0);
  EXPECT_GT(stats.utilization, 0.0);
}

TEST(ResourceManagerTest, IrixTimeSharingRunsJobsWithoutPartitions) {
  Simulation sim;
  ResourceManager rm(FastParams(),
                     std::make_unique<IrixTimeShare>(IrixTimeShare::Params{}, Rng(7)), &sim,
                     nullptr, Rng(1));
  std::vector<JobId> finished;
  rm.set_job_finish_callback([&](JobId job, SimTime) { finished.push_back(job); });
  rm.Start();
  rm.StartJob(0, FastLinearProfile(8.0, 8), 8, 0);
  rm.StartJob(1, FastLinearProfile(8.0, 8), 8, 0);
  sim.RunUntil(120 * kSecond);
  EXPECT_EQ(finished.size(), 2u);
}

TEST(ResourceManagerTest, CanStartJobFollowsPolicyAdmission) {
  Simulation sim;
  ResourceManager rm(FastParams(), std::make_unique<Equipartition>(2), &sim, nullptr, Rng(1));
  rm.Start();
  EXPECT_TRUE(rm.CanStartJob());
  rm.StartJob(0, FastLinearProfile(100.0, 50), 8, 0);
  EXPECT_TRUE(rm.CanStartJob());
  rm.StartJob(1, FastLinearProfile(100.0, 50), 8, 0);
  EXPECT_FALSE(rm.CanStartJob());  // fixed ML = 2
}

TEST(ResourceManagerTest, ManySimultaneousCompletionsInOneTick) {
  // Regression: identical jobs with identical allocations all hit their
  // last iteration boundary in the same tick. The job table must retire
  // the whole batch in one pass (the old arrival-order vector erased one
  // element per job, O(n^2) and easy to get wrong mid-iteration).
  Simulation sim;
  ResourceManager::Params params = FastParams();
  params.num_cpus = 32;
  ResourceManager rm(params, std::make_unique<Equipartition>(16), &sim, nullptr, Rng(1));
  std::vector<std::pair<JobId, SimTime>> finished;
  rm.set_job_finish_callback(
      [&](JobId job, SimTime when) { finished.emplace_back(job, when); });
  rm.Start();
  constexpr int kJobs = 16;
  for (JobId job = 0; job < kJobs; ++job) {
    rm.StartJob(job, FastLinearProfile(), 8, 0);
  }
  // Equipartition gives every job 2 of the 32 CPUs; the linear speedup
  // curve makes their progress bit-identical, so all 16 finish at the
  // exact same instant.
  sim.RunUntil(60 * kSecond);
  ASSERT_EQ(finished.size(), static_cast<std::size_t>(kJobs));
  for (const auto& [job, when] : finished) {
    EXPECT_EQ(when, finished.front().second) << "job " << job;
    EXPECT_FALSE(rm.HasJob(job));
  }
  EXPECT_EQ(rm.running_jobs(), 0);
  EXPECT_EQ(rm.machine().FreeCpus(), 32);
  // The finished jobs' allocation integrals survive into the archive.
  const std::map<JobId, double> integrals = rm.alloc_integral_us();
  ASSERT_EQ(integrals.size(), static_cast<std::size_t>(kJobs));
  for (const auto& [job, integral] : integrals) {
    EXPECT_GT(integral, 0.0) << "job " << job;
  }
}

TEST(ResourceManagerDeathTest, DuplicateJobIdAborts) {
  Simulation sim;
  ResourceManager rm(FastParams(), std::make_unique<Equipartition>(4), &sim, nullptr, Rng(1));
  rm.Start();
  rm.StartJob(0, FastLinearProfile(), 8, 0);
  EXPECT_DEATH(rm.StartJob(0, FastLinearProfile(), 8, 0), "");
}

}  // namespace
}  // namespace pdpa
