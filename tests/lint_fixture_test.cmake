# ctest driver for the pdpa_lint fixtures. Invoked as
#   cmake -DLINT=<pdpa_lint> -DFIXTURES=<tests/lint_fixtures> -P lint_fixture_test.cmake
# Asserts the exact finding lines (file:line: rule-id) and exit codes, so a
# rule regression — a missed violation, a changed line number, a broken
# waiver/suppression path — fails tier-1 ctest.

if(NOT LINT OR NOT FIXTURES)
  message(FATAL_ERROR "usage: cmake -DLINT=<binary> -DFIXTURES=<dir> -P lint_fixture_test.cmake")
endif()

# Runs pdpa_lint on one fixture and checks exit code + exact stdout.
# Extra args after the expected output are appended to the command line.
function(expect_lint fixture expected_exit expected_out)
  execute_process(
    COMMAND ${LINT} --root ${FIXTURES} ${FIXTURES}/${fixture} --treat-as src
            --today 2026-01-01 ${ARGN}
    RESULT_VARIABLE exit_code
    OUTPUT_VARIABLE stdout
    ERROR_VARIABLE stderr)
  if(NOT exit_code EQUAL expected_exit)
    message(SEND_ERROR "${fixture}: exit ${exit_code}, want ${expected_exit}\n${stdout}${stderr}")
    return()
  endif()
  if(NOT stdout STREQUAL expected_out)
    message(SEND_ERROR "${fixture}: output mismatch\n--- got ---\n${stdout}--- want ---\n${expected_out}")
  endif()
endfunction()

expect_lint(wall_clock_violation.cc 1
"wall_clock_violation.cc:7: wall-clock: nondeterministic source 'rand' in sim code (use SimTime)
wall_clock_violation.cc:8: wall-clock: nondeterministic source 'srand' in sim code (use SimTime)
wall_clock_violation.cc:9: wall-clock: nondeterministic source 'time()' in sim code (use SimTime)
wall_clock_violation.cc:10: wall-clock: nondeterministic source 'system_clock' in sim code (use SimTime)
wall_clock_violation.cc:11: wall-clock: nondeterministic source 'high_resolution_clock' in sim code (use SimTime)
")

expect_lint(unordered_iter_violation.cc 1
"unordered_iter_violation.cc:8: unordered-iter: range-for over an unordered container: iteration order is unspecified (sort first, or justify with // lint: ordered-ok)
unordered_iter_violation.cc:12: unordered-iter: range-for over an unordered container: iteration order is unspecified (sort first, or justify with // lint: ordered-ok)
")

expect_lint(float_eq_violation.cc 1
"float_eq_violation.cc:3: float-eq: '==' against a floating-point literal (use NearlyEqual from src/common/stats.h)
float_eq_violation.cc:4: float-eq: '!=' against a floating-point literal (use NearlyEqual from src/common/stats.h)
float_eq_violation.cc:5: float-eq: '==' against a floating-point literal (use NearlyEqual from src/common/stats.h)
")

expect_lint(direct_io_violation.cc 1
"direct_io_violation.cc:6: direct-io: 'printf()' in src/ (emit through the obs layer or PDPA_LOG)
direct_io_violation.cc:7: direct-io: 'fprintf()' in src/ (emit through the obs layer or PDPA_LOG)
direct_io_violation.cc:8: direct-io: 'puts()' in src/ (emit through the obs layer or PDPA_LOG)
direct_io_violation.cc:9: direct-io: 'std::cout' in src/ (emit through the obs layer or PDPA_LOG)
direct_io_violation.cc:10: direct-io: 'std::cerr' in src/ (emit through the obs layer or PDPA_LOG)
")

expect_lint(stream_flush_violation.cc 1
"stream_flush_violation.cc:6: stream-flush: 'endl' in src/ flushes per line (write '\\n' and let BufWriter batch; Flush() once at the end)
stream_flush_violation.cc:7: stream-flush: 'flush' in src/ flushes per line (write '\\n' and let BufWriter batch; Flush() once at the end)
stream_flush_violation.cc:9: stream-flush: 'endl' in src/ flushes per line (write '\\n' and let BufWriter batch; Flush() once at the end)
")

# Sanctioned host clock: steady_clock is allowed in src/obs/prof.cc only.
# The allowance is token-specific (system_clock in the same file still
# fires) and file-specific (steady_clock anywhere else still fires).
expect_lint(src/obs/prof.cc 1
"src/obs/prof.cc:10: wall-clock: nondeterministic source 'system_clock' in sim code (use SimTime)
")

expect_lint(src/obs/not_prof.cc 1
"src/obs/not_prof.cc:6: wall-clock: nondeterministic source 'steady_clock' in sim code (use SimTime)
")

# The ordering audit reaches src/cluster/: placement and merge paths fed by
# unordered iteration are findings, exactly like anywhere else in src/.
expect_lint(src/cluster/merge_paths.cc 1
"src/cluster/merge_paths.cc:8: unordered-iter: range-for over an unordered container: iteration order is unspecified (sort first, or justify with // lint: ordered-ok)
src/cluster/merge_paths.cc:18: unordered-iter: range-for over an unordered container: iteration order is unspecified (sort first, or justify with // lint: ordered-ok)
")

# Tools own their streams' flushing policy: rule scoped to src/ only.
expect_lint(stream_flush_violation.cc 0 "" --treat-as tools)

# bench/ classification turns the wall-clock rule off entirely.
expect_lint(wall_clock_violation.cc 0 "" --treat-as bench)

expect_lint(clean_file.cc 0 "")

# Lock-order rule: unranked declaration, duplicate rank, a seeded inversion
# (acquire rank 10 while holding 30), self-nesting, and a member that no
# ranked declaration resolves. Line numbers pin the token-level lock-site
# scanner: a shifted declaration or lock site fails this oracle.
expect_lint(lock_order_violation.cc 1
"lock_order_violation.cc:8: lock-order: pdpa::Mutex 'bare' declared without PDPA_LOCK_RANK(n); every mutex states its position in the lock hierarchy (DESIGN.md §8)
lock_order_violation.cc:9: lock-order: PDPA_LOCK_RANK(30) already used by 'high' (lock_order_violation.cc:7); ranks are unique per mutex
lock_order_violation.cc:15: lock-order: acquiring 'low' (rank 10) while holding 'high' (rank 30); ranks must strictly increase along every acquisition chain (DESIGN.md §8)
lock_order_violation.cc:21: lock-order: acquiring 'low' (rank 10) while holding 'low' (rank 10); ranks must strictly increase along every acquisition chain (DESIGN.md §8)
lock_order_violation.cc:25: lock-order: cannot resolve mutex member 'phantom' to a PDPA_LOCK_RANK declaration (is the declaring file outside the lint set?)
")

# Negative twin: strictly increasing chains, sequential (non-nested)
# acquisitions, and a justified // lint: lock-order-ok suppression.
expect_lint(lock_order_clean.cc 0 "")

# Determinism-taint rule: address-of / this / thread-id reaching derived
# sinks, pointer-keyed ordered and unordered containers, std::hash over a
# pointer type.
expect_lint(ptr_taint_violation.cc 1
"ptr_taint_violation.cc:8: ptr-taint: address-of expression reaches deterministic sink 'Field' (pointer values are run-dependent; emit a stable id)
ptr_taint_violation.cc:9: ptr-taint: 'this' reaches deterministic sink 'Emit' (pointer values are run-dependent; emit a stable id)
ptr_taint_violation.cc:10: ptr-taint: thread id reaches deterministic sink 'AppendInt' (thread ids are run-dependent; use the worker index)
ptr_taint_violation.cc:13: ptr-taint: pointer-keyed 'map': pointer keys order/hash by address (run-dependent; key by a stable id)
ptr_taint_violation.cc:14: ptr-taint: pointer-keyed 'set': pointer keys order/hash by address (run-dependent; key by a stable id)
ptr_taint_violation.cc:15: ptr-taint: std::hash over a pointer type is run-dependent (hash a stable id instead)
")

# Negative twin: stable ids through sinks, Append* destination out-params,
# binary '&', pointer VALUES in containers (only keys are findings), and a
# justified // lint: ptr-taint-ok suppression.
expect_lint(ptr_taint_clean.cc 0 "")

# Layer rules need their own root: the layering/ subtree carries its own
# layers.txt ("c d" < "b" < "a") plus a seeded upward include (b -> a), a
# seeded same-layer cycle (c <-> d), and an unassigned directory (e).
# The upward include also closes a directory cycle a -> b -> a — both
# findings are correct and both are pinned.
execute_process(
  COMMAND ${LINT} --root ${FIXTURES}/layering ${FIXTURES}/layering/src
          --layers ${FIXTURES}/layering/layers.txt --today 2026-01-01
  RESULT_VARIABLE exit_code OUTPUT_VARIABLE stdout ERROR_VARIABLE stderr)
set(layering_want
"src/a/a.h:5: layer-cycle: #include cycle across src/ directories: src/a -> src/b -> src/a
src/b/b.h:5: layer-up: #include \"src/a/a.h\" reaches up from layer 1 (src/b) to layer 2 (src/a); dependencies must point downward in the architecture DAG (layers.txt)
src/c/c.h:6: layer-cycle: #include cycle across src/ directories: src/c -> src/d -> src/c
src/e/e.h:1: layer-up: directory 'src/e' has no layer in layers.txt; add it to the architecture DAG before depending on it
")
if(NOT exit_code EQUAL 1)
  message(SEND_ERROR "layering: exit ${exit_code}, want 1\n${stdout}${stderr}")
elseif(NOT stdout STREQUAL layering_want)
  message(SEND_ERROR "layering: output mismatch\n--- got ---\n${stdout}--- want ---\n${layering_want}")
endif()

# In-date waiver absorbs the direct-io findings; the expired float-eq waiver
# lets its finding surface (with a stderr note, not checked byte-for-byte).
expect_lint(waived_file.cc 1
"waived_file.cc:10: float-eq: '==' against a floating-point literal (use NearlyEqual from src/common/stats.h)
" --waivers ${FIXTURES}/fixture_waivers.txt)

# CLI contract: unknown flags and bad values are usage errors (exit 2).
execute_process(COMMAND ${LINT} --no-such-flag RESULT_VARIABLE exit_code
                OUTPUT_QUIET ERROR_VARIABLE stderr)
if(NOT exit_code EQUAL 2 OR NOT stderr MATCHES "unknown flag")
  message(SEND_ERROR "unknown flag: exit ${exit_code}, stderr: ${stderr}")
endif()

execute_process(COMMAND ${LINT} --today not-a-date ${FIXTURES}/clean_file.cc
                RESULT_VARIABLE exit_code OUTPUT_QUIET ERROR_VARIABLE stderr)
if(NOT exit_code EQUAL 2 OR NOT stderr MATCHES "bad --today")
  message(SEND_ERROR "bad --today: exit ${exit_code}, stderr: ${stderr}")
endif()

execute_process(COMMAND ${LINT} ${FIXTURES}/does_not_exist.cc
                RESULT_VARIABLE exit_code OUTPUT_QUIET ERROR_VARIABLE stderr)
if(NOT exit_code EQUAL 2 OR NOT stderr MATCHES "no such file")
  message(SEND_ERROR "missing input: exit ${exit_code}, stderr: ${stderr}")
endif()

execute_process(COMMAND ${LINT} --list-rules RESULT_VARIABLE exit_code
                OUTPUT_VARIABLE stdout ERROR_QUIET)
if(NOT exit_code EQUAL 0 OR NOT stdout MATCHES "wall-clock" OR NOT stdout MATCHES "unordered-iter"
   OR NOT stdout MATCHES "float-eq" OR NOT stdout MATCHES "direct-io"
   OR NOT stdout MATCHES "stream-flush" OR NOT stdout MATCHES "layer-cycle/layer-up"
   OR NOT stdout MATCHES "lock-order" OR NOT stdout MATCHES "ptr-taint")
  message(SEND_ERROR "--list-rules: exit ${exit_code}\n${stdout}")
endif()
# Exact rule count: adding or dropping a rule must update this oracle.
# (Strip semicolons first — they would split the matches into list items.)
string(REPLACE ";" "," rules_no_semi "${stdout}")
string(REGEX MATCHALL "[^\n]+\n" rule_lines "${rules_no_semi}")
list(LENGTH rule_lines rule_count)
if(NOT rule_count EQUAL 8)
  message(SEND_ERROR "--list-rules: ${rule_count} rules listed, want 8\n${stdout}")
endif()

# JSON report: well-shaped, counts waived vs unwaived.
execute_process(
  COMMAND ${LINT} --root ${FIXTURES} ${FIXTURES}/waived_file.cc --treat-as src
          --today 2026-01-01 --waivers ${FIXTURES}/fixture_waivers.txt --json -
  RESULT_VARIABLE exit_code OUTPUT_VARIABLE stdout ERROR_QUIET)
if(NOT exit_code EQUAL 1
   OR NOT stdout MATCHES "\"summary\": {\"total\": 3, \"unwaived\": 1, \"waived\": 2}")
  message(SEND_ERROR "json report: exit ${exit_code}\n${stdout}")
endif()
# v2 report: carries the rule catalog so downstream consumers (the CI
# artifact) can render findings without a copy of the linter.
if(NOT stdout MATCHES "\"version\": 2" OR NOT stdout MATCHES "\"rules\": \\["
   OR NOT stdout MATCHES "\"id\": \"ptr-taint\"")
  message(SEND_ERROR "json report: missing v2 rule catalog\n${stdout}")
endif()

# message(SEND_ERROR) above makes cmake -P exit non-zero; reaching this line
# cleanly means every check passed.
message(STATUS "lint fixture checks done")
