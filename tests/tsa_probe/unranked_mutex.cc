// Negative-compile probe (EXPECT=fail, PATTERN=deleted): constructs a
// pdpa::Mutex without a PDPA_LOCK_RANK. The default constructor is
// `= delete`, so this must NOT compile; if it starts compiling, the
// compile-time half of the lock-rank hierarchy (DESIGN.md §8) has been
// dropped and only the pdpa_lint lock-order rule still guards it.
// Never linked anywhere.
#include "src/common/mutex.h"

namespace pdpa {

Mutex unranked_probe_mutex;  // no rank: the deleted ctor must reject this

}  // namespace pdpa
