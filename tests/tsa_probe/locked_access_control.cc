// TSA probe (EXPECT=pass): the positive control. Correctly locked access to
// the same guarded state the fail probes touch; if this stops compiling,
// the probe driver's flags are broken (and the fail probes prove nothing).
#include <cstddef>

#include "src/common/mutex.h"
#include "src/workload/sweep.h"

namespace pdpa {

std::size_t LockedCursor(internal::SweepWorkState* state) {
  const MutexLock lock(&state->mutex);
  return state->next_cell;
}

std::size_t BumpCursor(internal::SweepWorkState* state) {
  state->mutex.Lock();
  const std::size_t value = state->next_cell++;
  state->mutex.Unlock();
  return value;
}

}  // namespace pdpa
