// TSA probe (EXPECT=fail): reads Registry's guarded map without holding the
// mutex. Under `-Wthread-safety -Werror=thread-safety-analysis` this must
// NOT compile; if it starts compiling, the PDPA_GUARDED_BY annotation on
// Registry::counters_ has been dropped or neutered. Never linked anywhere.
#include <cstddef>

#include "src/obs/counters.h"

namespace pdpa {

struct RegistryTsaProbe {
  static std::size_t UnlockedSize(const Registry& registry) {
    return registry.counters_.size();  // no MutexLock: TSA must reject this
  }
};

std::size_t Touch(const Registry& registry) {
  return RegistryTsaProbe::UnlockedSize(registry);
}

}  // namespace pdpa
