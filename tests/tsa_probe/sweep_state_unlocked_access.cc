// TSA probe (EXPECT=fail): reads the sweep work queue's cursor without the
// queue mutex. Must NOT compile under thread-safety analysis; if it does,
// the PDPA_GUARDED_BY on SweepWorkState::next_cell has been dropped.
// Never linked anywhere.
#include <cstddef>

#include "src/workload/sweep.h"

namespace pdpa {

std::size_t UnlockedCursor(internal::SweepWorkState* state) {
  return state->next_cell;  // no MutexLock: TSA must reject this
}

}  // namespace pdpa
