// Tests for metric aggregation.
#include <gtest/gtest.h>

#include <cmath>

#include "src/metrics/metrics.h"

namespace pdpa {
namespace {

JobOutcome MakeOutcome(JobId id, AppClass app_class, double submit_s, double start_s,
                       double finish_s) {
  JobOutcome outcome;
  outcome.id = id;
  outcome.app_class = app_class;
  outcome.submit = SecondsToTime(submit_s);
  outcome.start = SecondsToTime(start_s);
  outcome.finish = SecondsToTime(finish_s);
  return outcome;
}

TEST(MetricsTest, PerClassAverages) {
  std::vector<JobOutcome> outcomes = {
      MakeOutcome(0, AppClass::kBt, 0, 10, 110),    // response 110, exec 100
      MakeOutcome(1, AppClass::kBt, 0, 50, 250),    // response 250, exec 200
      MakeOutcome(2, AppClass::kApsi, 5, 5, 55),    // response 50, exec 50
  };
  const WorkloadMetrics metrics = ComputeMetrics(outcomes, {});
  EXPECT_EQ(metrics.jobs, 3);
  const ClassMetrics& bt = metrics.per_class.at(AppClass::kBt);
  EXPECT_EQ(bt.count, 2);
  EXPECT_DOUBLE_EQ(bt.avg_response_s, 180.0);
  EXPECT_DOUBLE_EQ(bt.avg_exec_s, 150.0);
  EXPECT_DOUBLE_EQ(bt.avg_wait_s, 30.0);
  const ClassMetrics& apsi = metrics.per_class.at(AppClass::kApsi);
  EXPECT_DOUBLE_EQ(apsi.avg_response_s, 50.0);
  EXPECT_DOUBLE_EQ(metrics.makespan_s, 250.0);
}

TEST(MetricsTest, AvgAllocFromIntegral) {
  std::vector<JobOutcome> outcomes = {MakeOutcome(0, AppClass::kBt, 0, 0, 100)};
  std::map<JobId, double> integral;
  // 100 s at 12 CPUs.
  integral[0] = 12.0 * 100.0 * kSecond;
  const WorkloadMetrics metrics = ComputeMetrics(outcomes, integral);
  EXPECT_NEAR(metrics.per_class.at(AppClass::kBt).avg_alloc, 12.0, 1e-9);
}

TEST(MetricsTest, ResponsePercentiles) {
  std::vector<JobOutcome> outcomes;
  // Responses 10, 20, ..., 100 for one class.
  for (int i = 1; i <= 10; ++i) {
    outcomes.push_back(MakeOutcome(i, AppClass::kBt, 0, 0, i * 10.0));
  }
  const WorkloadMetrics metrics = ComputeMetrics(outcomes, {});
  const ClassMetrics& bt = metrics.per_class.at(AppClass::kBt);
  EXPECT_DOUBLE_EQ(bt.avg_response_s, 55.0);
  EXPECT_DOUBLE_EQ(bt.p50_response_s, 55.0);
  EXPECT_NEAR(bt.p95_response_s, 95.5, 1e-9);
}

TEST(MetricsTest, SingleJobPercentilesEqualValue) {
  const WorkloadMetrics metrics =
      ComputeMetrics({MakeOutcome(0, AppClass::kApsi, 0, 0, 42)}, {});
  const ClassMetrics& apsi = metrics.per_class.at(AppClass::kApsi);
  EXPECT_DOUBLE_EQ(apsi.p50_response_s, 42.0);
  EXPECT_DOUBLE_EQ(apsi.p95_response_s, 42.0);
}

TEST(MetricsTest, EmptyOutcomes) {
  const WorkloadMetrics metrics = ComputeMetrics({}, {});
  EXPECT_EQ(metrics.jobs, 0);
  EXPECT_TRUE(metrics.per_class.empty());
  EXPECT_DOUBLE_EQ(metrics.makespan_s, 0.0);
}

TEST(MetricsTest, ZeroWallTimeJobDoesNotDivideByZero) {
  // finish == start: the allocation integral cannot be normalized by wall
  // time, so the job contributes zero avg_alloc instead of NaN/inf.
  std::map<JobId, double> integrals;
  integrals[0] = 1e6;
  const WorkloadMetrics metrics =
      ComputeMetrics({MakeOutcome(0, AppClass::kBt, 0, 10, 10)}, integrals);
  const ClassMetrics& bt = metrics.per_class.at(AppClass::kBt);
  EXPECT_EQ(bt.count, 1);
  EXPECT_DOUBLE_EQ(bt.avg_alloc, 0.0);
  EXPECT_DOUBLE_EQ(bt.avg_exec_s, 0.0);
  EXPECT_TRUE(std::isfinite(bt.avg_response_s));
}

TEST(MetricsTest, MissingIntegralYieldsZeroAvgAlloc) {
  // A job with no allocation-integral entry (e.g. pure time-sharing runs
  // that bypassed the RM accounting) must not blow up the per-class average.
  const WorkloadMetrics metrics =
      ComputeMetrics({MakeOutcome(3, AppClass::kHydro2d, 0, 0, 100)}, {});
  const ClassMetrics& hydro = metrics.per_class.at(AppClass::kHydro2d);
  EXPECT_DOUBLE_EQ(hydro.avg_alloc, 0.0);
  EXPECT_DOUBLE_EQ(hydro.avg_exec_s, 100.0);
}

}  // namespace
}  // namespace pdpa
