// End-to-end experiments: the paper's headline behaviours must hold on the
// full stack (QS + RM + runtime + applications).
#include <gtest/gtest.h>

#include "src/workload/experiment.h"

namespace pdpa {
namespace {

ExperimentConfig BaseConfig(WorkloadId workload, double load, PolicyKind policy,
                            std::uint64_t seed = 42) {
  ExperimentConfig config;
  config.workload = workload;
  config.load = load;
  config.policy = policy;
  config.seed = seed;
  return config;
}

TEST(IntegrationTest, AllPoliciesCompleteW1) {
  for (PolicyKind policy : {PolicyKind::kIrix, PolicyKind::kEquipartition,
                            PolicyKind::kEqualEfficiency, PolicyKind::kPdpa}) {
    const ExperimentResult result = RunExperiment(BaseConfig(WorkloadId::kW1, 0.8, policy));
    EXPECT_TRUE(result.completed) << PolicyKindName(policy);
    EXPECT_GT(result.metrics.jobs, 0) << PolicyKindName(policy);
    for (const auto& [app_class, metrics] : result.metrics.per_class) {
      EXPECT_GT(metrics.avg_exec_s, 0.0);
      EXPECT_GE(metrics.avg_response_s, metrics.avg_exec_s - 1e-6);
    }
  }
}

TEST(IntegrationTest, DeterministicForSameSeed) {
  const ExperimentResult a = RunExperiment(BaseConfig(WorkloadId::kW2, 1.0, PolicyKind::kPdpa));
  const ExperimentResult b = RunExperiment(BaseConfig(WorkloadId::kW2, 1.0, PolicyKind::kPdpa));
  ASSERT_EQ(a.metrics.jobs, b.metrics.jobs);
  EXPECT_DOUBLE_EQ(a.metrics.makespan_s, b.metrics.makespan_s);
  for (const auto& [app_class, metrics] : a.metrics.per_class) {
    EXPECT_DOUBLE_EQ(metrics.avg_response_s, b.metrics.per_class.at(app_class).avg_response_s);
  }
}

TEST(IntegrationTest, PdpaConvergesToEfficientAllocations) {
  // w2 at full load: PDPA must give bt substantially more CPUs than hydro2d
  // (the paper reports ~20 vs ~9).
  const ExperimentResult result = RunExperiment(BaseConfig(WorkloadId::kW2, 1.0,
                                                           PolicyKind::kPdpa));
  ASSERT_TRUE(result.completed);
  const double bt_alloc = result.metrics.per_class.at(AppClass::kBt).avg_alloc;
  const double hydro_alloc = result.metrics.per_class.at(AppClass::kHydro2d).avg_alloc;
  EXPECT_GT(bt_alloc, hydro_alloc + 4.0);
  EXPECT_LT(hydro_alloc, 14.0);
}

TEST(IntegrationTest, PdpaShrinksApsiToFloor) {
  ExperimentConfig config = BaseConfig(WorkloadId::kW3, 0.6, PolicyKind::kPdpa);
  config.untuned = true;  // apsi asks for 30
  const ExperimentResult result = RunExperiment(config);
  ASSERT_TRUE(result.completed);
  // PDPA walks apsi down to very few processors despite the request of 30.
  EXPECT_LT(result.metrics.per_class.at(AppClass::kApsi).avg_alloc, 8.0);
}

TEST(IntegrationTest, PdpaBeatsFixedMlOnW3Response) {
  // The paper's headline: with non-scalable applications in the mix, PDPA's
  // coordinated ML slashes response times versus Equipartition.
  const ExperimentResult equip =
      RunExperiment(BaseConfig(WorkloadId::kW3, 1.0, PolicyKind::kEquipartition));
  const ExperimentResult pdpa = RunExperiment(BaseConfig(WorkloadId::kW3, 1.0, PolicyKind::kPdpa));
  ASSERT_TRUE(equip.completed);
  ASSERT_TRUE(pdpa.completed);
  const double equip_resp = equip.metrics.per_class.at(AppClass::kBt).avg_response_s;
  const double pdpa_resp = pdpa.metrics.per_class.at(AppClass::kBt).avg_response_s;
  EXPECT_GT(equip_resp, pdpa_resp * 2.0) << "PDPA should win response by a large factor";
  // At a bounded execution-time cost.
  const double equip_exec = equip.metrics.per_class.at(AppClass::kBt).avg_exec_s;
  const double pdpa_exec = pdpa.metrics.per_class.at(AppClass::kBt).avg_exec_s;
  EXPECT_LT(pdpa_exec, equip_exec * 1.6);
}

TEST(IntegrationTest, PdpaRaisesMultiprogrammingLevel) {
  const ExperimentResult equip =
      RunExperiment(BaseConfig(WorkloadId::kW3, 1.0, PolicyKind::kEquipartition));
  const ExperimentResult pdpa = RunExperiment(BaseConfig(WorkloadId::kW3, 1.0, PolicyKind::kPdpa));
  EXPECT_EQ(equip.max_ml, 4);
  EXPECT_GT(pdpa.max_ml, 6);
}

TEST(IntegrationTest, PdpaRobustToInitialMl) {
  // Fig. 7's conclusion: PDPA's results barely move with the configured ML.
  std::vector<double> responses;
  for (int ml : {2, 3, 4}) {
    ExperimentConfig config = BaseConfig(WorkloadId::kW2, 1.0, PolicyKind::kPdpa);
    config.multiprogramming_level = ml;
    const ExperimentResult result = RunExperiment(config);
    ASSERT_TRUE(result.completed);
    responses.push_back(result.metrics.per_class.at(AppClass::kBt).avg_response_s);
  }
  const double spread = *std::max_element(responses.begin(), responses.end()) -
                        *std::min_element(responses.begin(), responses.end());
  EXPECT_LT(spread / responses[2], 0.2);
}

TEST(IntegrationTest, EquipartitionDegradesAtLowMl) {
  // Equipartition with ML=2 wastes the machine on w2 (hydro2d cannot use its
  // half): response times worsen versus ML=4.
  ExperimentConfig ml2 = BaseConfig(WorkloadId::kW2, 1.0, PolicyKind::kEquipartition);
  ml2.multiprogramming_level = 2;
  ExperimentConfig ml4 = BaseConfig(WorkloadId::kW2, 1.0, PolicyKind::kEquipartition);
  const double resp2 =
      RunExperiment(ml2).metrics.per_class.at(AppClass::kBt).avg_response_s;
  const double resp4 =
      RunExperiment(ml4).metrics.per_class.at(AppClass::kBt).avg_response_s;
  EXPECT_GT(resp2, resp4 * 1.2);
}

TEST(IntegrationTest, TraceStatsOrderingMatchesTable2) {
  TraceStats irix;
  TraceStats pdpa;
  TraceStats equip;
  for (PolicyKind policy :
       {PolicyKind::kIrix, PolicyKind::kPdpa, PolicyKind::kEquipartition}) {
    ExperimentConfig config = BaseConfig(WorkloadId::kW1, 1.0, policy);
    config.record_trace = true;
    const ExperimentResult result = RunExperiment(config);
    ASSERT_TRUE(result.completed);
    if (policy == PolicyKind::kIrix) {
      irix = result.trace_stats;
    } else if (policy == PolicyKind::kPdpa) {
      pdpa = result.trace_stats;
    } else {
      equip = result.trace_stats;
    }
  }
  // IRIX migrates orders of magnitude more than the space-sharing policies.
  EXPECT_GT(irix.migrations, 100 * std::max(1LL, pdpa.migrations));
  EXPECT_GT(irix.migrations, 10 * std::max(1LL, equip.migrations));
  // And its bursts are far shorter.
  EXPECT_LT(irix.avg_burst_ms * 10, pdpa.avg_burst_ms);
  // PDPA reallocates no more than Equipartition (stability).
  EXPECT_LE(pdpa.migrations, equip.migrations);
}

TEST(IntegrationTest, RelativeSpeedupAblationOverallocatesSwim) {
  // Disabling the RelativeSpeedup test makes PDPA chase swim's superlinear
  // curve far beyond its useful range (DESIGN.md ablation). Controlled
  // scenario: a single swim climbing from a small initial allocation (a
  // trace of back-to-back swims so PDPA always starts them from the INC
  // search rather than handing over the whole idle machine).
  auto run = [](bool use_relative_speedup) {
    ExperimentConfig config = BaseConfig(WorkloadId::kW1, 1.0, PolicyKind::kPdpa);
    config.pdpa.use_relative_speedup = use_relative_speedup;
    // Two bt squatters hold 24 CPUs each (a stable allocation for bt), so
    // swim arrives with only 12 free, starts small, and climbs through the
    // INC search once the squatters finish — the exact regime the
    // RelativeSpeedup rule governs.
    JobSpec squatter1;
    squatter1.id = 0;
    squatter1.app_class = AppClass::kBt;
    squatter1.submit = 0;
    squatter1.request = 24;
    JobSpec squatter2 = squatter1;
    squatter2.id = 1;
    squatter2.submit = kSecond;
    JobSpec swim;
    swim.id = 2;
    swim.app_class = AppClass::kSwim;
    swim.submit = 95 * kSecond;  // just before the squatters finish
    swim.request = 30;
    config.jobs_override = {squatter1, squatter2, swim};
    const ExperimentResult result = RunExperiment(config);
    EXPECT_TRUE(result.completed);
    return result.metrics.per_class.at(AppClass::kSwim).avg_alloc;
  };
  const double swim_with = run(true);
  const double swim_without = run(false);
  EXPECT_GT(swim_without, swim_with + 2.0)
      << "without the RelativeSpeedup test PDPA should overshoot swim";
}

TEST(IntegrationTest, CoordinationAblationLosesResponseWin) {
  // PDPA with the ML rule disabled must lose the w3 response-time collapse
  // (DESIGN.md ablation: the two contributions need each other).
  ExperimentConfig full = BaseConfig(WorkloadId::kW3, 1.0, PolicyKind::kPdpa);
  ExperimentConfig alloc_only = full;
  alloc_only.pdpa_coordinated_ml = false;
  const ExperimentResult with_ml = RunExperiment(full);
  const ExperimentResult without_ml = RunExperiment(alloc_only);
  ASSERT_TRUE(with_ml.completed);
  ASSERT_TRUE(without_ml.completed);
  EXPECT_EQ(without_ml.max_ml, 4);
  const double full_resp = with_ml.metrics.per_class.at(AppClass::kBt).avg_response_s;
  const double ablated_resp = without_ml.metrics.per_class.at(AppClass::kBt).avg_response_s;
  EXPECT_GT(ablated_resp, full_resp * 2.0);
}

TEST(IntegrationTest, DynamicTargetEffCompletesAndTrimsUnderLoad) {
  ExperimentConfig config = BaseConfig(WorkloadId::kW2, 1.0, PolicyKind::kPdpa);
  config.pdpa.dynamic_target = true;
  const ExperimentResult result = RunExperiment(config);
  ASSERT_TRUE(result.completed);
  // Under full load the adaptive target is strict: hydro2d ends at or below
  // its static-0.7 allocation.
  EXPECT_LE(result.metrics.per_class.at(AppClass::kHydro2d).avg_alloc, 12.0);
}

TEST(IntegrationTest, SjfQueueOrderReducesMeanResponseUnderBacklog) {
  // With heavy backlog (Equip, fixed ML) shortest-demand-first must not be
  // worse than FCFS on mean response across all jobs.
  ExperimentConfig fcfs = BaseConfig(WorkloadId::kW3, 1.0, PolicyKind::kEquipartition);
  ExperimentConfig sjf = fcfs;
  sjf.queue_order = QueueOrder::kShortestDemandFirst;
  const ExperimentResult a = RunExperiment(fcfs);
  const ExperimentResult b = RunExperiment(sjf);
  auto mean_response = [](const ExperimentResult& r) {
    double total = 0.0;
    int jobs = 0;
    for (const auto& [app_class, metrics] : r.metrics.per_class) {
      total += metrics.avg_response_s * metrics.count;
      jobs += metrics.count;
    }
    return total / jobs;
  };
  EXPECT_LE(mean_response(b), mean_response(a) * 1.05);
}

TEST(IntegrationTest, RigidJobsFoldAndStartImmediatelyUnderPdpa) {
  // A malleable squatter holds the machine; a rigid 30-process job arrives.
  // Under PDPA it must start folded (no wait for 30 free CPUs) and finish.
  std::vector<JobSpec> jobs;
  JobSpec squatter;
  squatter.id = 0;
  squatter.app_class = AppClass::kBt;
  squatter.submit = 0;
  squatter.request = 30;
  JobSpec rigid;
  rigid.id = 1;
  rigid.app_class = AppClass::kBt;
  rigid.submit = 10 * kSecond;
  rigid.request = 30;
  rigid.rigid = true;
  jobs = {squatter, rigid};

  ExperimentConfig config = BaseConfig(WorkloadId::kW1, 1.0, PolicyKind::kPdpa);
  config.jobs_override = jobs;
  const ExperimentResult result = RunExperiment(config);
  ASSERT_TRUE(result.completed);
  // Both are bt: check the rigid one through the outcomes via wait time.
  // The rigid job must have started (almost) immediately.
  const ClassMetrics bt = result.metrics.per_class.at(AppClass::kBt);
  EXPECT_EQ(bt.count, 2);
  EXPECT_LT(bt.avg_wait_s, 5.0);
}

TEST(IntegrationTest, SwfReplayMatchesGeneratedRun) {
  // Round-trip the workload through SWF and replay it: identical outcome.
  const auto jobs = BuildWorkload(WorkloadId::kW1, 0.8, 42);
  ExperimentConfig direct = BaseConfig(WorkloadId::kW1, 0.8, PolicyKind::kEquipartition);
  ExperimentConfig replay = direct;
  replay.jobs_override = jobs;
  const ExperimentResult a = RunExperiment(direct);
  const ExperimentResult b = RunExperiment(replay);
  EXPECT_DOUBLE_EQ(a.metrics.makespan_s, b.metrics.makespan_s);
}

TEST(IntegrationTest, DynamicBaselineCompletesWithMoreReallocations) {
  // The related-work Dynamic policy must run workloads to completion, and
  // its eager idleness-driven repartitioning must reallocate more than
  // PDPA's converge-and-hold (the paper's critique).
  const ExperimentResult dynamic =
      RunExperiment(BaseConfig(WorkloadId::kW2, 1.0, PolicyKind::kMcCannDynamic));
  const ExperimentResult pdpa = RunExperiment(BaseConfig(WorkloadId::kW2, 1.0, PolicyKind::kPdpa));
  ASSERT_TRUE(dynamic.completed);
  ASSERT_TRUE(pdpa.completed);
  EXPECT_GT(dynamic.reallocations, pdpa.reallocations);
}

TEST(IntegrationTest, UtilizationLowerUnderPdpaThanEquip) {
  // Table 4's observation: PDPA leaves processors idle rather than burn
  // them inefficiently.
  ExperimentConfig equip = BaseConfig(WorkloadId::kW4, 0.6, PolicyKind::kEquipartition);
  equip.untuned = true;
  equip.record_trace = true;
  ExperimentConfig pdpa = BaseConfig(WorkloadId::kW4, 0.6, PolicyKind::kPdpa);
  pdpa.untuned = true;
  pdpa.record_trace = true;
  const ExperimentResult e = RunExperiment(equip);
  const ExperimentResult p = RunExperiment(pdpa);
  EXPECT_LT(p.utilization, e.utilization);
}

}  // namespace
}  // namespace pdpa
