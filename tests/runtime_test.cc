// Tests for the runtime substrates: SelfAnalyzer, periodicity detector and
// the NthLib binding.
#include <gtest/gtest.h>

#include <vector>

#include "src/app/application.h"
#include "src/common/rng.h"
#include "src/runtime/nth_lib.h"
#include "src/runtime/periodicity_detector.h"
#include "src/runtime/self_analyzer.h"

namespace pdpa {
namespace {

AppProfile LinearProfile() {
  AppProfile profile;
  profile.name = "linear";
  profile.speedup = std::make_shared<TableSpeedup>(
      std::vector<std::pair<double, double>>{{1, 1.0}, {32, 32.0}});
  profile.sequential_work_s = 40.0;
  profile.iterations = 40;
  profile.default_request = 16;
  profile.baseline_procs = 4;
  return profile;
}

AppCosts NoCosts() {
  AppCosts costs;
  costs.reconfig_freeze = 0;
  costs.warmup = 0;
  return costs;
}

SelfAnalyzerParams NoiselessParams() {
  SelfAnalyzerParams params;
  params.noise_sigma = 0.0;
  params.baseline_iterations = 2;
  params.amdahl_factor = 1.0;  // linear profile: baseline is perfectly efficient
  return params;
}

void RunTicks(Application& app, SimTime start, SimTime end, SimDuration dt = 20 * kMillisecond) {
  for (SimTime t = start; t < end; t += dt) {
    app.Advance(t, dt);
  }
}

TEST(SelfAnalyzerTest, BaselinePhaseForcesFewProcs) {
  Application app(1, LinearProfile(), NoCosts());
  SelfAnalyzer analyzer(&app, NoiselessParams(), Rng(1));
  app.set_iteration_callback(
      [&](const IterationRecord& r) { analyzer.OnIteration(r, r.end_time); });
  app.SetAllocation(16, 0);
  analyzer.OnJobStart(0);
  app.Start(0);
  EXPECT_EQ(app.EffectiveProcs(), 4);
  EXPECT_FALSE(analyzer.baseline_done());

  // Two baseline iterations: 1 s work each at speedup 4 -> 0.25 s each.
  RunTicks(app, 0, 600 * kMillisecond);
  EXPECT_TRUE(analyzer.baseline_done());
  EXPECT_NEAR(analyzer.baseline_time_s(), 0.25, 1e-6);
  // Released to the full allocation.
  EXPECT_EQ(app.EffectiveProcs(), 16);
}

TEST(SelfAnalyzerTest, ReportsAccurateSpeedupWithoutNoise) {
  Application app(1, LinearProfile(), NoCosts());
  SelfAnalyzer analyzer(&app, NoiselessParams(), Rng(1));
  std::vector<PerfReport> reports;
  analyzer.set_report_callback([&](const PerfReport& r) { reports.push_back(r); });
  app.set_iteration_callback(
      [&](const IterationRecord& r) { analyzer.OnIteration(r, r.end_time); });
  app.SetAllocation(16, 0);
  analyzer.OnJobStart(0);
  app.Start(0);
  RunTicks(app, 0, 2 * kSecond);
  ASSERT_FALSE(reports.empty());
  // Linear speedup: reported speedup at 16 procs must be ~16.
  EXPECT_NEAR(reports.back().speedup, 16.0, 0.2);
  EXPECT_NEAR(reports.back().efficiency, 1.0, 0.02);
  EXPECT_EQ(reports.back().procs, 16);
  EXPECT_EQ(reports.back().job, 1);
}

TEST(SelfAnalyzerTest, AmdahlFactorScalesEstimate) {
  Application app(1, LinearProfile(), NoCosts());
  SelfAnalyzerParams params = NoiselessParams();
  params.amdahl_factor = 0.9;
  SelfAnalyzer analyzer(&app, params, Rng(1));
  std::vector<PerfReport> reports;
  analyzer.set_report_callback([&](const PerfReport& r) { reports.push_back(r); });
  app.set_iteration_callback(
      [&](const IterationRecord& r) { analyzer.OnIteration(r, r.end_time); });
  app.SetAllocation(16, 0);
  analyzer.OnJobStart(0);
  app.Start(0);
  RunTicks(app, 0, 2 * kSecond);
  ASSERT_FALSE(reports.empty());
  // Estimate = (t4 / t16) * 0.9 * 4 = 4 * 0.9 * 4 = 14.4.
  EXPECT_NEAR(reports.back().speedup, 14.4, 0.2);
}

TEST(SelfAnalyzerTest, TaintedIterationsProduceNoReport) {
  Application app(1, LinearProfile(), NoCosts());
  SelfAnalyzer analyzer(&app, NoiselessParams(), Rng(1));
  int reports = 0;
  analyzer.set_report_callback([&](const PerfReport&) { ++reports; });
  app.set_iteration_callback(
      [&](const IterationRecord& r) { analyzer.OnIteration(r, r.end_time); });
  app.SetAllocation(16, 0);
  analyzer.OnJobStart(0);
  app.Start(0);
  // Finish the baseline (2 iterations x 0.25 s).
  RunTicks(app, 0, 500 * kMillisecond);
  ASSERT_TRUE(analyzer.baseline_done());
  const int before = reports;
  // Change the allocation mid-iteration over and over: every iteration is
  // tainted, so no new report may appear.
  SimTime now = 500 * kMillisecond;
  for (int i = 0; i < 20; ++i) {
    app.SetAllocation(8 + (i % 2), now);
    app.Advance(now, 20 * kMillisecond);
    now += 20 * kMillisecond;
  }
  EXPECT_EQ(reports, before);
}

TEST(SelfAnalyzerTest, NoiseStaysWithinBounds) {
  Application app(1, LinearProfile(), NoCosts());
  SelfAnalyzerParams params = NoiselessParams();
  params.noise_sigma = 0.05;
  SelfAnalyzer analyzer(&app, params, Rng(99));
  std::vector<PerfReport> reports;
  analyzer.set_report_callback([&](const PerfReport& r) { reports.push_back(r); });
  app.set_iteration_callback(
      [&](const IterationRecord& r) { analyzer.OnIteration(r, r.end_time); });
  app.SetAllocation(16, 0);
  analyzer.OnJobStart(0);
  app.Start(0);
  RunTicks(app, 0, 3 * kSecond);
  ASSERT_GT(reports.size(), 5u);
  for (const PerfReport& r : reports) {
    EXPECT_GT(r.speedup, 16.0 * 0.7);
    EXPECT_LT(r.speedup, 16.0 * 1.4);
  }
}

TEST(NthLibBindingTest, WiresAppAnalyzerAndReports) {
  auto app = std::make_unique<Application>(7, LinearProfile(), NoCosts());
  NthLibBinding binding(std::move(app), NoiselessParams(), Rng(3));
  std::vector<PerfReport> reports;
  binding.set_report_callback([&](const PerfReport& r) { reports.push_back(r); });
  binding.SetProcessors(16, 0);
  binding.StartJob(0);
  EXPECT_EQ(binding.app().EffectiveProcs(), 4);  // baseline engaged
  for (SimTime t = 0; t < 2 * kSecond; t += 20 * kMillisecond) {
    binding.Tick(t, 20 * kMillisecond);
  }
  ASSERT_FALSE(reports.empty());
  EXPECT_EQ(reports.back().job, 7);
  EXPECT_NEAR(reports.back().speedup, 16.0, 0.3);
}

TEST(PeriodicityDetectorTest, DetectsSimpleCycle) {
  PeriodicityDetector dpd;
  // Three parallel loops per outer iteration: addresses A, B, C.
  const std::uint64_t pattern[] = {0xA, 0xB, 0xC};
  int starts = 0;
  for (int iter = 0; iter < 10; ++iter) {
    for (std::uint64_t loop : pattern) {
      if (dpd.OnLoopEvent(loop)) {
        ++starts;
      }
    }
  }
  EXPECT_TRUE(dpd.detected());
  EXPECT_EQ(dpd.period(), 3);
  // Detection needs confirm_repeats+1 = 3 occurrences; starts fire from then
  // on once per period.
  EXPECT_GE(starts, 6);
}

TEST(PeriodicityDetectorTest, SingleLoopPeriodOne) {
  PeriodicityDetector dpd;
  int starts = 0;
  for (int i = 0; i < 10; ++i) {
    if (dpd.OnLoopEvent(0x42)) {
      ++starts;
    }
  }
  EXPECT_EQ(dpd.period(), 1);
  EXPECT_GE(starts, 7);
}

TEST(PeriodicityDetectorTest, PhaseChangeResetsDetection) {
  PeriodicityDetector dpd;
  for (int i = 0; i < 12; ++i) {
    dpd.OnLoopEvent(i % 3);
  }
  ASSERT_EQ(dpd.period(), 3);
  // The application enters a new phase with a different loop structure.
  dpd.OnLoopEvent(0x999);
  EXPECT_FALSE(dpd.detected());
  // It re-detects the new cycle.
  for (int i = 0; i < 20; ++i) {
    dpd.OnLoopEvent(i % 4 + 100);
  }
  EXPECT_EQ(dpd.period(), 4);
}

TEST(PeriodicityDetectorTest, NoFalsePeriodOnRandomStream) {
  PeriodicityDetector dpd;
  std::uint64_t x = 1;
  for (int i = 0; i < 100; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    dpd.OnLoopEvent(x);
  }
  EXPECT_FALSE(dpd.detected());
}

TEST(PeriodicityDetectorTest, NestedIterativeRegions) {
  // Inner loop D repeats 4 times inside each outer iteration (A B D D D D):
  // the detector should find the full outer period of 6.
  PeriodicityDetector dpd;
  for (int outer = 0; outer < 8; ++outer) {
    dpd.OnLoopEvent(0xA);
    dpd.OnLoopEvent(0xB);
    for (int inner = 0; inner < 4; ++inner) {
      dpd.OnLoopEvent(0xD);
    }
  }
  EXPECT_TRUE(dpd.detected());
  EXPECT_EQ(dpd.period(), 6);
}

TEST(PeriodicityDetectorTest, ResetClearsState) {
  PeriodicityDetector dpd;
  for (int i = 0; i < 9; ++i) {
    dpd.OnLoopEvent(1);
  }
  ASSERT_TRUE(dpd.detected());
  dpd.Reset();
  EXPECT_FALSE(dpd.detected());
  EXPECT_EQ(dpd.periods_seen(), 0);
}

}  // namespace
}  // namespace pdpa
