// Property tests for the queuing-system substrates: SWF round-trip fuzz
// and statistical validation of the workload generator.
#include <gtest/gtest.h>

#include <sstream>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/strings.h"
#include "src/qs/swf.h"
#include "src/qs/workload_generator.h"
#include "src/workload/catalog.h"

namespace pdpa {
namespace {

TEST(SwfPropertyTest, RandomJobListsRoundTrip) {
  Rng rng(321);
  for (int round = 0; round < 20; ++round) {
    std::vector<JobSpec> jobs;
    const int count = rng.UniformInt(0, 50);
    SimTime t = 0;
    for (int i = 0; i < count; ++i) {
      JobSpec spec;
      spec.id = i;
      spec.app_class = static_cast<AppClass>(rng.UniformInt(0, kNumAppClasses - 1));
      t += rng.UniformInt(0, 100) * kSecond;
      spec.submit = t;
      spec.request = rng.UniformInt(1, 64);
      jobs.push_back(spec);
    }
    std::ostringstream out;
    WriteSwf(jobs, out);
    std::istringstream in(out.str());
    std::vector<JobSpec> parsed;
    std::string error;
    ASSERT_TRUE(ReadSwf(in, &parsed, &error)) << error;
    ASSERT_EQ(parsed.size(), jobs.size()) << "round " << round;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      EXPECT_EQ(parsed[i].id, jobs[i].id);
      EXPECT_EQ(parsed[i].app_class, jobs[i].app_class);
      EXPECT_EQ(parsed[i].submit, jobs[i].submit);
      EXPECT_EQ(parsed[i].request, jobs[i].request);
    }
  }
}

TEST(SwfPropertyTest, TruncatedLinesAlwaysRejected) {
  // Any SWF line with < 18 fields must be rejected, never misparsed.
  const std::string full = "0 10 -1 -1 -1 -1 -1 30 -1 -1 -1 -1 -1 2 -1 -1 -1 -1";
  const std::vector<std::string> fields = SplitTokens(full, ' ');
  for (std::size_t keep = 1; keep < fields.size(); ++keep) {
    std::string line;
    for (std::size_t i = 0; i < keep; ++i) {
      line += fields[i];
      line += ' ';
    }
    std::istringstream in(line + "\n");
    std::vector<JobSpec> jobs;
    EXPECT_FALSE(ReadSwf(in, &jobs, nullptr)) << "kept " << keep << " fields";
  }
}

TEST(WorkloadGenPropertyTest, InterarrivalsAreExponential) {
  WorkloadGenSpec spec;
  spec.load_share = {0.0, 1.0, 0.0, 0.0};  // all bt
  spec.load = 1.0;
  spec.window = 100000 * kSecond;
  spec.seed = 5;
  const auto jobs = GenerateWorkload(spec);
  ASSERT_GT(jobs.size(), 500u);
  RunningStat gaps;
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    gaps.Add(TimeToSeconds(jobs[i].submit - jobs[i - 1].submit));
  }
  // Exponential distribution: stddev == mean.
  EXPECT_NEAR(gaps.stddev() / gaps.mean(), 1.0, 0.1);
  // Rate matches the demand calibration: mean gap = demand / (load * cpus).
  const double demand = MakeBtProfile().CpuDemandAtRequest();
  EXPECT_NEAR(gaps.mean(), demand / 60.0, demand / 60.0 * 0.1);
}

TEST(WorkloadGenPropertyTest, SubmissionsSortedAndWithinWindow) {
  for (WorkloadId workload :
       {WorkloadId::kW1, WorkloadId::kW2, WorkloadId::kW3, WorkloadId::kW4}) {
    const auto jobs = BuildWorkload(workload, 1.0, 9);
    SimTime prev = 0;
    for (const JobSpec& job : jobs) {
      EXPECT_GE(job.submit, prev);
      EXPECT_LT(job.submit, 300 * kSecond);
      EXPECT_GT(job.request, 0);
      prev = job.submit;
    }
  }
}

TEST(WorkloadGenPropertyTest, LoadScalesArrivalCount) {
  // Twice the load should produce roughly twice the jobs.
  const auto low = BuildWorkload(WorkloadId::kW4, 0.5, 1234);
  const auto high = BuildWorkload(WorkloadId::kW4, 1.0, 1234);
  ASSERT_GT(low.size(), 0u);
  const double ratio = static_cast<double>(high.size()) / static_cast<double>(low.size());
  EXPECT_GT(ratio, 1.4);
  EXPECT_LT(ratio, 2.8);
}

TEST(WorkloadGenPropertyTest, AllWorkloadsContainOnlyDeclaredClasses) {
  for (WorkloadId workload :
       {WorkloadId::kW1, WorkloadId::kW2, WorkloadId::kW3, WorkloadId::kW4}) {
    const auto shares = WorkloadShares(workload);
    const auto jobs = BuildWorkload(workload, 1.0, 77);
    for (const JobSpec& job : jobs) {
      EXPECT_GT(shares[static_cast<std::size_t>(job.app_class)], 0.0)
          << WorkloadName(workload) << " produced class " << AppClassName(job.app_class);
    }
  }
}

TEST(WorkloadGenPropertyTest, TunedRequestsMatchProfiles) {
  const auto jobs = BuildWorkload(WorkloadId::kW4, 1.0, 3);
  for (const JobSpec& job : jobs) {
    EXPECT_EQ(job.request, MakeProfile(job.app_class).default_request);
  }
}

}  // namespace
}  // namespace pdpa
