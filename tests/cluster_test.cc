// Tests for the cluster-of-SMPs extension: per-node RMs, placement, and
// the cluster queuing system.
#include <gtest/gtest.h>

#include "src/cluster/cluster.h"
#include "src/core/pdpa_policy.h"
#include "src/rm/equipartition.h"

namespace pdpa {
namespace {

ResourceManager::Params FastParams() {
  ResourceManager::Params params;
  params.analyzer.noise_sigma = 0.0;
  params.app_costs.reconfig_freeze = 0;
  params.app_costs.warmup = 0;
  return params;
}

std::vector<JobSpec> MakeJobs(int count, AppClass app_class, int request,
                              SimDuration spacing = kSecond) {
  std::vector<JobSpec> jobs;
  for (int i = 0; i < count; ++i) {
    JobSpec spec;
    spec.id = i;
    spec.app_class = app_class;
    spec.submit = i * spacing;
    spec.request = request;
    jobs.push_back(spec);
  }
  return jobs;
}

TEST(ClusterTest, NodesAreIndependentMachines) {
  Simulation sim;
  Cluster cluster(&sim, 3, 8, [] { return std::make_unique<Equipartition>(4); }, FastParams(),
                  Rng(1));
  EXPECT_EQ(cluster.num_nodes(), 3);
  for (int i = 0; i < 3; ++i) {
    const Cluster::NodeStats stats = cluster.StatsOf(i);
    EXPECT_EQ(stats.free_cpus, 8);
    EXPECT_EQ(stats.running_jobs, 0);
    EXPECT_TRUE(stats.can_admit);
  }
}

TEST(ClusterTest, RoundRobinSpreadsJobsAcrossNodes) {
  Simulation sim;
  Cluster cluster(&sim, 4, 8, [] { return std::make_unique<Equipartition>(4); }, FastParams(),
                  Rng(1));
  ClusterQueuingSystem qs(&sim, &cluster, MakeJobs(4, AppClass::kApsi, 2),
                          PlacementPolicy::kRoundRobin);
  cluster.Start();
  qs.Start();
  sim.RunUntil(5 * kSecond);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(cluster.StatsOf(i).running_jobs, 1) << "node " << i;
  }
  sim.RunUntil(2 * 3600 * kSecond);
  ASSERT_TRUE(qs.AllJobsDone());
  // Each job ran on a distinct node.
  std::set<int> nodes(qs.outcome_nodes().begin(), qs.outcome_nodes().end());
  EXPECT_EQ(nodes.size(), 4u);
}

TEST(ClusterTest, MostFreePlacementPicksEmptiestNode) {
  Simulation sim;
  Cluster cluster(&sim, 2, 16, [] { return std::make_unique<PdpaPolicy>(PdpaParams{},
                                                                        PdpaMlParams{}); },
                  FastParams(), Rng(1));
  ClusterQueuingSystem qs(&sim, &cluster, MakeJobs(3, AppClass::kHydro2d, 12, 5 * kSecond),
                          PlacementPolicy::kMostFreeCpus);
  cluster.Start();
  qs.Start();
  sim.RunUntil(12 * kSecond);
  // Job 0 -> node with most free (tie: node 0); job 1 -> the other node;
  // job 2 -> whichever has more free after PDPA trimmed the first two.
  EXPECT_GE(cluster.StatsOf(0).running_jobs, 1);
  EXPECT_GE(cluster.StatsOf(1).running_jobs, 1);
  sim.RunUntil(2 * 3600 * kSecond);
  EXPECT_TRUE(qs.AllJobsDone());
}

TEST(ClusterTest, QueueHoldsJobsWhenNoNodeAdmits) {
  Simulation sim;
  // Single node, ML 1: the second job must queue until the first finishes.
  Cluster cluster(&sim, 1, 8, [] { return std::make_unique<Equipartition>(1); }, FastParams(),
                  Rng(1));
  ClusterQueuingSystem qs(&sim, &cluster, MakeJobs(2, AppClass::kApsi, 2),
                          PlacementPolicy::kRoundRobin);
  cluster.Start();
  qs.Start();
  sim.RunUntil(5 * kSecond);
  EXPECT_EQ(qs.queued(), 1);
  sim.RunUntil(2 * 3600 * kSecond);
  ASSERT_TRUE(qs.AllJobsDone());
  // Strictly sequential: the second start is at/after the first finish.
  const auto& outcomes = qs.outcomes();
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_GE(outcomes[1].start, outcomes[0].finish);
}

TEST(ClusterTest, PerNodePdpaStillTrimsUnscalableJobs) {
  Simulation sim;
  Cluster cluster(&sim, 2, 16, [] { return std::make_unique<PdpaPolicy>(PdpaParams{},
                                                                        PdpaMlParams{}); },
                  FastParams(), Rng(1));
  ClusterQueuingSystem qs(&sim, &cluster, MakeJobs(2, AppClass::kApsi, 16, kSecond),
                          PlacementPolicy::kLeastLoaded);
  cluster.Start();
  qs.Start();
  sim.RunUntil(60 * kSecond);
  // Both apsi jobs (placed on different nodes) must have been walked down
  // toward the floor by their node's PDPA.
  int total_allocated = 0;
  for (int node = 0; node < 2; ++node) {
    total_allocated += 16 - cluster.StatsOf(node).free_cpus;
  }
  EXPECT_LE(total_allocated, 6);
}

}  // namespace
}  // namespace pdpa
