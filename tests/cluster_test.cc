// Tests for the sharded cluster engine: placement, admission-driven
// queueing, node-boundary fragmentation, cutoff semantics — and the core
// contract that a sharded parallel run is byte-identical to the serial
// single-loop reference across every captured artifact.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/core/pdpa_policy.h"
#include "src/obs/event_log.h"
#include "src/rm/equipartition.h"

namespace pdpa {
namespace {

ResourceManager::Params FastParams() {
  ResourceManager::Params params;
  params.analyzer.noise_sigma = 0.0;
  params.app_costs.reconfig_freeze = 0;
  params.app_costs.warmup = 0;
  return params;
}

std::vector<JobSpec> MakeJobs(int count, int request, SimDuration spacing = kSecond) {
  std::vector<JobSpec> jobs;
  for (int i = 0; i < count; ++i) {
    JobSpec spec;
    spec.id = i;
    spec.app_class = static_cast<AppClass>(i % kNumAppClasses);
    spec.submit = i * spacing;
    spec.request = request;
    jobs.push_back(spec);
  }
  return jobs;
}

ClusterOptions BaseOptions(int num_nodes, int cpus_per_node, int ml = 4) {
  ClusterOptions options;
  options.num_nodes = num_nodes;
  options.cpus_per_node = cpus_per_node;
  options.make_policy = [ml] { return std::make_unique<Equipartition>(ml); };
  options.rm_params = FastParams();
  options.capture_events = true;
  options.capture_timeseries = true;
  return options;
}

// Reports the first line where two large artifacts diverge instead of
// dumping both wholesale.
void ExpectSameBytes(const std::string& expected, const std::string& actual, const char* what) {
  if (expected == actual) {
    return;
  }
  std::size_t line = 1;
  std::size_t i = 0;
  const std::size_t limit = std::min(expected.size(), actual.size());
  std::size_t line_start = 0;
  while (i < limit && expected[i] == actual[i]) {
    if (expected[i] == '\n') {
      ++line;
      line_start = i + 1;
    }
    ++i;
  }
  const auto line_of = [line_start](const std::string& s) {
    const std::size_t end = s.find('\n', line_start);
    return s.substr(line_start, end == std::string::npos ? std::string::npos : end - line_start);
  };
  ADD_FAILURE() << what << " diverges at line " << line << ":\n  serial:  " << line_of(expected)
                << "\n  sharded: " << line_of(actual);
}

void ExpectIdenticalResults(const ClusterResult& serial, const ClusterResult& sharded) {
  ASSERT_EQ(serial.outcomes.size(), sharded.outcomes.size());
  for (std::size_t i = 0; i < serial.outcomes.size(); ++i) {
    EXPECT_EQ(serial.outcomes[i].id, sharded.outcomes[i].id) << "outcome " << i;
    EXPECT_EQ(serial.outcomes[i].start, sharded.outcomes[i].start) << "outcome " << i;
    EXPECT_EQ(serial.outcomes[i].finish, sharded.outcomes[i].finish) << "outcome " << i;
  }
  EXPECT_EQ(serial.outcome_nodes, sharded.outcome_nodes);
  EXPECT_EQ(serial.completed, sharded.completed);
  EXPECT_EQ(serial.end_time, sharded.end_time);
  EXPECT_EQ(serial.max_node_running, sharded.max_node_running);
  EXPECT_EQ(serial.total_reallocations, sharded.total_reallocations);
  EXPECT_EQ(serial.alloc_integral_us, sharded.alloc_integral_us);
  ExpectSameBytes(serial.events_jsonl, sharded.events_jsonl, "events_jsonl");
  ExpectSameBytes(serial.timeseries_csv, sharded.timeseries_csv, "timeseries_csv");
  ExpectSameBytes(serial.counters.ToString(), sharded.counters.ToString(), "counters");
}

// The tentpole contract: shard count must not change a single output byte.
TEST(ClusterShardingTest, ShardedRunIsByteIdenticalToSerial) {
  const std::vector<JobSpec> jobs = MakeJobs(24, 6, 700 * kMillisecond);
  const PlacementPolicy placements[] = {PlacementPolicy::kRoundRobin,
                                        PlacementPolicy::kMostFreeCpus,
                                        PlacementPolicy::kLeastLoaded};
  for (const PlacementPolicy placement : placements) {
    for (const std::uint64_t seed : {1ULL, 7ULL}) {
      ClusterOptions options = BaseOptions(6, 8);
      options.placement = placement;
      options.seed = seed;
      options.shards = 1;
      const ClusterResult serial = RunCluster(jobs, options);
      ASSERT_TRUE(serial.completed);
      ASSERT_EQ(serial.outcomes.size(), jobs.size());
      for (const int shards : {2, 3, 4}) {
        options.shards = shards;
        const ClusterResult sharded = RunCluster(jobs, options);
        SCOPED_TRACE(std::string(PlacementPolicyName(placement)) + " seed " +
                     std::to_string(seed) + " shards " + std::to_string(shards));
        EXPECT_EQ(sharded.shards_used, shards);
        ExpectIdenticalResults(serial, sharded);
      }
    }
  }
}

// Admission flips (PDPA ML holds) are the other visible-event kind; make
// sure a hold-heavy run stays byte-identical too.
TEST(ClusterShardingTest, PdpaAdmissionFlipsStayDeterministic) {
  const std::vector<JobSpec> jobs = MakeJobs(12, 8, 400 * kMillisecond);
  ClusterOptions options = BaseOptions(3, 8);
  options.make_policy = [] {
    return std::make_unique<PdpaPolicy>(PdpaParams{}, PdpaMlParams{});
  };
  options.placement = PlacementPolicy::kLeastLoaded;
  options.shards = 1;
  const ClusterResult serial = RunCluster(jobs, options);
  ASSERT_TRUE(serial.completed);
  for (const int shards : {2, 3}) {
    options.shards = shards;
    const ClusterResult sharded = RunCluster(jobs, options);
    SCOPED_TRACE("shards " + std::to_string(shards));
    ExpectIdenticalResults(serial, sharded);
  }
}

TEST(ClusterShardingTest, ShardCountIsClampedToNodes) {
  ClusterOptions options = BaseOptions(2, 4);
  options.shards = 16;
  const ClusterResult result = RunCluster(MakeJobs(4, 2), options);
  EXPECT_EQ(result.shards_used, 2);
  EXPECT_TRUE(result.completed);
}

TEST(ClusterTest, RoundRobinSpreadsJobsAcrossNodes) {
  ClusterOptions options = BaseOptions(4, 8);
  const ClusterResult result = RunCluster(MakeJobs(4, 2), options);
  ASSERT_TRUE(result.completed);
  const std::set<int> nodes(result.outcome_nodes.begin(), result.outcome_nodes.end());
  EXPECT_EQ(nodes.size(), 4u);
}

// All three placement policies must break ties toward the lowest node
// index — the determinism of the whole run rests on it.
TEST(ClusterTest, PlacementTieBreaksToLowestNodeIndex) {
  for (const PlacementPolicy placement :
       {PlacementPolicy::kRoundRobin, PlacementPolicy::kMostFreeCpus,
        PlacementPolicy::kLeastLoaded}) {
    ClusterOptions options = BaseOptions(3, 8);
    options.placement = placement;
    const ClusterResult result = RunCluster(MakeJobs(1, 4), options);
    ASSERT_EQ(result.outcome_nodes.size(), 1u) << PlacementPolicyName(placement);
    EXPECT_EQ(result.outcome_nodes[0], 0) << PlacementPolicyName(placement);
  }
}

TEST(ClusterTest, QueueHoldsJobsWhenNoNodeAdmits) {
  // Single node, ML 1: the second job must wait for the first to finish.
  ClusterOptions options = BaseOptions(1, 8, /*ml=*/1);
  const ClusterResult result = RunCluster(MakeJobs(2, 2), options);
  ASSERT_TRUE(result.completed);
  ASSERT_EQ(result.outcomes.size(), 2u);
  EXPECT_GE(result.outcomes[1].start, result.outcomes[0].finish);
}

// A request wider than a node cannot span nodes; it runs capped at the
// node's size instead of deadlocking the queue (node-boundary
// fragmentation, the cluster's new failure mode).
TEST(ClusterTest, RequestWiderThanNodeRunsCappedAndCompletes) {
  ClusterOptions options = BaseOptions(2, 8);
  options.placement = PlacementPolicy::kMostFreeCpus;
  std::vector<JobSpec> jobs = MakeJobs(2, 30, 0);
  const ClusterResult result = RunCluster(jobs, options);
  ASSERT_TRUE(result.completed);
  ASSERT_EQ(result.outcomes.size(), 2u);
  // Both wide jobs started immediately (one per node) — 2x8 free CPUs do
  // not merge into 16, but neither do they block a 30-CPU request.
  EXPECT_EQ(result.outcomes[0].start, 0);
  EXPECT_EQ(result.outcomes[1].start, 0);
  EXPECT_NE(result.outcome_nodes[0], result.outcome_nodes[1]);
  // Capped at the node width: no job ever integrated more than
  // cpus_per_node worth of allocation per microsecond of runtime.
  for (const JobOutcome& outcome : result.outcomes) {
    const double avg_alloc = result.alloc_integral_us.at(outcome.id) /
                             static_cast<double>(outcome.finish - outcome.start);
    EXPECT_LE(avg_alloc, 8.0 + 1e-9) << "job " << outcome.id;
  }
}

TEST(ClusterTest, CutoffReportsIncompleteRun) {
  ClusterOptions options = BaseOptions(2, 4);
  options.max_sim_time = 2 * kSecond;
  const ClusterResult result = RunCluster(MakeJobs(8, 4), options);
  EXPECT_FALSE(result.completed);
  EXPECT_EQ(result.end_time, 2 * kSecond);
  EXPECT_LT(result.outcomes.size(), 8u);
}

TEST(ClusterTest, PerNodePdpaStillTrimsUnscalableJobs) {
  ClusterOptions options = BaseOptions(2, 16);
  options.make_policy = [] {
    return std::make_unique<PdpaPolicy>(PdpaParams{}, PdpaMlParams{});
  };
  options.placement = PlacementPolicy::kLeastLoaded;
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 2; ++i) {
    JobSpec spec;
    spec.id = i;
    spec.app_class = AppClass::kApsi;  // barely scalable
    spec.submit = i * kSecond;
    spec.request = 16;
    jobs.push_back(spec);
  }
  const ClusterResult result = RunCluster(jobs, options);
  ASSERT_TRUE(result.completed);
  // PDPA on each node walks the unscalable apsi jobs down toward the floor:
  // the time-averaged allocation ends far below the 16-CPU request.
  for (const JobOutcome& outcome : result.outcomes) {
    const double avg_alloc = result.alloc_integral_us.at(outcome.id) /
                             static_cast<double>(outcome.finish - outcome.start);
    EXPECT_LE(avg_alloc, 6.0) << "job " << outcome.id;
  }
}

// The merged event log is time-ordered, node-tagged, and carries the
// controller's placement records.
TEST(ClusterTest, MergedEventLogIsOrderedAndTagged) {
  ClusterOptions options = BaseOptions(3, 8);
  const ClusterResult result = RunCluster(MakeJobs(6, 4), options);
  ASSERT_TRUE(result.completed);
  ASSERT_FALSE(result.events_jsonl.empty());
  long long last_t = 0;
  int places = 0;
  int node_tagged = 0;
  std::size_t pos = 0;
  while (pos < result.events_jsonl.size()) {
    std::size_t end = result.events_jsonl.find('\n', pos);
    if (end == std::string::npos) {
      end = result.events_jsonl.size();
    }
    const std::string line = result.events_jsonl.substr(pos, end - pos);
    pos = end + 1;
    std::map<std::string, std::string> fields;
    ASSERT_TRUE(ParseFlatJson(line, &fields)) << line;
    const auto t_it = fields.find("t_us");
    const long long t = t_it == fields.end() ? 0 : std::stoll(t_it->second);
    EXPECT_GE(t, last_t) << line;
    last_t = t;
    if (fields["type"] == "place") {
      ++places;
    }
    if (fields.count("node") != 0 && fields["type"] != "place") {
      ++node_tagged;
    }
  }
  EXPECT_EQ(places, 6);
  EXPECT_GT(node_tagged, 0);
}

// --- epoch batching (arrival_batch) --------------------------------------

long long CounterValue(const RegistrySnapshot& snapshot, std::string_view name) {
  for (const CounterSnapshot& counter : snapshot.counters) {
    if (counter.name == name) {
      return counter.value;
    }
  }
  return 0;
}

// Counter dump without the two batch-protocol counters — the only fields
// allowed to differ between a batched and a reference-protocol run.
std::string CountersMinusBatchProtocol(const RegistrySnapshot& snapshot) {
  RegistrySnapshot filtered = snapshot;
  std::erase_if(filtered.counters, [](const CounterSnapshot& c) {
    return c.name == "cluster.arrival_batches" || c.name == "cluster.batched_arrivals";
  });
  return filtered.ToString();
}

// Cross-protocol identity: everything ExpectIdenticalResults checks, with
// the counter comparison filtered down to the non-protocol instruments.
void ExpectIdenticalModuloBatchCounters(const ClusterResult& reference,
                                        const ClusterResult& batched) {
  ASSERT_EQ(reference.outcomes.size(), batched.outcomes.size());
  for (std::size_t i = 0; i < reference.outcomes.size(); ++i) {
    EXPECT_EQ(reference.outcomes[i].id, batched.outcomes[i].id) << "outcome " << i;
    EXPECT_EQ(reference.outcomes[i].start, batched.outcomes[i].start) << "outcome " << i;
    EXPECT_EQ(reference.outcomes[i].finish, batched.outcomes[i].finish) << "outcome " << i;
  }
  EXPECT_EQ(reference.outcome_nodes, batched.outcome_nodes);
  EXPECT_EQ(reference.completed, batched.completed);
  EXPECT_EQ(reference.end_time, batched.end_time);
  EXPECT_EQ(reference.max_node_running, batched.max_node_running);
  EXPECT_EQ(reference.total_reallocations, batched.total_reallocations);
  EXPECT_EQ(reference.alloc_integral_us, batched.alloc_integral_us);
  ExpectSameBytes(reference.events_jsonl, batched.events_jsonl, "events_jsonl");
  ExpectSameBytes(reference.timeseries_csv, batched.timeseries_csv, "timeseries_csv");
  ExpectSameBytes(CountersMinusBatchProtocol(reference.counters),
                  CountersMinusBatchProtocol(batched.counters), "filtered counters");
}

// The tentpole contract of the epoch-batched control plane: batched runs —
// serial and sharded — reproduce the one-arrival-per-barrier protocol byte
// for byte (modulo the two batch-protocol counters) for every placement
// policy.
TEST(ClusterBatchingTest, BatchedProtocolMatchesReferenceAcrossShardsAndPlacements) {
  const std::vector<JobSpec> jobs = MakeJobs(24, 6, 700 * kMillisecond);
  for (const PlacementPolicy placement :
       {PlacementPolicy::kRoundRobin, PlacementPolicy::kMostFreeCpus,
        PlacementPolicy::kLeastLoaded}) {
    ClusterOptions options = BaseOptions(6, 8);
    options.placement = placement;
    options.arrival_batch = false;
    options.shards = 1;
    const ClusterResult reference = RunCluster(jobs, options);
    ASSERT_TRUE(reference.completed);
    EXPECT_EQ(CounterValue(reference.counters, "cluster.batched_arrivals"), 0);
    options.arrival_batch = true;
    for (const int shards : {1, 2, 5}) {
      options.shards = shards;
      const ClusterResult batched = RunCluster(jobs, options);
      SCOPED_TRACE(std::string(PlacementPolicyName(placement)) + " shards " +
                   std::to_string(shards));
      ExpectIdenticalModuloBatchCounters(reference, batched);
    }
  }
}

// Batch counters are themselves deterministic across shard counts (drains
// and arrival cycles happen in the same global time order either way), and
// a same-time arrival burst is one cycle in both protocols.
TEST(ClusterBatchingTest, BatchCountersAreShardCountInvariant) {
  const std::vector<JobSpec> jobs = MakeJobs(24, 6, 300 * kMillisecond);
  ClusterOptions options = BaseOptions(6, 8);
  options.shards = 1;
  const ClusterResult serial = RunCluster(jobs, options);
  const long long cycles = CounterValue(serial.counters, "cluster.arrival_batches");
  const long long piggybacked = CounterValue(serial.counters, "cluster.batched_arrivals");
  EXPECT_GT(cycles, 0);
  EXPECT_LE(cycles, 24);
  for (const int shards : {2, 5}) {
    options.shards = shards;
    const ClusterResult sharded = RunCluster(jobs, options);
    SCOPED_TRACE("shards " + std::to_string(shards));
    EXPECT_EQ(CounterValue(sharded.counters, "cluster.arrival_batches"), cycles);
    EXPECT_EQ(CounterValue(sharded.counters, "cluster.batched_arrivals"), piggybacked);
  }
}

// An arrival landing exactly on a completion time must drain the completion
// batch first (finish-before-submit tie order) in both protocols — the
// regime-B feeder enqueues strictly-earlier arrivals only.
TEST(ClusterBatchingTest, ArrivalExactlyAtCompletionBatchBoundary) {
  // Pin the boundary: run one job to learn its finish time, then submit the
  // second job at exactly that instant. ML 1 keeps the node non-admitting
  // while busy, so the arrival rides the regime-B path.
  ClusterOptions options = BaseOptions(2, 8, /*ml=*/1);
  const ClusterResult probe = RunCluster(MakeJobs(1, 4), options);
  ASSERT_TRUE(probe.completed);
  const SimTime boundary = probe.outcomes[0].finish;
  ASSERT_GT(boundary, 0);

  std::vector<JobSpec> jobs = MakeJobs(2, 4, 0);
  jobs[1].submit = boundary;
  options.arrival_batch = false;
  const ClusterResult reference = RunCluster(jobs, options);
  ASSERT_TRUE(reference.completed);
  options.arrival_batch = true;
  for (const int shards : {1, 2}) {
    options.shards = shards;
    const ClusterResult batched = RunCluster(jobs, options);
    SCOPED_TRACE("shards " + std::to_string(shards));
    ExpectIdenticalModuloBatchCounters(reference, batched);
  }
}

// More shards than nodes (clamped) with batching on still matches the
// reference protocol.
TEST(ClusterBatchingTest, MoreShardsThanNodesMatchesReference) {
  const std::vector<JobSpec> jobs = MakeJobs(8, 4, 500 * kMillisecond);
  ClusterOptions options = BaseOptions(2, 8);
  options.arrival_batch = false;
  const ClusterResult reference = RunCluster(jobs, options);
  options.arrival_batch = true;
  options.shards = 5;
  const ClusterResult batched = RunCluster(jobs, options);
  EXPECT_EQ(batched.shards_used, 2);
  ExpectIdenticalModuloBatchCounters(reference, batched);
}

// A zero-arrival workload terminates immediately in both protocols, with
// and without a cutoff.
TEST(ClusterBatchingTest, ZeroArrivalWorkloadTerminates) {
  for (const bool batch : {true, false}) {
    for (const SimTime cutoff : {SimTime{0}, 5 * kSecond}) {
      ClusterOptions options = BaseOptions(3, 8);
      options.arrival_batch = batch;
      options.max_sim_time = cutoff;
      const ClusterResult result = RunCluster({}, options);
      SCOPED_TRACE((batch ? "batched" : "reference") + std::string(" cutoff ") +
                   std::to_string(cutoff));
      EXPECT_TRUE(result.completed);
      EXPECT_TRUE(result.outcomes.empty());
      EXPECT_EQ(result.end_time, 0);
      EXPECT_EQ(CounterValue(result.counters, "cluster.arrival_batches"), 0);
    }
  }
}

// Cutoff semantics are protocol-invariant: the batched run times out at the
// same instant with the same completed prefix.
TEST(ClusterBatchingTest, CutoffMatchesReferenceProtocol) {
  const std::vector<JobSpec> jobs = MakeJobs(8, 4);
  ClusterOptions options = BaseOptions(2, 4);
  options.max_sim_time = 2 * kSecond;
  options.arrival_batch = false;
  const ClusterResult reference = RunCluster(jobs, options);
  EXPECT_FALSE(reference.completed);
  options.arrival_batch = true;
  for (const int shards : {1, 2}) {
    options.shards = shards;
    const ClusterResult batched = RunCluster(jobs, options);
    SCOPED_TRACE("shards " + std::to_string(shards));
    ExpectIdenticalModuloBatchCounters(reference, batched);
  }
}

// --- RM boundary batching (rm_params.boundary_batch) ---------------------

// With a report-passive policy and no capture sinks, the boundary-batched
// RM skips immaterial progress ticks; completions, placements and
// allocation integrals must not move by a microsecond.
TEST(ClusterBoundaryBatchTest, FastPathReproducesExactOutcomes) {
  const std::vector<JobSpec> jobs = MakeJobs(24, 6, 400 * kMillisecond);
  ClusterOptions exact_options = BaseOptions(4, 8);
  exact_options.capture_events = false;
  exact_options.capture_timeseries = false;
  const ClusterResult exact = RunCluster(jobs, exact_options);
  ASSERT_TRUE(exact.completed);

  ClusterOptions fast_options = exact_options;
  fast_options.rm_params.boundary_batch = true;
  const ClusterResult fast = RunCluster(jobs, fast_options);
  ASSERT_TRUE(fast.completed);

  ASSERT_EQ(exact.outcomes.size(), fast.outcomes.size());
  for (std::size_t i = 0; i < exact.outcomes.size(); ++i) {
    EXPECT_EQ(exact.outcomes[i].id, fast.outcomes[i].id) << "outcome " << i;
    EXPECT_EQ(exact.outcomes[i].start, fast.outcomes[i].start) << "outcome " << i;
    EXPECT_EQ(exact.outcomes[i].finish, fast.outcomes[i].finish) << "outcome " << i;
  }
  EXPECT_EQ(exact.outcome_nodes, fast.outcome_nodes);
  EXPECT_EQ(exact.end_time, fast.end_time);
  EXPECT_EQ(exact.total_reallocations, fast.total_reallocations);
  EXPECT_EQ(exact.alloc_integral_us, fast.alloc_integral_us);
  // The whole point: far fewer ticks fired.
  EXPECT_LT(CounterValue(fast.counters, "rm.ticks"),
            CounterValue(exact.counters, "rm.ticks") / 2);
}

// Capture sinks disengage the fast path: a boundary-batched run with
// event/time-series capture is byte-identical to the exact one, ticks
// included.
TEST(ClusterBoundaryBatchTest, CaptureSinksDisengageFastPath) {
  const std::vector<JobSpec> jobs = MakeJobs(12, 6, 500 * kMillisecond);
  ClusterOptions exact_options = BaseOptions(3, 8);
  const ClusterResult exact = RunCluster(jobs, exact_options);
  ClusterOptions fast_options = exact_options;
  fast_options.rm_params.boundary_batch = true;
  const ClusterResult fast = RunCluster(jobs, fast_options);
  ExpectIdenticalResults(exact, fast);
}

// A report-reactive policy (PDPA) must ignore boundary_batch entirely: its
// OnReport decisions need every boundary tick.
TEST(ClusterBoundaryBatchTest, ReactivePolicyIgnoresBoundaryBatch) {
  const std::vector<JobSpec> jobs = MakeJobs(8, 8, 600 * kMillisecond);
  ClusterOptions exact_options = BaseOptions(2, 8);
  exact_options.capture_events = false;
  exact_options.capture_timeseries = false;
  exact_options.make_policy = [] {
    return std::make_unique<PdpaPolicy>(PdpaParams{}, PdpaMlParams{});
  };
  const ClusterResult exact = RunCluster(jobs, exact_options);
  ClusterOptions fast_options = exact_options;
  fast_options.rm_params.boundary_batch = true;
  const ClusterResult fast = RunCluster(jobs, fast_options);
  ExpectSameBytes(exact.counters.ToString(), fast.counters.ToString(), "counters");
}

TEST(ClusterTest, PlacementPolicyNamesRoundTrip) {
  for (const PlacementPolicy placement :
       {PlacementPolicy::kRoundRobin, PlacementPolicy::kMostFreeCpus,
        PlacementPolicy::kLeastLoaded}) {
    PlacementPolicy parsed;
    ASSERT_TRUE(ParsePlacementPolicy(PlacementPolicyName(placement), &parsed));
    EXPECT_EQ(parsed, placement);
    ASSERT_TRUE(ParsePlacementPolicy(PlacementPolicyShortName(placement), &parsed));
    EXPECT_EQ(parsed, placement);
  }
  PlacementPolicy parsed = PlacementPolicy::kRoundRobin;
  EXPECT_FALSE(ParsePlacementPolicy("bogus", &parsed));
}

}  // namespace
}  // namespace pdpa
