// Unit tests for the PDPA search automaton and the coordinated
// multiprogramming-level rule (Sec. 4.2 / 4.3 of the paper).
#include "src/core/pdpa.h"

#include <gtest/gtest.h>

namespace pdpa {
namespace {

PdpaParams DefaultParams() {
  PdpaParams params;
  params.target_eff = 0.7;
  params.high_eff = 0.9;
  params.step = 4;
  return params;
}

TEST(PdpaAutomatonTest, StartsInNoRefWithMinOfRequestAndFree) {
  PdpaAutomaton automaton(DefaultParams(), 30);
  EXPECT_EQ(automaton.OnJobStart(60), 30);
  EXPECT_EQ(automaton.state(), PdpaState::kNoRef);

  PdpaAutomaton small(DefaultParams(), 30);
  EXPECT_EQ(small.OnJobStart(8), 8);
}

TEST(PdpaAutomatonTest, NoRefHighEfficiencyGoesInc) {
  PdpaAutomaton automaton(DefaultParams(), 30);
  automaton.OnJobStart(8);  // alloc = 8
  // Efficiency 0.95 > high_eff.
  const PdpaDecision decision = automaton.OnReport(/*speedup=*/7.6, /*procs=*/8, /*free=*/20);
  EXPECT_EQ(decision.next_state, PdpaState::kInc);
  EXPECT_EQ(decision.next_alloc, 12);  // +step
  EXPECT_TRUE(decision.changed);
}

TEST(PdpaAutomatonTest, NoRefLowEfficiencyGoesDec) {
  PdpaAutomaton automaton(DefaultParams(), 30);
  automaton.OnJobStart(30);
  // Efficiency 0.4 < target_eff.
  const PdpaDecision decision = automaton.OnReport(12.0, 30, 0);
  EXPECT_EQ(decision.next_state, PdpaState::kDec);
  EXPECT_EQ(decision.next_alloc, 26);
}

TEST(PdpaAutomatonTest, NoRefAcceptableEfficiencyGoesStable) {
  PdpaAutomaton automaton(DefaultParams(), 30);
  automaton.OnJobStart(30);
  // Efficiency 0.8 in [target, high].
  const PdpaDecision decision = automaton.OnReport(24.0, 30, 10);
  EXPECT_EQ(decision.next_state, PdpaState::kStable);
  EXPECT_EQ(decision.next_alloc, 30);
  EXPECT_FALSE(decision.changed);
}

TEST(PdpaAutomatonTest, IncGrowthLimitedByFreeProcessors) {
  PdpaAutomaton automaton(DefaultParams(), 30);
  automaton.OnJobStart(8);
  const PdpaDecision decision = automaton.OnReport(7.6, 8, /*free=*/2);
  EXPECT_EQ(decision.next_state, PdpaState::kInc);
  EXPECT_EQ(decision.next_alloc, 10);  // step clipped by free pool
}

TEST(PdpaAutomatonTest, RelativeSpeedupStopsSuperlinearGrowth) {
  // swim-like: superlinear up to 16, then flat relative speedup.
  PdpaAutomaton automaton(DefaultParams(), 30);
  automaton.OnJobStart(12);
  // eff(12) = 16.5/12 = 1.37 -> INC to 16.
  PdpaDecision d = automaton.OnReport(16.5, 12, 48);
  ASSERT_EQ(d.next_alloc, 16);
  // eff(16) = 23/16 = 1.44 > 0.9, speedup grew, relative speedup
  // 23/16.5 = 1.39 > 1 + (4/12)*0.9 = 1.30 -> keep growing to 20.
  d = automaton.OnReport(23.0, 16, 44);
  ASSERT_EQ(d.next_state, PdpaState::kInc);
  ASSERT_EQ(d.next_alloc, 20);
  // eff(20) = 25.5/20 = 1.27 > 0.9 and speedup grew, but relative speedup
  // 25.5/23 = 1.11 < 1 + (4/16)*0.9 = 1.225 -> STABLE; efficiency is still
  // above target so the processors gained are kept.
  d = automaton.OnReport(25.5, 20, 40);
  EXPECT_EQ(d.next_state, PdpaState::kStable);
  EXPECT_EQ(d.next_alloc, 20);
}

TEST(PdpaAutomatonTest, RelativeSpeedupAblationKeepsGrowing) {
  PdpaParams params = DefaultParams();
  params.use_relative_speedup = false;
  PdpaAutomaton automaton(params, 30);
  automaton.OnJobStart(12);
  automaton.OnReport(16.5, 12, 48);
  automaton.OnReport(23.0, 16, 44);
  // Without the RelativeSpeedup test the efficiency (1.27) and monotone
  // speedup checks still pass: PDPA overshoots to 24.
  const PdpaDecision d = automaton.OnReport(25.5, 20, 40);
  EXPECT_EQ(d.next_state, PdpaState::kInc);
  EXPECT_EQ(d.next_alloc, 24);
}

TEST(PdpaAutomatonTest, IncRollsBackWhenEfficiencyDropsBelowTarget) {
  PdpaAutomaton automaton(DefaultParams(), 30);
  automaton.OnJobStart(8);
  automaton.OnReport(7.6, 8, 40);  // INC -> 12
  // At 12 procs efficiency collapses to 0.55: go STABLE and lose the step.
  const PdpaDecision d = automaton.OnReport(6.6, 12, 36);
  EXPECT_EQ(d.next_state, PdpaState::kStable);
  EXPECT_EQ(d.next_alloc, 8);
}

TEST(PdpaAutomatonTest, IncKeepsProcessorsWhenEfficiencyAcceptable) {
  PdpaAutomaton automaton(DefaultParams(), 30);
  automaton.OnJobStart(8);
  automaton.OnReport(7.6, 8, 40);  // INC -> 12
  // eff = 0.8: acceptable, growth stops but the 12 procs stay.
  const PdpaDecision d = automaton.OnReport(9.6, 12, 36);
  EXPECT_EQ(d.next_state, PdpaState::kStable);
  EXPECT_EQ(d.next_alloc, 12);
}

TEST(PdpaAutomatonTest, DecShrinksUntilTargetReached) {
  PdpaAutomaton automaton(DefaultParams(), 30);
  automaton.OnJobStart(30);
  PdpaDecision d = automaton.OnReport(9.0, 30, 0);  // eff 0.3 -> DEC 26
  ASSERT_EQ(d.next_alloc, 26);
  d = automaton.OnReport(8.8, 26, 0);  // eff 0.34 -> DEC 22
  ASSERT_EQ(d.next_alloc, 22);
  d = automaton.OnReport(16.0, 22, 0);  // eff 0.73 -> STABLE, keep 22
  EXPECT_EQ(d.next_state, PdpaState::kStable);
  EXPECT_EQ(d.next_alloc, 22);
}

TEST(PdpaAutomatonTest, DecNeverGoesBelowOneProcessor) {
  PdpaAutomaton automaton(DefaultParams(), 2);
  automaton.OnJobStart(2);
  PdpaDecision d = automaton.OnReport(1.2, 2, 10);  // eff 0.6 -> DEC
  EXPECT_EQ(d.next_alloc, 1);
  d = automaton.OnReport(1.0, 1, 10);  // eff 1.0 at 1 proc... stable
  EXPECT_EQ(d.next_state, PdpaState::kStable);
  EXPECT_EQ(d.next_alloc, 1);
}

TEST(PdpaAutomatonTest, BadPerformanceFlagAtFloor) {
  PdpaParams params = DefaultParams();
  PdpaAutomaton automaton(params, 4);
  automaton.OnJobStart(4);
  automaton.OnReport(1.2, 4, 0);  // eff 0.3 -> DEC 1
  ASSERT_EQ(automaton.current_alloc(), 1);
  // Still below target at 1 CPU (speedup 0.5 means slowdown): stuck.
  automaton.OnReport(0.5, 1, 0);
  EXPECT_TRUE(automaton.BadPerformance());
  EXPECT_TRUE(automaton.Settled());
}

TEST(PdpaAutomatonTest, StableReactsToPerformanceDrop) {
  PdpaAutomaton automaton(DefaultParams(), 30);
  automaton.OnJobStart(20);
  automaton.OnReport(15.0, 20, 0);  // eff 0.75 -> STABLE
  ASSERT_EQ(automaton.state(), PdpaState::kStable);
  // Input set grew; efficiency collapsed.
  const PdpaDecision d = automaton.OnReport(10.0, 20, 0);
  EXPECT_EQ(d.next_state, PdpaState::kDec);
  EXPECT_EQ(d.next_alloc, 16);
}

TEST(PdpaAutomatonTest, StableExitLimitPreventsPingPong) {
  PdpaParams params = DefaultParams();
  params.max_stable_exits = 1;
  PdpaAutomaton automaton(params, 30);
  automaton.OnJobStart(20);
  automaton.OnReport(15.0, 20, 0);          // STABLE
  automaton.OnReport(10.0, 20, 0);          // exit 1: DEC 16
  automaton.OnReport(12.8, 16, 0);          // eff 0.8 -> STABLE
  const PdpaDecision d = automaton.OnReport(9.0, 16, 0);  // eff 0.56, but limit hit
  EXPECT_EQ(d.next_state, PdpaState::kStable);
  EXPECT_EQ(d.next_alloc, 16);
}

TEST(PdpaAutomatonTest, ReportAtStaleAllocationIsIgnored) {
  PdpaAutomaton automaton(DefaultParams(), 30);
  automaton.OnJobStart(8);
  automaton.OnReport(7.6, 8, 40);  // INC -> 12
  // A late report measured at 8 procs must not trigger a transition.
  const PdpaDecision d = automaton.OnReport(7.6, 8, 40);
  EXPECT_FALSE(d.changed);
  EXPECT_EQ(automaton.current_alloc(), 12);
}

TEST(PdpaAutomatonTest, OnFreeCapacityResumesSearchOnlyWhenVeryEfficient) {
  PdpaAutomaton automaton(DefaultParams(), 30);
  automaton.OnJobStart(8);
  automaton.OnReport(7.6, 8, 0);  // eff 0.95 but no free procs -> STABLE
  ASSERT_EQ(automaton.state(), PdpaState::kStable);
  // A job finished; 10 processors free up: resume the climb.
  const PdpaDecision d = automaton.OnFreeCapacity(10);
  EXPECT_EQ(d.next_state, PdpaState::kInc);
  EXPECT_EQ(d.next_alloc, 12);

  // An application that was merely acceptable does not move.
  PdpaAutomaton meh(DefaultParams(), 30);
  meh.OnJobStart(20);
  meh.OnReport(15.0, 20, 0);  // eff 0.75 -> STABLE
  EXPECT_FALSE(meh.OnFreeCapacity(10).changed);
}

TEST(PdpaMlPolicyTest, AdmitsWithinDefaultMl) {
  PdpaMlParams params;
  params.default_ml = 4;
  EXPECT_TRUE(PdpaShouldAdmit(params, 10, 0, {}));
  EXPECT_TRUE(PdpaShouldAdmit(params, 10, 3,
                              {{false, false}, {false, false}, {false, false}}));
}

TEST(PdpaMlPolicyTest, BeyondDefaultNeedsFreeAndSettled) {
  PdpaMlParams params;
  params.default_ml = 4;
  std::vector<PdpaAppStatus> unsettled = {
      {true, false}, {true, false}, {false, false}, {true, false}};
  EXPECT_FALSE(PdpaShouldAdmit(params, 10, 4, unsettled));
  std::vector<PdpaAppStatus> settled = {
      {true, false}, {true, false}, {true, false}, {true, false}};
  EXPECT_TRUE(PdpaShouldAdmit(params, 10, 4, settled));
  EXPECT_FALSE(PdpaShouldAdmit(params, 0, 4, settled));
}

TEST(PdpaMlPolicyTest, UncoordinatedEnforcesFixedMl) {
  PdpaMlParams params;
  params.default_ml = 4;
  params.coordinated = false;
  std::vector<PdpaAppStatus> settled = {
      {true, false}, {true, false}, {true, false}, {true, false}};
  EXPECT_TRUE(PdpaShouldAdmit(params, 10, 3, settled));
  // Even with everything settled and plenty of free CPUs: ML stays fixed.
  EXPECT_FALSE(PdpaShouldAdmit(params, 10, 4, settled));
}

TEST(PdpaAutomatonTest, SetTargetEffChangesDecisionAtRuntime) {
  PdpaAutomaton automaton(DefaultParams(), 30);
  automaton.OnJobStart(20);
  automaton.OnReport(15.0, 20, 0);  // eff 0.75 -> STABLE at target 0.7
  ASSERT_EQ(automaton.state(), PdpaState::kStable);
  // The administrator (or the dynamic-target mode) tightens the target:
  // 0.75 is no longer acceptable.
  automaton.SetTargetEff(0.8);
  const PdpaDecision d = automaton.OnReport(15.0, 20, 0);
  EXPECT_EQ(d.next_state, PdpaState::kDec);
  EXPECT_EQ(d.next_alloc, 16);
}

TEST(PdpaMlPolicyTest, BadPerformanceOverridesUnsettled) {
  PdpaMlParams params;
  params.default_ml = 4;
  std::vector<PdpaAppStatus> statuses = {
      {true, false}, {false, false}, {true, true}, {true, false}};
  EXPECT_TRUE(PdpaShouldAdmit(params, 5, 4, statuses));
}

// Property sweep: for any parameterization, allocations stay within
// [1, request] and grows/shrinks are bounded by step and the free pool.
struct SweepParam {
  double target_eff;
  double high_eff;
  int step;
  int request;
};

class PdpaSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(PdpaSweepTest, AllocationsAlwaysWithinBounds) {
  const SweepParam& sweep = GetParam();
  PdpaParams params;
  params.target_eff = sweep.target_eff;
  params.high_eff = sweep.high_eff;
  params.step = sweep.step;
  PdpaAutomaton automaton(params, sweep.request);
  int alloc = automaton.OnJobStart(60);
  EXPECT_GE(alloc, 1);
  EXPECT_LE(alloc, sweep.request);
  // Deterministic pseudo-random speedups exercise every state.
  unsigned seed = 12345;
  for (int i = 0; i < 200; ++i) {
    seed = seed * 1664525u + 1013904223u;
    const double eff = static_cast<double>(seed % 1000) / 800.0;  // 0 .. 1.25
    const int free = static_cast<int>((seed >> 10) % 20);
    const int before = automaton.current_alloc();
    const PdpaDecision d = automaton.OnReport(eff * before, before, free);
    EXPECT_GE(d.next_alloc, 1);
    EXPECT_LE(d.next_alloc, sweep.request);
    EXPECT_LE(d.next_alloc - before, std::min(params.step, free));
    EXPECT_LE(before - d.next_alloc, params.step);
    alloc = d.next_alloc;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ParamSweep, PdpaSweepTest,
    ::testing::Values(SweepParam{0.5, 0.7, 2, 8}, SweepParam{0.7, 0.9, 4, 30},
                      SweepParam{0.7, 0.9, 1, 4}, SweepParam{0.6, 0.95, 8, 60},
                      SweepParam{0.9, 0.9, 4, 30}, SweepParam{0.3, 0.5, 3, 15}));

}  // namespace
}  // namespace pdpa
