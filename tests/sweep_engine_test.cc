// Tests for the parallel sweep engine: grid expansion, serial/parallel
// golden determinism, per-cell observability isolation, and concurrent
// RunExperiment safety (run under TSan in CI via the "concurrency" label).
#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "src/obs/counters.h"
#include "src/workload/sweep.h"

namespace pdpa {
namespace {

SweepGrid SmallGrid() {
  SweepGrid grid;
  grid.workloads = {WorkloadId::kW1};
  grid.loads = {0.6};
  grid.policies = {PolicyKind::kPdpa, PolicyKind::kEquipartition};
  grid.seeds = {42, 43};
  return grid;
}

TEST(ExpandGridTest, NestedOrderSeedInnermost) {
  SweepGrid grid;
  grid.workloads = {WorkloadId::kW1, WorkloadId::kW2};
  grid.loads = {0.6, 1.0};
  grid.policies = {PolicyKind::kPdpa};
  grid.seeds = {1, 2};
  const std::vector<SweepCell> cells = ExpandGrid(grid);
  ASSERT_EQ(cells.size(), 8u);
  EXPECT_EQ(cells[0].name, "w1_0.60_PDPA_s1");
  EXPECT_EQ(cells[1].name, "w1_0.60_PDPA_s2");
  EXPECT_EQ(cells[2].name, "w1_1.00_PDPA_s1");
  EXPECT_EQ(cells[4].name, "w2_0.60_PDPA_s1");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].index, i);
    EXPECT_EQ(cells[i].config.seed, cells[i].seed);
  }
}

TEST(ExpandGridTest, SingleSeedOmitsSuffix) {
  SweepGrid grid;
  grid.workloads = {WorkloadId::kW3};
  grid.loads = {1.0};
  grid.policies = {PolicyKind::kIrix};
  grid.seeds = {7};
  const std::vector<SweepCell> cells = ExpandGrid(grid);
  ASSERT_EQ(cells.size(), 1u);
  // Legacy filename shape, so existing --events_out consumers keep working.
  EXPECT_EQ(cells[0].name, "w3_1.00_IRIX");
}

// A parallel sweep must be indistinguishable from a serial one: same CSV
// bytes, same per-cell event logs.
TEST(SweepEngineTest, ParallelMatchesSerialByteForByte) {
  const SweepGrid grid = SmallGrid();
  SweepOptions serial;
  serial.jobs = 1;
  serial.capture_events = true;
  serial.capture_counters = true;
  SweepOptions parallel = serial;
  parallel.jobs = 8;

  const std::vector<SweepCellResult> a = RunSweep(grid, serial);
  const std::vector<SweepCellResult> b = RunSweep(grid, parallel);
  ASSERT_EQ(a.size(), b.size());

  std::ostringstream csv_a, csv_b;
  SweepCsv(a, grid.seeds.size(), csv_a);
  SweepCsv(b, grid.seeds.size(), csv_b);
  EXPECT_EQ(csv_a.str(), csv_b.str());

  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].cell.name, b[i].cell.name);
    EXPECT_FALSE(a[i].events_jsonl.empty());
    EXPECT_EQ(a[i].events_jsonl, b[i].events_jsonl) << a[i].cell.name;
    EXPECT_EQ(a[i].counters.ToString(), b[i].counters.ToString()) << a[i].cell.name;
  }
}

// A cluster grid (nodes > 1) adds the placements axis between policy and
// seed, suffixes cell names with the short placement name, and overrides
// num_cpus with the cluster's total capacity.
TEST(ExpandGridTest, ClusterGridAddsPlacementAxis) {
  SweepGrid grid;
  grid.workloads = {WorkloadId::kW1};
  grid.loads = {0.6};
  grid.policies = {PolicyKind::kPdpa};
  grid.placements = {PlacementPolicy::kRoundRobin, PlacementPolicy::kMostFreeCpus};
  grid.seeds = {1, 2};
  grid.nodes = 3;
  grid.cpus_per_node = 20;
  const std::vector<SweepCell> cells = ExpandGrid(grid);
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_EQ(cells[0].name, "w1_0.60_PDPA_rr_s1");
  EXPECT_EQ(cells[1].name, "w1_0.60_PDPA_rr_s2");
  EXPECT_EQ(cells[2].name, "w1_0.60_PDPA_mf_s1");
  EXPECT_EQ(cells[3].name, "w1_0.60_PDPA_mf_s2");
  for (const SweepCell& cell : cells) {
    EXPECT_EQ(cell.nodes, 3);
    EXPECT_EQ(cell.config.num_cpus, 60);
  }
  // Single-SMP grids ignore the placements axis entirely.
  grid.nodes = 1;
  EXPECT_EQ(ExpandGrid(grid).size(), 2u);
}

// Cluster cells run through the sharded engine: the whole sweep must stay
// byte-identical across worker counts AND across engine shard counts, and
// the policy column must carry the placement suffix.
TEST(SweepEngineTest, ClusterSweepMatchesAcrossWorkersAndShards) {
  SweepGrid grid;
  grid.workloads = {WorkloadId::kW1};
  grid.loads = {0.6};
  grid.policies = {PolicyKind::kPdpa};
  grid.placements = {PlacementPolicy::kRoundRobin, PlacementPolicy::kLeastLoaded};
  grid.seeds = {42};
  grid.nodes = 3;
  grid.cpus_per_node = 20;
  SweepOptions serial;
  serial.jobs = 1;
  serial.capture_events = true;
  serial.capture_counters = true;
  SweepOptions parallel = serial;
  parallel.jobs = 4;

  const std::vector<SweepCellResult> a = RunSweep(grid, serial);
  grid.cluster_shards = 2;  // sharded engine, parallel sweep workers
  const std::vector<SweepCellResult> b = RunSweep(grid, parallel);
  ASSERT_EQ(a.size(), b.size());

  std::ostringstream csv_a, csv_b;
  SweepCsv(a, grid.seeds.size(), csv_a);
  SweepCsv(b, grid.seeds.size(), csv_b);
  EXPECT_EQ(csv_a.str(), csv_b.str());
  EXPECT_NE(csv_a.str().find("PDPA@rr"), std::string::npos);
  EXPECT_NE(csv_a.str().find("PDPA@ll"), std::string::npos);

  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].cell.name, b[i].cell.name);
    EXPECT_FALSE(a[i].events_jsonl.empty());
    EXPECT_EQ(a[i].events_jsonl, b[i].events_jsonl) << a[i].cell.name;
    EXPECT_EQ(a[i].counters.ToString(), b[i].counters.ToString()) << a[i].cell.name;
  }
}

// The progress callback fires exactly once per cell, serialized under the
// engine's progress mutex: `done` must pass through 1..total with no
// duplicate or skipped cell index, in both serial and parallel mode.
TEST(SweepEngineTest, ProgressCallbackFiresOncePerCell) {
  const SweepGrid grid = SmallGrid();
  for (int jobs : {1, 4}) {
    SweepOptions options;
    options.jobs = jobs;
    std::vector<std::size_t> done_values;
    std::vector<int> cell_counts(ExpandGrid(grid).size(), 0);
    options.on_progress = [&done_values, &cell_counts](const SweepProgress& progress) {
      // Serialized by contract: no locking needed here.
      done_values.push_back(progress.done);
      ASSERT_LT(progress.cell_index, cell_counts.size());
      ++cell_counts[progress.cell_index];
      EXPECT_EQ(progress.total, cell_counts.size());
    };
    const std::vector<SweepCellResult> results = RunSweep(grid, options);
    ASSERT_EQ(done_values.size(), results.size()) << "jobs=" << jobs;
    for (int count : cell_counts) {
      EXPECT_EQ(count, 1) << "jobs=" << jobs;
    }
    // `done` is incremented under the same lock that delivers the callback,
    // so the observed sequence is exactly 1..total.
    for (std::size_t i = 0; i < done_values.size(); ++i) {
      EXPECT_EQ(done_values[i], i + 1) << "jobs=" << jobs;
    }
  }
}

// Regression for the old --counters behavior, which dumped one cumulative
// Registry::Default() snapshot for the whole grid: every sweep cell must
// report exactly the counters of an isolated single run.
TEST(SweepEngineTest, PerCellCountersMatchIsolatedRuns) {
  const SweepGrid grid = SmallGrid();
  SweepOptions options;
  options.jobs = 4;
  options.capture_counters = true;
  const std::vector<SweepCellResult> results = RunSweep(grid, options);
  ASSERT_EQ(results.size(), 4u);
  for (const SweepCellResult& r : results) {
    Registry registry;
    ExperimentConfig config = r.cell.config;
    config.registry = &registry;
    RunExperiment(config);
    EXPECT_EQ(r.counters.ToString(), registry.Snapshot().ToString()) << r.cell.name;
    // And the cells genuinely differ from each other (not one shared dump).
    EXPECT_FALSE(r.counters.counters.empty());
  }
  EXPECT_NE(results[0].counters.ToString(), results[2].counters.ToString());
}

// Two RunExperiment calls racing on separate registries — the exact pattern
// the worker pool relies on. Run under TSan this is the data-race oracle.
TEST(SweepEngineTest, ConcurrentRunsWithSeparateRegistriesMatchSerial) {
  ExperimentConfig base;
  base.workload = WorkloadId::kW1;
  base.load = 0.6;
  ExperimentConfig config_a = base;
  config_a.policy = PolicyKind::kPdpa;
  config_a.seed = 42;
  ExperimentConfig config_b = base;
  config_b.policy = PolicyKind::kEquipartition;
  config_b.seed = 43;

  ExperimentResult concurrent_a, concurrent_b;
  std::string counters_a, counters_b;
  std::thread thread_a([&] {
    Registry registry;
    ExperimentConfig config = config_a;
    config.registry = &registry;
    concurrent_a = RunExperiment(config);
    counters_a = registry.Snapshot().ToString();
  });
  std::thread thread_b([&] {
    Registry registry;
    ExperimentConfig config = config_b;
    config.registry = &registry;
    concurrent_b = RunExperiment(config);
    counters_b = registry.Snapshot().ToString();
  });
  thread_a.join();
  thread_b.join();

  Registry registry_a;
  config_a.registry = &registry_a;
  const ExperimentResult serial_a = RunExperiment(config_a);
  Registry registry_b;
  config_b.registry = &registry_b;
  const ExperimentResult serial_b = RunExperiment(config_b);

  EXPECT_EQ(concurrent_a.metrics.makespan_s, serial_a.metrics.makespan_s);
  EXPECT_EQ(concurrent_b.metrics.makespan_s, serial_b.metrics.makespan_s);
  EXPECT_EQ(concurrent_a.reallocations, serial_a.reallocations);
  EXPECT_EQ(concurrent_b.reallocations, serial_b.reallocations);
  EXPECT_EQ(counters_a, registry_a.Snapshot().ToString());
  EXPECT_EQ(counters_b, registry_b.Snapshot().ToString());
}

TEST(AggregateSeedsTest, MeanAndPercentilesAcrossReplicas) {
  std::vector<SweepCellResult> results(3);
  for (int i = 0; i < 3; ++i) {
    ClassMetrics m;
    m.count = 10;
    m.avg_response_s = 1.0 + i;  // 1, 2, 3
    results[i].result.metrics.per_class[AppClass::kSwim] = m;
    results[i].result.metrics.makespan_s = 100.0 * (i + 1);
    results[i].result.max_ml = 4;
    results[i].result.reallocations = 8;
    results[i].result.completed = true;
  }
  const CellAggregate agg = AggregateSeeds(results, 0, 3);
  EXPECT_EQ(agg.replicas, 3);
  EXPECT_TRUE(agg.all_completed);
  const ClassAggregate& swim = agg.per_class.at(AppClass::kSwim);
  EXPECT_EQ(swim.replicas, 3);
  EXPECT_DOUBLE_EQ(swim.avg_response_s.mean, 2.0);
  EXPECT_DOUBLE_EQ(swim.avg_response_s.p50, 2.0);
  EXPECT_NEAR(swim.avg_response_s.p95, 2.9, 1e-9);
  EXPECT_DOUBLE_EQ(swim.count.mean, 10.0);
  EXPECT_DOUBLE_EQ(agg.makespan_s.mean, 200.0);
  EXPECT_DOUBLE_EQ(agg.max_ml.p50, 4.0);
  EXPECT_DOUBLE_EQ(agg.reallocations.mean, 8.0);
}

TEST(AggregateSeedsTest, IncompleteReplicaClearsAllCompleted) {
  std::vector<SweepCellResult> results(2);
  results[0].result.completed = true;
  results[1].result.completed = false;
  EXPECT_FALSE(AggregateSeeds(results, 0, 2).all_completed);
}

}  // namespace
}  // namespace pdpa
