// Observability self-profiler / trace-export / slowdown-histogram tests
// (DESIGN.md §11).
//
// Pins the four contracts the profiling layer is built on:
//   1. profiler-off byte-identity: enabling capture_prof must not change a
//      single byte of the events / time-series / sweep-CSV outputs, and the
//      default SweepCsv stays byte-identical to the retained legacy writer;
//   2. trace-export validity: every record the TraceEventWriter emits is a
//      flat JSON object (plus the single nested "args" object the format
//      allows), round-trippable through ParseFlatJson, with the fields
//      Perfetto requires per phase;
//   3. LogHistogram determinism: exact associative/commutative merges and
//      hard golden percentile values (the 2^(j/8) bucket-bound constants);
//   4. serial == parallel profiles: per-cell span hit counts are a function
//      of the simulated schedule, not of host threading.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/obs/event_log.h"
#include "src/obs/prof.h"
#include "src/obs/slowdown.h"
#include "src/obs/trace_export.h"
#include "src/rm/equipartition.h"
#include "src/workload/experiment.h"
#include "src/workload/sweep.h"

namespace pdpa {
namespace {

SweepGrid SmallGrid() {
  SweepGrid grid;
  grid.workloads = {WorkloadId::kW1};
  grid.loads = {0.6, 1.0};
  grid.policies = {PolicyKind::kEquipartition, PolicyKind::kPdpa};
  grid.seeds = {42, 43};
  return grid;
}

std::string CsvOf(const std::vector<SweepCellResult>& results, std::size_t seeds,
                  bool slowdown_columns = false) {
  std::ostringstream out;
  SweepCsv(results, seeds, out, slowdown_columns);
  return out.str();
}

// ------------------------------------------------- profiler-off identity

TEST(ProfilerIdentityTest, CaptureProfDoesNotChangeAnyOutputByte) {
  const SweepGrid grid = SmallGrid();
  SweepOptions off;
  off.jobs = 1;
  off.capture_events = true;
  off.capture_timeseries = true;
  SweepOptions on = off;
  on.capture_prof = true;

  const std::vector<SweepCellResult> base = RunSweep(grid, off);
  const std::vector<SweepCellResult> profiled = RunSweep(grid, on);
  ASSERT_EQ(base.size(), profiled.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    ASSERT_FALSE(base[i].events_jsonl.empty());
    EXPECT_EQ(base[i].events_jsonl, profiled[i].events_jsonl) << "cell " << i;
    EXPECT_EQ(base[i].timeseries_csv, profiled[i].timeseries_csv) << "cell " << i;
    // The profiled run actually profiled; the unprofiled one stayed empty.
    EXPECT_EQ(base[i].profile.TotalHits(), 0) << "cell " << i;
    EXPECT_GT(profiled[i].profile.TotalHits(), 0) << "cell " << i;
  }
  EXPECT_EQ(CsvOf(base, grid.seeds.size()), CsvOf(profiled, grid.seeds.size()));
}

TEST(ProfilerIdentityTest, DefaultSweepCsvStillMatchesLegacyWriter) {
  const SweepGrid grid = SmallGrid();
  SweepOptions options;
  options.jobs = 1;
  options.capture_prof = true;  // on, to prove it does not leak into the CSV
  const std::vector<SweepCellResult> results = RunSweep(grid, options);

  std::ostringstream fast, legacy;
  SweepCsv(results, grid.seeds.size(), fast);
  internal::SweepCsvLegacy(results, grid.seeds.size(), legacy);
  ASSERT_FALSE(fast.str().empty());
  EXPECT_EQ(fast.str(), legacy.str());
}

TEST(ProfilerIdentityTest, SlowdownColumnsExtendEveryRowByExactlyThreeCells) {
  const SweepGrid grid = SmallGrid();
  SweepOptions options;
  options.jobs = 1;
  const std::vector<SweepCellResult> results = RunSweep(grid, options);

  std::istringstream plain(CsvOf(results, grid.seeds.size(), false));
  std::istringstream extended(CsvOf(results, grid.seeds.size(), true));
  std::string plain_line, extended_line;
  bool saw_header = false;
  while (std::getline(plain, plain_line)) {
    ASSERT_TRUE(std::getline(extended, extended_line));
    // Every extended row is the plain row plus three appended cells.
    EXPECT_EQ(extended_line.substr(0, plain_line.size()), plain_line);
    const std::string tail = extended_line.substr(plain_line.size());
    if (!saw_header) {
      EXPECT_EQ(tail, ",slowdown_p50,slowdown_p95,slowdown_p99");
      saw_header = true;
    } else {
      int commas = 0;
      for (const char c : tail) {
        commas += c == ',' ? 1 : 0;
      }
      EXPECT_EQ(commas, 3) << "row tail: " << tail;
    }
  }
  EXPECT_FALSE(std::getline(extended, extended_line));
  EXPECT_TRUE(saw_header);
}

// ------------------------------------------------- trace-export validity

// Splits one trace record into its outer flat object and (optionally) the
// nested "args" object, and parses both with ParseFlatJson. The trace
// format guarantees "args", when present, is the last field and itself flat.
void ParseRecord(const std::string& record, std::map<std::string, std::string>* outer,
                 std::map<std::string, std::string>* args, bool* has_args) {
  const std::string args_key = ",\"args\":{";
  const std::size_t args_at = record.find(args_key);
  *has_args = args_at != std::string::npos;
  if (!*has_args) {
    ASSERT_TRUE(ParseFlatJson(record, outer)) << record;
    return;
  }
  const std::size_t args_open = args_at + args_key.size() - 1;
  const std::size_t args_close = record.find('}', args_open);
  ASSERT_NE(args_close, std::string::npos) << record;
  ASSERT_EQ(record.substr(args_close), "}}") << record;
  const std::string outer_text = record.substr(0, args_at) + "}";
  const std::string args_text = record.substr(args_open, args_close - args_open + 1);
  ASSERT_TRUE(ParseFlatJson(outer_text, outer)) << record;
  ASSERT_TRUE(ParseFlatJson(args_text, args)) << record;
}

TEST(TraceExportTest, EveryRecordOfALiveExportRoundTripsThroughParseFlatJson) {
  ExperimentConfig config;
  config.workload = WorkloadId::kW1;
  config.load = 1.0;
  config.policy = PolicyKind::kPdpa;
  std::ostringstream events_stream;
  EventLog events(&events_stream);
  config.event_log = &events;
  (void)RunExperiment(config);
  events.Flush();

  std::ostringstream trace_stream;
  TraceEventWriter writer(&trace_stream);
  const long long bad = ExportSimTrace(events_stream.str(), 1, "w1_1.00_PDPA", &writer);
  writer.Finish();
  EXPECT_EQ(bad, 0);
  EXPECT_GT(writer.events_written(), 0);

  const std::string trace = trace_stream.str();
  std::istringstream lines(trace);
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");

  long long records = 0;
  std::map<std::string, long long> by_phase;
  while (std::getline(lines, line)) {
    if (line == "]}") {
      break;
    }
    if (!line.empty() && line.back() == ',') {
      line.pop_back();
    }
    std::map<std::string, std::string> outer, args;
    bool has_args = false;
    ASSERT_NO_FATAL_FAILURE(ParseRecord(line, &outer, &args, &has_args));
    const std::string ph = outer["ph"];
    ASSERT_FALSE(ph.empty()) << line;
    ++by_phase[ph];
    ++records;
    EXPECT_TRUE(outer.contains("pid")) << line;
    if (ph == "M") {
      EXPECT_TRUE(has_args) << line;
      EXPECT_TRUE(args.contains("name")) << line;
    } else {
      EXPECT_TRUE(outer.contains("ts")) << line;
    }
    if (ph == "b" || ph == "n" || ph == "e") {
      EXPECT_TRUE(outer.contains("cat")) << line;
      EXPECT_TRUE(outer.contains("id")) << line;
    }
    if (ph == "X") {
      EXPECT_TRUE(outer.contains("dur")) << line;
    }
    if (ph == "C") {
      EXPECT_TRUE(has_args) << line;
      EXPECT_FALSE(args.empty()) << line;
    }
    if (ph == "i") {
      EXPECT_EQ(outer["s"], "t") << line;
    }
  }
  EXPECT_EQ(records, writer.events_written());
  // A W1 PDPA run exercises every simulation-side phase.
  EXPECT_GE(by_phase["M"], 1);
  EXPECT_GT(by_phase["b"], 0);   // job submits
  EXPECT_GT(by_phase["n"], 0);   // starts / transitions
  EXPECT_GT(by_phase["e"], 0);   // job finishes
  EXPECT_GT(by_phase["C"], 0);   // allocation counters
  // Async begins and ends pair up: W1 drains, so every job finishes.
  EXPECT_EQ(by_phase["b"], by_phase["e"]);
}

TEST(TraceExportTest, MalformedLinesAreCountedNotExported) {
  std::ostringstream trace_stream;
  TraceEventWriter writer(&trace_stream);
  const std::string jsonl =
      "{\"type\":\"run_start\",\"t_us\":0,\"cpus\":4}\n"
      "this is not json\n"
      "{\"type\":\"job_submit\",\"t_us\":5,\"job\":1,\"class\":\"A\",\"request\":2}\n"
      "{broken\n";
  const long long bad = ExportSimTrace(jsonl, 7, "p", &writer);
  writer.Finish();
  EXPECT_EQ(bad, 2);
  EXPECT_GT(writer.events_written(), 0);
}

// ---------------------------------------------------------- histogram

TEST(LogHistogramTest, PercentileGoldens) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.Percentile(50), 0.0);

  h.Observe(1.0);
  EXPECT_EQ(h.count(), 1);
  // 1.0 lands in the first sub-bucket of the [1, 2) octave; the reported
  // percentile is that bucket's upper bound, 2^(1/8) exactly.
  EXPECT_EQ(h.Percentile(0), 1.0905077326652577);
  EXPECT_EQ(h.Percentile(50), 1.0905077326652577);
  EXPECT_EQ(h.Percentile(100), 1.0905077326652577);

  LogHistogram extremes;
  extremes.Observe(1e-9);  // underflow bucket: saturates to 2^-4
  EXPECT_EQ(extremes.Percentile(50), 0.0625);
  extremes.Observe(1e9);  // overflow bucket: saturates to 2^20
  EXPECT_EQ(extremes.Percentile(100), 1048576.0);
}

TEST(LogHistogramTest, NearestRankPicksTheRightBucket) {
  LogHistogram h;
  for (int i = 0; i < 90; ++i) {
    h.Observe(1.0);
  }
  for (int i = 0; i < 10; ++i) {
    h.Observe(16.0);
  }
  // 16.0: frexp mantissa 0.5, exponent 5 -> first sub-bucket of [16, 32).
  const double tail = 16.0 * 1.0905077326652577;
  EXPECT_EQ(h.Percentile(50), 1.0905077326652577);
  EXPECT_EQ(h.Percentile(90), 1.0905077326652577);
  EXPECT_EQ(h.Percentile(91), tail);
  EXPECT_EQ(h.Percentile(99), tail);
}

TEST(LogHistogramTest, MergeIsExactAssociativeAndCommutative) {
  // Three histograms over a deterministic spread of values.
  LogHistogram a, b, c;
  for (int i = 1; i <= 400; ++i) {
    a.Observe(1.0 + 0.013 * i);
    b.Observe(1.0 + 0.107 * i);
    c.Observe(0.5 + 3.1 * i);
  }

  LogHistogram left = a;  // (a + b) + c
  left.Merge(b);
  left.Merge(c);
  LogHistogram right = b;  // a + (b + c)
  right.Merge(c);
  LogHistogram ab = a;
  ab.Merge(right);  // commutes: a + (b + c)

  EXPECT_EQ(left.count(), 1200);
  EXPECT_EQ(ab.count(), 1200);
  EXPECT_EQ(left.buckets(), ab.buckets());
  for (const double p : {0.0, 10.0, 50.0, 90.0, 95.0, 99.0, 100.0}) {
    EXPECT_EQ(left.Percentile(p), ab.Percentile(p)) << "p" << p;
  }
}

TEST(LogHistogramTest, SweepAggregateSlowdownIsMergeOfReplicas) {
  const SweepGrid grid = SmallGrid();
  SweepOptions options;
  options.jobs = 1;
  const std::vector<SweepCellResult> results = RunSweep(grid, options);
  const std::size_t seeds = grid.seeds.size();
  ASSERT_EQ(results.size() % seeds, 0u);

  for (std::size_t group = 0; group < results.size() / seeds; ++group) {
    const CellAggregate agg = AggregateSeeds(results, group * seeds, seeds);
    for (const auto& [app_class, class_agg] : agg.per_class) {
      LogHistogram manual;
      for (std::size_t s = 0; s < seeds; ++s) {
        const auto it = results[group * seeds + s].result.slowdown.find(app_class);
        if (it != results[group * seeds + s].result.slowdown.end()) {
          manual.Merge(it->second);
        }
      }
      EXPECT_GT(manual.count(), 0);
      EXPECT_EQ(manual.buckets(), class_agg.slowdown.buckets());
    }
  }
}

// --------------------------------------------- serial == parallel hits

TEST(ProfilerDeterminismTest, PerCellHitCountsAreIdenticalSerialVsParallel) {
  const SweepGrid grid = SmallGrid();
  SweepOptions serial;
  serial.jobs = 1;
  serial.capture_prof = true;
  SweepOptions parallel = serial;
  parallel.jobs = 4;

  const std::vector<SweepCellResult> s = RunSweep(grid, serial);
  const std::vector<SweepCellResult> p = RunSweep(grid, parallel);
  ASSERT_EQ(s.size(), p.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    for (int span = 0; span < kNumSpanIds; ++span) {
      const SpanId id = static_cast<SpanId>(span);
      EXPECT_EQ(s[i].profile.stats(id).hits, p[i].profile.stats(id).hits)
          << "cell " << i << " span " << SpanName(id);
    }
  }
  const Profiler merged_serial = MergeProfiles(s);
  const Profiler merged_parallel = MergeProfiles(p);
  EXPECT_GT(merged_serial.TotalHits(), 0);
  EXPECT_EQ(merged_serial.TotalHits(), merged_parallel.TotalHits());
}

// Cluster controller spans. All hit counts are functions of the simulated
// schedule: repeated serial runs agree on every span, and drain/place stay
// invariant under sharding (one hit per drained timestamp / per placement).
// barrier_wait counts controller wake cycles, which depend on thread timing
// once workers exist — it is deliberately pinned serial-only.
TEST(ProfilerDeterminismTest, ClusterSpanHitsAreDeterministic) {
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 12; ++i) {
    JobSpec spec;
    spec.id = i;
    spec.app_class = static_cast<AppClass>(i % kNumAppClasses);
    spec.submit = i * 500 * kMillisecond;
    spec.request = 6;
    jobs.push_back(spec);
  }
  ClusterOptions options;
  options.num_nodes = 4;
  options.cpus_per_node = 8;
  options.make_policy = [] { return std::make_unique<Equipartition>(4); };
  options.rm_params.analyzer.noise_sigma = 0.0;

  const auto hits = [&](int shards) {
    Profiler profiler;
    options.shards = shards;
    options.profiler = &profiler;
    const ClusterResult result = RunCluster(jobs, options);
    EXPECT_TRUE(result.completed);
    return profiler;
  };
  const Profiler serial_a = hits(1);
  const Profiler serial_b = hits(1);
  for (int span = 0; span < kNumSpanIds; ++span) {
    const SpanId id = static_cast<SpanId>(span);
    EXPECT_EQ(serial_a.stats(id).hits, serial_b.stats(id).hits) << SpanName(id);
  }
  EXPECT_GT(serial_a.stats(SpanId::kClusterBarrierWait).hits, 0);
  EXPECT_GT(serial_a.stats(SpanId::kClusterDrain).hits, 0);
  EXPECT_GT(serial_a.stats(SpanId::kClusterPlace).hits, 0);
  // The serial inline loop also records the node-level spans.
  EXPECT_GT(serial_a.stats(SpanId::kRmTick).hits, 0);

  const Profiler sharded = hits(2);
  EXPECT_EQ(sharded.stats(SpanId::kClusterDrain).hits,
            serial_a.stats(SpanId::kClusterDrain).hits);
  EXPECT_EQ(sharded.stats(SpanId::kClusterPlace).hits,
            serial_a.stats(SpanId::kClusterPlace).hits);
  // Worker threads never write to the controller's profiler.
  EXPECT_EQ(sharded.stats(SpanId::kRmTick).hits, 0);
}

}  // namespace
}  // namespace pdpa
