# ctest driver for tool CLI contracts. Invoked as
#   cmake -DREPORT=<pdpa_report> -DPRV=<prv_stats> -DSIM=<pdpa_sim>
#         -DBATCH=<pdpa_batch> -DLINT=<pdpa_lint> -DWORKDIR=<scratch>
#         -P cli_cases.cmake
# Bad invocations must be usage errors (exit 2 with a pointed message), not
# silently-wrong output; --help is exit 0.

if(NOT REPORT OR NOT PRV OR NOT SIM OR NOT BATCH OR NOT LINT OR NOT WORKDIR)
  message(FATAL_ERROR
          "usage: cmake -DREPORT=... -DPRV=... -DSIM=... -DBATCH=... -DLINT=... -DWORKDIR=... -P cli_cases.cmake")
endif()
file(MAKE_DIRECTORY ${WORKDIR})

# expect_cli(<exit> <stream:out|err> <regex> <command...>)
function(expect_cli expected_exit stream pattern)
  execute_process(COMMAND ${ARGN}
                  RESULT_VARIABLE exit_code
                  OUTPUT_VARIABLE stdout
                  ERROR_VARIABLE stderr)
  if(NOT exit_code EQUAL expected_exit)
    message(SEND_ERROR "${ARGN}: exit ${exit_code}, want ${expected_exit}\n${stdout}${stderr}")
    return()
  endif()
  if(stream STREQUAL "out")
    set(haystack "${stdout}")
  else()
    set(haystack "${stderr}")
  endif()
  if(NOT haystack MATCHES "${pattern}")
    message(SEND_ERROR "${ARGN}: ${stream} does not match '${pattern}'\n${stdout}${stderr}")
  endif()
endfunction()

# pdpa_report
expect_cli(0 out "usage: pdpa_report" ${REPORT} --help)
expect_cli(2 err "usage: pdpa_report" ${REPORT})
expect_cli(2 err "unknown flag --bogus" ${REPORT} --bogus ${WORKDIR}/ev.jsonl)
expect_cli(2 err "bad --jobs entry 'x'" ${REPORT} ${WORKDIR}/ev.jsonl --jobs 1,x)
expect_cli(2 err "cannot open" ${REPORT} ${WORKDIR}/does_not_exist.jsonl)
expect_cli(2 err "usage: pdpa_report" ${REPORT} a.jsonl b.jsonl)

# Positive control: a well-formed (if tiny) event log renders cleanly.
file(WRITE ${WORKDIR}/ev.jsonl
"{\"type\":\"run_start\",\"policy\":\"PDPA\",\"workload\":\"w1\",\"load\":\"0.6\",\"seed\":\"42\",\"cpus\":\"60\"}\n")
expect_cli(0 out "run 1: policy PDPA" ${REPORT} ${WORKDIR}/ev.jsonl)

# A prof_span record renders as the host-time profile table (hits column is
# the deterministic part; the report echoes the ns fields as milliseconds).
file(WRITE ${WORKDIR}/prof.jsonl
"{\"type\":\"prof_meta\",\"tool\":\"pdpa_sim\",\"spans\":1}\n{\"type\":\"prof_span\",\"span\":\"rm.quantum\",\"hits\":123,\"total_ns\":4000000,\"self_ns\":1000000}\n")
expect_cli(0 out "host-time profile .hits are deterministic" ${REPORT} ${WORKDIR}/prof.jsonl)
expect_cli(0 out "rm\\.quantum +123 +4\\.000 +1\\.000" ${REPORT} ${WORKDIR}/prof.jsonl)

# prv_stats
expect_cli(0 out "usage: prv_stats" ${PRV} --help)
expect_cli(2 err "usage: prv_stats" ${PRV})
expect_cli(2 err "unknown flag --bogus" ${PRV} --bogus ${WORKDIR}/t.prv)
expect_cli(2 err "cannot open" ${PRV} ${WORKDIR}/does_not_exist.prv)

# pdpa_sim: the profiling/tracing flags are documented, malformed values are
# usage errors, and the smoke run actually produces a profile and a trace.
expect_cli(0 out "--trace_out" ${SIM} --help)
expect_cli(0 out "--prof_out" ${SIM} --help)
expect_cli(2 err "unknown flag --bogus" ${SIM} --bogus)
expect_cli(2 err "malformed flag value" ${SIM} --workload w1 --load not-a-number)
expect_cli(0 out "host-time profile .hits are deterministic" ${SIM} --workload w1 --load 0.6 --prof)
expect_cli(0 out "trace events written to" ${SIM} --workload w1 --load 0.6
           --trace_out ${WORKDIR}/sim_trace.json)
if(NOT EXISTS ${WORKDIR}/sim_trace.json)
  message(SEND_ERROR "pdpa_sim --trace_out did not create sim_trace.json")
endif()
expect_cli(0 out "span hits written to" ${SIM} --workload w1 --load 0.6
           --prof_out ${WORKDIR}/sim_prof.jsonl)
# rm.tick, not rm.quantum: the default policy (PDPA) is quantum-passive, so
# a live profile has tick spans but no quantum spans.
expect_cli(0 out "rm.tick" ${REPORT} ${WORKDIR}/sim_prof.jsonl)

# pdpa_batch: same contract for the sweep driver.
expect_cli(0 out "usage: pdpa_batch" ${BATCH} --help)
expect_cli(0 out "--slowdown" ${BATCH} --help)
expect_cli(0 out "--prof_out" ${BATCH} --help)
expect_cli(2 err "unknown flag --bogus" ${BATCH} --bogus)
expect_cli(2 err "malformed flag value" ${BATCH} --workloads w1 --loads 0.6 --jobs not-a-number)
expect_cli(0 out "slowdown_p50,slowdown_p95,slowdown_p99"
           ${BATCH} --workloads w1 --loads 0.6 --policies equip --seeds 1 --slowdown)
expect_cli(0 err "host-time profile .hits are deterministic"
           ${BATCH} --workloads w1 --loads 0.6 --policies equip --seeds 1 --prof)
expect_cli(0 err "trace events written to"
           ${BATCH} --workloads w1 --loads 0.6 --policies equip --seeds 1
           --trace_out ${WORKDIR}/batch_trace.json)
if(NOT EXISTS ${WORKDIR}/batch_trace.json)
  message(SEND_ERROR "pdpa_batch --trace_out did not create batch_trace.json")
endif()

# Cluster mode (src/cluster): the flags are documented, bad values are usage
# errors, incompatible single-node features are rejected, and the smoke runs
# carry the "<policy>@<placement>" marker.
expect_cli(0 out "--cpus_per_node" ${SIM} --help)
expect_cli(0 out "--placement rr|mf|ll" ${SIM} --help)
expect_cli(0 out "--shards" ${SIM} --help)
expect_cli(2 err "unknown --placement bogus" ${SIM} --nodes 4 --placement bogus)
expect_cli(2 err "must be >= 1" ${SIM} --nodes 0)
expect_cli(2 err "single-node only" ${SIM} --nodes 2 --view)
expect_cli(0 out "policy PDPA@mf, .* peak node ML" ${SIM} --workload w1 --load 0.6
           --nodes 3 --cpus_per_node 20 --placement mf --shards 2)
expect_cli(0 out "--cluster_shards" ${BATCH} --help)
expect_cli(0 out "--placement LIST" ${BATCH} --help)
expect_cli(2 err "unknown placement bogus" ${BATCH} --nodes 4 --placement bogus)
expect_cli(2 err "must be >= 1" ${BATCH} --cluster_shards 0)
expect_cli(0 out "PDPA@ll" ${BATCH} --workloads w1 --loads 0.6 --policies pdpa
           --nodes 3 --cpus_per_node 20 --placement rr,ll --cluster_shards 2)

# Epoch batching (DESIGN.md §13): the escape hatch is documented in both
# tools, is cluster-only (usage error on a single-SMP run), and a cluster
# run can be profiled — the controller-plane spans show up in the table.
expect_cli(0 out "--no_arrival_batch" ${SIM} --help)
expect_cli(0 out "--no_arrival_batch" ${BATCH} --help)
expect_cli(2 err "cluster-only .requires --nodes > 1." ${SIM} --no_arrival_batch)
expect_cli(2 err "cluster-only .requires --nodes > 1." ${BATCH} --no_arrival_batch
           --workloads w1 --loads 0.6)
expect_cli(0 out "policy PDPA@rr" ${SIM} --workload w1 --load 0.6
           --nodes 3 --cpus_per_node 20 --no_arrival_batch)
expect_cli(0 out "cluster.place" ${SIM} --workload w1 --load 0.6
           --nodes 3 --cpus_per_node 20 --prof)
expect_cli(0 out "cluster.barrier_wait" ${SIM} --workload w1 --load 0.6
           --nodes 3 --cpus_per_node 20 --prof)

# pdpa_lint --explain: every rule id resolves to its summary, rationale, and
# escape hatch; unknown ids are usage errors. (The full lint contract lives
# in lint_fixture_test.cmake — this pins just the explain surface.)
expect_cli(0 out "rule: ptr-taint" ${LINT} --explain ptr-taint)
expect_cli(0 out "rationale:" ${LINT} --explain ptr-taint)
expect_cli(0 out "escape hatch:" ${LINT} --explain ptr-taint)
expect_cli(0 out "ptr-taint-ok" ${LINT} --explain ptr-taint)
expect_cli(0 out "PDPA_LOCK_RANK" ${LINT} --explain lock-order)
expect_cli(2 err "unknown rule 'bogus' .see --list-rules." ${LINT} --explain bogus)

# --no_fork is the shared-prefix escape hatch: both modes must exit 0 and
# produce byte-identical CSV (the fork log line is info-level, on stderr).
expect_cli(0 out "workload,load,policy" ${BATCH} --workloads w2 --loads 1.0
           --policies equip,pdpa --seeds 2 --no_fork)
expect_cli(0 err "cells forked" ${BATCH} --workloads w2 --loads 1.0
           --policies equip,pdpa --seeds 2 --log_level info)
execute_process(COMMAND ${BATCH} --workloads w2 --loads 1.0 --policies equip,pdpa --seeds 2
                OUTPUT_VARIABLE forked_csv RESULT_VARIABLE forked_exit ERROR_QUIET)
execute_process(COMMAND ${BATCH} --workloads w2 --loads 1.0 --policies equip,pdpa --seeds 2
                --no_fork
                OUTPUT_VARIABLE cold_csv RESULT_VARIABLE cold_exit ERROR_QUIET)
if(NOT forked_exit EQUAL 0 OR NOT cold_exit EQUAL 0)
  message(SEND_ERROR "pdpa_batch fork A/B exited ${forked_exit}/${cold_exit}")
elseif(NOT forked_csv STREQUAL cold_csv)
  message(SEND_ERROR "pdpa_batch --no_fork changed the sweep CSV bytes")
endif()

message(STATUS "cli contract checks done")
