# ctest driver for tool CLI contracts. Invoked as
#   cmake -DREPORT=<pdpa_report> -DPRV=<prv_stats> -DWORKDIR=<scratch> -P cli_cases.cmake
# Bad invocations must be usage errors (exit 2 with a pointed message), not
# silently-wrong output; --help is exit 0.

if(NOT REPORT OR NOT PRV OR NOT WORKDIR)
  message(FATAL_ERROR "usage: cmake -DREPORT=... -DPRV=... -DWORKDIR=... -P cli_cases.cmake")
endif()
file(MAKE_DIRECTORY ${WORKDIR})

# expect_cli(<exit> <stream:out|err> <regex> <command...>)
function(expect_cli expected_exit stream pattern)
  execute_process(COMMAND ${ARGN}
                  RESULT_VARIABLE exit_code
                  OUTPUT_VARIABLE stdout
                  ERROR_VARIABLE stderr)
  if(NOT exit_code EQUAL expected_exit)
    message(SEND_ERROR "${ARGN}: exit ${exit_code}, want ${expected_exit}\n${stdout}${stderr}")
    return()
  endif()
  if(stream STREQUAL "out")
    set(haystack "${stdout}")
  else()
    set(haystack "${stderr}")
  endif()
  if(NOT haystack MATCHES "${pattern}")
    message(SEND_ERROR "${ARGN}: ${stream} does not match '${pattern}'\n${stdout}${stderr}")
  endif()
endfunction()

# pdpa_report
expect_cli(0 out "usage: pdpa_report" ${REPORT} --help)
expect_cli(2 err "usage: pdpa_report" ${REPORT})
expect_cli(2 err "unknown flag --bogus" ${REPORT} --bogus ${WORKDIR}/ev.jsonl)
expect_cli(2 err "bad --jobs entry 'x'" ${REPORT} ${WORKDIR}/ev.jsonl --jobs 1,x)
expect_cli(2 err "cannot open" ${REPORT} ${WORKDIR}/does_not_exist.jsonl)
expect_cli(2 err "usage: pdpa_report" ${REPORT} a.jsonl b.jsonl)

# Positive control: a well-formed (if tiny) event log renders cleanly.
file(WRITE ${WORKDIR}/ev.jsonl
"{\"type\":\"run_start\",\"policy\":\"PDPA\",\"workload\":\"w1\",\"load\":\"0.6\",\"seed\":\"42\",\"cpus\":\"60\"}\n")
expect_cli(0 out "run 1: policy PDPA" ${REPORT} ${WORKDIR}/ev.jsonl)

# prv_stats
expect_cli(0 out "usage: prv_stats" ${PRV} --help)
expect_cli(2 err "usage: prv_stats" ${PRV})
expect_cli(2 err "unknown flag --bogus" ${PRV} --bogus ${WORKDIR}/t.prv)
expect_cli(2 err "cannot open" ${PRV} ${WORKDIR}/does_not_exist.prv)

message(STATUS "cli contract checks done")
