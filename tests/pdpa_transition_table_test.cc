// Exhaustive check of the PDPA state diagram (Fig. 2 of the paper): for
// every state, every efficiency band (bad / acceptable / very good) and
// every free-pool condition, the automaton must take exactly the
// transition the paper prescribes.
#include <gtest/gtest.h>

#include "src/core/pdpa.h"

namespace pdpa {
namespace {

PdpaParams Params() {
  PdpaParams params;
  params.target_eff = 0.7;
  params.high_eff = 0.9;
  params.step = 4;
  params.max_stable_exits = 8;
  return params;
}

// Efficiency bands used across the table.
constexpr double kBad = 0.5;         // < target_eff
constexpr double kAcceptable = 0.8;  // in [target_eff, high_eff]
constexpr double kVeryGood = 0.95;   // > high_eff

// Builds an automaton in NO_REF at `alloc` (of `request`).
PdpaAutomaton AtNoRef(int alloc, int request = 30) {
  PdpaAutomaton automaton(Params(), request);
  automaton.OnJobStart(alloc);
  return automaton;
}

// Drives an automaton into INC at 12 after a very good report at 8.
PdpaAutomaton AtInc(int request = 30) {
  PdpaAutomaton automaton = AtNoRef(8, request);
  const PdpaDecision d = automaton.OnReport(kVeryGood * 8, 8, 40);
  EXPECT_EQ(d.next_state, PdpaState::kInc);
  EXPECT_EQ(automaton.current_alloc(), 12);
  return automaton;
}

// Drives an automaton into DEC at 26 after a bad report at 30.
PdpaAutomaton AtDec(int request = 30) {
  PdpaAutomaton automaton = AtNoRef(30, request);
  const PdpaDecision d = automaton.OnReport(kBad * 30, 30, 0);
  EXPECT_EQ(d.next_state, PdpaState::kDec);
  EXPECT_EQ(automaton.current_alloc(), 26);
  return automaton;
}

// Drives an automaton into STABLE at 20 (acceptable performance).
PdpaAutomaton AtStable(int request = 30) {
  PdpaAutomaton automaton = AtNoRef(20, request);
  const PdpaDecision d = automaton.OnReport(kAcceptable * 20, 20, 10);
  EXPECT_EQ(d.next_state, PdpaState::kStable);
  return automaton;
}

// --- NO_REF row of the table ---------------------------------------------

TEST(TransitionTable, NoRefBadGoesDec) {
  PdpaAutomaton a = AtNoRef(20);
  EXPECT_EQ(a.OnReport(kBad * 20, 20, 10).next_state, PdpaState::kDec);
  EXPECT_EQ(a.current_alloc(), 16);
}

TEST(TransitionTable, NoRefAcceptableGoesStable) {
  PdpaAutomaton a = AtNoRef(20);
  EXPECT_EQ(a.OnReport(kAcceptable * 20, 20, 10).next_state, PdpaState::kStable);
  EXPECT_EQ(a.current_alloc(), 20);
}

TEST(TransitionTable, NoRefVeryGoodWithFreeGoesInc) {
  PdpaAutomaton a = AtNoRef(20);
  EXPECT_EQ(a.OnReport(kVeryGood * 20, 20, 10).next_state, PdpaState::kInc);
  EXPECT_EQ(a.current_alloc(), 24);
}

TEST(TransitionTable, NoRefVeryGoodWithoutFreeGoesStableResourceLimited) {
  PdpaAutomaton a = AtNoRef(20);
  EXPECT_EQ(a.OnReport(kVeryGood * 20, 20, 0).next_state, PdpaState::kStable);
  EXPECT_TRUE(a.resource_limited());
}

TEST(TransitionTable, NoRefVeryGoodAtRequestGoesStableNotResourceLimited) {
  PdpaAutomaton a = AtNoRef(30, 30);
  EXPECT_EQ(a.OnReport(kVeryGood * 30, 30, 10).next_state, PdpaState::kStable);
  EXPECT_FALSE(a.resource_limited());
}

TEST(TransitionTable, NoRefBadAtFloorStaysStable) {
  PdpaAutomaton a = AtNoRef(1, 2);
  // Cannot shrink below one processor: bad performance at the floor holds.
  const PdpaDecision d = a.OnReport(0.5, 1, 0);
  EXPECT_EQ(d.next_alloc, 1);
}

// --- INC row ---------------------------------------------------------------

TEST(TransitionTable, IncAllChecksPassKeepsGrowing) {
  PdpaAutomaton a = AtInc();
  // At 12: eff very good, speedup grew a lot (relative 12/7.6 = 1.58 >
  // 1 + (4/8)*0.9 = 1.45).
  const PdpaDecision d = a.OnReport(kVeryGood * 12 + 0.7, 12, 40);
  EXPECT_EQ(d.next_state, PdpaState::kInc);
  EXPECT_EQ(d.next_alloc, 16);
}

TEST(TransitionTable, IncEfficiencyDropBelowHighStops) {
  PdpaAutomaton a = AtInc();
  const PdpaDecision d = a.OnReport(kAcceptable * 12, 12, 40);
  EXPECT_EQ(d.next_state, PdpaState::kStable);
  EXPECT_EQ(d.next_alloc, 12);  // acceptable: keeps the gained processors
}

TEST(TransitionTable, IncEfficiencyCollapseRollsBack) {
  PdpaAutomaton a = AtInc();
  const PdpaDecision d = a.OnReport(kBad * 12, 12, 40);
  EXPECT_EQ(d.next_state, PdpaState::kStable);
  EXPECT_EQ(d.next_alloc, 8);  // below target: loses the last step
}

TEST(TransitionTable, IncSpeedupNotGrowingStops) {
  PdpaAutomaton a = AtInc();  // speedup at 8 was 7.6
  // Very good efficiency at 12 procs would need speedup > 10.8; report a
  // speedup that is high-eff but NOT higher than the previous measurement.
  const PdpaDecision d = a.OnReport(7.0, 12, 40);
  EXPECT_EQ(d.next_state, PdpaState::kStable);
}

TEST(TransitionTable, IncRelativeSpeedupFailureStops) {
  PdpaAutomaton a = AtInc();  // last speedup 7.6 at 8 procs
  // Efficiency still very good (11.4/12 = 0.95) and speedup grew, but the
  // relative speedup 11.4/7.6 = 1.5 is fine... push further: grow to 16,
  // then report a superlinear-but-flattening point.
  PdpaDecision d = a.OnReport(11.6, 12, 40);
  ASSERT_EQ(d.next_state, PdpaState::kInc);
  ASSERT_EQ(a.current_alloc(), 16);
  // At 16: eff = 15.4/16 = 0.96 > high, speedup grew, but relative speedup
  // 15.4/11.6 = 1.33 < 1 + (4/12)*0.9 = 1.30? No - 1.33 > 1.30. Use 14.9:
  // 14.9/11.6 = 1.28 < 1.30 and eff 0.93 still very good.
  d = a.OnReport(14.9, 16, 40);
  EXPECT_EQ(d.next_state, PdpaState::kStable);
  EXPECT_EQ(d.next_alloc, 16);  // eff >= target: keeps them
  EXPECT_FALSE(a.resource_limited());
}

TEST(TransitionTable, IncNoFreePoolGoesStableResourceLimited) {
  PdpaAutomaton a = AtInc();
  const PdpaDecision d = a.OnReport(kVeryGood * 12 + 0.7, 12, 0);
  EXPECT_EQ(d.next_state, PdpaState::kStable);
  EXPECT_TRUE(a.resource_limited());
}

TEST(TransitionTable, IncAtRequestGoesStable) {
  PdpaAutomaton a = AtInc(/*request=*/12);
  const PdpaDecision d = a.OnReport(kVeryGood * 12 + 0.7, 12, 40);
  EXPECT_EQ(d.next_state, PdpaState::kStable);
  EXPECT_EQ(d.next_alloc, 12);
}

// --- DEC row ---------------------------------------------------------------

TEST(TransitionTable, DecStillBadKeepsShrinking) {
  PdpaAutomaton a = AtDec();
  const PdpaDecision d = a.OnReport(kBad * 26, 26, 0);
  EXPECT_EQ(d.next_state, PdpaState::kDec);
  EXPECT_EQ(d.next_alloc, 22);
}

TEST(TransitionTable, DecRecoveredGoesStable) {
  PdpaAutomaton a = AtDec();
  const PdpaDecision d = a.OnReport(kAcceptable * 26, 26, 0);
  EXPECT_EQ(d.next_state, PdpaState::kStable);
  EXPECT_EQ(d.next_alloc, 26);
}

TEST(TransitionTable, DecVeryGoodAlsoGoesStable) {
  // The paper's DEC state only distinguishes "below target" from "not":
  // a very good report also lands in STABLE (no direct DEC -> INC arc).
  PdpaAutomaton a = AtDec();
  const PdpaDecision d = a.OnReport(kVeryGood * 26, 26, 10);
  EXPECT_EQ(d.next_state, PdpaState::kStable);
}

TEST(TransitionTable, DecFloorIsSettledBadPerformance) {
  PdpaAutomaton a = AtNoRef(4, /*request=*/4);
  // Shrink to the floor.
  while (a.current_alloc() > 1) {
    a.OnReport(kBad * a.current_alloc(), a.current_alloc(), 0);
  }
  a.OnReport(0.4, 1, 0);
  EXPECT_EQ(a.state(), PdpaState::kDec);
  EXPECT_TRUE(a.Settled());
  EXPECT_TRUE(a.BadPerformance());
}

// --- STABLE row -------------------------------------------------------------

TEST(TransitionTable, StableBadPerformanceExitsToDec) {
  PdpaAutomaton a = AtStable();
  const PdpaDecision d = a.OnReport(kBad * 20, 20, 10);
  EXPECT_EQ(d.next_state, PdpaState::kDec);
  EXPECT_EQ(d.next_alloc, 16);
  EXPECT_EQ(a.stable_exits(), 1);
}

TEST(TransitionTable, StableAcceptableHolds) {
  PdpaAutomaton a = AtStable();
  const PdpaDecision d = a.OnReport(kAcceptable * 20, 20, 10);
  EXPECT_EQ(d.next_state, PdpaState::kStable);
  EXPECT_FALSE(d.changed);
}

TEST(TransitionTable, StablePerformanceLimitedNeverGrowsOnVeryGood) {
  // STABLE reached through the acceptable band is performance-limited:
  // even a later very-good report must not restart the climb (that is what
  // keeps superlinear applications at their relative-speedup stop).
  PdpaAutomaton a = AtStable();
  ASSERT_FALSE(a.resource_limited());
  const PdpaDecision d = a.OnReport(kVeryGood * 20, 20, 10);
  EXPECT_EQ(d.next_state, PdpaState::kStable);
  EXPECT_FALSE(d.changed);
}

TEST(TransitionTable, StableResourceLimitedGrowsWhenFreeAppears) {
  PdpaAutomaton a = AtNoRef(20);
  a.OnReport(kVeryGood * 20, 20, 0);  // very good but no free: resource-limited
  ASSERT_TRUE(a.resource_limited());
  const PdpaDecision d = a.OnReport(kVeryGood * 20, 20, 8);
  EXPECT_EQ(d.next_state, PdpaState::kInc);
  EXPECT_EQ(d.next_alloc, 24);
}

TEST(TransitionTable, StableZeroExitLimitFreezesState) {
  PdpaParams params = Params();
  params.max_stable_exits = 0;
  PdpaAutomaton a(params, 30);
  a.OnJobStart(20);
  a.OnReport(kAcceptable * 20, 20, 10);  // STABLE
  const PdpaDecision d = a.OnReport(kBad * 20, 20, 10);
  EXPECT_EQ(d.next_state, PdpaState::kStable);
  EXPECT_FALSE(d.changed);
}

// --- Cross-cutting -----------------------------------------------------------

TEST(TransitionTable, StateNamesComplete) {
  EXPECT_STREQ(PdpaStateName(PdpaState::kNoRef), "NO_REF");
  EXPECT_STREQ(PdpaStateName(PdpaState::kInc), "INC");
  EXPECT_STREQ(PdpaStateName(PdpaState::kDec), "DEC");
  EXPECT_STREQ(PdpaStateName(PdpaState::kStable), "STABLE");
}

TEST(TransitionTable, DebugStringMentionsStateAndAlloc) {
  PdpaAutomaton a = AtInc();
  const std::string debug = a.DebugString();
  EXPECT_NE(debug.find("INC"), std::string::npos);
  EXPECT_NE(debug.find("alloc=12"), std::string::npos);
}

}  // namespace
}  // namespace pdpa
