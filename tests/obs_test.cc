// Observability subsystem tests: counters/gauges/histograms semantics, the
// JSONL event log (including the determinism golden test), and the
// per-quantum time-series sampler's integral-exactness invariant.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>

#include "src/obs/counters.h"
#include "src/obs/event_log.h"
#include "src/obs/timeseries.h"
#include "src/workload/experiment.h"

namespace pdpa {
namespace {

// ---------------------------------------------------------------- counters

TEST(CounterTest, IncrementAndReset) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.value(), 42);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge gauge;
  EXPECT_FALSE(gauge.has_value());
  gauge.Set(3.0);
  gauge.Set(-1.5);
  EXPECT_TRUE(gauge.has_value());
  EXPECT_DOUBLE_EQ(gauge.value(), -1.5);
  gauge.Reset();
  EXPECT_FALSE(gauge.has_value());
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
}

TEST(HistogramTest, LeBucketSemanticsWithOverflow) {
  Histogram histogram({1.0, 2.0, 4.0});
  histogram.Observe(0.5);   // bucket 0 (le 1.0)
  histogram.Observe(1.0);   // bucket 0 (le semantics: 1.0 <= 1.0)
  histogram.Observe(1.5);   // bucket 1
  histogram.Observe(4.0);   // bucket 2
  histogram.Observe(100.0); // overflow
  ASSERT_EQ(histogram.bucket_counts().size(), 4u);
  EXPECT_EQ(histogram.bucket_counts()[0], 2);
  EXPECT_EQ(histogram.bucket_counts()[1], 1);
  EXPECT_EQ(histogram.bucket_counts()[2], 1);
  EXPECT_EQ(histogram.bucket_counts()[3], 1);
  EXPECT_EQ(histogram.count(), 5);
  EXPECT_DOUBLE_EQ(histogram.sum(), 107.0);
  histogram.Reset();
  EXPECT_EQ(histogram.count(), 0);
  EXPECT_DOUBLE_EQ(histogram.sum(), 0.0);
  EXPECT_EQ(histogram.bucket_counts()[0], 0);
}

TEST(RegistryTest, RegistrationIsIdempotent) {
  Registry registry;
  Counter* a = registry.counter("test.counter");
  Counter* b = registry.counter("test.counter");
  EXPECT_EQ(a, b);
  a->Increment(7);
  EXPECT_EQ(b->value(), 7);
  Gauge* g1 = registry.gauge("test.gauge");
  Gauge* g2 = registry.gauge("test.gauge");
  EXPECT_EQ(g1, g2);
  Histogram* h1 = registry.histogram("test.hist", {1.0, 2.0});
  Histogram* h2 = registry.histogram("test.hist", {5.0});  // bounds ignored
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h1->upper_bounds().size(), 2u);
}

TEST(RegistryTest, SnapshotIsNameSortedAndResetAllZeroes) {
  Registry registry;
  registry.counter("z.last")->Increment(3);
  registry.counter("a.first")->Increment(1);
  registry.gauge("m.gauge")->Set(9.5);
  registry.histogram("h.hist", {1.0})->Observe(0.5);

  RegistrySnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].name, "a.first");
  EXPECT_EQ(snapshot.counters[1].name, "z.last");
  EXPECT_EQ(snapshot.counters[1].value, 3);
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snapshot.gauges[0].value, 9.5);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].count, 1);
  EXPECT_FALSE(snapshot.ToString().empty());

  registry.ResetAll();
  Counter* survived = registry.counter("z.last");
  EXPECT_EQ(survived->value(), 0);
  EXPECT_EQ(registry.Snapshot().counters.size(), 2u);  // registrations survive
}

// ------------------------------------------------------------------- json

TEST(JsonTest, EscapeRoundTripsThroughParse) {
  std::string line;
  JsonObjectWriter writer(&line);
  writer.Field("text", "line\nwith \"quotes\" and \\slash\\ and\ttab")
      .Field("n", 42)
      .Field("neg", -7)
      .Field("flag", true)
      .Field("x", 0.125);
  writer.Finish();
  std::map<std::string, std::string> fields;
  ASSERT_TRUE(ParseFlatJson(line, &fields));
  EXPECT_EQ(fields["text"], "line\nwith \"quotes\" and \\slash\\ and\ttab");
  EXPECT_EQ(fields["n"], "42");
  EXPECT_EQ(fields["neg"], "-7");
  EXPECT_EQ(fields["flag"], "true");
  EXPECT_EQ(fields["x"], "0.125");
}

TEST(JsonTest, ParseRejectsMalformedInput) {
  std::map<std::string, std::string> fields;
  EXPECT_FALSE(ParseFlatJson("", &fields));
  EXPECT_FALSE(ParseFlatJson("{\"a\":}", &fields));
  EXPECT_FALSE(ParseFlatJson("{\"a\":1", &fields));
  EXPECT_FALSE(ParseFlatJson("not json", &fields));
  EXPECT_TRUE(ParseFlatJson("{}", &fields));
  EXPECT_TRUE(fields.empty());
  EXPECT_TRUE(ParseFlatJson("  {\"a\": 1}  ", &fields));
  EXPECT_EQ(fields["a"], "1");
}

TEST(EventLogTest, NullSinkDisablesRecording) {
  EventLog log(nullptr);
  EXPECT_FALSE(log.enabled());
  log.JobSubmit(0, 1, "bt", 8, false);
  EXPECT_EQ(log.lines_written(), 0);
}

TEST(EventLogTest, EmittersProduceParseableJsonl) {
  std::ostringstream out;
  EventLog log(&out);
  log.RunStart("PDPA", "w1", 1.0, 42, 60);
  log.JobSubmit(1000, 3, "hydro2d", 24, false);
  log.PdpaTransition(2000, 3, "NO_REF", "INC", 4, 8, 3.2, 0.8, 0.7, "report");
  log.RunEnd(5000, 1, true);
  EXPECT_EQ(log.lines_written(), 4);
  log.Flush();

  std::istringstream lines(out.str());
  std::string line;
  int parsed = 0;
  std::map<std::string, std::string> fields;
  while (std::getline(lines, line)) {
    ASSERT_TRUE(ParseFlatJson(line, &fields)) << line;
    ++parsed;
  }
  EXPECT_EQ(parsed, 4);
  // Last parsed line is run_end.
  EXPECT_EQ(fields["type"], "run_end");
  EXPECT_EQ(fields["t_us"], "5000");
  EXPECT_EQ(fields["completed"], "true");
}

// ------------------------------------------------------------- time-series

TEST(TimeSeriesTest, AllocIntegralSumsWindows) {
  TimeSeriesSampler sampler;
  sampler.AddApp({0, 1000, 1, 4.0, 0.0, 0.0, "INC"});
  sampler.AddApp({1000, 3000, 1, 6.0, 3.0, 0.5, "STABLE"});
  sampler.AddApp({0, 2000, 2, 2.0, 0.0, 0.0, ""});
  const std::map<JobId, double> integrals = sampler.AllocIntegralUs();
  EXPECT_DOUBLE_EQ(integrals.at(1), 4.0 * 1000 + 6.0 * 2000);
  EXPECT_DOUBLE_EQ(integrals.at(2), 2.0 * 2000);
}

TEST(TimeSeriesTest, CsvHasHeaderAndRows) {
  TimeSeriesSampler sampler;
  sampler.AddApp({0, 1000000, 7, 4.0, 2.5, 0.625, "DEC"});
  sampler.AddMachine({1000000, 10, 3, 2, 0.833});
  std::ostringstream out;
  sampler.WriteCsv(out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("kind,t_s,t_end_s,job,alloc,speedup,efficiency,state,"
                     "free_cpus,running,queued,utilization"),
            std::string::npos);
  EXPECT_NE(csv.find("app,"), std::string::npos);
  EXPECT_NE(csv.find("machine,"), std::string::npos);
  EXPECT_NE(csv.find("DEC"), std::string::npos);
  sampler.Clear();
  EXPECT_TRUE(sampler.empty());
}

// ------------------------------------------------- end-to-end (golden runs)

ExperimentConfig RecorderConfig(EventLog* log, TimeSeriesSampler* timeseries) {
  ExperimentConfig config;
  config.workload = WorkloadId::kW1;
  config.load = 1.0;
  config.policy = PolicyKind::kPdpa;
  config.seed = 42;
  config.event_log = log;
  config.timeseries = timeseries;
  return config;
}

TEST(FlightRecorderTest, TwoIdenticalRunsAreByteIdentical) {
  std::ostringstream first;
  {
    EventLog log(&first);
    const ExperimentResult result = RunExperiment(RecorderConfig(&log, nullptr));
    ASSERT_TRUE(result.completed);
    EXPECT_GT(log.lines_written(), 0);
  }
  std::ostringstream second;
  {
    EventLog log(&second);
    const ExperimentResult result = RunExperiment(RecorderConfig(&log, nullptr));
    ASSERT_TRUE(result.completed);
  }
  ASSERT_FALSE(first.str().empty());
  EXPECT_EQ(first.str(), second.str());
}

TEST(FlightRecorderTest, EventLogContainsPdpaTransitionsWithEfficiency) {
  std::ostringstream out;
  EventLog log(&out);
  const ExperimentResult result = RunExperiment(RecorderConfig(&log, nullptr));
  ASSERT_TRUE(result.completed);
  log.Flush();

  std::istringstream lines(out.str());
  std::string line;
  int transitions = 0;
  int inc_or_dec = 0;
  bool saw_run_start = false;
  bool saw_run_end = false;
  while (std::getline(lines, line)) {
    std::map<std::string, std::string> fields;
    ASSERT_TRUE(ParseFlatJson(line, &fields)) << line;
    const std::string type = fields["type"];
    if (type == "run_start") {
      saw_run_start = true;
      EXPECT_EQ(fields["policy"], "PDPA");
    } else if (type == "run_end") {
      saw_run_end = true;
    } else if (type == "pdpa_transition") {
      ++transitions;
      EXPECT_TRUE(fields.contains("eff")) << line;
      EXPECT_TRUE(fields.contains("target")) << line;
      EXPECT_TRUE(fields.contains("from")) << line;
      EXPECT_TRUE(fields.contains("to")) << line;
      if (fields["to"] == "INC" || fields["to"] == "DEC") {
        ++inc_or_dec;
      }
    }
  }
  EXPECT_TRUE(saw_run_start);
  EXPECT_TRUE(saw_run_end);
  // The PDPA search must actually move allocations around on w1 at load 1.
  EXPECT_GT(transitions, 0);
  EXPECT_GT(inc_or_dec, 0);
}

TEST(FlightRecorderTest, TimeseriesIntegralMatchesAvgAllocMetric) {
  TimeSeriesSampler timeseries;
  const ExperimentResult result = RunExperiment(RecorderConfig(nullptr, &timeseries));
  ASSERT_TRUE(result.completed);
  ASSERT_FALSE(timeseries.apps().empty());
  ASSERT_FALSE(timeseries.machine().empty());

  // Rebuild per-class avg_alloc from the CSV windows: sum alloc*(dt) per job,
  // divide by the job's wall time, average per class. It must agree with
  // ComputeMetrics' avg_alloc (acceptance bound: 1%; windows telescope, so
  // the match is in practice much tighter).
  const std::map<JobId, double> integrals = timeseries.AllocIntegralUs();
  std::map<AppClass, double> alloc_sum;
  std::map<AppClass, int> count;
  for (const JobOutcome& outcome : result.outcomes) {
    ++count[outcome.app_class];
    const auto it = integrals.find(outcome.id);
    if (it != integrals.end() && outcome.finish > outcome.start) {
      alloc_sum[outcome.app_class] +=
          it->second / static_cast<double>(outcome.finish - outcome.start);
    }
  }
  ASSERT_FALSE(result.metrics.per_class.empty());
  for (const auto& [app_class, metrics] : result.metrics.per_class) {
    ASSERT_GT(count[app_class], 0);
    const double from_timeseries = alloc_sum[app_class] / count[app_class];
    EXPECT_NEAR(from_timeseries, metrics.avg_alloc, 0.01 * metrics.avg_alloc + 1e-9)
        << AppClassName(app_class);
  }
}

TEST(FlightRecorderTest, TimeseriesStatesComeFromTheAutomaton) {
  TimeSeriesSampler timeseries;
  const ExperimentResult result = RunExperiment(RecorderConfig(nullptr, &timeseries));
  ASSERT_TRUE(result.completed);
  int named_states = 0;
  for (const TimeSeriesSampler::AppPoint& point : timeseries.apps()) {
    EXPECT_LT(point.t_start, point.t_end);
    if (!point.state.empty()) {
      ++named_states;
      EXPECT_TRUE(point.state == "NO_REF" || point.state == "INC" || point.state == "DEC" ||
                  point.state == "STABLE")
          << point.state;
    }
  }
  EXPECT_GT(named_states, 0);
}

}  // namespace
}  // namespace pdpa
