// End-to-end tests of the experiment facade itself: configuration plumbing,
// artifact validity (Paraver/ASCII), and cross-policy determinism.
#include <gtest/gtest.h>

#include <sstream>

#include "src/trace/paraver_reader.h"
#include "src/workload/experiment.h"

namespace pdpa {
namespace {

TEST(ExperimentTest, PolicyNamesRoundTrip) {
  EXPECT_STREQ(PolicyKindName(PolicyKind::kIrix), "IRIX");
  EXPECT_STREQ(PolicyKindName(PolicyKind::kEquipartition), "Equip");
  EXPECT_STREQ(PolicyKindName(PolicyKind::kEqualEfficiency), "Equal_eff");
  EXPECT_STREQ(PolicyKindName(PolicyKind::kPdpa), "PDPA");
  EXPECT_STREQ(PolicyKindName(PolicyKind::kMcCannDynamic), "Dynamic");

  for (PolicyKind kind :
       {PolicyKind::kIrix, PolicyKind::kEquipartition, PolicyKind::kEqualEfficiency,
        PolicyKind::kPdpa, PolicyKind::kMcCannDynamic}) {
    ExperimentConfig config;
    config.policy = kind;
    EXPECT_NE(MakePolicy(config), nullptr);
  }
}

TEST(ExperimentTest, EveryPolicyIsDeterministic) {
  for (PolicyKind kind :
       {PolicyKind::kIrix, PolicyKind::kEquipartition, PolicyKind::kEqualEfficiency,
        PolicyKind::kPdpa, PolicyKind::kMcCannDynamic}) {
    ExperimentConfig config;
    config.workload = WorkloadId::kW1;
    config.load = 0.6;
    config.policy = kind;
    const ExperimentResult a = RunExperiment(config);
    const ExperimentResult b = RunExperiment(config);
    EXPECT_DOUBLE_EQ(a.metrics.makespan_s, b.metrics.makespan_s) << PolicyKindName(kind);
    EXPECT_EQ(a.reallocations, b.reallocations) << PolicyKindName(kind);
  }
}

TEST(ExperimentTest, TraceArtifactsAreValidAndConsistent) {
  ExperimentConfig config;
  config.workload = WorkloadId::kW2;
  config.load = 0.8;
  config.policy = PolicyKind::kPdpa;
  config.record_trace = true;
  const ExperimentResult result = RunExperiment(config);
  ASSERT_TRUE(result.completed);

  // ASCII view: header plus one row per rendered CPU.
  EXPECT_NE(result.ascii_view.find("time axis"), std::string::npos);
  EXPECT_NE(result.ascii_view.find("cpu  0"), std::string::npos);

  // The embedded Paraver trace parses, covers all 60 CPUs, and yields
  // utilization consistent with the live recorder's.
  std::istringstream prv(result.paraver_trace);
  ParaverTrace trace;
  std::string error;
  ASSERT_TRUE(ReadParaverTrace(prv, &trace, &error)) << error;
  EXPECT_EQ(trace.num_cpus, 60);
  EXPECT_EQ(trace.num_jobs, result.metrics.jobs);
  const TraceStats offline = ComputeStatsFromTrace(trace);
  EXPECT_NEAR(offline.utilization, result.utilization, 0.05);
}

TEST(ExperimentTest, MlTimelineIsTimeOrderedAndEndsAtZero) {
  ExperimentConfig config;
  config.workload = WorkloadId::kW3;
  config.load = 0.8;
  config.policy = PolicyKind::kPdpa;
  const ExperimentResult result = RunExperiment(config);
  ASSERT_TRUE(result.completed);
  ASSERT_FALSE(result.ml_timeline_s.empty());
  double prev = -1.0;
  int peak = 0;
  for (const auto& [when, ml] : result.ml_timeline_s) {
    EXPECT_GE(when, prev);
    EXPECT_GE(ml, 0);
    peak = std::max(peak, ml);
    prev = when;
  }
  EXPECT_EQ(result.ml_timeline_s.back().second, 0);
  EXPECT_EQ(peak, result.max_ml);
}

TEST(ExperimentTest, NumCpusIsRespected) {
  ExperimentConfig config;
  config.workload = WorkloadId::kW2;
  config.load = 0.6;
  config.policy = PolicyKind::kEquipartition;
  config.num_cpus = 16;
  config.record_trace = true;
  const ExperimentResult result = RunExperiment(config);
  ASSERT_TRUE(result.completed);
  std::istringstream prv(result.paraver_trace);
  ParaverTrace trace;
  ASSERT_TRUE(ReadParaverTrace(prv, &trace, nullptr));
  EXPECT_EQ(trace.num_cpus, 16);
  // Nobody can own more than the machine.
  for (const auto& [app_class, m] : result.metrics.per_class) {
    EXPECT_LE(m.avg_alloc, 16.0 + 1e-9);
  }
}

TEST(ExperimentTest, CutoffReportedAsIncomplete) {
  ExperimentConfig config;
  config.workload = WorkloadId::kW3;
  config.load = 1.0;
  config.policy = PolicyKind::kEquipartition;
  config.max_sim_time = 30 * kSecond;  // far too short for the workload
  const ExperimentResult result = RunExperiment(config);
  EXPECT_FALSE(result.completed);
  EXPECT_LE(result.sim_end_s, 90.0);  // one RunUntil slice past the cutoff
}

}  // namespace
}  // namespace pdpa
