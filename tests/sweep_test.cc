// Parameterized sweeps over model knobs, asserting the monotone
// relationships the models are built on.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/machine/machine.h"
#include "src/rm/irix.h"
#include "src/workload/experiment.h"

namespace pdpa {
namespace {

// --- IRIX: a larger affinity bonus must yield longer bursts and fewer
// migrations (the knob Table 2's burst lengths are calibrated with).

class IrixAffinityTest : public ::testing::TestWithParam<int> {};

long long MigrationsWithBonus(SimDuration bonus) {
  IrixTimeShare::Params params;
  params.affinity_bonus = bonus;
  params.omp_dynamic = false;  // keep the thread population constant
  IrixTimeShare policy(params, Rng(7));
  Machine machine(16);
  PolicyContext ctx;
  ctx.total_cpus = 16;
  for (JobId job = 1; job <= 2; ++job) {
    PolicyJobInfo info;
    info.id = job;
    info.request = 16;
    ctx.jobs.push_back(info);
    (void)policy.OnJobStart(ctx, job);
  }
  std::vector<CpuHandoff> handoffs;
  for (int tick = 0; tick < 1000; ++tick) {
    (void)policy.TimeShareTick(machine, ctx, 20 * kMillisecond, &handoffs);
  }
  return policy.total_thread_migrations();
}

TEST(IrixAffinitySweepTest, LargerBonusMeansFewerMigrations) {
  const long long short_bonus = MigrationsWithBonus(20 * kMillisecond);
  const long long long_bonus = MigrationsWithBonus(500 * kMillisecond);
  EXPECT_GT(short_bonus, long_bonus * 2)
      << "short=" << short_bonus << " long=" << long_bonus;
}

// --- Folding overhead: a more expensive fold must slow rigid jobs more.

class FoldingOverheadTest : public ::testing::TestWithParam<double> {};

TEST_P(FoldingOverheadTest, ProgressScalesWithOverhead) {
  const double overhead = GetParam();
  AppProfile profile = AppProfileBuilder("fold")
                           .WithCurve({{1, 1.0}, {16, 16.0}})
                           .WithWork(100.0)
                           .WithIterations(10)
                           .WithRequest(8)
                           .Build();
  AppCosts costs;
  costs.reconfig_freeze = 0;
  costs.warmup = 0;
  costs.folding_overhead = overhead;
  Application app(1, profile, costs);
  app.set_request(8);
  app.set_rigid(true);
  app.SetAllocation(4, 0);
  app.Start(0);
  app.Advance(0, kSecond);
  // speed = S(8) * 0.5 * overhead.
  EXPECT_NEAR(app.progress_s(), 8.0 * 0.5 * overhead, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Overheads, FoldingOverheadTest,
                         ::testing::Values(0.5, 0.7, 0.85, 1.0));

// --- Load monotonicity: higher offered load must not reduce response
// times under a fixed-ML policy (queueing only gets worse).

TEST(LoadMonotonicityTest, EquipartitionResponseGrowsWithLoad) {
  double prev = 0.0;
  for (double load : {0.6, 0.8, 1.0}) {
    ExperimentConfig config;
    config.workload = WorkloadId::kW3;
    config.load = load;
    config.policy = PolicyKind::kEquipartition;
    const ExperimentResult r = RunExperiment(config);
    ASSERT_TRUE(r.completed);
    const double resp = r.metrics.per_class.at(AppClass::kBt).avg_response_s;
    EXPECT_GE(resp, prev * 0.95) << "load " << load;
    prev = resp;
  }
}

// --- Machine SetOwner direct path (used by the time-sharing scheduler).

TEST(MachineSetOwnerTest, DirectOwnershipBypassesPartitioning) {
  Machine machine(4);
  machine.SetOwner(0, 7);
  machine.SetOwner(1, 7);
  machine.SetOwner(2, 9);
  EXPECT_EQ(machine.CountOf(7), 2);
  EXPECT_EQ(machine.CpusOf(9).ToVector(), (std::vector<int>{2}));
  EXPECT_EQ(machine.FreeCpus(), 1);
  machine.SetOwner(0, kIdleJob);
  EXPECT_EQ(machine.CountOf(7), 1);
}

// --- PDPA step sweep: any step converges to an acceptable allocation for
// a medium-scalability application (hydro2d-like), only the path differs.

class StepSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(StepSweepTest, HydroConvergesForAnyStep) {
  ExperimentConfig config;
  config.workload = WorkloadId::kW2;
  config.load = 0.8;
  config.policy = PolicyKind::kPdpa;
  config.pdpa.step = GetParam();
  const ExperimentResult r = RunExperiment(config);
  ASSERT_TRUE(r.completed);
  // hydro2d must end well below its 30-CPU request for every step size.
  EXPECT_LT(r.metrics.per_class.at(AppClass::kHydro2d).avg_alloc, 18.0);
}

INSTANTIATE_TEST_SUITE_P(Steps, StepSweepTest, ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace pdpa
