// Tests for the queuing system, SWF trace format, and workload generator.
#include <gtest/gtest.h>

#include <sstream>

#include "src/core/pdpa_policy.h"
#include "src/qs/queuing_system.h"
#include "src/qs/swf.h"
#include "src/qs/workload_generator.h"
#include "src/rm/equipartition.h"
#include "src/workload/catalog.h"

namespace pdpa {
namespace {

TEST(SwfTest, RoundTripPreservesJobs) {
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 10; ++i) {
    JobSpec spec;
    spec.id = i;
    spec.app_class = static_cast<AppClass>(i % kNumAppClasses);
    spec.submit = i * 7 * kSecond;
    spec.request = 2 + i;
    jobs.push_back(spec);
  }
  std::ostringstream out;
  EXPECT_EQ(WriteSwf(jobs, out, "test"), 10);

  std::istringstream in(out.str());
  std::vector<JobSpec> parsed;
  std::string error;
  ASSERT_TRUE(ReadSwf(in, &parsed, &error)) << error;
  ASSERT_EQ(parsed.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(parsed[i].id, jobs[i].id);
    EXPECT_EQ(parsed[i].app_class, jobs[i].app_class);
    EXPECT_EQ(parsed[i].submit, jobs[i].submit);
    EXPECT_EQ(parsed[i].request, jobs[i].request);
  }
}

TEST(SwfTest, CommentsAndBlankLinesSkipped) {
  std::istringstream in(
      "; a comment\n"
      "\n"
      "0 10 -1 -1 -1 -1 -1 30 -1 -1 -1 -1 -1 2 -1 -1 -1 -1\n");
  std::vector<JobSpec> jobs;
  ASSERT_TRUE(ReadSwf(in, &jobs, nullptr));
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].app_class, AppClass::kBt);
  EXPECT_EQ(jobs[0].submit, 10 * kSecond);
}

TEST(SwfTest, MalformedLinesRejectedWithError) {
  std::vector<JobSpec> jobs;
  std::string error;
  std::istringstream short_line("0 10 -1\n");
  EXPECT_FALSE(ReadSwf(short_line, &jobs, &error));
  EXPECT_NE(error.find("18 fields"), std::string::npos);

  std::istringstream bad_class("0 10 -1 -1 -1 -1 -1 30 -1 -1 -1 -1 -1 9 -1 -1 -1 -1\n");
  EXPECT_FALSE(ReadSwf(bad_class, &jobs, &error));
  EXPECT_NE(error.find("executable"), std::string::npos);

  std::istringstream bad_number("x 10 -1 -1 -1 -1 -1 30 -1 -1 -1 -1 -1 2 -1 -1 -1 -1\n");
  EXPECT_FALSE(ReadSwf(bad_number, &jobs, &error));
}

TEST(SwfTest, MissingRequestFallsBackToProfileDefault) {
  std::istringstream in("0 10 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 4 -1 -1 -1 -1\n");
  std::vector<JobSpec> jobs;
  ASSERT_TRUE(ReadSwf(in, &jobs, nullptr));
  EXPECT_EQ(jobs[0].request, MakeApsiProfile().default_request);
}

TEST(WorkloadGeneratorTest, DeterministicForSeed) {
  WorkloadGenSpec spec;
  spec.load_share = {0.5, 0.5, 0.0, 0.0};
  spec.load = 1.0;
  spec.seed = 77;
  const auto a = GenerateWorkload(spec);
  const auto b = GenerateWorkload(spec);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].submit, b[i].submit);
    EXPECT_EQ(a[i].app_class, b[i].app_class);
  }
  spec.seed = 78;
  const auto c = GenerateWorkload(spec);
  EXPECT_TRUE(c.size() != a.size() || c[0].submit != a[0].submit);
}

TEST(WorkloadGeneratorTest, LoadCalibrationIsClose) {
  WorkloadGenSpec spec;
  spec.load_share = {0.25, 0.25, 0.25, 0.25};
  spec.load = 0.8;
  spec.window = 3000 * kSecond;  // long window for tight statistics
  spec.seed = 3;
  const auto jobs = GenerateWorkload(spec);
  const double load = EstimateLoad(jobs, spec.num_cpus, spec.window);
  EXPECT_NEAR(load, 0.8, 0.1);
}

TEST(WorkloadGeneratorTest, ClassSharesMatchTable1) {
  WorkloadGenSpec spec;
  spec.load_share = {0.0, 0.5, 0.0, 0.5};  // w3
  spec.load = 1.0;
  spec.window = 10000 * kSecond;
  spec.seed = 9;
  const auto jobs = GenerateWorkload(spec);
  double demand_bt = 0.0;
  double demand_apsi = 0.0;
  for (const JobSpec& job : jobs) {
    const AppProfile profile = MakeProfile(job.app_class);
    const double demand = profile.IdealExecSeconds(job.request) * job.request;
    if (job.app_class == AppClass::kBt) {
      demand_bt += demand;
    } else {
      ASSERT_EQ(job.app_class, AppClass::kApsi);
      demand_apsi += demand;
    }
  }
  EXPECT_NEAR(demand_bt / (demand_bt + demand_apsi), 0.5, 0.06);
}

TEST(WorkloadGeneratorTest, UntunedOverridesRequestButNotArrivals) {
  const auto tuned = BuildWorkload(WorkloadId::kW3, 0.6, 42, /*untuned=*/false);
  const auto untuned = BuildWorkload(WorkloadId::kW3, 0.6, 42, /*untuned=*/true);
  ASSERT_EQ(tuned.size(), untuned.size());
  for (std::size_t i = 0; i < tuned.size(); ++i) {
    EXPECT_EQ(tuned[i].submit, untuned[i].submit);  // same trace
    EXPECT_EQ(tuned[i].app_class, untuned[i].app_class);
    EXPECT_EQ(untuned[i].request, 30);
  }
}

TEST(WorkloadCatalogTest, SharesMatchTable1) {
  const auto w1 = WorkloadShares(WorkloadId::kW1);
  EXPECT_DOUBLE_EQ(w1[0], 0.5);
  EXPECT_DOUBLE_EQ(w1[1], 0.5);
  EXPECT_DOUBLE_EQ(w1[2], 0.0);
  const auto w4 = WorkloadShares(WorkloadId::kW4);
  for (double share : w4) {
    EXPECT_DOUBLE_EQ(share, 0.25);
  }
}

ResourceManager::Params SmallRmParams() {
  ResourceManager::Params params;
  params.num_cpus = 8;
  params.analyzer.noise_sigma = 0.0;
  params.app_costs.reconfig_freeze = 0;
  params.app_costs.warmup = 0;
  return params;
}

TEST(QueuingSystemTest, FcfsWithFixedMl) {
  Simulation sim;
  ResourceManager rm(SmallRmParams(), std::make_unique<Equipartition>(2), &sim, nullptr, Rng(1));
  // Three jobs submitted at once; ML=2 means the third must wait.
  std::vector<JobSpec> specs;
  for (int i = 0; i < 3; ++i) {
    JobSpec spec;
    spec.id = i;
    spec.app_class = AppClass::kBt;
    spec.submit = 0;
    spec.request = 4;
    specs.push_back(spec);
  }
  // Swap in the tiny profile via request override path: the QS uses the
  // catalog profile, so instead run with the real bt profile but scaled
  // loads -- simpler: just verify ordering and ML enforcement.
  rm.Start();
  QueuingSystem qs(&sim, &rm, specs);
  qs.Start();
  sim.RunUntil(kSecond);
  EXPECT_EQ(qs.running(), 2);
  EXPECT_EQ(qs.queued(), 1);
  EXPECT_EQ(qs.max_ml(), 2);
  sim.RunUntil(3600 * kSecond);
  EXPECT_TRUE(qs.AllJobsDone());
  // FCFS: job 2 started only after one of 0/1 finished.
  const auto& outcomes = qs.outcomes();
  ASSERT_EQ(outcomes.size(), 3u);
  SimTime first_finish = 0;
  SimTime job2_start = 0;
  for (const JobOutcome& outcome : outcomes) {
    if (outcome.id != 2) {
      first_finish = first_finish == 0 ? outcome.finish : std::min(first_finish, outcome.finish);
    } else {
      job2_start = outcome.start;
    }
  }
  EXPECT_GE(job2_start, first_finish);
}

TEST(QueuingSystemTest, OutcomesCarryTimes) {
  Simulation sim;
  ResourceManager rm(SmallRmParams(), std::make_unique<Equipartition>(4), &sim, nullptr, Rng(1));
  JobSpec spec;
  spec.id = 0;
  spec.app_class = AppClass::kApsi;
  spec.submit = 5 * kSecond;
  spec.request = 2;
  rm.Start();
  QueuingSystem qs(&sim, &rm, {spec});
  qs.Start();
  sim.RunUntil(3600 * kSecond);
  ASSERT_TRUE(qs.AllJobsDone());
  const JobOutcome& outcome = qs.outcomes()[0];
  EXPECT_EQ(outcome.submit, 5 * kSecond);
  EXPECT_GE(outcome.start, outcome.submit);
  EXPECT_GT(outcome.finish, outcome.start);
  EXPECT_NEAR(outcome.ResponseSeconds(),
              outcome.WaitSeconds() + outcome.ExecSeconds(), 1e-9);
}

TEST(QueuingSystemTest, ShortestDemandFirstReordersQueue) {
  Simulation sim;
  ResourceManager rm(SmallRmParams(), std::make_unique<Equipartition>(1), &sim, nullptr, Rng(1));
  // Submit a long bt first and a short apsi second, both queued behind a
  // running job. With SJF ordering the apsi must start before the bt.
  std::vector<JobSpec> specs;
  JobSpec running;
  running.id = 0;
  running.app_class = AppClass::kApsi;
  running.submit = 0;
  running.request = 2;
  JobSpec long_job;
  long_job.id = 1;
  long_job.app_class = AppClass::kBt;
  long_job.submit = kSecond;
  long_job.request = 8;
  JobSpec short_job;
  short_job.id = 2;
  short_job.app_class = AppClass::kApsi;
  short_job.submit = 2 * kSecond;
  short_job.request = 2;
  specs = {running, long_job, short_job};

  rm.Start();
  QueuingSystem qs(&sim, &rm, specs, QueueOrder::kShortestDemandFirst);
  qs.Start();
  sim.RunUntil(4 * 3600 * kSecond);
  ASSERT_TRUE(qs.AllJobsDone());
  SimTime start_long = 0;
  SimTime start_short = 0;
  for (const JobOutcome& outcome : qs.outcomes()) {
    if (outcome.id == 1) {
      start_long = outcome.start;
    } else if (outcome.id == 2) {
      start_short = outcome.start;
    }
  }
  EXPECT_LT(start_short, start_long);
}

TEST(QueuingSystemTest, MlTimelineRecordsStartsAndFinishes) {
  Simulation sim;
  ResourceManager rm(SmallRmParams(), std::make_unique<Equipartition>(4), &sim, nullptr, Rng(1));
  std::vector<JobSpec> specs;
  for (int i = 0; i < 2; ++i) {
    JobSpec spec;
    spec.id = i;
    spec.app_class = AppClass::kApsi;
    spec.submit = i * kSecond;
    spec.request = 2;
    specs.push_back(spec);
  }
  rm.Start();
  QueuingSystem qs(&sim, &rm, specs);
  qs.Start();
  sim.RunUntil(3600 * kSecond);
  ASSERT_TRUE(qs.AllJobsDone());
  const auto& timeline = qs.ml_timeline();
  ASSERT_EQ(timeline.size(), 4u);  // 2 starts + 2 finishes
  EXPECT_EQ(timeline.back().second, 0);
}

}  // namespace
}  // namespace pdpa
