// Tests for the baseline scheduling policies: Equipartition,
// Equal_efficiency and the IRIX time-sharing model.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/pdpa_policy.h"
#include "src/machine/machine.h"
#include "src/rm/equal_efficiency.h"
#include "src/rm/equipartition.h"
#include "src/rm/irix.h"
#include "src/rm/mccann_dynamic.h"

namespace pdpa {
namespace {

PolicyContext MakeContext(std::vector<std::pair<JobId, int>> jobs_requests, int total_cpus = 60,
                          int free_cpus = 0) {
  PolicyContext ctx;
  ctx.total_cpus = total_cpus;
  ctx.free_cpus = free_cpus;
  for (const auto& [id, request] : jobs_requests) {
    PolicyJobInfo info;
    info.id = id;
    info.request = request;
    ctx.jobs.push_back(info);
  }
  return ctx;
}

TEST(EquipartitionTest, EqualSplitTwoBigJobs) {
  const auto plan = Equipartition::EqualSplit(MakeContext({{1, 30}, {2, 30}}));
  EXPECT_EQ(plan.at(1), 30);
  EXPECT_EQ(plan.at(2), 30);
}

TEST(EquipartitionTest, EqualSplitFourBigJobs) {
  const auto plan = Equipartition::EqualSplit(MakeContext({{1, 30}, {2, 30}, {3, 30}, {4, 30}}));
  for (JobId j = 1; j <= 4; ++j) {
    EXPECT_EQ(plan.at(j), 15);
  }
}

TEST(EquipartitionTest, SmallRequestCappedAndLeftoverRedistributed) {
  // apsi requests 2: its leftover share goes to the others.
  const auto plan = Equipartition::EqualSplit(MakeContext({{1, 30}, {2, 2}, {3, 30}}));
  EXPECT_EQ(plan.at(2), 2);
  EXPECT_EQ(plan.at(1) + plan.at(3), 58);
  EXPECT_LE(plan.at(1), 30);
  EXPECT_LE(plan.at(3), 30);
}

TEST(EquipartitionTest, UnevenRemainderDistributedDeterministically) {
  const auto plan = Equipartition::EqualSplit(MakeContext({{1, 30}, {2, 30}, {3, 30}, {4, 30},
                                                           {5, 30}, {6, 30}, {7, 30}}));
  // 60 / 7 = 8 remainder 4: first four jobs get 9.
  int total = 0;
  for (const auto& [job, count] : plan) {
    total += count;
    EXPECT_GE(count, 8);
    EXPECT_LE(count, 9);
  }
  EXPECT_EQ(total, 60);
}

TEST(EquipartitionTest, AdmissionIsFixedMl) {
  Equipartition policy(4);
  EXPECT_TRUE(policy.ShouldAdmit(MakeContext({{1, 30}, {2, 30}, {3, 30}})));
  EXPECT_FALSE(policy.ShouldAdmit(MakeContext({{1, 30}, {2, 30}, {3, 30}, {4, 30}})));
}

TEST(EquipartitionTest, ReallocatesOnlyAtArrivalAndCompletion) {
  Equipartition policy(4);
  PolicyContext ctx = MakeContext({{1, 30}, {2, 30}});
  EXPECT_FALSE(policy.OnJobStart(ctx, 2).empty());
  EXPECT_FALSE(policy.OnJobFinish(ctx, 3).empty());
  PerfReport report;
  report.job = 1;
  EXPECT_TRUE(policy.OnReport(ctx, report).empty());
  EXPECT_TRUE(policy.OnQuantum(ctx).empty());
}

TEST(EqualEfficiencyTest, UnknownJobAssumedLinear) {
  EqualEfficiency policy;
  PolicyContext ctx = MakeContext({{1, 30}});
  (void)policy.OnJobStart(ctx, 1);
  EXPECT_DOUBLE_EQ(policy.ExtrapolatedSpeedup(1, 10), 10.0);
}

TEST(EqualEfficiencyTest, ExtrapolatesPowerLawFromTwoSamples) {
  EqualEfficiency policy;
  PolicyContext ctx = MakeContext({{1, 30}});
  (void)policy.OnJobStart(ctx, 1);
  PerfReport report;
  report.job = 1;
  report.procs = 4;
  report.speedup = 4.0;
  (void)policy.OnReport(ctx, report);
  report.procs = 16;
  report.speedup = 8.0;  // alpha = log(2)/log(4) = 0.5
  (void)policy.OnReport(ctx, report);
  EXPECT_NEAR(policy.ExtrapolatedSpeedup(1, 64), 16.0, 0.01);
  EXPECT_NEAR(policy.ExtrapolatedSpeedup(1, 4), 4.0, 0.01);
}

TEST(EqualEfficiencyTest, MostEfficientJobGetsMoreProcessors) {
  EqualEfficiency policy;
  // Capacity below the sum of requests so the split is contested.
  PolicyContext ctx = MakeContext({{1, 30}, {2, 30}}, /*total_cpus=*/40);
  (void)policy.OnJobStart(ctx, 1);
  (void)policy.OnJobStart(ctx, 2);
  // Job 1 scales (alpha ~1), job 2 does not (alpha ~0.1).
  PerfReport r;
  r.job = 1;
  r.procs = 4;
  r.speedup = 3.9;
  (void)policy.OnReport(ctx, r);
  r.procs = 8;
  r.speedup = 7.8;
  (void)policy.OnReport(ctx, r);
  r.job = 2;
  r.procs = 4;
  r.speedup = 1.3;
  (void)policy.OnReport(ctx, r);
  r.procs = 8;
  r.speedup = 1.4;
  const AllocationPlan plan = policy.OnReport(ctx, r);
  EXPECT_GT(plan.at(1), plan.at(2));
  EXPECT_EQ(plan.at(1) + plan.at(2), 40);
  EXPECT_LE(plan.at(1), 30);
}

TEST(EqualEfficiencyTest, PlanRespectsRequestsAndFloor) {
  EqualEfficiency policy;
  PolicyContext ctx = MakeContext({{1, 2}, {2, 30}});
  (void)policy.OnJobStart(ctx, 1);
  (void)policy.OnJobStart(ctx, 2);
  const AllocationPlan plan = policy.OnQuantum(ctx);
  EXPECT_GE(plan.at(1), 1);
  EXPECT_LE(plan.at(1), 2);
  EXPECT_GE(plan.at(2), 1);
  EXPECT_LE(plan.at(2), 30);
}

TEST(EqualEfficiencyTest, NoiseCausesAllocationVariance) {
  // The paper's complaint: small measurement changes produce large
  // reallocation swings. Two jobs with identical true curves but noisy
  // samples should receive meaningfully different allocations over time.
  EqualEfficiency policy;
  PolicyContext ctx = MakeContext({{1, 30}, {2, 30}}, /*total_cpus=*/40);
  (void)policy.OnJobStart(ctx, 1);
  (void)policy.OnJobStart(ctx, 2);
  Rng rng(5);
  int min_alloc = 60;
  int max_alloc = 0;
  for (int i = 0; i < 50; ++i) {
    for (JobId job : {1, 2}) {
      PerfReport r;
      r.job = job;
      r.procs = 8 + (i % 3) * 4;
      r.speedup = r.procs * 0.8 * rng.Uniform(0.95, 1.05);
      const AllocationPlan plan = policy.OnReport(ctx, r);
      min_alloc = std::min(min_alloc, plan.at(1));
      max_alloc = std::max(max_alloc, plan.at(1));
    }
  }
  EXPECT_GT(max_alloc - min_alloc, 4) << "expected allocation jitter under noise";
}

TEST(IrixTest, ThreadsFollowJobLifecycle) {
  IrixTimeShare policy(IrixTimeShare::Params{}, Rng(1));
  Machine machine(8);
  PolicyContext ctx = MakeContext({{1, 4}}, 8);
  (void)policy.OnJobStart(ctx, 1);
  std::vector<CpuHandoff> handoffs;
  auto shares = policy.TimeShareTick(machine, ctx, 20 * kMillisecond, &handoffs);
  EXPECT_DOUBLE_EQ(shares.at(1).effective_procs, 4.0);
  EXPECT_EQ(machine.CountOf(1), 4);
  (void)policy.OnJobFinish(MakeContext({}, 8), 1);
  shares = policy.TimeShareTick(machine, MakeContext({}, 8), 20 * kMillisecond, &handoffs);
  EXPECT_TRUE(shares.empty());
  EXPECT_EQ(machine.FreeCpus(), 8);
}

TEST(IrixTest, UndercommittedRunsEverythingWithoutOverhead) {
  IrixTimeShare policy(IrixTimeShare::Params{}, Rng(1));
  Machine machine(16);
  PolicyContext ctx = MakeContext({{1, 4}, {2, 4}}, 16);
  (void)policy.OnJobStart(ctx, 1);
  (void)policy.OnJobStart(ctx, 2);
  std::vector<CpuHandoff> handoffs;
  const auto shares = policy.TimeShareTick(machine, ctx, 20 * kMillisecond, &handoffs);
  EXPECT_DOUBLE_EQ(shares.at(1).effective_procs, 4.0);
  EXPECT_DOUBLE_EQ(shares.at(2).effective_procs, 4.0);
  EXPECT_NEAR(shares.at(1).overhead, 1.0, 1e-9);
}

TEST(IrixTest, OvercommitSharesCpusAndDegrades) {
  IrixTimeShare policy(IrixTimeShare::Params{}, Rng(1));
  Machine machine(8);
  PolicyContext ctx = MakeContext({{1, 8}, {2, 8}}, 8);
  (void)policy.OnJobStart(ctx, 1);
  (void)policy.OnJobStart(ctx, 2);
  std::vector<CpuHandoff> handoffs;
  double total_eff_procs = 0.0;
  double min_overhead = 1.0;
  for (int tick = 0; tick < 200; ++tick) {
    const auto shares = policy.TimeShareTick(machine, ctx, 20 * kMillisecond, &handoffs);
    total_eff_procs += shares.at(1).effective_procs + shares.at(2).effective_procs;
    min_overhead = std::min(min_overhead, shares.at(1).overhead);
  }
  // All 8 CPUs are always busy, split between the jobs...
  EXPECT_NEAR(total_eff_procs / 200.0, 8.0, 1e-9);
  // ...and contention overhead applies (2x overcommit).
  EXPECT_LT(min_overhead, 0.8);
}

TEST(IrixTest, TimeSlicingCausesMigrations) {
  IrixTimeShare policy(IrixTimeShare::Params{}, Rng(1));
  Machine machine(8);
  PolicyContext ctx = MakeContext({{1, 8}, {2, 8}}, 8);
  (void)policy.OnJobStart(ctx, 1);
  (void)policy.OnJobStart(ctx, 2);
  std::vector<CpuHandoff> handoffs;
  for (int tick = 0; tick < 500; ++tick) {
    (void)policy.TimeShareTick(machine, ctx, 20 * kMillisecond, &handoffs);
  }
  EXPECT_GT(policy.total_thread_migrations(), 20);
}

TEST(IrixTest, OmpDynamicDriftsThreadCountsTowardFairShare) {
  IrixTimeShare::Params params;
  params.omp_dynamic = true;
  params.omp_adjust_period = 100 * kMillisecond;  // fast, for the test
  params.omp_adjust_step = 2;
  params.omp_min_fraction = 0.5;  // floor 8 = the fair share
  IrixTimeShare policy(params, Rng(1));
  Machine machine(16);
  PolicyContext ctx = MakeContext({{1, 16}, {2, 16}}, 16);
  (void)policy.OnJobStart(ctx, 1);
  (void)policy.OnJobStart(ctx, 2);
  EXPECT_EQ(policy.ThreadCountOf(1), 16);
  std::vector<CpuHandoff> handoffs;
  for (int tick = 0; tick < 200; ++tick) {
    (void)policy.TimeShareTick(machine, ctx, 20 * kMillisecond, &handoffs);
  }
  // Fair share is 8 per job: both teams must have drifted down to it.
  EXPECT_EQ(policy.ThreadCountOf(1), 8);
  EXPECT_EQ(policy.ThreadCountOf(2), 8);
}

TEST(IrixTest, OmpDynamicDisabledKeepsRequestThreads) {
  IrixTimeShare::Params params;
  params.omp_dynamic = false;
  IrixTimeShare policy(params, Rng(1));
  Machine machine(16);
  PolicyContext ctx = MakeContext({{1, 16}, {2, 16}}, 16);
  (void)policy.OnJobStart(ctx, 1);
  (void)policy.OnJobStart(ctx, 2);
  std::vector<CpuHandoff> handoffs;
  for (int tick = 0; tick < 200; ++tick) {
    (void)policy.TimeShareTick(machine, ctx, 20 * kMillisecond, &handoffs);
  }
  EXPECT_EQ(policy.ThreadCountOf(1), 16);
  EXPECT_EQ(policy.ThreadCountOf(2), 16);
}

TEST(IrixTest, IsTimeSharingAndFixedMl) {
  IrixTimeShare policy(IrixTimeShare::Params{}, Rng(1));
  EXPECT_TRUE(policy.is_time_sharing());
  EXPECT_TRUE(policy.ShouldAdmit(MakeContext({{1, 8}})));
  EXPECT_FALSE(policy.ShouldAdmit(MakeContext({{1, 8}, {2, 8}, {3, 8}, {4, 8}})));
}

TEST(McCannDynamicTest, UnknownJobsSplitLikeEquipartition) {
  McCannDynamic policy;
  const AllocationPlan plan =
      policy.OnQuantum(MakeContext({{1, 30}, {2, 30}, {3, 30}, {4, 30}}));
  for (JobId j = 1; j <= 4; ++j) {
    EXPECT_EQ(plan.at(j), 15);
  }
}

TEST(McCannDynamicTest, IdlenessReportMovesProcessorsImmediately) {
  McCannDynamic policy;
  PolicyContext ctx = MakeContext({{1, 30}, {2, 30}});
  (void)policy.OnJobStart(ctx, 1);
  (void)policy.OnJobStart(ctx, 2);
  // Job 2 reports 50% idleness at 30 processors: useful ~ 15+1.
  PerfReport report;
  report.job = 2;
  report.procs = 30;
  report.speedup = 15.0;
  report.efficiency = 0.5;
  const AllocationPlan plan = policy.OnReport(ctx, report);
  EXPECT_EQ(plan.at(2), 16);
  EXPECT_EQ(plan.at(1), 30);  // the freed processors flow to job 1
}

TEST(McCannDynamicTest, FinishForgetsJobState) {
  McCannDynamic policy;
  PolicyContext ctx = MakeContext({{1, 30}, {2, 30}});
  PerfReport report;
  report.job = 2;
  report.procs = 30;
  report.speedup = 3.0;
  report.efficiency = 0.1;
  (void)policy.OnReport(ctx, report);
  // Job 2 finishes and a new job reuses the id: it must start uncapped.
  (void)policy.OnJobFinish(MakeContext({{1, 30}}), 2);
  const AllocationPlan plan = policy.OnQuantum(MakeContext({{1, 30}, {2, 30}}));
  EXPECT_EQ(plan.at(2), 30);
}

TEST(McCannDynamicTest, PlanNeverBelowOneProcessor) {
  McCannDynamic policy;
  PolicyContext ctx = MakeContext({{1, 30}, {2, 30}});
  PerfReport report;
  report.job = 1;
  report.procs = 30;
  report.speedup = 0.1;
  report.efficiency = 0.003;
  const AllocationPlan plan = policy.OnReport(ctx, report);
  EXPECT_GE(plan.at(1), 1);
}

TEST(IrixTest, ThreadReclaimsItsCpuAfterWaiting) {
  // Undercommitted after a transient: a thread that ran on cpu k and waited
  // one slice must come back to cpu k (affinity), not migrate.
  IrixTimeShare::Params params;
  params.affinity_bonus = 0;  // force alternation every tick
  params.vruntime_jitter = 0.0;
  IrixTimeShare policy(params, Rng(1));
  Machine machine(2);
  PolicyContext ctx = MakeContext({{1, 2}, {2, 2}}, 2);
  (void)policy.OnJobStart(ctx, 1);
  (void)policy.OnJobStart(ctx, 2);
  std::vector<CpuHandoff> handoffs;
  const long long before = policy.total_thread_migrations();
  for (int tick = 0; tick < 50; ++tick) {
    (void)policy.TimeShareTick(machine, ctx, 20 * kMillisecond, &handoffs);
  }
  // With zero jitter the two gangs alternate cleanly: after the initial
  // placements each thread returns to its own cpu, so migrations stay tiny.
  EXPECT_LE(policy.total_thread_migrations() - before, 4);
}

TEST(SpaceSharingPolicyDeathTest, TimeShareTickForbidden) {
  Equipartition policy(4);
  Machine machine(4);
  PolicyContext ctx = MakeContext({}, 4);
  EXPECT_DEATH(policy.TimeShareTick(machine, ctx, 1000, nullptr), "Check failed");
}

TEST(PdpaPolicyTest, LifecyclePlumbing) {
  PdpaPolicy policy(PdpaParams{}, PdpaMlParams{});
  PolicyContext ctx = MakeContext({{1, 30}}, 60, 60);
  AllocationPlan plan = policy.OnJobStart(ctx, 1);
  EXPECT_EQ(plan.at(1), 30);
  ASSERT_NE(policy.AutomatonFor(1), nullptr);
  EXPECT_EQ(policy.AutomatonFor(1)->state(), PdpaState::kNoRef);

  ctx.jobs[0].alloc = 30;
  ctx.free_cpus = 30;
  PerfReport report;
  report.job = 1;
  report.procs = 30;
  report.speedup = 24.0;  // eff 0.8 -> STABLE, no change
  plan = policy.OnReport(ctx, report);
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(policy.AutomatonFor(1)->state(), PdpaState::kStable);

  plan = policy.OnJobFinish(MakeContext({{1, 30}}, 60, 30), 99);
  EXPECT_EQ(policy.AutomatonFor(99), nullptr);
}

TEST(PdpaPolicyTest, OnJobFinishRedistributesToEfficientStableJobs) {
  PdpaPolicy policy(PdpaParams{}, PdpaMlParams{});
  PolicyContext ctx = MakeContext({{1, 30}}, 60, 8);
  (void)policy.OnJobStart(ctx, 1);  // alloc 8
  PerfReport report;
  report.job = 1;
  report.procs = 8;
  report.speedup = 7.8;  // eff 0.97 but free=0 at report time -> STABLE
  ctx.free_cpus = 0;
  (void)policy.OnReport(ctx, report);
  ASSERT_EQ(policy.AutomatonFor(1)->state(), PdpaState::kStable);
  // Another job finished; 12 processors free.
  const AllocationPlan plan = policy.OnJobFinish(MakeContext({{1, 30}}, 60, 12), 2);
  ASSERT_TRUE(plan.contains(1));
  EXPECT_EQ(plan.at(1), 12);
  EXPECT_EQ(policy.AutomatonFor(1)->state(), PdpaState::kInc);
}

TEST(PdpaPolicyTest, AdmissionRequiresFreeCpu) {
  PdpaPolicy policy(PdpaParams{}, PdpaMlParams{});
  EXPECT_FALSE(policy.ShouldAdmit(MakeContext({{1, 30}}, 60, 0)));
  EXPECT_TRUE(policy.ShouldAdmit(MakeContext({{1, 30}}, 60, 5)));
}

}  // namespace
}  // namespace pdpa
