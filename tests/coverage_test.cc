// Edge-case coverage across modules: boundaries, error paths, and
// secondary behaviors not exercised by the main suites.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "src/app/application.h"
#include "src/common/rng.h"
#include "src/rm/equal_efficiency.h"
#include "src/runtime/self_analyzer.h"
#include "src/sim/event_queue.h"
#include "src/trace/ascii_view.h"
#include "src/workload/catalog.h"

namespace pdpa {
namespace {

// --- Event queue stress -------------------------------------------------

TEST(EventQueueStressTest, ThousandsOfInterleavedSchedulesAndCancels) {
  EventQueue queue;
  Rng rng(999);
  long long fired = 0;
  long long cancelled = 0;
  std::vector<EventId> pending;
  SimTime now = 0;
  for (int round = 0; round < 5000; ++round) {
    const int action = rng.UniformInt(0, 2);
    if (action <= 1) {  // schedule (biased)
      pending.push_back(queue.Schedule(now + rng.UniformInt(1, 1000), [&] { ++fired; }));
    } else if (!pending.empty()) {
      const std::size_t index =
          static_cast<std::size_t>(rng.UniformInt(0, static_cast<int>(pending.size()) - 1));
      if (queue.Cancel(pending[index])) {
        ++cancelled;
      }
      pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(index));
    }
    if (!queue.empty() && rng.UniformInt(0, 3) == 0) {
      now = queue.RunNext();
      // The fired event is gone from `pending` tracking only lazily; that
      // is fine — we only assert aggregate conservation below.
    }
  }
  while (!queue.empty()) {
    now = queue.RunNext();
  }
  // Every scheduled event either fired or was cancelled... minus the ones
  // we "cancelled" after they already fired (the stress test may do that);
  // so the invariant is an inequality both ways within the cancel slack.
  EXPECT_GT(fired, 1000);
  EXPECT_GT(cancelled, 100);
}

TEST(EventQueueStressTest, DispatchTimesAreMonotone) {
  EventQueue queue;
  Rng rng(4242);
  for (int i = 0; i < 2000; ++i) {
    queue.Schedule(rng.UniformInt(0, 100000), [] {});
  }
  SimTime prev = -1;
  while (!queue.empty()) {
    const SimTime t = queue.RunNext();
    EXPECT_GE(t, prev);
    prev = t;
  }
}

// --- Equal_efficiency model internals ------------------------------------

TEST(EqualEfficiencyModelTest, HistoryEvictsOldestSamples) {
  EqualEfficiency::Params params;
  params.history = 2;
  EqualEfficiency policy(params);
  PolicyContext ctx;
  ctx.total_cpus = 16;
  PolicyJobInfo info;
  info.id = 1;
  info.request = 16;
  ctx.jobs.push_back(info);
  (void)policy.OnJobStart(ctx, 1);
  PerfReport r;
  r.job = 1;
  // Three samples; with history=2 the first (4, 4.0) must be forgotten, so
  // the fit uses (8, 4.4) and (12, 4.8) — a nearly flat curve.
  r.procs = 4;
  r.speedup = 4.0;
  (void)policy.OnReport(ctx, r);
  r.procs = 8;
  r.speedup = 4.4;
  (void)policy.OnReport(ctx, r);
  r.procs = 12;
  r.speedup = 4.8;
  (void)policy.OnReport(ctx, r);
  // Extrapolating back to 4 with the flat fit gives ~3.7, NOT the actually
  // measured 4.0 (which is out of the window).
  EXPECT_LT(policy.ExtrapolatedSpeedup(1, 4), 3.9);
  EXPECT_GT(policy.ExtrapolatedSpeedup(1, 4), 3.2);
}

TEST(EqualEfficiencyModelTest, AlphaClampPreventsWildExtrapolation) {
  EqualEfficiency::Params params;
  params.max_alpha = 1.0;
  EqualEfficiency policy(params);
  PolicyContext ctx;
  ctx.total_cpus = 64;
  PolicyJobInfo info;
  info.id = 1;
  info.request = 64;
  ctx.jobs.push_back(info);
  (void)policy.OnJobStart(ctx, 1);
  PerfReport r;
  r.job = 1;
  // A (noisy) superlinear pair: alpha would fit > 1 without the clamp.
  r.procs = 4;
  r.speedup = 4.0;
  (void)policy.OnReport(ctx, r);
  r.procs = 8;
  r.speedup = 10.0;
  (void)policy.OnReport(ctx, r);
  // With alpha clamped to 1, S(64) <= 10 * (64/8) = 80.
  EXPECT_LE(policy.ExtrapolatedSpeedup(1, 64), 80.0 + 1e-9);
}

// --- SelfAnalyzer secondary behaviors -------------------------------------

TEST(SelfAnalyzerCoverageTest, MeasureWindowAveragesIterations) {
  AppProfile profile = AppProfileBuilder("win")
                           .WithCurve({{1, 1.0}, {32, 32.0}})
                           .WithWork(40.0)
                           .WithIterations(40)
                           .WithBaselineProcs(1)
                           .Build();
  AppCosts costs;
  costs.reconfig_freeze = 0;
  costs.warmup = 0;
  Application app(1, profile, costs);
  SelfAnalyzerParams params;
  params.noise_sigma = 0.0;
  params.amdahl_factor = 1.0;
  params.baseline_iterations = 1;
  params.measure_iterations = 3;  // window of 3
  SelfAnalyzer analyzer(&app, params, Rng(1));
  int reports = 0;
  analyzer.set_report_callback([&](const PerfReport&) { ++reports; });
  app.set_iteration_callback(
      [&](const IterationRecord& r) { analyzer.OnIteration(r, r.end_time); });
  app.SetAllocation(8, 0);
  analyzer.OnJobStart(0);
  app.Start(0);
  for (SimTime t = 0; t < 3 * kSecond; t += 20 * kMillisecond) {
    app.Advance(t, 20 * kMillisecond);
  }
  // Iterations completed at 8 procs: baseline 1 at 1 proc (1 s), then
  // ~16 iterations at 8 procs in the ~2 s left -> about 5 reports, far
  // fewer than iterations.
  EXPECT_GT(reports, 2);
  EXPECT_LT(reports, 8);
}

// --- ASCII view options ------------------------------------------------------

TEST(AsciiViewCoverageTest, DecimatesColumnsAndStridesCpus) {
  TraceRecorder recorder(8, 10 * kMillisecond);
  recorder.OnHandoff(0, CpuHandoff{0, kIdleJob, 0});
  for (SimTime t = 0; t <= 10 * kSecond; t += 10 * kMillisecond) {
    recorder.Tick(t);
  }
  AsciiViewOptions options;
  options.max_columns = 20;
  options.cpu_stride = 4;
  const std::string view = RenderAsciiView(recorder, options);
  // Two CPU rows (0 and 4), each at most ~20+1 columns wide.
  EXPECT_NE(view.find("cpu  0"), std::string::npos);
  EXPECT_NE(view.find("cpu  4"), std::string::npos);
  EXPECT_EQ(view.find("cpu  1"), std::string::npos);
  std::istringstream lines(view);
  std::string line;
  std::getline(lines, line);  // header
  while (std::getline(lines, line)) {
    EXPECT_LE(line.size(), 35u) << line;
  }
}

// --- Catalog / profile misc ---------------------------------------------------

TEST(CatalogCoverageTest, ClassNamesAndProfileFactories) {
  EXPECT_STREQ(AppClassName(AppClass::kSwim), "swim");
  EXPECT_STREQ(AppClassName(AppClass::kBt), "bt.A");
  EXPECT_STREQ(AppClassName(AppClass::kHydro2d), "hydro2d");
  EXPECT_STREQ(AppClassName(AppClass::kApsi), "apsi");
  for (int c = 0; c < kNumAppClasses; ++c) {
    const AppProfile profile = MakeProfile(static_cast<AppClass>(c));
    EXPECT_FALSE(profile.name.empty());
    EXPECT_GT(profile.sequential_work_s, 0.0);
    EXPECT_GE(profile.baseline_procs, 1);
    EXPECT_LE(profile.baseline_procs, profile.default_request);
  }
}

TEST(CatalogCoverageTest, WorkloadNamesDistinct) {
  std::set<std::string> names;
  for (WorkloadId id :
       {WorkloadId::kW1, WorkloadId::kW2, WorkloadId::kW3, WorkloadId::kW4}) {
    names.insert(WorkloadName(id));
  }
  EXPECT_EQ(names.size(), 4u);
}

// --- Application: iteration callback replacement / progress bounds ------------

TEST(ApplicationCoverageTest, ProgressNeverExceedsTotalWork) {
  AppProfile profile = AppProfileBuilder("cap")
                           .WithCurve({{1, 1.0}, {8, 8.0}})
                           .WithWork(2.0)
                           .WithIterations(4)
                           .Build();
  AppCosts costs;
  costs.reconfig_freeze = 0;
  costs.warmup = 0;
  Application app(1, profile, costs);
  app.SetAllocation(8, 0);
  app.Start(0);
  app.Advance(0, 10 * kSecond);  // far more than needed
  EXPECT_TRUE(app.finished());
  EXPECT_DOUBLE_EQ(app.progress_s(), 2.0);
  // Advancing a finished application is a no-op.
  app.Advance(10 * kSecond, kSecond);
  EXPECT_DOUBLE_EQ(app.progress_s(), 2.0);
}

}  // namespace
}  // namespace pdpa
