// Shared-prefix snapshot/fork (DESIGN.md §12): a cell started from its
// group's prefix snapshot must be *byte-identical* to a cold run.
//  * Golden equivalence: for every eligible policy x workload x seed, the
//    forked run produces the same event JSONL, time-series CSV, and metrics
//    as RunExperiment from t=0 — and, for quantum-passive policies, the
//    same final counter/gauge/histogram snapshot, because the prefix
//    registry is restored rather than recomputed.
//  * Sweep integration: fork-on vs fork-off (and serial vs parallel with
//    fork on) sweeps produce identical CSV and per-cell recordings, and the
//    machinery is non-vacuous (more forked cells than prefixes built).
//  * Eligibility: traces, early arrivals, empty workloads and IRIX
//    (policy-owned per-tick randomness) all decline to fork.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/counters.h"
#include "src/obs/event_log.h"
#include "src/obs/timeseries.h"
#include "src/workload/experiment.h"
#include "src/workload/sweep.h"

namespace pdpa {
namespace {

// ---------------------------------------------------------------------------
// Experiment-level golden equivalence.

struct GoldenCase {
  PolicyKind policy;
  WorkloadId workload;
  std::uint64_t seed;
  bool exact_ticks;
};

std::string CaseName(const ::testing::TestParamInfo<GoldenCase>& info) {
  return std::string(PolicyKindName(info.param.policy)) + "_" +
         WorkloadShortName(info.param.workload) + "_s" + std::to_string(info.param.seed) +
         (info.param.exact_ticks ? "_exact" : "");
}

ExperimentConfig BaseConfig(const GoldenCase& c) {
  ExperimentConfig config;
  config.workload = c.workload;
  config.load = 1.0;
  config.seed = c.seed;
  config.policy = c.policy;
  config.rm.exact_ticks = c.exact_ticks;
  return config;
}

struct CapturedRun {
  std::string events;
  std::string timeseries;
  RegistrySnapshot counters;
  ExperimentResult result;
};

// Wires private sinks into `config` and runs it — cold from t=0, or forked
// from a freshly built prefix snapshot.
CapturedRun RunCaptured(ExperimentConfig config, bool forked) {
  CapturedRun run;
  std::ostringstream events_stream;
  EventLog events(&events_stream);
  TimeSeriesSampler timeseries;
  Registry registry;
  config.event_log = &events;
  config.timeseries = &timeseries;
  config.registry = &registry;
  if (forked) {
    std::shared_ptr<const std::vector<JobSpec>> jobs = BuildJobs(config);
    EXPECT_TRUE(ForkEligible(config, *jobs));
    const PrefixSnapshot snapshot = BuildPrefixSnapshot(config, jobs);
    run.result = RunExperimentFrom(config, snapshot);
  } else {
    run.result = RunExperiment(config);
  }
  events.Flush();  // The log buffers; push bytes out before reading.
  run.events = events_stream.str();
  std::ostringstream ts_stream;
  timeseries.WriteCsv(ts_stream);
  run.timeseries = ts_stream.str();
  run.counters = registry.Snapshot();
  return run;
}

void ExpectSameSnapshot(const RegistrySnapshot& cold, const RegistrySnapshot& forked) {
  ASSERT_EQ(cold.counters.size(), forked.counters.size());
  for (std::size_t i = 0; i < cold.counters.size(); ++i) {
    EXPECT_EQ(cold.counters[i].name, forked.counters[i].name);
    EXPECT_EQ(cold.counters[i].value, forked.counters[i].value) << cold.counters[i].name;
  }
  ASSERT_EQ(cold.gauges.size(), forked.gauges.size());
  for (std::size_t i = 0; i < cold.gauges.size(); ++i) {
    EXPECT_EQ(cold.gauges[i].name, forked.gauges[i].name);
    EXPECT_EQ(cold.gauges[i].value, forked.gauges[i].value) << cold.gauges[i].name;
    EXPECT_EQ(cold.gauges[i].has_value, forked.gauges[i].has_value) << cold.gauges[i].name;
  }
  ASSERT_EQ(cold.histograms.size(), forked.histograms.size());
  for (std::size_t i = 0; i < cold.histograms.size(); ++i) {
    EXPECT_EQ(cold.histograms[i].name, forked.histograms[i].name);
    EXPECT_EQ(cold.histograms[i].bucket_counts, forked.histograms[i].bucket_counts)
        << cold.histograms[i].name;
    EXPECT_EQ(cold.histograms[i].count, forked.histograms[i].count) << cold.histograms[i].name;
    EXPECT_EQ(cold.histograms[i].sum, forked.histograms[i].sum) << cold.histograms[i].name;
  }
}

class GoldenForkTest : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenForkTest, ForkedRunIsByteIdenticalToColdRun) {
  const ExperimentConfig config = BaseConfig(GetParam());
  const CapturedRun cold = RunCaptured(config, /*forked=*/false);
  const CapturedRun forked = RunCaptured(config, /*forked=*/true);

  EXPECT_EQ(cold.events, forked.events);
  EXPECT_EQ(cold.timeseries, forked.timeseries);

  EXPECT_EQ(cold.result.completed, forked.result.completed);
  EXPECT_EQ(cold.result.sim_end_s, forked.result.sim_end_s);
  EXPECT_EQ(cold.result.max_ml, forked.result.max_ml);
  EXPECT_EQ(cold.result.reallocations, forked.result.reallocations);
  EXPECT_EQ(cold.result.metrics.jobs, forked.result.metrics.jobs);
  EXPECT_EQ(cold.result.metrics.makespan_s, forked.result.metrics.makespan_s);
  ASSERT_EQ(cold.result.metrics.per_class.size(), forked.result.metrics.per_class.size());
  for (const auto& [app_class, cold_metrics] : cold.result.metrics.per_class) {
    const auto it = forked.result.metrics.per_class.find(app_class);
    ASSERT_NE(it, forked.result.metrics.per_class.end());
    EXPECT_EQ(cold_metrics.count, it->second.count);
    EXPECT_EQ(cold_metrics.avg_response_s, it->second.avg_response_s);
    EXPECT_EQ(cold_metrics.avg_exec_s, it->second.avg_exec_s);
    EXPECT_EQ(cold_metrics.avg_wait_s, it->second.avg_wait_s);
    EXPECT_EQ(cold_metrics.p50_response_s, it->second.p50_response_s);
    EXPECT_EQ(cold_metrics.p95_response_s, it->second.p95_response_s);
    EXPECT_EQ(cold_metrics.avg_alloc, it->second.avg_alloc);
  }
  ASSERT_EQ(cold.result.outcomes.size(), forked.result.outcomes.size());
  for (std::size_t i = 0; i < cold.result.outcomes.size(); ++i) {
    EXPECT_EQ(cold.result.outcomes[i].id, forked.result.outcomes[i].id);
    EXPECT_EQ(cold.result.outcomes[i].submit, forked.result.outcomes[i].submit);
    EXPECT_EQ(cold.result.outcomes[i].start, forked.result.outcomes[i].start);
    EXPECT_EQ(cold.result.outcomes[i].finish, forked.result.outcomes[i].finish);
  }

  // Under exact ticks the prefix fires the identical tick/quantum cadence
  // for every policy; with elision, passive policies park identically. In
  // both cases the restored prefix registry makes the *entire* final
  // instrument state match a cold run bit for bit. Non-passive policies
  // under elision legitimately differ (their cold prefix evaluates empty
  // quanta the passive sentinel elides), so only these cases compare.
  const bool counters_exact =
      GetParam().exact_ticks || GetParam().policy == PolicyKind::kEquipartition ||
      GetParam().policy == PolicyKind::kPdpa;
  if (counters_exact) {
    ExpectSameSnapshot(cold.counters, forked.counters);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesWorkloadsSeeds, GoldenForkTest,
    ::testing::Values(GoldenCase{PolicyKind::kEquipartition, WorkloadId::kW1, 42, false},
                      GoldenCase{PolicyKind::kEquipartition, WorkloadId::kW2, 43, false},
                      GoldenCase{PolicyKind::kEqualEfficiency, WorkloadId::kW1, 43, false},
                      GoldenCase{PolicyKind::kEqualEfficiency, WorkloadId::kW2, 42, false},
                      GoldenCase{PolicyKind::kPdpa, WorkloadId::kW1, 42, false},
                      GoldenCase{PolicyKind::kPdpa, WorkloadId::kW1, 43, false},
                      GoldenCase{PolicyKind::kPdpa, WorkloadId::kW2, 42, false},
                      GoldenCase{PolicyKind::kMcCannDynamic, WorkloadId::kW1, 42, false},
                      GoldenCase{PolicyKind::kMcCannDynamic, WorkloadId::kW2, 43, false},
                      GoldenCase{PolicyKind::kEquipartition, WorkloadId::kW1, 42, true},
                      GoldenCase{PolicyKind::kEqualEfficiency, WorkloadId::kW1, 42, true},
                      GoldenCase{PolicyKind::kPdpa, WorkloadId::kW2, 43, true},
                      GoldenCase{PolicyKind::kMcCannDynamic, WorkloadId::kW1, 42, true}),
    CaseName);

// ---------------------------------------------------------------------------
// Snapshot/Restore primitives.

TEST(SimulationRestoreTest, RestoreStampsTheClockOntoAFreshSimulation) {
  Registry registry;
  Simulation sim(&registry);
  sim.Restore(12345678);
  EXPECT_EQ(sim.now(), 12345678);
  // Restore is monotone: a second restore may only move forward.
  sim.Restore(23456789);
  EXPECT_EQ(sim.now(), 23456789);
}

TEST(RegistryRestoreTest, RestoreOverwritesRegistersAndZeroes) {
  Registry source;
  source.counter("a")->Increment(7);
  source.gauge("g")->Set(3.5);
  source.histogram("h", {1.0, 10.0})->Observe(4.0);
  const RegistrySnapshot snapshot = source.Snapshot();

  Registry target;
  target.counter("a")->Increment(100);   // overwritten to 7
  target.counter("stale")->Increment(5); // zeroed (absent from snapshot)
  target.Restore(snapshot);

  const RegistrySnapshot after = target.Snapshot();
  for (const CounterSnapshot& c : after.counters) {
    if (c.name == "a") {
      EXPECT_EQ(c.value, 7);
    } else if (c.name == "stale") {
      EXPECT_EQ(c.value, 0);
    }
  }
  bool saw_gauge = false;
  for (const GaugeSnapshot& g : after.gauges) {
    if (g.name == "g") {
      saw_gauge = true;
      EXPECT_TRUE(g.has_value);
      EXPECT_EQ(g.value, 3.5);
    }
  }
  EXPECT_TRUE(saw_gauge);
  bool saw_histogram = false;
  for (const HistogramSnapshot& h : after.histograms) {
    if (h.name == "h") {
      saw_histogram = true;
      EXPECT_EQ(h.count, 1);
      EXPECT_EQ(h.sum, 4.0);
    }
  }
  EXPECT_TRUE(saw_histogram);
}

TEST(ForkEligibilityTest, TraceRecordingDeclinesToFork) {
  ExperimentConfig config;
  config.record_trace = true;
  const std::shared_ptr<const std::vector<JobSpec>> jobs = BuildJobs(config);
  EXPECT_FALSE(PrefixForkable(config, *jobs));
}

TEST(ForkEligibilityTest, EmptyWorkloadDeclinesToFork) {
  const ExperimentConfig config;
  const std::vector<JobSpec> no_jobs;
  EXPECT_FALSE(PrefixForkable(config, no_jobs));
}

TEST(ForkEligibilityTest, ArrivalInsideFirstQuantumDeclinesToFork) {
  ExperimentConfig config;
  JobSpec early;
  early.id = 1;
  early.submit = config.rm.quantum / 2;  // inside the first quantum
  early.request = 8;
  config.jobs_override = {early};
  const std::shared_ptr<const std::vector<JobSpec>> jobs = BuildJobs(config);
  EXPECT_FALSE(PrefixForkable(config, *jobs));
}

TEST(ForkEligibilityTest, IrixIsPrefixForkableButNotForkEligible) {
  ExperimentConfig config;
  config.policy = PolicyKind::kIrix;
  const std::shared_ptr<const std::vector<JobSpec>> jobs = BuildJobs(config);
  ASSERT_TRUE(PrefixForkable(config, *jobs));
  EXPECT_FALSE(ForkEligible(config, *jobs));
}

TEST(ForkEligibilityTest, SnapshotDivergencePrecedesFirstArrival) {
  ExperimentConfig config;
  std::shared_ptr<const std::vector<JobSpec>> jobs = BuildJobs(config);
  ASSERT_TRUE(PrefixForkable(config, *jobs));
  SimTime first = (*jobs)[0].submit;
  for (const JobSpec& spec : *jobs) {
    first = std::min(first, spec.submit);
  }
  const PrefixSnapshot snapshot = BuildPrefixSnapshot(config, jobs);
  EXPECT_LT(snapshot.divergence, first);
  EXPECT_FALSE(snapshot.with_timeseries);
  EXPECT_TRUE(snapshot.machine_points.empty());
}

// ---------------------------------------------------------------------------
// Sweep-level integration.

SweepGrid ForkGrid() {
  SweepGrid grid;
  grid.workloads = {WorkloadId::kW1, WorkloadId::kW2};
  grid.loads = {1.0};
  grid.policies = {PolicyKind::kEquipartition, PolicyKind::kEqualEfficiency, PolicyKind::kPdpa,
                   PolicyKind::kMcCannDynamic};
  grid.seeds = {42, 43};
  return grid;
}

SweepOptions CaptureAll(int jobs, bool fork, ForkStats* stats) {
  SweepOptions options;
  options.jobs = jobs;
  options.capture_counters = true;
  options.capture_events = true;
  options.capture_timeseries = true;
  options.fork = fork;
  options.fork_stats = stats;
  return options;
}

std::string Csv(const std::vector<SweepCellResult>& results, std::size_t seeds_per_group) {
  std::ostringstream out;
  SweepCsv(results, seeds_per_group, out);
  return out.str();
}

void ExpectSameCells(const std::vector<SweepCellResult>& a,
                     const std::vector<SweepCellResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].events_jsonl, b[i].events_jsonl) << a[i].cell.name;
    EXPECT_EQ(a[i].timeseries_csv, b[i].timeseries_csv) << a[i].cell.name;
    EXPECT_EQ(a[i].result.sim_end_s, b[i].result.sim_end_s) << a[i].cell.name;
    EXPECT_EQ(a[i].result.metrics.makespan_s, b[i].result.metrics.makespan_s) << a[i].cell.name;
  }
}

TEST(SweepForkTest, ForkedSweepMatchesColdSweepByteForByte) {
  ForkStats fork_stats;
  const std::vector<SweepCellResult> forked =
      RunSweep(ForkGrid(), CaptureAll(1, /*fork=*/true, &fork_stats));
  ForkStats cold_stats;
  const std::vector<SweepCellResult> cold =
      RunSweep(ForkGrid(), CaptureAll(1, /*fork=*/false, &cold_stats));

  ExpectSameCells(cold, forked);
  EXPECT_EQ(Csv(cold, 2), Csv(forked, 2));

  // Non-vacuity: one prefix per (workload, load, seed) group, forked into
  // all four policies' cells — strictly more forks than prefix runs.
  EXPECT_EQ(fork_stats.groups, 4u);
  EXPECT_EQ(fork_stats.prefixes_built, 4u);
  EXPECT_EQ(fork_stats.forked_cells, forked.size());
  EXPECT_EQ(fork_stats.cold_cells, 0u);
  EXPECT_GT(fork_stats.forked_cells, fork_stats.prefixes_built);

  // The escape hatch really ran cold.
  EXPECT_EQ(cold_stats.forked_cells, 0u);
  EXPECT_EQ(cold_stats.cold_cells, cold.size());
  EXPECT_EQ(cold_stats.prefixes_built, 0u);
}

TEST(SweepForkTest, ParallelForkedSweepMatchesSerial) {
  ForkStats serial_stats;
  const std::vector<SweepCellResult> serial =
      RunSweep(ForkGrid(), CaptureAll(1, /*fork=*/true, &serial_stats));
  ForkStats parallel_stats;
  const std::vector<SweepCellResult> parallel =
      RunSweep(ForkGrid(), CaptureAll(4, /*fork=*/true, &parallel_stats));

  ExpectSameCells(serial, parallel);
  EXPECT_EQ(Csv(serial, 2), Csv(parallel, 2));
  // Fork decisions are deterministic, not scheduling-dependent.
  EXPECT_EQ(serial_stats.forked_cells, parallel_stats.forked_cells);
  EXPECT_EQ(serial_stats.prefixes_built, parallel_stats.prefixes_built);

  // Counter snapshots match cell for cell: the per-cell registry is fresh
  // even though the event log / sampler scratch is reused per worker.
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ExpectSameSnapshot(serial[i].counters, parallel[i].counters);
  }
}

TEST(SweepForkTest, IrixCellsRunColdInsideAForkedSweep) {
  SweepGrid grid = ForkGrid();
  grid.policies = {PolicyKind::kIrix, PolicyKind::kPdpa};
  ForkStats stats;
  const std::vector<SweepCellResult> results = RunSweep(grid, CaptureAll(1, true, &stats));
  ForkStats cold_stats;
  SweepOptions cold_options = CaptureAll(1, false, &cold_stats);
  const std::vector<SweepCellResult> cold = RunSweep(grid, cold_options);

  ExpectSameCells(cold, results);
  // 4 groups x 2 policies: the PDPA half forks, the IRIX half replays cold.
  EXPECT_EQ(stats.forked_cells, 4u);
  EXPECT_EQ(stats.cold_cells, 4u);
}

}  // namespace
}  // namespace pdpa
