// Serialization fast-path tests (DESIGN.md §9).
//
// Pins the three layers the zero-allocation path is built from:
//   1. the fmt.h number formatters are byte-identical to the snprintf
//      contracts the sinks have always used ("%lld"/"%llu"/"%.Ng"/"%.Nf"),
//      asserted over an exhaustive-edge + deterministic-random corpus;
//   2. the JSON escape table round-trips every byte through
//      JsonEscape/ParseFlatJson, including the \u00XX control-range;
//   3. every converted sink (event JSONL, time-series CSV, sweep CSV,
//      Paraver .prv) produces byte-identical output to the retained legacy
//      serializers on live simulation data.
// Plus BufWriter unit coverage (spill, oversized record, dtor flush).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/bufwriter.h"
#include "src/common/fmt.h"
#include "src/common/strings.h"
#include "src/obs/counters.h"
#include "src/obs/event_log.h"
#include "src/obs/timeseries.h"
#include "src/trace/paraver_writer.h"
#include "src/trace/trace_recorder.h"
#include "src/workload/experiment.h"
#include "src/workload/sweep.h"

namespace pdpa {
namespace {

// ------------------------------------------------------------ fmt golden

// Deterministic 64-bit generator (xorshift*): the corpus must be identical
// on every run, everywhere — no std::random device/seed variation.
class DeterministicBits {
 public:
  std::uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545F4914F6CDD1DULL;
  }

 private:
  std::uint64_t state_ = 0x9E3779B97F4A7C15ULL;
};

std::vector<long long> IntCorpus() {
  std::vector<long long> corpus = {
      0,
      1,
      -1,
      7,
      -42,
      std::numeric_limits<long long>::max(),
      std::numeric_limits<long long>::min(),
      std::numeric_limits<int>::max(),
      std::numeric_limits<int>::min(),
  };
  long long p = 1;
  for (int i = 0; i < 18; ++i) {
    p *= 10;
    corpus.push_back(p);
    corpus.push_back(p - 1);
    corpus.push_back(-p);
    corpus.push_back(-p + 1);
  }
  DeterministicBits bits;
  for (int i = 0; i < 20000; ++i) {
    corpus.push_back(static_cast<long long>(bits.Next()));
  }
  return corpus;
}

std::vector<double> DoubleCorpus() {
  std::vector<double> corpus = {
      0.0,
      -0.0,
      1.0,
      -1.0,
      0.5,
      2.0 / 3.0,
      1e-3,
      123.456,
      1e10,
      1.0 / 3.0,
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::quiet_NaN(),
      std::numeric_limits<double>::max(),
      std::numeric_limits<double>::min(),          // smallest normal
      std::numeric_limits<double>::denorm_min(),   // smallest subnormal
      std::numeric_limits<double>::epsilon(),
  };
  for (int e = -30; e <= 30; ++e) {
    corpus.push_back(std::pow(10.0, e));
    corpus.push_back(-std::pow(10.0, e) * 1.2345678901);
  }
  DeterministicBits bits;
  for (int i = 0; i < 20000; ++i) {
    // Raw bit patterns: exercises subnormals, NaN payloads, both signs.
    double value = 0.0;
    const std::uint64_t pattern = bits.Next();
    std::memcpy(&value, &pattern, sizeof(value));
    corpus.push_back(value);
    // And values in the ranges the sinks actually emit.
    corpus.push_back(static_cast<double>(pattern % 1000000) / 997.0);
  }
  return corpus;
}

TEST(FmtGoldenTest, AppendIntMatchesStrFormatLld) {
  std::string got;
  for (const long long value : IntCorpus()) {
    got.clear();
    AppendInt(&got, value);
    ASSERT_EQ(got, StrFormat("%lld", value));
  }
}

TEST(FmtGoldenTest, AppendUintMatchesStrFormatLlu) {
  std::string got;
  for (const long long value : IntCorpus()) {
    const unsigned long long u = static_cast<unsigned long long>(value);
    got.clear();
    AppendUint(&got, u);
    ASSERT_EQ(got, StrFormat("%llu", u));
  }
}

TEST(FmtGoldenTest, AppendGeneralMatchesStrFormatG) {
  const std::vector<double> corpus = DoubleCorpus();
  std::string got;
  for (const int precision : {1, 2, 6, 10, 17}) {
    const std::string spec = StrFormat("%%.%dg", precision);
    for (const double value : corpus) {
      got.clear();
      AppendGeneral(&got, value, precision);
      ASSERT_EQ(got, StrFormat(spec.c_str(), value))
          << "precision " << precision << " value bits " << StrFormat("%a", value);
    }
  }
}

TEST(FmtGoldenTest, AppendFixedMatchesStrFormatF) {
  const std::vector<double> corpus = DoubleCorpus();
  std::string got;
  for (const int precision : {0, 2, 3, 6}) {
    const std::string spec = StrFormat("%%.%df", precision);
    for (const double value : corpus) {
      // Fixed notation of huge magnitudes prints hundreds of digits; the
      // sinks only ever use %f for times/loads. Keep the corpus in range.
      if (std::isfinite(value) && std::abs(value) > 1e15) {
        continue;
      }
      got.clear();
      AppendFixed(&got, value, precision);
      ASSERT_EQ(got, StrFormat(spec.c_str(), value))
          << "precision " << precision << " value bits " << StrFormat("%a", value);
    }
  }
}

TEST(FmtGoldenTest, DefaultGeneralPrecisionIsTen) {
  std::string got;
  AppendGeneral(&got, 2.0 / 3.0);
  EXPECT_EQ(got, StrFormat("%.10g", 2.0 / 3.0));
}

// --------------------------------------------------------- escape table

TEST(JsonEscapeTest, FullEscapeTableRoundTripsThroughParse) {
  // Every byte 0x00..0x7F plus a multi-byte UTF-8 sample; the escape table
  // must emit the short forms for the named controls, \u00XX for the rest
  // of the control range, and pass everything else through.
  std::string raw;
  for (int c = 0; c < 0x80; ++c) {
    raw.push_back(static_cast<char>(c));
  }
  raw += "π … \xC3\xA9";  // multi-byte sequences pass through untouched

  const std::string escaped = JsonEscape(raw);
  EXPECT_TRUE(escaped.find("\\u0000") != std::string::npos);
  EXPECT_TRUE(escaped.find("\\u001f") != std::string::npos);
  // \b and \f take the \u00XX form — the escape table's short forms are
  // only \" \\ \n \r \t, and the byte contract pins it that way.
  EXPECT_TRUE(escaped.find("\\u0008") != std::string::npos);
  EXPECT_TRUE(escaped.find("\\u000c") != std::string::npos);
  EXPECT_TRUE(escaped.find("\\n") != std::string::npos);
  EXPECT_TRUE(escaped.find("\\r") != std::string::npos);
  EXPECT_TRUE(escaped.find("\\t") != std::string::npos);
  EXPECT_TRUE(escaped.find("\\\"") != std::string::npos);
  EXPECT_TRUE(escaped.find("\\\\") != std::string::npos);
  // No raw control bytes may survive escaping.
  for (char c : escaped) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
  }

  std::string line;
  JsonObjectWriter writer(&line);
  writer.Field("payload", raw);
  writer.Finish();
  std::map<std::string, std::string> fields;
  ASSERT_TRUE(ParseFlatJson(line, &fields));
  EXPECT_EQ(fields["payload"], raw);
}

TEST(JsonEscapeTest, JsonEscapeToAppendsIdenticalBytes) {
  const std::string raw = "a\"b\\c\nd\x01";
  std::string appended = "prefix:";
  JsonEscapeTo(&appended, raw);
  EXPECT_EQ(appended, "prefix:" + JsonEscape(raw));
}

TEST(JsonEscapeTest, FastAndLegacyWritersAgreeOnEscapes) {
  std::string raw;
  for (int c = 1; c < 0x80; ++c) {
    raw.push_back(static_cast<char>(c));
  }
  std::string fast;
  JsonObjectWriter writer(&fast);
  writer.Field("s", raw).Field("n", 42).Field("d", 1.0 / 3.0).Field("b", true);
  writer.Finish();
  internal::LegacyJsonObjectWriter legacy;
  legacy.Field("s", raw).Field("n", 42).Field("d", 1.0 / 3.0).Field("b", true);
  EXPECT_EQ(fast, legacy.Finish());
}

// ------------------------------------------------------------- BufWriter

TEST(BufWriterTest, SmallAppendsReachSinkOnFlush) {
  std::ostringstream sink;
  BufWriter writer(&sink);
  writer.Append("hello");
  writer.Append(' ');
  writer.Append("world");
  EXPECT_EQ(sink.str(), "");  // still buffered
  writer.Flush();
  EXPECT_EQ(sink.str(), "hello world");
  EXPECT_EQ(writer.bytes_written(), 11u);
}

TEST(BufWriterTest, SpillsAtBufferBoundaryWithoutByteLoss) {
  std::ostringstream sink;
  std::string expected;
  {
    BufWriter writer(&sink);
    const std::string chunk(1000, 'x');
    for (int i = 0; i < 200; ++i) {  // 200 KB through a 64 KiB buffer
      std::string record = chunk;
      record[0] = static_cast<char>('a' + i % 26);
      writer.Append(record);
      expected += record;
    }
    EXPECT_EQ(writer.bytes_written(), expected.size());
  }  // destructor flushes the tail
  EXPECT_EQ(sink.str(), expected);
}

TEST(BufWriterTest, OversizedRecordBypassesBuffer) {
  std::ostringstream sink;
  BufWriter writer(&sink);
  writer.Append("head:");
  const std::string big(BufWriter::kBufferSize * 2, 'y');
  writer.Append(big);
  // The oversized record cannot fit the buffer, so it (and the bytes queued
  // before it) must already be in the sink without an explicit Flush.
  EXPECT_EQ(sink.str(), "head:" + big);
}

TEST(BufWriterTest, NullSinkDiscardsQuietly) {
  BufWriter writer(nullptr);
  writer.Append("dropped");
  writer.Flush();
  EXPECT_EQ(writer.bytes_written(), 0u);
}

// -------------------------------------------- end-to-end byte identity

struct CapturedRun {
  std::string events;
  std::string timeseries_fast;
  std::string timeseries_legacy;
};

CapturedRun RunCaptured(PolicyKind policy, bool legacy_events) {
  ExperimentConfig config;
  config.workload = WorkloadId::kW1;
  config.load = 1.0;
  config.seed = 42;
  config.policy = policy;

  CapturedRun run;
  std::ostringstream events_stream;
  EventLog events(&events_stream);
  events.set_legacy_serialization_for_test(legacy_events);
  TimeSeriesSampler timeseries;
  config.event_log = &events;
  config.timeseries = &timeseries;
  (void)RunExperiment(config);
  events.Flush();
  run.events = events_stream.str();

  std::ostringstream fast_csv, legacy_csv;
  timeseries.WriteCsv(fast_csv);
  internal::WriteTimeSeriesCsvLegacy(timeseries, legacy_csv);
  run.timeseries_fast = fast_csv.str();
  run.timeseries_legacy = legacy_csv.str();
  return run;
}

class SerializationGoldenTest : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(SerializationGoldenTest, LiveRunEventsAndTimeseriesAreByteIdentical) {
  const CapturedRun fast = RunCaptured(GetParam(), /*legacy_events=*/false);
  const CapturedRun legacy = RunCaptured(GetParam(), /*legacy_events=*/true);
  ASSERT_FALSE(fast.events.empty());
  EXPECT_EQ(fast.events, legacy.events);
  EXPECT_EQ(fast.timeseries_fast, fast.timeseries_legacy);
  EXPECT_EQ(fast.timeseries_fast, legacy.timeseries_fast);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, SerializationGoldenTest,
                         ::testing::Values(PolicyKind::kPdpa, PolicyKind::kEquipartition),
                         [](const ::testing::TestParamInfo<PolicyKind>& param_info) {
                           return std::string(PolicyKindName(param_info.param));
                         });

TEST(SerializationGoldenTest, SweepCsvMatchesLegacyIncludingAggregates) {
  SweepGrid grid;
  grid.workloads = {WorkloadId::kW1};
  grid.loads = {0.6, 1.0};
  grid.policies = {PolicyKind::kEquipartition, PolicyKind::kPdpa};
  grid.seeds = {42, 43, 44};

  SweepOptions capture;
  capture.jobs = 1;
  capture.capture_events = true;
  capture.capture_timeseries = true;
  const std::vector<SweepCellResult> fast = RunSweep(grid, capture);
  SweepOptions capture_legacy = capture;
  capture_legacy.legacy_serialization_for_test = true;
  const std::vector<SweepCellResult> legacy = RunSweep(grid, capture_legacy);

  ASSERT_EQ(fast.size(), legacy.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    ASSERT_FALSE(fast[i].events_jsonl.empty());
    EXPECT_EQ(fast[i].events_jsonl, legacy[i].events_jsonl) << "cell " << i;
    EXPECT_EQ(fast[i].timeseries_csv, legacy[i].timeseries_csv) << "cell " << i;
  }

  // The replica rows and the mean/p50/p95 aggregate rows must both survive
  // the rewrite byte for byte (3 seeds ensures a non-trivial percentile).
  std::ostringstream fast_csv, legacy_csv;
  SweepCsv(fast, grid.seeds.size(), fast_csv);
  internal::SweepCsvLegacy(fast, grid.seeds.size(), legacy_csv);
  ASSERT_FALSE(fast_csv.str().empty());
  EXPECT_EQ(fast_csv.str(), legacy_csv.str());
}

TEST(SerializationGoldenTest, ParaverTraceMatchesLegacy) {
  TraceRecorder recorder(4);
  // A deterministic ownership history with handoffs, idle gaps, and enough
  // ticks to sample the grid several times.
  for (int step = 0; step < 40; ++step) {
    const SimTime now = step * 100 * kMillisecond;
    recorder.Tick(now);
    if (step % 4 == 0) {
      const int cpu = step % 4;
      const JobId from = step % 8 == 0 ? kIdleJob : static_cast<JobId>(step % 3);
      const JobId to = static_cast<JobId>((step + 1) % 3);
      recorder.OnHandoff(now, CpuHandoff{cpu, from, to});
    }
  }
  recorder.Finalize(40 * 100 * kMillisecond);

  std::ostringstream fast, legacy;
  WriteParaverTrace(recorder, /*num_jobs=*/3, fast);
  internal::WriteParaverTraceLegacy(recorder, /*num_jobs=*/3, legacy);
  ASSERT_FALSE(fast.str().empty());
  EXPECT_EQ(fast.str(), legacy.str());
}

}  // namespace
}  // namespace pdpa
