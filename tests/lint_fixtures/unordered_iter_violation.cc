// Fixture: range-for over unordered containers.
#include <map>
#include <string>
#include <unordered_map>

int Bad(const std::unordered_map<int, int>& histogram) {
  int sum = 0;
  for (const auto& [key, value] : histogram) {  // line 8: named unordered_map
    sum += key + value;
  }
  std::unordered_map<std::string, int> local_unordered;
  for (const auto& entry : local_unordered) {  // line 12: ident contains "unordered"
    sum += entry.second;
  }
  // Justified iteration (order-independent fold) stays quiet:
  for (const auto& [key, value] : histogram) {  // lint: ordered-ok
    sum += key * value;
  }
  // Ordered containers are always fine:
  std::map<int, int> sorted;
  for (const auto& [key, value] : sorted) {
    sum += key + value;
  }
  return sum;
}
