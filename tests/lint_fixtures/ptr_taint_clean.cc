// Lint fixture: ptr-taint negative control. Out-param destinations, stable
// ids, value-keyed containers, binary & — none of this may produce a
// finding.
struct Job {
  int id;
};

void CleanSinks(JsonObjectWriter& writer, EventLog* log, std::string* out, const Job& job,
                int flags, int mask) {
  writer.Field("job", job.id);
  log->Emit(job.id);
  AppendInt(out, job.id);           // arg 0 is the destination out-param
  writer.Field("flags", flags & mask);  // binary &, not address-of
}

std::map<int, Job> by_id;
std::map<int, Job*> id_to_job;  // pointer *values* are fine; keys order it
std::size_t Hashed(const Job& job) { return std::hash<int>()(job.id); }

void Justified(JsonObjectWriter& writer, Job* job) {
  writer.Field("debug_addr", &job);  // lint: ptr-taint-ok (fixture: justified)
}
