// Lint fixture: lock-order positives. Self-contained — the declarations
// and the acquisition sites are in one file, so the phase-1 index resolves
// every member locally. Expected findings are pinned at exact file:line in
// lint_fixture_test.cmake; renumbering lines breaks the oracle.
struct State {
  Mutex low{PDPA_LOCK_RANK(10)};
  Mutex high{PDPA_LOCK_RANK(30)};
  Mutex bare;
  Mutex clashing{PDPA_LOCK_RANK(30)};
};

void SeededInversion(State* state) {
  const MutexLock outer(&state->high);
  {
    const MutexLock inner(&state->low);
  }
}

void SelfNesting(State* state) {
  const MutexLock outer(&state->low);
  const MutexLock inner(&state->low);
}

void Unresolvable(State* state) {
  const MutexLock lock(&state->phantom);
}
