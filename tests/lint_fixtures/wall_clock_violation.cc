// Fixture: every class of wall-clock rule hit (linted with --treat-as src).
#include <chrono>
#include <cstdlib>
#include <ctime>

int Bad() {
  int sum = static_cast<int>(std::rand());                        // line 7: rand
  std::srand(42);                                                 // line 8: srand
  sum += static_cast<int>(time(nullptr));                         // line 9: time(
  auto now = std::chrono::system_clock::now();                    // line 10: system_clock
  auto fine = std::chrono::high_resolution_clock::now();          // line 11
  sum += static_cast<int>(now.time_since_epoch().count());
  sum += static_cast<int>(fine.time_since_epoch().count());
  // A justified use stays quiet:
  auto t0 = std::chrono::steady_clock::now();  // lint: wall-clock-ok
  sum += static_cast<int>(t0.time_since_epoch().count());
  // "time" as a plain identifier (no call) is fine:
  int time = 3;
  return sum + time;
}
