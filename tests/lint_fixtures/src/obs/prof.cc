// Fixture: the sanctioned host-clock TU. steady_clock is allowed here (and
// only here); every other wall-clock source stays banned even in this file.
#include <chrono>

namespace pdpa {
long long NowNanos() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
long long WallNanos() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}
}  // namespace pdpa
