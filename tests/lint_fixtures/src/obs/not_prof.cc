// Fixture: steady_clock outside the sanctioned TU is still a violation.
#include <chrono>

namespace pdpa {
long long Nanos() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
}  // namespace pdpa
