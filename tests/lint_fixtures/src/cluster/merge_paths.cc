// Fixture: the ordering audit covers src/cluster/ — placement and merge
// decisions must never be fed by unspecified iteration order.
#include <unordered_map>
#include <vector>

int PickNode(const std::unordered_map<int, int>& free_cpus_by_node) {
  int best = -1;
  for (const auto& [node, free] : free_cpus_by_node) {  // line 8: placement path
    if (best < 0 || free > 0) {
      best = node;
    }
  }
  return best;
}

std::vector<int> MergeStreams(const std::unordered_map<int, std::vector<int>>& per_node) {
  std::vector<int> merged;
  for (const auto& [node, events] : per_node) {  // line 18: merge path
    merged.insert(merged.end(), events.begin(), events.end());
  }
  return merged;
}
