// Fixture: per-line stream flushes in src/-classified code. Uses an
// ostream& parameter (not cout/cerr) so only stream-flush fires.
#include <ostream>

void Bad(std::ostream& out, int value) {
  out << value << std::endl;              // line 6: qualified endl
  out << value << std::flush;             // line 7: qualified flush
  using namespace std;
  out << value << endl;                   // line 9: streamed endl
  out << value << std::endl;  // lint: stream-flush-ok (fixture: justified)
}

// A plain identifier named `flush` is someone's variable, not stream I/O;
// `.flush` as a member name is likewise out of scope for this rule.
void Fine(std::ostream& out, bool flush) {
  if (flush) {
    out.flush();
  }
}
