// Fixture: violations covered by fixture_waivers.txt (within count and
// expiry) plus one rule the waiver file covers with an EXPIRED entry, so the
// harness can assert both sides of the waiver lifecycle.
#include <cstdio>

void Waived(int value) {
  printf("%d\n", value);    // covered: direct-io waiver, count 2
  std::puts("done");        // covered: direct-io waiver, count 2
  double x = value * 0.5;
  bool same = x == 0.5;     // NOT covered: float-eq waiver in the file expired
  (void)same;
}
