// Fixture: ==/!= against floating-point literals.
bool Bad(double x, float y) {
  bool a = x == 0.0;     // line 3: == against double literal
  bool b = 1.5e-3 != x;  // line 4: != with literal on the left
  bool c = y == 2.0f;    // line 5: f-suffixed literal
  bool sentinel = x == -1.0;  // lint: float-eq-ok (exact sentinel, never computed)
  // Integer comparisons and non-literal float comparisons are out of scope
  // (the lint catches the unambiguous cases; clang-tidy covers the rest).
  bool d = x == static_cast<double>(y);
  int n = 3;
  bool e = n == 3;
  return a || b || c || d || e || sentinel;
}
