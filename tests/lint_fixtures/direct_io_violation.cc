// Fixture: direct output in src/-classified code.
#include <cstdio>
#include <iostream>

void Bad(int value) {
  printf("%d\n", value);                  // line 6: printf
  std::fprintf(stderr, "%d\n", value);    // line 7: fprintf
  std::puts("done");                      // line 8: puts
  std::cout << value << "\n";             // line 9: cout
  std::cerr << value << "\n";             // line 10: cerr
  std::fprintf(  // lint: direct-io-ok (fixture: justified diagnostic)
      stderr, "ok\n");
}

// `printf` as a non-call identifier (attribute position) is fine:
void Log(const char* format, ...) __attribute__((format(printf, 1, 2)));
