// Fixture: a file every rule passes. Mentions of banned names inside
// comments and string literals must not trip the tokenizer: std::rand,
// system_clock, printf, cout, == 1.0.
#include <map>
#include <string>

namespace {
constexpr const char* kDoc = "call time(nullptr) and printf() at == 0.5";
constexpr const char* kRaw = R"(std::cout << high_resolution_clock == 2.0)";
}  // namespace

int Good(const std::map<std::string, int>& table, double x) {
  int sum = 0;
  for (const auto& [key, value] : table) {
    sum += static_cast<int>(key.size()) + value;
  }
  // Epsilon comparison instead of float ==:
  const bool near_zero = x < 1e-9 && x > -1e-9;
  return sum + (near_zero ? 1 : 0) + (kDoc == kRaw ? 1 : 0);
}
