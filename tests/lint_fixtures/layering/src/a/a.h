// Layering fixture: top layer. A downward include is the negative
// control — it must produce no finding.
#ifndef FIXTURE_A_H_
#define FIXTURE_A_H_
#include "src/b/ok.h"
#endif
