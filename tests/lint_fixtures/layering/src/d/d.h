// Layering fixture: the edge that closes the seeded cycle c -> d -> c.
#ifndef FIXTURE_D_D_H_
#define FIXTURE_D_D_H_
#include "src/c/c.h"
#endif
