// Layering fixture: middle layer, clean — includes only the foundation.
#ifndef FIXTURE_B_OK_H_
#define FIXTURE_B_OK_H_
#include "src/c/c.h"
#endif
