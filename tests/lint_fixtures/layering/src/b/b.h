// Layering fixture: seeded upward include — b (layer 1) reaching into a
// (layer 2). The layer-up oracle pins the exact line below.
#ifndef FIXTURE_B_B_H_
#define FIXTURE_B_B_H_
#include "src/a/a.h"
#endif
