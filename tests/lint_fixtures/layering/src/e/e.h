// Layering fixture: a directory missing from layers.txt — the
// unassigned-dir oracle anchors at line 1 of this file.
#ifndef FIXTURE_E_E_H_
#define FIXTURE_E_E_H_
#endif
