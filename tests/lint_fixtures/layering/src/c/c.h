// Layering fixture: half of the seeded same-layer cycle c -> d -> c. The
// layer-cycle oracle anchors at the include line below (the canonical
// cycle's first edge).
#ifndef FIXTURE_C_C_H_
#define FIXTURE_C_C_H_
#include "src/d/d.h"
#endif
