// Lint fixture: ptr-taint positives. Pointer-shaped values reaching
// deterministic sinks, pointer-keyed containers, std::hash of a pointer.
// Expected findings are pinned at exact file:line in
// lint_fixture_test.cmake.
struct Job;

void Taints(JsonObjectWriter& writer, EventLog* log, std::string* out, Job* job) {
  writer.Field("job", &job);
  log->Emit(this);
  AppendInt(out, std::this_thread::get_id());
}

std::map<Job*, int> by_job_pointer;
std::set<const Job*> job_set;
std::size_t Hashed(Job* job) { return std::hash<Job*>()(job); }
