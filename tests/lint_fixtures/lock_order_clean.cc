// Lint fixture: lock-order negative control. Ranked declarations acquired
// in strictly increasing rank order, nested and sequential, plus a
// justified out-of-order site — none of this may produce a finding.
struct State {
  Mutex first{PDPA_LOCK_RANK(10)};
  Mutex second{PDPA_LOCK_RANK(20)};
  Mutex third{PDPA_LOCK_RANK(40)};
};

void IncreasingChain(State* state) {
  const MutexLock a(&state->first);
  const MutexLock b(&state->second);
  {
    const MutexLock c(&state->third);
  }
}

void SequentialNotNested(State* state) {
  {
    const MutexLock a(&state->second);
  }
  {
    // Not an inversion: `second` was released when this acquires.
    const MutexLock b(&state->first);
  }
}

void JustifiedException(State* state) {
  const MutexLock a(&state->third);
  const MutexLock b(&state->first);  // lint: lock-order-ok (fixture: justified)
}
