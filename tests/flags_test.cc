// Tests for the command-line flag parser used by tools/pdpa_sim.
#include <gtest/gtest.h>

#include "src/common/flags.h"

namespace pdpa {
namespace {

FlagSet ParseArgs(std::vector<const char*> args) {
  return FlagSet::Parse(static_cast<int>(args.size()), args.data());
}

TEST(FlagsTest, KeyEqualsValue) {
  FlagSet flags = ParseArgs({"--load=0.8", "--policy=pdpa"});
  EXPECT_DOUBLE_EQ(flags.GetDouble("load", 0.0), 0.8);
  EXPECT_EQ(flags.GetString("policy", ""), "pdpa");
}

TEST(FlagsTest, KeySpaceValue) {
  FlagSet flags = ParseArgs({"--seed", "77", "--workload", "w3"});
  EXPECT_EQ(flags.GetInt("seed", 0), 77);
  EXPECT_EQ(flags.GetString("workload", ""), "w3");
}

TEST(FlagsTest, BareSwitchIsTrue) {
  FlagSet flags = ParseArgs({"--untuned", "--view", "--load=1.0"});
  EXPECT_TRUE(flags.GetBool("untuned", false));
  EXPECT_TRUE(flags.GetBool("view", false));
  EXPECT_FALSE(flags.GetBool("absent", false));
}

TEST(FlagsTest, SwitchFollowedByFlagStaysBoolean) {
  FlagSet flags = ParseArgs({"--dry-run", "--policy", "equip"});
  EXPECT_TRUE(flags.GetBool("dry-run", false));
  EXPECT_EQ(flags.GetString("policy", ""), "equip");
}

TEST(FlagsTest, PositionalArgumentsCollected) {
  FlagSet flags = ParseArgs({"input.swf", "--policy=pdpa", "output.prv"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "input.swf");
  EXPECT_EQ(flags.positional()[1], "output.prv");
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  FlagSet flags = ParseArgs({});
  EXPECT_EQ(flags.GetInt("n", 42), 42);
  EXPECT_DOUBLE_EQ(flags.GetDouble("x", 1.5), 1.5);
  EXPECT_EQ(flags.GetString("s", "d"), "d");
  EXPECT_FALSE(flags.had_parse_error());
}

TEST(FlagsTest, MalformedNumberFlagsError) {
  FlagSet flags = ParseArgs({"--seed=abc"});
  EXPECT_EQ(flags.GetInt("seed", 7), 7);
  EXPECT_TRUE(flags.had_parse_error());
}

TEST(FlagsTest, UnconsumedFlagsDetected) {
  FlagSet flags = ParseArgs({"--known=1", "--typo=2"});
  (void)flags.GetInt("known", 0);
  const auto unconsumed = flags.UnconsumedFlags();
  ASSERT_EQ(unconsumed.size(), 1u);
  EXPECT_EQ(unconsumed[0], "typo");
}

TEST(FlagsTest, BoolValueSpellings) {
  FlagSet flags = ParseArgs({"--a=true", "--b=1", "--c=yes", "--d=false", "--e=0"});
  EXPECT_TRUE(flags.GetBool("a", false));
  EXPECT_TRUE(flags.GetBool("b", false));
  EXPECT_TRUE(flags.GetBool("c", false));
  EXPECT_FALSE(flags.GetBool("d", true));
  EXPECT_FALSE(flags.GetBool("e", true));
}

}  // namespace
}  // namespace pdpa
