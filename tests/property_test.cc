// Parameterized property tests across modules:
//  * SelfAnalyzer accuracy across the whole application catalog
//  * PDPA convergence across target efficiencies and profiles
//  * ResourceManager safety under an adversarial (random-plan) policy
//  * Application progress conservation across tick sizes
#include <gtest/gtest.h>

#include "src/app/application.h"
#include "src/common/rng.h"
#include "src/core/pdpa_policy.h"
#include "src/rm/resource_manager.h"
#include "src/runtime/nth_lib.h"

namespace pdpa {
namespace {

AppCosts NoCosts() {
  AppCosts costs;
  costs.reconfig_freeze = 0;
  costs.warmup = 0;
  return costs;
}

// ---------------------------------------------------------------------------
// SelfAnalyzer accuracy: for every catalog application and several
// allocations, the noiseless measured speedup must track the true curve
// (up to the Amdahl-factor normalization error at the baseline).

struct AnalyzerCase {
  AppClass app_class;
  int procs;
};

class AnalyzerAccuracyTest : public ::testing::TestWithParam<AnalyzerCase> {};

TEST_P(AnalyzerAccuracyTest, MeasuredSpeedupTracksTrueCurve) {
  const AnalyzerCase& param = GetParam();
  AppProfile profile = MakeProfile(param.app_class);
  const int baseline = std::max(1, profile.baseline_procs);
  auto app = std::make_unique<Application>(1, profile, NoCosts());
  SelfAnalyzerParams analyzer_params;
  analyzer_params.noise_sigma = 0.0;
  analyzer_params.amdahl_factor = 1.0;  // exact normalization for this check
  NthLibBinding binding(std::move(app), analyzer_params, Rng(1));
  std::vector<PerfReport> reports;
  binding.set_report_callback([&](const PerfReport& r) { reports.push_back(r); });
  binding.SetProcessors(param.procs, 0);
  binding.StartJob(0);
  for (SimTime t = 0; t < 120 * kSecond && reports.empty(); t += 20 * kMillisecond) {
    binding.Tick(t, 20 * kMillisecond);
  }
  ASSERT_FALSE(reports.empty()) << "no measurement produced";
  // Expected measurement: S(p) / S(b) * b (normalization assumes a
  // perfectly-efficient baseline).
  const double true_s = profile.speedup->SpeedupAt(param.procs);
  const double base_s = profile.speedup->SpeedupAt(std::min(baseline, param.procs));
  const double expected = true_s / base_s * std::min(baseline, param.procs);
  EXPECT_NEAR(reports.back().speedup, expected, expected * 0.05)
      << profile.name << " at " << param.procs;
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, AnalyzerAccuracyTest,
    ::testing::Values(AnalyzerCase{AppClass::kSwim, 8}, AnalyzerCase{AppClass::kSwim, 16},
                      AnalyzerCase{AppClass::kSwim, 30}, AnalyzerCase{AppClass::kBt, 8},
                      AnalyzerCase{AppClass::kBt, 20}, AnalyzerCase{AppClass::kBt, 30},
                      AnalyzerCase{AppClass::kHydro2d, 8}, AnalyzerCase{AppClass::kHydro2d, 16},
                      AnalyzerCase{AppClass::kApsi, 2}, AnalyzerCase{AppClass::kApsi, 8}));

// ---------------------------------------------------------------------------
// PDPA convergence: a single application on an otherwise idle machine must
// settle (STABLE or floor), with an allocation whose *true* efficiency is
// acceptable or that is explained by a resource/request limit.

struct ConvergenceCase {
  AppClass app_class;
  double target_eff;
  int initial_free;
};

class PdpaConvergenceTest : public ::testing::TestWithParam<ConvergenceCase> {};

TEST_P(PdpaConvergenceTest, SingleAppSettlesAtAcceptableAllocation) {
  const ConvergenceCase& param = GetParam();
  const AppProfile profile = MakeProfile(param.app_class);

  Simulation sim;
  ResourceManager::Params rm_params;
  rm_params.num_cpus = param.initial_free;
  rm_params.analyzer.noise_sigma = 0.0;
  rm_params.app_costs = NoCosts();
  PdpaParams pdpa_params;
  pdpa_params.target_eff = param.target_eff;
  pdpa_params.high_eff = std::max(0.9, param.target_eff);
  auto policy = std::make_unique<PdpaPolicy>(pdpa_params, PdpaMlParams{});
  PdpaPolicy* policy_ptr = policy.get();
  ResourceManager rm(rm_params, std::move(policy), &sim, nullptr, Rng(3));
  rm.Start();
  rm.StartJob(0, profile, profile.default_request, 0);

  // Run long enough for the search to settle but not for the job to finish.
  sim.RunUntil(20 * kSecond);
  if (!rm.HasJob(0)) {
    GTEST_SKIP() << "job finished before settling window";
  }
  const PdpaAutomaton* automaton = policy_ptr->AutomatonFor(0);
  ASSERT_NE(automaton, nullptr);
  EXPECT_TRUE(automaton->Settled()) << automaton->DebugString();

  const int alloc = automaton->current_alloc();
  EXPECT_GE(alloc, 1);
  EXPECT_LE(alloc, profile.default_request);
  // If not at the floor or the request, the settled allocation's true
  // efficiency must be >= target (allowing the normalization bias of the
  // Amdahl factor and one step of overshoot).
  if (alloc > 1 && alloc < profile.default_request) {
    const double true_eff = profile.speedup->EfficiencyAt(alloc);
    EXPECT_GT(true_eff, param.target_eff - 0.12) << automaton->DebugString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PdpaConvergenceTest,
    ::testing::Values(ConvergenceCase{AppClass::kBt, 0.7, 60},
                      ConvergenceCase{AppClass::kBt, 0.7, 8},
                      ConvergenceCase{AppClass::kBt, 0.8, 60},
                      ConvergenceCase{AppClass::kHydro2d, 0.7, 60},
                      ConvergenceCase{AppClass::kHydro2d, 0.5, 60},
                      ConvergenceCase{AppClass::kApsi, 0.7, 60},
                      ConvergenceCase{AppClass::kSwim, 0.7, 12},
                      ConvergenceCase{AppClass::kSwim, 0.7, 60}));

// ---------------------------------------------------------------------------
// RM safety under an adversarial policy that emits random plans: the RM
// must clamp everything to [1, request] and never overcommit the machine.

class ChaosPolicy : public SchedulingPolicy {
 public:
  explicit ChaosPolicy(Rng rng) : rng_(rng) {}

  std::string name() const override { return "Chaos"; }

  AllocationPlan OnJobStart(const PolicyContext& ctx, JobId job) override {
    AllocationPlan plan = RandomPlan(ctx);
    plan[job] = std::max(1, plan.count(job) ? plan[job] : 1);
    return plan;
  }
  AllocationPlan OnJobFinish(const PolicyContext& ctx, JobId job) override {
    (void)job;
    return RandomPlan(ctx);
  }
  AllocationPlan OnReport(const PolicyContext& ctx, const PerfReport& report) override {
    (void)report;
    return RandomPlan(ctx);
  }
  AllocationPlan OnQuantum(const PolicyContext& ctx) override { return RandomPlan(ctx); }
  bool ShouldAdmit(const PolicyContext& ctx) const override {
    return static_cast<int>(ctx.jobs.size()) < 4;
  }

 private:
  AllocationPlan RandomPlan(const PolicyContext& ctx) {
    AllocationPlan plan;
    if (ctx.jobs.empty()) {
      return plan;
    }
    // Random counts that always sum to <= total_cpus (the policy contract);
    // the RM additionally clamps each to [1, request].
    int budget = ctx.total_cpus;
    for (const PolicyJobInfo& job : ctx.jobs) {
      const int upper = std::max(1, budget - static_cast<int>(ctx.jobs.size()));
      const int count = rng_.UniformInt(0, std::min(upper, 40));
      plan[job.id] = count;
      budget -= std::clamp(count, 1, job.request);
    }
    return plan;
  }

  Rng rng_;
};

TEST(RmChaosTest, NeverOvercommitsAndAlwaysCompletes) {
  Simulation sim;
  ResourceManager::Params rm_params;
  rm_params.num_cpus = 32;
  rm_params.analyzer.noise_sigma = 0.05;
  ResourceManager rm(rm_params, std::make_unique<ChaosPolicy>(Rng(77)), &sim, nullptr, Rng(5));
  std::vector<JobId> finished;
  rm.set_job_finish_callback([&](JobId job, SimTime) { finished.push_back(job); });
  rm.Start();

  const AppProfile profile = AppProfileBuilder("chaos-app")
                                 .WithAmdahl(0.9)
                                 .WithWork(20.0)
                                 .WithIterations(20)
                                 .WithRequest(12)
                                 .Build();
  for (JobId job = 0; job < 4; ++job) {
    rm.StartJob(job, profile, 12, sim.now());
  }
  // Tick-by-tick invariant check while the chaos policy thrashes. Absolute
  // horizons: under tick elision the next pending event may lie beyond a
  // relative now()+dt horizon, and RunUntil leaves now() parked in that case
  // (see the RunUntil contract), so now()+dt stepping would never advance.
  for (int step = 0; step < 4000 && finished.size() < 4u; ++step) {
    sim.RunUntil(static_cast<SimTime>(step + 1) * 20 * kMillisecond);
    int total = 0;
    for (JobId job = 0; job < 4; ++job) {
      const int alloc = rm.AllocationOf(job);
      if (rm.HasJob(job)) {
        ASSERT_GE(alloc, 1);
        ASSERT_LE(alloc, 12);
        total += alloc;
      }
    }
    ASSERT_LE(total, 32);
    ASSERT_GE(rm.machine().FreeCpus(), 0);
  }
  EXPECT_EQ(finished.size(), 4u) << "jobs must finish even under a chaotic policy";
}

// ---------------------------------------------------------------------------
// Progress conservation: the wall time to finish a fixed application must
// be independent of the tick size used to integrate it.

class TickInvarianceTest : public ::testing::TestWithParam<SimDuration> {};

TEST_P(TickInvarianceTest, CompletionTimeIndependentOfTick) {
  const SimDuration tick = GetParam();
  AppProfile profile = AppProfileBuilder("tick-app")
                           .WithCurve({{1, 1.0}, {16, 12.0}})
                           .WithWork(30.0)
                           .WithIterations(30)
                           .Build();
  Application app(1, profile, NoCosts());
  app.SetAllocation(10, 0);
  app.Start(0);
  SimTime now = 0;
  while (!app.finished() && now < 200 * kSecond) {
    app.Advance(now, tick);
    now += tick;
  }
  ASSERT_TRUE(app.finished());
  // True wall time = 30 / S(10); S(10) = 1 + 9/15*11 = 7.6.
  const double expected_s = 30.0 / profile.speedup->SpeedupAt(10);
  EXPECT_NEAR(TimeToSeconds(app.finish_time()), expected_s, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Ticks, TickInvarianceTest,
                         ::testing::Values(kMillisecond, 7 * kMillisecond, 20 * kMillisecond,
                                           100 * kMillisecond, kSecond));

}  // namespace
}  // namespace pdpa
