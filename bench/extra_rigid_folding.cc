// Future-work extension (Sec. 6): rigid MPI-like jobs under PDPA with
// processor folding.
//
// A workload mixes malleable bt jobs with rigid bt jobs (fixed 30-process
// MPI builds of the same code). Two regimes are compared:
//   * PDPA with folding — a rigid job starts as soon as any processors are
//     free; its 30 processes fold onto them at a context-switch overhead.
//   * PDPA with rigid jobs queued until their full request is free (the
//     classic rigid regime, emulated by submitting them with a full-size
//     malleability floor — here approximated by Equipartition, whose fixed
//     ML and equal shares behave like the paper's baseline).
// Expected: folding trades a modest execution-time penalty on rigid jobs
// for much shorter waits, like malleability does for OpenMP jobs.
#include <cstdio>

#include "bench/bench_util.h"

namespace pdpa {
namespace {

std::vector<JobSpec> MixedWorkload() {
  // Deterministic mix: alternating malleable and rigid bt jobs every 20 s.
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 12; ++i) {
    JobSpec spec;
    spec.id = i;
    spec.app_class = AppClass::kBt;
    spec.submit = i * 20 * kSecond;
    // Rigid MPI builds are tied to a power-of-two-ish process count (40)
    // that does not tile the 60-CPU machine with the malleable jobs'
    // allocations — exactly the fragmentation case folding targets.
    spec.rigid = (i % 2) == 1;
    spec.request = spec.rigid ? 40 : 30;
    jobs.push_back(spec);
  }
  return jobs;
}

void Run() {
  std::printf("=== Extra: rigid (MPI-like) jobs — folding vs waiting, under PDPA ===\n\n");
  std::printf("%-18s | %12s | %12s | %10s | %10s\n", "rigid regime", "response(s)", "exec(s)",
              "wait(s)", "makespan");
  for (bool hold : {true, false}) {
    ExperimentConfig config = MakeConfig(WorkloadId::kW1, 1.0, PolicyKind::kPdpa);
    config.jobs_override = MixedWorkload();
    config.hold_rigid_until_fit = hold;
    const ExperimentResult r = RunExperiment(config);
    const ClassMetrics bt = r.metrics.per_class.at(AppClass::kBt);
    std::printf("%-18s | %12.1f | %12.1f | %10.1f | %8.0f s\n",
                hold ? "wait-for-request" : "fold", bt.avg_response_s, bt.avg_exec_s,
                bt.avg_wait_s, r.metrics.makespan_s);
  }
  std::printf(
      "\nReading: folding lets rigid jobs start on whatever is free (paying the\n"
      "%2.0f%% folding overhead in execution time) instead of blocking the queue\n"
      "until 30 CPUs are free at once — the classic malleability-vs-rigidity\n"
      "trade the paper's future-work section targets for MPI codes.\n",
      (1.0 - AppCosts{}.folding_overhead) * 100.0);
}

}  // namespace
}  // namespace pdpa

int main() {
  pdpa::Run();
  return 0;
}
