// Simulator hot-path benchmark: quantifies the event-horizon tick elision
// and guards its byte-identity contract.
//
// Part 1 (A/B): runs W1 @ load 1.0 under PDPA twice — --exact_ticks style
// fine grid vs the elided default — captures the event log and time-series
// from both, and byte-compares them. Records rm.ticks / sim.events_dispatched
// for each mode and the tick elision factor. Exits non-zero if the elided
// run's observable output diverges from the exact run.
//
// Part 2 (throughput): the sweep_bench grid (w1,w2 x 0.6,1.0 x Equip,PDPA
// x 8 seeds = 64 cells) run serially with elision off and on, reporting
// cells/sec for both.
//
// Part 3 (serialization): the same grid with full event + time-series
// capture, run through the retained legacy serializers and the fast path
// (see DESIGN.md §9); byte-compares every cell's recordings and the sweep
// CSV, reporting events-enabled cells/sec for both. Exits non-zero on any
// divergence.
//
// Part 4 (shared-prefix fork, DESIGN.md §12): a prefix-dominated grid — a
// job trace whose first arrival lands minutes into the run, swept across
// the four space-sharing policies x --seeds — run with forking off (every
// cell replays the pre-arrival region) and on (one prefix per group, forked
// into each policy cell). Byte-compares every cell's event log and the
// sweep CSV; on divergence, writes a per-cell diff to --divergence_out and
// exits non-zero. Reports fork_speedup = cold wall / forked wall.
//
// Wall times are medians over --repeat runs (p50 in the JSON).
//
// Usage: hotpath_bench [--seeds N] [--repeat N] [--out BENCH_hotpath.json]
//                      [--divergence_out fork_divergence.diff]
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/flags.h"
#include "src/obs/counters.h"
#include "src/obs/event_log.h"
#include "src/obs/timeseries.h"
#include "src/workload/sweep.h"

namespace pdpa {
namespace {

double Seconds(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

struct AbRun {
  std::string events;
  std::string timeseries;
  long long ticks = 0;
  long long events_dispatched = 0;
  double wall_s = 0.0;
};

AbRun RunAb(bool exact_ticks) {
  ExperimentConfig config;
  config.workload = WorkloadId::kW1;
  config.load = 1.0;
  config.seed = 42;
  config.policy = PolicyKind::kPdpa;
  config.rm.exact_ticks = exact_ticks;

  AbRun run;
  std::ostringstream events_stream;
  EventLog events(&events_stream);
  TimeSeriesSampler timeseries;
  Registry registry;
  config.event_log = &events;
  config.timeseries = &timeseries;
  config.registry = &registry;

  const auto t0 = std::chrono::steady_clock::now();
  (void)RunExperiment(config);
  run.wall_s = Seconds(std::chrono::steady_clock::now() - t0);

  events.Flush();  // The log buffers; push bytes out before reading.
  run.events = events_stream.str();
  std::ostringstream ts_stream;
  timeseries.WriteCsv(ts_stream);
  run.timeseries = ts_stream.str();
  for (const CounterSnapshot& counter : registry.Snapshot().counters) {
    if (counter.name == "rm.ticks") {
      run.ticks = counter.value;
    } else if (counter.name == "sim.events_dispatched") {
      run.events_dispatched = counter.value;
    }
  }
  return run;
}

int Run(int argc, char** argv) {
  FlagSet flags = FlagSet::Parse(argc - 1, argv + 1);
  const int num_seeds = flags.GetInt("seeds", 8);
  const int repeat = flags.GetInt("repeat", 1);
  const std::string out_path = flags.GetString("out", "BENCH_hotpath.json");

  // --- Part 1: exact vs elided A/B on one cell ---------------------------
  const AbRun fine = RunAb(/*exact_ticks=*/true);
  const AbRun coarse = RunAb(/*exact_ticks=*/false);
  const bool identical =
      fine.events == coarse.events && fine.timeseries == coarse.timeseries;
  const double elision_factor =
      coarse.ticks > 0 ? static_cast<double>(fine.ticks) / static_cast<double>(coarse.ticks)
                       : 0.0;
  std::fprintf(stderr,
               "A/B w1@1.0 PDPA: rm.ticks %lld -> %lld (%.2fx), events_dispatched %lld -> "
               "%lld, output %s\n",
               fine.ticks, coarse.ticks, elision_factor, fine.events_dispatched,
               coarse.events_dispatched, identical ? "identical" : "DIFFERS");

  // --- Part 2: serial sweep throughput, elision off vs on ----------------
  SweepGrid grid;
  grid.workloads = {WorkloadId::kW1, WorkloadId::kW2};
  grid.loads = {0.6, 1.0};
  grid.policies = {PolicyKind::kEquipartition, PolicyKind::kPdpa};
  grid.seeds.clear();
  for (int i = 0; i < num_seeds; ++i) {
    grid.seeds.push_back(42 + static_cast<std::uint64_t>(i));
  }
  const std::size_t cells = ExpandGrid(grid).size();

  SweepOptions serial;
  serial.jobs = 1;
  grid.base.rm.exact_ticks = true;
  const double exact_s = MedianWallSeconds(repeat, [&] { (void)RunSweep(grid, serial); });
  grid.base.rm.exact_ticks = false;
  const double elided_s = MedianWallSeconds(repeat, [&] { (void)RunSweep(grid, serial); });
  const double exact_cells_per_s = exact_s > 0 ? static_cast<double>(cells) / exact_s : 0;
  const double elided_cells_per_s = elided_s > 0 ? static_cast<double>(cells) / elided_s : 0;
  std::fprintf(stderr, "sweep %zu cells serial: exact %.2fs (%.0f cells/s), elided %.2fs "
               "(%.0f cells/s)\n",
               cells, exact_s, exact_cells_per_s, elided_s, elided_cells_per_s);

  // --- Part 3: events-enabled sweep, legacy vs fast serialization --------
  SweepOptions capture = serial;
  capture.capture_events = true;
  capture.capture_timeseries = true;
  SweepOptions capture_legacy = capture;
  capture_legacy.legacy_serialization_for_test = true;

  std::vector<SweepCellResult> legacy_results;
  const double events_legacy_s = MedianWallSeconds(
      repeat, [&] { legacy_results = RunSweep(grid, capture_legacy); });
  std::vector<SweepCellResult> fast_results;
  const double events_fast_s =
      MedianWallSeconds(repeat, [&] { fast_results = RunSweep(grid, capture); });

  bool events_identical = legacy_results.size() == fast_results.size();
  for (std::size_t i = 0; events_identical && i < fast_results.size(); ++i) {
    events_identical = legacy_results[i].events_jsonl == fast_results[i].events_jsonl &&
                       legacy_results[i].timeseries_csv == fast_results[i].timeseries_csv;
  }
  std::ostringstream csv_legacy, csv_fast;
  internal::SweepCsvLegacy(legacy_results, grid.seeds.size(), csv_legacy);
  SweepCsv(fast_results, grid.seeds.size(), csv_fast);
  events_identical = events_identical && csv_legacy.str() == csv_fast.str();

  const double events_legacy_cells_per_s =
      events_legacy_s > 0 ? static_cast<double>(cells) / events_legacy_s : 0;
  const double events_fast_cells_per_s =
      events_fast_s > 0 ? static_cast<double>(cells) / events_fast_s : 0;
  const double events_sweep_speedup =
      events_fast_s > 0 ? events_legacy_s / events_fast_s : 0;
  std::fprintf(stderr,
               "events-enabled sweep: legacy %.2fs (%.0f cells/s), fast %.2fs (%.0f cells/s, "
               "%.2fx), recordings %s\n",
               events_legacy_s, events_legacy_cells_per_s, events_fast_s,
               events_fast_cells_per_s, events_sweep_speedup,
               events_identical ? "identical" : "DIFFER");

  // --- Part 4: shared-prefix fork, cold vs forked ------------------------
  // A grid built to look like the sweeps the fork exists for: every cell of
  // a (workload, seed) group replays the same pre-arrival region, and the
  // region is long enough (first arrival ~10 sim-minutes in) that cold runs
  // pay for it once per *cell* while forked runs pay once per *group*.
  SweepGrid fork_grid;
  fork_grid.workloads = {WorkloadId::kW1};
  fork_grid.loads = {1.0};
  fork_grid.policies = {PolicyKind::kEquipartition, PolicyKind::kEqualEfficiency,
                        PolicyKind::kPdpa, PolicyKind::kMcCannDynamic};
  fork_grid.seeds = grid.seeds;
  std::vector<JobSpec> late_trace;
  for (int i = 0; i < 1; ++i) {
    JobSpec spec;
    spec.id = i + 1;
    spec.app_class = AppClass::kSwim;
    spec.submit = 3600 * kSecond + i * kSecond;
    spec.request = 60;
    late_trace.push_back(spec);
  }
  fork_grid.base.jobs_override = late_trace;
  // A coarser quantum is what long-horizon sweeps actually run with; it also
  // keeps the forked cells dominated by the region, not the replan cadence.
  fork_grid.base.rm.quantum = 250 * kMillisecond;
  const std::size_t fork_cells = ExpandGrid(fork_grid).size();

  SweepOptions fork_off;
  fork_off.jobs = 1;
  fork_off.capture_events = true;
  fork_off.fork = false;
  SweepOptions fork_on = fork_off;
  fork_on.fork = true;
  ForkStats fork_stats;
  fork_on.fork_stats = &fork_stats;

  std::vector<SweepCellResult> cold_results;
  const double fork_cold_s =
      MedianWallSeconds(repeat, [&] { cold_results = RunSweep(fork_grid, fork_off); });
  std::vector<SweepCellResult> forked_results;
  const double fork_on_s =
      MedianWallSeconds(repeat, [&] { forked_results = RunSweep(fork_grid, fork_on); });

  std::ostringstream fork_csv_cold, fork_csv_on;
  SweepCsv(cold_results, fork_grid.seeds.size(), fork_csv_cold);
  SweepCsv(forked_results, fork_grid.seeds.size(), fork_csv_on);
  bool fork_identical = fork_csv_cold.str() == fork_csv_on.str() &&
                        cold_results.size() == forked_results.size();
  std::ostringstream divergence;
  for (std::size_t i = 0; i < cold_results.size() && i < forked_results.size(); ++i) {
    if (cold_results[i].events_jsonl != forked_results[i].events_jsonl) {
      fork_identical = false;
      divergence << "=== cell " << cold_results[i].cell.name << " events diverge\n"
                 << "--- fork off\n"
                 << cold_results[i].events_jsonl << "+++ fork on\n"
                 << forked_results[i].events_jsonl;
    }
  }
  if (fork_csv_cold.str() != fork_csv_on.str()) {
    divergence << "=== sweep CSV diverges\n--- fork off\n"
               << fork_csv_cold.str() << "+++ fork on\n"
               << fork_csv_on.str();
  }
  if (!fork_identical) {
    const std::string divergence_path = flags.GetString("divergence_out", "fork_divergence.diff");
    std::ofstream diff_out(divergence_path);
    diff_out << divergence.str();
    std::fprintf(stderr, "fork divergence details written to %s\n", divergence_path.c_str());
  }

  const double fork_cold_cells_per_s =
      fork_cold_s > 0 ? static_cast<double>(fork_cells) / fork_cold_s : 0;
  const double fork_cells_per_s =
      fork_on_s > 0 ? static_cast<double>(fork_cells) / fork_on_s : 0;
  const double fork_speedup = fork_on_s > 0 ? fork_cold_s / fork_on_s : 0;
  std::fprintf(stderr,
               "shared-prefix sweep %zu cells: cold %.2fs (%.0f cells/s), forked %.2fs "
               "(%.0f cells/s, %.2fx), %zu prefixes -> %zu forked cells, output %s\n",
               fork_cells, fork_cold_s, fork_cold_cells_per_s, fork_on_s, fork_cells_per_s,
               fork_speedup, fork_stats.prefixes_built, fork_stats.forked_cells,
               fork_identical ? "identical" : "DIFFERS");

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 2;
  }
  out << "{\n"
      << "  \"ab_cell\": \"w1_1.00_PDPA_s42\",\n"
      << "  \"repeat\": " << repeat << ",\n"
      << "  \"ticks_exact\": " << fine.ticks << ",\n"
      << "  \"ticks_elided\": " << coarse.ticks << ",\n"
      << "  \"tick_elision_factor\": " << elision_factor << ",\n"
      << "  \"events_dispatched_exact\": " << fine.events_dispatched << ",\n"
      << "  \"events_dispatched_elided\": " << coarse.events_dispatched << ",\n"
      << "  \"output_identical\": " << (identical ? "true" : "false") << ",\n"
      << "  \"sweep_cells\": " << cells << ",\n"
      << "  \"sweep_exact_wall_s\": " << exact_s << ",\n"
      << "  \"sweep_elided_wall_s\": " << elided_s << ",\n"
      << "  \"sweep_exact_cells_per_s\": " << exact_cells_per_s << ",\n"
      << "  \"sweep_elided_cells_per_s\": " << elided_cells_per_s << ",\n"
      << "  \"events_sweep_legacy_wall_s\": " << events_legacy_s << ",\n"
      << "  \"events_sweep_fast_wall_s\": " << events_fast_s << ",\n"
      << "  \"events_sweep_legacy_cells_per_s\": " << events_legacy_cells_per_s << ",\n"
      << "  \"events_sweep_fast_cells_per_s\": " << events_fast_cells_per_s << ",\n"
      << "  \"events_sweep_speedup\": " << events_sweep_speedup << ",\n"
      << "  \"events_output_identical\": " << (events_identical ? "true" : "false") << ",\n"
      << "  \"fork_sweep_cells\": " << fork_cells << ",\n"
      << "  \"fork_prefixes_built\": " << fork_stats.prefixes_built << ",\n"
      << "  \"fork_forked_cells\": " << fork_stats.forked_cells << ",\n"
      << "  \"fork_cold_wall_s\": " << fork_cold_s << ",\n"
      << "  \"fork_wall_s\": " << fork_on_s << ",\n"
      << "  \"fork_cold_cells_per_s\": " << fork_cold_cells_per_s << ",\n"
      << "  \"fork_cells_per_s\": " << fork_cells_per_s << ",\n"
      << "  \"fork_speedup\": " << fork_speedup << ",\n"
      << "  \"fork_output_identical\": " << (fork_identical ? "true" : "false") << "\n"
      << "}\n";
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  return identical && events_identical && fork_identical ? 0 : 1;
}

}  // namespace
}  // namespace pdpa

int main(int argc, char** argv) { return pdpa::Run(argc, argv); }
