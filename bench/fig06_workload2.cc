// Fig. 6 — Workload 2 (50% bt, 50% hydro2d): average response and execution
// times versus machine load.
//
// Expected shape (paper): PDPA beats Equip on bt (~10%) by splitting the
// machine 20/9 instead of 15/15; Equip beats PDPA on hydro2d (20-30%); both
// far ahead of IRIX and Equal_efficiency.
#include "bench/bench_util.h"

int main() {
  pdpa::RunFigureGrid("Fig. 6: workload 2 (bt + hydro2d)", pdpa::WorkloadId::kW2,
                      {pdpa::AppClass::kBt, pdpa::AppClass::kHydro2d});
  return 0;
}
