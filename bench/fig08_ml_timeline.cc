// Fig. 8 — The multiprogramming level decided by PDPA over time (workload
// 2, load = 100%). The fixed-ML baselines would show a flat line at 4; PDPA
// adapts it to the running applications.
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"

namespace pdpa {
namespace {

void Run() {
  std::printf("=== Fig. 8: multiprogramming level decided by PDPA (w2, load=100%%) ===\n\n");
  ExperimentConfig config = MakeConfig(WorkloadId::kW2, 1.0, PolicyKind::kPdpa);
  const ExperimentResult result = RunExperiment(config);

  // Bucket the (time, ml) step function into 10-second bins (max within bin)
  // and draw a horizontal bar chart.
  const double end_s = result.metrics.makespan_s;
  const double bin_s = 10.0;
  const int bins = static_cast<int>(end_s / bin_s) + 1;
  std::vector<int> ml_per_bin(static_cast<std::size_t>(bins), 0);
  int current_ml = 0;
  std::size_t idx = 0;
  for (int b = 0; b < bins; ++b) {
    const double t0 = b * bin_s;
    const double t1 = t0 + bin_s;
    int peak = current_ml;
    while (idx < result.ml_timeline_s.size() && result.ml_timeline_s[idx].first < t1) {
      current_ml = result.ml_timeline_s[idx].second;
      peak = std::max(peak, current_ml);
      ++idx;
    }
    ml_per_bin[static_cast<std::size_t>(b)] = peak;
  }
  for (int b = 0; b < bins; ++b) {
    std::printf("%5.0fs |", b * bin_s);
    for (int i = 0; i < ml_per_bin[static_cast<std::size_t>(b)]; ++i) {
      std::printf("#");
    }
    std::printf(" %d\n", ml_per_bin[static_cast<std::size_t>(b)]);
  }
  std::printf("\npeak multiprogramming level: %d (paper: up to 6 on this workload)\n",
              result.max_ml);
}

}  // namespace
}  // namespace pdpa

int main() {
  pdpa::Run();
  return 0;
}
