// Future-work extension (Sec. 6): PDPA on a cluster of SMPs.
//
// The same workload runs on (a) one 64-CPU SMP and (b) a cluster of 4
// 16-CPU nodes, each node under its own PDPA resource manager, with three
// cluster-level placement policies. Jobs are node-local (an OpenMP
// application cannot span nodes), so the cluster pays node-boundary
// fragmentation: a 30-CPU request can use at most 16 CPUs. The interesting
// question is how much of the single-SMP performance the cooperating
// per-node PDPA schedulers recover, and how placement matters.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/cluster/cluster.h"
#include "src/core/pdpa_policy.h"

namespace pdpa {
namespace {

struct RunResult {
  WorkloadMetrics metrics;
  bool completed = false;
};

RunResult RunClustered(const std::vector<JobSpec>& jobs, int num_nodes, int cpus_per_node,
                       PlacementPolicy placement) {
  ClusterOptions options;
  options.num_nodes = num_nodes;
  options.cpus_per_node = cpus_per_node;
  options.placement = placement;
  options.make_policy = [] { return std::make_unique<PdpaPolicy>(PdpaParams{}, PdpaMlParams{}); };
  options.seed = 99;
  options.max_sim_time = 4 * 3600 * kSecond;
  const ClusterResult run = RunCluster(jobs, options);
  RunResult result;
  result.completed = run.completed;
  result.metrics = ComputeMetrics(run.outcomes, run.alloc_integral_us);
  return result;
}

void PrintRow(const char* label, const WorkloadMetrics& metrics, bool completed) {
  double response = 0.0;
  int jobs = 0;
  for (const auto& [app_class, m] : metrics.per_class) {
    response += m.avg_response_s * m.count;
    jobs += m.count;
  }
  std::printf("%-24s | %10.1f | %12.1f%s\n", label, jobs > 0 ? response / jobs : 0.0,
              metrics.makespan_s, completed ? "" : "  [CUTOFF]");
}

void Run() {
  std::printf("=== Extra: PDPA on a cluster of SMPs (w2, load = 100%%) ===\n\n");
  const std::vector<JobSpec> jobs = BuildWorkload(WorkloadId::kW2, 1.0, /*seed=*/42,
                                                  /*untuned=*/false, /*num_cpus=*/64);
  std::printf("%-24s | %10s | %12s\n", "configuration", "mean resp", "makespan (s)");

  // Reference: one big SMP.
  {
    ExperimentConfig config = MakeConfig(WorkloadId::kW2, 1.0, PolicyKind::kPdpa);
    config.num_cpus = 64;
    config.jobs_override = jobs;
    const ExperimentResult r = RunExperiment(config);
    PrintRow("1 x 64 SMP", r.metrics, r.completed);
  }
  for (PlacementPolicy placement :
       {PlacementPolicy::kRoundRobin, PlacementPolicy::kMostFreeCpus,
        PlacementPolicy::kLeastLoaded}) {
    const RunResult r = RunClustered(jobs, /*num_nodes=*/4, /*cpus_per_node=*/16, placement);
    char label[64];
    std::snprintf(label, sizeof(label), "4 x 16, %s", PlacementPolicyName(placement));
    PrintRow(label, r.metrics, r.completed);
  }
  std::printf(
      "\nReading: node boundaries cap every job at 16 CPUs, so the cluster's\n"
      "execution times stretch; per-node PDPA still packs each node (jobs\n"
      "shrink to fit) and placement choice shifts the balance between nodes.\n");
}

}  // namespace
}  // namespace pdpa

int main() {
  pdpa::Run();
  return 0;
}
