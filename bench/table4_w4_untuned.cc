// Table 4 — Workload 4 with every application submitted untuned (all
// requests = 30), load = 60%: Equipartition versus PDPA, per-class
// execution/response plus workload makespan.
//
// Expected shape (paper): PDPA wins response time on every class (109% to
// 2830%) and the total workload time (~282%), paying at most ~30% in
// per-class execution time.
#include <cstdio>

#include "bench/bench_util.h"

namespace pdpa {
namespace {

const AppClass kClasses[] = {AppClass::kSwim, AppClass::kBt, AppClass::kHydro2d,
                             AppClass::kApsi};

void Run() {
  std::printf("=== Table 4: w4 not tuned (all requests = 30), load = 60%% ===\n");
  std::map<PolicyKind, ExperimentResult> results;
  for (PolicyKind policy : {PolicyKind::kEquipartition, PolicyKind::kPdpa}) {
    ExperimentConfig config = MakeConfig(WorkloadId::kW4, 0.6, policy);
    config.untuned = true;
    config.record_trace = true;
    results[policy] = RunExperiment(config);
  }

  std::printf("%-8s", "policy");
  for (AppClass c : kClasses) {
    std::printf(" | %-19s", AppClassName(c));
  }
  std::printf(" | %10s | %5s\n", "makespan", "util");
  std::printf("%-8s", "");
  for (int i = 0; i < 4; ++i) {
    std::printf(" | %9s %9s", "exec(s)", "resp(s)");
  }
  std::printf(" |            |\n");

  for (PolicyKind policy : {PolicyKind::kEquipartition, PolicyKind::kPdpa}) {
    const ExperimentResult& r = results[policy];
    std::printf("%-8s", PolicyKindName(policy));
    for (AppClass c : kClasses) {
      const ClassMetrics m =
          r.metrics.per_class.count(c) ? r.metrics.per_class.at(c) : ClassMetrics{};
      std::printf(" | %9.0f %9.0f", m.avg_exec_s, m.avg_response_s);
    }
    std::printf(" | %9.0fs | %4.0f%%\n", r.metrics.makespan_s, r.utilization * 100.0);
  }

  // Ratio row, paper-style: positive % = PDPA better, negative = worse.
  const ExperimentResult& equip = results[PolicyKind::kEquipartition];
  const ExperimentResult& pd = results[PolicyKind::kPdpa];
  std::printf("%-8s", "%");
  for (AppClass c : kClasses) {
    const ClassMetrics& me = equip.metrics.per_class.count(c)
                                 ? equip.metrics.per_class.at(c)
                                 : ClassMetrics{};
    const ClassMetrics& mp =
        pd.metrics.per_class.count(c) ? pd.metrics.per_class.at(c) : ClassMetrics{};
    auto ratio_pct = [](double baseline, double ours) {
      if (ours <= 0.0 || baseline <= 0.0) {
        return 0.0;
      }
      return baseline >= ours ? 100.0 * (baseline / ours - 1.0) : -100.0 * (ours / baseline - 1.0);
    };
    std::printf(" | %8.0f%% %8.0f%%", ratio_pct(me.avg_exec_s, mp.avg_exec_s),
                ratio_pct(me.avg_response_s, mp.avg_response_s));
  }
  std::printf(" | %9.0f%% |\n",
              100.0 * (equip.metrics.makespan_s / pd.metrics.makespan_s - 1.0));

  std::printf(
      "\npaper:   Equip  6/368  101/568  32/453  104/773  | 126s* | util ~100%%\n"
      "         PDPA   8/13    81/92   37/45    98/109  | 496s* | util ~70%%\n"
      "         %%     -30/2830 -24/617 -15/1006  6/109  | 282%%\n"
      "(*the paper's 126/496 makespan row is inconsistent with its own %% row;\n"
      " shape to match: PDPA total ~3-4x better, per-class exec within ~30%%)\n");
}

}  // namespace
}  // namespace pdpa

int main() {
  pdpa::Run();
  return 0;
}
