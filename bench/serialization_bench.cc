// Serialization fast-path microbenchmark: the zero-allocation event-log /
// CSV writers (DESIGN.md §9) against the retained PR-4 baseline
// serializers (per-field StrFormat temporaries, per-line ostream writes).
//
// Part 1 streams a fixed mix of typed events through an EventLog into a
// byte-counting null sink, once per serializer, and reports events/s and
// bytes/s. Part 2 does the same for the time-series CSV writer (rows/s).
// Both paths are also byte-compared on a small sample; any divergence makes
// the bench exit non-zero (the real guarantee lives in
// tests/serialization_test.cc — this is a tripwire).
//
// Wall times are medians over --repeat runs (p50 in the JSON).
//
// Usage: serialization_bench [--events N] [--repeat N]
//                            [--out BENCH_serialization.json]
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <streambuf>
#include <string>

#include "bench/bench_util.h"
#include "src/common/flags.h"
#include "src/obs/event_log.h"
#include "src/obs/timeseries.h"

namespace pdpa {
namespace {

// Discards everything, counts bytes: measures serialization, not sink I/O.
class CountingBuf : public std::streambuf {
 public:
  unsigned long long count() const { return count_; }

 protected:
  int_type overflow(int_type c) override {
    if (!traits_type::eq_int_type(c, traits_type::eof())) {
      ++count_;
    }
    return traits_type::not_eof(c);
  }
  std::streamsize xsputn(const char* /*s*/, std::streamsize n) override {
    count_ += static_cast<unsigned long long>(n);
    return n;
  }

 private:
  unsigned long long count_ = 0;
};

// One run's worth of records: a deterministic 8-event cycle over the typed
// emitters, numeric content varying per iteration so the double/int
// formatters see a spread of values.
void EmitMix(EventLog* log, long long events) {
  log->RunStart("PDPA", "w1", 1.0, 42, 60);
  const std::string plan = "1:8 2:8 3:4 4:12";
  long long emitted = 1;
  for (long long i = 0; emitted < events; ++i) {
    const SimTime t = 20000 * i;
    const JobId job = static_cast<JobId>(i % 40);
    const double speedup = 1.0 + 0.37 * static_cast<double>(i % 29);
    const double eff = speedup / static_cast<double>(4 + i % 13);
    switch (i % 8) {
      case 0:
        log->JobSubmit(t, job, "hydro2d", 24, (i % 5) == 0);
        break;
      case 1:
        log->JobStart(t, job, "hydro2d", 24, static_cast<int>(i % 16) + 1,
                      static_cast<int>(i % 7), static_cast<int>(i % 3));
        break;
      case 2:
        log->PerfSample(t, job, static_cast<int>(i % 16) + 1, speedup, eff);
        break;
      case 3:
        log->PdpaTransition(t, job, "NO_REF", "INC", static_cast<int>(i % 16),
                            static_cast<int>(i % 16) + 2, speedup, eff, 0.7, "report");
        break;
      case 4:
        log->AllocDecision(t, "quantum", plan);
        break;
      case 5:
        log->CpuHandoffs(t, static_cast<int>(i % 9), static_cast<int>(i % 4));
        break;
      case 6:
        log->AdmitHold(t, static_cast<int>(i % 7), static_cast<int>(i % 3),
                       static_cast<int>(i % 11));
        break;
      default:
        log->JobFinish(t, job, t / 2, (3 * t) / 4);
        break;
    }
    ++emitted;
  }
  log->RunEnd(20000 * events, 40, true);
}

struct EventsRun {
  double wall_s = 0.0;
  unsigned long long bytes = 0;
};

EventsRun BenchEvents(bool legacy, long long events, int repeat) {
  EventsRun run;
  run.wall_s = MedianWallSeconds(repeat, [&] {
    CountingBuf buf;
    std::ostream sink(&buf);
    EventLog log(&sink);
    log.set_legacy_serialization_for_test(legacy);
    EmitMix(&log, events);
    log.Flush();
    run.bytes = buf.count();
  });
  return run;
}

void FillSampler(TimeSeriesSampler* sampler, int rows) {
  const char* const kStates[] = {"NO_REF", "INC", "DEC", "STABLE"};
  for (int i = 0; i < rows; ++i) {
    if (i % 5 == 4) {
      sampler->AddMachine({20000LL * i, i % 17, i % 9, i % 4,
                           static_cast<double>(i % 64) / 64.0});
    } else {
      sampler->AddApp({20000LL * i, 20000LL * (i + 1), i % 40,
                       static_cast<double>(1 + i % 16), 1.0 + 0.37 * (i % 29),
                       static_cast<double>(i % 64) / 64.0, kStates[i % 4]});
    }
  }
}

int Run(int argc, char** argv) {
  FlagSet flags = FlagSet::Parse(argc - 1, argv + 1);
  const long long events = flags.GetInt("events", 400000);
  const int repeat = flags.GetInt("repeat", 3);
  const std::string out_path = flags.GetString("out", "BENCH_serialization.json");

  // Byte-identity tripwire on a small sample of both pipelines.
  std::ostringstream legacy_sample, fast_sample;
  {
    EventLog log(&legacy_sample);
    log.set_legacy_serialization_for_test(true);
    EmitMix(&log, 2000);
  }
  {
    EventLog log(&fast_sample);
    EmitMix(&log, 2000);
  }
  TimeSeriesSampler sampler;
  FillSampler(&sampler, 2000);
  std::ostringstream legacy_csv, fast_csv;
  internal::WriteTimeSeriesCsvLegacy(sampler, legacy_csv);
  sampler.WriteCsv(fast_csv);
  const bool identical =
      legacy_sample.str() == fast_sample.str() && legacy_csv.str() == fast_csv.str();

  // Part 1: event emission throughput.
  const EventsRun legacy = BenchEvents(/*legacy=*/true, events, repeat);
  const EventsRun fast = BenchEvents(/*legacy=*/false, events, repeat);
  const double legacy_events_per_s =
      legacy.wall_s > 0 ? static_cast<double>(events) / legacy.wall_s : 0;
  const double fast_events_per_s =
      fast.wall_s > 0 ? static_cast<double>(events) / fast.wall_s : 0;
  const double events_speedup =
      legacy_events_per_s > 0 ? fast_events_per_s / legacy_events_per_s : 0;

  // Part 2: time-series CSV throughput over a large sampler.
  const int ts_rows = 200000;
  TimeSeriesSampler big;
  FillSampler(&big, ts_rows);
  const double ts_legacy_s = MedianWallSeconds(repeat, [&] {
    CountingBuf buf;
    std::ostream sink(&buf);
    internal::WriteTimeSeriesCsvLegacy(big, sink);
  });
  const double ts_fast_s = MedianWallSeconds(repeat, [&] {
    CountingBuf buf;
    std::ostream sink(&buf);
    big.WriteCsv(sink);
  });
  const double ts_speedup = ts_fast_s > 0 ? ts_legacy_s / ts_fast_s : 0;

  std::fprintf(stderr,
               "events x%lld: legacy %.0f/s, fast %.0f/s (%.2fx); timeseries x%d rows: "
               "legacy %.3fs, fast %.3fs (%.2fx); outputs %s\n",
               events, legacy_events_per_s, fast_events_per_s, events_speedup, ts_rows,
               ts_legacy_s, ts_fast_s, ts_speedup, identical ? "identical" : "DIFFER");

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 2;
  }
  out << "{\n"
      << "  \"events\": " << events << ",\n"
      << "  \"repeat\": " << repeat << ",\n"
      << "  \"legacy_wall_s\": " << legacy.wall_s << ",\n"
      << "  \"fast_wall_s\": " << fast.wall_s << ",\n"
      << "  \"legacy_events_per_s\": " << legacy_events_per_s << ",\n"
      << "  \"fast_events_per_s\": " << fast_events_per_s << ",\n"
      << "  \"events_speedup\": " << events_speedup << ",\n"
      << "  \"legacy_bytes_per_s\": "
      << (legacy.wall_s > 0 ? static_cast<double>(legacy.bytes) / legacy.wall_s : 0) << ",\n"
      << "  \"fast_bytes_per_s\": "
      << (fast.wall_s > 0 ? static_cast<double>(fast.bytes) / fast.wall_s : 0) << ",\n"
      << "  \"bytes_per_event\": "
      << (events > 0 ? static_cast<double>(fast.bytes) / static_cast<double>(events) : 0)
      << ",\n"
      << "  \"timeseries_rows\": " << ts_rows << ",\n"
      << "  \"timeseries_legacy_wall_s\": " << ts_legacy_s << ",\n"
      << "  \"timeseries_fast_wall_s\": " << ts_fast_s << ",\n"
      << "  \"timeseries_speedup\": " << ts_speedup << ",\n"
      << "  \"output_identical\": " << (identical ? "true" : "false") << "\n"
      << "}\n";
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  return identical ? 0 : 1;
}

}  // namespace
}  // namespace pdpa

int main(int argc, char** argv) { return pdpa::Run(argc, argv); }
