// Ablation — sensitivity to the target efficiency (DESIGN.md §5).
//
// target_eff is PDPA's one administrator knob: the minimum efficiency an
// allocation must sustain. This harness sweeps it on workload 2 at full
// load and also runs the dynamic load-adaptive mode the paper sketches
// ("Alternatively, it is dynamically set depending on the load").
// Expected: low targets hand out processors freely (better per-job exec,
// worse packing); high targets squeeze allocations (worse exec, more
// admitted jobs, better response under queueing); dynamic lands between.
#include <cstdio>

#include "bench/bench_util.h"

namespace pdpa {
namespace {

void RunOne(const char* label, ExperimentConfig config) {
  const ExperimentResult r = RunExperiment(config);
  const ClassMetrics bt = r.metrics.per_class.count(AppClass::kBt)
                              ? r.metrics.per_class.at(AppClass::kBt)
                              : ClassMetrics{};
  const ClassMetrics hy = r.metrics.per_class.count(AppClass::kHydro2d)
                              ? r.metrics.per_class.at(AppClass::kHydro2d)
                              : ClassMetrics{};
  std::printf("%-12s | %8.1f / %8.1f / %5.1f | %8.1f / %8.1f / %5.1f | %9.1f | %6d\n", label,
              bt.avg_response_s, bt.avg_exec_s, bt.avg_alloc, hy.avg_response_s, hy.avg_exec_s,
              hy.avg_alloc, r.metrics.makespan_s, r.max_ml);
}

void Run() {
  std::printf("=== Ablation: target efficiency sweep (w2, load = 100%%) ===\n\n");
  std::printf("%-12s | %28s | %28s | %9s | %6s\n", "target_eff", "bt resp/exec/cpus",
              "hydro2d resp/exec/cpus", "makespan", "max ml");
  for (double target : {0.5, 0.6, 0.7, 0.8}) {
    ExperimentConfig config = MakeConfig(WorkloadId::kW2, 1.0, PolicyKind::kPdpa);
    config.pdpa.target_eff = target;
    char label[32];
    std::snprintf(label, sizeof(label), "%.1f", target);
    RunOne(label, config);
  }
  {
    ExperimentConfig config = MakeConfig(WorkloadId::kW2, 1.0, PolicyKind::kPdpa);
    config.pdpa.dynamic_target = true;
    RunOne("dynamic", config);
  }
  std::printf(
      "\nReading: raising target_eff trims hydro2d harder (fewer CPUs, longer\n"
      "exec) and frees capacity; the dynamic mode relaxes the target when the\n"
      "machine has headroom and tightens it under pressure.\n");
}

}  // namespace
}  // namespace pdpa

int main() {
  pdpa::Run();
  return 0;
}
