// Ablation — PDPA's two contributions in isolation (DESIGN.md §5).
//
// The paper claims the processor-allocation policy and the coordinated
// multiprogramming-level policy are "orthogonal and complementary". This
// harness runs workload 3 (the ML-sensitive one) under:
//   * Equipartition             — neither contribution
//   * PDPA-alloc-only           — PDPA allocation, fixed ML=4 (coordination off)
//   * PDPA (full)               — both
// Expected: alloc-only yields the best execution times (apsi no longer
// steals processors from bt) but *worse* response times than Equipartition
// (the freed processors sit idle at the fixed ML); the response-time
// collapse only happens once the coordinated ML rule admits queued jobs
// into that idle capacity.
#include <cstdio>

#include "bench/bench_util.h"

namespace pdpa {
namespace {

void Run() {
  std::printf("=== Ablation: allocation policy vs ML coordination (w3) ===\n\n");
  for (double load : {0.6, 1.0}) {
    std::printf("--- load = %.0f%%, untuned requests ---\n", load * 100);
    std::printf("%-16s | %19s | %19s | %12s | %6s\n", "variant", "bt resp/exec (s)",
                "apsi resp/exec (s)", "makespan (s)", "max ml");
    struct Variant {
      const char* name;
      PolicyKind policy;
      bool coordinated;
    };
    const Variant variants[] = {
        {"Equip", PolicyKind::kEquipartition, true},
        {"PDPA alloc-only", PolicyKind::kPdpa, false},
        {"PDPA full", PolicyKind::kPdpa, true},
    };
    for (const Variant& variant : variants) {
      ExperimentConfig config = MakeConfig(WorkloadId::kW3, load, variant.policy);
      config.untuned = true;
      config.pdpa_coordinated_ml = variant.coordinated;
      const ExperimentResult r = RunExperiment(config);
      const ClassMetrics bt = r.metrics.per_class.count(AppClass::kBt)
                                  ? r.metrics.per_class.at(AppClass::kBt)
                                  : ClassMetrics{};
      const ClassMetrics apsi = r.metrics.per_class.count(AppClass::kApsi)
                                    ? r.metrics.per_class.at(AppClass::kApsi)
                                    : ClassMetrics{};
      std::printf("%-16s | %8.0f / %8.0f | %8.0f / %8.0f | %12.0f | %6d\n", variant.name,
                  bt.avg_response_s, bt.avg_exec_s, apsi.avg_response_s, apsi.avg_exec_s,
                  r.metrics.makespan_s, r.max_ml);
    }
    std::printf("\n");
  }
  std::printf(
      "Reading: alloc-only trims apsi to its useful size, which shows up as\n"
      "the best bt execution times — but with a fixed ML the freed processors\n"
      "just sit idle and response times get WORSE than Equipartition. Only\n"
      "the coordinated ML rule turns the freed capacity into admitted jobs\n"
      "and collapses response times: the two contributions need each other.\n");
}

}  // namespace
}  // namespace pdpa

int main() {
  pdpa::Run();
  return 0;
}
