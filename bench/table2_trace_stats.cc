// Table 2 — IRIX versus PDPA and Equipartition on workload 1 at 100% load:
// kernel-thread migrations, average execution-burst length per CPU, and
// average number of bursts per CPU.
//
// Expected shape (paper): IRIX migrations are 2-4 orders of magnitude above
// PDPA/Equip; IRIX bursts are ~50x shorter; PDPA reallocates the least.
#include <cstdio>

#include "bench/bench_util.h"

namespace pdpa {
namespace {

void Run() {
  std::printf("=== Table 2: IRIX vs PDPA vs Equip, workload 1, load = 100%% ===\n");
  std::printf("%-10s %14s %26s %26s\n", "policy", "migrations", "avg exec burst per cpu",
              "avg #bursts per cpu");
  for (PolicyKind policy :
       {PolicyKind::kIrix, PolicyKind::kPdpa, PolicyKind::kEquipartition}) {
    ExperimentConfig config = MakeConfig(WorkloadId::kW1, 1.0, policy);
    config.record_trace = true;
    const ExperimentResult result = RunExperiment(config);
    std::printf("%-10s %14lld %22.0f ms. %26.0f\n", result.policy_name.c_str(),
                result.trace_stats.migrations, result.trace_stats.avg_burst_ms,
                result.trace_stats.avg_bursts_per_cpu);
  }
  std::printf("\npaper:    IRIX 159,865 migrations, 243 ms bursts, 2882 bursts/cpu\n");
  std::printf("          PDPA 66 migrations, 10,782 ms bursts, 41 bursts/cpu\n");
  std::printf("          Equip 325 migrations, 11,375 ms bursts, 43 bursts/cpu\n");
}

}  // namespace
}  // namespace pdpa

int main() {
  pdpa::Run();
  return 0;
}
