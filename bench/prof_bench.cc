// Profiler overhead benchmark: runs one serial sweep grid with the
// self-profiler off and again with it on, verifies the sweep CSVs are
// byte-identical (the profiler must never perturb outputs), and writes
// BENCH_prof.json. The headline gate is prof_off_factor — this bench's
// profiler-off throughput relative to sweep_bench's serial_cells_per_s from
// --sweep_baseline, measured on the same host so machine speed cancels; CI
// enforces `bench_check --min prof_off_factor=0.98` (<= 2% overhead from
// the disabled instrumentation). Wall times are medians over --repeat.
//
// prof_hits_total / prof_span_kinds are the deterministic half of the
// profile (exact-match metrics in bench_check); the *_wall_s / *_per_s
// fields are informational host measurements.
//
// Usage: prof_bench [--seeds N] [--repeat N] [--sweep_baseline BENCH_sweep.json]
//                   [--out BENCH_prof.json]
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/flags.h"
#include "src/common/strings.h"
#include "src/obs/event_log.h"
#include "src/obs/prof.h"
#include "src/workload/sweep.h"

namespace pdpa {
namespace {

// Reads serial_cells_per_s from a sweep_bench JSON report. The file is one
// object pretty-printed across lines; flattening the newlines makes it a
// flat JSON object ParseFlatJson accepts.
double ReadSweepBaseline(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return 0.0;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string text = buffer.str();
  for (char& c : text) {
    if (c == '\n' || c == '\r') {
      c = ' ';
    }
  }
  std::map<std::string, std::string> fields;
  if (!ParseFlatJson(text, &fields)) {
    return 0.0;
  }
  double cells_per_s = 0.0;
  const auto it = fields.find("serial_cells_per_s");
  if (it == fields.end() || !ParseDouble(it->second, &cells_per_s)) {
    return 0.0;
  }
  return cells_per_s;
}

int Run(int argc, char** argv) {
  FlagSet flags = FlagSet::Parse(argc - 1, argv + 1);
  const int num_seeds = flags.GetInt("seeds", 8);
  const int repeat = flags.GetInt("repeat", 1);
  const std::string baseline_path = flags.GetString("sweep_baseline", "BENCH_sweep.json");
  const std::string out_path = flags.GetString("out", "BENCH_prof.json");

  // The same grid as sweep_bench's serial leg, so cells/sec are comparable.
  SweepGrid grid;
  grid.workloads = {WorkloadId::kW1, WorkloadId::kW2};
  grid.loads = {0.6, 1.0};
  grid.policies = {PolicyKind::kEquipartition, PolicyKind::kPdpa};
  grid.seeds.clear();
  for (int i = 0; i < num_seeds; ++i) {
    grid.seeds.push_back(42 + static_cast<std::uint64_t>(i));
  }
  const std::size_t cells = ExpandGrid(grid).size();
  const double baseline_cells_per_s = ReadSweepBaseline(baseline_path);
  std::fprintf(stderr, "prof_bench: %zu cells, sweep baseline %.1f cells/s (%s)\n", cells,
               baseline_cells_per_s, baseline_path.c_str());

  SweepOptions off;
  off.jobs = 1;
  std::vector<SweepCellResult> off_results;
  const double off_s = MedianWallSeconds(repeat, [&] { off_results = RunSweep(grid, off); });

  SweepOptions on = off;
  on.capture_prof = true;
  std::vector<SweepCellResult> on_results;
  const double on_s = MedianWallSeconds(repeat, [&] { on_results = RunSweep(grid, on); });

  std::ostringstream csv_off, csv_on;
  SweepCsv(off_results, grid.seeds.size(), csv_off);
  SweepCsv(on_results, grid.seeds.size(), csv_on);
  const bool identical = csv_off.str() == csv_on.str();

  const Profiler merged = MergeProfiles(on_results);
  const long long hits = merged.TotalHits();
  int span_kinds = 0;
  for (int i = 0; i < kNumSpanIds; ++i) {
    span_kinds += merged.stats(static_cast<SpanId>(i)).hits > 0 ? 1 : 0;
  }

  const double off_cells_per_s = off_s > 0 ? static_cast<double>(cells) / off_s : 0;
  const double on_cells_per_s = on_s > 0 ? static_cast<double>(cells) / on_s : 0;

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 2;
  }
  out << "{\n"
      << "  \"cells\": " << cells << ",\n"
      << "  \"seeds\": " << num_seeds << ",\n"
      << "  \"repeat\": " << repeat << ",\n"
      << "  \"jobs\": " << 1 << ",\n"
      << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency() << ",\n"
      << "  \"sweep_baseline_cells_per_s\": " << baseline_cells_per_s << ",\n"
      << "  \"off_wall_s\": " << off_s << ",\n"
      << "  \"on_wall_s\": " << on_s << ",\n"
      << "  \"off_cells_per_s\": " << off_cells_per_s << ",\n"
      << "  \"on_cells_per_s\": " << on_cells_per_s << ",\n"
      << "  \"prof_off_factor\": "
      << (baseline_cells_per_s > 0 ? off_cells_per_s / baseline_cells_per_s : 0) << ",\n"
      << "  \"prof_on_factor\": "
      << (baseline_cells_per_s > 0 ? on_cells_per_s / baseline_cells_per_s : 0) << ",\n"
      << "  \"prof_spans_per_s\": "
      << (on_s > 0 ? static_cast<double>(hits) / on_s : 0) << ",\n"
      << "  \"prof_hits_total\": " << hits << ",\n"
      << "  \"prof_span_kinds\": " << span_kinds << ",\n"
      << "  \"outputs_identical\": " << (identical ? "true" : "false") << "\n"
      << "}\n";
  std::fprintf(stderr,
               "off %.2fs (%.1f cells/s), on %.2fs (%.1f cells/s), %lld span hits, csv %s, "
               "wrote %s\n",
               off_s, off_cells_per_s, on_s, on_cells_per_s, hits,
               identical ? "identical" : "DIFFERS", out_path.c_str());
  return identical ? 0 : 1;
}

}  // namespace
}  // namespace pdpa

int main(int argc, char** argv) { return pdpa::Run(argc, argv); }
