// Ablation — robustness of PDPA to its remaining knobs and to the
// environment (DESIGN.md §5):
//   * measurement noise (SelfAnalyzer timer jitter / interference),
//   * the allocation step size,
//   * the cost of reallocation (reconfiguration freeze).
// The paper argues PDPA's convergence gives it robustness that reactive
// policies (Equal_efficiency) lack; the noise sweep quantifies that claim.
#include <cstdio>

#include "bench/bench_util.h"

namespace pdpa {
namespace {

double MeanResponse(const ExperimentResult& r) {
  double total = 0.0;
  int jobs = 0;
  for (const auto& [app_class, m] : r.metrics.per_class) {
    total += m.avg_response_s * m.count;
    jobs += m.count;
  }
  return jobs > 0 ? total / jobs : 0.0;
}

void Run() {
  std::printf("=== Ablation: robustness sweeps (w2, load = 100%%) ===\n\n");

  std::printf("-- measurement noise sigma (PDPA vs Equal_efficiency mean response, s) --\n");
  std::printf("%-8s %12s %12s\n", "sigma", "PDPA", "Equal_eff");
  for (double sigma : {0.0, 0.02, 0.05, 0.1, 0.2}) {
    double resp[2] = {0, 0};
    int i = 0;
    for (PolicyKind policy : {PolicyKind::kPdpa, PolicyKind::kEqualEfficiency}) {
      ExperimentConfig config = MakeConfig(WorkloadId::kW2, 1.0, policy);
      config.rm.analyzer.noise_sigma = sigma;
      resp[i++] = MeanResponse(RunExperiment(config));
    }
    std::printf("%-8.2f %12.1f %12.1f\n", sigma, resp[0], resp[1]);
  }

  std::printf("\n-- PDPA step size (search granularity) --\n");
  std::printf("%-8s %12s %14s %15s\n", "step", "mean resp", "makespan (s)", "reallocations");
  for (int step : {1, 2, 4, 8, 16}) {
    ExperimentConfig config = MakeConfig(WorkloadId::kW2, 1.0, PolicyKind::kPdpa);
    config.pdpa.step = step;
    const ExperimentResult r = RunExperiment(config);
    std::printf("%-8d %12.1f %14.1f %15lld\n", step, MeanResponse(r), r.metrics.makespan_s,
                r.reallocations);
  }

  std::printf("\n-- reconfiguration freeze (cost per reallocation, ms) --\n");
  std::printf("%-8s %12s %12s %12s\n", "ms", "PDPA", "Equal_eff", "Dynamic");
  for (double freeze_ms : {0.0, 30.0, 100.0, 300.0}) {
    double resp[3] = {0, 0, 0};
    int i = 0;
    for (PolicyKind policy :
         {PolicyKind::kPdpa, PolicyKind::kEqualEfficiency, PolicyKind::kMcCannDynamic}) {
      ExperimentConfig config = MakeConfig(WorkloadId::kW2, 1.0, policy);
      config.rm.app_costs.reconfig_freeze = MillisToTime(freeze_ms);
      resp[i++] = MeanResponse(RunExperiment(config));
    }
    std::printf("%-8.0f %12.1f %12.1f %12.1f\n", freeze_ms, resp[0], resp[1], resp[2]);
  }
  std::printf(
      "\nReading: PDPA absorbs realistic measurement noise (<=5%%) and is nearly\n"
      "immune to the reallocation cost (it converges and holds), while the\n"
      "reactive policies pay for every reallocation. The flip side of\n"
      "convergence shows at extreme noise (20%%): PDPA can lock in a wrong\n"
      "decision (anti-ping-pong limit) where the constantly-reacting\n"
      "Equal_efficiency averages errors out. Small steps search slowly; huge\n"
      "steps overshoot: the paper's step=4 sits at the sweet spot.\n");
}

}  // namespace
}  // namespace pdpa

int main() {
  pdpa::Run();
  return 0;
}
