// Table 3 — Workload 3 with apsi submitted *untuned* (requesting 30
// processors instead of 2), load = 60%: Equipartition versus PDPA.
//
// Expected shape (paper): Equipartition hands apsi the equal share it asked
// for and burns it (response ~900 s for both classes); PDPA shrinks apsi to
// the 1-2 CPUs it can use, raises the multiprogramming level into the
// twenties, and improves response times ~10x at a single-digit execution
// cost. Paper row: Equip 949/102 (bt), 890/107 (apsi), makespan 1993, ML 4;
// PDPA 95/88, 107/98, makespan 427, ML 29.
#include <cstdio>

#include "bench/bench_util.h"

namespace pdpa {
namespace {

void Run() {
  std::printf("=== Table 3: w3, apsi requesting 30 (not tuned), load = 60%% ===\n");
  std::printf("%-8s | %19s | %19s | %12s | %6s\n", "policy", "bt resp/exec (s)",
              "apsi resp/exec (s)", "makespan (s)", "max ml");
  ClassMetrics equip_bt;
  ClassMetrics pdpa_bt;
  ClassMetrics equip_apsi;
  ClassMetrics pdpa_apsi;
  double equip_makespan = 0.0;
  double pdpa_makespan = 0.0;
  for (PolicyKind policy : {PolicyKind::kEquipartition, PolicyKind::kPdpa}) {
    ExperimentConfig config = MakeConfig(WorkloadId::kW3, 0.6, policy);
    config.untuned = true;
    const ExperimentResult r = RunExperiment(config);
    const ClassMetrics bt = r.metrics.per_class.count(AppClass::kBt)
                                ? r.metrics.per_class.at(AppClass::kBt)
                                : ClassMetrics{};
    const ClassMetrics apsi = r.metrics.per_class.count(AppClass::kApsi)
                                  ? r.metrics.per_class.at(AppClass::kApsi)
                                  : ClassMetrics{};
    std::printf("%-8s | %8.0f / %8.0f | %8.0f / %8.0f | %12.0f | %6d\n",
                PolicyKindName(policy), bt.avg_response_s, bt.avg_exec_s, apsi.avg_response_s,
                apsi.avg_exec_s, r.metrics.makespan_s, r.max_ml);
    if (policy == PolicyKind::kEquipartition) {
      equip_bt = bt;
      equip_apsi = apsi;
      equip_makespan = r.metrics.makespan_s;
    } else {
      pdpa_bt = bt;
      pdpa_apsi = apsi;
      pdpa_makespan = r.metrics.makespan_s;
    }
  }
  std::printf("%-8s | %8.0f%% /%7.0f%% | %8.0f%% /%7.0f%% | %11.0f%% |\n", "Speedup",
              100.0 * (equip_bt.avg_response_s / pdpa_bt.avg_response_s - 1.0),
              100.0 * (equip_bt.avg_exec_s / pdpa_bt.avg_exec_s - 1.0),
              100.0 * (equip_apsi.avg_response_s / pdpa_apsi.avg_response_s - 1.0),
              100.0 * (equip_apsi.avg_exec_s / pdpa_apsi.avg_exec_s - 1.0),
              100.0 * (equip_makespan / pdpa_makespan - 1.0));
  std::printf("\npaper:   Equip 949/102, 890/107, 1993s, ML 4\n");
  std::printf("         PDPA   95/88, 107/98,  427s, ML 29  (speedups 998%%/15%%, 831%%/9%%, 466%%)\n");
}

}  // namespace
}  // namespace pdpa

int main() {
  pdpa::Run();
  return 0;
}
