// Sweep-engine throughput benchmark: runs one replicated grid serially and
// on the worker pool, verifies the outputs are byte-identical, and writes
// BENCH_sweep.json with cells/sec for both plus the speedup. Wall times are
// medians over --repeat runs (p50 in the JSON).
//
// Usage: sweep_bench [--jobs N] [--seeds N] [--repeat N] [--out BENCH_sweep.json]
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/flags.h"
#include "src/workload/sweep.h"

namespace pdpa {
namespace {

int Run(int argc, char** argv) {
  FlagSet flags = FlagSet::Parse(argc - 1, argv + 1);
  int jobs = flags.GetInt("jobs", 0);
  if (jobs <= 0) {
    jobs = static_cast<int>(std::thread::hardware_concurrency());
    if (jobs <= 0) {
      jobs = 1;
    }
  }
  const int num_seeds = flags.GetInt("seeds", 8);
  const int repeat = flags.GetInt("repeat", 1);
  const std::string out_path = flags.GetString("out", "BENCH_sweep.json");

  SweepGrid grid;
  grid.workloads = {WorkloadId::kW1, WorkloadId::kW2};
  grid.loads = {0.6, 1.0};
  grid.policies = {PolicyKind::kEquipartition, PolicyKind::kPdpa};
  grid.seeds.clear();
  for (int i = 0; i < num_seeds; ++i) {
    grid.seeds.push_back(42 + static_cast<std::uint64_t>(i));
  }
  const std::size_t cells = ExpandGrid(grid).size();
  std::fprintf(stderr, "sweep_bench: %zu cells, --jobs %d, hardware_concurrency %u\n", cells,
               jobs, std::thread::hardware_concurrency());

  SweepOptions serial;
  serial.jobs = 1;
  std::vector<SweepCellResult> serial_results;
  const double serial_s =
      MedianWallSeconds(repeat, [&] { serial_results = RunSweep(grid, serial); });

  // On a single-CPU runner the worker pool cannot beat the serial run — the
  // "speedup" it would report is scheduler noise around 1.0, misleading in a
  // committed baseline. Skip the parallel A/B and say so in the JSON
  // (bench_check treats metrics missing from a skipped run as skips).
  const bool single_cpu = std::thread::hardware_concurrency() == 1;
  double parallel_s = 0.0;
  bool identical = true;
  if (!single_cpu) {
    SweepOptions parallel;
    parallel.jobs = jobs;
    std::vector<SweepCellResult> parallel_results;
    parallel_s = MedianWallSeconds(repeat, [&] { parallel_results = RunSweep(grid, parallel); });
    std::ostringstream csv_serial, csv_parallel;
    SweepCsv(serial_results, grid.seeds.size(), csv_serial);
    SweepCsv(parallel_results, grid.seeds.size(), csv_parallel);
    identical = csv_serial.str() == csv_parallel.str();
  }

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 2;
  }
  out << "{\n"
      << "  \"cells\": " << cells << ",\n"
      << "  \"seeds\": " << num_seeds << ",\n"
      << "  \"repeat\": " << repeat << ",\n"
      << "  \"jobs\": " << jobs << ",\n"
      << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency() << ",\n"
      << "  \"skipped_single_cpu\": " << (single_cpu ? "true" : "false") << ",\n"
      << "  \"serial_wall_s\": " << serial_s << ",\n"
      << "  \"serial_cells_per_s\": "
      << (serial_s > 0 ? static_cast<double>(cells) / serial_s : 0);
  if (!single_cpu) {
    out << ",\n"
        << "  \"parallel_wall_s\": " << parallel_s << ",\n"
        << "  \"parallel_cells_per_s\": "
        << (parallel_s > 0 ? static_cast<double>(cells) / parallel_s : 0) << ",\n"
        << "  \"speedup\": " << (parallel_s > 0 ? serial_s / parallel_s : 0) << ",\n"
        << "  \"csv_identical\": " << (identical ? "true" : "false");
  }
  out << "\n}\n";
  if (single_cpu) {
    std::fprintf(stderr, "serial %.2fs; parallel A/B skipped (single CPU), wrote %s\n", serial_s,
                 out_path.c_str());
  } else {
    std::fprintf(stderr, "serial %.2fs, parallel %.2fs (%.2fx), csv %s, wrote %s\n", serial_s,
                 parallel_s, parallel_s > 0 ? serial_s / parallel_s : 0.0,
                 identical ? "identical" : "DIFFERS", out_path.c_str());
  }
  return identical ? 0 : 1;
}

}  // namespace
}  // namespace pdpa

int main(int argc, char** argv) { return pdpa::Run(argc, argv); }
