// Microbenchmarks (google-benchmark) for the simulation substrates: event
// queue throughput, application progress integration, machine reallocation
// and trace recording. These bound the cost of a full workload simulation.
#include <benchmark/benchmark.h>

#include "src/app/application.h"
#include "src/machine/machine.h"
#include "src/sim/event_queue.h"
#include "src/trace/trace_recorder.h"
#include "src/workload/experiment.h"

namespace pdpa {
namespace {

void BM_EventQueueScheduleRun(benchmark::State& state) {
  EventQueue queue;
  SimTime now = 0;
  for (auto _ : state) {
    now += 1;
    queue.Schedule(now, [] {});
    benchmark::DoNotOptimize(queue.RunNext());
  }
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_ApplicationAdvanceTick(benchmark::State& state) {
  Application app(0, MakeBtProfile());
  app.SetAllocation(16, 0);
  app.Start(0);
  SimTime now = 0;
  for (auto _ : state) {
    app.Advance(now, 20 * kMillisecond);
    now += 20 * kMillisecond;
    if (app.finished()) {
      state.PauseTiming();
      app = Application(0, MakeBtProfile());
      app.SetAllocation(16, now);
      app.Start(now);
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_ApplicationAdvanceTick);

void BM_MachineReallocate(benchmark::State& state) {
  Machine machine(60);
  std::map<JobId, int> a = {{0, 30}, {1, 30}};
  std::map<JobId, int> b = {{0, 15}, {1, 15}, {2, 15}, {3, 15}};
  bool flip = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(machine.ApplyAllocation(flip ? a : b));
    flip = !flip;
  }
}
BENCHMARK(BM_MachineReallocate);

void BM_TraceRecorderHandoff(benchmark::State& state) {
  TraceRecorder recorder(60);
  SimTime now = 0;
  int cpu = 0;
  JobId job = 0;
  for (auto _ : state) {
    now += kMillisecond;
    recorder.OnHandoff(now, CpuHandoff{cpu, kIdleJob, job});
    recorder.OnHandoff(now + 1, CpuHandoff{cpu, job, kIdleJob});
    cpu = (cpu + 1) % 60;
    job = (job + 1) % 8;
  }
}
BENCHMARK(BM_TraceRecorderHandoff);

// End-to-end: one full workload simulation per iteration. This is the cost
// of one cell in the figure grids.
void BM_FullExperiment(benchmark::State& state) {
  for (auto _ : state) {
    ExperimentConfig config;
    config.workload = WorkloadId::kW2;
    config.load = 0.8;
    config.policy = PolicyKind::kPdpa;
    benchmark::DoNotOptimize(RunExperiment(config));
  }
}
BENCHMARK(BM_FullExperiment)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pdpa

BENCHMARK_MAIN();
