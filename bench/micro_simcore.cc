// Microbenchmarks (google-benchmark) for the simulation substrates: event
// queue throughput, application progress integration, machine reallocation
// and trace recording. These bound the cost of a full workload simulation.
#include <benchmark/benchmark.h>

#include <vector>

#include "src/app/application.h"
#include "src/machine/cpuset.h"
#include "src/machine/machine.h"
#include "src/sim/event_queue.h"
#include "src/trace/trace_recorder.h"
#include "src/workload/experiment.h"

namespace pdpa {
namespace {

void BM_EventQueueScheduleRun(benchmark::State& state) {
  EventQueue queue;
  SimTime now = 0;
  for (auto _ : state) {
    now += 1;
    queue.Schedule(now, [] {});
    benchmark::DoNotOptimize(queue.RunNext());
  }
}
BENCHMARK(BM_EventQueueScheduleRun);

// Schedule/cancel churn: the pattern the RM's quantum timer and the QS's
// admission probes generate. This is the path the generation-stamped slot
// design removed the per-event unordered_set hashing from.
void BM_EventQueueScheduleCancelChurn(benchmark::State& state) {
  EventQueue queue;
  SimTime now = 0;
  const int depth = static_cast<int>(state.range(0));
  std::vector<EventId> pending;
  pending.reserve(depth);
  for (int i = 0; i < depth; ++i) {
    pending.push_back(queue.Schedule(now + 1000 + i, [] {}));
  }
  std::size_t victim = 0;
  for (auto _ : state) {
    now += 1;
    benchmark::DoNotOptimize(queue.Cancel(pending[victim]));
    pending[victim] = queue.Schedule(now + 1000 + depth, [] {});
    victim = (victim + 1) % pending.size();
  }
}
BENCHMARK(BM_EventQueueScheduleCancelChurn)->Arg(16)->Arg(256);

void BM_CpuSetScan(benchmark::State& state) {
  // A realistically fragmented set: every third CPU across both words.
  CpuSet set;
  for (int cpu = 0; cpu < kMaxCpus; cpu += 3) {
    set.Add(cpu);
  }
  for (auto _ : state) {
    int sum = 0;
    for (int cpu = set.First(); cpu >= 0; cpu = set.Next(cpu)) {
      sum += cpu;
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_CpuSetScan);

void BM_CpuSetCountToVector(benchmark::State& state) {
  CpuSet set;
  for (int cpu = 0; cpu < 60; cpu += 2) {
    set.Add(cpu);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(set.Count());
    benchmark::DoNotOptimize(set.ToVector());
  }
}
BENCHMARK(BM_CpuSetCountToVector);

void BM_ApplicationAdvanceTick(benchmark::State& state) {
  Application app(0, MakeBtProfile());
  app.SetAllocation(16, 0);
  app.Start(0);
  SimTime now = 0;
  for (auto _ : state) {
    app.Advance(now, 20 * kMillisecond);
    now += 20 * kMillisecond;
    if (app.finished()) {
      state.PauseTiming();
      app = Application(0, MakeBtProfile());
      app.SetAllocation(16, now);
      app.Start(now);
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_ApplicationAdvanceTick);

void BM_MachineReallocate(benchmark::State& state) {
  Machine machine(60);
  std::map<JobId, int> a = {{0, 30}, {1, 30}};
  std::map<JobId, int> b = {{0, 15}, {1, 15}, {2, 15}, {3, 15}};
  bool flip = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(machine.ApplyAllocation(flip ? a : b));
    flip = !flip;
  }
}
BENCHMARK(BM_MachineReallocate);

void BM_TraceRecorderHandoff(benchmark::State& state) {
  TraceRecorder recorder(60);
  SimTime now = 0;
  int cpu = 0;
  JobId job = 0;
  for (auto _ : state) {
    now += kMillisecond;
    recorder.OnHandoff(now, CpuHandoff{cpu, kIdleJob, job});
    recorder.OnHandoff(now + 1, CpuHandoff{cpu, job, kIdleJob});
    cpu = (cpu + 1) % 60;
    job = (job + 1) % 8;
  }
}
BENCHMARK(BM_TraceRecorderHandoff);

// End-to-end: one full workload simulation per iteration. This is the cost
// of one cell in the figure grids.
void BM_FullExperiment(benchmark::State& state) {
  for (auto _ : state) {
    ExperimentConfig config;
    config.workload = WorkloadId::kW2;
    config.load = 0.8;
    config.policy = PolicyKind::kPdpa;
    benchmark::DoNotOptimize(RunExperiment(config));
  }
}
BENCHMARK(BM_FullExperiment)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pdpa

BENCHMARK_MAIN();
