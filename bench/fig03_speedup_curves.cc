// Fig. 3 — Speedup curves of the four applications (swim, bt.A, hydro2d,
// apsi). Prints speedup and efficiency for 1..32 processors.
#include <cstdio>

#include "src/app/app_profile.h"

namespace pdpa {
namespace {

void Run() {
  const AppProfile profiles[] = {MakeSwimProfile(), MakeBtProfile(), MakeHydro2dProfile(),
                                 MakeApsiProfile()};
  std::printf("=== Fig. 3: speedup curves (speedup | efficiency) ===\n");
  std::printf("%5s", "P");
  for (const AppProfile& p : profiles) {
    std::printf(" | %18s", p.name.c_str());
  }
  std::printf("\n");
  const int procs[] = {1, 2, 4, 8, 12, 16, 20, 24, 28, 30, 32};
  for (int p : procs) {
    std::printf("%5d", p);
    for (const AppProfile& profile : profiles) {
      const double s = profile.speedup->SpeedupAt(p);
      std::printf(" | %8.2f  (%5.2f) ", s, s / p);
    }
    std::printf("\n");
  }
  std::printf("\nShapes to check against the paper:\n");
  std::printf("  swim    superlinear (eff > 1) through ~30 CPUs, knee at 16\n");
  std::printf("  bt.A    good scalability, eff ~0.85 at 20, ~0.70 at 30\n");
  std::printf("  hydro2d medium, saturates around 10-12 CPUs\n");
  std::printf("  apsi    no scaling beyond 2 CPUs\n");
}

}  // namespace
}  // namespace pdpa

int main() {
  pdpa::Run();
  return 0;
}
