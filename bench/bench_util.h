// Shared helpers for the figure/table reproduction binaries: run one
// workload across policies and loads, print the paper-shaped rows.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/common/stats.h"
#include "src/workload/experiment.h"

namespace pdpa {

// Times `body` `repeat` times and returns the median (p50) wall seconds.
// Single samples on 1-CPU CI runners are noise; BENCH_*.json files record
// the median so bench_check can compare runs meaningfully.
template <typename Fn>
double MedianWallSeconds(int repeat, Fn&& body) {
  if (repeat < 1) {
    repeat = 1;
  }
  std::vector<double> walls;
  walls.reserve(static_cast<std::size_t>(repeat));
  for (int i = 0; i < repeat; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    body();
    walls.push_back(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count());
  }
  return Percentile(std::move(walls), 50.0);
}

inline const std::vector<PolicyKind>& AllPolicies() {
  static const std::vector<PolicyKind> kPolicies = {
      PolicyKind::kIrix, PolicyKind::kEquipartition, PolicyKind::kEqualEfficiency,
      PolicyKind::kPdpa};
  return kPolicies;
}

inline ExperimentConfig MakeConfig(WorkloadId workload, double load, PolicyKind policy,
                                   std::uint64_t seed = 42) {
  ExperimentConfig config;
  config.workload = workload;
  config.load = load;
  config.policy = policy;
  config.seed = seed;
  return config;
}

// Runs workload x {loads} x {policies} and prints, per application class,
// the average response and execution times — the layout of Figs. 4/6/9/10.
inline void RunFigureGrid(const char* title, WorkloadId workload,
                          const std::vector<AppClass>& classes,
                          const std::vector<double>& loads = {0.6, 0.8, 1.0},
                          std::uint64_t seed = 42) {
  std::printf("=== %s ===\n", title);
  std::printf("workload %s; x-axis = machine load; policies: IRIX, Equip, Equal_eff, PDPA\n\n",
              WorkloadName(workload));

  struct Cell {
    ClassMetrics metrics;
    int max_ml = 0;
    bool completed = true;
  };
  // results[policy][load] -> per-class metrics
  std::map<PolicyKind, std::map<double, std::map<AppClass, Cell>>> results;
  for (PolicyKind policy : AllPolicies()) {
    for (double load : loads) {
      const ExperimentResult r = RunExperiment(MakeConfig(workload, load, policy, seed));
      for (const auto& [app_class, metrics] : r.metrics.per_class) {
        results[policy][load][app_class] = Cell{metrics, r.max_ml, r.completed};
      }
    }
  }

  for (AppClass app_class : classes) {
    for (const char* metric : {"response", "execution"}) {
      std::printf("-- avg %s time of %s (seconds) --\n", metric, AppClassName(app_class));
      std::printf("%-12s", "policy\\load");
      for (double load : loads) {
        std::printf(" %8.0f%%", load * 100);
      }
      std::printf("\n");
      for (PolicyKind policy : AllPolicies()) {
        std::printf("%-12s", PolicyKindName(policy));
        for (double load : loads) {
          const auto& cell = results[policy][load][app_class];
          const double value = metric[0] == 'r' ? cell.metrics.avg_response_s
                                                : cell.metrics.avg_exec_s;
          std::printf(" %9.1f", value);
        }
        std::printf("\n");
      }
      std::printf("\n");
    }
  }
}

}  // namespace pdpa

#endif  // BENCH_BENCH_UTIL_H_
