// Fig. 5 — Execution views (CPU x time) of workload 1 at 100% load under
// IRIX and PDPA, rendered in ASCII: each row is a CPU, each letter one job,
// '.' is idle. The paper's point: IRIX looks chaotic, PDPA is stable with
// clearly visible application partitions.
#include <cstdio>
#include <fstream>

#include "bench/bench_util.h"
#include "src/trace/paraver_writer.h"

namespace pdpa {
namespace {

void Run() {
  std::printf("=== Fig. 5: execution views, workload 1, load = 100%% ===\n\n");
  for (PolicyKind policy : {PolicyKind::kIrix, PolicyKind::kPdpa}) {
    ExperimentConfig config = MakeConfig(WorkloadId::kW1, 1.0, policy);
    config.record_trace = true;
    const ExperimentResult result = RunExperiment(config);
    std::printf("--- %s ---\n%s\n", result.policy_name.c_str(), result.ascii_view.c_str());
    std::printf("migrations=%lld  avg burst=%.0f ms  utilization=%.0f%%\n\n",
                result.trace_stats.migrations, result.trace_stats.avg_burst_ms,
                result.utilization * 100.0);
    if (policy == PolicyKind::kPdpa) {
      std::ofstream prv("fig05_pdpa.prv");
      prv << result.paraver_trace;
      std::printf("(Paraver trace of the PDPA run written to fig05_pdpa.prv)\n");
    }
  }
}

}  // namespace
}  // namespace pdpa

int main() {
  pdpa::Run();
  return 0;
}
