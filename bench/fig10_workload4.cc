// Fig. 10 — Workload 4 (25% each of swim, bt, hydro2d, apsi): average
// response and execution times versus machine load.
//
// Expected shape (paper): PDPA's response times are far ahead of every
// baseline (high hundreds of percent versus Equal_efficiency), at a small
// execution-time cost (1-16%); Equal_efficiency only matches PDPA's
// execution times by spending 40-270% more processors.
#include "bench/bench_util.h"

int main() {
  pdpa::RunFigureGrid("Fig. 10: workload 4 (all classes)", pdpa::WorkloadId::kW4,
                      {pdpa::AppClass::kSwim, pdpa::AppClass::kBt, pdpa::AppClass::kHydro2d,
                       pdpa::AppClass::kApsi});
  return 0;
}
