// Cluster-engine throughput benchmark: simulates a large cluster (default
// 1000 nodes) draining >= 1M tiny synthetic jobs through the sharded
// engine, and writes BENCH_cluster.json with jobs/sec.
//
// Two claims are measured, following the sweep_bench protocol:
//
//  * Correctness — ALWAYS verified, on every host: a sharded run must be
//    byte-identical to the single-loop serial reference. A small
//    capture-enabled configuration compares the merged event log,
//    time-series CSV and counters byte for byte; the headline configuration
//    compares outcomes, placements and counters (capturing 1M jobs' event
//    text would measure string building, not the engine). Any divergence is
//    written to --divergence_out and the bench exits nonzero.
//
//  * Speed — the sharded-vs-single-loop A/B runs only on multi-CPU hosts.
//    On a single-CPU runner the worker threads cannot beat the inline loop,
//    so the "speedup" would be scheduler noise around 1.0; the JSON then
//    says skipped_single_cpu and omits the sharded timings (bench_check
//    treats metrics missing from a skipped run as skips). The single-loop
//    throughput (cluster_jobs_per_s) is always present and is the CI floor.
//
// Usage: cluster_bench [--nodes N] [--cpus_per_node N] [--total_jobs N]
//                      [--shards N] [--repeat N] [--out BENCH_cluster.json]
//                      [--divergence_out FILE]
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/cluster/cluster.h"
#include "src/common/flags.h"
#include "src/rm/equipartition.h"

namespace pdpa {
namespace {

ResourceManager::Params FastParams() {
  ResourceManager::Params params;
  params.analyzer.noise_sigma = 0.0;
  params.app_costs.reconfig_freeze = 0;
  params.app_costs.warmup = 0;
  // Skip immaterial boundary ticks (Equipartition ignores reports). The
  // capture-enabled identity config below ignores this — the fast path
  // disengages whenever a sink is attached — so the byte-identity gate
  // always runs against the exact tick schedule.
  params.boundary_batch = true;
  return params;
}

// Tiny synthetic jobs with deterministic arrival spacing: enough load to
// keep every node busy without building an unbounded controller backlog.
std::vector<JobSpec> MakeJobs(long long count, int request, SimDuration spacing) {
  std::vector<JobSpec> jobs;
  jobs.reserve(static_cast<std::size_t>(count));
  for (long long i = 0; i < count; ++i) {
    JobSpec spec;
    spec.id = i;
    spec.app_class = static_cast<AppClass>(i % kNumAppClasses);
    spec.submit = i * spacing;
    spec.request = request;
    jobs.push_back(spec);
  }
  return jobs;
}

ClusterOptions BaseOptions(int num_nodes, int cpus_per_node) {
  ClusterOptions options;
  options.num_nodes = num_nodes;
  options.cpus_per_node = cpus_per_node;
  options.make_policy = [] { return std::make_unique<Equipartition>(4); };
  options.rm_params = FastParams();
  return options;
}

// Counter value by name, 0 when absent.
long long CounterValue(const RegistrySnapshot& snapshot, std::string_view name) {
  for (const CounterSnapshot& counter : snapshot.counters) {
    if (counter.name == name) {
      return counter.value;
    }
  }
  return 0;
}

// Snapshot dump with the instruments that legitimately differ across
// protocol/tick modes removed: the two batch-protocol counters (zero with
// batching off) and the tick-schedule instruments (boundary batching elides
// immaterial ticks). Everything else must match byte for byte.
std::string CrossModeCounterDump(const RegistrySnapshot& snapshot) {
  RegistrySnapshot filtered = snapshot;
  const auto excluded = [](const std::string& name) {
    return name == "cluster.arrival_batches" || name == "cluster.batched_arrivals" ||
           name == "rm.ticks" || name == "rm.ticks_elided" || name == "sim.events_dispatched" ||
           name == "sim.periodic_fires" || name == "machine.free_cpus";
  };
  std::erase_if(filtered.counters,
                [&](const CounterSnapshot& c) { return excluded(c.name); });
  std::erase_if(filtered.gauges, [&](const GaugeSnapshot& g) { return excluded(g.name); });
  return filtered.ToString();
}

// Appends a first-divergent-line report for two large artifacts.
void AppendDivergence(const std::string& serial, const std::string& sharded, const char* what,
                      std::string* report) {
  if (serial == sharded) {
    return;
  }
  std::size_t line = 1, i = 0, line_start = 0;
  const std::size_t limit = std::min(serial.size(), sharded.size());
  while (i < limit && serial[i] == sharded[i]) {
    if (serial[i] == '\n') {
      ++line;
      line_start = i + 1;
    }
    ++i;
  }
  const auto line_of = [line_start](const std::string& s) {
    const std::size_t end = s.find('\n', line_start);
    return s.substr(line_start, end == std::string::npos ? std::string::npos : end - line_start);
  };
  *report += what;
  *report += " diverges at line " + std::to_string(line) + ":\n  serial:  " + line_of(serial) +
             "\n  sharded: " + line_of(sharded) + "\n";
}

// Outcomes/placements equality with a pointed report on the first mismatch.
void AppendOutcomeDivergence(const ClusterResult& serial, const ClusterResult& sharded,
                             const char* what, std::string* report) {
  if (serial.outcomes.size() != sharded.outcomes.size()) {
    *report += std::string(what) + ": " + std::to_string(serial.outcomes.size()) +
               " serial outcomes vs " + std::to_string(sharded.outcomes.size()) + " sharded\n";
    return;
  }
  for (std::size_t i = 0; i < serial.outcomes.size(); ++i) {
    const JobOutcome& a = serial.outcomes[i];
    const JobOutcome& b = sharded.outcomes[i];
    if (a.id != b.id || a.start != b.start || a.finish != b.finish ||
        serial.outcome_nodes[i] != sharded.outcome_nodes[i]) {
      *report += std::string(what) + ": outcome " + std::to_string(i) + " differs (job " +
                 std::to_string(a.id) + " vs " + std::to_string(b.id) + ", node " +
                 std::to_string(serial.outcome_nodes[i]) + " vs " +
                 std::to_string(sharded.outcome_nodes[i]) + ")\n";
      return;
    }
  }
  if (serial.end_time != sharded.end_time || serial.completed != sharded.completed ||
      serial.max_node_running != sharded.max_node_running ||
      serial.total_reallocations != sharded.total_reallocations) {
    *report += std::string(what) + ": summary fields differ\n";
  }
}

int Run(int argc, char** argv) {
  FlagSet flags = FlagSet::Parse(argc - 1, argv + 1);
  const int nodes = flags.GetInt("nodes", 1000);
  const int cpus_per_node = flags.GetInt("cpus_per_node", 8);
  const long long total_jobs = flags.GetInt("total_jobs", 1000000);
  int shards = flags.GetInt("shards", 0);
  if (shards <= 0) {
    shards = static_cast<int>(std::thread::hardware_concurrency());
    if (shards <= 0) {
      shards = 1;
    }
    if (shards > 8) {
      shards = 8;  // the merge is controller-bound past this
    }
  }
  const int repeat = flags.GetInt("repeat", 1);
  const std::string out_path = flags.GetString("out", "BENCH_cluster.json");
  const std::string divergence_path = flags.GetString("divergence_out", "cluster_divergence.txt");

  std::string divergence;

  // --- Correctness gate 1: byte-identity on a capture-enabled config. -----
  // Small enough to capture every artifact, big enough to exercise real
  // placement contention, parking and completion batches.
  {
    const std::vector<JobSpec> jobs = MakeJobs(2000, 6, kSecond / 4);
    ClusterOptions options = BaseOptions(24, 8);
    options.capture_events = true;
    options.capture_timeseries = true;
    const ClusterResult serial = RunCluster(jobs, options);
    for (int test_shards : {2, 5}) {
      options.shards = test_shards;
      const ClusterResult sharded = RunCluster(jobs, options);
      AppendDivergence(serial.events_jsonl, sharded.events_jsonl, "small-config event log",
                       &divergence);
      AppendDivergence(serial.timeseries_csv, sharded.timeseries_csv, "small-config time-series",
                       &divergence);
      AppendDivergence(serial.counters.ToString(), sharded.counters.ToString(),
                       "small-config counters", &divergence);
      AppendOutcomeDivergence(serial, sharded, "small-config outcomes", &divergence);
    }
  }

  // --- Correctness gate 2: protocol/tick-mode A/B on a no-capture config. -
  // The epoch-batched controller and the boundary-batched RM must reproduce
  // the reference protocol's outcomes exactly; counters match too, minus
  // the batch-protocol and tick-schedule instruments (CrossModeCounterDump).
  {
    const std::vector<JobSpec> jobs = MakeJobs(2000, 6, kSecond / 4);
    const ClusterOptions batched = BaseOptions(24, 8);
    ClusterOptions reference = batched;
    reference.arrival_batch = false;
    reference.rm_params.boundary_batch = false;
    const ClusterResult fast = RunCluster(jobs, batched);
    const ClusterResult exact = RunCluster(jobs, reference);
    AppendOutcomeDivergence(exact, fast, "cross-mode outcomes", &divergence);
    AppendDivergence(CrossModeCounterDump(exact.counters), CrossModeCounterDump(fast.counters),
                     "cross-mode counters", &divergence);
  }

  // --- Headline configuration. -------------------------------------------
  const std::vector<JobSpec> jobs = MakeJobs(total_jobs, cpus_per_node / 2 + 1, kSecond / 100);
  const ClusterOptions single_options = BaseOptions(nodes, cpus_per_node);
  ClusterOptions sharded_options = single_options;
  // The identity gate must exercise the threaded engine even when the host
  // has one CPU (shards == 1 would be the inline loop compared to itself).
  sharded_options.shards = shards >= 2 ? shards : 2;

  std::fprintf(stderr, "cluster_bench: %d nodes x %d cpus, %lld jobs, %d shards, "
                       "hardware_concurrency %u\n",
               nodes, cpus_per_node, total_jobs, shards,
               std::thread::hardware_concurrency());

  ClusterResult single_result;
  const double single_s =
      MedianWallSeconds(repeat, [&] { single_result = RunCluster(jobs, single_options); });

  // Correctness gate 3 always runs: outcome/placement/counter identity of
  // the sharded headline run against the single-loop reference. Only the
  // *timing* A/B is gated on a multi-CPU host.
  const bool single_cpu = std::thread::hardware_concurrency() == 1;
  double sharded_s = 0.0;
  {
    ClusterResult sharded_result;
    if (single_cpu) {
      sharded_result = RunCluster(jobs, sharded_options);
    } else {
      sharded_s =
          MedianWallSeconds(repeat, [&] { sharded_result = RunCluster(jobs, sharded_options); });
    }
    AppendOutcomeDivergence(single_result, sharded_result, "headline outcomes", &divergence);
    AppendDivergence(single_result.counters.ToString(), sharded_result.counters.ToString(),
                     "headline counters", &divergence);
  }
  const bool identical = divergence.empty();
  if (!identical) {
    std::ofstream div(divergence_path);
    div << divergence;
    std::fprintf(stderr, "IDENTITY FAILURE, report written to %s:\n%s", divergence_path.c_str(),
                 divergence.c_str());
  }

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 2;
  }
  out << "{\n"
      << "  \"nodes\": " << nodes << ",\n"
      << "  \"cpus_per_node\": " << cpus_per_node << ",\n"
      << "  \"total_jobs\": " << total_jobs << ",\n"
      << "  \"shards\": " << shards << ",\n"
      << "  \"threads\": " << (single_cpu ? 1 : shards) << ",\n"
      << "  \"repeat\": " << repeat << ",\n"
      << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency() << ",\n"
      << "  \"skipped_single_cpu\": " << (single_cpu ? "true" : "false") << ",\n"
      << "  \"sharded_output_identical\": " << (identical ? "true" : "false") << ",\n"
      << "  \"arrival_batches\": " << CounterValue(single_result.counters, "cluster.arrival_batches")
      << ",\n"
      << "  \"batched_arrivals\": "
      << CounterValue(single_result.counters, "cluster.batched_arrivals") << ",\n"
      << "  \"single_loop_wall_s\": " << single_s << ",\n"
      << "  \"cluster_jobs_per_s\": "
      << (single_s > 0 ? static_cast<double>(total_jobs) / single_s : 0);
  if (!single_cpu) {
    out << ",\n"
        << "  \"sharded_wall_s\": " << sharded_s << ",\n"
        << "  \"sharded_jobs_per_s\": "
        << (sharded_s > 0 ? static_cast<double>(total_jobs) / sharded_s : 0) << ",\n"
        << "  \"cluster_speedup\": " << (sharded_s > 0 ? single_s / sharded_s : 0);
  }
  out << "\n}\n";
  if (single_cpu) {
    std::fprintf(stderr, "single-loop %.2fs (%.0f jobs/s); sharded timing skipped (single "
                         "CPU); identity %s; wrote %s\n",
                 single_s, single_s > 0 ? total_jobs / single_s : 0.0,
                 identical ? "ok" : "FAILED", out_path.c_str());
  } else {
    std::fprintf(stderr, "single-loop %.2fs, sharded %.2fs (%.2fx), identity %s, wrote %s\n",
                 single_s, sharded_s, sharded_s > 0 ? single_s / sharded_s : 0.0,
                 identical ? "ok" : "FAILED", out_path.c_str());
  }
  return identical ? 0 : 1;
}

}  // namespace
}  // namespace pdpa

int main(int argc, char** argv) { return pdpa::Run(argc, argv); }
