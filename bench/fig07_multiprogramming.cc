// Fig. 7 — Workload 2 executed with initial multiprogramming levels 2, 3
// and 4 under Equipartition and PDPA, across loads.
//
// Expected shape (paper): Equipartition's results depend strongly on the ML
// the administrator picked (ML=2 gives each job its full request: good
// execution times, terrible response times); PDPA is robust — it detects
// the right ML on its own, so all three settings converge.
#include <cstdio>

#include "bench/bench_util.h"

namespace pdpa {
namespace {

void Run() {
  std::printf("=== Fig. 7: workload 2 with multiprogramming level 2, 3, 4 ===\n\n");
  for (double load : {0.8, 1.0}) {
    std::printf("--- load = %.0f%% ---\n", load * 100);
    std::printf("%-8s %-4s | %21s | %21s | %9s | %6s\n", "policy", "ml", "bt resp/exec (s)",
                "hydro2d resp/exec (s)", "makespan", "max ml");
    for (PolicyKind policy : {PolicyKind::kEquipartition, PolicyKind::kPdpa}) {
      for (int ml : {2, 3, 4}) {
        ExperimentConfig config = MakeConfig(WorkloadId::kW2, load, policy);
        config.multiprogramming_level = ml;
        const ExperimentResult r = RunExperiment(config);
        const ClassMetrics bt = r.metrics.per_class.count(AppClass::kBt)
                                    ? r.metrics.per_class.at(AppClass::kBt)
                                    : ClassMetrics{};
        const ClassMetrics hy = r.metrics.per_class.count(AppClass::kHydro2d)
                                    ? r.metrics.per_class.at(AppClass::kHydro2d)
                                    : ClassMetrics{};
        std::printf("%-8s %-4d | %9.1f / %9.1f | %9.1f / %9.1f | %9.1f | %6d\n",
                    PolicyKindName(policy), ml, bt.avg_response_s, bt.avg_exec_s,
                    hy.avg_response_s, hy.avg_exec_s, r.metrics.makespan_s, r.max_ml);
      }
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace pdpa

int main() {
  pdpa::Run();
  return 0;
}
