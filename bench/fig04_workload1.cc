// Fig. 4 — Workload 1 (50% swim, 50% bt): average response and execution
// times versus machine load under IRIX, Equipartition, Equal_efficiency and
// PDPA.
//
// Expected shape (paper): Equip best by a small margin, PDPA within
// ~10-30%, both far ahead of IRIX and Equal_efficiency.
#include "bench/bench_util.h"

int main() {
  pdpa::RunFigureGrid("Fig. 4: workload 1 (swim + bt)", pdpa::WorkloadId::kW1,
                      {pdpa::AppClass::kSwim, pdpa::AppClass::kBt});
  return 0;
}
