// Extra baseline — "Dynamic" (McCann, Vaswani, Zahorjan 1993), discussed in
// the paper's related work: eager idleness-driven reallocation. The paper's
// critique is that it "results in a large number of reallocations"; this
// harness measures exactly that against Equipartition and PDPA on
// workload 2, plus the resulting response/execution times.
#include <cstdio>

#include "bench/bench_util.h"

namespace pdpa {
namespace {

void Run() {
  std::printf("=== Extra: Dynamic (McCann et al.) vs Equip vs PDPA, w2, load=100%% ===\n");
  std::printf("%-10s | %19s | %21s | %13s | %12s\n", "policy", "bt resp/exec (s)",
              "hydro2d resp/exec (s)", "reallocations", "migrations");
  for (PolicyKind policy :
       {PolicyKind::kEquipartition, PolicyKind::kMcCannDynamic, PolicyKind::kPdpa}) {
    ExperimentConfig config = MakeConfig(WorkloadId::kW2, 1.0, policy);
    config.record_trace = true;
    const ExperimentResult r = RunExperiment(config);
    const ClassMetrics bt = r.metrics.per_class.count(AppClass::kBt)
                                ? r.metrics.per_class.at(AppClass::kBt)
                                : ClassMetrics{};
    const ClassMetrics hy = r.metrics.per_class.count(AppClass::kHydro2d)
                                ? r.metrics.per_class.at(AppClass::kHydro2d)
                                : ClassMetrics{};
    std::printf("%-10s | %8.1f / %8.1f | %9.1f / %9.1f | %13lld | %12lld\n",
                r.policy_name.c_str(), bt.avg_response_s, bt.avg_exec_s, hy.avg_response_s,
                hy.avg_exec_s, r.reallocations, r.trace_stats.migrations);
  }
  std::printf(
      "\nReading: Dynamic repartitions on every report ('a large number of\n"
      "reallocations', as the paper puts it) where Equip moves only at\n"
      "arrivals/completions and PDPA converges and holds; every reallocation\n"
      "charges a reconfiguration freeze, which is why Dynamic's execution\n"
      "times are the worst of the three.\n");
}

}  // namespace
}  // namespace pdpa

int main() {
  pdpa::Run();
  return 0;
}
