// Microbenchmarks (google-benchmark): cost of one scheduling decision for
// each policy, and of the PDPA automaton itself. The paper's RM runs at a
// 100 ms quantum; these numbers show the decision cost is negligible at
// that cadence even with dozens of jobs.
#include <benchmark/benchmark.h>

#include "src/core/pdpa.h"
#include "src/core/pdpa_policy.h"
#include "src/rm/equal_efficiency.h"
#include "src/rm/equipartition.h"

namespace pdpa {
namespace {

PolicyContext MakeContext(int jobs, int total_cpus) {
  PolicyContext ctx;
  ctx.total_cpus = total_cpus;
  ctx.free_cpus = 0;
  for (int i = 0; i < jobs; ++i) {
    PolicyJobInfo info;
    info.id = i;
    info.request = 30;
    info.alloc = total_cpus / jobs;
    ctx.jobs.push_back(info);
  }
  return ctx;
}

void BM_PdpaAutomatonReport(benchmark::State& state) {
  PdpaAutomaton automaton(PdpaParams{}, 30);
  automaton.OnJobStart(8);
  double speedup = 7.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(automaton.OnReport(speedup, automaton.current_alloc(), 8));
    speedup = speedup > 20 ? 7.0 : speedup * 1.05;
  }
}
BENCHMARK(BM_PdpaAutomatonReport);

void BM_EquipartitionSplit(benchmark::State& state) {
  const PolicyContext ctx = MakeContext(static_cast<int>(state.range(0)), 60);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Equipartition::EqualSplit(ctx));
  }
}
BENCHMARK(BM_EquipartitionSplit)->Arg(2)->Arg(4)->Arg(16)->Arg(32);

void BM_EqualEfficiencyReallocate(benchmark::State& state) {
  EqualEfficiency policy;
  const int jobs = static_cast<int>(state.range(0));
  PolicyContext ctx = MakeContext(jobs, 60);
  // Prime the models with two measurements per job.
  for (int i = 0; i < jobs; ++i) {
    PerfReport report;
    report.job = i;
    report.procs = 8;
    report.speedup = 6.0;
    (void)policy.OnReport(ctx, report);
    report.procs = 12;
    report.speedup = 8.0;
    (void)policy.OnReport(ctx, report);
  }
  PerfReport report;
  report.job = 0;
  report.procs = 12;
  report.speedup = 8.5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.OnReport(ctx, report));
  }
}
BENCHMARK(BM_EqualEfficiencyReallocate)->Arg(2)->Arg(4)->Arg(16);

void BM_PdpaPolicyReport(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  PdpaPolicy policy(PdpaParams{}, PdpaMlParams{});
  PolicyContext ctx = MakeContext(jobs, 60);
  ctx.free_cpus = 10;
  for (int i = 0; i < jobs; ++i) {
    (void)policy.OnJobStart(ctx, i);
  }
  PerfReport report;
  report.job = 0;
  report.procs = policy.AutomatonFor(0)->current_alloc();
  report.speedup = report.procs * 0.8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.OnReport(ctx, report));
  }
}
BENCHMARK(BM_PdpaPolicyReport)->Arg(2)->Arg(4)->Arg(16)->Arg(32);

}  // namespace
}  // namespace pdpa

BENCHMARK_MAIN();
