// Fig. 9 — Workload 3 (50% bt, 50% apsi): average response and execution
// times versus machine load.
//
// Expected shape (paper): PDPA's coordinated multiprogramming level lets
// queued jobs start as soon as the machine has idle capacity (apsi holds an
// ML slot but only 2 CPUs under the fixed-ML baselines), improving response
// times by many hundreds of percent at a small execution-time cost.
#include "bench/bench_util.h"

int main() {
  pdpa::RunFigureGrid("Fig. 9: workload 3 (bt + apsi)", pdpa::WorkloadId::kW3,
                      {pdpa::AppClass::kBt, pdpa::AppClass::kApsi});
  return 0;
}
