# Empty compiler generated dependencies file for self_tuning_app.
# This may be replaced when dependencies are built.
