file(REMOVE_RECURSE
  "CMakeFiles/self_tuning_app.dir/self_tuning_app.cpp.o"
  "CMakeFiles/self_tuning_app.dir/self_tuning_app.cpp.o.d"
  "self_tuning_app"
  "self_tuning_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/self_tuning_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
