# Empty compiler generated dependencies file for binary_only_app.
# This may be replaced when dependencies are built.
