file(REMOVE_RECURSE
  "CMakeFiles/binary_only_app.dir/binary_only_app.cpp.o"
  "CMakeFiles/binary_only_app.dir/binary_only_app.cpp.o.d"
  "binary_only_app"
  "binary_only_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/binary_only_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
