# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/flags_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/machine_test[1]_include.cmake")
include("/root/repo/build/tests/app_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/pdpa_core_test[1]_include.cmake")
include("/root/repo/build/tests/pdpa_transition_table_test[1]_include.cmake")
include("/root/repo/build/tests/policies_test[1]_include.cmake")
include("/root/repo/build/tests/rm_test[1]_include.cmake")
include("/root/repo/build/tests/qs_test[1]_include.cmake")
include("/root/repo/build/tests/qs_property_test[1]_include.cmake")
include("/root/repo/build/tests/experiment_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_test[1]_include.cmake")
include("/root/repo/build/tests/sweep_test[1]_include.cmake")
include("/root/repo/build/tests/rt_test[1]_include.cmake")
