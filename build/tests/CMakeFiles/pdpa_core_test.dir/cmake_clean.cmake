file(REMOVE_RECURSE
  "CMakeFiles/pdpa_core_test.dir/pdpa_core_test.cc.o"
  "CMakeFiles/pdpa_core_test.dir/pdpa_core_test.cc.o.d"
  "pdpa_core_test"
  "pdpa_core_test.pdb"
  "pdpa_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdpa_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
