# Empty dependencies file for pdpa_core_test.
# This may be replaced when dependencies are built.
