# Empty compiler generated dependencies file for pdpa_transition_table_test.
# This may be replaced when dependencies are built.
