
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/pdpa_transition_table_test.cc" "tests/CMakeFiles/pdpa_transition_table_test.dir/pdpa_transition_table_test.cc.o" "gcc" "tests/CMakeFiles/pdpa_transition_table_test.dir/pdpa_transition_table_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/pdpa_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/pdpa_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pdpa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rm/CMakeFiles/pdpa_rm.dir/DependInfo.cmake"
  "/root/repo/build/src/qs/CMakeFiles/pdpa_qs.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pdpa_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/pdpa_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/pdpa_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/pdpa_app.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/pdpa_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pdpa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pdpa_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/pdpa_rt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
