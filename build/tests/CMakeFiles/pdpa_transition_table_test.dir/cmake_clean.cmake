file(REMOVE_RECURSE
  "CMakeFiles/pdpa_transition_table_test.dir/pdpa_transition_table_test.cc.o"
  "CMakeFiles/pdpa_transition_table_test.dir/pdpa_transition_table_test.cc.o.d"
  "pdpa_transition_table_test"
  "pdpa_transition_table_test.pdb"
  "pdpa_transition_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdpa_transition_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
