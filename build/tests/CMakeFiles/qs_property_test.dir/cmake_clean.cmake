file(REMOVE_RECURSE
  "CMakeFiles/qs_property_test.dir/qs_property_test.cc.o"
  "CMakeFiles/qs_property_test.dir/qs_property_test.cc.o.d"
  "qs_property_test"
  "qs_property_test.pdb"
  "qs_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qs_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
