# Empty compiler generated dependencies file for qs_property_test.
# This may be replaced when dependencies are built.
