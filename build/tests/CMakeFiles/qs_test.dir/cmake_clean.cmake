file(REMOVE_RECURSE
  "CMakeFiles/qs_test.dir/qs_test.cc.o"
  "CMakeFiles/qs_test.dir/qs_test.cc.o.d"
  "qs_test"
  "qs_test.pdb"
  "qs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
