# Empty compiler generated dependencies file for prv_stats.
# This may be replaced when dependencies are built.
