
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/prv_stats.cc" "tools/CMakeFiles/prv_stats.dir/prv_stats.cc.o" "gcc" "tools/CMakeFiles/prv_stats.dir/prv_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/pdpa_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pdpa_common.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/pdpa_machine.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
