file(REMOVE_RECURSE
  "CMakeFiles/prv_stats.dir/prv_stats.cc.o"
  "CMakeFiles/prv_stats.dir/prv_stats.cc.o.d"
  "prv_stats"
  "prv_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prv_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
