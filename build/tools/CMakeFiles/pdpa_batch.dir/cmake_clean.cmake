file(REMOVE_RECURSE
  "CMakeFiles/pdpa_batch.dir/pdpa_batch.cc.o"
  "CMakeFiles/pdpa_batch.dir/pdpa_batch.cc.o.d"
  "pdpa_batch"
  "pdpa_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdpa_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
