# Empty dependencies file for pdpa_batch.
# This may be replaced when dependencies are built.
