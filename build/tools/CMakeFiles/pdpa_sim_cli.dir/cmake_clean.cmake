file(REMOVE_RECURSE
  "CMakeFiles/pdpa_sim_cli.dir/pdpa_sim.cc.o"
  "CMakeFiles/pdpa_sim_cli.dir/pdpa_sim.cc.o.d"
  "pdpa_sim"
  "pdpa_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdpa_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
