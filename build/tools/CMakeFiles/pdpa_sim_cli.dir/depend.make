# Empty dependencies file for pdpa_sim_cli.
# This may be replaced when dependencies are built.
