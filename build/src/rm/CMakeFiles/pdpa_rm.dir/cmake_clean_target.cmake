file(REMOVE_RECURSE
  "libpdpa_rm.a"
)
