file(REMOVE_RECURSE
  "CMakeFiles/pdpa_rm.dir/equal_efficiency.cc.o"
  "CMakeFiles/pdpa_rm.dir/equal_efficiency.cc.o.d"
  "CMakeFiles/pdpa_rm.dir/equipartition.cc.o"
  "CMakeFiles/pdpa_rm.dir/equipartition.cc.o.d"
  "CMakeFiles/pdpa_rm.dir/irix.cc.o"
  "CMakeFiles/pdpa_rm.dir/irix.cc.o.d"
  "CMakeFiles/pdpa_rm.dir/mccann_dynamic.cc.o"
  "CMakeFiles/pdpa_rm.dir/mccann_dynamic.cc.o.d"
  "CMakeFiles/pdpa_rm.dir/resource_manager.cc.o"
  "CMakeFiles/pdpa_rm.dir/resource_manager.cc.o.d"
  "libpdpa_rm.a"
  "libpdpa_rm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdpa_rm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
