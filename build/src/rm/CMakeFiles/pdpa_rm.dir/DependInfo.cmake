
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rm/equal_efficiency.cc" "src/rm/CMakeFiles/pdpa_rm.dir/equal_efficiency.cc.o" "gcc" "src/rm/CMakeFiles/pdpa_rm.dir/equal_efficiency.cc.o.d"
  "/root/repo/src/rm/equipartition.cc" "src/rm/CMakeFiles/pdpa_rm.dir/equipartition.cc.o" "gcc" "src/rm/CMakeFiles/pdpa_rm.dir/equipartition.cc.o.d"
  "/root/repo/src/rm/irix.cc" "src/rm/CMakeFiles/pdpa_rm.dir/irix.cc.o" "gcc" "src/rm/CMakeFiles/pdpa_rm.dir/irix.cc.o.d"
  "/root/repo/src/rm/mccann_dynamic.cc" "src/rm/CMakeFiles/pdpa_rm.dir/mccann_dynamic.cc.o" "gcc" "src/rm/CMakeFiles/pdpa_rm.dir/mccann_dynamic.cc.o.d"
  "/root/repo/src/rm/resource_manager.cc" "src/rm/CMakeFiles/pdpa_rm.dir/resource_manager.cc.o" "gcc" "src/rm/CMakeFiles/pdpa_rm.dir/resource_manager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/machine/CMakeFiles/pdpa_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/pdpa_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pdpa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pdpa_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pdpa_common.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/pdpa_app.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
