# Empty dependencies file for pdpa_rm.
# This may be replaced when dependencies are built.
