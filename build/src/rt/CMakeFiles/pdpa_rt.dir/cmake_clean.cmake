file(REMOVE_RECURSE
  "CMakeFiles/pdpa_rt.dir/kernels.cc.o"
  "CMakeFiles/pdpa_rt.dir/kernels.cc.o.d"
  "CMakeFiles/pdpa_rt.dir/malleable_team.cc.o"
  "CMakeFiles/pdpa_rt.dir/malleable_team.cc.o.d"
  "CMakeFiles/pdpa_rt.dir/process_rm.cc.o"
  "CMakeFiles/pdpa_rt.dir/process_rm.cc.o.d"
  "CMakeFiles/pdpa_rt.dir/self_tuner.cc.o"
  "CMakeFiles/pdpa_rt.dir/self_tuner.cc.o.d"
  "libpdpa_rt.a"
  "libpdpa_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdpa_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
