file(REMOVE_RECURSE
  "libpdpa_rt.a"
)
