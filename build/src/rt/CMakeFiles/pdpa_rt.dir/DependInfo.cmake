
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rt/kernels.cc" "src/rt/CMakeFiles/pdpa_rt.dir/kernels.cc.o" "gcc" "src/rt/CMakeFiles/pdpa_rt.dir/kernels.cc.o.d"
  "/root/repo/src/rt/malleable_team.cc" "src/rt/CMakeFiles/pdpa_rt.dir/malleable_team.cc.o" "gcc" "src/rt/CMakeFiles/pdpa_rt.dir/malleable_team.cc.o.d"
  "/root/repo/src/rt/process_rm.cc" "src/rt/CMakeFiles/pdpa_rt.dir/process_rm.cc.o" "gcc" "src/rt/CMakeFiles/pdpa_rt.dir/process_rm.cc.o.d"
  "/root/repo/src/rt/self_tuner.cc" "src/rt/CMakeFiles/pdpa_rt.dir/self_tuner.cc.o" "gcc" "src/rt/CMakeFiles/pdpa_rt.dir/self_tuner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pdpa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pdpa_common.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/pdpa_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/pdpa_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/pdpa_app.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
