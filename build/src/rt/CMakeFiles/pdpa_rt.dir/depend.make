# Empty dependencies file for pdpa_rt.
# This may be replaced when dependencies are built.
