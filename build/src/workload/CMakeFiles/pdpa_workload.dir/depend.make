# Empty dependencies file for pdpa_workload.
# This may be replaced when dependencies are built.
