file(REMOVE_RECURSE
  "CMakeFiles/pdpa_workload.dir/catalog.cc.o"
  "CMakeFiles/pdpa_workload.dir/catalog.cc.o.d"
  "CMakeFiles/pdpa_workload.dir/experiment.cc.o"
  "CMakeFiles/pdpa_workload.dir/experiment.cc.o.d"
  "libpdpa_workload.a"
  "libpdpa_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdpa_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
