file(REMOVE_RECURSE
  "libpdpa_workload.a"
)
