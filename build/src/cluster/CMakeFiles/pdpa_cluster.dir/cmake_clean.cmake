file(REMOVE_RECURSE
  "CMakeFiles/pdpa_cluster.dir/cluster.cc.o"
  "CMakeFiles/pdpa_cluster.dir/cluster.cc.o.d"
  "libpdpa_cluster.a"
  "libpdpa_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdpa_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
