file(REMOVE_RECURSE
  "libpdpa_cluster.a"
)
