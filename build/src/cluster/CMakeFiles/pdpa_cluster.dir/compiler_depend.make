# Empty compiler generated dependencies file for pdpa_cluster.
# This may be replaced when dependencies are built.
