# Empty dependencies file for pdpa_app.
# This may be replaced when dependencies are built.
