file(REMOVE_RECURSE
  "CMakeFiles/pdpa_app.dir/app_profile.cc.o"
  "CMakeFiles/pdpa_app.dir/app_profile.cc.o.d"
  "CMakeFiles/pdpa_app.dir/application.cc.o"
  "CMakeFiles/pdpa_app.dir/application.cc.o.d"
  "CMakeFiles/pdpa_app.dir/speedup_model.cc.o"
  "CMakeFiles/pdpa_app.dir/speedup_model.cc.o.d"
  "libpdpa_app.a"
  "libpdpa_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdpa_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
