
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/app/app_profile.cc" "src/app/CMakeFiles/pdpa_app.dir/app_profile.cc.o" "gcc" "src/app/CMakeFiles/pdpa_app.dir/app_profile.cc.o.d"
  "/root/repo/src/app/application.cc" "src/app/CMakeFiles/pdpa_app.dir/application.cc.o" "gcc" "src/app/CMakeFiles/pdpa_app.dir/application.cc.o.d"
  "/root/repo/src/app/speedup_model.cc" "src/app/CMakeFiles/pdpa_app.dir/speedup_model.cc.o" "gcc" "src/app/CMakeFiles/pdpa_app.dir/speedup_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pdpa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
