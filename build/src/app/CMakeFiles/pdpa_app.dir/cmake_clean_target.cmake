file(REMOVE_RECURSE
  "libpdpa_app.a"
)
