file(REMOVE_RECURSE
  "libpdpa_metrics.a"
)
