# Empty compiler generated dependencies file for pdpa_metrics.
# This may be replaced when dependencies are built.
