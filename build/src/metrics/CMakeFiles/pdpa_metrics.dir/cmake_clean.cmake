file(REMOVE_RECURSE
  "CMakeFiles/pdpa_metrics.dir/metrics.cc.o"
  "CMakeFiles/pdpa_metrics.dir/metrics.cc.o.d"
  "libpdpa_metrics.a"
  "libpdpa_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdpa_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
