
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/nth_lib.cc" "src/runtime/CMakeFiles/pdpa_runtime.dir/nth_lib.cc.o" "gcc" "src/runtime/CMakeFiles/pdpa_runtime.dir/nth_lib.cc.o.d"
  "/root/repo/src/runtime/periodicity_detector.cc" "src/runtime/CMakeFiles/pdpa_runtime.dir/periodicity_detector.cc.o" "gcc" "src/runtime/CMakeFiles/pdpa_runtime.dir/periodicity_detector.cc.o.d"
  "/root/repo/src/runtime/self_analyzer.cc" "src/runtime/CMakeFiles/pdpa_runtime.dir/self_analyzer.cc.o" "gcc" "src/runtime/CMakeFiles/pdpa_runtime.dir/self_analyzer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/app/CMakeFiles/pdpa_app.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pdpa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
