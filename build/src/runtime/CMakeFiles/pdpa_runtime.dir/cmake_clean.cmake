file(REMOVE_RECURSE
  "CMakeFiles/pdpa_runtime.dir/nth_lib.cc.o"
  "CMakeFiles/pdpa_runtime.dir/nth_lib.cc.o.d"
  "CMakeFiles/pdpa_runtime.dir/periodicity_detector.cc.o"
  "CMakeFiles/pdpa_runtime.dir/periodicity_detector.cc.o.d"
  "CMakeFiles/pdpa_runtime.dir/self_analyzer.cc.o"
  "CMakeFiles/pdpa_runtime.dir/self_analyzer.cc.o.d"
  "libpdpa_runtime.a"
  "libpdpa_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdpa_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
