# Empty dependencies file for pdpa_runtime.
# This may be replaced when dependencies are built.
