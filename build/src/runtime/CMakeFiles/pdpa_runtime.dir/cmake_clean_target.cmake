file(REMOVE_RECURSE
  "libpdpa_runtime.a"
)
