file(REMOVE_RECURSE
  "libpdpa_machine.a"
)
