file(REMOVE_RECURSE
  "CMakeFiles/pdpa_machine.dir/cpuset.cc.o"
  "CMakeFiles/pdpa_machine.dir/cpuset.cc.o.d"
  "CMakeFiles/pdpa_machine.dir/machine.cc.o"
  "CMakeFiles/pdpa_machine.dir/machine.cc.o.d"
  "libpdpa_machine.a"
  "libpdpa_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdpa_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
