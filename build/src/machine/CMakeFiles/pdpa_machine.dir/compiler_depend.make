# Empty compiler generated dependencies file for pdpa_machine.
# This may be replaced when dependencies are built.
