# Empty dependencies file for pdpa_qs.
# This may be replaced when dependencies are built.
