file(REMOVE_RECURSE
  "CMakeFiles/pdpa_qs.dir/queuing_system.cc.o"
  "CMakeFiles/pdpa_qs.dir/queuing_system.cc.o.d"
  "CMakeFiles/pdpa_qs.dir/swf.cc.o"
  "CMakeFiles/pdpa_qs.dir/swf.cc.o.d"
  "CMakeFiles/pdpa_qs.dir/workload_generator.cc.o"
  "CMakeFiles/pdpa_qs.dir/workload_generator.cc.o.d"
  "libpdpa_qs.a"
  "libpdpa_qs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdpa_qs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
