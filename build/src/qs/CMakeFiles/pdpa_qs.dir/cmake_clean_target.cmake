file(REMOVE_RECURSE
  "libpdpa_qs.a"
)
