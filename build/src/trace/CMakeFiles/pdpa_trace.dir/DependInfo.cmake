
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/ascii_view.cc" "src/trace/CMakeFiles/pdpa_trace.dir/ascii_view.cc.o" "gcc" "src/trace/CMakeFiles/pdpa_trace.dir/ascii_view.cc.o.d"
  "/root/repo/src/trace/paraver_reader.cc" "src/trace/CMakeFiles/pdpa_trace.dir/paraver_reader.cc.o" "gcc" "src/trace/CMakeFiles/pdpa_trace.dir/paraver_reader.cc.o.d"
  "/root/repo/src/trace/paraver_writer.cc" "src/trace/CMakeFiles/pdpa_trace.dir/paraver_writer.cc.o" "gcc" "src/trace/CMakeFiles/pdpa_trace.dir/paraver_writer.cc.o.d"
  "/root/repo/src/trace/trace_recorder.cc" "src/trace/CMakeFiles/pdpa_trace.dir/trace_recorder.cc.o" "gcc" "src/trace/CMakeFiles/pdpa_trace.dir/trace_recorder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/machine/CMakeFiles/pdpa_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pdpa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
