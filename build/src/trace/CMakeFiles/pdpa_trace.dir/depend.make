# Empty dependencies file for pdpa_trace.
# This may be replaced when dependencies are built.
