file(REMOVE_RECURSE
  "CMakeFiles/pdpa_trace.dir/ascii_view.cc.o"
  "CMakeFiles/pdpa_trace.dir/ascii_view.cc.o.d"
  "CMakeFiles/pdpa_trace.dir/paraver_reader.cc.o"
  "CMakeFiles/pdpa_trace.dir/paraver_reader.cc.o.d"
  "CMakeFiles/pdpa_trace.dir/paraver_writer.cc.o"
  "CMakeFiles/pdpa_trace.dir/paraver_writer.cc.o.d"
  "CMakeFiles/pdpa_trace.dir/trace_recorder.cc.o"
  "CMakeFiles/pdpa_trace.dir/trace_recorder.cc.o.d"
  "libpdpa_trace.a"
  "libpdpa_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdpa_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
