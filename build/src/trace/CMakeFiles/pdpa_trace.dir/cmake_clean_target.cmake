file(REMOVE_RECURSE
  "libpdpa_trace.a"
)
