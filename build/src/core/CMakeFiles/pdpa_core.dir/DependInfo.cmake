
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/pdpa.cc" "src/core/CMakeFiles/pdpa_core.dir/pdpa.cc.o" "gcc" "src/core/CMakeFiles/pdpa_core.dir/pdpa.cc.o.d"
  "/root/repo/src/core/pdpa_policy.cc" "src/core/CMakeFiles/pdpa_core.dir/pdpa_policy.cc.o" "gcc" "src/core/CMakeFiles/pdpa_core.dir/pdpa_policy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pdpa_common.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/pdpa_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/pdpa_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/pdpa_app.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
