file(REMOVE_RECURSE
  "libpdpa_core.a"
)
