file(REMOVE_RECURSE
  "CMakeFiles/pdpa_core.dir/pdpa.cc.o"
  "CMakeFiles/pdpa_core.dir/pdpa.cc.o.d"
  "CMakeFiles/pdpa_core.dir/pdpa_policy.cc.o"
  "CMakeFiles/pdpa_core.dir/pdpa_policy.cc.o.d"
  "libpdpa_core.a"
  "libpdpa_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdpa_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
