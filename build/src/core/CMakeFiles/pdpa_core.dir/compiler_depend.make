# Empty compiler generated dependencies file for pdpa_core.
# This may be replaced when dependencies are built.
