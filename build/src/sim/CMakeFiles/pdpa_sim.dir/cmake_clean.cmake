file(REMOVE_RECURSE
  "CMakeFiles/pdpa_sim.dir/event_queue.cc.o"
  "CMakeFiles/pdpa_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/pdpa_sim.dir/simulation.cc.o"
  "CMakeFiles/pdpa_sim.dir/simulation.cc.o.d"
  "libpdpa_sim.a"
  "libpdpa_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdpa_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
