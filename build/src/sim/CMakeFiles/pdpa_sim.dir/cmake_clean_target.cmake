file(REMOVE_RECURSE
  "libpdpa_sim.a"
)
