# Empty compiler generated dependencies file for pdpa_sim.
# This may be replaced when dependencies are built.
