file(REMOVE_RECURSE
  "CMakeFiles/pdpa_common.dir/flags.cc.o"
  "CMakeFiles/pdpa_common.dir/flags.cc.o.d"
  "CMakeFiles/pdpa_common.dir/logging.cc.o"
  "CMakeFiles/pdpa_common.dir/logging.cc.o.d"
  "CMakeFiles/pdpa_common.dir/rng.cc.o"
  "CMakeFiles/pdpa_common.dir/rng.cc.o.d"
  "CMakeFiles/pdpa_common.dir/stats.cc.o"
  "CMakeFiles/pdpa_common.dir/stats.cc.o.d"
  "CMakeFiles/pdpa_common.dir/strings.cc.o"
  "CMakeFiles/pdpa_common.dir/strings.cc.o.d"
  "libpdpa_common.a"
  "libpdpa_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdpa_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
