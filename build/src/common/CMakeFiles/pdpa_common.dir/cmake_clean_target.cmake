file(REMOVE_RECURSE
  "libpdpa_common.a"
)
