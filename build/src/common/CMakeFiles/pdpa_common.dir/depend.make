# Empty dependencies file for pdpa_common.
# This may be replaced when dependencies are built.
