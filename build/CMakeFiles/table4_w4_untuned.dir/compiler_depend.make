# Empty compiler generated dependencies file for table4_w4_untuned.
# This may be replaced when dependencies are built.
