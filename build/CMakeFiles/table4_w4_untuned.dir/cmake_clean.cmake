file(REMOVE_RECURSE
  "CMakeFiles/table4_w4_untuned.dir/bench/table4_w4_untuned.cc.o"
  "CMakeFiles/table4_w4_untuned.dir/bench/table4_w4_untuned.cc.o.d"
  "bench/table4_w4_untuned"
  "bench/table4_w4_untuned.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_w4_untuned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
