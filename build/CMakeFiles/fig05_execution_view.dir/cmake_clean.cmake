file(REMOVE_RECURSE
  "CMakeFiles/fig05_execution_view.dir/bench/fig05_execution_view.cc.o"
  "CMakeFiles/fig05_execution_view.dir/bench/fig05_execution_view.cc.o.d"
  "bench/fig05_execution_view"
  "bench/fig05_execution_view.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_execution_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
