# Empty dependencies file for fig05_execution_view.
# This may be replaced when dependencies are built.
