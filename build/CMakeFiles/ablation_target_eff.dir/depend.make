# Empty dependencies file for ablation_target_eff.
# This may be replaced when dependencies are built.
