file(REMOVE_RECURSE
  "CMakeFiles/ablation_target_eff.dir/bench/ablation_target_eff.cc.o"
  "CMakeFiles/ablation_target_eff.dir/bench/ablation_target_eff.cc.o.d"
  "bench/ablation_target_eff"
  "bench/ablation_target_eff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_target_eff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
