# Empty compiler generated dependencies file for fig07_multiprogramming.
# This may be replaced when dependencies are built.
