file(REMOVE_RECURSE
  "CMakeFiles/fig07_multiprogramming.dir/bench/fig07_multiprogramming.cc.o"
  "CMakeFiles/fig07_multiprogramming.dir/bench/fig07_multiprogramming.cc.o.d"
  "bench/fig07_multiprogramming"
  "bench/fig07_multiprogramming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_multiprogramming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
