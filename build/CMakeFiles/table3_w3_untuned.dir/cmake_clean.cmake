file(REMOVE_RECURSE
  "CMakeFiles/table3_w3_untuned.dir/bench/table3_w3_untuned.cc.o"
  "CMakeFiles/table3_w3_untuned.dir/bench/table3_w3_untuned.cc.o.d"
  "bench/table3_w3_untuned"
  "bench/table3_w3_untuned.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_w3_untuned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
