# Empty compiler generated dependencies file for table3_w3_untuned.
# This may be replaced when dependencies are built.
