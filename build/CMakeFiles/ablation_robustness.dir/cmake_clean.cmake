file(REMOVE_RECURSE
  "CMakeFiles/ablation_robustness.dir/bench/ablation_robustness.cc.o"
  "CMakeFiles/ablation_robustness.dir/bench/ablation_robustness.cc.o.d"
  "bench/ablation_robustness"
  "bench/ablation_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
