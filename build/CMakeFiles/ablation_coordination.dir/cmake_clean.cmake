file(REMOVE_RECURSE
  "CMakeFiles/ablation_coordination.dir/bench/ablation_coordination.cc.o"
  "CMakeFiles/ablation_coordination.dir/bench/ablation_coordination.cc.o.d"
  "bench/ablation_coordination"
  "bench/ablation_coordination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_coordination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
