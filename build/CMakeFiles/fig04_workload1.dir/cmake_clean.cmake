file(REMOVE_RECURSE
  "CMakeFiles/fig04_workload1.dir/bench/fig04_workload1.cc.o"
  "CMakeFiles/fig04_workload1.dir/bench/fig04_workload1.cc.o.d"
  "bench/fig04_workload1"
  "bench/fig04_workload1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_workload1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
