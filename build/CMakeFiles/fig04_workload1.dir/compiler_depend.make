# Empty compiler generated dependencies file for fig04_workload1.
# This may be replaced when dependencies are built.
