file(REMOVE_RECURSE
  "CMakeFiles/extra_rigid_folding.dir/bench/extra_rigid_folding.cc.o"
  "CMakeFiles/extra_rigid_folding.dir/bench/extra_rigid_folding.cc.o.d"
  "bench/extra_rigid_folding"
  "bench/extra_rigid_folding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_rigid_folding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
