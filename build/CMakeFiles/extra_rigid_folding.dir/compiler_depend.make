# Empty compiler generated dependencies file for extra_rigid_folding.
# This may be replaced when dependencies are built.
