file(REMOVE_RECURSE
  "CMakeFiles/fig08_ml_timeline.dir/bench/fig08_ml_timeline.cc.o"
  "CMakeFiles/fig08_ml_timeline.dir/bench/fig08_ml_timeline.cc.o.d"
  "bench/fig08_ml_timeline"
  "bench/fig08_ml_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_ml_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
