# Empty dependencies file for extra_cluster.
# This may be replaced when dependencies are built.
