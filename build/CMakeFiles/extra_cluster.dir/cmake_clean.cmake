file(REMOVE_RECURSE
  "CMakeFiles/extra_cluster.dir/bench/extra_cluster.cc.o"
  "CMakeFiles/extra_cluster.dir/bench/extra_cluster.cc.o.d"
  "bench/extra_cluster"
  "bench/extra_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
