# Empty compiler generated dependencies file for fig06_workload2.
# This may be replaced when dependencies are built.
