file(REMOVE_RECURSE
  "CMakeFiles/fig06_workload2.dir/bench/fig06_workload2.cc.o"
  "CMakeFiles/fig06_workload2.dir/bench/fig06_workload2.cc.o.d"
  "bench/fig06_workload2"
  "bench/fig06_workload2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_workload2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
