file(REMOVE_RECURSE
  "CMakeFiles/micro_simcore.dir/bench/micro_simcore.cc.o"
  "CMakeFiles/micro_simcore.dir/bench/micro_simcore.cc.o.d"
  "bench/micro_simcore"
  "bench/micro_simcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_simcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
