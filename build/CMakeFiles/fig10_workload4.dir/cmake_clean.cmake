file(REMOVE_RECURSE
  "CMakeFiles/fig10_workload4.dir/bench/fig10_workload4.cc.o"
  "CMakeFiles/fig10_workload4.dir/bench/fig10_workload4.cc.o.d"
  "bench/fig10_workload4"
  "bench/fig10_workload4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_workload4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
