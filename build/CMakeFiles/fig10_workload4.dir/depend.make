# Empty dependencies file for fig10_workload4.
# This may be replaced when dependencies are built.
