file(REMOVE_RECURSE
  "CMakeFiles/micro_policies.dir/bench/micro_policies.cc.o"
  "CMakeFiles/micro_policies.dir/bench/micro_policies.cc.o.d"
  "bench/micro_policies"
  "bench/micro_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
