# Empty compiler generated dependencies file for fig03_speedup_curves.
# This may be replaced when dependencies are built.
