file(REMOVE_RECURSE
  "CMakeFiles/fig03_speedup_curves.dir/bench/fig03_speedup_curves.cc.o"
  "CMakeFiles/fig03_speedup_curves.dir/bench/fig03_speedup_curves.cc.o.d"
  "bench/fig03_speedup_curves"
  "bench/fig03_speedup_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_speedup_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
