file(REMOVE_RECURSE
  "CMakeFiles/extra_dynamic_policy.dir/bench/extra_dynamic_policy.cc.o"
  "CMakeFiles/extra_dynamic_policy.dir/bench/extra_dynamic_policy.cc.o.d"
  "bench/extra_dynamic_policy"
  "bench/extra_dynamic_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_dynamic_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
