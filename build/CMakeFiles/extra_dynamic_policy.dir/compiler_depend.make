# Empty compiler generated dependencies file for extra_dynamic_policy.
# This may be replaced when dependencies are built.
