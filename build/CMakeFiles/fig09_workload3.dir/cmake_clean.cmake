file(REMOVE_RECURSE
  "CMakeFiles/fig09_workload3.dir/bench/fig09_workload3.cc.o"
  "CMakeFiles/fig09_workload3.dir/bench/fig09_workload3.cc.o.d"
  "bench/fig09_workload3"
  "bench/fig09_workload3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_workload3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
