# Empty dependencies file for fig09_workload3.
# This may be replaced when dependencies are built.
