// Structured scheduler event log — the "flight recorder" half of src/obs/.
//
// Every interesting decision in the stack (job lifecycle, PDPA automaton
// transitions with their measured efficiency, per-quantum allocation plans,
// ML admission holds, CPU handoffs, runtime performance reports) is emitted
// as one flat JSON object per line (JSONL). Records are stamped exclusively
// with *simulation* time (integer microseconds, field "t_us"), never wall
// clock, so two identical runs produce byte-identical logs — the property
// the determinism golden test asserts.
//
// The log is an optional, non-owning sink: a null/absent EventLog makes
// every emitter a no-op, so instrumented hot paths cost one pointer test
// when recording is off.
#ifndef SRC_OBS_EVENT_LOG_H_
#define SRC_OBS_EVENT_LOG_H_

#include <iosfwd>
#include <map>
#include <string>
#include <string_view>

#include "src/common/ids.h"
#include "src/common/mutex.h"
#include "src/common/time_types.h"

namespace pdpa {

// Builds one flat JSON object ({"key":value,...}). Keys are emitted in call
// order; values are escaped strings or numbers formatted deterministically.
class JsonObjectWriter {
 public:
  JsonObjectWriter& Field(std::string_view key, std::string_view value);
  JsonObjectWriter& Field(std::string_view key, const char* value);
  JsonObjectWriter& Field(std::string_view key, long long value);
  JsonObjectWriter& Field(std::string_view key, unsigned long long value);
  JsonObjectWriter& Field(std::string_view key, int value);
  JsonObjectWriter& Field(std::string_view key, bool value);
  // Doubles use "%.10g": enough digits to round-trip the values we record,
  // and bit-deterministic for a given binary.
  JsonObjectWriter& Field(std::string_view key, double value);

  // Returns the closed object. The writer is single-use.
  std::string Finish();

 private:
  void Key(std::string_view key);

  std::string body_ = "{";
  bool first_ = true;
};

// Escapes `text` as a JSON string literal (with surrounding quotes).
std::string JsonEscape(std::string_view text);

// Parses one flat JSON object line (as produced by EventLog) into
// field -> raw value. String values are unescaped; numbers/bools keep their
// textual form. Returns false on malformed input. Nested objects/arrays are
// not supported — the event schema is deliberately flat.
bool ParseFlatJson(std::string_view line, std::map<std::string, std::string>* fields);

class EventLog {
 public:
  // `out` is borrowed and must outlive the log; null disables recording.
  explicit EventLog(std::ostream* out) : out_(out) {}

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  bool enabled() const { return out_ != nullptr; }
  long long lines_written() const { return lines_; }

  // --- Typed emitters -----------------------------------------------------
  // One experiment begins; no timestamp on purpose (always t=0).
  void RunStart(std::string_view policy, std::string_view workload, double load,
                unsigned long long seed, int cpus);
  void RunEnd(SimTime t, int jobs, bool completed);

  void JobSubmit(SimTime t, JobId job, std::string_view app_class, int request, bool rigid);
  void JobStart(SimTime t, JobId job, std::string_view app_class, int request, int alloc,
                int running, int queued);
  void JobFinish(SimTime t, JobId job, SimTime submit, SimTime start);

  // The queuing system wanted to start a job but the policy (or a rigid
  // hold) refused: the ML coordination said no.
  void AdmitHold(SimTime t, int running, int queued, int free_cpus);

  // A SelfAnalyzer measurement reached the resource manager.
  void PerfSample(SimTime t, JobId job, int procs, double speedup, double efficiency);

  // One PDPA automaton evaluation: `from`/`to` are state names, `trigger`
  // is "start" | "report" | "free_capacity". Self-transitions are recorded
  // too (changed=false) so timelines show every evaluation.
  void PdpaTransition(SimTime t, JobId job, const char* from, const char* to, int from_alloc,
                      int to_alloc, double speedup, double efficiency, double target_eff,
                      const char* trigger);

  // The RM applied an allocation plan. `plan` is "job:cpus job:cpus ...".
  void AllocDecision(SimTime t, const char* trigger, const std::string& plan);

  // Concrete CPU ownership changes from one ApplyAllocation/ReleaseJob.
  void CpuHandoffs(SimTime t, int moved, int migrations);

  // Escape hatch for events without a dedicated emitter; `json_line` must be
  // one complete flat JSON object (no trailing newline).
  void Emit(const std::string& json_line);

 private:
  std::ostream* out_;
  long long lines_ = 0;
  // The log is not mutex-protected by design: every EventLog belongs to one
  // run and is only written by the thread driving that run (the sweep engine
  // gives each cell a private sink). Audit builds enforce that confinement.
  ThreadConfinementChecker confinement_;
};

}  // namespace pdpa

#endif  // SRC_OBS_EVENT_LOG_H_
