// Structured scheduler event log — the "flight recorder" half of src/obs/.
//
// Every interesting decision in the stack (job lifecycle, PDPA automaton
// transitions with their measured efficiency, per-quantum allocation plans,
// ML admission holds, CPU handoffs, runtime performance reports) is emitted
// as one flat JSON object per line (JSONL). Records are stamped exclusively
// with *simulation* time (integer microseconds, field "t_us"), never wall
// clock, so two identical runs produce byte-identical logs — the property
// the determinism golden test asserts.
//
// The log is an optional, non-owning sink: a null/absent EventLog makes
// every emitter a no-op, so instrumented hot paths cost one pointer test
// when recording is off.
//
// Serialization fast path (DESIGN.md §9): each record is formatted into a
// reusable scratch buffer (append-to-buffer number formatters from
// src/common/fmt.h, no per-field temporaries) and handed to a 64 KiB
// BufWriter, so steady-state emission performs zero heap allocations and
// one ostream write per ~64 KiB. The small fixed vocabulary of event-type
// and app-class names is interned as pre-escaped JSON literals. Bytes are
// identical to the original StrFormat path, which survives as
// internal::LegacyJsonObjectWriter behind a test-only flag for the golden
// byte-identity fixture and the serialization A/B bench. Readers of a
// captured ostringstream must call Flush() first while the log is alive.
#ifndef SRC_OBS_EVENT_LOG_H_
#define SRC_OBS_EVENT_LOG_H_

#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/bufwriter.h"
#include "src/common/ids.h"
#include "src/common/mutex.h"
#include "src/common/time_types.h"
#include "src/obs/prof.h"

namespace pdpa {

// A string from a small fixed vocabulary, cached with its JSON-escaped
// quoted form so hot emitters skip the escape loop. Both views point into
// a StringInterner and stay valid for the interner's lifetime.
struct InternedString {
  std::string_view raw;
  std::string_view escaped;  // includes surrounding quotes
};

// Caches the JSON-escaped form of each distinct string it sees. Node-based
// map storage keeps the returned views stable across later insertions.
class StringInterner {
 public:
  InternedString Intern(std::string_view raw);

 private:
  std::map<std::string, std::string, std::less<>> table_;
};

// Appends JSON string-literal escapes of `text` (with surrounding quotes)
// to *out, allocation-free apart from buffer growth.
void JsonEscapeTo(std::string* out, std::string_view text);

// Escapes `text` as a JSON string literal (with surrounding quotes).
std::string JsonEscape(std::string_view text);

// Builds one flat JSON object ({"key":value,...}) by appending into a
// caller-provided buffer — typically a reusable scratch string, so writing
// a record allocates nothing. Keys are emitted in call order; values are
// escaped strings or numbers formatted deterministically (doubles use the
// "%.10g" contract, see src/common/fmt.h).
class JsonObjectWriter {
 public:
  explicit JsonObjectWriter(std::string* out) : out_(out) { out_->push_back('{'); }

  JsonObjectWriter& Field(std::string_view key, std::string_view value);
  JsonObjectWriter& Field(std::string_view key, const char* value);
  JsonObjectWriter& Field(std::string_view key, InternedString value);
  JsonObjectWriter& Field(std::string_view key, long long value);
  JsonObjectWriter& Field(std::string_view key, unsigned long long value);
  JsonObjectWriter& Field(std::string_view key, int value);
  JsonObjectWriter& Field(std::string_view key, bool value);
  JsonObjectWriter& Field(std::string_view key, double value);

  // Closes the object in the buffer. The writer is single-use.
  void Finish() { out_->push_back('}'); }

 private:
  void Key(std::string_view key);

  std::string* out_;
  bool first_ = true;
};

namespace internal {

// The pre-fast-path serializer, byte for byte: builds its own std::string
// via snprintf-backed StrFormat with one temporary per field. Kept only so
// the golden fixture and serialization_bench can A/B the fast path against
// the original allocation behavior; production code must not use it.
class LegacyJsonObjectWriter {
 public:
  LegacyJsonObjectWriter& Field(std::string_view key, std::string_view value);
  LegacyJsonObjectWriter& Field(std::string_view key, const char* value);
  LegacyJsonObjectWriter& Field(std::string_view key, InternedString value) {
    return Field(key, value.raw);
  }
  LegacyJsonObjectWriter& Field(std::string_view key, long long value);
  LegacyJsonObjectWriter& Field(std::string_view key, unsigned long long value);
  LegacyJsonObjectWriter& Field(std::string_view key, int value);
  LegacyJsonObjectWriter& Field(std::string_view key, bool value);
  LegacyJsonObjectWriter& Field(std::string_view key, double value);

  // Returns the closed object. The writer is single-use.
  std::string Finish();

 private:
  void Key(std::string_view key);

  std::string body_ = "{";
  bool first_ = true;
};

}  // namespace internal

// Parses one flat JSON object line (as produced by EventLog) into
// field -> raw value. String values are unescaped; numbers/bools keep their
// textual form. Returns false on malformed input. Nested objects/arrays are
// not supported — the event schema is deliberately flat.
bool ParseFlatJson(std::string_view line, std::map<std::string, std::string>* fields);

// Merges per-stream JSONL event logs into one stream, stably ordered by
// (t_us, stream index, line order within the stream). Each input must be
// individually time-monotone — true of every EventLog sink, which the
// cluster engine relies on: stream 0 is the controller log and stream k+1
// is node k, so equal-time records sort controller-first then by node
// index. Records without a "t_us" field (run_start) sort as t=0.
std::string MergeEventStreams(const std::vector<std::string>& streams);

class EventLog {
 public:
  // `out` is borrowed and must outlive the log; null disables recording.
  explicit EventLog(std::ostream* out);

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  // Flushes to the old sink, then rebinds the log to `out` (null disables)
  // and zeroes lines_written(). The string interner — and with it the
  // already-escaped vocabulary — is kept, which is what makes per-worker
  // EventLog reuse across sweep cells cheaper than reconstruction. Interned
  // views stay content-deterministic, so reuse cannot change output bytes.
  void Reset(std::ostream* out);

  bool enabled() const { return out_ != nullptr; }
  long long lines_written() const { return lines_; }

  // Pushes buffered bytes through to the sink. Must be called before
  // reading a captured ostringstream while the log is still alive (the
  // destructor also flushes).
  void Flush() {
    if (out_ != nullptr) {
      ProfScope prof_scope(profiler_, SpanId::kObsFlush);
      writer_.Flush();
    }
  }

  // Borrowed host-time profiler; null (the default) disables span timing.
  // When set, every serialized record is wrapped in an obs.serialize span
  // and Flush in an obs.flush span.
  void set_profiler(Profiler* profiler) { profiler_ = profiler; }

  // Test-only: route every record through the retained PR-4 serializer
  // (per-field StrFormat temporaries, unbuffered per-line ostream writes)
  // so golden fixtures and benches can compare it against the fast path.
  void set_legacy_serialization_for_test(bool legacy) { legacy_for_test_ = legacy; }

  // Cluster mode: tag every typed record with a trailing "node":K field so
  // merged per-node streams stay attributable. Negative (the default)
  // leaves output bytes exactly as before — single-machine runs are
  // unaffected. Does not apply to the raw Emit() escape hatch.
  void set_node_tag(int node) { node_tag_ = node; }

  // Releases the audit-build thread-confinement binding; the next emitter
  // call re-binds to its calling thread. The cluster engine calls this when
  // ownership of a node's log moves between a shard worker and the
  // controller (the engine provides the happens-before edge).
  void HandoffConfinement() { confinement_.Handoff(); }

  // --- Typed emitters -----------------------------------------------------
  // One experiment begins; no timestamp on purpose (always t=0).
  void RunStart(std::string_view policy, std::string_view workload, double load,
                unsigned long long seed, int cpus);
  void RunEnd(SimTime t, int jobs, bool completed);

  void JobSubmit(SimTime t, JobId job, std::string_view app_class, int request, bool rigid);
  void JobStart(SimTime t, JobId job, std::string_view app_class, int request, int alloc,
                int running, int queued);
  void JobFinish(SimTime t, JobId job, SimTime submit, SimTime start);

  // The queuing system wanted to start a job but the policy (or a rigid
  // hold) refused: the ML coordination said no.
  void AdmitHold(SimTime t, int running, int queued, int free_cpus);

  // A SelfAnalyzer measurement reached the resource manager.
  void PerfSample(SimTime t, JobId job, int procs, double speedup, double efficiency);

  // One PDPA automaton evaluation: `from`/`to` are state names, `trigger`
  // is "start" | "report" | "free_capacity". Self-transitions are recorded
  // too (changed=false) so timelines show every evaluation.
  void PdpaTransition(SimTime t, JobId job, const char* from, const char* to, int from_alloc,
                      int to_alloc, double speedup, double efficiency, double target_eff,
                      const char* trigger);

  // The RM applied an allocation plan. `plan` is "job:cpus job:cpus ...".
  void AllocDecision(SimTime t, const char* trigger, const std::string& plan);

  // Concrete CPU ownership changes from one ApplyAllocation/ReleaseJob.
  void CpuHandoffs(SimTime t, int moved, int migrations);

  // Escape hatch for events without a dedicated emitter; `json_line` must be
  // one complete flat JSON object (no trailing newline).
  void Emit(const std::string& json_line);

 private:
  // Interns the fixed event-type vocabulary (construction and Reset).
  void InternTypes();

  // Shared emit shell: `fill` applies the record's .Field(...) chain to
  // whichever serializer is active (fast buffer writer or retained legacy
  // writer), so each typed emitter states its schema exactly once.
  template <typename Fn>
  void EmitRecord(Fn&& fill) {
    if (out_ == nullptr) {
      return;
    }
    ProfScope prof_scope(profiler_, SpanId::kObsSerialize);
    confinement_.AssertConfined("EventLog");
    if (legacy_for_test_) {
      internal::LegacyJsonObjectWriter writer;
      fill(writer);
      if (node_tag_ >= 0) {
        writer.Field("node", node_tag_);
      }
      *out_ << writer.Finish() << '\n';
    } else {
      scratch_.clear();
      JsonObjectWriter writer(&scratch_);
      fill(writer);
      if (node_tag_ >= 0) {
        writer.Field("node", node_tag_);
      }
      writer.Finish();
      scratch_.push_back('\n');
      writer_.Append(scratch_);
    }
    ++lines_;
  }

  std::ostream* out_;
  BufWriter writer_;
  std::string scratch_;
  StringInterner interner_;
  // The fixed event-type vocabulary, interned once at construction.
  InternedString type_run_start_, type_run_end_, type_job_submit_, type_job_start_,
      type_job_finish_, type_admit_hold_, type_perf_sample_, type_pdpa_transition_,
      type_alloc_decision_, type_cpu_handoffs_;
  long long lines_ = 0;
  bool legacy_for_test_ = false;
  int node_tag_ = -1;
  Profiler* profiler_ = nullptr;
  // The log is not mutex-protected by design: every EventLog belongs to one
  // run and is only written by the thread driving that run (the sweep engine
  // gives each cell a private sink). Audit builds enforce that confinement.
  ThreadConfinementChecker confinement_;
};

}  // namespace pdpa

#endif  // SRC_OBS_EVENT_LOG_H_
