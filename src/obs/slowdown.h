// Log-bucketed histogram for per-job slowdown distributions.
//
// Slowdown = response time / execution time (>= 1 by construction). The
// slowdown-centric evaluations in the related work (heSRPT, "Towards
// Optimality in Parallel Job Scheduling") compare *distributions* with tail
// percentiles, which the scalar per-class means in the sweep CSV cannot
// express — this histogram is the measurement substrate for them.
//
// Determinism contract: bucketing uses frexp (exact mantissa/exponent
// split) plus comparisons against hard-coded 2^(j/8) boundary constants —
// no libm log, so the bucket index of a value is bit-identical on every
// conforming platform. Counts are integers, so Merge is exact, associative
// and commutative: merging per-cell histograms across sweep seeds in any
// grouping yields identical aggregate percentiles (the property the sweep
// aggregate rows rely on).
//
// Bucket scheme: 8 geometric sub-buckets per octave (boundaries at
// 2^(k + j/8)), octaves covering [2^-4, 2^20), plus one underflow and one
// overflow bucket — resolution ~9% per bucket over 24 decades of range.
// Percentile() is nearest-rank and returns the upper bound of the selected
// bucket ("le" semantics, matching the counters-registry Histogram).
#ifndef SRC_OBS_SLOWDOWN_H_
#define SRC_OBS_SLOWDOWN_H_

#include <array>

namespace pdpa {

class LogHistogram {
 public:
  // Sub-buckets per octave (power of two between successive octaves).
  static constexpr int kSubBuckets = 8;
  // frexp exponents covered: values in [2^(kMinExp-1), 2^kMaxExp).
  static constexpr int kMinExp = -3;  // lowest octave starts at 2^-4
  static constexpr int kMaxExp = 20;  // highest octave ends at 2^20
  static constexpr int kNumBuckets =
      (kMaxExp - kMinExp + 1) * kSubBuckets + 2;  // + underflow + overflow

  void Observe(double value);

  // Element-wise integer sums: exact, associative, commutative.
  void Merge(const LogHistogram& other);

  long long count() const { return total_; }

  // Nearest-rank percentile (p in [0, 100]): the upper bound of the bucket
  // holding the ceil(p/100 * count)-th observation. Returns 0 when empty.
  // Underflow saturates to 2^-4, overflow to 2^20.
  double Percentile(double p) const;

  // Upper bound of bucket `index` (the "le" edge).
  static double BucketUpperBound(int index);

  const std::array<long long, kNumBuckets>& buckets() const { return counts_; }

 private:
  std::array<long long, kNumBuckets> counts_{};
  long long total_ = 0;
};

}  // namespace pdpa

#endif  // SRC_OBS_SLOWDOWN_H_
