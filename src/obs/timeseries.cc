#include "src/obs/timeseries.h"

#include <ostream>

#include "src/common/bufwriter.h"
#include "src/common/fmt.h"
#include "src/common/strings.h"

namespace pdpa {

namespace {

constexpr char kCsvHeader[] =
    "kind,t_s,t_end_s,job,alloc,speedup,efficiency,state,free_cpus,running,queued,"
    "utilization\n";

void AppendAppRow(std::string* row, const TimeSeriesSampler::AppPoint& p) {
  row->append("app,");
  AppendFixed(row, TimeToSeconds(p.t_start), 6);
  row->push_back(',');
  AppendFixed(row, TimeToSeconds(p.t_end), 6);
  row->push_back(',');
  AppendInt(row, p.job);
  row->push_back(',');
  AppendGeneral(row, p.alloc, 10);
  row->push_back(',');
  AppendGeneral(row, p.speedup, 10);
  row->push_back(',');
  AppendGeneral(row, p.efficiency, 10);
  row->push_back(',');
  row->append(p.state);
  row->append(",,,,\n");
}

void AppendMachineRow(std::string* row, const TimeSeriesSampler::MachinePoint& p) {
  row->append("machine,");
  AppendFixed(row, TimeToSeconds(p.t), 6);
  row->append(",,,,,,,");
  AppendInt(row, p.free_cpus);
  row->push_back(',');
  AppendInt(row, p.running);
  row->push_back(',');
  AppendInt(row, p.queued);
  row->push_back(',');
  AppendGeneral(row, p.utilization, 10);
  row->push_back('\n');
}

}  // namespace

std::map<JobId, double> TimeSeriesSampler::AllocIntegralUs() const {
  std::map<JobId, double> integral;
  for (const AppPoint& point : apps_) {
    integral[point.job] += point.alloc * static_cast<double>(point.t_end - point.t_start);
  }
  return integral;
}

void TimeSeriesSampler::WriteCsv(std::ostream& out) const {
  BufWriter writer(&out);
  writer.Append(kCsvHeader);
  // Both vectors are appended in simulation order; merge by timestamp so the
  // CSV reads chronologically (app windows before the machine sample taken
  // at the same instant).
  std::string row;
  row.reserve(160);
  std::size_t a = 0;
  std::size_t m = 0;
  while (a < apps_.size() || m < machine_.size()) {
    const bool take_app =
        m >= machine_.size() || (a < apps_.size() && apps_[a].t_end <= machine_[m].t);
    row.clear();
    if (take_app) {
      AppendAppRow(&row, apps_[a++]);
    } else {
      AppendMachineRow(&row, machine_[m++]);
    }
    writer.Append(row);
  }
  writer.Flush();
}

void TimeSeriesSampler::Clear() {
  apps_.clear();
  machine_.clear();
}

void WriteClusterTimeSeriesCsv(const std::vector<const TimeSeriesSampler*>& nodes,
                               std::ostream& out) {
  BufWriter writer(&out);
  writer.Append("node,");
  writer.Append(kCsvHeader);
  // Per-node cursors replay each sampler with WriteCsv's own take-app rule,
  // so the row sequence within one node matches its single-machine CSV
  // exactly; across nodes the earliest key time wins, ties to the lowest
  // node index.
  struct Cursor {
    std::size_t a = 0;
    std::size_t m = 0;
  };
  std::vector<Cursor> cursors(nodes.size());
  const auto key_time = [&](std::size_t k, bool* take_app) -> SimTime {
    const TimeSeriesSampler& s = *nodes[k];
    const Cursor& c = cursors[k];
    *take_app = c.m >= s.machine().size() ||
                (c.a < s.apps().size() && s.apps()[c.a].t_end <= s.machine()[c.m].t);
    return *take_app ? s.apps()[c.a].t_end : s.machine()[c.m].t;
  };
  std::string row;
  row.reserve(160);
  while (true) {
    std::size_t best = nodes.size();
    SimTime best_t = 0;
    bool best_app = false;
    for (std::size_t k = 0; k < nodes.size(); ++k) {
      const Cursor& c = cursors[k];
      if (c.a >= nodes[k]->apps().size() && c.m >= nodes[k]->machine().size()) {
        continue;
      }
      bool take_app = false;
      const SimTime t = key_time(k, &take_app);
      if (best == nodes.size() || t < best_t) {
        best = k;
        best_t = t;
        best_app = take_app;
      }
    }
    if (best == nodes.size()) {
      break;
    }
    row.clear();
    AppendInt(&row, static_cast<int>(best));
    row.push_back(',');
    Cursor& c = cursors[best];
    if (best_app) {
      AppendAppRow(&row, nodes[best]->apps()[c.a++]);
    } else {
      AppendMachineRow(&row, nodes[best]->machine()[c.m++]);
    }
    writer.Append(row);
  }
  writer.Flush();
}

namespace internal {

void WriteTimeSeriesCsvLegacy(const TimeSeriesSampler& series, std::ostream& out) {
  out << kCsvHeader;
  std::size_t a = 0;
  std::size_t m = 0;
  const auto& apps = series.apps();
  const auto& machine = series.machine();
  while (a < apps.size() || m < machine.size()) {
    const bool take_app = m >= machine.size() || (a < apps.size() && apps[a].t_end <= machine[m].t);
    if (take_app) {
      const TimeSeriesSampler::AppPoint& p = apps[a++];
      out << StrFormat("app,%.6f,%.6f,%d,%.10g,%.10g,%.10g,%s,,,,\n", TimeToSeconds(p.t_start),
                       TimeToSeconds(p.t_end), p.job, p.alloc, p.speedup, p.efficiency,
                       p.state.c_str());
    } else {
      const TimeSeriesSampler::MachinePoint& p = machine[m++];
      out << StrFormat("machine,%.6f,,,,,,,%d,%d,%d,%.10g\n", TimeToSeconds(p.t), p.free_cpus,
                       p.running, p.queued, p.utilization);
    }
  }
}

}  // namespace internal

}  // namespace pdpa
