#include "src/obs/timeseries.h"

#include <ostream>

#include "src/common/strings.h"

namespace pdpa {

std::map<JobId, double> TimeSeriesSampler::AllocIntegralUs() const {
  std::map<JobId, double> integral;
  for (const AppPoint& point : apps_) {
    integral[point.job] += point.alloc * static_cast<double>(point.t_end - point.t_start);
  }
  return integral;
}

void TimeSeriesSampler::WriteCsv(std::ostream& out) const {
  out << "kind,t_s,t_end_s,job,alloc,speedup,efficiency,state,free_cpus,running,queued,"
         "utilization\n";
  // Both vectors are appended in simulation order; merge by timestamp so the
  // CSV reads chronologically (app windows before the machine sample taken
  // at the same instant).
  std::size_t a = 0;
  std::size_t m = 0;
  while (a < apps_.size() || m < machine_.size()) {
    const bool take_app =
        m >= machine_.size() || (a < apps_.size() && apps_[a].t_end <= machine_[m].t);
    if (take_app) {
      const AppPoint& p = apps_[a++];
      out << StrFormat("app,%.6f,%.6f,%d,%.10g,%.10g,%.10g,%s,,,,\n", TimeToSeconds(p.t_start),
                       TimeToSeconds(p.t_end), p.job, p.alloc, p.speedup, p.efficiency,
                       p.state.c_str());
    } else {
      const MachinePoint& p = machine_[m++];
      out << StrFormat("machine,%.6f,,,,,,,%d,%d,%d,%.10g\n", TimeToSeconds(p.t),
                       p.free_cpus, p.running, p.queued, p.utilization);
    }
  }
}

void TimeSeriesSampler::Clear() {
  apps_.clear();
  machine_.clear();
}

}  // namespace pdpa
