#include "src/obs/counters.h"

#include <utility>

#include "src/common/logging.h"
#include "src/common/strings.h"

namespace pdpa {

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)) {
  PDPA_CHECK(!upper_bounds_.empty()) << "histogram needs at least one bucket bound";
  for (std::size_t i = 1; i < upper_bounds_.size(); ++i) {
    PDPA_CHECK(upper_bounds_[i - 1] < upper_bounds_[i])
        << "histogram bounds must be strictly increasing";
  }
  counts_.assign(upper_bounds_.size() + 1, 0);
}

void Histogram::Observe(double sample) {
  std::size_t bucket = upper_bounds_.size();  // overflow bucket
  for (std::size_t i = 0; i < upper_bounds_.size(); ++i) {
    if (sample <= upper_bounds_[i]) {
      bucket = i;
      break;
    }
  }
  ++counts_[bucket];
  ++count_;
  sum_ += sample;
}

void Histogram::Reset() {
  counts_.assign(counts_.size(), 0);
  count_ = 0;
  sum_ = 0.0;
}

void Histogram::Restore(const std::vector<long long>& bucket_counts, long long count,
                        double sum) {
  PDPA_CHECK_EQ(bucket_counts.size(), counts_.size())
      << "histogram restore with mismatched bucket layout";
  counts_ = bucket_counts;
  count_ = count;
  sum_ = sum;
}

Counter* Registry::counter(const std::string& name) {
  const MutexLock lock(&mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::make_unique<Counter>()).first;
  }
  return it->second.get();
}

Gauge* Registry::gauge(const std::string& name) {
  const MutexLock lock(&mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* Registry::histogram(const std::string& name, std::vector<double> upper_bounds) {
  const MutexLock lock(&mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, std::make_unique<Histogram>(std::move(upper_bounds))).first;
  }
  return it->second.get();
}

RegistrySnapshot Registry::Snapshot() const {
  const MutexLock lock(&mutex_);
  RegistrySnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.push_back(CounterSnapshot{name, counter->value()});
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.push_back(GaugeSnapshot{name, gauge->value(), gauge->has_value()});
  }
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.push_back(HistogramSnapshot{name, histogram->upper_bounds(),
                                                    histogram->bucket_counts(),
                                                    histogram->count(), histogram->sum()});
  }
  return snapshot;
}

void Registry::ResetAll() {
  const MutexLock lock(&mutex_);
  for (auto& [name, counter] : counters_) {
    counter->Reset();
  }
  for (auto& [name, gauge] : gauges_) {
    gauge->Reset();
  }
  for (auto& [name, histogram] : histograms_) {
    histogram->Reset();
  }
}

void Registry::Restore(const RegistrySnapshot& snapshot) {
  ResetAll();
  for (const CounterSnapshot& c : snapshot.counters) {
    counter(c.name)->Increment(c.value);
  }
  for (const GaugeSnapshot& g : snapshot.gauges) {
    if (g.has_value) {
      gauge(g.name)->Set(g.value);
    } else {
      gauge(g.name)->Reset();
    }
  }
  for (const HistogramSnapshot& h : snapshot.histograms) {
    histogram(h.name, h.upper_bounds)->Restore(h.bucket_counts, h.count, h.sum);
  }
}

Registry& Registry::Default() {
  static Registry* registry = new Registry();
  return *registry;
}

RegistrySnapshot MergeRegistrySnapshots(const std::vector<const RegistrySnapshot*>& parts) {
  RegistrySnapshot merged;
  std::map<std::string, long long> counters;
  std::map<std::string, GaugeSnapshot> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  for (const RegistrySnapshot* part : parts) {
    for (const CounterSnapshot& c : part->counters) {
      counters[c.name] += c.value;
    }
    for (const GaugeSnapshot& g : part->gauges) {
      auto [it, inserted] = gauges.emplace(g.name, g);
      if (!inserted && g.has_value && (!it->second.has_value || g.value > it->second.value)) {
        it->second = g;
      }
    }
    for (const HistogramSnapshot& h : part->histograms) {
      auto [it, inserted] = histograms.emplace(h.name, h);
      if (inserted) {
        continue;
      }
      HistogramSnapshot& acc = it->second;
      PDPA_CHECK(acc.upper_bounds == h.upper_bounds)
          << "histogram " << h.name << " bounds differ across merged snapshots";
      for (std::size_t i = 0; i < h.bucket_counts.size(); ++i) {
        acc.bucket_counts[i] += h.bucket_counts[i];
      }
      acc.count += h.count;
      acc.sum += h.sum;
    }
  }
  for (auto& [name, value] : counters) {
    merged.counters.push_back(CounterSnapshot{name, value});
  }
  for (auto& [name, gauge] : gauges) {
    merged.gauges.push_back(gauge);
  }
  for (auto& [name, histogram] : histograms) {
    merged.histograms.push_back(std::move(histogram));
  }
  return merged;
}

std::string RegistrySnapshot::ToString() const {
  std::string out;
  for (const CounterSnapshot& c : counters) {
    out += StrFormat("%-40s %lld\n", c.name.c_str(), c.value);
  }
  for (const GaugeSnapshot& g : gauges) {
    out += StrFormat("%-40s %g\n", g.name.c_str(), g.value);
  }
  for (const HistogramSnapshot& h : histograms) {
    out += StrFormat("%-40s count=%lld sum=%g\n", h.name.c_str(), h.count, h.sum);
    for (std::size_t i = 0; i < h.upper_bounds.size(); ++i) {
      out += StrFormat("  le %-10g %lld\n", h.upper_bounds[i], h.bucket_counts[i]);
    }
    out += StrFormat("  le +inf     %lld\n", h.bucket_counts.back());
  }
  return out;
}

}  // namespace pdpa
