#include "src/obs/event_log.h"

#include <cctype>
#include <ostream>

#include "src/common/strings.h"

namespace pdpa {

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

void JsonObjectWriter::Key(std::string_view key) {
  if (!first_) {
    body_.push_back(',');
  }
  first_ = false;
  body_ += JsonEscape(key);
  body_.push_back(':');
}

JsonObjectWriter& JsonObjectWriter::Field(std::string_view key, std::string_view value) {
  Key(key);
  body_ += JsonEscape(value);
  return *this;
}

JsonObjectWriter& JsonObjectWriter::Field(std::string_view key, const char* value) {
  return Field(key, std::string_view(value));
}

JsonObjectWriter& JsonObjectWriter::Field(std::string_view key, long long value) {
  Key(key);
  body_ += StrFormat("%lld", value);
  return *this;
}

JsonObjectWriter& JsonObjectWriter::Field(std::string_view key, unsigned long long value) {
  Key(key);
  body_ += StrFormat("%llu", value);
  return *this;
}

JsonObjectWriter& JsonObjectWriter::Field(std::string_view key, int value) {
  return Field(key, static_cast<long long>(value));
}

JsonObjectWriter& JsonObjectWriter::Field(std::string_view key, bool value) {
  Key(key);
  body_ += value ? "true" : "false";
  return *this;
}

JsonObjectWriter& JsonObjectWriter::Field(std::string_view key, double value) {
  Key(key);
  body_ += StrFormat("%.10g", value);
  return *this;
}

std::string JsonObjectWriter::Finish() {
  body_.push_back('}');
  return std::move(body_);
}

namespace {

// Consumes a JSON string literal starting at `pos` (which must point at the
// opening quote); appends the unescaped content to `out`.
bool ParseJsonString(std::string_view line, std::size_t* pos, std::string* out) {
  if (*pos >= line.size() || line[*pos] != '"') {
    return false;
  }
  ++*pos;
  while (*pos < line.size()) {
    const char c = line[*pos];
    if (c == '"') {
      ++*pos;
      return true;
    }
    if (c == '\\') {
      if (*pos + 1 >= line.size()) {
        return false;
      }
      const char escaped = line[*pos + 1];
      switch (escaped) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (*pos + 5 >= line.size()) {
            return false;
          }
          int code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = line[*pos + 2 + i];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= h - '0';
            } else if (h >= 'a' && h <= 'f') {
              code |= h - 'a' + 10;
            } else if (h >= 'A' && h <= 'F') {
              code |= h - 'A' + 10;
            } else {
              return false;
            }
          }
          // The writer only escapes control characters, so a single byte
          // suffices here.
          out->push_back(static_cast<char>(code));
          *pos += 4;
          break;
        }
        default:
          return false;
      }
      *pos += 2;
      continue;
    }
    out->push_back(c);
    ++*pos;
  }
  return false;  // Unterminated string.
}

void SkipSpace(std::string_view line, std::size_t* pos) {
  while (*pos < line.size() && std::isspace(static_cast<unsigned char>(line[*pos])) != 0) {
    ++*pos;
  }
}

}  // namespace

bool ParseFlatJson(std::string_view line, std::map<std::string, std::string>* fields) {
  fields->clear();
  std::size_t pos = 0;
  SkipSpace(line, &pos);
  if (pos >= line.size() || line[pos] != '{') {
    return false;
  }
  ++pos;
  SkipSpace(line, &pos);
  if (pos < line.size() && line[pos] == '}') {
    ++pos;
    SkipSpace(line, &pos);
    return pos == line.size();
  }
  while (true) {
    SkipSpace(line, &pos);
    std::string key;
    if (!ParseJsonString(line, &pos, &key)) {
      return false;
    }
    SkipSpace(line, &pos);
    if (pos >= line.size() || line[pos] != ':') {
      return false;
    }
    ++pos;
    SkipSpace(line, &pos);
    std::string value;
    if (pos < line.size() && line[pos] == '"') {
      if (!ParseJsonString(line, &pos, &value)) {
        return false;
      }
    } else {
      // Bare token: number, true/false/null. Runs to the next ',' or '}'.
      const std::size_t start = pos;
      while (pos < line.size() && line[pos] != ',' && line[pos] != '}') {
        ++pos;
      }
      value = std::string(Trim(line.substr(start, pos - start)));
      if (value.empty()) {
        return false;
      }
    }
    (*fields)[key] = value;
    SkipSpace(line, &pos);
    if (pos >= line.size()) {
      return false;
    }
    if (line[pos] == ',') {
      ++pos;
      continue;
    }
    if (line[pos] == '}') {
      ++pos;
      SkipSpace(line, &pos);
      return pos == line.size();
    }
    return false;
  }
}

void EventLog::Emit(const std::string& json_line) {
  if (out_ == nullptr) {
    return;
  }
  confinement_.AssertConfined("EventLog");
  *out_ << json_line << '\n';
  ++lines_;
}

void EventLog::RunStart(std::string_view policy, std::string_view workload, double load,
                        unsigned long long seed, int cpus) {
  if (out_ == nullptr) {
    return;
  }
  Emit(JsonObjectWriter()
           .Field("type", "run_start")
           .Field("policy", policy)
           .Field("workload", workload)
           .Field("load", load)
           .Field("seed", seed)
           .Field("cpus", cpus)
           .Finish());
}

void EventLog::RunEnd(SimTime t, int jobs, bool completed) {
  if (out_ == nullptr) {
    return;
  }
  Emit(JsonObjectWriter()
           .Field("type", "run_end")
           .Field("t_us", static_cast<long long>(t))
           .Field("jobs", jobs)
           .Field("completed", completed)
           .Finish());
}

void EventLog::JobSubmit(SimTime t, JobId job, std::string_view app_class, int request,
                         bool rigid) {
  if (out_ == nullptr) {
    return;
  }
  Emit(JsonObjectWriter()
           .Field("type", "job_submit")
           .Field("t_us", static_cast<long long>(t))
           .Field("job", job)
           .Field("class", app_class)
           .Field("request", request)
           .Field("rigid", rigid)
           .Finish());
}

void EventLog::JobStart(SimTime t, JobId job, std::string_view app_class, int request, int alloc,
                        int running, int queued) {
  if (out_ == nullptr) {
    return;
  }
  Emit(JsonObjectWriter()
           .Field("type", "job_start")
           .Field("t_us", static_cast<long long>(t))
           .Field("job", job)
           .Field("class", app_class)
           .Field("request", request)
           .Field("alloc", alloc)
           .Field("running", running)
           .Field("queued", queued)
           .Finish());
}

void EventLog::JobFinish(SimTime t, JobId job, SimTime submit, SimTime start) {
  if (out_ == nullptr) {
    return;
  }
  Emit(JsonObjectWriter()
           .Field("type", "job_finish")
           .Field("t_us", static_cast<long long>(t))
           .Field("job", job)
           .Field("submit_us", static_cast<long long>(submit))
           .Field("start_us", static_cast<long long>(start))
           .Finish());
}

void EventLog::AdmitHold(SimTime t, int running, int queued, int free_cpus) {
  if (out_ == nullptr) {
    return;
  }
  Emit(JsonObjectWriter()
           .Field("type", "admit_hold")
           .Field("t_us", static_cast<long long>(t))
           .Field("running", running)
           .Field("queued", queued)
           .Field("free_cpus", free_cpus)
           .Finish());
}

void EventLog::PerfSample(SimTime t, JobId job, int procs, double speedup, double efficiency) {
  if (out_ == nullptr) {
    return;
  }
  Emit(JsonObjectWriter()
           .Field("type", "perf_sample")
           .Field("t_us", static_cast<long long>(t))
           .Field("job", job)
           .Field("procs", procs)
           .Field("speedup", speedup)
           .Field("eff", efficiency)
           .Finish());
}

void EventLog::PdpaTransition(SimTime t, JobId job, const char* from, const char* to,
                              int from_alloc, int to_alloc, double speedup, double efficiency,
                              double target_eff, const char* trigger) {
  if (out_ == nullptr) {
    return;
  }
  Emit(JsonObjectWriter()
           .Field("type", "pdpa_transition")
           .Field("t_us", static_cast<long long>(t))
           .Field("job", job)
           .Field("from", from)
           .Field("to", to)
           .Field("from_alloc", from_alloc)
           .Field("to_alloc", to_alloc)
           .Field("speedup", speedup)
           .Field("eff", efficiency)
           .Field("target", target_eff)
           .Field("trigger", trigger)
           .Finish());
}

void EventLog::AllocDecision(SimTime t, const char* trigger, const std::string& plan) {
  if (out_ == nullptr) {
    return;
  }
  Emit(JsonObjectWriter()
           .Field("type", "alloc_decision")
           .Field("t_us", static_cast<long long>(t))
           .Field("trigger", trigger)
           .Field("plan", plan)
           .Finish());
}

void EventLog::CpuHandoffs(SimTime t, int moved, int migrations) {
  if (out_ == nullptr) {
    return;
  }
  Emit(JsonObjectWriter()
           .Field("type", "cpu_handoffs")
           .Field("t_us", static_cast<long long>(t))
           .Field("moved", moved)
           .Field("migrations", migrations)
           .Finish());
}

}  // namespace pdpa
