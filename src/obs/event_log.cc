#include "src/obs/event_log.h"

#include <cctype>
#include <ostream>

#include "src/common/fmt.h"
#include "src/common/strings.h"

namespace pdpa {

void JsonEscapeTo(std::string* out, std::string_view text) {
  out->push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char kHex[] = "0123456789abcdef";
          out->append("\\u00");
          out->push_back(kHex[(c >> 4) & 0xf]);
          out->push_back(kHex[c & 0xf]);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  JsonEscapeTo(&out, text);
  return out;
}

InternedString StringInterner::Intern(std::string_view raw) {
  auto it = table_.find(raw);
  if (it == table_.end()) {
    it = table_.emplace(std::string(raw), JsonEscape(raw)).first;
  }
  return InternedString{it->first, it->second};
}

void JsonObjectWriter::Key(std::string_view key) {
  if (!first_) {
    out_->push_back(',');
  }
  first_ = false;
  JsonEscapeTo(out_, key);
  out_->push_back(':');
}

JsonObjectWriter& JsonObjectWriter::Field(std::string_view key, std::string_view value) {
  Key(key);
  JsonEscapeTo(out_, value);
  return *this;
}

JsonObjectWriter& JsonObjectWriter::Field(std::string_view key, const char* value) {
  return Field(key, std::string_view(value));
}

JsonObjectWriter& JsonObjectWriter::Field(std::string_view key, InternedString value) {
  Key(key);
  out_->append(value.escaped);
  return *this;
}

JsonObjectWriter& JsonObjectWriter::Field(std::string_view key, long long value) {
  Key(key);
  AppendInt(out_, value);
  return *this;
}

JsonObjectWriter& JsonObjectWriter::Field(std::string_view key, unsigned long long value) {
  Key(key);
  AppendUint(out_, value);
  return *this;
}

JsonObjectWriter& JsonObjectWriter::Field(std::string_view key, int value) {
  return Field(key, static_cast<long long>(value));
}

JsonObjectWriter& JsonObjectWriter::Field(std::string_view key, bool value) {
  Key(key);
  out_->append(value ? "true" : "false");
  return *this;
}

JsonObjectWriter& JsonObjectWriter::Field(std::string_view key, double value) {
  Key(key);
  AppendGeneral(out_, value, 10);
  return *this;
}

namespace internal {

void LegacyJsonObjectWriter::Key(std::string_view key) {
  if (!first_) {
    body_.push_back(',');
  }
  first_ = false;
  body_ += JsonEscape(key);
  body_.push_back(':');
}

LegacyJsonObjectWriter& LegacyJsonObjectWriter::Field(std::string_view key,
                                                      std::string_view value) {
  Key(key);
  body_ += JsonEscape(value);
  return *this;
}

LegacyJsonObjectWriter& LegacyJsonObjectWriter::Field(std::string_view key, const char* value) {
  return Field(key, std::string_view(value));
}

LegacyJsonObjectWriter& LegacyJsonObjectWriter::Field(std::string_view key, long long value) {
  Key(key);
  body_ += StrFormat("%lld", value);
  return *this;
}

LegacyJsonObjectWriter& LegacyJsonObjectWriter::Field(std::string_view key,
                                                      unsigned long long value) {
  Key(key);
  body_ += StrFormat("%llu", value);
  return *this;
}

LegacyJsonObjectWriter& LegacyJsonObjectWriter::Field(std::string_view key, int value) {
  return Field(key, static_cast<long long>(value));
}

LegacyJsonObjectWriter& LegacyJsonObjectWriter::Field(std::string_view key, bool value) {
  Key(key);
  body_ += value ? "true" : "false";
  return *this;
}

LegacyJsonObjectWriter& LegacyJsonObjectWriter::Field(std::string_view key, double value) {
  Key(key);
  body_ += StrFormat("%.10g", value);
  return *this;
}

std::string LegacyJsonObjectWriter::Finish() {
  body_.push_back('}');
  return std::move(body_);
}

}  // namespace internal

namespace {

// Consumes a JSON string literal starting at `pos` (which must point at the
// opening quote); appends the unescaped content to `out`.
bool ParseJsonString(std::string_view line, std::size_t* pos, std::string* out) {
  if (*pos >= line.size() || line[*pos] != '"') {
    return false;
  }
  ++*pos;
  while (*pos < line.size()) {
    const char c = line[*pos];
    if (c == '"') {
      ++*pos;
      return true;
    }
    if (c == '\\') {
      if (*pos + 1 >= line.size()) {
        return false;
      }
      const char escaped = line[*pos + 1];
      switch (escaped) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (*pos + 5 >= line.size()) {
            return false;
          }
          int code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = line[*pos + 2 + i];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= h - '0';
            } else if (h >= 'a' && h <= 'f') {
              code |= h - 'a' + 10;
            } else if (h >= 'A' && h <= 'F') {
              code |= h - 'A' + 10;
            } else {
              return false;
            }
          }
          // The writer only escapes control characters, so a single byte
          // suffices here.
          out->push_back(static_cast<char>(code));
          *pos += 4;
          break;
        }
        default:
          return false;
      }
      *pos += 2;
      continue;
    }
    out->push_back(c);
    ++*pos;
  }
  return false;  // Unterminated string.
}

void SkipSpace(std::string_view line, std::size_t* pos) {
  while (*pos < line.size() && std::isspace(static_cast<unsigned char>(line[*pos])) != 0) {
    ++*pos;
  }
}

}  // namespace

bool ParseFlatJson(std::string_view line, std::map<std::string, std::string>* fields) {
  fields->clear();
  std::size_t pos = 0;
  SkipSpace(line, &pos);
  if (pos >= line.size() || line[pos] != '{') {
    return false;
  }
  ++pos;
  SkipSpace(line, &pos);
  if (pos < line.size() && line[pos] == '}') {
    ++pos;
    SkipSpace(line, &pos);
    return pos == line.size();
  }
  while (true) {
    SkipSpace(line, &pos);
    std::string key;
    if (!ParseJsonString(line, &pos, &key)) {
      return false;
    }
    SkipSpace(line, &pos);
    if (pos >= line.size() || line[pos] != ':') {
      return false;
    }
    ++pos;
    SkipSpace(line, &pos);
    std::string value;
    if (pos < line.size() && line[pos] == '"') {
      if (!ParseJsonString(line, &pos, &value)) {
        return false;
      }
    } else {
      // Bare token: number, true/false/null. Runs to the next ',' or '}'.
      const std::size_t start = pos;
      while (pos < line.size() && line[pos] != ',' && line[pos] != '}') {
        ++pos;
      }
      value = std::string(Trim(line.substr(start, pos - start)));
      if (value.empty()) {
        return false;
      }
    }
    (*fields)[key] = value;
    SkipSpace(line, &pos);
    if (pos >= line.size()) {
      return false;
    }
    if (line[pos] == ',') {
      ++pos;
      continue;
    }
    if (line[pos] == '}') {
      ++pos;
      SkipSpace(line, &pos);
      return pos == line.size();
    }
    return false;
  }
}

namespace {

// Extracts the integer after `"t_us":` from one JSONL record without a full
// parse; records with no timestamp (run_start) merge as t=0 so they lead
// their stream.
long long RecordTimeUs(std::string_view line) {
  static constexpr std::string_view kKey = "\"t_us\":";
  const std::size_t at = line.find(kKey);
  if (at == std::string_view::npos) {
    return 0;
  }
  long long t = 0;
  for (std::size_t pos = at + kKey.size(); pos < line.size(); ++pos) {
    const char c = line[pos];
    if (c < '0' || c > '9') {
      break;
    }
    t = t * 10 + (c - '0');
  }
  return t;
}

}  // namespace

std::string MergeEventStreams(const std::vector<std::string>& streams) {
  struct Cursor {
    std::string_view rest;     // unconsumed tail of the stream
    std::string_view line;     // current record, without the trailing '\n'
    long long t_us = 0;
    bool done = true;

    void Advance() {
      if (rest.empty()) {
        done = true;
        return;
      }
      std::size_t eol = rest.find('\n');
      if (eol == std::string_view::npos) {
        eol = rest.size();
        line = rest;
        rest = {};
      } else {
        line = rest.substr(0, eol);
        rest = rest.substr(eol + 1);
      }
      t_us = RecordTimeUs(line);
      done = false;
    }
  };

  std::vector<Cursor> cursors(streams.size());
  std::size_t total = 0;
  for (std::size_t i = 0; i < streams.size(); ++i) {
    cursors[i].rest = streams[i];
    cursors[i].Advance();
    total += streams[i].size();
  }
  std::string merged;
  merged.reserve(total);
  // K is tiny (controller + nodes of one cluster cell being captured), so a
  // linear scan per record beats heap bookkeeping and keeps the tie-break —
  // lowest stream index first — explicit.
  while (true) {
    std::size_t best = streams.size();
    for (std::size_t i = 0; i < cursors.size(); ++i) {
      if (!cursors[i].done && (best == streams.size() || cursors[i].t_us < cursors[best].t_us)) {
        best = i;
      }
    }
    if (best == streams.size()) {
      return merged;
    }
    merged.append(cursors[best].line);
    merged.push_back('\n');
    cursors[best].Advance();
  }
}

EventLog::EventLog(std::ostream* out) : out_(out), writer_(out) {
  if (out_ == nullptr) {
    return;  // Disabled log: no buffers, no interning, every emitter no-ops.
  }
  scratch_.reserve(256);
  InternTypes();
}

void EventLog::Reset(std::ostream* out) {
  Flush();
  out_ = out;
  writer_.Reset(out);
  lines_ = 0;
  if (out_ != nullptr) {
    if (scratch_.capacity() < 256) {
      scratch_.reserve(256);
    }
    // Idempotent: a log constructed (or previously reset) with a live sink
    // already interned the vocabulary, and Intern dedups by content.
    InternTypes();
  }
}

void EventLog::InternTypes() {
  type_run_start_ = interner_.Intern("run_start");
  type_run_end_ = interner_.Intern("run_end");
  type_job_submit_ = interner_.Intern("job_submit");
  type_job_start_ = interner_.Intern("job_start");
  type_job_finish_ = interner_.Intern("job_finish");
  type_admit_hold_ = interner_.Intern("admit_hold");
  type_perf_sample_ = interner_.Intern("perf_sample");
  type_pdpa_transition_ = interner_.Intern("pdpa_transition");
  type_alloc_decision_ = interner_.Intern("alloc_decision");
  type_cpu_handoffs_ = interner_.Intern("cpu_handoffs");
}

void EventLog::Emit(const std::string& json_line) {
  if (out_ == nullptr) {
    return;
  }
  confinement_.AssertConfined("EventLog");
  if (legacy_for_test_) {
    *out_ << json_line << '\n';
  } else {
    writer_.Append(json_line);
    writer_.Append('\n');
  }
  ++lines_;
}

void EventLog::RunStart(std::string_view policy, std::string_view workload, double load,
                        unsigned long long seed, int cpus) {
  const InternedString policy_name = out_ != nullptr ? interner_.Intern(policy) : InternedString{};
  const InternedString workload_name =
      out_ != nullptr ? interner_.Intern(workload) : InternedString{};
  EmitRecord([&](auto& writer) {
    writer.Field("type", type_run_start_)
        .Field("policy", policy_name)
        .Field("workload", workload_name)
        .Field("load", load)
        .Field("seed", seed)
        .Field("cpus", cpus);
  });
}

void EventLog::RunEnd(SimTime t, int jobs, bool completed) {
  EmitRecord([&](auto& writer) {
    writer.Field("type", type_run_end_)
        .Field("t_us", static_cast<long long>(t))
        .Field("jobs", jobs)
        .Field("completed", completed);
  });
}

void EventLog::JobSubmit(SimTime t, JobId job, std::string_view app_class, int request,
                         bool rigid) {
  const InternedString class_name =
      out_ != nullptr ? interner_.Intern(app_class) : InternedString{};
  EmitRecord([&](auto& writer) {
    writer.Field("type", type_job_submit_)
        .Field("t_us", static_cast<long long>(t))
        .Field("job", job)
        .Field("class", class_name)
        .Field("request", request)
        .Field("rigid", rigid);
  });
}

void EventLog::JobStart(SimTime t, JobId job, std::string_view app_class, int request, int alloc,
                        int running, int queued) {
  const InternedString class_name =
      out_ != nullptr ? interner_.Intern(app_class) : InternedString{};
  EmitRecord([&](auto& writer) {
    writer.Field("type", type_job_start_)
        .Field("t_us", static_cast<long long>(t))
        .Field("job", job)
        .Field("class", class_name)
        .Field("request", request)
        .Field("alloc", alloc)
        .Field("running", running)
        .Field("queued", queued);
  });
}

void EventLog::JobFinish(SimTime t, JobId job, SimTime submit, SimTime start) {
  EmitRecord([&](auto& writer) {
    writer.Field("type", type_job_finish_)
        .Field("t_us", static_cast<long long>(t))
        .Field("job", job)
        .Field("submit_us", static_cast<long long>(submit))
        .Field("start_us", static_cast<long long>(start));
  });
}

void EventLog::AdmitHold(SimTime t, int running, int queued, int free_cpus) {
  EmitRecord([&](auto& writer) {
    writer.Field("type", type_admit_hold_)
        .Field("t_us", static_cast<long long>(t))
        .Field("running", running)
        .Field("queued", queued)
        .Field("free_cpus", free_cpus);
  });
}

void EventLog::PerfSample(SimTime t, JobId job, int procs, double speedup, double efficiency) {
  EmitRecord([&](auto& writer) {
    writer.Field("type", type_perf_sample_)
        .Field("t_us", static_cast<long long>(t))
        .Field("job", job)
        .Field("procs", procs)
        .Field("speedup", speedup)
        .Field("eff", efficiency);
  });
}

void EventLog::PdpaTransition(SimTime t, JobId job, const char* from, const char* to,
                              int from_alloc, int to_alloc, double speedup, double efficiency,
                              double target_eff, const char* trigger) {
  const InternedString from_name = out_ != nullptr ? interner_.Intern(from) : InternedString{};
  const InternedString to_name = out_ != nullptr ? interner_.Intern(to) : InternedString{};
  const InternedString trigger_name =
      out_ != nullptr ? interner_.Intern(trigger) : InternedString{};
  EmitRecord([&](auto& writer) {
    writer.Field("type", type_pdpa_transition_)
        .Field("t_us", static_cast<long long>(t))
        .Field("job", job)
        .Field("from", from_name)
        .Field("to", to_name)
        .Field("from_alloc", from_alloc)
        .Field("to_alloc", to_alloc)
        .Field("speedup", speedup)
        .Field("eff", efficiency)
        .Field("target", target_eff)
        .Field("trigger", trigger_name);
  });
}

void EventLog::AllocDecision(SimTime t, const char* trigger, const std::string& plan) {
  const InternedString trigger_name =
      out_ != nullptr ? interner_.Intern(trigger) : InternedString{};
  EmitRecord([&](auto& writer) {
    writer.Field("type", type_alloc_decision_)
        .Field("t_us", static_cast<long long>(t))
        .Field("trigger", trigger_name)
        .Field("plan", plan);
  });
}

void EventLog::CpuHandoffs(SimTime t, int moved, int migrations) {
  EmitRecord([&](auto& writer) {
    writer.Field("type", type_cpu_handoffs_)
        .Field("t_us", static_cast<long long>(t))
        .Field("moved", moved)
        .Field("migrations", migrations);
  });
}

}  // namespace pdpa
