// Observability registry: named monotonic counters, gauges and fixed-bucket
// histograms.
//
// One simulation is single-threaded by design, so instruments are plain
// (non-atomic) slots: a hot-path increment is one load/add/store. Call sites
// resolve the named instrument once (the registry hands out stable pointers)
// and then only touch the slot. Snapshot() and ResetAll() give tests and the
// --counters CLI flag a deterministic, name-sorted view of everything the
// stack recorded.
//
// Registries are per-run: ExperimentConfig carries a Registry* and every
// layer of the stack (sim, RM, QS, policies, SelfAnalyzer) resolves its
// instruments from it at construction, so the sweep engine can run N
// simulations concurrently with fully isolated counters. Registration and
// Snapshot are mutex-guarded (cheap, off the hot path); instrument *values*
// are unsynchronized and must only be touched by the run that owns the
// registry. Registry::Default() remains as the fallback for standalone
// components (unit tests, ad-hoc benches) that never get a per-run registry.
//
// Naming convention: lowercase dotted paths grouped by layer, e.g.
// "rm.reallocations", "pdpa.transitions.to_stable", "analyzer.reports".
#ifndef SRC_OBS_COUNTERS_H_
#define SRC_OBS_COUNTERS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"

namespace pdpa {

// Monotonically increasing count (events, decisions, errors).
class Counter {
 public:
  void Increment(long long delta = 1) { value_ += delta; }
  long long value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  long long value_ = 0;
};

// Last-write-wins instantaneous value (free CPUs, queue depth).
class Gauge {
 public:
  void Set(double value) {
    value_ = value;
    has_value_ = true;
  }
  double value() const { return value_; }
  bool has_value() const { return has_value_; }
  void Reset() {
    value_ = 0.0;
    has_value_ = false;
  }

 private:
  double value_ = 0.0;
  bool has_value_ = false;
};

// Fixed-bucket histogram. A sample lands in the first bucket whose upper
// bound is >= the sample ("le" semantics); samples above every bound land in
// the implicit overflow bucket. Bounds are fixed at registration so the
// hot path is a linear scan over a handful of doubles.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double sample);

  const std::vector<double>& upper_bounds() const { return upper_bounds_; }
  // One count per bound plus the trailing overflow bucket.
  const std::vector<long long>& bucket_counts() const { return counts_; }
  long long count() const { return count_; }
  double sum() const { return sum_; }
  void Reset();

  // Overwrites the histogram's state from a snapshot (shared-prefix fork
  // restore). `bucket_counts` must match the registered bucket count.
  void Restore(const std::vector<long long>& bucket_counts, long long count, double sum);

 private:
  std::vector<double> upper_bounds_;
  std::vector<long long> counts_;
  long long count_ = 0;
  double sum_ = 0.0;
};

struct CounterSnapshot {
  std::string name;
  long long value = 0;
};

struct GaugeSnapshot {
  std::string name;
  double value = 0.0;
  // Whether the gauge had ever been Set(). Restore() needs this to tell an
  // untouched gauge apart from one explicitly set to 0.
  bool has_value = false;
};

struct HistogramSnapshot {
  std::string name;
  std::vector<double> upper_bounds;
  std::vector<long long> bucket_counts;
  long long count = 0;
  double sum = 0.0;
};

// A point-in-time copy of every registered instrument, name-sorted.
struct RegistrySnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  // Human-readable multi-line dump (the --counters output).
  std::string ToString() const;
};

// Deterministic union of per-node snapshots into one cluster-wide view:
// counters sum by name; histograms with identical bounds merge bucket-wise
// (mismatched bounds are a caller bug and abort); gauges keep the maximum
// set value per name — commutative, so the result is independent of input
// order. Inputs must each be name-sorted (as Registry::Snapshot produces).
RegistrySnapshot MergeRegistrySnapshots(const std::vector<const RegistrySnapshot*>& parts);

// Owns the instruments. Registration is idempotent: asking for an existing
// name returns the same pointer, so independent modules can share an
// instrument by name. Pointers stay valid for the registry's lifetime.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter* counter(const std::string& name) PDPA_EXCLUDES(mutex_);
  Gauge* gauge(const std::string& name) PDPA_EXCLUDES(mutex_);
  // `upper_bounds` must be non-empty and strictly increasing; ignored (the
  // original bounds win) when `name` already exists.
  Histogram* histogram(const std::string& name, std::vector<double> upper_bounds)
      PDPA_EXCLUDES(mutex_);

  RegistrySnapshot Snapshot() const PDPA_EXCLUDES(mutex_);

  // Zeroes every instrument's value; registrations (and pointers) survive.
  void ResetAll() PDPA_EXCLUDES(mutex_);

  // Overwrites instruments named in `snapshot` with the snapshotted values,
  // registering any that do not exist yet (shared-prefix fork restore: a
  // forked run adopts the prefix run's instrument state so its final counter
  // dump matches a cold run byte for byte). Instruments registered here but
  // absent from the snapshot are reset to zero.
  void Restore(const RegistrySnapshot& snapshot) PDPA_EXCLUDES(mutex_);

  // Process-wide fallback registry for components constructed without a
  // per-run one. Concurrent runs must each use their own Registry instead.
  static Registry& Default();

 private:
  // Compile-time lock-discipline probe (tests/tsa_probe); never defined in
  // production code.
  friend struct RegistryTsaProbe;

  // Guards the name->instrument maps (registration, snapshot, reset), not
  // the instrument values themselves: callers that cache instrument
  // pointers mutate them lock-free, which is safe because one run's
  // instruments are only touched by the thread driving that run. Highest
  // rank in the hierarchy (DESIGN.md §8): registration happens under sweep
  // and fork locks, and never calls back out.
  mutable Mutex mutex_{PDPA_LOCK_RANK(40)};
  std::map<std::string, std::unique_ptr<Counter>> counters_ PDPA_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ PDPA_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_ PDPA_GUARDED_BY(mutex_);
};

}  // namespace pdpa

#endif  // SRC_OBS_COUNTERS_H_
