#include "src/obs/slowdown.h"

#include <cmath>

namespace pdpa {

namespace {

// 2^(j/8) for j = 0..8, to full double precision. Hard-coded so bucketing
// never calls libm pow/log (whose last-bit rounding varies across libms);
// frexp + these comparisons give bit-identical bucket indices everywhere.
constexpr double kOctaveBounds[9] = {
    1.0,
    1.0905077326652577,  // 2^(1/8)
    1.189207115002721,   // 2^(2/8)
    1.2968395546510096,  // 2^(3/8)
    1.4142135623730951,  // 2^(4/8)
    1.5422108254079407,  // 2^(5/8)
    1.681792830507429,   // 2^(6/8)
    1.8340080864093424,  // 2^(7/8)
    2.0,
};

}  // namespace

void LogHistogram::Observe(double value) {
  ++total_;
  if (!(value > 0.0)) {  // zero, negative or NaN: underflow by convention
    ++counts_[0];
    return;
  }
  int exp = 0;
  const double mantissa = std::frexp(value, &exp);  // mantissa in [0.5, 1)
  if (exp < kMinExp) {
    ++counts_[0];
    return;
  }
  if (exp > kMaxExp || std::isinf(value)) {
    ++counts_[kNumBuckets - 1];
    return;
  }
  int sub = kSubBuckets - 1;
  for (int j = 0; j < kSubBuckets - 1; ++j) {
    if (mantissa < 0.5 * kOctaveBounds[j + 1]) {
      sub = j;
      break;
    }
  }
  ++counts_[(exp - kMinExp) * kSubBuckets + sub + 1];
}

void LogHistogram::Merge(const LogHistogram& other) {
  for (int i = 0; i < kNumBuckets; ++i) {
    counts_[static_cast<std::size_t>(i)] += other.counts_[static_cast<std::size_t>(i)];
  }
  total_ += other.total_;
}

double LogHistogram::BucketUpperBound(int index) {
  if (index <= 0) {
    return std::ldexp(1.0, kMinExp - 1);  // underflow edge: 2^-4
  }
  if (index >= kNumBuckets - 1) {
    return std::ldexp(1.0, kMaxExp);  // overflow saturates at 2^20
  }
  const int rel = index - 1;
  const int exp = kMinExp + rel / kSubBuckets;
  const int sub = rel % kSubBuckets;
  // Bucket (exp, sub) covers [2^(exp-1) * 2^(sub/8), 2^(exp-1) * 2^((sub+1)/8)).
  return std::ldexp(kOctaveBounds[sub + 1], exp - 1);
}

double LogHistogram::Percentile(double p) const {
  if (total_ == 0) {
    return 0.0;
  }
  long long rank = static_cast<long long>(std::ceil(p / 100.0 * static_cast<double>(total_)));
  if (rank < 1) {
    rank = 1;
  }
  if (rank > total_) {
    rank = total_;
  }
  long long seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += counts_[static_cast<std::size_t>(i)];
    if (seen >= rank) {
      return BucketUpperBound(i);
    }
  }
  return BucketUpperBound(kNumBuckets - 1);
}

}  // namespace pdpa
