#include "src/obs/prof.h"

// The single sanctioned host-clock translation unit in src/ — the pdpa_lint
// wall-clock rule allows steady_clock here and nowhere else, which is what
// keeps the rule meaningful with a profiler in the tree. Do not read the
// clock anywhere else in src/; call prof::NowNanos().
#include <chrono>

#include <string_view>

#include "src/common/fmt.h"
#include "src/obs/event_log.h"

namespace pdpa {

namespace prof {

long long NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace prof

const char* SpanName(SpanId id) {
  switch (id) {
    case SpanId::kSimEventPush:
      return "sim.event_push";
    case SpanId::kSimEventPop:
      return "sim.event_pop";
    case SpanId::kRmTick:
      return "rm.tick";
    case SpanId::kRmQuantum:
      return "rm.quantum";
    case SpanId::kPolicyDecide:
      return "policy.decide";
    case SpanId::kObsSerialize:
      return "obs.serialize";
    case SpanId::kObsFlush:
      return "obs.flush";
    case SpanId::kSweepCell:
      return "sweep.cell";
    case SpanId::kClusterBarrierWait:
      return "cluster.barrier_wait";
    case SpanId::kClusterDrain:
      return "cluster.drain";
    case SpanId::kClusterPlace:
      return "cluster.place";
    case SpanId::kCount:
      break;
  }
  return "?";
}

void Profiler::Merge(const Profiler& other) {
  for (int i = 0; i < kNumSpanIds; ++i) {
    const std::size_t idx = static_cast<std::size_t>(i);
    stats_[idx].hits += other.stats_[idx].hits;
    stats_[idx].total_ns += other.stats_[idx].total_ns;
    stats_[idx].self_ns += other.stats_[idx].self_ns;
  }
}

long long Profiler::TotalHits() const {
  long long hits = 0;
  for (const SpanStats& stats : stats_) {
    hits += stats.hits;
  }
  return hits;
}

namespace {

// The per-thread span stack. Fixed depth: the deepest static nesting today
// is event_pop -> rm.tick -> policy.decide -> obs.serialize (4); 32 leaves
// generous headroom for future instrumentation without heap involvement.
// Scopes opened beyond the limit are counted but not timed, so hit counts
// stay exact even if the stack ever saturates.
constexpr int kMaxDepth = 32;

struct Frame {
  SpanId id = SpanId::kCount;
  long long start_ns = 0;
  // Host time spent in directly nested scopes, accumulated as they close;
  // subtracting it from the elapsed time yields this frame's self time.
  long long child_ns = 0;
};

thread_local Frame t_stack[kMaxDepth];
thread_local int t_depth = 0;

}  // namespace

ProfScope::ProfScope(Profiler* profiler, SpanId id) : profiler_(profiler) {
  if (profiler_ == nullptr) {
    return;
  }
  if (t_depth >= kMaxDepth) {
    profiler_->stats(id).hits += 1;
    profiler_ = nullptr;  // Count the hit, skip the timing.
    return;
  }
  Frame& frame = t_stack[t_depth++];
  frame.id = id;
  frame.start_ns = prof::NowNanos();
  frame.child_ns = 0;
}

ProfScope::~ProfScope() {
  if (profiler_ == nullptr) {
    return;
  }
  const Frame& frame = t_stack[--t_depth];
  const long long elapsed = prof::NowNanos() - frame.start_ns;
  SpanStats& stats = profiler_->stats(frame.id);
  stats.hits += 1;
  stats.total_ns += elapsed;
  stats.self_ns += elapsed - frame.child_ns;
  if (t_depth > 0) {
    t_stack[t_depth - 1].child_ns += elapsed;
  }
}

namespace {

// Right-aligns the bytes appended by `append` to at least `width` columns.
template <typename Fn>
void AppendRightAligned(std::string* out, std::size_t width, Fn&& append) {
  const std::size_t start = out->size();
  append(out);
  const std::size_t len = out->size() - start;
  if (len < width) {
    out->insert(start, width - len, ' ');
  }
}

}  // namespace

void AppendProfTable(const Profiler& profiler, std::string* out) {
  out->append("span                  hits    total_ms     self_ms    ns/hit\n");
  for (int i = 0; i < kNumSpanIds; ++i) {
    const SpanId id = static_cast<SpanId>(i);
    const SpanStats& stats = profiler.stats(id);
    if (stats.hits == 0) {
      continue;
    }
    const std::string_view name = SpanName(id);
    out->append(name);
    for (std::size_t pad = name.size(); pad < 16; ++pad) {
      out->push_back(' ');
    }
    AppendRightAligned(out, 10, [&](std::string* o) { AppendInt(o, stats.hits); });
    AppendRightAligned(out, 12, [&](std::string* o) {
      AppendFixed(o, static_cast<double>(stats.total_ns) / 1e6, 3);
    });
    AppendRightAligned(out, 12, [&](std::string* o) {
      AppendFixed(o, static_cast<double>(stats.self_ns) / 1e6, 3);
    });
    AppendRightAligned(out, 10, [&](std::string* o) { AppendInt(o, stats.total_ns / stats.hits); });
    out->push_back('\n');
  }
}

void AppendProfJsonl(const Profiler& profiler, const char* tool, std::string* out) {
  int spans = 0;
  for (int i = 0; i < kNumSpanIds; ++i) {
    spans += profiler.stats(static_cast<SpanId>(i)).hits > 0 ? 1 : 0;
  }
  {
    JsonObjectWriter writer(out);
    writer.Field("type", "prof_meta").Field("tool", tool).Field("spans", spans);
    writer.Finish();
    out->push_back('\n');
  }
  for (int i = 0; i < kNumSpanIds; ++i) {
    const SpanId id = static_cast<SpanId>(i);
    const SpanStats& stats = profiler.stats(id);
    if (stats.hits == 0) {
      continue;
    }
    JsonObjectWriter writer(out);
    writer.Field("type", "prof_span")
        .Field("span", SpanName(id))
        .Field("hits", stats.hits)
        .Field("total_ns", stats.total_ns)
        .Field("self_ns", stats.self_ns);
    writer.Finish();
    out->push_back('\n');
  }
}

}  // namespace pdpa
