#include "src/obs/trace_export.h"

#include <map>
#include <ostream>

#include "src/common/fmt.h"
#include "src/common/strings.h"
#include "src/obs/event_log.h"

namespace pdpa {

TraceEventWriter::TraceEventWriter(std::ostream* out) : writer_(out) {
  scratch_.reserve(256);
  writer_.Append("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
}

void TraceEventWriter::BeginRecord(const char* ph) {
  scratch_.clear();
  scratch_.append(events_ == 0 ? "\n" : ",\n");
  scratch_.append("{\"ph\":\"");
  scratch_.append(ph);
  scratch_.push_back('"');
}

void TraceEventWriter::EndRecord() {
  scratch_.push_back('}');
  writer_.Append(scratch_);
  ++events_;
}

namespace {

void AppendNumField(std::string* out, const char* key, long long value) {
  out->append(",\"");
  out->append(key);
  out->append("\":");
  AppendInt(out, value);
}

void AppendStrField(std::string* out, const char* key, std::string_view value) {
  out->append(",\"");
  out->append(key);
  out->append("\":");
  JsonEscapeTo(out, value);
}

}  // namespace

void TraceEventWriter::ProcessName(long long pid, std::string_view name) {
  BeginRecord("M");
  AppendNumField(&scratch_, "pid", pid);
  AppendStrField(&scratch_, "name", "process_name");
  scratch_.append(",\"args\":{\"name\":");
  JsonEscapeTo(&scratch_, name);
  scratch_.push_back('}');
  EndRecord();
}

void TraceEventWriter::ThreadName(long long pid, long long tid, std::string_view name) {
  BeginRecord("M");
  AppendNumField(&scratch_, "pid", pid);
  AppendNumField(&scratch_, "tid", tid);
  AppendStrField(&scratch_, "name", "thread_name");
  scratch_.append(",\"args\":{\"name\":");
  JsonEscapeTo(&scratch_, name);
  scratch_.push_back('}');
  EndRecord();
}

void TraceEventWriter::AsyncBegin(long long pid, std::string_view cat, long long id,
                                  std::string_view name, long long ts_us) {
  BeginRecord("b");
  AppendNumField(&scratch_, "pid", pid);
  AppendNumField(&scratch_, "tid", 0);
  AppendStrField(&scratch_, "cat", cat);
  AppendNumField(&scratch_, "id", id);
  AppendStrField(&scratch_, "name", name);
  AppendNumField(&scratch_, "ts", ts_us);
  EndRecord();
}

void TraceEventWriter::AsyncInstant(long long pid, std::string_view cat, long long id,
                                    std::string_view name, long long ts_us) {
  BeginRecord("n");
  AppendNumField(&scratch_, "pid", pid);
  AppendNumField(&scratch_, "tid", 0);
  AppendStrField(&scratch_, "cat", cat);
  AppendNumField(&scratch_, "id", id);
  AppendStrField(&scratch_, "name", name);
  AppendNumField(&scratch_, "ts", ts_us);
  EndRecord();
}

void TraceEventWriter::AsyncEnd(long long pid, std::string_view cat, long long id,
                                long long ts_us) {
  BeginRecord("e");
  AppendNumField(&scratch_, "pid", pid);
  AppendNumField(&scratch_, "tid", 0);
  AppendStrField(&scratch_, "cat", cat);
  AppendNumField(&scratch_, "id", id);
  AppendNumField(&scratch_, "ts", ts_us);
  EndRecord();
}

void TraceEventWriter::Counter(long long pid, std::string_view name, long long ts_us,
                               const std::vector<std::pair<std::string, long long>>& series) {
  BeginRecord("C");
  AppendNumField(&scratch_, "pid", pid);
  AppendStrField(&scratch_, "name", name);
  AppendNumField(&scratch_, "ts", ts_us);
  scratch_.append(",\"args\":{");
  bool first = true;
  for (const auto& [key, value] : series) {
    if (!first) {
      scratch_.push_back(',');
    }
    first = false;
    JsonEscapeTo(&scratch_, key);
    scratch_.push_back(':');
    AppendInt(&scratch_, value);
  }
  scratch_.push_back('}');
  EndRecord();
}

void TraceEventWriter::Complete(long long pid, long long tid, std::string_view name,
                                long long ts_us, long long dur_us) {
  BeginRecord("X");
  AppendNumField(&scratch_, "pid", pid);
  AppendNumField(&scratch_, "tid", tid);
  AppendStrField(&scratch_, "name", name);
  AppendNumField(&scratch_, "ts", ts_us);
  AppendNumField(&scratch_, "dur", dur_us);
  EndRecord();
}

void TraceEventWriter::Instant(long long pid, std::string_view name, long long ts_us) {
  BeginRecord("i");
  AppendNumField(&scratch_, "pid", pid);
  AppendNumField(&scratch_, "tid", 0);
  AppendStrField(&scratch_, "name", name);
  AppendNumField(&scratch_, "ts", ts_us);
  AppendStrField(&scratch_, "s", "t");
  EndRecord();
}

void TraceEventWriter::Finish() {
  if (finished_) {
    return;
  }
  finished_ = true;
  writer_.Append("\n]}\n");
  writer_.Flush();
}

namespace {

using Fields = std::map<std::string, std::string>;

std::string Get(const Fields& fields, const char* key) {
  const auto it = fields.find(key);
  return it == fields.end() ? std::string() : it->second;
}

long long GetInt(const Fields& fields, const char* key) {
  long long value = 0;
  (void)ParseInt64(Get(fields, key), &value);
  return value;
}

}  // namespace

long long ExportSimTrace(const std::string& events_jsonl, long long pid,
                         std::string_view process_name, TraceEventWriter* writer) {
  writer->ProcessName(pid, process_name);
  // Current allocation per live job, rebuilt from alloc_decision plans.
  // std::map keeps counter series in job-id order (deterministic output).
  std::map<long long, long long> allocs;
  long long total_cpus = 0;
  long long bad_lines = 0;

  const auto emit_counters = [&](long long t_us) {
    std::vector<std::pair<std::string, long long>> series;
    series.reserve(allocs.size());
    long long used = 0;
    for (const auto& [job, alloc] : allocs) {
      std::string key = "J";
      AppendInt(&key, job);
      series.emplace_back(std::move(key), alloc);
      used += alloc;
    }
    if (!series.empty()) {
      writer->Counter(pid, "alloc", t_us, series);
    }
    if (total_cpus > 0) {
      writer->Counter(pid, "machine", t_us,
                      {{"used", used}, {"free", total_cpus - used}});
    }
  };

  std::size_t pos = 0;
  while (pos < events_jsonl.size()) {
    std::size_t end = events_jsonl.find('\n', pos);
    if (end == std::string::npos) {
      end = events_jsonl.size();
    }
    const std::string_view line(events_jsonl.data() + pos, end - pos);
    pos = end + 1;
    if (line.empty()) {
      continue;
    }
    Fields fields;
    if (!ParseFlatJson(line, &fields)) {
      ++bad_lines;
      continue;
    }
    const std::string type = Get(fields, "type");
    const long long t_us = GetInt(fields, "t_us");
    const long long job = GetInt(fields, "job");
    if (type == "run_start") {
      total_cpus = GetInt(fields, "cpus");
    } else if (type == "job_submit") {
      std::string name = "J";
      AppendInt(&name, job);
      name.push_back(' ');
      name.append(Get(fields, "class"));
      writer->AsyncBegin(pid, "job", job, name, t_us);
    } else if (type == "job_start") {
      std::string name = "start alloc=";
      name.append(Get(fields, "alloc"));
      writer->AsyncInstant(pid, "job", job, name, t_us);
    } else if (type == "pdpa_transition") {
      std::string name = Get(fields, "from");
      name.append("->");
      name.append(Get(fields, "to"));
      writer->AsyncInstant(pid, "job", job, name, t_us);
    } else if (type == "job_finish") {
      writer->AsyncEnd(pid, "job", job, t_us);
      if (allocs.erase(job) > 0) {
        // Re-emit so the finished job's series visibly drops to idle.
        allocs[job] = 0;
        emit_counters(t_us);
        allocs.erase(job);
      }
    } else if (type == "alloc_decision") {
      // plan is "job:cpus job:cpus ..." — only jobs the plan names change.
      for (const std::string& token : SplitTokens(Get(fields, "plan"), ' ')) {
        const std::size_t colon = token.find(':');
        long long plan_job = 0;
        long long cpus = 0;
        if (colon == std::string::npos || !ParseInt64(token.substr(0, colon), &plan_job) ||
            !ParseInt64(token.substr(colon + 1), &cpus)) {
          continue;
        }
        allocs[plan_job] = cpus;
      }
      emit_counters(t_us);
    } else if (type == "admit_hold") {
      writer->Instant(pid, "admit_hold", t_us);
    }
    // perf_sample / cpu_handoffs / run_end carry no track of their own.
  }
  return bad_lines;
}

}  // namespace pdpa
