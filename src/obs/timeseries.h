// Per-quantum allocation time-series — the third leg of the flight recorder.
//
// The resource manager pushes two kinds of points on the scheduler quantum:
//   * one app point per running job: the *time-weighted* processor
//     allocation over the elapsed window plus the latest measured speedup /
//     efficiency and automaton state, and
//   * one machine point: free CPUs, running jobs, queue depth, utilization.
//
// App windows partition each job's lifetime exactly (a final partial window
// is flushed at job completion), so summing alloc * (t_end - t_start) over a
// job's rows reproduces the RM's allocation integral — and therefore the
// avg_alloc reported by ComputeMetrics — to floating-point precision. That
// invariant is what makes the CSV trustworthy for Fig. 5/8-style plots.
#ifndef SRC_OBS_TIMESERIES_H_
#define SRC_OBS_TIMESERIES_H_

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "src/common/ids.h"
#include "src/common/mutex.h"
#include "src/common/time_types.h"

namespace pdpa {

class TimeSeriesSampler {
 public:
  struct AppPoint {
    SimTime t_start = 0;
    SimTime t_end = 0;
    JobId job = kIdleJob;
    // Time-weighted mean allocation over [t_start, t_end).
    double alloc = 0.0;
    // Latest SelfAnalyzer measurement (0 before the first report).
    double speedup = 0.0;
    double efficiency = 0.0;
    // PDPA automaton state name; empty for policies without one.
    std::string state;
  };

  struct MachinePoint {
    SimTime t = 0;
    int free_cpus = 0;
    int running = 0;
    int queued = 0;
    // Instantaneous (owned CPUs / total CPUs).
    double utilization = 0.0;
  };

  void AddApp(AppPoint point) {
    confinement_.AssertConfined("TimeSeriesSampler");
    apps_.push_back(std::move(point));
  }
  void AddMachine(MachinePoint point) {
    confinement_.AssertConfined("TimeSeriesSampler");
    machine_.push_back(point);
  }

  const std::vector<AppPoint>& apps() const { return apps_; }
  const std::vector<MachinePoint>& machine() const { return machine_; }
  bool empty() const { return apps_.empty() && machine_.empty(); }

  // Integral of allocation over time per job, in cpu-microseconds —
  // comparable with ResourceManager::alloc_integral_us().
  std::map<JobId, double> AllocIntegralUs() const;

  // Long-format CSV, one row per point, app and machine rows interleaved in
  // recording order under a shared header.
  void WriteCsv(std::ostream& out) const;

  void Clear();

  // Releases the audit-build thread-confinement binding (see
  // EventLog::HandoffConfinement); the cluster engine calls this when a
  // node's sampler moves between a shard worker and the controller.
  void HandoffConfinement() { confinement_.Handoff(); }

 private:
  std::vector<AppPoint> apps_;
  std::vector<MachinePoint> machine_;
  // Per-run sink, single-writer by construction (see EventLog); audit
  // builds verify the confinement instead of paying for a mutex.
  ThreadConfinementChecker confinement_;
};

// Cluster CSV: the single-machine schema with a leading "node" column,
// k-way merging one sampler per node by row key time (t_end for app
// windows, t for machine samples), ties resolved by node index and, within
// one node, by the same recording-order rule WriteCsv uses. Row bytes after
// the node column are identical to WriteCsv's, so a 1-node cluster CSV is
// the single-machine CSV with "0," prefixed to every data row.
void WriteClusterTimeSeriesCsv(const std::vector<const TimeSeriesSampler*>& nodes,
                               std::ostream& out);

namespace internal {

// The pre-fast-path CSV writer (per-row StrFormat temporaries, per-row
// ostream inserts), kept only so the golden byte-identity fixture and
// serialization_bench can A/B against WriteCsv; production code must not
// use it.
void WriteTimeSeriesCsvLegacy(const TimeSeriesSampler& series, std::ostream& out);

}  // namespace internal

}  // namespace pdpa

#endif  // SRC_OBS_TIMESERIES_H_
