// Chrome/Perfetto trace-event export for flight-recorder captures.
//
// TraceEventWriter emits the JSON object format the Perfetto UI and
// chrome://tracing load directly: {"displayTimeUnit":"ms","traceEvents":
// [...]} with one event object per record. Supported phases:
//   "M"  metadata (process_name / thread_name)
//   "b"/"n"/"e"  async begin / instant / end (cat + id required) — the
//        per-job lifecycle tracks
//   "C"  counter (multi-series args) — per-quantum allocation tracks
//   "X"  complete span (ts + dur) — host-time sweep-worker tracks
//   "i"  instant
// Timestamps ("ts"/"dur") are microseconds: simulation records use SimTime
// verbatim, host records use prof::NowNanos()/1000 relative to an epoch.
//
// Every record is one flat JSON object except for the single nested "args"
// object the format requires; records are built with the src/common/fmt.h
// appenders into a reusable scratch string and batched through BufWriter —
// the same zero-allocation fast path as the event log.
//
// ExportSimTrace() reconstructs the simulation-time tracks from a captured
// event-log JSONL string (the PR-1 flight recorder is the source of truth;
// the exporter is a pure post-processor, so tracing never perturbs a run).
#ifndef SRC_OBS_TRACE_EXPORT_H_
#define SRC_OBS_TRACE_EXPORT_H_

#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/bufwriter.h"

namespace pdpa {

class TraceEventWriter {
 public:
  // `out` is borrowed and must outlive the writer. The JSON prologue is
  // written immediately; call Finish() exactly once to close the array.
  explicit TraceEventWriter(std::ostream* out);

  TraceEventWriter(const TraceEventWriter&) = delete;
  TraceEventWriter& operator=(const TraceEventWriter&) = delete;

  void ProcessName(long long pid, std::string_view name);
  void ThreadName(long long pid, long long tid, std::string_view name);

  // Async track events; Perfetto groups them by (cat, id).
  void AsyncBegin(long long pid, std::string_view cat, long long id, std::string_view name,
                  long long ts_us);
  void AsyncInstant(long long pid, std::string_view cat, long long id, std::string_view name,
                    long long ts_us);
  void AsyncEnd(long long pid, std::string_view cat, long long id, long long ts_us);

  // Counter event: one track named `name`, one series per (key, value).
  void Counter(long long pid, std::string_view name, long long ts_us,
               const std::vector<std::pair<std::string, long long>>& series);

  void Complete(long long pid, long long tid, std::string_view name, long long ts_us,
                long long dur_us);

  void Instant(long long pid, std::string_view name, long long ts_us);

  // Closes the traceEvents array and flushes. Must be the last call.
  void Finish();

  long long events_written() const { return events_; }

 private:
  // Opens the next record (comma handling) in scratch_; the Emit* helpers
  // close and hand it to the BufWriter.
  void BeginRecord(const char* ph);
  void EndRecord();

  BufWriter writer_;
  std::string scratch_;
  long long events_ = 0;
  bool finished_ = false;
};

// Replays a flight-recorder JSONL capture (EventLog output) into sim-time
// trace tracks under process `pid`: per-job async lifecycle spans (submit ->
// start/transition instants -> finish), allocation counter tracks rebuilt
// from alloc_decision plans, machine used/free counters, and admit_hold
// instants. `process_name` labels the pid ("w1_1.00_PDPA"); malformed lines
// are skipped and counted in the return value.
long long ExportSimTrace(const std::string& events_jsonl, long long pid,
                         std::string_view process_name, TraceEventWriter* writer);

}  // namespace pdpa

#endif  // SRC_OBS_TRACE_EXPORT_H_
