// Host-time self-profiler — the "where does the wall time go" half of
// src/obs/, layered on the same optional-sink pattern as the flight
// recorder: a null Profiler* makes every ProfScope a no-op costing one
// pointer test, so instrumented hot paths stay free when profiling is off.
//
// Design constraints (DESIGN.md §11):
//   * Zero allocation: spans live on a fixed-size thread-local stack and
//     aggregate into a fixed array indexed by SpanId. Nothing on the enter/
//     exit path touches the heap.
//   * Determinism split: per-span hit counts depend only on the simulated
//     schedule and are byte-reproducible across runs and machines;
//     nanosecond totals are host measurements and are never compared
//     exactly. The two live side by side in SpanStats and every consumer
//     (bench gates, golden tests, merged sweep profiles) must only pin the
//     hit counts.
//   * One sanctioned clock: the monotonic host clock lives behind
//     prof::NowNanos(), implemented in prof.cc — the only translation unit
//     in src/ the pdpa_lint wall-clock rule allows to touch steady_clock.
//     Everything else (sweep host spans, benches that want comparable
//     stamps) calls NowNanos() and stays lint-clean.
//
// A Profiler belongs to one run, exactly like an EventLog: the sweep engine
// gives each cell its own and merges them deterministically in grid order.
// ProfScope itself is thread-compatible — concurrent cells profile into
// disjoint Profilers from their own threads; the thread-local span stack
// keeps parent/child (self-time) attribution per thread.
#ifndef SRC_OBS_PROF_H_
#define SRC_OBS_PROF_H_

#include <array>
#include <string>

namespace pdpa {

namespace prof {

// Monotonic host clock, nanoseconds from an arbitrary epoch. The single
// sanctioned wall-clock source in src/ (see the pdpa_lint wall-clock rule).
long long NowNanos();

}  // namespace prof

// The fixed span vocabulary. Adding a span means adding an enumerator here
// and its name to SpanName() — the table is deliberately closed so span
// records need no string interning and profiles merge index-wise.
enum class SpanId : int {
  kSimEventPush = 0,  // EventQueue::Schedule
  kSimEventPop,       // EventQueue::RunNext (dispatch included as children)
  kRmTick,            // ResourceManager::OnTick (advance + completions)
  kRmQuantum,         // ResourceManager::OnQuantum (the quantum scan)
  kPolicyDecide,      // any SchedulingPolicy decision call
  kObsSerialize,      // EventLog record formatting + buffer append
  kObsFlush,          // EventLog buffered bytes pushed to the sink
  kSweepCell,         // one whole sweep cell (RunExperiment)
  // Cluster controller spans (controller thread only — workers never hold a
  // ProfScope). Hit determinism caveat: drain and place hits are functions
  // of the simulated schedule; barrier_wait counts controller wake cycles,
  // which depend on thread timing when shards > 1 — pin it serial-only.
  kClusterBarrierWait,  // ClusterEngine dispatch + wait for an actionable batch
  kClusterDrain,        // ClusterEngine::HandleVisibleBatch (one per timestamp)
  kClusterPlace,        // ClusterEngine::PlaceJob (one per placement)
  kCount,
};

inline constexpr int kNumSpanIds = static_cast<int>(SpanId::kCount);

// Stable dotted name of a span ("rm.tick"), used in tables and prof_span
// JSONL records.
const char* SpanName(SpanId id);

struct SpanStats {
  // Times the span was entered. Deterministic: a function of the simulated
  // schedule only, identical across repeated runs, serial vs parallel
  // sweeps, and machines.
  long long hits = 0;
  // Host nanoseconds inside the span, children included. Nondeterministic.
  long long total_ns = 0;
  // Host nanoseconds minus time spent in child spans on the same thread.
  // Nondeterministic.
  long long self_ns = 0;
};

// Per-run span aggregate. Plain data: copyable, mergeable, no locking (one
// run = one writer thread, the same confinement contract as EventLog).
class Profiler {
 public:
  SpanStats& stats(SpanId id) { return stats_[static_cast<std::size_t>(id)]; }
  const SpanStats& stats(SpanId id) const { return stats_[static_cast<std::size_t>(id)]; }

  // Integer element-wise sums: exact, associative, commutative — merging
  // per-cell profiles in any grouping yields identical hit counts.
  void Merge(const Profiler& other);

  // Sum of hits across all spans (the deterministic half only).
  long long TotalHits() const;

 private:
  std::array<SpanStats, static_cast<std::size_t>(kNumSpanIds)> stats_{};
};

// RAII span: enters on construction, attributes elapsed host time on
// destruction. A null profiler disables the scope entirely (no clock read).
class ProfScope {
 public:
  ProfScope(Profiler* profiler, SpanId id);
  ~ProfScope();

  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  Profiler* profiler_;
};

// Appends the human-readable breakdown table (pdpa_sim --prof, pdpa_batch
// --prof): one line per span with hits, total/self milliseconds and mean
// ns/hit. Spans with zero hits are omitted.
void AppendProfTable(const Profiler& profiler, std::string* out);

// Appends the JSONL form (pdpa_sim/pdpa_batch --prof_out): one prof_meta
// header record, then one {"type":"prof_span",...} record per span with
// hits > 0 — flat JSON, readable by ParseFlatJson and pdpa_report.
void AppendProfJsonl(const Profiler& profiler, const char* tool, std::string* out);

}  // namespace pdpa

#endif  // SRC_OBS_PROF_H_
