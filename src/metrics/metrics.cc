#include "src/metrics/metrics.h"

#include <algorithm>

#include "src/common/stats.h"

namespace pdpa {

WorkloadMetrics ComputeMetrics(const std::vector<JobOutcome>& outcomes,
                               const std::map<JobId, double>& alloc_integral_us) {
  WorkloadMetrics metrics;
  metrics.jobs = static_cast<int>(outcomes.size());
  std::map<AppClass, double> response_sum;
  std::map<AppClass, double> exec_sum;
  std::map<AppClass, double> wait_sum;
  std::map<AppClass, double> alloc_sum;
  std::map<AppClass, std::vector<double>> responses;
  for (const JobOutcome& outcome : outcomes) {
    ClassMetrics& cm = metrics.per_class[outcome.app_class];
    ++cm.count;
    response_sum[outcome.app_class] += outcome.ResponseSeconds();
    responses[outcome.app_class].push_back(outcome.ResponseSeconds());
    exec_sum[outcome.app_class] += outcome.ExecSeconds();
    wait_sum[outcome.app_class] += outcome.WaitSeconds();
    metrics.makespan_s = std::max(metrics.makespan_s, TimeToSeconds(outcome.finish));
    const auto it = alloc_integral_us.find(outcome.id);
    if (it != alloc_integral_us.end() && outcome.finish > outcome.start) {
      alloc_sum[outcome.app_class] +=
          it->second / static_cast<double>(outcome.finish - outcome.start);
    }
  }
  for (auto& [app_class, cm] : metrics.per_class) {
    if (cm.count <= 0) {
      // Defensive: per_class entries are only created by counting a job, but
      // a zero count must never become a division by zero here.
      continue;
    }
    cm.avg_response_s = response_sum[app_class] / cm.count;
    cm.avg_exec_s = exec_sum[app_class] / cm.count;
    cm.avg_wait_s = wait_sum[app_class] / cm.count;
    cm.avg_alloc = alloc_sum[app_class] / cm.count;
    cm.p50_response_s = Percentile(responses[app_class], 50.0);
    cm.p95_response_s = Percentile(responses[app_class], 95.0);
  }
  return metrics;
}

}  // namespace pdpa
