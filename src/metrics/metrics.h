// Aggregation of per-job outcomes into the metrics the paper reports:
// average response time and average execution time per application class,
// workload makespan, and average processor allocation.
#ifndef SRC_METRICS_METRICS_H_
#define SRC_METRICS_METRICS_H_

#include <map>
#include <vector>

#include "src/common/ids.h"
#include "src/qs/job.h"

namespace pdpa {

struct ClassMetrics {
  int count = 0;
  double avg_response_s = 0.0;
  double avg_exec_s = 0.0;
  double avg_wait_s = 0.0;
  // Response-time tail: median and 95th percentile (linear interpolation).
  double p50_response_s = 0.0;
  double p95_response_s = 0.0;
  // Time-averaged processor allocation while running.
  double avg_alloc = 0.0;
};

struct WorkloadMetrics {
  std::map<AppClass, ClassMetrics> per_class;
  int jobs = 0;
  // Time from t=0 until the last job finished ("workload execution time" in
  // Tables 3 and 4).
  double makespan_s = 0.0;
};

// `alloc_integral_us` maps job id -> integral of allocated processors over
// time (cpu-microseconds), as accumulated by the ResourceManager.
WorkloadMetrics ComputeMetrics(const std::vector<JobOutcome>& outcomes,
                               const std::map<JobId, double>& alloc_integral_us);

}  // namespace pdpa

#endif  // SRC_METRICS_METRICS_H_
