#include "src/core/pdpa_policy.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/obs/counters.h"

namespace pdpa {

PdpaPolicy::PdpaPolicy(PdpaParams params, PdpaMlParams ml_params)
    : params_(params), ml_params_(ml_params) {
  BindInstruments(Registry::Default());
}

void PdpaPolicy::BindInstruments(Registry& registry) {
  to_no_ref_ = registry.counter("pdpa.transitions.to_no_ref");
  to_inc_ = registry.counter("pdpa.transitions.to_inc");
  to_dec_ = registry.counter("pdpa.transitions.to_dec");
  to_stable_ = registry.counter("pdpa.transitions.to_stable");
  evaluations_ = registry.counter("pdpa.evaluations");
  stale_reports_ = registry.counter("pdpa.stale_reports");
  admit_granted_ = registry.counter("pdpa.admit.granted");
  admit_denied_ = registry.counter("pdpa.admit.denied");
}

Counter* PdpaPolicy::TransitionCounter(PdpaState to) const {
  switch (to) {
    case PdpaState::kNoRef:
      return to_no_ref_;
    case PdpaState::kInc:
      return to_inc_;
    case PdpaState::kDec:
      return to_dec_;
    case PdpaState::kStable:
      return to_stable_;
  }
  return to_stable_;
}

void PdpaPolicy::RecordTransition(SimTime now, JobId job, PdpaState from, int from_alloc,
                                  const PdpaAutomaton& automaton, double speedup,
                                  const char* trigger) {
  evaluations_->Increment();
  if (automaton.state() != from) {
    TransitionCounter(automaton.state())->Increment();
  }
  if (event_log_ != nullptr) {
    const int procs = from_alloc > 0 ? from_alloc : automaton.current_alloc();
    const double efficiency = procs > 0 ? speedup / procs : 0.0;
    event_log_->PdpaTransition(now, job, from_alloc > 0 ? PdpaStateName(from) : "-",
                               PdpaStateName(automaton.state()), from_alloc,
                               automaton.current_alloc(), speedup, efficiency,
                               automaton.target_eff(), trigger);
  }
  if (automaton.state() != from || automaton.current_alloc() != from_alloc) {
    PDPA_LOG(Debug) << "job " << job << " " << PdpaStateName(from) << "->"
                    << PdpaStateName(automaton.state()) << " alloc " << from_alloc << "->"
                    << automaton.current_alloc() << " S=" << speedup << " (" << trigger << ")";
  }
}

AllocationPlan PdpaPolicy::OnJobStart(const PolicyContext& ctx, JobId job) {
  int request = 0;
  bool rigid = false;
  for (const PolicyJobInfo& info : ctx.jobs) {
    if (info.id == job) {
      request = info.request;
      rigid = info.rigid;
      break;
    }
  }
  PDPA_CHECK_GT(request, 0) << "job " << job << " missing from context";
  AllocationPlan plan;
  if (rigid) {
    // Rigid job: no performance search (the process count cannot change).
    // Fold it onto whatever is free, up to its request — this is what lets
    // it start immediately instead of fragmenting the machine.
    plan[job] = std::min(request, std::max(1, ctx.free_cpus));
    return plan;
  }
  auto automaton = std::make_unique<PdpaAutomaton>(params_, request);
  const int initial = automaton->OnJobStart(ctx.free_cpus);
  RecordTransition(ctx.now, job, PdpaState::kNoRef, /*from_alloc=*/0, *automaton,
                   /*speedup=*/0.0, "start");
  automatons_[job] = std::move(automaton);
  plan[job] = initial;
  return plan;
}

AllocationPlan PdpaPolicy::OnJobFinish(const PolicyContext& ctx, JobId job) {
  automatons_.erase(job);
  // Offer the freed processors, in arrival order, to (a) rigid jobs running
  // folded — unfolding is always profitable — and (b) malleable
  // applications that were still very efficient at their stable allocation.
  AllocationPlan plan;
  int free = ctx.free_cpus;
  for (const PolicyJobInfo& info : ctx.jobs) {
    if (free <= 0) {
      break;
    }
    if (info.rigid) {
      if (info.alloc < info.request) {
        const int grant = std::min(info.request - info.alloc, free);
        plan[info.id] = info.alloc + grant;
        free -= grant;
      }
      continue;
    }
    const auto it = automatons_.find(info.id);
    if (it == automatons_.end()) {
      continue;
    }
    const PdpaState before_state = it->second->state();
    const int before = it->second->current_alloc();
    const PdpaDecision decision = it->second->OnFreeCapacity(free);
    if (decision.changed) {
      RecordTransition(ctx.now, info.id, before_state, before, *it->second,
                       it->second->last_speedup(), "free_capacity");
      plan[info.id] = decision.next_alloc;
      free -= decision.next_alloc - before;
    }
  }
  return plan;
}

AllocationPlan PdpaPolicy::OnReport(const PolicyContext& ctx, const PerfReport& report) {
  const auto it = automatons_.find(report.job);
  if (it == automatons_.end()) {
    return AllocationPlan{};
  }
  if (params_.dynamic_target && ctx.total_cpus > 0) {
    // Load-adaptive target efficiency: stricter as the machine fills up.
    const double load =
        1.0 - static_cast<double>(ctx.free_cpus) / static_cast<double>(ctx.total_cpus);
    const double target =
        params_.min_target_eff + (params_.max_target_eff - params_.min_target_eff) * load;
    it->second->SetTargetEff(std::min(target, params_.high_eff));
  }
  const PdpaState before_state = it->second->state();
  const int before_alloc = it->second->current_alloc();
  const PdpaDecision decision = it->second->OnReport(report.speedup, report.procs, ctx.free_cpus);
  if (report.procs != before_alloc) {
    // The measurement raced a reallocation; the automaton ignored it.
    stale_reports_->Increment();
    return AllocationPlan{};
  }
  RecordTransition(ctx.now, report.job, before_state, before_alloc, *it->second, report.speedup,
                   "report");
  AllocationPlan plan;
  if (decision.changed) {
    plan[report.job] = decision.next_alloc;
  }
  return plan;
}

bool PdpaPolicy::ShouldAdmit(const PolicyContext& ctx) const {
  // Run-to-completion with at least one processor: admission always needs a
  // free processor, even within the default-ML credit.
  if (ctx.free_cpus < 1) {
    admit_denied_->Increment();
    return false;
  }
  std::vector<PdpaAppStatus> statuses;
  statuses.reserve(automatons_.size());
  for (const auto& [job, automaton] : automatons_) {
    statuses.push_back(PdpaAppStatus{automaton->Settled(), automaton->BadPerformance()});
  }
  const bool admit =
      PdpaShouldAdmit(ml_params_, ctx.free_cpus, static_cast<int>(ctx.jobs.size()), statuses);
  (admit ? admit_granted_ : admit_denied_)->Increment();
  return admit;
}

const char* PdpaPolicy::AppStateName(JobId job) const {
  const auto it = automatons_.find(job);
  return it == automatons_.end() ? "" : PdpaStateName(it->second->state());
}

const PdpaAutomaton* PdpaPolicy::AutomatonFor(JobId job) const {
  const auto it = automatons_.find(job);
  return it == automatons_.end() ? nullptr : it->second.get();
}

}  // namespace pdpa
