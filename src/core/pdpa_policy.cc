#include "src/core/pdpa_policy.h"

#include <algorithm>

#include "src/common/logging.h"

namespace pdpa {

PdpaPolicy::PdpaPolicy(PdpaParams params, PdpaMlParams ml_params)
    : params_(params), ml_params_(ml_params) {}

AllocationPlan PdpaPolicy::OnJobStart(const PolicyContext& ctx, JobId job) {
  int request = 0;
  bool rigid = false;
  for (const PolicyJobInfo& info : ctx.jobs) {
    if (info.id == job) {
      request = info.request;
      rigid = info.rigid;
      break;
    }
  }
  PDPA_CHECK_GT(request, 0) << "job " << job << " missing from context";
  AllocationPlan plan;
  if (rigid) {
    // Rigid job: no performance search (the process count cannot change).
    // Fold it onto whatever is free, up to its request — this is what lets
    // it start immediately instead of fragmenting the machine.
    plan[job] = std::min(request, std::max(1, ctx.free_cpus));
    return plan;
  }
  auto automaton = std::make_unique<PdpaAutomaton>(params_, request);
  const int initial = automaton->OnJobStart(ctx.free_cpus);
  automatons_[job] = std::move(automaton);
  plan[job] = initial;
  return plan;
}

AllocationPlan PdpaPolicy::OnJobFinish(const PolicyContext& ctx, JobId job) {
  automatons_.erase(job);
  // Offer the freed processors, in arrival order, to (a) rigid jobs running
  // folded — unfolding is always profitable — and (b) malleable
  // applications that were still very efficient at their stable allocation.
  AllocationPlan plan;
  int free = ctx.free_cpus;
  for (const PolicyJobInfo& info : ctx.jobs) {
    if (free <= 0) {
      break;
    }
    if (info.rigid) {
      if (info.alloc < info.request) {
        const int grant = std::min(info.request - info.alloc, free);
        plan[info.id] = info.alloc + grant;
        free -= grant;
      }
      continue;
    }
    const auto it = automatons_.find(info.id);
    if (it == automatons_.end()) {
      continue;
    }
    const int before = it->second->current_alloc();
    const PdpaDecision decision = it->second->OnFreeCapacity(free);
    if (decision.changed) {
      plan[info.id] = decision.next_alloc;
      free -= decision.next_alloc - before;
    }
  }
  return plan;
}

AllocationPlan PdpaPolicy::OnReport(const PolicyContext& ctx, const PerfReport& report) {
  const auto it = automatons_.find(report.job);
  if (it == automatons_.end()) {
    return AllocationPlan{};
  }
  if (params_.dynamic_target && ctx.total_cpus > 0) {
    // Load-adaptive target efficiency: stricter as the machine fills up.
    const double load =
        1.0 - static_cast<double>(ctx.free_cpus) / static_cast<double>(ctx.total_cpus);
    const double target =
        params_.min_target_eff + (params_.max_target_eff - params_.min_target_eff) * load;
    it->second->SetTargetEff(std::min(target, params_.high_eff));
  }
  const PdpaDecision decision = it->second->OnReport(report.speedup, report.procs, ctx.free_cpus);
  AllocationPlan plan;
  if (decision.changed) {
    plan[report.job] = decision.next_alloc;
  }
  return plan;
}

bool PdpaPolicy::ShouldAdmit(const PolicyContext& ctx) const {
  // Run-to-completion with at least one processor: admission always needs a
  // free processor, even within the default-ML credit.
  if (ctx.free_cpus < 1) {
    return false;
  }
  std::vector<PdpaAppStatus> statuses;
  statuses.reserve(automatons_.size());
  for (const auto& [job, automaton] : automatons_) {
    statuses.push_back(PdpaAppStatus{automaton->Settled(), automaton->BadPerformance()});
  }
  return PdpaShouldAdmit(ml_params_, ctx.free_cpus, static_cast<int>(ctx.jobs.size()), statuses);
}

const PdpaAutomaton* PdpaPolicy::AutomatonFor(JobId job) const {
  const auto it = automatons_.find(job);
  return it == automatons_.end() ? nullptr : it->second.get();
}

}  // namespace pdpa
