// PdpaPolicy: adapter that drives one PdpaAutomaton per running job and
// implements the SchedulingPolicy interface for the NANOS Resource Manager.
#ifndef SRC_CORE_PDPA_POLICY_H_
#define SRC_CORE_PDPA_POLICY_H_

#include <map>
#include <memory>

#include "src/core/pdpa.h"
#include "src/rm/policy.h"

namespace pdpa {

class PdpaPolicy : public SchedulingPolicy {
 public:
  PdpaPolicy(PdpaParams params, PdpaMlParams ml_params);

  std::string name() const override { return "PDPA"; }

  AllocationPlan OnJobStart(const PolicyContext& ctx, JobId job) override;
  AllocationPlan OnJobFinish(const PolicyContext& ctx, JobId job) override;
  AllocationPlan OnReport(const PolicyContext& ctx, const PerfReport& report) override;
  bool ShouldAdmit(const PolicyContext& ctx) const override;
  // Automaton transitions fire on performance reports, never on the quantum.
  bool quantum_passive() const override { return true; }
  const char* AppStateName(JobId job) const override;

  // State of one job's automaton, for tests and introspection.
  const PdpaAutomaton* AutomatonFor(JobId job) const;

 protected:
  void BindInstruments(Registry& registry) override;

 private:
  // Records one automaton evaluation in the flight recorder and the
  // transition counters.
  void RecordTransition(SimTime now, JobId job, PdpaState from, int from_alloc,
                        const PdpaAutomaton& automaton, double speedup, const char* trigger);

  Counter* TransitionCounter(PdpaState to) const;

  PdpaParams params_;
  PdpaMlParams ml_params_;
  std::map<JobId, std::unique_ptr<PdpaAutomaton>> automatons_;

  // Instruments, re-bound per run via set_registry.
  Counter* to_no_ref_ = nullptr;
  Counter* to_inc_ = nullptr;
  Counter* to_dec_ = nullptr;
  Counter* to_stable_ = nullptr;
  Counter* evaluations_ = nullptr;
  Counter* stale_reports_ = nullptr;
  Counter* admit_granted_ = nullptr;
  Counter* admit_denied_ = nullptr;
};

}  // namespace pdpa

#endif  // SRC_CORE_PDPA_POLICY_H_
