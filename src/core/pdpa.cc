#include "src/core/pdpa.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/strings.h"

namespace pdpa {

const char* PdpaStateName(PdpaState state) {
  switch (state) {
    case PdpaState::kNoRef:
      return "NO_REF";
    case PdpaState::kInc:
      return "INC";
    case PdpaState::kDec:
      return "DEC";
    case PdpaState::kStable:
      return "STABLE";
  }
  return "?";
}

PdpaAutomaton::PdpaAutomaton(PdpaParams params, int request)
    : params_(params), request_(request) {
  PDPA_CHECK_GT(request, 0);
  PDPA_CHECK_GT(params.step, 0);
  PDPA_CHECK_GT(params.target_eff, 0.0);
  PDPA_CHECK_LE(params.target_eff, params.high_eff);
  PDPA_CHECK_LE(params.high_eff, 1.5);
}

bool PdpaAutomaton::Settled() const {
  if (state_ == PdpaState::kStable) {
    return true;
  }
  // Stuck at the floor: DEC cannot shrink below one processor.
  if (state_ == PdpaState::kDec && cur_alloc_ <= 1) {
    return true;
  }
  // Saturated: at its full request with good performance; INC cannot grow.
  if (state_ == PdpaState::kInc && cur_alloc_ >= request_) {
    return true;
  }
  return false;
}

bool PdpaAutomaton::BadPerformance() const {
  return state_ == PdpaState::kDec && cur_alloc_ <= 1;
}

int PdpaAutomaton::OnJobStart(int free_cpus) {
  PDPA_CHECK_GE(free_cpus, 1);
  state_ = PdpaState::kNoRef;
  cur_alloc_ = std::min(request_, free_cpus);
  last_alloc_ = cur_alloc_;
  has_report_ = false;
  cur_speedup_ = 0.0;
  last_speedup_ = 0.0;
  stable_exits_ = 0;
  return cur_alloc_;
}

void PdpaAutomaton::SyncAllocation(int alloc) {
  PDPA_CHECK_GE(alloc, 0);
  if (alloc != cur_alloc_) {
    cur_alloc_ = alloc;
  }
}

void PdpaAutomaton::SetTargetEff(double target_eff) {
  PDPA_CHECK_GT(target_eff, 0.0);
  PDPA_CHECK_LE(target_eff, params_.high_eff);
  params_.target_eff = target_eff;
}

int PdpaAutomaton::GrowTarget(int free_cpus) const {
  const int grow = std::min(params_.step, free_cpus);
  return std::min(request_, cur_alloc_ + grow);
}

int PdpaAutomaton::ShrinkTarget() const { return std::max(1, cur_alloc_ - params_.step); }

PdpaDecision PdpaAutomaton::Transition(PdpaState next_state, int next_alloc) {
  const int prev_alloc = cur_alloc_;
  if (next_alloc != cur_alloc_) {
    last_alloc_ = cur_alloc_;
    last_speedup_ = cur_speedup_;
    cur_alloc_ = next_alloc;
  }
  state_ = next_state;
  PdpaDecision decision;
  decision.next_state = next_state;
  decision.next_alloc = next_alloc;
  decision.changed = next_alloc != prev_alloc;
  return decision;
}

PdpaDecision PdpaAutomaton::OnReport(double speedup, int procs, int free_cpus) {
  PDPA_CHECK_GT(procs, 0);
  PDPA_CHECK_GE(free_cpus, 0);
  // Reports race with reallocations; only evaluate measurements taken at the
  // allocation the automaton is reasoning about.
  if (procs != cur_alloc_) {
    PdpaDecision decision;
    decision.next_state = state_;
    decision.next_alloc = cur_alloc_;
    decision.changed = false;
    return decision;
  }

  cur_speedup_ = speedup;
  const double efficiency = speedup / procs;
  const bool had_report = has_report_;
  has_report_ = true;

  switch (state_) {
    case PdpaState::kNoRef: {
      if (efficiency > params_.high_eff) {
        const int target = GrowTarget(free_cpus);
        if (target > cur_alloc_) {
          resource_limited_ = false;
          return Transition(PdpaState::kInc, target);
        }
        // Very good performance but nowhere to grow: resource-limited only
        // if below the request (the free pool was empty).
        resource_limited_ = cur_alloc_ < request_;
        return Transition(PdpaState::kStable, cur_alloc_);
      }
      resource_limited_ = false;
      if (efficiency < params_.target_eff) {
        const int target = ShrinkTarget();
        if (target < cur_alloc_) {
          return Transition(PdpaState::kDec, target);
        }
        return Transition(PdpaState::kStable, cur_alloc_);
      }
      return Transition(PdpaState::kStable, cur_alloc_);
    }

    case PdpaState::kInc: {
      // Evaluate the growth decided in the previous quantum.
      bool keep_growing = efficiency > params_.high_eff;
      if (keep_growing && had_report) {
        keep_growing = cur_speedup_ > last_speedup_;
      }
      if (keep_growing && params_.use_relative_speedup && last_alloc_ > 0 &&
          last_speedup_ > 0.0 && cur_alloc_ > last_alloc_) {
        // RelativeSpeedup: the speedup gained must be proportional to the
        // processors gained, discounted by high_eff. Detects superlinear
        // curves that stop progressing (swim beyond 16 CPUs).
        const double relative = cur_speedup_ / last_speedup_;
        const double added_fraction =
            static_cast<double>(cur_alloc_ - last_alloc_) / static_cast<double>(last_alloc_);
        keep_growing = relative > 1.0 + added_fraction * params_.high_eff;
      }
      if (keep_growing) {
        const int target = GrowTarget(free_cpus);
        if (target > cur_alloc_) {
          resource_limited_ = false;
          return Transition(PdpaState::kInc, target);
        }
        // Saturated at the request (performance still fine) or stopped by an
        // empty free pool (resource-limited): hold.
        resource_limited_ = cur_alloc_ < request_;
        return Transition(PdpaState::kStable, cur_alloc_);
      }
      // Growth did not pay off: performance-limited stop. Lose the
      // processors gained in the last transition only if the current
      // efficiency is below target.
      resource_limited_ = false;
      if (efficiency < params_.target_eff && last_alloc_ > 0 && last_alloc_ < cur_alloc_) {
        return Transition(PdpaState::kStable, last_alloc_);
      }
      return Transition(PdpaState::kStable, cur_alloc_);
    }

    case PdpaState::kDec: {
      if (efficiency < params_.target_eff) {
        const int target = ShrinkTarget();
        if (target < cur_alloc_) {
          return Transition(PdpaState::kDec, target);
        }
        // At the 1-CPU floor with bad performance: hold (run-to-completion).
        return Transition(PdpaState::kDec, cur_alloc_);
      }
      return Transition(PdpaState::kStable, cur_alloc_);
    }

    case PdpaState::kStable: {
      if (params_.max_stable_exits == 0 || stable_exits_ >= params_.max_stable_exits) {
        return Transition(PdpaState::kStable, cur_alloc_);
      }
      // Resume the upward search only when the stop was resource-limited;
      // a performance-limited STABLE (efficiency or relative-speedup
      // ceiling) must not creep upward, or superlinear applications would
      // defeat the RelativeSpeedup rule.
      if (resource_limited_ && efficiency > params_.high_eff && cur_alloc_ < request_) {
        const int target = GrowTarget(free_cpus);
        if (target > cur_alloc_) {
          ++stable_exits_;
          resource_limited_ = false;
          return Transition(PdpaState::kInc, target);
        }
      }
      if (efficiency < params_.target_eff && cur_alloc_ > 1) {
        ++stable_exits_;
        resource_limited_ = false;
        return Transition(PdpaState::kDec, ShrinkTarget());
      }
      return Transition(PdpaState::kStable, cur_alloc_);
    }
  }
  PDPA_CHECK(false) << "unreachable";
  return PdpaDecision{};
}

PdpaDecision PdpaAutomaton::OnFreeCapacity(int free_cpus) {
  PdpaDecision decision;
  decision.next_state = state_;
  decision.next_alloc = cur_alloc_;
  decision.changed = false;
  if (state_ != PdpaState::kStable || !has_report_) {
    return decision;
  }
  if (params_.max_stable_exits == 0 || stable_exits_ >= params_.max_stable_exits) {
    return decision;
  }
  // Only resume the search when the stop was resource-limited and the
  // application was still very efficient at its stable allocation;
  // performance-limited stops stand (see OnReport, STABLE case).
  if (resource_limited_ && last_efficiency() > params_.high_eff && cur_alloc_ < request_ &&
      free_cpus > 0) {
    const int target = GrowTarget(free_cpus);
    if (target > cur_alloc_) {
      ++stable_exits_;
      resource_limited_ = false;
      return Transition(PdpaState::kInc, target);
    }
  }
  return decision;
}

double PdpaAutomaton::last_efficiency() const {
  if (cur_alloc_ <= 0) {
    return 0.0;
  }
  return cur_speedup_ / cur_alloc_;
}

std::string PdpaAutomaton::DebugString() const {
  return StrFormat("PdpaAutomaton{state=%s alloc=%d last_alloc=%d S=%.2f lastS=%.2f}",
                   PdpaStateName(state_), cur_alloc_, last_alloc_, cur_speedup_, last_speedup_);
}

bool PdpaShouldAdmit(const PdpaMlParams& params, int free_cpus, int running_jobs,
                     const std::vector<PdpaAppStatus>& statuses) {
  // Initial admission credit: the default multiprogramming level.
  if (running_jobs < params.default_ml) {
    return true;
  }
  if (!params.coordinated) {
    return false;  // Fixed-ML ablation: never exceed default_ml.
  }
  if (free_cpus < 1) {
    return false;
  }
  bool all_settled = true;
  bool any_bad = false;
  for (const PdpaAppStatus& status : statuses) {
    all_settled = all_settled && status.settled;
    any_bad = any_bad || status.bad_performance;
  }
  return all_settled || any_bad;
}

}  // namespace pdpa
