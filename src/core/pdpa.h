// PDPA: Performance-Driven Processor Allocation (the paper's contribution).
//
// This header contains the *pure* policy logic, independent of any execution
// engine: the per-application search automaton (Fig. 2 of the paper) and the
// coordinated multiprogramming-level rule. The same code drives the
// machine simulator (src/rm/pdpa_policy) and the real in-process resource
// manager (src/rt/process_rm).
//
// Search automaton states:
//   NO_REF — no performance knowledge yet (starting point)
//   INC    — performed well at the last evaluation; probing upward
//   DEC    — efficiency below target; shrinking
//   STABLE — largest allocation with acceptable efficiency found
#ifndef SRC_CORE_PDPA_H_
#define SRC_CORE_PDPA_H_

#include <string>
#include <vector>

namespace pdpa {

enum class PdpaState : int {
  kNoRef = 0,
  kInc = 1,
  kDec = 2,
  kStable = 3,
};

const char* PdpaStateName(PdpaState state);

struct PdpaParams {
  // Efficiency below which an allocation is unacceptable (shrink).
  double target_eff = 0.7;
  // Efficiency considered very good (probe upward).
  double high_eff = 0.9;
  // Processors added/removed per transition.
  int step = 4;
  // Maximum number of times an application may leave STABLE, to avoid
  // ping-pong effects (Sec. 4.2.4). 0 disables re-evaluation entirely.
  int max_stable_exits = 4;
  // Ablation switch: when false, the INC state uses only the efficiency and
  // monotone-speedup checks, not the RelativeSpeedup test. Superlinear
  // applications then keep growing well past their useful range.
  bool use_relative_speedup = true;

  // Dynamic target efficiency (Sec. 4.1: "Alternatively, it is dynamically
  // set depending on the load of the system"). When enabled, the effective
  // target_eff moves linearly with machine utilization between
  // min_target_eff (empty machine: hand out processors generously) and
  // max_target_eff (saturated machine: demand efficient use).
  bool dynamic_target = false;
  double min_target_eff = 0.5;
  double max_target_eff = 0.85;
};

// The allocation decision produced by one automaton evaluation.
struct PdpaDecision {
  PdpaState next_state = PdpaState::kNoRef;
  int next_alloc = 0;
  // True when next_alloc differs from the evaluated allocation.
  bool changed = false;
};

// Per-application search automaton. The caller owns the mapping between
// decisions and actual processor assignment.
class PdpaAutomaton {
 public:
  PdpaAutomaton(PdpaParams params, int request);

  PdpaState state() const { return state_; }
  int current_alloc() const { return cur_alloc_; }
  int request() const { return request_; }

  // True when this application will not ask for a different allocation on
  // its own: STABLE, or stuck at the 1-CPU floor with bad performance.
  bool Settled() const;
  // True when the application is running below target efficiency at the
  // minimum allocation — the "bad performance" trigger of the ML rule.
  bool BadPerformance() const;

  // Job admission: PDPA initially allocates min(request, free). Returns the
  // initial allocation and primes the automaton (state NO_REF).
  int OnJobStart(int free_cpus);

  // Processor count changed by an external actor (the RM redistributed
  // processors after a completion, or clipped a grow because the free pool
  // shrank). Keeps the automaton's view consistent without a transition.
  void SyncAllocation(int alloc);

  // Runtime parameter adjustment (the paper allows changing the policy
  // parameters while applications run; the dynamic-target mode uses this).
  void SetTargetEff(double target_eff);
  double target_eff() const { return params_.target_eff; }

  // Main evaluation: the application reported `speedup` (versus one
  // processor) measured with `procs` processors; `free_cpus` is the current
  // free pool, bounding growth. Applies the transition and returns the
  // decision. `procs` is normally current_alloc().
  PdpaDecision OnReport(double speedup, int procs, int free_cpus);

  // Free processors appeared (e.g. a job finished). A STABLE application
  // that was still very efficient may resume the upward search.
  PdpaDecision OnFreeCapacity(int free_cpus);

  double last_speedup() const { return cur_speedup_; }
  double last_efficiency() const;
  int stable_exits() const { return stable_exits_; }

  std::string DebugString() const;

  // True when the automaton is STABLE only because the machine had no free
  // processors (resource-limited), as opposed to having hit its efficiency
  // or relative-speedup ceiling (performance-limited). Only resource-limited
  // applications resume the upward search when capacity frees up.
  bool resource_limited() const { return resource_limited_; }

 private:
  PdpaDecision Transition(PdpaState next_state, int next_alloc);
  int GrowTarget(int free_cpus) const;
  int ShrinkTarget() const;

  PdpaParams params_;
  int request_;

  PdpaState state_ = PdpaState::kNoRef;
  int cur_alloc_ = 0;
  // Allocation and speedup at the previous (different) allocation — "the
  // recent past of the application" PDPA remembers.
  int last_alloc_ = 0;
  double last_speedup_ = 0.0;
  double cur_speedup_ = 0.0;
  bool has_report_ = false;
  int stable_exits_ = 0;
  bool resource_limited_ = false;
};

// Status snapshot used by the multiprogramming-level policy.
struct PdpaAppStatus {
  bool settled = false;
  bool bad_performance = false;
};

// Coordinated multiprogramming-level rule (Sec. 4.3): a new application may
// start when free processors exist and every running application is settled,
// or when running applications show bad performance anyway. A default ML
// acts as an initial admission credit (the paper uses 4).
struct PdpaMlParams {
  int default_ml = 4;
  // Ablation switch: when false the coordinated rule is disabled and PDPA
  // enforces default_ml as a fixed multiprogramming level like the
  // baselines. Isolates the allocation policy's contribution from the ML
  // policy's (the paper calls them orthogonal and complementary).
  bool coordinated = true;
};

bool PdpaShouldAdmit(const PdpaMlParams& params, int free_cpus, int running_jobs,
                     const std::vector<PdpaAppStatus>& statuses);

}  // namespace pdpa

#endif  // SRC_CORE_PDPA_H_
