// Discrete-event core: a time-ordered queue of callbacks with stable
// tie-breaking and O(log n) cancellation.
#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/common/time_types.h"
#include "src/obs/prof.h"

namespace pdpa {

using EventCallback = std::function<void()>;
using EventId = std::uint64_t;

// A priority queue of (time, callback). Events scheduled for the same time
// fire in scheduling order (FIFO), which keeps simulations deterministic.
//
// Cancellation is O(1) and hash-free: callbacks live in generation-stamped
// slots (recycled through a free list, so memory is bounded by the peak
// number of pending events), and each heap entry carries the generation its
// slot had when scheduled. Cancelling — or running — an event releases the
// slot and bumps its generation, which simultaneously invalidates any
// lingering heap entry (skipped lazily at the top of the heap) and makes
// stale EventIds fail Cancel. The previous design kept an unordered_set of
// live ids, paying a hash insert/erase per event on the hot path.
class EventQueue {
 public:
  EventQueue() = default;

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Schedules `callback` to run at absolute time `when`. `when` must not be
  // in the past relative to the last popped event.
  EventId Schedule(SimTime when, EventCallback callback);

  // Cancels a pending event. Returns false if the event already ran or was
  // already cancelled.
  bool Cancel(EventId id);

  bool empty() const { return live_ == 0; }
  std::size_t size() const { return live_; }

  // Time of the earliest pending event; only valid when !empty().
  SimTime NextTime() const;

  // Pops and runs the earliest pending event. Returns its time.
  SimTime RunNext();

  // Borrowed host-time profiler; null (the default) disables span timing.
  // When set, Schedule records sim.event_push spans and RunNext records
  // sim.event_pop spans (whose self time isolates queue overhead from the
  // dispatched callback's own spans).
  void set_profiler(Profiler* profiler) { profiler_ = profiler; }

 private:
  // Stable home of one callback while its event is pending. `generation`
  // advances every time the slot is released, so an (id, heap entry) minted
  // for an earlier occupant can never match a reused slot.
  struct Slot {
    EventCallback callback;
    std::uint32_t generation = 1;
  };
  struct Entry {
    SimTime when;
    // FIFO tie-break for same-time events (monotonic schedule order).
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t generation;
  };
  struct EntryLater {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  // A heap entry is pending iff its generation still matches its slot's.
  bool Pending(const Entry& entry) const {
    return slots_[entry.slot].generation == entry.generation;
  }
  // Releases `slot`: drops the callback, bumps the generation, recycles.
  void Release(std::uint32_t slot);
  void SkipStale();

  std::priority_queue<Entry, std::vector<Entry>, EntryLater> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_ = 1;
  std::size_t live_ = 0;
  SimTime last_popped_ = 0;
  Profiler* profiler_ = nullptr;
};

}  // namespace pdpa

#endif  // SRC_SIM_EVENT_QUEUE_H_
