// Discrete-event core: a time-ordered queue of callbacks with stable
// tie-breaking and O(log n) cancellation.
#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/common/time_types.h"

namespace pdpa {

using EventCallback = std::function<void()>;
using EventId = std::uint64_t;

// A priority queue of (time, callback). Events scheduled for the same time
// fire in scheduling order (FIFO), which keeps simulations deterministic.
// Cancellation is lazy: cancelled events stay in the heap but are skipped.
class EventQueue {
 public:
  EventQueue() = default;

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Schedules `callback` to run at absolute time `when`. `when` must not be
  // in the past relative to the last popped event.
  EventId Schedule(SimTime when, EventCallback callback);

  // Cancels a pending event. Returns false if the event already ran or was
  // already cancelled.
  bool Cancel(EventId id);

  bool empty() const { return live_.empty(); }
  std::size_t size() const { return live_.size(); }

  // Time of the earliest pending event; only valid when !empty().
  SimTime NextTime() const;

  // Pops and runs the earliest pending event. Returns its time.
  SimTime RunNext();

 private:
  struct Entry {
    SimTime when;
    EventId id;
    EventCallback callback;
  };
  struct EntryLater {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.id > b.id;
    }
  };

  void SkipCancelled();

  std::priority_queue<Entry, std::vector<Entry>, EntryLater> heap_;
  // Ids scheduled but neither run nor cancelled. The heap may additionally
  // hold cancelled entries, skipped lazily.
  std::unordered_set<EventId> live_;
  EventId next_id_ = 1;
  SimTime last_popped_ = 0;
};

}  // namespace pdpa

#endif  // SRC_SIM_EVENT_QUEUE_H_
