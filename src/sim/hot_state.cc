#include "src/sim/hot_state.h"

#include "src/common/logging.h"

namespace pdpa {

void HotStateArena::EnsureSlot(int slot) {
  PDPA_CHECK_GE(slot, 0);
  if (slot < size()) {
    return;
  }
  const std::size_t n = static_cast<std::size_t>(slot) + 1;
  job_id.resize(n, kIdleJob);
  arrival.resize(n, 0);
  request.resize(n, 0);
  rigid.resize(n, 0);
  alloc_integral_us.resize(n, 0.0);
  alloc.resize(n, 0);
  started.resize(n, 0);
  finished.resize(n, 0);
  change_epoch.resize(n, 0);
  ready_at.resize(n, kHorizonNever);
  next_boundary.resize(n, kHorizonNever);
  seg_valid.resize(n, 0);
  seg_start.resize(n, 0);
  seg_end.resize(n, 0);
  seg_progress.resize(n, 0.0);
  seg_speed.resize(n, 0.0);
}

void HotStateArena::ResetSlot(int slot) {
  PDPA_CHECK_GE(slot, 0);
  PDPA_CHECK_LT(slot, size());
  const std::size_t s = static_cast<std::size_t>(slot);
  job_id[s] = kIdleJob;
  arrival[s] = 0;
  request[s] = 0;
  rigid[s] = 0;
  alloc_integral_us[s] = 0.0;
  alloc[s] = 0;
  started[s] = 0;
  finished[s] = 0;
  change_epoch[s] = 0;
  ready_at[s] = kHorizonNever;
  next_boundary[s] = kHorizonNever;
  seg_valid[s] = 0;
  seg_start[s] = 0;
  seg_end[s] = 0;
  seg_progress[s] = 0.0;
  seg_speed[s] = 0.0;
}

}  // namespace pdpa
