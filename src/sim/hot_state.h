// Structure-of-arrays store for the per-job state the resource manager's
// inner loops read every scheduling decision.
//
// The RM consults two things for every running job at every materialized
// tick: "is this job steady enough to elide over?" (ready_at) and "when is
// its next iteration boundary?" (next_boundary). Keeping those — plus the
// allocation/request counts the policy context is built from and the
// segment anchor the integrator works in — as parallel arrays indexed by
// dense slot makes the event-horizon min and the policy-context fill
// cache-linear batch loops instead of pointer chases through Application
// objects.
//
// Ownership is split by column, never by row:
//   * The ResourceManager writes the identity/accounting columns (job_id,
//     arrival, request, rigid, alloc_integral_us) when it starts or
//     releases a slot.
//   * The slot's Application writes the dynamics columns (alloc, started,
//     finished, change_epoch, ready_at, next_boundary, seg_*) and is the
//     only writer of them while the job runs; it republishes ready_at and
//     next_boundary after every state change (see Application::PublishHot).
// Readers may scan any column; `order_` in the RM defines which slots are
// live. Idle slots hold job_id == kIdleJob and parked horizons.
#ifndef SRC_SIM_HOT_STATE_H_
#define SRC_SIM_HOT_STATE_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "src/common/ids.h"
#include "src/common/time_types.h"

namespace pdpa {

// Sentinel for "no forthcoming instant": a job with no next iteration
// boundary publishes next_boundary == kHorizonNever, and a job that is not
// elidable (unstarted, finished, frozen, or mid-warmup) publishes
// ready_at == kHorizonNever. Far enough in the future to survive additions
// of grid periods without overflow.
inline constexpr SimTime kHorizonNever = std::numeric_limits<SimTime>::max() / 4;

class HotStateArena {
 public:
  // Grows every column to cover `slot` (idle-initialized); existing slots
  // are untouched.
  void EnsureSlot(int slot);

  // Returns `slot` to its idle state: job_id == kIdleJob, horizons parked
  // at kHorizonNever, counts and segment anchor zeroed.
  void ResetSlot(int slot);

  int size() const { return static_cast<int>(job_id.size()); }

  // --- RM-owned identity and accounting columns ---------------------------
  std::vector<JobId> job_id;
  std::vector<SimTime> arrival;
  std::vector<int> request;
  std::vector<std::uint8_t> rigid;
  // Integral of allocated CPUs over wall time, in CPU-microseconds.
  std::vector<double> alloc_integral_us;

  // --- Application-owned dynamics columns ---------------------------------
  std::vector<int> alloc;
  std::vector<std::uint8_t> started;
  std::vector<std::uint8_t> finished;
  // Monotonic counter bumped whenever state that can move the next boundary
  // changes (allocation, force override, iteration completion, re-anchor).
  std::vector<std::uint64_t> change_epoch;
  // Earliest instant from which the job's dynamics are exactly linear until
  // its next boundary (thawed and warm); kHorizonNever while not elidable.
  // ElisionReady(now) == (ready_at[slot] <= now).
  std::vector<SimTime> ready_at;
  // Predicted next iteration-boundary instant under steady-state speed,
  // computed with exactly the arithmetic Integrate uses; kHorizonNever when
  // the job cannot progress.
  std::vector<SimTime> next_boundary;
  // Constant-speed segment anchor (see Application): while a segment is
  // live, progress at t is seg_progress + (t - seg_start) * seg_speed.
  std::vector<std::uint8_t> seg_valid;
  std::vector<SimTime> seg_start;
  std::vector<SimTime> seg_end;
  std::vector<double> seg_progress;
  std::vector<double> seg_speed;
};

}  // namespace pdpa

#endif  // SRC_SIM_HOT_STATE_H_
