#include "src/sim/simulation.h"

#include <utility>

#include "src/common/logging.h"

namespace pdpa {

Simulation::Simulation(Registry* registry)
    : registry_(registry != nullptr ? registry : &Registry::Default()),
      events_dispatched_(registry_->counter("sim.events_dispatched")),
      periodic_fires_(registry_->counter("sim.periodic_fires")) {}

Simulation::~Simulation() { ClearLogSimTime(); }

EventId Simulation::After(SimDuration delay, EventCallback callback) {
  PDPA_CHECK_GE(delay, 0);
  return events_.Schedule(now_ + delay, std::move(callback));
}

int Simulation::SchedulePeriodic(SimTime start, SimDuration period,
                                 std::function<void(SimTime)> callback) {
  PDPA_CHECK_GT(period, 0);
  const int handle = static_cast<int>(periodic_.size());
  periodic_.push_back(PeriodicTask{period, std::move(callback), true});
  periodic_.back().pending =
      events_.Schedule(start, [this, handle, start] { FirePeriodic(handle, start); });
  return handle;
}

void Simulation::StopPeriodic(int handle) {
  PDPA_CHECK_GE(handle, 0);
  PDPA_CHECK_LT(handle, static_cast<int>(periodic_.size()));
  periodic_[static_cast<std::size_t>(handle)].active = false;
}

void Simulation::CancelPeriodic(int handle) {
  PDPA_CHECK_GE(handle, 0);
  PDPA_CHECK_LT(handle, static_cast<int>(periodic_.size()));
  PeriodicTask& task = periodic_[static_cast<std::size_t>(handle)];
  task.active = false;
  if (task.pending != 0) {
    events_.Cancel(task.pending);
    task.pending = 0;
  }
}

void Simulation::FirePeriodic(int handle, SimTime when) {
  PeriodicTask& task = periodic_[static_cast<std::size_t>(handle)];
  task.pending = 0;
  if (!task.active) {
    return;
  }
  periodic_fires_->Increment();
  task.callback(when);
  if (task.active) {
    const SimTime next = when + task.period;
    task.pending = events_.Schedule(next, [this, handle, next] { FirePeriodic(handle, next); });
  }
}

void Simulation::Step() {
  PDPA_CHECK(!events_.empty()) << "Step() on an empty event queue";
  now_ = events_.NextTime();
  SetLogSimTimeUs(now_);
  events_dispatched_->Increment();
  events_.RunNext();
}

void Simulation::AdvanceTo(SimTime t) {
  PDPA_CHECK(events_.empty() || events_.NextTime() >= t)
      << "AdvanceTo() would skip pending events";
  PDPA_CHECK_GE(t, now_);
  now_ = t;
  SetLogSimTimeUs(now_);
}

void Simulation::Restore(SimTime now) {
  PDPA_CHECK(events_.empty()) << "Restore() on a simulation with pending events";
  PDPA_CHECK_GE(now, now_);
  now_ = now;
  SetLogSimTimeUs(now_);
}

SimTime Simulation::RunUntil(SimTime until) {
  stop_requested_ = false;
  while (!events_.empty() && !stop_requested_) {
    const SimTime next = events_.NextTime();
    if (next > until) {
      break;
    }
    // Advance the clock before dispatching so callbacks observing now() (and
    // scheduling relative work with After) see the event's own time.
    now_ = next;
    SetLogSimTimeUs(now_);
    events_dispatched_->Increment();
    events_.RunNext();
  }
  if (now_ < until && events_.empty()) {
    now_ = until;
  }
  return now_;
}

SimTime Simulation::RunToCompletion() {
  stop_requested_ = false;
  while (!events_.empty() && !stop_requested_) {
    now_ = events_.NextTime();
    SetLogSimTimeUs(now_);
    events_dispatched_->Increment();
    events_.RunNext();
  }
  return now_;
}

}  // namespace pdpa
