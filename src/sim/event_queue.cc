#include "src/sim/event_queue.h"

#include <utility>

#include "src/common/logging.h"

namespace pdpa {

namespace {

constexpr EventId MakeId(std::uint32_t slot, std::uint32_t generation) {
  return (static_cast<EventId>(generation) << 32) | slot;
}

}  // namespace

EventId EventQueue::Schedule(SimTime when, EventCallback callback) {
  ProfScope prof_scope(profiler_, SpanId::kSimEventPush);
  PDPA_CHECK_GE(when, last_popped_);
  std::uint32_t slot;
  if (free_slots_.empty()) {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
  }
  Slot& s = slots_[slot];
  s.callback = std::move(callback);
  heap_.push(Entry{when, next_seq_++, slot, s.generation});
  ++live_;
  return MakeId(slot, s.generation);
}

void EventQueue::Release(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.callback = nullptr;
  ++s.generation;
  free_slots_.push_back(slot);
}

bool EventQueue::Cancel(EventId id) {
  // Exact semantics: only events that are still pending can be cancelled;
  // cancelling an event that already ran (or was cancelled) returns false —
  // its slot's generation has moved on, so the id no longer matches.
  const std::uint32_t slot = static_cast<std::uint32_t>(id);
  const std::uint32_t generation = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slots_.size() || slots_[slot].generation != generation) {
    return false;
  }
  Release(slot);
  --live_;
  return true;
}

void EventQueue::SkipStale() {
  while (!heap_.empty() && !Pending(heap_.top())) {
    heap_.pop();
  }
}

SimTime EventQueue::NextTime() const {
  auto* self = const_cast<EventQueue*>(this);
  self->SkipStale();
  PDPA_CHECK(!heap_.empty());
  return heap_.top().when;
}

SimTime EventQueue::RunNext() {
  ProfScope prof_scope(profiler_, SpanId::kSimEventPop);
  SkipStale();
  PDPA_CHECK(!heap_.empty());
  const Entry entry = heap_.top();
  heap_.pop();
  // Move the callback out and release the slot before running: the callback
  // may schedule new events (possibly into this very slot).
  EventCallback callback = std::move(slots_[entry.slot].callback);
  Release(entry.slot);
  --live_;
  last_popped_ = entry.when;
  callback();
  return entry.when;
}

}  // namespace pdpa
