#include "src/sim/event_queue.h"

#include <utility>

#include "src/common/logging.h"

namespace pdpa {

EventId EventQueue::Schedule(SimTime when, EventCallback callback) {
  PDPA_CHECK_GE(when, last_popped_);
  const EventId id = next_id_++;
  heap_.push(Entry{when, id, std::move(callback)});
  live_.insert(id);
  return id;
}

bool EventQueue::Cancel(EventId id) {
  // Exact semantics: only events that are still pending can be cancelled;
  // cancelling an event that already ran (or was cancelled) returns false.
  return live_.erase(id) > 0;
}

void EventQueue::SkipCancelled() {
  while (!heap_.empty() && !live_.contains(heap_.top().id)) {
    heap_.pop();
  }
}

SimTime EventQueue::NextTime() const {
  auto* self = const_cast<EventQueue*>(this);
  self->SkipCancelled();
  PDPA_CHECK(!heap_.empty());
  return heap_.top().when;
}

SimTime EventQueue::RunNext() {
  SkipCancelled();
  PDPA_CHECK(!heap_.empty());
  // Move the entry out before running: the callback may schedule new events.
  Entry entry = heap_.top();
  heap_.pop();
  live_.erase(entry.id);
  last_popped_ = entry.when;
  entry.callback();
  return entry.when;
}

}  // namespace pdpa
