// Simulation driver: owns the clock and the event queue, and provides
// periodic-task plumbing (ticks, scheduler quanta).
#ifndef SRC_SIM_SIMULATION_H_
#define SRC_SIM_SIMULATION_H_

#include <functional>

#include "src/common/time_types.h"
#include "src/sim/event_queue.h"

namespace pdpa {

class Simulation {
 public:
  Simulation() = default;
  // Retires this simulation's clock from the log-line time prefix.
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime now() const { return now_; }
  EventQueue& events() { return events_; }

  // Schedules a one-shot callback `delay` from now.
  EventId After(SimDuration delay, EventCallback callback);

  // Schedules `callback(now)` every `period` starting at `start`. The task
  // keeps rescheduling itself until Stop() is called or the run ends.
  // Returns a handle usable with StopPeriodic.
  int SchedulePeriodic(SimTime start, SimDuration period, std::function<void(SimTime)> callback);
  void StopPeriodic(int handle);

  // Runs events until the queue is empty or the time of the next event
  // exceeds `until`. Returns the final simulation time (<= until).
  SimTime RunUntil(SimTime until);

  // Runs until the queue drains completely.
  SimTime RunToCompletion();

  // Requests that the run loop stop after the current event.
  void RequestStop() { stop_requested_ = true; }

 private:
  struct PeriodicTask {
    SimDuration period = 0;
    std::function<void(SimTime)> callback;
    bool active = false;
  };

  void FirePeriodic(int handle, SimTime when);

  SimTime now_ = 0;
  EventQueue events_;
  std::vector<PeriodicTask> periodic_;
  bool stop_requested_ = false;
};

}  // namespace pdpa

#endif  // SRC_SIM_SIMULATION_H_
