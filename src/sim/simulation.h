// Simulation driver: owns the clock and the event queue, and provides
// periodic-task plumbing (ticks, scheduler quanta).
#ifndef SRC_SIM_SIMULATION_H_
#define SRC_SIM_SIMULATION_H_

#include <functional>

#include "src/common/time_types.h"
#include "src/obs/counters.h"
#include "src/sim/event_queue.h"

namespace pdpa {

class Simulation {
 public:
  // `registry` is the per-run observability registry (borrowed); null means
  // the process-wide Registry::Default(). Every component of one simulated
  // stack resolves its instruments through registry(), which is what lets
  // the sweep engine run simulations concurrently with isolated counters.
  explicit Simulation(Registry* registry = nullptr);
  // Retires this simulation's clock from the log-line time prefix.
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime now() const { return now_; }
  EventQueue& events() { return events_; }
  Registry& registry() const { return *registry_; }

  // Schedules a one-shot callback `delay` from now.
  EventId After(SimDuration delay, EventCallback callback);

  // Schedules `callback(now)` every `period` starting at `start`. The task
  // keeps rescheduling itself until Stop() is called or the run ends.
  // Returns a handle usable with StopPeriodic.
  int SchedulePeriodic(SimTime start, SimDuration period, std::function<void(SimTime)> callback);
  void StopPeriodic(int handle);

  // Like StopPeriodic, but also cancels the task's pending chain event so no
  // dead event lingers in the queue. A fully cancelled periodic leaves the
  // queue state exactly as if the task had never rescheduled — required by
  // the cluster engine, which parks idle node simulations and asserts their
  // queues empty before warping the clock with AdvanceTo.
  void CancelPeriodic(int handle);

  // Runs events until the queue is empty, RequestStop() is called, or the
  // next event lies beyond `until`. Returns the final simulation time.
  //
  // Contract: now() advances to exactly `until` only when the queue drained
  // completely. When the loop stops because the next pending event is later
  // than `until`, or because RequestStop() fired, now() stays at the time of
  // the last dispatched event — which may be strictly less than `until`. In
  // particular a periodic task with period P leaves now() at its last firing
  // <= until (the next instance straddles the horizon and stays queued), so
  // callers must not assume now() == until while events remain pending.
  SimTime RunUntil(SimTime until);

  // Runs until the queue drains completely.
  SimTime RunToCompletion();

  // Dispatches exactly the next pending event (the queue must be non-empty),
  // advancing now() to its time first. The cluster shard loop uses this to
  // interleave many node simulations one event at a time in a global
  // (time, node) order.
  void Step();

  // Warps the clock forward to `t` without dispatching anything. Requires
  // t >= now() and that no pending event would be skipped (queue empty or
  // next event at or after `t`). Used to wake parked node simulations at a
  // job-arrival time and to catch a lagging node clock up to a cluster
  // placement instant.
  void AdvanceTo(SimTime t);

  // Requests that the run loop stop after the current event.
  void RequestStop() { stop_requested_ = true; }

  // Shared-prefix forking support. Snapshot() reads the clock of a quiesced
  // simulation; Restore() stamps that clock onto a *fresh* simulation whose
  // components will be reconstructed from their own resume state. Restore
  // deliberately requires an empty event queue: closures cannot be copied
  // across simulations, so components re-schedule themselves after the clock
  // is restored (QueuingSystem::Start, ResourceManager::StartResumed).
  SimTime Snapshot() const { return now_; }
  void Restore(SimTime now);

 private:
  struct PeriodicTask {
    SimDuration period = 0;
    std::function<void(SimTime)> callback;
    bool active = false;
    // The queued chain event for the next firing, so CancelPeriodic can
    // remove it instead of leaving a dead no-op event in the queue. Zero is
    // never a minted EventId (generations start at 1).
    EventId pending = 0;
  };

  void FirePeriodic(int handle, SimTime when);

  SimTime now_ = 0;
  EventQueue events_;
  std::vector<PeriodicTask> periodic_;
  bool stop_requested_ = false;

  Registry* registry_;
  Counter* events_dispatched_;
  Counter* periodic_fires_;
};

}  // namespace pdpa

#endif  // SRC_SIM_SIMULATION_H_
