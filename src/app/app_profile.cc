#include "src/app/app_profile.h"

#include "src/common/logging.h"

namespace pdpa {

const char* AppClassName(AppClass app_class) {
  switch (app_class) {
    case AppClass::kSwim:
      return "swim";
    case AppClass::kBt:
      return "bt.A";
    case AppClass::kHydro2d:
      return "hydro2d";
    case AppClass::kApsi:
      return "apsi";
  }
  return "?";
}

double AppProfile::IdealExecSeconds(double p) const {
  PDPA_CHECK_GT(p, 0.0);
  return sequential_work_s / speedup->SpeedupAt(p);
}

double AppProfile::CpuDemandAtRequest() const {
  return IdealExecSeconds(default_request) * default_request;
}

AppProfile MakeSwimProfile() {
  AppProfile profile;
  profile.name = "swim";
  profile.app_class = AppClass::kSwim;
  // Superlinear between 8 and 16 CPUs (cache-fitting working set), still
  // above-linear beyond but with a poor *relative* speedup — the case the
  // paper uses to motivate the RelativeSpeedup test.
  profile.speedup = std::make_shared<TableSpeedup>(std::vector<std::pair<double, double>>{
      {1, 1.0},
      {2, 2.1},
      {4, 4.6},
      {8, 10.0},
      {12, 16.5},
      {16, 23.0},
      {20, 25.5},
      {24, 27.5},
      {30, 29.5},
      {32, 30.0},
  });
  profile.sequential_work_s = 900.0;
  profile.iterations = 80;
  profile.default_request = 30;
  profile.baseline_procs = 4;
  return profile;
}

AppProfile MakeBtProfile() {
  AppProfile profile;
  profile.name = "bt.A";
  profile.app_class = AppClass::kBt;
  // Good, progressive scalability: efficiency ~0.88 at 20 CPUs and 0.70 at
  // 30 CPUs. The 12->16->20 segment keeps the relative speedup above the
  // high_eff-discounted ideal so PDPA's INC search climbs to 20 and stops
  // there, where the paper's PDPA lands bt.
  profile.speedup = std::make_shared<TableSpeedup>(std::vector<std::pair<double, double>>{
      {1, 1.0},
      {2, 1.95},
      {4, 3.85},
      {8, 7.6},
      {12, 11.2},
      {16, 14.8},
      {20, 17.6},
      {24, 19.4},
      {30, 21.0},
      {32, 21.6},
  });
  profile.sequential_work_s = 1800.0;
  profile.iterations = 100;
  profile.default_request = 30;
  profile.baseline_procs = 4;
  return profile;
}

AppProfile MakeHydro2dProfile() {
  AppProfile profile;
  profile.name = "hydro2d";
  profile.app_class = AppClass::kHydro2d;
  // Medium scalability: saturates around 10-12 CPUs.
  profile.speedup = std::make_shared<TableSpeedup>(std::vector<std::pair<double, double>>{
      {1, 1.0},
      {2, 1.9},
      {4, 3.5},
      {6, 4.9},
      {8, 6.1},
      {10, 7.0},
      {12, 7.7},
      {16, 8.6},
      {20, 9.1},
      {30, 9.5},
  });
  profile.sequential_work_s = 300.0;
  profile.iterations = 80;
  profile.default_request = 30;
  profile.baseline_procs = 4;
  return profile;
}

AppProfile MakeApsiProfile() {
  AppProfile profile;
  profile.name = "apsi";
  profile.app_class = AppClass::kApsi;
  // Essentially no scaling: a second CPU buys 25%, everything beyond is flat.
  profile.speedup = std::make_shared<TableSpeedup>(std::vector<std::pair<double, double>>{
      {1, 1.0},
      {2, 1.25},
      {4, 1.35},
      {8, 1.40},
      {16, 1.42},
      {30, 1.40},
      {32, 1.40},
  });
  profile.sequential_work_s = 135.0;
  profile.iterations = 50;
  // Tuned request: the paper submits apsi asking for 2 CPUs because of its
  // poor scalability; the "untuned" experiments override this to 30.
  profile.default_request = 2;
  profile.baseline_procs = 1;
  return profile;
}

AppProfileBuilder::AppProfileBuilder(std::string name) {
  profile_.name = std::move(name);
  profile_.speedup = std::make_shared<AmdahlSpeedup>(0.95);
  profile_.sequential_work_s = 60.0;
  profile_.iterations = 50;
  profile_.default_request = 8;
  profile_.baseline_procs = 1;
}

AppProfileBuilder& AppProfileBuilder::WithAmdahl(double parallel_fraction) {
  profile_.speedup = std::make_shared<AmdahlSpeedup>(parallel_fraction);
  return *this;
}

AppProfileBuilder& AppProfileBuilder::WithCurve(
    std::vector<std::pair<double, double>> points) {
  profile_.speedup = std::make_shared<TableSpeedup>(std::move(points));
  return *this;
}

AppProfileBuilder& AppProfileBuilder::WithSaturating(double knee, double max_speedup) {
  profile_.speedup = std::shared_ptr<const SpeedupModel>(
      MakeSaturatingSpeedup(knee, max_speedup).release());
  return *this;
}

AppProfileBuilder& AppProfileBuilder::WithWork(double sequential_seconds) {
  PDPA_CHECK_GT(sequential_seconds, 0.0);
  profile_.sequential_work_s = sequential_seconds;
  return *this;
}

AppProfileBuilder& AppProfileBuilder::WithIterations(int iterations) {
  PDPA_CHECK_GE(iterations, 1);
  profile_.iterations = iterations;
  return *this;
}

AppProfileBuilder& AppProfileBuilder::WithRequest(int request) {
  PDPA_CHECK_GE(request, 1);
  profile_.default_request = request;
  return *this;
}

AppProfileBuilder& AppProfileBuilder::WithBaselineProcs(int baseline_procs) {
  PDPA_CHECK_GE(baseline_procs, 1);
  profile_.baseline_procs = baseline_procs;
  return *this;
}

AppProfile AppProfileBuilder::Build() const { return profile_; }

AppProfile MakeProfile(AppClass app_class) { return CachedProfile(app_class); }

const AppProfile& CachedProfile(AppClass app_class) {
  // Magic statics: each profile is built once, on first use, thread-safely.
  // The profiles are immutable and the speedup models are shared_ptr<const>,
  // so handing out one instance process-wide is safe.
  switch (app_class) {
    case AppClass::kSwim: {
      static const AppProfile profile = MakeSwimProfile();
      return profile;
    }
    case AppClass::kBt: {
      static const AppProfile profile = MakeBtProfile();
      return profile;
    }
    case AppClass::kHydro2d: {
      static const AppProfile profile = MakeHydro2dProfile();
      return profile;
    }
    case AppClass::kApsi: {
      static const AppProfile profile = MakeApsiProfile();
      return profile;
    }
  }
  PDPA_CHECK(false) << "unknown app class";
  static const AppProfile kEmpty{};
  return kEmpty;
}

}  // namespace pdpa
