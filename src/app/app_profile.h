// Application catalog: the four workload applications from the paper.
//
// swim (SpecFP95)    — superlinear speedup in the 8..16 CPU range
// bt.A (NAS PB)      — good scalability
// hydro2d (SpecFP95) — medium scalability
// apsi (SpecFP95)    — does not scale at all
//
// The curves are digitized from Fig. 3 of the paper; the sequential work
// sizes are calibrated so tuned execution times land in the same range the
// paper reports (tens to ~100 seconds).
#ifndef SRC_APP_APP_PROFILE_H_
#define SRC_APP_APP_PROFILE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/app/speedup_model.h"
#include "src/common/time_types.h"

namespace pdpa {

enum class AppClass : int {
  kSwim = 0,
  kBt = 1,
  kHydro2d = 2,
  kApsi = 3,
};

inline constexpr int kNumAppClasses = 4;

const char* AppClassName(AppClass app_class);

// Immutable description of an application type. Shared between all job
// instances of that type within a workload.
struct AppProfile {
  std::string name;
  AppClass app_class = AppClass::kSwim;

  std::shared_ptr<const SpeedupModel> speedup;

  // Total work in sequential-equivalent seconds: execution time on one CPU.
  double sequential_work_s = 0.0;

  // Number of iterations of the outer (iterative parallel region) loop.
  int iterations = 1;

  // Default number of processors the user requests (OMP_NUM_THREADS).
  int default_request = 30;

  // Processors the SelfAnalyzer uses for the baseline measurement.
  int baseline_procs = 4;

  // Execution time with p processors, ignoring scheduling effects.
  double IdealExecSeconds(double p) const;

  // CPU demand (processor-seconds) when run with its default request; used
  // by the workload generator to hit a target machine load.
  double CpuDemandAtRequest() const;
};

// Factory functions for the paper's applications.
AppProfile MakeSwimProfile();
AppProfile MakeBtProfile();
AppProfile MakeHydro2dProfile();
AppProfile MakeApsiProfile();
AppProfile MakeProfile(AppClass app_class);

// Process-wide immutable instance of MakeProfile(app_class), built once on
// first use (thread-safe). Hot paths that need the profile per job start —
// the queuing system starts every job with one — should take this reference
// instead of re-materializing the profile (the curve tables allocate).
const AppProfile& CachedProfile(AppClass app_class);

// Builder for synthetic profiles, used by tests, examples and user code to
// model applications outside the paper's catalog.
class AppProfileBuilder {
 public:
  explicit AppProfileBuilder(std::string name);

  AppProfileBuilder& WithAmdahl(double parallel_fraction);
  AppProfileBuilder& WithCurve(std::vector<std::pair<double, double>> points);
  AppProfileBuilder& WithSaturating(double knee, double max_speedup);
  AppProfileBuilder& WithWork(double sequential_seconds);
  AppProfileBuilder& WithIterations(int iterations);
  AppProfileBuilder& WithRequest(int request);
  AppProfileBuilder& WithBaselineProcs(int baseline_procs);

  AppProfile Build() const;

 private:
  AppProfile profile_;
};

}  // namespace pdpa

#endif  // SRC_APP_APP_PROFILE_H_
