#include "src/app/speedup_model.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/common/strings.h"

namespace pdpa {

double SpeedupModel::EfficiencyAt(double p) const {
  if (p <= 0.0) {
    return 1.0;
  }
  return SpeedupAt(p) / p;
}

AmdahlSpeedup::AmdahlSpeedup(double parallel_fraction) : parallel_fraction_(parallel_fraction) {
  PDPA_CHECK_GE(parallel_fraction, 0.0);
  PDPA_CHECK_LE(parallel_fraction, 1.0);
}

double AmdahlSpeedup::SpeedupAt(double p) const {
  if (p <= 0.0) {
    return 0.0;
  }
  const double serial = 1.0 - parallel_fraction_;
  return 1.0 / (serial + parallel_fraction_ / p);
}

std::string AmdahlSpeedup::DebugString() const {
  return StrFormat("Amdahl(f=%.3f)", parallel_fraction_);
}

TableSpeedup::TableSpeedup(std::vector<std::pair<double, double>> points)
    : points_(std::move(points)) {
  PDPA_CHECK(!points_.empty());
  for (std::size_t i = 1; i < points_.size(); ++i) {
    PDPA_CHECK_GT(points_[i].first, points_[i - 1].first) << "points must be sorted by p";
  }
  if (points_.front().first > 0.0) {
    points_.insert(points_.begin(), {0.0, 0.0});
  }
}

double TableSpeedup::SpeedupAt(double p) const {
  if (p <= 0.0) {
    return 0.0;
  }
  if (p >= points_.back().first) {
    return points_.back().second;
  }
  // Binary search for the segment containing p.
  const auto it = std::upper_bound(
      points_.begin(), points_.end(), p,
      [](double value, const std::pair<double, double>& pt) { return value < pt.first; });
  PDPA_CHECK(it != points_.begin());
  PDPA_CHECK(it != points_.end());
  const auto& [p1, s1] = *(it - 1);
  const auto& [p2, s2] = *it;
  const double frac = (p - p1) / (p2 - p1);
  return s1 + frac * (s2 - s1);
}

std::string TableSpeedup::DebugString() const {
  std::string out = "Table(";
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (i > 0) {
      out += " ";
    }
    out += StrFormat("%.3g:%.3g", points_[i].first, points_[i].second);
  }
  out += ")";
  return out;
}

std::unique_ptr<SpeedupModel> MakeSaturatingSpeedup(double knee, double max_speedup) {
  PDPA_CHECK_GT(knee, 0.0);
  PDPA_CHECK_GE(max_speedup, knee);
  std::vector<std::pair<double, double>> points;
  points.emplace_back(1.0, 1.0);
  // Linear ramp to the knee, then geometric saturation toward max_speedup.
  if (knee > 1.0) {
    points.emplace_back(knee, knee);
  }
  double s = knee;
  double p = knee;
  for (int i = 0; i < 6; ++i) {
    p *= 2.0;
    s = max_speedup - (max_speedup - s) * 0.5;
    points.emplace_back(p, s);
  }
  return std::make_unique<TableSpeedup>(std::move(points));
}

}  // namespace pdpa
