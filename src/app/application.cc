#include "src/app/application.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace pdpa {
namespace {

// The first-order warmup ramp only converges asymptotically; after this many
// time constants the residual gap (e^-5 ≈ 6.7e-3 of the original) is snapped
// to zero so the application reaches an exactly-constant speed. Without the
// snap no run would ever become elidable (see ResourceManager).
constexpr int kWarmupSettleMultiple = 5;

}  // namespace

Application::Application(JobId id, AppProfile profile, AppCosts costs, HotStateArena* hot,
                         int slot)
    : id_(id), profile_(std::move(profile)), costs_(costs), request_(profile_.default_request) {
  PDPA_CHECK_GT(profile_.sequential_work_s, 0.0);
  PDPA_CHECK_GT(profile_.iterations, 0);
  work_per_iter_s_ = profile_.sequential_work_s / profile_.iterations;
  if (hot == nullptr) {
    own_arena_ = std::make_unique<HotStateArena>();
    hot_ = own_arena_.get();
    slot_ = 0;
  } else {
    hot_ = hot;
    slot_ = static_cast<std::size_t>(slot);
  }
  hot_->EnsureSlot(static_cast<int>(slot_));
  // Reset this slot's dynamics columns (a reused slot may hold the previous
  // tenant's values); the identity columns belong to the arena owner.
  HotStateArena& h = *hot_;
  h.alloc[slot_] = 0;
  h.started[slot_] = 0;
  h.finished[slot_] = 0;
  h.change_epoch[slot_] = 0;
  h.ready_at[slot_] = kHorizonNever;
  h.next_boundary[slot_] = kHorizonNever;
  h.seg_valid[slot_] = 0;
  h.seg_start[slot_] = 0;
  h.seg_end[slot_] = 0;
  h.seg_progress[slot_] = 0.0;
  h.seg_speed[slot_] = 0.0;
}

void Application::Start(SimTime now) {
  HotStateArena& h = *hot_;
  PDPA_CHECK(!h.started[slot_]);
  PDPA_CHECK_GT(h.alloc[slot_], 0) << "job " << id_ << " started without processors";
  h.started[slot_] = 1;
  iter_start_wall_ = now;
  iter_clean_ = true;
  warm_procs_ = static_cast<double>(EffectiveProcs());
  warm_until_ = now;
  ++h.change_epoch[slot_];
  PublishHot(now);
}

void Application::SetAllocation(int procs, SimTime now) {
  PDPA_CHECK_GE(procs, 0);
  HotStateArena& h = *hot_;
  if (procs == h.alloc[slot_]) {
    return;
  }
  const bool started = h.started[slot_] != 0;
  const int old_effective = started ? EffectiveProcs() : 0;
  h.alloc[slot_] = procs;
  if (!started) {
    return;
  }
  const int new_effective = EffectiveProcs();
  if (new_effective == old_effective) {
    return;
  }
  // Team re-formation: freeze briefly and restart the warmup ramp; taint the
  // current iteration's measurement.
  frozen_until_ = std::max(frozen_until_, now + costs_.reconfig_freeze);
  if (new_effective < old_effective) {
    // Shrinking gives no locality debt: remaining CPUs are already warm.
    warm_procs_ = std::min(warm_procs_, static_cast<double>(new_effective));
  }
  if (warm_procs_ != static_cast<double>(new_effective)) {
    warm_until_ = now + kWarmupSettleMultiple * costs_.warmup;
  }
  iter_clean_ = false;
  ++h.change_epoch[slot_];
  PublishHot(now);
}

void Application::ForceProcs(int procs, SimTime now) {
  PDPA_CHECK_GE(procs, 0);
  if (procs == forced_procs_) {
    return;
  }
  HotStateArena& h = *hot_;
  const bool started = h.started[slot_] != 0;
  const int old_effective = started ? EffectiveProcs() : 0;
  forced_procs_ = procs;
  if (!started) {
    return;
  }
  const int new_effective = EffectiveProcs();
  if (new_effective != old_effective) {
    frozen_until_ = std::max(frozen_until_, now + costs_.reconfig_freeze);
    if (new_effective < old_effective) {
      warm_procs_ = std::min(warm_procs_, static_cast<double>(new_effective));
    }
    if (warm_procs_ != static_cast<double>(new_effective)) {
      warm_until_ = now + kWarmupSettleMultiple * costs_.warmup;
    }
    iter_clean_ = false;
    ++h.change_epoch[slot_];
    PublishHot(now);
  }
}

int Application::EffectiveProcs() const {
  const int alloc = hot_->alloc[slot_];
  if (forced_procs_ > 0) {
    return std::min(alloc, forced_procs_);
  }
  return alloc;
}

double Application::SpeedAt(double p_eff) const {
  if (rigid_) {
    // Folded rigid execution: `request_` processes share p_eff CPUs. The
    // application's parallel structure is that of `request_` processes; the
    // CPUs bound the rate, with a folding overhead when oversubscribed.
    const double fold = std::min(1.0, p_eff / std::max(1, request_));
    const double overhead = fold < 1.0 ? costs_.folding_overhead : 1.0;
    return profile_.speedup->SpeedupAt(std::max(1, request_)) * fold * overhead;
  }
  return profile_.speedup->SpeedupAt(std::max(1.0, p_eff));
}

double Application::SteadySpeed() const {
  const int procs = EffectiveProcs();
  if (procs <= 0) {
    return 0.0;
  }
  return SpeedAt(static_cast<double>(procs));
}

void Application::Advance(SimTime now, SimDuration dt) {
  HotStateArena& h = *hot_;
  if (!h.started[slot_] || h.finished[slot_] || dt <= 0) {
    return;
  }
  const int procs = EffectiveProcs();
  if (procs <= 0) {
    return;
  }
  // Warmup ramp: move warm_procs_ toward the target with time constant
  // costs_.warmup (first-order). Integrated over the tick as the midpoint
  // value to stay stable for large ticks. Once the settle deadline passes,
  // warm_procs_ snaps to the target and the speed becomes exactly constant.
  const double target = static_cast<double>(procs);
  double p_eff = target;
  if (costs_.warmup > 0) {
    if (warm_procs_ != target && now >= warm_until_) {
      warm_procs_ = target;
      ++h.change_epoch[slot_];
    }
    if (warm_procs_ != target) {
      const double k = std::min(1.0, static_cast<double>(dt) / static_cast<double>(costs_.warmup));
      const double warm = warm_procs_ + (target - warm_procs_) * k;
      p_eff = 0.5 * (warm_procs_ + warm);
      warm_procs_ = warm;
    }
  } else {
    warm_procs_ = target;
  }
  Integrate(now, dt, SpeedAt(p_eff), procs);
  PublishHot(now + dt);
}

void Application::AdvanceTimeShared(SimTime now, SimDuration dt, double effective_procs,
                                    double overhead_factor) {
  HotStateArena& h = *hot_;
  if (!h.started[slot_] || h.finished[slot_] || dt <= 0) {
    return;
  }
  PDPA_CHECK_GT(overhead_factor, 0.0);
  PDPA_CHECK_LE(overhead_factor, 1.0);
  const double p = std::max(0.0, effective_procs);
  if (p <= 0.0) {
    return;
  }
  const double speed = profile_.speedup->SpeedupAt(std::max(1.0, p)) * overhead_factor;
  Integrate(now, dt, speed, static_cast<int>(std::lround(std::max(1.0, p))));
  PublishHot(now + dt);
}

bool Application::ElisionReady(SimTime now) const {
  const HotStateArena& h = *hot_;
  if (!h.started[slot_] || h.finished[slot_]) {
    return false;
  }
  if (frozen_until_ > now) {
    return false;
  }
  if (costs_.warmup > 0 && warm_procs_ != static_cast<double>(EffectiveProcs())) {
    return false;
  }
  return true;
}

SimTime Application::NextBoundaryTime(SimTime now) const { return BoundaryTimeAhead(1, now); }

SimTime Application::BoundaryTimeAhead(int iterations_ahead, SimTime now) const {
  const HotStateArena& h = *hot_;
  const double speed = SteadySpeed();
  if (speed <= 0.0 || h.finished[slot_]) {
    return kHorizonNever;
  }
  // Select the anchor exactly like Integrate will: continue the live segment
  // when it abuts `now` at the same speed, else start a fresh one here. The
  // boundary value is the same `work_per_iter_s_ * index` double Integrate
  // crosses, so a coarse span reproduces the fine-tick instant bit for bit
  // for *every* boundary on the steady segment, not just the next one.
  SimTime anchor_t = now;
  double anchor_p = progress_s_;
  if (h.seg_valid[slot_] && h.seg_speed[slot_] == speed && h.seg_end[slot_] == now) {
    anchor_t = h.seg_start[slot_];
    anchor_p = h.seg_progress[slot_];
  }
  const double boundary = work_per_iter_s_ * (completed_iterations_ + iterations_ahead);
  return anchor_t + SecondsToTime((boundary - anchor_p) / speed);
}

void Application::PublishHot(SimTime now) {
  HotStateArena& h = *hot_;
  if (!h.started[slot_] || h.finished[slot_]) {
    h.ready_at[slot_] = kHorizonNever;
    h.next_boundary[slot_] = kHorizonNever;
    return;
  }
  // ready_at: the thaw instant once the warmup ramp has converged, else
  // never. The ramp's snap-to-target happens only inside Advance, so a
  // mid-ramp job must keep reading "not ready" even past warm_until_ — the
  // next fine tick performs the snap and republishes.
  if (costs_.warmup > 0 && warm_procs_ != static_cast<double>(EffectiveProcs())) {
    h.ready_at[slot_] = kHorizonNever;
  } else {
    h.ready_at[slot_] = frozen_until_;
  }
  h.next_boundary[slot_] = NextBoundaryTime(now);
}

void Application::Integrate(SimTime now, SimDuration dt, double speed, int procs_label) {
  HotStateArena& h = *hot_;
  SimTime t = now;
  const SimTime end = now + dt;

  // Consume the reconfiguration freeze first. A freeze breaks the segment:
  // whatever follows starts a fresh anchor at the thaw.
  if (frozen_until_ > t) {
    const SimTime thaw = std::min(frozen_until_, end);
    t = thaw;
    h.seg_valid[slot_] = 0;
    if (t >= end) {
      return;
    }
  }
  if (speed <= 0.0) {
    h.seg_valid[slot_] = 0;
    return;
  }

  // Continue the live constant-speed segment when this span abuts it; else
  // anchor a new segment at (t, progress).
  if (!h.seg_valid[slot_] || h.seg_speed[slot_] != speed || h.seg_end[slot_] != t) {
    h.seg_valid[slot_] = 1;
    h.seg_start[slot_] = t;
    h.seg_end[slot_] = t;
    h.seg_progress[slot_] = progress_s_;
    h.seg_speed[slot_] = speed;
    ++h.change_epoch[slot_];
  }

  while (!h.finished[slot_]) {
    const double next_boundary = work_per_iter_s_ * (completed_iterations_ + 1);
    // Boundary instant measured from the segment anchor — the same value no
    // matter how the segment was chopped into Advance spans. The anchor is
    // NOT moved at crossings: every boundary of the segment is computed from
    // the segment start, so the microsecond rounding of one boundary never
    // accumulates into the next (each is within half a microsecond of the
    // continuous-time instant).
    const SimTime boundary_at =
        h.seg_start[slot_] + SecondsToTime((next_boundary - h.seg_progress[slot_]) / speed);
    if (boundary_at > end) {
      break;
    }
    progress_s_ = next_boundary;
    FinishIteration(boundary_at, procs_label);
    if (completed_iterations_ >= profile_.iterations) {
      h.finished[slot_] = 1;
      finish_time_ = boundary_at;
    }
  }
  if (!h.finished[slot_]) {
    // Anchor-relative progress; the clamp keeps a boundary whose instant
    // rounded down to `end` from regressing progress below completed work.
    progress_s_ =
        std::max(h.seg_progress[slot_] + TimeToSeconds(end - h.seg_start[slot_]) * speed,
                 work_per_iter_s_ * completed_iterations_);
  }
  h.seg_end[slot_] = end;
}

void Application::FinishIteration(SimTime when, int procs_label) {
  IterationRecord record;
  record.index = completed_iterations_;
  record.end_time = when;
  record.wall_time = when - iter_start_wall_;
  record.procs = procs_label;
  record.clean = iter_clean_;
  ++completed_iterations_;
  iter_start_wall_ = when;
  iter_clean_ = true;
  ++hot_->change_epoch[slot_];
  if (on_iteration_) {
    on_iteration_(record);
  }
}

}  // namespace pdpa
