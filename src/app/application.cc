#include "src/app/application.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace pdpa {

Application::Application(JobId id, AppProfile profile, AppCosts costs)
    : id_(id), profile_(std::move(profile)), costs_(costs), request_(profile_.default_request) {
  PDPA_CHECK_GT(profile_.sequential_work_s, 0.0);
  PDPA_CHECK_GT(profile_.iterations, 0);
  work_per_iter_s_ = profile_.sequential_work_s / profile_.iterations;
}

void Application::Start(SimTime now) {
  PDPA_CHECK(!started_);
  PDPA_CHECK_GT(allocated_, 0) << "job " << id_ << " started without processors";
  started_ = true;
  iter_start_wall_ = now;
  iter_clean_ = true;
  warm_procs_ = static_cast<double>(EffectiveProcs());
}

void Application::SetAllocation(int procs, SimTime now) {
  PDPA_CHECK_GE(procs, 0);
  if (procs == allocated_) {
    return;
  }
  const int old_effective = started_ ? EffectiveProcs() : 0;
  allocated_ = procs;
  if (!started_) {
    return;
  }
  const int new_effective = EffectiveProcs();
  if (new_effective == old_effective) {
    return;
  }
  // Team re-formation: freeze briefly and restart the warmup ramp; taint the
  // current iteration's measurement.
  frozen_until_ = std::max(frozen_until_, now + costs_.reconfig_freeze);
  if (new_effective < old_effective) {
    // Shrinking gives no locality debt: remaining CPUs are already warm.
    warm_procs_ = std::min(warm_procs_, static_cast<double>(new_effective));
  }
  iter_clean_ = false;
}

void Application::ForceProcs(int procs, SimTime now) {
  PDPA_CHECK_GE(procs, 0);
  if (procs == forced_procs_) {
    return;
  }
  const int old_effective = started_ ? EffectiveProcs() : 0;
  forced_procs_ = procs;
  if (!started_) {
    return;
  }
  const int new_effective = EffectiveProcs();
  if (new_effective != old_effective) {
    frozen_until_ = std::max(frozen_until_, now + costs_.reconfig_freeze);
    if (new_effective < old_effective) {
      warm_procs_ = std::min(warm_procs_, static_cast<double>(new_effective));
    }
    iter_clean_ = false;
  }
}

int Application::EffectiveProcs() const {
  if (forced_procs_ > 0) {
    return std::min(allocated_, forced_procs_);
  }
  return allocated_;
}

void Application::Advance(SimTime now, SimDuration dt) {
  if (!started_ || finished_ || dt <= 0) {
    return;
  }
  const int procs = EffectiveProcs();
  if (procs <= 0) {
    return;
  }
  // Warmup ramp: move warm_procs_ toward the target with time constant
  // costs_.warmup (first-order). Integrated over the tick as the midpoint
  // value to stay stable for large ticks.
  const double target = static_cast<double>(procs);
  double p_eff = target;
  if (costs_.warmup > 0) {
    const double k = std::min(1.0, static_cast<double>(dt) / static_cast<double>(costs_.warmup));
    const double warm = warm_procs_ + (target - warm_procs_) * k;
    p_eff = 0.5 * (warm_procs_ + warm);
    warm_procs_ = warm;
  } else {
    warm_procs_ = target;
  }

  double speed = 0.0;
  if (rigid_) {
    // Folded rigid execution: `request_` processes share p_eff CPUs. The
    // application's parallel structure is that of `request_` processes; the
    // CPUs bound the rate, with a folding overhead when oversubscribed.
    const double fold = std::min(1.0, p_eff / std::max(1, request_));
    const double overhead = fold < 1.0 ? costs_.folding_overhead : 1.0;
    speed = profile_.speedup->SpeedupAt(std::max(1, request_)) * fold * overhead;
  } else {
    speed = profile_.speedup->SpeedupAt(std::max(1.0, p_eff));
  }
  Integrate(now, dt, speed, procs);
}

void Application::AdvanceTimeShared(SimTime now, SimDuration dt, double effective_procs,
                                    double overhead_factor) {
  if (!started_ || finished_ || dt <= 0) {
    return;
  }
  PDPA_CHECK_GT(overhead_factor, 0.0);
  PDPA_CHECK_LE(overhead_factor, 1.0);
  const double p = std::max(0.0, effective_procs);
  if (p <= 0.0) {
    return;
  }
  const double speed = profile_.speedup->SpeedupAt(std::max(1.0, p)) * overhead_factor;
  Integrate(now, dt, speed, static_cast<int>(std::lround(std::max(1.0, p))));
}

void Application::Integrate(SimTime now, SimDuration dt, double speed, int procs_label) {
  SimTime t = now;
  SimTime end = now + dt;

  // Consume the reconfiguration freeze first.
  if (frozen_until_ > t) {
    const SimTime thaw = std::min(frozen_until_, end);
    t = thaw;
    if (t >= end) {
      return;
    }
  }
  if (speed <= 0.0) {
    return;
  }

  double remaining_dt_s = TimeToSeconds(end - t);
  while (remaining_dt_s > 0.0 && !finished_) {
    const double next_boundary = work_per_iter_s_ * (completed_iterations_ + 1);
    const double work_to_boundary = next_boundary - progress_s_;
    const double time_to_boundary_s = work_to_boundary / speed;
    if (time_to_boundary_s > remaining_dt_s) {
      progress_s_ += remaining_dt_s * speed;
      break;
    }
    // Cross the iteration boundary at the exact sub-tick instant.
    progress_s_ = next_boundary;
    remaining_dt_s -= time_to_boundary_s;
    t += SecondsToTime(time_to_boundary_s);
    FinishIteration(t, procs_label);
    if (completed_iterations_ >= profile_.iterations) {
      finished_ = true;
      finish_time_ = t;
    }
  }
}

void Application::FinishIteration(SimTime when, int procs_label) {
  IterationRecord record;
  record.index = completed_iterations_;
  record.end_time = when;
  record.wall_time = when - iter_start_wall_;
  record.procs = procs_label;
  record.clean = iter_clean_;
  ++completed_iterations_;
  iter_start_wall_ = when;
  iter_clean_ = true;
  if (on_iteration_) {
    on_iteration_(record);
  }
}

}  // namespace pdpa
