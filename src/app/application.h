// Simulated malleable iterative parallel application.
//
// The application executes `iterations` iterations of an outer loop (the
// "iterative parallel region" the SelfAnalyzer exploits). Progress is
// measured in sequential-equivalent seconds and advances at SpeedupAt(p)
// seconds per wall-second on p processors. Two costs make reallocation
// non-free, as the paper stresses:
//   * a reconfiguration freeze while the runtime re-forms the thread team;
//   * a locality warmup: newly gained CPUs contribute gradually (cache and
//     page migration on the CC-NUMA machine).
//
// Integration is *segment-anchored*: progress within a maximal span of
// constant speed is always computed from the span's start point with one
// multiplication, never by accumulating per-call increments. This makes the
// trajectory a pure function of the segment boundaries, so advancing a
// steady-state span in one call or in many produces bit-identical progress,
// boundary instants, and finish times — the linearity fact the resource
// manager's event-horizon tick elision relies on.
#ifndef SRC_APP_APPLICATION_H_
#define SRC_APP_APPLICATION_H_

#include <cstdint>
#include <functional>
#include <limits>

#include "src/app/app_profile.h"
#include "src/common/ids.h"
#include "src/common/time_types.h"

namespace pdpa {

// Costs of malleability. Defaults model an OpenMP runtime re-forming teams
// between parallel regions on a CC-NUMA machine.
struct AppCosts {
  // Wall time during which the application makes no progress after an
  // allocation change.
  SimDuration reconfig_freeze = 30 * kMillisecond;
  // Time constant of the locality warmup ramp for the effective processor
  // count after a change.
  SimDuration warmup = 400 * kMillisecond;
  // Multiplicative efficiency of a folded rigid application (context
  // switching between its processes on shared CPUs).
  double folding_overhead = 0.85;
};

// Sentinel returned by NextBoundaryTime when the application has no
// forthcoming iteration boundary (zero speed). Far enough in the future to
// survive additions of grid periods without overflow.
inline constexpr SimTime kHorizonNever = std::numeric_limits<SimTime>::max() / 4;

// One completed iteration of the outer loop, as observable by the runtime.
struct IterationRecord {
  int index = 0;
  // Exact (sub-tick) completion instant of the iteration.
  SimTime end_time = 0;
  SimDuration wall_time = 0;
  // Processor count in effect when the iteration completed.
  int procs = 0;
  // True when the effective processor count was constant for the whole
  // iteration (no reallocation, no baseline switch, no freeze).
  bool clean = false;
};

class Application {
 public:
  using IterationCallback = std::function<void(const IterationRecord&)>;

  Application(JobId id, AppProfile profile, AppCosts costs = AppCosts{});

  JobId id() const { return id_; }
  const AppProfile& profile() const { return profile_; }
  int request() const { return request_; }
  void set_request(int request) { request_ = request; }

  // Rigid (MPI-like) execution: the application always runs `request`
  // processes. When allocated fewer CPUs the processes are *folded*
  // (time-sliced two-or-more per CPU) at a multiplicative overhead — the
  // binding/folding approach of the paper's future-work section. Must be
  // set before Start().
  void set_rigid(bool rigid) { rigid_ = rigid; }
  bool rigid() const { return rigid_; }

  // Invoked at every completed outer-loop iteration.
  void set_iteration_callback(IterationCallback callback) { on_iteration_ = std::move(callback); }

  // Marks the job as running; the first allocation must already be in place.
  void Start(SimTime now);
  bool started() const { return started_; }
  bool finished() const { return finished_; }
  SimTime finish_time() const { return finish_time_; }

  // Space-sharing allocation from the RM. Charges the reconfiguration
  // freeze and restarts the warmup ramp when the count actually changes.
  void SetAllocation(int procs, SimTime now);
  int allocated() const { return allocated_; }

  // SelfAnalyzer baseline control: while `procs` > 0, the application runs
  // on min(allocated, procs) CPUs regardless of the allocation. 0 releases
  // the override.
  void ForceProcs(int procs, SimTime now);
  int forced_procs() const { return forced_procs_; }

  // Processor count the application actually uses this instant.
  int EffectiveProcs() const;

  // Advances wall time by `dt` under space sharing.
  void Advance(SimTime now, SimDuration dt);

  // Advances wall time by `dt` under time sharing (IRIX model): the
  // application held `effective_procs` CPUs on average over the interval and
  // suffered multiplicative `overhead_factor` in (0, 1] from migrations and
  // contention.
  void AdvanceTimeShared(SimTime now, SimDuration dt, double effective_procs,
                         double overhead_factor);

  // Sequential-equivalent seconds of work completed / total.
  double progress_s() const { return progress_s_; }
  double total_work_s() const { return profile_.sequential_work_s; }
  int completed_iterations() const { return completed_iterations_; }

  // --- Event-horizon support (see ResourceManager) -------------------------

  // True when the dynamics over [now, ∞) are exactly linear until the next
  // iteration boundary: no reconfiguration freeze pending and the locality
  // warmup ramp has converged (speed is constant). Only meaningful for a
  // started, unfinished application.
  bool ElisionReady(SimTime now) const;

  // Predicted instant of the next iteration boundary assuming steady-state
  // speed from `now` on, using exactly the arithmetic Advance will use (so a
  // coarse span that crosses it reproduces the fine-tick instant bit for
  // bit). kHorizonNever when the application cannot progress. Requires
  // ElisionReady(now).
  SimTime NextBoundaryTime(SimTime now) const;

  // Monotonic counter bumped whenever state that can move the next boundary
  // changes (allocation, force override, iteration completion, segment
  // re-anchor). Lets the RM cache per-job horizons and only recompute on
  // change.
  std::uint64_t change_epoch() const { return change_epoch_; }

 private:
  // Shared forward-integration used by both advance flavors. `speed` is
  // sequential-equivalent seconds of progress per wall second.
  void Integrate(SimTime now, SimDuration dt, double speed, int procs_label);

  // Speed at a given effective processor value (shared by Advance and the
  // steady-state horizon prediction so both produce identical doubles).
  double SpeedAt(double p_eff) const;
  // Speed once the warmup ramp has converged to the current effective count.
  double SteadySpeed() const;

  void FinishIteration(SimTime when, int procs_label);

  JobId id_;
  AppProfile profile_;
  AppCosts costs_;
  int request_ = 0;

  bool started_ = false;
  bool finished_ = false;
  SimTime finish_time_ = 0;

  int allocated_ = 0;
  int forced_procs_ = 0;
  bool rigid_ = false;

  // Locality model: effective processor count ramps toward the target.
  double warm_procs_ = 0.0;
  // Instant at which the ramp is declared converged and warm_procs_ snaps to
  // the target (the first-order ramp alone only converges asymptotically).
  SimTime warm_until_ = 0;
  SimTime frozen_until_ = 0;

  double progress_s_ = 0.0;
  double work_per_iter_s_ = 0.0;
  int completed_iterations_ = 0;
  SimTime iter_start_wall_ = 0;
  bool iter_clean_ = true;

  // Constant-speed segment anchor. While a segment is live (consecutive
  // Advance spans at the same speed), progress at time t is
  //   seg_progress_ + (t - seg_start_) * seg_speed_
  // and boundary instants are seg_start_ + round((work - seg_progress_) /
  // seg_speed_) — independent of how the segment is chopped into spans.
  bool seg_valid_ = false;
  SimTime seg_start_ = 0;
  SimTime seg_end_ = 0;
  double seg_progress_ = 0.0;
  double seg_speed_ = 0.0;

  std::uint64_t change_epoch_ = 0;

  IterationCallback on_iteration_;
};

}  // namespace pdpa

#endif  // SRC_APP_APPLICATION_H_
