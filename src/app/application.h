// Simulated malleable iterative parallel application.
//
// The application executes `iterations` iterations of an outer loop (the
// "iterative parallel region" the SelfAnalyzer exploits). Progress is
// measured in sequential-equivalent seconds and advances at SpeedupAt(p)
// seconds per wall-second on p processors. Two costs make reallocation
// non-free, as the paper stresses:
//   * a reconfiguration freeze while the runtime re-forms the thread team;
//   * a locality warmup: newly gained CPUs contribute gradually (cache and
//     page migration on the CC-NUMA machine).
//
// Integration is *segment-anchored*: progress within a maximal span of
// constant speed is always computed from the span's start point with one
// multiplication, never by accumulating per-call increments. This makes the
// trajectory a pure function of the segment boundaries, so advancing a
// steady-state span in one call or in many produces bit-identical progress,
// boundary instants, and finish times — the linearity fact the resource
// manager's event-horizon tick elision relies on.
//
// Hot/cold split: the fields the resource manager scans every decision
// (allocation, finished flag, elision readiness, next boundary, segment
// anchor) live in a HotStateArena slot (see src/sim/hot_state.h); the
// Application owns that slot's dynamics columns and republishes the derived
// ready_at/next_boundary values after every state change via PublishHot.
// Cold fields (profile, warmup ramp, iteration bookkeeping) stay here.
#ifndef SRC_APP_APPLICATION_H_
#define SRC_APP_APPLICATION_H_

#include <cstdint>
#include <functional>
#include <memory>

#include "src/app/app_profile.h"
#include "src/common/ids.h"
#include "src/common/time_types.h"
#include "src/sim/hot_state.h"

namespace pdpa {

// Costs of malleability. Defaults model an OpenMP runtime re-forming teams
// between parallel regions on a CC-NUMA machine.
struct AppCosts {
  // Wall time during which the application makes no progress after an
  // allocation change.
  SimDuration reconfig_freeze = 30 * kMillisecond;
  // Time constant of the locality warmup ramp for the effective processor
  // count after a change.
  SimDuration warmup = 400 * kMillisecond;
  // Multiplicative efficiency of a folded rigid application (context
  // switching between its processes on shared CPUs).
  double folding_overhead = 0.85;
};

// One completed iteration of the outer loop, as observable by the runtime.
struct IterationRecord {
  int index = 0;
  // Exact (sub-tick) completion instant of the iteration.
  SimTime end_time = 0;
  SimDuration wall_time = 0;
  // Processor count in effect when the iteration completed.
  int procs = 0;
  // True when the effective processor count was constant for the whole
  // iteration (no reallocation, no baseline switch, no freeze).
  bool clean = false;
};

class Application {
 public:
  using IterationCallback = std::function<void(const IterationRecord&)>;

  // When `hot` is null the application allocates a private single-slot
  // arena (standalone use in tests); otherwise it adopts `slot` of the
  // caller's arena and becomes the sole writer of that slot's dynamics
  // columns. The slot's dynamics columns are reset; the identity columns
  // (job_id, arrival, ...) are left to the arena owner.
  Application(JobId id, AppProfile profile, AppCosts costs = AppCosts{},
              HotStateArena* hot = nullptr, int slot = 0);

  JobId id() const { return id_; }
  const AppProfile& profile() const { return profile_; }
  int request() const { return request_; }
  void set_request(int request) { request_ = request; }

  // Rigid (MPI-like) execution: the application always runs `request`
  // processes. When allocated fewer CPUs the processes are *folded*
  // (time-sliced two-or-more per CPU) at a multiplicative overhead — the
  // binding/folding approach of the paper's future-work section. Must be
  // set before Start().
  void set_rigid(bool rigid) { rigid_ = rigid; }
  bool rigid() const { return rigid_; }

  // Invoked at every completed outer-loop iteration.
  void set_iteration_callback(IterationCallback callback) { on_iteration_ = std::move(callback); }

  // Marks the job as running; the first allocation must already be in place.
  void Start(SimTime now);
  bool started() const { return hot_->started[slot_] != 0; }
  bool finished() const { return hot_->finished[slot_] != 0; }
  SimTime finish_time() const { return finish_time_; }

  // Space-sharing allocation from the RM. Charges the reconfiguration
  // freeze and restarts the warmup ramp when the count actually changes.
  void SetAllocation(int procs, SimTime now);
  int allocated() const { return hot_->alloc[slot_]; }

  // SelfAnalyzer baseline control: while `procs` > 0, the application runs
  // on min(allocated, procs) CPUs regardless of the allocation. 0 releases
  // the override.
  void ForceProcs(int procs, SimTime now);
  int forced_procs() const { return forced_procs_; }

  // Processor count the application actually uses this instant.
  int EffectiveProcs() const;

  // Advances wall time by `dt` under space sharing.
  void Advance(SimTime now, SimDuration dt);

  // Advances wall time by `dt` under time sharing (IRIX model): the
  // application held `effective_procs` CPUs on average over the interval and
  // suffered multiplicative `overhead_factor` in (0, 1] from migrations and
  // contention.
  void AdvanceTimeShared(SimTime now, SimDuration dt, double effective_procs,
                         double overhead_factor);

  // Sequential-equivalent seconds of work completed / total.
  double progress_s() const { return progress_s_; }
  double total_work_s() const { return profile_.sequential_work_s; }
  int completed_iterations() const { return completed_iterations_; }

  // --- Event-horizon support (see ResourceManager) -------------------------

  // True when the dynamics over [now, ∞) are exactly linear until the next
  // iteration boundary: no reconfiguration freeze pending and the locality
  // warmup ramp has converged (speed is constant). Only meaningful for a
  // started, unfinished application. Equivalent to ready_at[slot] <= now.
  bool ElisionReady(SimTime now) const;

  // Predicted instant of the next iteration boundary assuming steady-state
  // speed from `now` on, using exactly the arithmetic Advance will use (so a
  // coarse span that crosses it reproduces the fine-tick instant bit for
  // bit). kHorizonNever when the application cannot progress. Requires
  // ElisionReady(now).
  SimTime NextBoundaryTime(SimTime now) const;

  // Generalization of NextBoundaryTime: predicted instant of the boundary
  // `iterations_ahead` iterations from now on the same steady segment (1 ==
  // NextBoundaryTime). Same anchor selection and arithmetic as Integrate, so
  // every predicted instant is bit-exact. Requires ElisionReady(now).
  SimTime BoundaryTimeAhead(int iterations_ahead, SimTime now) const;

  // Iterations left until the final boundary (the completion instant).
  int remaining_iterations() const { return profile_.iterations - completed_iterations_; }

  // Monotonic counter bumped whenever state that can move the next boundary
  // changes (allocation, force override, iteration completion, segment
  // re-anchor).
  std::uint64_t change_epoch() const { return hot_->change_epoch[slot_]; }

 private:
  // Republishes the derived hot columns (ready_at, next_boundary) for this
  // slot as of `now`. Called at the end of every mutation so the arena is
  // always current when the RM scans it.
  void PublishHot(SimTime now);

  // Shared forward-integration used by both advance flavors. `speed` is
  // sequential-equivalent seconds of progress per wall second.
  void Integrate(SimTime now, SimDuration dt, double speed, int procs_label);

  // Speed at a given effective processor value (shared by Advance and the
  // steady-state horizon prediction so both produce identical doubles).
  double SpeedAt(double p_eff) const;
  // Speed once the warmup ramp has converged to the current effective count.
  double SteadySpeed() const;

  void FinishIteration(SimTime when, int procs_label);

  JobId id_;
  AppProfile profile_;
  AppCosts costs_;
  int request_ = 0;

  // Hot-state slot: dynamics columns for this job live in (*hot_)[slot_].
  // own_arena_ backs hot_ only in standalone construction.
  std::unique_ptr<HotStateArena> own_arena_;
  HotStateArena* hot_ = nullptr;
  std::size_t slot_ = 0;

  SimTime finish_time_ = 0;

  int forced_procs_ = 0;
  bool rigid_ = false;

  // Locality model: effective processor count ramps toward the target.
  double warm_procs_ = 0.0;
  // Instant at which the ramp is declared converged and warm_procs_ snaps to
  // the target (the first-order ramp alone only converges asymptotically).
  SimTime warm_until_ = 0;
  SimTime frozen_until_ = 0;

  double progress_s_ = 0.0;
  double work_per_iter_s_ = 0.0;
  int completed_iterations_ = 0;
  SimTime iter_start_wall_ = 0;
  bool iter_clean_ = true;

  IterationCallback on_iteration_;
};

}  // namespace pdpa

#endif  // SRC_APP_APPLICATION_H_
