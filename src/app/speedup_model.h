// Speedup models: how fast an application runs with p processors relative to
// one processor. The scheduler never sees these curves directly — it only
// sees iteration timings measured by the SelfAnalyzer — but the simulated
// applications execute according to them.
#ifndef SRC_APP_SPEEDUP_MODEL_H_
#define SRC_APP_SPEEDUP_MODEL_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace pdpa {

class SpeedupModel {
 public:
  virtual ~SpeedupModel() = default;

  // Speedup at (possibly fractional) processor count p >= 0. Must satisfy
  // SpeedupAt(0) == 0 and SpeedupAt(1) == 1.
  virtual double SpeedupAt(double p) const = 0;

  // Efficiency = S(p) / p; defined as 1 at p == 0 for convenience.
  double EfficiencyAt(double p) const;

  virtual std::string DebugString() const = 0;
};

// Amdahl's law: S(p) = 1 / ((1 - f) + f / p), with parallel fraction f.
class AmdahlSpeedup : public SpeedupModel {
 public:
  explicit AmdahlSpeedup(double parallel_fraction);

  double SpeedupAt(double p) const override;
  std::string DebugString() const override;

  double parallel_fraction() const { return parallel_fraction_; }

 private:
  double parallel_fraction_;
};

// Piecewise-linear interpolation through (p, S) control points. Used for the
// four applications in the paper, digitized from Fig. 3. Extrapolates flat
// beyond the last point.
class TableSpeedup : public SpeedupModel {
 public:
  // `points` must be sorted by p, start at (1, 1) or earlier, and be
  // non-negative. A (0, 0) anchor is added automatically.
  explicit TableSpeedup(std::vector<std::pair<double, double>> points);

  double SpeedupAt(double p) const override;
  std::string DebugString() const override;

 private:
  std::vector<std::pair<double, double>> points_;
};

// Convenience factory for a curve that is linear up to `knee` processors and
// saturates at `max_speedup` following a geometric approach.
std::unique_ptr<SpeedupModel> MakeSaturatingSpeedup(double knee, double max_speedup);

}  // namespace pdpa

#endif  // SRC_APP_SPEEDUP_MODEL_H_
