#include "src/trace/paraver_writer.h"

#include "src/common/logging.h"
#include "src/common/strings.h"

namespace pdpa {

void WriteParaverTrace(const TraceRecorder& recorder, int num_jobs, std::ostream& out) {
  PDPA_CHECK_GE(num_jobs, 0);
  const auto& samples = recorder.samples();
  const long long duration_ns =
      static_cast<long long>(samples.size()) * recorder.sample_period() * 1000;
  // Header: #Paraver (date):duration_ns:nodes(cpus):num_appl:appl_list
  out << "#Paraver (01/01/00 at 00:00):" << duration_ns << "_ns:1(" << recorder.num_cpus()
      << "):" << num_jobs;
  for (int job = 0; job < num_jobs; ++job) {
    out << ":1(1:1)";
  }
  out << "\n";

  // One state record per maximal run of identical ownership per CPU.
  for (int cpu = 0; cpu < recorder.num_cpus(); ++cpu) {
    std::size_t begin = 0;
    while (begin < samples.size()) {
      const JobId job = samples[begin][static_cast<std::size_t>(cpu)];
      std::size_t end = begin + 1;
      while (end < samples.size() && samples[end][static_cast<std::size_t>(cpu)] == job) {
        ++end;
      }
      if (job != kIdleJob) {
        const long long t0 = static_cast<long long>(begin) * recorder.sample_period() * 1000;
        const long long t1 = static_cast<long long>(end) * recorder.sample_period() * 1000;
        // state 1 = running.
        out << "1:" << (cpu + 1) << ":" << (job + 1) << ":1:1:" << t0 << ":" << t1 << ":1\n";
      }
      begin = end;
    }
  }
}

void WriteParaverConfig(int num_jobs, std::ostream& out) {
  out << "DEFAULT_OPTIONS\n\n"
      << "LEVEL               CPU\n"
      << "UNITS               NANOSEC\n\n"
      << "STATES\n"
      << "0    IDLE\n"
      << "1    RUNNING\n\n"
      << "STATES_COLOR\n"
      << "0    {117,195,255}\n"
      << "1    {0,0,255}\n\n"
      << "GRADIENT_NAMES\n";
  // One gradient entry per application so Paraver can color by job.
  for (int job = 0; job < num_jobs; ++job) {
    out << job + 1 << "    job_" << job << "\n";
  }
  out << "\nGRADIENT_COLOR\n";
  for (int job = 0; job < num_jobs; ++job) {
    // Deterministic distinct-ish palette.
    const int r = (37 * (job + 1)) % 256;
    const int g = (91 * (job + 1)) % 256;
    const int b = (151 * (job + 1)) % 256;
    out << job + 1 << "    {" << r << "," << g << "," << b << "}\n";
  }
}

}  // namespace pdpa
