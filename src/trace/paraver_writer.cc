#include "src/trace/paraver_writer.h"

#include <string>

#include "src/common/bufwriter.h"
#include "src/common/fmt.h"
#include "src/common/logging.h"

namespace pdpa {

void WriteParaverTrace(const TraceRecorder& recorder, int num_jobs, std::ostream& out) {
  PDPA_CHECK_GE(num_jobs, 0);
  const auto& samples = recorder.samples();
  const long long duration_ns =
      static_cast<long long>(samples.size()) * recorder.sample_period() * 1000;
  BufWriter writer(&out);
  std::string row;
  row.reserve(96);
  // Header: #Paraver (date):duration_ns:nodes(cpus):num_appl:appl_list
  row.append("#Paraver (01/01/00 at 00:00):");
  AppendInt(&row, duration_ns);
  row.append("_ns:1(");
  AppendInt(&row, recorder.num_cpus());
  row.append("):");
  AppendInt(&row, num_jobs);
  writer.Append(row);
  for (int job = 0; job < num_jobs; ++job) {
    writer.Append(":1(1:1)");
  }
  writer.Append('\n');

  // One state record per maximal run of identical ownership per CPU.
  for (int cpu = 0; cpu < recorder.num_cpus(); ++cpu) {
    std::size_t begin = 0;
    while (begin < samples.size()) {
      const JobId job = samples[begin][static_cast<std::size_t>(cpu)];
      std::size_t end = begin + 1;
      while (end < samples.size() && samples[end][static_cast<std::size_t>(cpu)] == job) {
        ++end;
      }
      if (job != kIdleJob) {
        const long long t0 = static_cast<long long>(begin) * recorder.sample_period() * 1000;
        const long long t1 = static_cast<long long>(end) * recorder.sample_period() * 1000;
        // state 1 = running.
        row.clear();
        row.append("1:");
        AppendInt(&row, cpu + 1);
        row.push_back(':');
        AppendInt(&row, job + 1);
        row.append(":1:1:");
        AppendInt(&row, t0);
        row.push_back(':');
        AppendInt(&row, t1);
        row.append(":1\n");
        writer.Append(row);
      }
      begin = end;
    }
  }
  writer.Flush();
}

void WriteParaverConfig(int num_jobs, std::ostream& out) {
  BufWriter writer(&out);
  writer.Append(
      "DEFAULT_OPTIONS\n\n"
      "LEVEL               CPU\n"
      "UNITS               NANOSEC\n\n"
      "STATES\n"
      "0    IDLE\n"
      "1    RUNNING\n\n"
      "STATES_COLOR\n"
      "0    {117,195,255}\n"
      "1    {0,0,255}\n\n"
      "GRADIENT_NAMES\n");
  std::string row;
  row.reserve(48);
  // One gradient entry per application so Paraver can color by job.
  for (int job = 0; job < num_jobs; ++job) {
    row.clear();
    AppendInt(&row, job + 1);
    row.append("    job_");
    AppendInt(&row, job);
    row.push_back('\n');
    writer.Append(row);
  }
  writer.Append("\nGRADIENT_COLOR\n");
  for (int job = 0; job < num_jobs; ++job) {
    // Deterministic distinct-ish palette.
    const int r = (37 * (job + 1)) % 256;
    const int g = (91 * (job + 1)) % 256;
    const int b = (151 * (job + 1)) % 256;
    row.clear();
    AppendInt(&row, job + 1);
    row.append("    {");
    AppendInt(&row, r);
    row.push_back(',');
    AppendInt(&row, g);
    row.push_back(',');
    AppendInt(&row, b);
    row.append("}\n");
    writer.Append(row);
  }
  writer.Flush();
}

namespace internal {

void WriteParaverTraceLegacy(const TraceRecorder& recorder, int num_jobs, std::ostream& out) {
  PDPA_CHECK_GE(num_jobs, 0);
  const auto& samples = recorder.samples();
  const long long duration_ns =
      static_cast<long long>(samples.size()) * recorder.sample_period() * 1000;
  out << "#Paraver (01/01/00 at 00:00):" << duration_ns << "_ns:1(" << recorder.num_cpus()
      << "):" << num_jobs;
  for (int job = 0; job < num_jobs; ++job) {
    out << ":1(1:1)";
  }
  out << "\n";
  for (int cpu = 0; cpu < recorder.num_cpus(); ++cpu) {
    std::size_t begin = 0;
    while (begin < samples.size()) {
      const JobId job = samples[begin][static_cast<std::size_t>(cpu)];
      std::size_t end = begin + 1;
      while (end < samples.size() && samples[end][static_cast<std::size_t>(cpu)] == job) {
        ++end;
      }
      if (job != kIdleJob) {
        const long long t0 = static_cast<long long>(begin) * recorder.sample_period() * 1000;
        const long long t1 = static_cast<long long>(end) * recorder.sample_period() * 1000;
        out << "1:" << (cpu + 1) << ":" << (job + 1) << ":1:1:" << t0 << ":" << t1 << ":1\n";
      }
      begin = end;
    }
  }
}

}  // namespace internal

}  // namespace pdpa
