// Execution tracing, the simulator's equivalent of the paper's `scpus` tool
// feeding the Paraver visualizer.
//
// The recorder observes every CPU ownership change and derives:
//   * kernel-thread migration counts (ownership handoffs between two jobs),
//   * per-CPU burst statistics (how long a CPU keeps executing one job),
//   * a sampled CPU x time grid for ASCII "execution views" (Fig. 5),
//   * machine utilization (owned CPU-seconds / capacity).
#ifndef SRC_TRACE_TRACE_RECORDER_H_
#define SRC_TRACE_TRACE_RECORDER_H_

#include <cstdint>
#include <vector>

#include "src/common/ids.h"
#include "src/common/time_types.h"
#include "src/machine/machine.h"

namespace pdpa {

struct TraceStats {
  // Ownership handoffs from one job directly to another (a kernel thread of
  // the new job displaced the previous job's thread on that CPU).
  long long migrations = 0;
  // Bursts: maximal intervals during which one CPU continuously executes
  // the same job.
  long long total_bursts = 0;
  double avg_burst_ms = 0.0;
  double avg_bursts_per_cpu = 0.0;
  // Owned CPU-time / (capacity * wall time), in [0, 1].
  double utilization = 0.0;
};

class TraceRecorder {
 public:
  TraceRecorder(int num_cpus, SimDuration sample_period = 500 * kMillisecond);

  // One CPU changed owner at `now`.
  void OnHandoff(SimTime now, const CpuHandoff& handoff);
  void OnHandoffs(SimTime now, const std::vector<CpuHandoff>& handoffs);

  // Called every simulation tick; samples the grid when a period elapsed.
  void Tick(SimTime now);

  // Closes open bursts and the utilization integral at `now`.
  void Finalize(SimTime now);

  TraceStats ComputeStats() const;

  int num_cpus() const { return num_cpus_; }
  SimDuration sample_period() const { return sample_period_; }
  // samples()[s][cpu] is the job owning `cpu` at sample instant s.
  const std::vector<std::vector<JobId>>& samples() const { return samples_; }

 private:
  void CloseBurst(int cpu, SimTime now);

  int num_cpus_;
  SimDuration sample_period_;

  std::vector<JobId> owner_;
  std::vector<SimTime> burst_start_;

  long long migrations_ = 0;
  long long total_bursts_ = 0;
  double total_burst_us_ = 0.0;

  SimTime last_busy_update_ = 0;
  int busy_cpus_ = 0;
  double busy_integral_us_ = 0.0;
  SimTime end_time_ = 0;

  SimTime next_sample_ = 0;
  std::vector<std::vector<JobId>> samples_;
  bool finalized_ = false;
};

}  // namespace pdpa

#endif  // SRC_TRACE_TRACE_RECORDER_H_
