// Minimal Paraver (.prv) trace reader: the inverse of paraver_writer.
//
// Parses the header and CPU state records back into per-CPU busy intervals
// so archived traces can be re-analyzed (migrations, bursts, utilization)
// without re-running the simulation — what the paper does offline with the
// Paraver tool on `scpus` traces.
#ifndef SRC_TRACE_PARAVER_READER_H_
#define SRC_TRACE_PARAVER_READER_H_

#include <istream>
#include <string>
#include <vector>

#include "src/common/ids.h"
#include "src/trace/trace_recorder.h"

namespace pdpa {

// One state record: CPU `cpu` ran job `job` over [begin_ns, end_ns).
struct ParaverStateRecord {
  int cpu = 0;           // zero-based
  JobId job = kIdleJob;  // zero-based
  long long begin_ns = 0;
  long long end_ns = 0;
};

struct ParaverTrace {
  int num_cpus = 0;
  int num_jobs = 0;
  long long duration_ns = 0;
  std::vector<ParaverStateRecord> records;
};

// Parses a .prv stream. Returns false (with *error set) on malformed input.
bool ReadParaverTrace(std::istream& in, ParaverTrace* trace, std::string* error = nullptr);

// Recomputes Table-2-style statistics from a parsed trace. Migrations are
// counted as in TraceRecorder: a CPU passing directly from one job to
// another (end of one record == begin of the next, different jobs). Note
// that .prv traces are built from the recorder's *sampled* grid, so a
// release and an acquisition falling within one sample period appear
// back-to-back and are counted as a migration — offline stats can therefore
// over-count migrations relative to the live recorder.
TraceStats ComputeStatsFromTrace(const ParaverTrace& trace);

}  // namespace pdpa

#endif  // SRC_TRACE_PARAVER_READER_H_
