// Minimal Paraver (.prv) trace writer.
//
// The paper's workloads were monitored with `scpus` and visualized with the
// Paraver tool; this writer emits the same kind of CPU-state trace so the
// simulator's executions can be inspected with Paraver-compatible tooling.
// Format: a header line followed by state records
//   1:cpu:appl:task:thread:begin:end:state
// with times in nanoseconds and one "application" per job.
#ifndef SRC_TRACE_PARAVER_WRITER_H_
#define SRC_TRACE_PARAVER_WRITER_H_

#include <ostream>

#include "src/trace/trace_recorder.h"

namespace pdpa {

// Writes the sampled ownership grid as Paraver state records. `num_jobs` is
// the total number of jobs that appear in the trace (Paraver needs the
// application list up front).
void WriteParaverTrace(const TraceRecorder& recorder, int num_jobs, std::ostream& out);

// Writes the companion Paraver configuration (.pcf): state names and a
// color per application, so the visualizer labels the trace like Fig. 5.
void WriteParaverConfig(int num_jobs, std::ostream& out);

namespace internal {

// The pre-fast-path .prv writer (per-record ostream inserts), kept only so
// the golden byte-identity fixture and serialization_bench can A/B against
// WriteParaverTrace; production code must not use it.
void WriteParaverTraceLegacy(const TraceRecorder& recorder, int num_jobs, std::ostream& out);

}  // namespace internal

}  // namespace pdpa

#endif  // SRC_TRACE_PARAVER_WRITER_H_
