#include "src/trace/paraver_reader.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/strings.h"

namespace pdpa {
namespace {

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) {
    *error = message;
  }
  return false;
}

}  // namespace

bool ReadParaverTrace(std::istream& in, ParaverTrace* trace, std::string* error) {
  PDPA_CHECK(trace != nullptr);
  std::string line;
  if (!std::getline(in, line) || line.rfind("#Paraver", 0) != 0) {
    return Fail(error, "missing #Paraver header");
  }
  // Header: #Paraver (date):DURATION_ns:1(NCPUS):NJOBS:...
  const std::size_t close_paren = line.find(')');
  if (close_paren == std::string::npos) {
    return Fail(error, "malformed header (no date)");
  }
  const std::vector<std::string> head =
      SplitTokens(std::string_view(line).substr(close_paren + 2), ':');
  if (head.size() < 3) {
    return Fail(error, "malformed header fields");
  }
  // Field 0: "DURATION_ns", field 1: "1(NCPUS)", field 2: NJOBS.
  long long duration = 0;
  const std::string duration_text = head[0].substr(0, head[0].find('_'));
  if (!ParseInt64(duration_text, &duration)) {
    return Fail(error, "malformed duration");
  }
  trace->duration_ns = duration;
  const std::size_t open = head[1].find('(');
  const std::size_t close = head[1].find(')');
  if (open == std::string::npos || close == std::string::npos || close <= open) {
    return Fail(error, "malformed node list");
  }
  if (!ParseInt(std::string_view(head[1]).substr(open + 1, close - open - 1), &trace->num_cpus)) {
    return Fail(error, "malformed cpu count");
  }
  if (!ParseInt(head[2], &trace->num_jobs)) {
    return Fail(error, "malformed job count");
  }

  int line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed.front() == '#' || trimmed.front() == 'c') {
      continue;  // comments / communicator lines
    }
    const std::vector<std::string> fields = SplitTokens(trimmed, ':');
    if (fields.empty() || fields[0] != "1") {
      continue;  // not a state record
    }
    if (fields.size() != 8) {
      return Fail(error, StrFormat("line %d: state record needs 8 fields", line_number));
    }
    ParaverStateRecord record;
    int cpu1 = 0;
    int appl1 = 0;
    long long begin = 0;
    long long end = 0;
    int state = 0;
    if (!ParseInt(fields[1], &cpu1) || !ParseInt(fields[2], &appl1) ||
        !ParseInt64(fields[5], &begin) || !ParseInt64(fields[6], &end) ||
        !ParseInt(fields[7], &state)) {
      return Fail(error, StrFormat("line %d: malformed state record", line_number));
    }
    if (state != 1) {
      continue;  // only "running" intervals carry ownership
    }
    record.cpu = cpu1 - 1;
    record.job = appl1 - 1;
    record.begin_ns = begin;
    record.end_ns = end;
    if (record.cpu < 0 || record.cpu >= trace->num_cpus || record.end_ns < record.begin_ns) {
      return Fail(error, StrFormat("line %d: out-of-range state record", line_number));
    }
    trace->records.push_back(record);
  }
  return true;
}

TraceStats ComputeStatsFromTrace(const ParaverTrace& trace) {
  TraceStats stats;
  // Group records per CPU, sorted by begin time.
  std::vector<std::vector<ParaverStateRecord>> per_cpu(
      static_cast<std::size_t>(std::max(1, trace.num_cpus)));
  double busy_ns = 0.0;
  for (const ParaverStateRecord& record : trace.records) {
    per_cpu[static_cast<std::size_t>(record.cpu)].push_back(record);
    busy_ns += static_cast<double>(record.end_ns - record.begin_ns);
  }
  double total_burst_ns = 0.0;
  for (auto& records : per_cpu) {
    std::sort(records.begin(), records.end(),
              [](const ParaverStateRecord& a, const ParaverStateRecord& b) {
                return a.begin_ns < b.begin_ns;
              });
    for (std::size_t i = 0; i < records.size(); ++i) {
      ++stats.total_bursts;
      total_burst_ns += static_cast<double>(records[i].end_ns - records[i].begin_ns);
      if (i > 0 && records[i].begin_ns == records[i - 1].end_ns &&
          records[i].job != records[i - 1].job) {
        ++stats.migrations;
      }
    }
  }
  if (stats.total_bursts > 0) {
    stats.avg_burst_ms = total_burst_ns / static_cast<double>(stats.total_bursts) / 1e6;
  }
  if (trace.num_cpus > 0) {
    stats.avg_bursts_per_cpu = static_cast<double>(stats.total_bursts) / trace.num_cpus;
    if (trace.duration_ns > 0) {
      stats.utilization =
          busy_ns / (static_cast<double>(trace.duration_ns) * trace.num_cpus);
    }
  }
  return stats;
}

}  // namespace pdpa
