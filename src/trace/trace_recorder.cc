#include "src/trace/trace_recorder.h"

#include <algorithm>

#include "src/common/logging.h"

namespace pdpa {

TraceRecorder::TraceRecorder(int num_cpus, SimDuration sample_period)
    : num_cpus_(num_cpus), sample_period_(sample_period) {
  PDPA_CHECK_GT(num_cpus, 0);
  PDPA_CHECK_GT(sample_period, 0);
  owner_.assign(static_cast<std::size_t>(num_cpus), kIdleJob);
  burst_start_.assign(static_cast<std::size_t>(num_cpus), 0);
}

void TraceRecorder::CloseBurst(int cpu, SimTime now) {
  const std::size_t index = static_cast<std::size_t>(cpu);
  if (owner_[index] == kIdleJob) {
    return;
  }
  const SimDuration burst = now - burst_start_[index];
  if (burst > 0) {
    ++total_bursts_;
    total_burst_us_ += static_cast<double>(burst);
  }
}

void TraceRecorder::OnHandoff(SimTime now, const CpuHandoff& handoff) {
  PDPA_CHECK(!finalized_);
  PDPA_CHECK_GE(handoff.cpu, 0);
  PDPA_CHECK_LT(handoff.cpu, num_cpus_);
  const std::size_t index = static_cast<std::size_t>(handoff.cpu);
  // The caller's `from` describes the policy's view; the recorder trusts its
  // own owner bookkeeping, which must agree.
  if (owner_[index] == handoff.to) {
    return;  // No-op handoff.
  }
  // Utilization integral segment.
  busy_integral_us_ += static_cast<double>(busy_cpus_) * static_cast<double>(now - last_busy_update_);
  last_busy_update_ = now;

  if (owner_[index] != kIdleJob && handoff.to != kIdleJob) {
    ++migrations_;
  }
  CloseBurst(handoff.cpu, now);
  if (owner_[index] != kIdleJob) {
    --busy_cpus_;
  }
  owner_[index] = handoff.to;
  if (handoff.to != kIdleJob) {
    ++busy_cpus_;
    burst_start_[index] = now;
  }
}

void TraceRecorder::OnHandoffs(SimTime now, const std::vector<CpuHandoff>& handoffs) {
  for (const CpuHandoff& handoff : handoffs) {
    OnHandoff(now, handoff);
  }
}

void TraceRecorder::Tick(SimTime now) {
  if (finalized_) {
    return;
  }
  while (now >= next_sample_) {
    samples_.push_back(owner_);
    next_sample_ += sample_period_;
  }
}

void TraceRecorder::Finalize(SimTime now) {
  if (finalized_) {
    return;
  }
  busy_integral_us_ += static_cast<double>(busy_cpus_) * static_cast<double>(now - last_busy_update_);
  last_busy_update_ = now;
  for (int cpu = 0; cpu < num_cpus_; ++cpu) {
    CloseBurst(cpu, now);
  }
  end_time_ = now;
  finalized_ = true;
}

TraceStats TraceRecorder::ComputeStats() const {
  PDPA_CHECK(finalized_) << "call Finalize() first";
  TraceStats stats;
  stats.migrations = migrations_;
  stats.total_bursts = total_bursts_;
  stats.avg_burst_ms =
      total_bursts_ == 0 ? 0.0 : total_burst_us_ / static_cast<double>(total_bursts_) / 1000.0;
  // num_cpus_ > 0 is a constructor invariant; end_time_ == 0 (Finalize(0),
  // empty run) must report zero utilization, not NaN/inf. Rounding in the
  // busy integral must not push utilization outside [0, 1].
  stats.avg_bursts_per_cpu = static_cast<double>(total_bursts_) / num_cpus_;
  if (end_time_ > 0) {
    stats.utilization =
        busy_integral_us_ / (static_cast<double>(end_time_) * static_cast<double>(num_cpus_));
    stats.utilization = std::clamp(stats.utilization, 0.0, 1.0);
  }
  return stats;
}

}  // namespace pdpa
