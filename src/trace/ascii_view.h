// ASCII rendering of an execution trace: CPUs on the y-axis, time on the
// x-axis, one letter per job — the terminal equivalent of the Paraver
// execution views in Fig. 5 of the paper.
#ifndef SRC_TRACE_ASCII_VIEW_H_
#define SRC_TRACE_ASCII_VIEW_H_

#include <string>

#include "src/trace/trace_recorder.h"

namespace pdpa {

struct AsciiViewOptions {
  // Maximum number of time columns; samples are decimated to fit.
  int max_columns = 100;
  // Render every cpu_stride-th CPU row.
  int cpu_stride = 2;
  // Character used for idle CPUs.
  char idle_char = '.';
};

// Renders the recorder's sampled grid. Jobs are mapped to letters by id
// (a..z, wrapping); idle CPUs render as `idle_char`.
std::string RenderAsciiView(const TraceRecorder& recorder,
                            const AsciiViewOptions& options = AsciiViewOptions{});

}  // namespace pdpa

#endif  // SRC_TRACE_ASCII_VIEW_H_
