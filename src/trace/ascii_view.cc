#include "src/trace/ascii_view.h"

#include "src/common/strings.h"

namespace pdpa {

std::string RenderAsciiView(const TraceRecorder& recorder, const AsciiViewOptions& options) {
  const auto& samples = recorder.samples();
  if (samples.empty()) {
    return "(no samples)\n";
  }
  const int columns = static_cast<int>(samples.size());
  const int stride_t = columns <= options.max_columns ? 1 : (columns + options.max_columns - 1) /
                                                               options.max_columns;
  std::string out;
  const double col_seconds = TimeToSeconds(recorder.sample_period()) * stride_t;
  out += StrFormat("time axis: 1 column = %.1f s, total = %.1f s\n", col_seconds,
                   TimeToSeconds(recorder.sample_period()) * columns);
  for (int cpu = 0; cpu < recorder.num_cpus(); cpu += options.cpu_stride) {
    out += StrFormat("cpu%3d |", cpu);
    for (int s = 0; s < columns; s += stride_t) {
      const JobId job = samples[static_cast<std::size_t>(s)][static_cast<std::size_t>(cpu)];
      if (job == kIdleJob) {
        out += options.idle_char;
      } else {
        out += static_cast<char>('a' + (job % 26));
      }
    }
    out += "|\n";
  }
  return out;
}

}  // namespace pdpa
