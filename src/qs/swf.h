// Standard Workload Format (SWF) reader/writer.
//
// The paper's workload trace files follow Feitelson's SWF specification;
// this module reads and writes that format so workloads can be archived,
// inspected and replayed. SWF lines have 18 whitespace-separated fields;
// unknown values are -1. The application class is carried in field 15
// ("executable number", 1-based AppClass) so a trace round-trips exactly.
#ifndef SRC_QS_SWF_H_
#define SRC_QS_SWF_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "src/qs/job.h"

namespace pdpa {

// Writes the workload as SWF, including header comments describing the
// workload. Returns the number of jobs written.
int WriteSwf(const std::vector<JobSpec>& jobs, std::ostream& out,
             const std::string& workload_name = "");

// Parses SWF text. Lines starting with ';' are comments. Returns false on a
// malformed line and leaves `jobs` with the entries parsed so far.
bool ReadSwf(std::istream& in, std::vector<JobSpec>* jobs, std::string* error = nullptr);

}  // namespace pdpa

#endif  // SRC_QS_SWF_H_
