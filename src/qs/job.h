// Job descriptions exchanged between the workload generator, the SWF trace
// files, the queuing system and the resource manager.
#ifndef SRC_QS_JOB_H_
#define SRC_QS_JOB_H_

#include <vector>

#include "src/app/app_profile.h"
#include "src/common/ids.h"
#include "src/common/time_types.h"

namespace pdpa {

// One job in a workload trace: which application, when it is submitted, and
// how many processors the user requests.
struct JobSpec {
  JobId id = kIdleJob;
  AppClass app_class = AppClass::kSwim;
  SimTime submit = 0;
  int request = 0;
  // Rigid (MPI-like) job: runs exactly `request` processes; the RM may fold
  // them onto fewer CPUs but the runtime cannot change the process count
  // (future-work extension, Sec. 6).
  bool rigid = false;
};

// The fate of one job after an experiment.
struct JobOutcome {
  JobId id = kIdleJob;
  AppClass app_class = AppClass::kSwim;
  int request = 0;
  SimTime submit = 0;
  SimTime start = 0;
  SimTime finish = 0;

  double ResponseSeconds() const { return TimeToSeconds(finish - submit); }
  double ExecSeconds() const { return TimeToSeconds(finish - start); }
  double WaitSeconds() const { return TimeToSeconds(start - submit); }
};

}  // namespace pdpa

#endif  // SRC_QS_JOB_H_
