// Workload generator: Poisson arrivals over a submission window, mixing
// application classes so that each class contributes a prescribed share of
// the generated processor demand (Table 1 of the paper).
#ifndef SRC_QS_WORKLOAD_GENERATOR_H_
#define SRC_QS_WORKLOAD_GENERATOR_H_

#include <array>
#include <vector>

#include "src/common/rng.h"
#include "src/qs/job.h"

namespace pdpa {

struct WorkloadGenSpec {
  // Share of the total processor demand contributed by each class; must sum
  // to 1 over the classes present (0 elsewhere).
  std::array<double, kNumAppClasses> load_share = {0.0, 0.0, 0.0, 0.0};
  // Target average demand as a fraction of machine capacity (0.6/0.8/1.0).
  double load = 1.0;
  int num_cpus = 60;
  // Jobs are submitted over [0, window).
  SimDuration window = 300 * kSecond;
  // Overrides each class's default processor request when > 0 (the paper's
  // "not tuned" experiments set every request to 30).
  int request_override = 0;
  std::uint64_t seed = 1;
};

// Generates the arrival sequence. Deterministic for a given spec (seed
// included). Job ids are assigned 0..n-1 in submission order.
std::vector<JobSpec> GenerateWorkload(const WorkloadGenSpec& spec);

// Estimated processor demand of the generated jobs as a fraction of the
// machine capacity over the window; used by tests to validate calibration.
double EstimateLoad(const std::vector<JobSpec>& jobs, int num_cpus, SimDuration window,
                    int request_override = 0);

}  // namespace pdpa

#endif  // SRC_QS_WORKLOAD_GENERATOR_H_
