// NANOS Queuing System: user-level job submission and multiprogramming-level
// enforcement.
//
// The QS owns the FCFS queue and replays a workload trace repeatably. The
// *when to start* decision is delegated to the processor scheduling policy
// (through ResourceManager::CanStartJob) — the coordination the paper
// proposes — while the QS keeps the *which job* decision (FCFS here).
#ifndef SRC_QS_QUEUING_SYSTEM_H_
#define SRC_QS_QUEUING_SYSTEM_H_

#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "src/obs/slowdown.h"
#include "src/qs/job.h"
#include "src/rm/resource_manager.h"
#include "src/sim/simulation.h"

namespace pdpa {

// Job-selection order: the QS keeps the "which job" decision while the
// processor scheduler keeps the "when" decision (Sec. 4.3).
enum class QueueOrder : int {
  kFcfs = 0,
  // Shortest processor-demand first (request x ideal execution time, which
  // the QS can estimate from the submitted profile). Classic SJF variant;
  // listed here as an extension beyond the paper's FCFS.
  kShortestDemandFirst = 1,
};

class QueuingSystem {
 public:
  struct Options {
    QueueOrder order = QueueOrder::kFcfs;
    // Classic rigid regime: a rigid job at the head of the queue waits
    // until its full request is free instead of starting folded. Blocks the
    // queue behind it (FCFS semantics). Default off: rigid jobs fold.
    bool hold_rigid_until_fit = false;
  };

  QueuingSystem(Simulation* sim, ResourceManager* rm, std::vector<JobSpec> workload,
                QueueOrder order = QueueOrder::kFcfs);
  QueuingSystem(Simulation* sim, ResourceManager* rm, std::vector<JobSpec> workload,
                Options options);
  // Shared-workload overload: forked sweep cells replay the same immutable
  // trace, so they alias one vector instead of copying it per cell.
  QueuingSystem(Simulation* sim, ResourceManager* rm,
                std::shared_ptr<const std::vector<JobSpec>> workload, Options options);

  QueuingSystem(const QueuingSystem&) = delete;
  QueuingSystem& operator=(const QueuingSystem&) = delete;

  // Flight-recorder sink (borrowed, optional); wire before Start().
  void set_event_log(EventLog* log) { events_ = log; }

  // Schedules the arrival events and hooks the RM callbacks; call once.
  void Start();

  bool AllJobsDone() const { return outcomes_.size() == workload_->size(); }
  int running() const { return running_; }
  int queued() const { return static_cast<int>(queue_.size()); }

  const std::vector<JobOutcome>& outcomes() const { return outcomes_; }

  // Per-class slowdown (response / execution) distributions, observed at
  // completion. Deterministic: bucket counts are a function of the simulated
  // schedule only, so replicas merge exactly (LogHistogram::Merge).
  const std::map<AppClass, LogHistogram>& slowdown() const { return slowdown_; }

  // Multiprogramming level over time: (time, running jobs) recorded at every
  // start and finish.
  const std::vector<std::pair<SimTime, int>>& ml_timeline() const { return ml_timeline_; }
  int max_ml() const { return max_ml_; }

 private:
  void OnArrival(const JobSpec& spec);
  void TryStartJobs(SimTime now);
  void OnJobFinish(JobId job, SimTime finish_time);
  void RecordMl(SimTime now);

  // Removes and returns the next job to start according to `order_`.
  JobSpec PopNext();

  Simulation* sim_;
  ResourceManager* rm_;
  std::shared_ptr<const std::vector<JobSpec>> workload_;
  Options options_;

  std::deque<JobSpec> queue_;
  std::map<JobId, JobOutcome> in_flight_;
  std::vector<JobOutcome> outcomes_;
  std::map<AppClass, LogHistogram> slowdown_;
  std::vector<std::pair<SimTime, int>> ml_timeline_;
  int running_ = 0;
  int max_ml_ = 0;
  bool started_ = false;

  EventLog* events_ = nullptr;  // may be null
  // Per-run instruments, resolved once from the simulation's registry.
  Counter* submits_;
  Counter* starts_;
  Counter* finishes_;
  Counter* holds_;
  Histogram* wait_seconds_;
  // Deduplication key for admit_hold events: last (running, queued) pair a
  // hold was reported at, so repeated probes in one state emit one event.
  std::pair<int, int> last_hold_{-1, -1};
};

}  // namespace pdpa

#endif  // SRC_QS_QUEUING_SYSTEM_H_
