#include "src/qs/queuing_system.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "src/common/logging.h"
#include "src/obs/counters.h"

namespace pdpa {

QueuingSystem::QueuingSystem(Simulation* sim, ResourceManager* rm, std::vector<JobSpec> workload,
                             QueueOrder order)
    : QueuingSystem(sim, rm, std::move(workload), Options{order, false}) {}

QueuingSystem::QueuingSystem(Simulation* sim, ResourceManager* rm, std::vector<JobSpec> workload,
                             Options options)
    : QueuingSystem(sim, rm,
                    std::make_shared<const std::vector<JobSpec>>(std::move(workload)), options) {}

QueuingSystem::QueuingSystem(Simulation* sim, ResourceManager* rm,
                             std::shared_ptr<const std::vector<JobSpec>> workload, Options options)
    : sim_(sim), rm_(rm), workload_(std::move(workload)), options_(options) {
  PDPA_CHECK(workload_ != nullptr);
  PDPA_CHECK(sim != nullptr);
  PDPA_CHECK(rm != nullptr);
  Registry& registry = sim->registry();
  submits_ = registry.counter("qs.submits");
  starts_ = registry.counter("qs.starts");
  finishes_ = registry.counter("qs.finishes");
  holds_ = registry.counter("qs.holds");
  // Queue wait in seconds.
  wait_seconds_ =
      registry.histogram("qs.wait_seconds", {0.0, 1.0, 5.0, 15.0, 60.0, 300.0, 900.0});
}

JobSpec QueuingSystem::PopNext() {
  PDPA_CHECK(!queue_.empty());
  std::size_t pick = 0;
  if (options_.order == QueueOrder::kShortestDemandFirst) {
    double best_demand = 0.0;
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      const JobSpec& spec = queue_[i];
      const AppProfile& profile = CachedProfile(spec.app_class);
      const double demand = profile.IdealExecSeconds(spec.request) * spec.request;
      if (i == 0 || demand < best_demand) {
        best_demand = demand;
        pick = i;
      }
    }
  }
  const JobSpec spec = queue_[pick];
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(pick));
  return spec;
}

void QueuingSystem::Start() {
  PDPA_CHECK(!started_);
  started_ = true;
  rm_->set_job_finish_callback(
      [this](JobId job, SimTime finish_time) { OnJobFinish(job, finish_time); });
  rm_->set_state_change_callback([this](SimTime now) { TryStartJobs(now); });
  // Index capture, not a JobSpec copy per closure: the workload vector is
  // immutable for the lifetime of the run (shared with forked cells).
  for (std::size_t i = 0; i < workload_->size(); ++i) {
    sim_->events().Schedule((*workload_)[i].submit, [this, i] { OnArrival((*workload_)[i]); });
  }
}

void QueuingSystem::OnArrival(const JobSpec& spec) {
  queue_.push_back(spec);
  submits_->Increment();
  if (events_ != nullptr) {
    events_->JobSubmit(sim_->now(), spec.id, AppClassName(spec.app_class), spec.request,
                       spec.rigid);
  }
  TryStartJobs(sim_->now());
}

void QueuingSystem::TryStartJobs(SimTime now) {
  while (!queue_.empty()) {
    const bool admit = rm_->CanStartJob();
    const bool fits = !(options_.hold_rigid_until_fit && queue_.front().rigid &&
                        rm_->machine().FreeCpus() < queue_.front().request);
    if (!admit || !fits) {
      // Record the coordination decision to hold the queue, once per
      // (running, queued) state, so Fig. 8-style ML analysis can see when
      // the policy said "no".
      const std::pair<int, int> key{running_, queued()};
      if (key != last_hold_) {
        last_hold_ = key;
        holds_->Increment();
        if (events_ != nullptr) {
          events_->AdmitHold(now, running_, queued(), rm_->machine().FreeCpus());
        }
        PDPA_LOG(Debug) << "queue held: running=" << running_ << " queued=" << queued()
                        << " free_cpus=" << rm_->machine().FreeCpus();
      }
      break;
    }
    const JobSpec spec = PopNext();

    JobOutcome outcome;
    outcome.id = spec.id;
    outcome.app_class = spec.app_class;
    outcome.request = spec.request;
    outcome.submit = spec.submit;
    outcome.start = now;
    in_flight_[spec.id] = outcome;

    ++running_;
    max_ml_ = std::max(max_ml_, running_);
    last_hold_ = {-1, -1};
    RecordMl(now);
    starts_->Increment();
    wait_seconds_->Observe(TimeToSeconds(now - spec.submit));
    rm_->StartJob(spec.id, CachedProfile(spec.app_class), spec.request, now, spec.rigid);
    if (events_ != nullptr) {
      events_->JobStart(now, spec.id, AppClassName(spec.app_class), spec.request,
                        rm_->AllocationOf(spec.id), running_, queued());
    }
  }
}

void QueuingSystem::OnJobFinish(JobId job, SimTime finish_time) {
  const auto it = in_flight_.find(job);
  PDPA_CHECK(it != in_flight_.end()) << "finish for unknown job " << job;
  JobOutcome outcome = it->second;
  in_flight_.erase(it);
  outcome.finish = finish_time;
  outcomes_.push_back(outcome);
  const double exec_s = outcome.ExecSeconds();
  if (exec_s > 0.0) {
    slowdown_[outcome.app_class].Observe(outcome.ResponseSeconds() / exec_s);
  }
  --running_;
  finishes_->Increment();
  if (events_ != nullptr) {
    events_->JobFinish(finish_time, job, outcome.submit, outcome.start);
  }
  RecordMl(finish_time);
  // The RM's state-change callback fires after this, starting queued jobs.
}

void QueuingSystem::RecordMl(SimTime now) { ml_timeline_.emplace_back(now, running_); }

}  // namespace pdpa
