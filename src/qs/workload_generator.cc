#include "src/qs/workload_generator.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace pdpa {
namespace {

// CPU demand (processor-seconds) of one job of this class.
double ClassDemand(AppClass app_class, int request_override) {
  const AppProfile profile = MakeProfile(app_class);
  const int request = request_override > 0 ? request_override : profile.default_request;
  return profile.IdealExecSeconds(request) * request;
}

}  // namespace

std::vector<JobSpec> GenerateWorkload(const WorkloadGenSpec& spec) {
  PDPA_CHECK_GT(spec.load, 0.0);
  PDPA_CHECK_GT(spec.num_cpus, 0);
  PDPA_CHECK_GT(spec.window, 0);

  double share_sum = 0.0;
  for (double share : spec.load_share) {
    PDPA_CHECK_GE(share, 0.0);
    share_sum += share;
  }
  PDPA_CHECK_GT(share_sum, 0.0);

  // Each arrival draws a class with probability q_c proportional to
  // share_c / demand_c; the expected demand contribution of class c is then
  // proportional to share_c, as Table 1 prescribes.
  //
  // The demand calibration always uses the *tuned* (default) requests: the
  // paper's untuned experiments replay the same trace with the same
  // submission times and only change the request field, so the override
  // must not alter the arrival process.
  std::array<double, kNumAppClasses> demand{};
  std::array<double, kNumAppClasses> q{};
  double q_sum = 0.0;
  for (int c = 0; c < kNumAppClasses; ++c) {
    demand[static_cast<std::size_t>(c)] =
        ClassDemand(static_cast<AppClass>(c), /*request_override=*/0);
    const double share = spec.load_share[static_cast<std::size_t>(c)] / share_sum;
    q[static_cast<std::size_t>(c)] = share / demand[static_cast<std::size_t>(c)];
    q_sum += q[static_cast<std::size_t>(c)];
  }
  double expected_demand = 0.0;
  for (int c = 0; c < kNumAppClasses; ++c) {
    q[static_cast<std::size_t>(c)] /= q_sum;
    expected_demand += q[static_cast<std::size_t>(c)] * demand[static_cast<std::size_t>(c)];
  }

  // Arrival rate so that average demand per second = load * num_cpus.
  const double rate = spec.load * spec.num_cpus / expected_demand;

  Rng rng(spec.seed);
  std::vector<JobSpec> jobs;
  double t_s = rng.Exponential(rate);
  const double window_s = TimeToSeconds(spec.window);
  while (t_s < window_s) {
    JobSpec job;
    job.id = static_cast<JobId>(jobs.size());
    job.submit = SecondsToTime(t_s);
    const double u = rng.NextDouble();
    double acc = 0.0;
    job.app_class = AppClass::kApsi;
    for (int c = 0; c < kNumAppClasses; ++c) {
      acc += q[static_cast<std::size_t>(c)];
      if (u < acc) {
        job.app_class = static_cast<AppClass>(c);
        break;
      }
    }
    job.request = spec.request_override > 0 ? spec.request_override
                                            : MakeProfile(job.app_class).default_request;
    jobs.push_back(job);
    t_s += rng.Exponential(rate);
  }
  return jobs;
}

double EstimateLoad(const std::vector<JobSpec>& jobs, int num_cpus, SimDuration window,
                    int request_override) {
  double total_demand = 0.0;
  for (const JobSpec& job : jobs) {
    total_demand += ClassDemand(job.app_class, request_override > 0 ? request_override : job.request);
  }
  return total_demand / (static_cast<double>(num_cpus) * TimeToSeconds(window));
}

}  // namespace pdpa
