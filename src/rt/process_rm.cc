#include "src/rt/process_rm.h"

#include <algorithm>
#include <chrono>

#include "src/common/logging.h"
#include "src/runtime/periodicity_detector.h"

namespace pdpa {

RtApplication::RtApplication(JobId id, std::string name,
                             std::unique_ptr<IterativeKernel> kernel, int iterations, int request,
                             SelfTuner::Params tuner_params)
    : RtApplication(id, std::move(name), std::move(kernel), iterations, request, tuner_params,
                    Options{}) {}

RtApplication::RtApplication(JobId id, std::string name,
                             std::unique_ptr<IterativeKernel> kernel, int iterations, int request,
                             SelfTuner::Params tuner_params, Options options)
    : id_(id),
      name_(std::move(name)),
      kernel_(std::move(kernel)),
      iterations_(iterations),
      request_(request),
      tuner_(id, tuner_params),
      team_(request),
      options_(options) {
  PDPA_CHECK(kernel_ != nullptr);
  PDPA_CHECK_GE(iterations, 1);
  PDPA_CHECK_GE(request, 1);
  PDPA_CHECK_GE(options.loops_per_iteration, 1);
}

void RtApplication::Run() {
  if (options_.detect_iterations_with_dpd) {
    RunWithDpd();
  } else {
    RunExplicit();
  }
  finished_.store(true);
}

void RtApplication::RunExplicit() {
  for (int iter = 0; iter < iterations_; ++iter) {
    const int width = std::clamp(tuner_.WidthFor(allocated_.load()), 1, team_.max_width());
    const auto start = std::chrono::steady_clock::now();
    kernel_->RunSerialPart();
    for (int loop = 0; loop < options_.loops_per_iteration; ++loop) {
      team_.ParallelRegion(width, [&](int worker, int w) { kernel_->RunChunk(worker, w); });
    }
    const auto end = std::chrono::steady_clock::now();
    const double wall_s = std::chrono::duration<double>(end - start).count();
    tuner_.OnIteration(std::max(1e-9, wall_s), width);
    completed_iterations_.fetch_add(1);
  }
}

void RtApplication::RunWithDpd() {
  // Binary-only path: the runtime sees a flat stream of parallel regions
  // (loop id = region "address") and learns the outer-loop period with the
  // DPD; only then can it time iterations for the SelfTuner.
  PeriodicityDetector dpd;
  auto boundary_time = std::chrono::steady_clock::now();
  bool have_boundary = false;
  int boundary_width = 1;
  int width = std::clamp(tuner_.WidthFor(allocated_.load()), 1, team_.max_width());
  const std::uint64_t loop_id_base = 0x1000 + static_cast<std::uint64_t>(id_) * 0x100;

  for (int iter = 0; iter < iterations_; ++iter) {
    kernel_->RunSerialPart();
    for (int loop = 0; loop < options_.loops_per_iteration; ++loop) {
      team_.ParallelRegion(width, [&](int worker, int w) { kernel_->RunChunk(worker, w); });
      if (dpd.OnLoopEvent(loop_id_base + static_cast<std::uint64_t>(loop))) {
        const auto now = std::chrono::steady_clock::now();
        if (have_boundary) {
          const double wall_s = std::chrono::duration<double>(now - boundary_time).count();
          // Attribute the period to the width in effect during it; skip
          // periods spanning a resize (the simulator marks those "tainted";
          // here the width only changes at boundaries, so compare).
          if (boundary_width == width) {
            tuner_.OnIteration(std::max(1e-9, wall_s), width);
          }
          detected_boundaries_.fetch_add(1);
        }
        boundary_time = now;
        have_boundary = true;
        // Width changes take effect at detected iteration boundaries; the
        // upcoming period runs (and is attributed to) the new width.
        width = std::clamp(tuner_.WidthFor(allocated_.load()), 1, team_.max_width());
        boundary_width = width;
      }
    }
    completed_iterations_.fetch_add(1);
  }
}

InProcessRm::InProcessRm(Params params) : params_(params) {
  PDPA_CHECK_GE(params.cpu_budget, 1);
  PDPA_CHECK_GT(params.quantum_ms, 0.0);
}

InProcessRm::~InProcessRm() = default;

void InProcessRm::AddApplication(std::unique_ptr<RtApplication> app) {
  PDPA_CHECK(!ran_);
  PDPA_CHECK(app != nullptr);
  Entry entry;
  entry.automaton = std::make_unique<PdpaAutomaton>(params_.pdpa, app->request());
  entry.app = std::move(app);
  entries_.push_back(std::move(entry));
}

int InProcessRm::FreeCpus() const {
  int used = 0;
  for (const Entry& entry : entries_) {
    if (entry.started && !entry.app->finished()) {
      used += entry.app->allocated();
    }
  }
  return std::max(0, params_.cpu_budget - used);
}

bool InProcessRm::ShouldAdmitNext() const {
  int running = 0;
  std::vector<PdpaAppStatus> statuses;
  for (const Entry& entry : entries_) {
    if (entry.started && !entry.app->finished()) {
      ++running;
      statuses.push_back(
          PdpaAppStatus{entry.automaton->Settled(), entry.automaton->BadPerformance()});
    }
  }
  const int free = FreeCpus();
  if (free < 1) {
    return false;
  }
  PdpaMlParams ml;
  ml.default_ml = params_.default_ml;
  return PdpaShouldAdmit(ml, free, running, statuses);
}

void InProcessRm::Run() {
  PDPA_CHECK(!ran_);
  ran_ = true;
  PDPA_CHECK(!entries_.empty());

  const int initial_ml =
      params_.default_ml > 0 ? params_.default_ml : static_cast<int>(entries_.size());

  std::vector<std::thread> app_threads(entries_.size());
  int running_now = 0;
  auto admit = [&](std::size_t index) {
    Entry& entry = entries_[index];
    const int free = std::max(1, FreeCpus());
    const int initial = entry.automaton->OnJobStart(free);
    entry.app->set_allocated(initial);
    entry.final_alloc = initial;
    entry.started = true;
    app_threads[index] = std::thread([&entry] { entry.app->Run(); });
  };

  // Initial admission credit.
  for (std::size_t i = 0; i < entries_.size() && static_cast<int>(i) < initial_ml; ++i) {
    admit(i);
  }

  // PDPA decision loop.
  while (true) {
    // Coordinated admission of queued applications.
    if (params_.default_ml > 0) {
      for (std::size_t i = 0; i < entries_.size(); ++i) {
        if (!entries_[i].started && ShouldAdmitNext()) {
          admit(i);
        }
      }
    }
    running_now = 0;
    for (const Entry& entry : entries_) {
      if (entry.started && !entry.app->finished()) {
        ++running_now;
      }
    }
    max_concurrency_ = std::max(max_concurrency_, running_now);

    bool all_done = true;
    for (Entry& entry : entries_) {
      if (!entry.started) {
        all_done = false;
        continue;
      }
      if (entry.app->finished()) {
        continue;
      }
      all_done = false;
      const auto report = entry.app->tuner().LatestReport();
      if (!report.has_value()) {
        continue;
      }
      // Deduplicate: only evaluate a measurement once.
      if (report->speedup == entry.last_speedup_seen && report->procs == entry.last_procs_seen) {
        continue;
      }
      entry.last_speedup_seen = report->speedup;
      entry.last_procs_seen = report->procs;
      const PdpaDecision decision =
          entry.automaton->OnReport(report->speedup, report->procs, FreeCpus());
      if (decision.changed) {
        entry.app->set_allocated(decision.next_alloc);
        entry.final_alloc = decision.next_alloc;
      } else {
        entry.final_alloc = entry.app->allocated();
      }
    }
    if (all_done) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(params_.quantum_ms));
  }

  for (std::thread& t : app_threads) {
    if (t.joinable()) {
      t.join();
    }
  }
}

int InProcessRm::FinalAllocation(JobId job) const {
  for (const Entry& entry : entries_) {
    if (entry.app->id() == job) {
      return entry.final_alloc;
    }
  }
  return 0;
}

const PdpaAutomaton* InProcessRm::AutomatonFor(JobId job) const {
  for (const Entry& entry : entries_) {
    if (entry.app->id() == job) {
      return entry.automaton.get();
    }
  }
  return nullptr;
}

}  // namespace pdpa
