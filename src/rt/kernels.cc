#include "src/rt/kernels.h"

#include <chrono>
#include <cmath>
#include <thread>

#include "src/common/logging.h"

namespace pdpa {

LatencyKernel::LatencyKernel(double work_ms, double serial_fraction, double scalability)
    : work_ms_(work_ms), serial_fraction_(serial_fraction), scalability_(scalability) {
  PDPA_CHECK_GT(work_ms, 0.0);
  PDPA_CHECK_GE(serial_fraction, 0.0);
  PDPA_CHECK_LE(serial_fraction, 1.0);
  PDPA_CHECK_GE(scalability, 0.0);
  PDPA_CHECK_LE(scalability, 1.0);
}

void LatencyKernel::RunSerialPart() {
  const double serial_ms = work_ms_ * serial_fraction_;
  if (serial_ms > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(serial_ms));
  }
}

void LatencyKernel::RunChunk(int worker_index, int width) {
  (void)worker_index;
  PDPA_CHECK_GE(width, 1);
  const double parallel_ms = work_ms_ * (1.0 - serial_fraction_);
  // Ideal share, degraded by the scalability exponent: width^(1-scalability)
  // models communication/imbalance growing with the team.
  const double share_ms =
      parallel_ms / width * std::pow(static_cast<double>(width), 1.0 - scalability_);
  if (share_ms > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(share_ms));
  }
}

BusyKernel::BusyKernel(long long work_units, double serial_fraction)
    : work_units_(work_units), serial_fraction_(serial_fraction) {
  PDPA_CHECK_GT(work_units, 0);
  PDPA_CHECK_GE(serial_fraction, 0.0);
  PDPA_CHECK_LE(serial_fraction, 1.0);
}

double BusyKernel::Spin(long long units) {
  double x = 1.0;
  for (long long i = 0; i < units; ++i) {
    x = x * 1.0000001 + 0.0000001;
  }
  return x;
}

void BusyKernel::RunSerialPart() {
  const long long serial =
      static_cast<long long>(static_cast<double>(work_units_) * serial_fraction_);
  checksum_ += Spin(serial);
}

void BusyKernel::RunChunk(int worker_index, int width) {
  const long long parallel =
      static_cast<long long>(static_cast<double>(work_units_) * (1.0 - serial_fraction_));
  const double x = Spin(parallel / width);
  // Benign data race on checksum_ across workers is acceptable for an
  // optimizer barrier, but keep it clean anyway: only worker 0 accumulates.
  if (worker_index == 0) {
    checksum_ += x;
  }
}

}  // namespace pdpa
