// SelfTuner: the wall-clock SelfAnalyzer for the live runtime.
//
// Same algorithm as src/runtime/self_analyzer, but measuring real iteration
// times with std::chrono on a running process: baseline iterations with few
// workers, then time-with-P, Amdahl-factor normalization, and a PerfReport
// published for the in-process resource manager.
#ifndef SRC_RT_SELF_TUNER_H_
#define SRC_RT_SELF_TUNER_H_

#include <chrono>
#include <mutex>
#include <optional>

#include "src/runtime/self_analyzer.h"

namespace pdpa {

class SelfTuner {
 public:
  struct Params {
    int baseline_iterations = 2;
    int baseline_width = 1;
    double amdahl_factor = 0.95;
  };

  SelfTuner(JobId job, Params params);

  // Width the application should use for the next iteration: the baseline
  // width until the baseline is measured, then `allocated`.
  int WidthFor(int allocated) const;

  // Records one completed iteration executed with `width` workers.
  void OnIteration(double wall_seconds, int width);

  bool baseline_done() const;
  double baseline_seconds() const;

  // Latest report, if any; thread-safe (the RM thread polls this).
  std::optional<PerfReport> LatestReport() const;

 private:
  JobId job_;
  Params params_;

  mutable std::mutex mutex_;
  bool baseline_done_ = false;
  int baseline_samples_ = 0;
  double baseline_sum_s_ = 0.0;
  double baseline_s_ = 0.0;
  std::optional<PerfReport> latest_;
};

}  // namespace pdpa

#endif  // SRC_RT_SELF_TUNER_H_
