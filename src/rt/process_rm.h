// InProcessRm: PDPA driving real malleable applications inside one process.
//
// Each registered application runs in its own thread, executing iterations
// of a kernel through a MalleableTeam and timing them with a SelfTuner. The
// RM loop polls the tuners and runs one PdpaAutomaton per application — the
// exact same automaton the simulator uses — resizing teams within a global
// worker budget.
#ifndef SRC_RT_PROCESS_RM_H_
#define SRC_RT_PROCESS_RM_H_

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/pdpa.h"
#include "src/rt/kernels.h"
#include "src/rt/malleable_team.h"
#include "src/rt/self_tuner.h"

namespace pdpa {

// One live application: a kernel iterated `iterations` times on a malleable
// team, self-measured by a SelfTuner.
class RtApplication {
 public:
  struct Options {
    // Parallel loops (regions) per outer-loop iteration.
    int loops_per_iteration = 1;
    // "Binary-only" mode: iteration boundaries are not announced by the
    // application; they are discovered from the stream of parallel-loop
    // identifiers with the Dynamic Periodicity Detector, exactly as the
    // paper's dynamic-interposition path does. Measurements start once the
    // detector locks onto the period.
    bool detect_iterations_with_dpd = false;
  };

  RtApplication(JobId id, std::string name, std::unique_ptr<IterativeKernel> kernel,
                int iterations, int request, SelfTuner::Params tuner_params);
  RtApplication(JobId id, std::string name, std::unique_ptr<IterativeKernel> kernel,
                int iterations, int request, SelfTuner::Params tuner_params, Options options);

  JobId id() const { return id_; }
  const std::string& name() const { return name_; }
  int request() const { return request_; }

  // Target width; read between iterations. Set by the RM.
  void set_allocated(int width) { allocated_.store(width); }
  int allocated() const { return allocated_.load(); }

  bool finished() const { return finished_.load(); }
  int completed_iterations() const { return completed_iterations_.load(); }

  SelfTuner& tuner() { return tuner_; }

  // Blocking: runs all iterations. Called from the application thread.
  void Run();

  // In DPD mode: iteration boundaries the detector reported (for tests).
  int detected_boundaries() const { return detected_boundaries_.load(); }

 private:
  void RunExplicit();
  void RunWithDpd();

  JobId id_;
  std::string name_;
  std::unique_ptr<IterativeKernel> kernel_;
  int iterations_;
  int request_;
  SelfTuner tuner_;
  MalleableTeam team_;
  Options options_;
  std::atomic<int> allocated_{1};
  std::atomic<bool> finished_{false};
  std::atomic<int> completed_iterations_{0};
  std::atomic<int> detected_boundaries_{0};
};

// The in-process resource manager. Owns the application threads and the
// PDPA decision loop.
class InProcessRm {
 public:
  struct Params {
    // Total workers the process may use across all applications (the
    // "machine size").
    int cpu_budget = 8;
    // PDPA evaluation cadence.
    double quantum_ms = 50.0;
    PdpaParams pdpa;
    // Coordinated multiprogramming level, like the simulator QS: up to
    // `default_ml` applications run immediately; further registered
    // applications wait until every running one is settled and workers are
    // free (PdpaShouldAdmit). 0 means "run everything at once".
    int default_ml = 0;
  };

  explicit InProcessRm(Params params);
  ~InProcessRm();

  InProcessRm(const InProcessRm&) = delete;
  InProcessRm& operator=(const InProcessRm&) = delete;

  // Registers an application before Run(). Takes ownership.
  void AddApplication(std::unique_ptr<RtApplication> app);

  // Runs every application to completion under PDPA control. Blocking.
  void Run();

  // Final allocation each application converged to (valid after Run()).
  int FinalAllocation(JobId job) const;
  const PdpaAutomaton* AutomatonFor(JobId job) const;

  // Peak number of applications running concurrently (valid after Run()).
  int max_concurrency() const { return max_concurrency_; }

 private:
  struct Entry {
    std::unique_ptr<RtApplication> app;
    std::unique_ptr<PdpaAutomaton> automaton;
    int final_alloc = 1;
    bool started = false;
    // Last report generation consumed (reports are polled).
    double last_speedup_seen = -1.0;
    int last_procs_seen = -1;
  };

  int FreeCpus() const;
  bool ShouldAdmitNext() const;

  Params params_;
  std::vector<Entry> entries_;
  bool ran_ = false;
  int max_concurrency_ = 0;
};

}  // namespace pdpa

#endif  // SRC_RT_PROCESS_RM_H_
