#include "src/rt/self_tuner.h"

#include <algorithm>

#include "src/common/logging.h"

namespace pdpa {

SelfTuner::SelfTuner(JobId job, Params params) : job_(job), params_(params) {
  PDPA_CHECK_GE(params.baseline_iterations, 1);
  PDPA_CHECK_GE(params.baseline_width, 1);
}

int SelfTuner::WidthFor(int allocated) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!baseline_done_) {
    return std::min(allocated, params_.baseline_width);
  }
  return allocated;
}

void SelfTuner::OnIteration(double wall_seconds, int width) {
  PDPA_CHECK_GT(wall_seconds, 0.0);
  PDPA_CHECK_GE(width, 1);
  std::lock_guard<std::mutex> lock(mutex_);
  if (!baseline_done_) {
    if (width <= params_.baseline_width) {
      baseline_sum_s_ += wall_seconds;
      ++baseline_samples_;
      if (baseline_samples_ >= params_.baseline_iterations) {
        baseline_s_ = baseline_sum_s_ / baseline_samples_;
        baseline_done_ = true;
      }
    }
    return;
  }
  const double versus_baseline = baseline_s_ / wall_seconds;
  const double baseline_speedup =
      params_.baseline_width <= 1 ? 1.0 : params_.amdahl_factor * params_.baseline_width;
  PerfReport report;
  report.job = job_;
  report.procs = width;
  report.speedup = std::max(0.05, versus_baseline * baseline_speedup);
  report.efficiency = report.speedup / width;
  report.when = 0;
  latest_ = report;
}

bool SelfTuner::baseline_done() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return baseline_done_;
}

double SelfTuner::baseline_seconds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return baseline_s_;
}

std::optional<PerfReport> SelfTuner::LatestReport() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return latest_;
}

}  // namespace pdpa
