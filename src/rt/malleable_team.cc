#include "src/rt/malleable_team.h"

#include "src/common/logging.h"

namespace pdpa {

MalleableTeam::MalleableTeam(int max_width) : max_width_(max_width) {
  PDPA_CHECK_GE(max_width, 1);
  workers_.reserve(static_cast<std::size_t>(max_width - 1));
  // Worker 0 is the calling (leader) thread; spawn max_width-1 helpers.
  for (int i = 1; i < max_width; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

MalleableTeam::~MalleableTeam() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void MalleableTeam::ParallelRegion(int width, const RegionBody& body) {
  PDPA_CHECK_GE(width, 1);
  PDPA_CHECK_LE(width, max_width_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    active_width_ = width;
    remaining_ = width - 1;  // helpers; the leader runs index 0 itself
    body_ = &body;
    ++generation_;
  }
  work_ready_.notify_all();

  body(0, width);

  std::unique_lock<std::mutex> lock(mutex_);
  work_done_.wait(lock, [this] { return remaining_ == 0; });
  body_ = nullptr;
  ++regions_executed_;
}

void MalleableTeam::WorkerLoop(int worker_index) {
  long long seen_generation = 0;
  while (true) {
    const RegionBody* body = nullptr;
    int width = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [&] {
        return shutdown_ || (generation_ != seen_generation && worker_index < active_width_);
      });
      if (shutdown_) {
        return;
      }
      seen_generation = generation_;
      body = body_;
      width = active_width_;
    }
    (*body)(worker_index, width);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --remaining_;
    }
    work_done_.notify_one();
  }
}

}  // namespace pdpa
