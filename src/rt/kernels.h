// Synthetic iterative kernels for the live runtime.
//
// Each kernel models one outer-loop iteration of a scientific code with a
// configurable scalability profile:
//   * LatencyKernel — the per-iteration critical path is latency/IO bound
//     (modelled by sleeping); it parallelizes across workers and shows real
//     wall-clock speedup even on a single-core host, which is what lets the
//     examples and tests demonstrate the full PDPA feedback loop anywhere.
//   * BusyKernel — CPU-bound spinning; exhibits real speedup only with real
//     cores, and contention when the team is wider than the machine.
// Both accept a serial fraction (Amdahl) and a synthetic efficiency curve so
// "swim-like" or "apsi-like" behavior can be reproduced on the host.
#ifndef SRC_RT_KERNELS_H_
#define SRC_RT_KERNELS_H_

#include <memory>
#include <string>

namespace pdpa {

class IterativeKernel {
 public:
  virtual ~IterativeKernel() = default;

  virtual std::string name() const = 0;

  // Executes worker `worker_index`'s share of one iteration with `width`
  // workers. Called concurrently from all workers of the region.
  virtual void RunChunk(int worker_index, int width) = 0;

  // Serial part of the iteration, run by the leader before the parallel
  // region.
  virtual void RunSerialPart() {}
};

// Latency-bound kernel: an iteration is `work_ms` of waiting, split evenly
// across workers; `serial_fraction` of it is not parallelizable. An optional
// efficiency exponent bends the curve: per-worker time is multiplied by
// (width)^(1 - scalability), so scalability 1.0 is perfectly parallel and
// 0.0 does not scale at all.
class LatencyKernel : public IterativeKernel {
 public:
  LatencyKernel(double work_ms, double serial_fraction, double scalability = 1.0);

  std::string name() const override { return "latency"; }
  void RunChunk(int worker_index, int width) override;
  void RunSerialPart() override;

 private:
  double work_ms_;
  double serial_fraction_;
  double scalability_;
};

// CPU-bound kernel: spins on arithmetic for `work_units` per iteration,
// split across workers.
class BusyKernel : public IterativeKernel {
 public:
  BusyKernel(long long work_units, double serial_fraction);

  std::string name() const override { return "busy"; }
  void RunChunk(int worker_index, int width) override;
  void RunSerialPart() override;

  // Checksum of all the spinning, to keep the optimizer honest.
  double checksum() const { return checksum_; }

 private:
  static double Spin(long long units);

  long long work_units_;
  double serial_fraction_;
  double checksum_ = 0.0;
};

}  // namespace pdpa

#endif  // SRC_RT_KERNELS_H_
