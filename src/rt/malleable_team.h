// MalleableTeam: a real (pthread-backed) worker team whose width can change
// between parallel regions — the NthLib malleability contract on a live
// process.
//
// The leader calls ParallelRegion(width, body): `width` workers execute
// body(worker_index, width) concurrently and the call returns when all are
// done. Width changes take effect at the next region, exactly like an
// OpenMP runtime re-forming its team between parallel regions.
#ifndef SRC_RT_MALLEABLE_TEAM_H_
#define SRC_RT_MALLEABLE_TEAM_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pdpa {

class MalleableTeam {
 public:
  using RegionBody = std::function<void(int worker_index, int width)>;

  // Creates `max_width` persistent worker threads (parked until used).
  explicit MalleableTeam(int max_width);
  ~MalleableTeam();

  MalleableTeam(const MalleableTeam&) = delete;
  MalleableTeam& operator=(const MalleableTeam&) = delete;

  int max_width() const { return max_width_; }

  // Executes one parallel region with `width` workers (1 <= width <=
  // max_width). Blocks until every worker finished the body.
  void ParallelRegion(int width, const RegionBody& body);

  // Number of regions executed (for tests).
  long long regions_executed() const { return regions_executed_; }

 private:
  void WorkerLoop(int worker_index);

  int max_width_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  // Generation counter: workers run the region whose generation they have
  // not executed yet.
  long long generation_ = 0;
  int active_width_ = 0;
  int remaining_ = 0;
  const RegionBody* body_ = nullptr;
  bool shutdown_ = false;
  long long regions_executed_ = 0;
};

}  // namespace pdpa

#endif  // SRC_RT_MALLEABLE_TEAM_H_
