// Cluster of SMPs (the paper's second future-work direction, Sec. 6): a
// set of shared-memory nodes, each managed by its own NANOS RM running its
// own scheduling policy, plus a cluster-level controller that queues each
// arriving job and places it on one node ("cooperation between the
// scheduling policies running on the different machines").
//
// Jobs are node-local: a malleable OpenMP application cannot span nodes, so
// the interesting new decision is *placement*, and the new failure mode is
// node-boundary fragmentation (a 30-CPU request cannot use 2x15 free CPUs
// on two different machines).
//
// Sharded execution (DESIGN.md §13): every node owns a private Simulation
// and advances independently, so the cluster is a conservative parallel
// discrete-event simulation. Nodes are partitioned over `shards` event
// loops (node k lives on shard k % shards); each shard interleaves its
// nodes one event at a time in global (time, node) order and runs freely up
// to the controller's barrier, before which no new cross-node interaction
// can possibly occur. The only cross-node facts are job completions and
// admission flips, which shards surface to the controller at their exact
// timestamps; the controller handles each completion batch, places queued
// jobs, and resumes. Every controller decision is made in canonical
// (time, node-index) order regardless of the shard count, so a run with
// `shards == 1` (which executes inline on the calling thread, with zero
// synchronization) and a run with N worker threads produce byte-identical
// event logs, time-series CSVs and counters. tests/cluster_test.cc asserts
// exactly that.
//
// Epoch batching (default on, `arrival_batch`): instead of re-barriering at
// every single arrival, the controller batches arrivals inside provably
// safe windows — while no node admits, arrivals are pure queue pushes and
// the barrier jumps straight to the cutoff; while nodes admit, successive
// arrival groups are placed in one quiesced cycle as long as each group
// precedes the earliest possible node event. Placements are applied in the
// same canonical (time, node-index) order either way, so batched runs are
// byte-identical to the one-arrival-per-barrier protocol (`arrival_batch =
// false`) except for the two batch-protocol counters
// (cluster.arrival_batches, cluster.batched_arrivals).
#ifndef SRC_CLUSTER_CLUSTER_H_
#define SRC_CLUSTER_CLUSTER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/app/app_profile.h"
#include "src/obs/counters.h"
#include "src/obs/prof.h"
#include "src/qs/job.h"
#include "src/rm/resource_manager.h"

namespace pdpa {

// How the cluster controller picks the node for the next queued job. All
// three break ties toward the lowest node index, which keeps placement —
// and therefore the whole run — deterministic.
enum class PlacementPolicy : int {
  // Rotate over nodes that can admit the job.
  kRoundRobin = 0,
  // Node with the most free processors (best chance of a large initial
  // allocation).
  kMostFreeCpus = 1,
  // Node with the fewest running jobs (spreads the ML pressure).
  kLeastLoaded = 2,
};

const char* PlacementPolicyName(PlacementPolicy policy);
// Compact suffix for sweep-cell names: "rr", "mf", "ll".
const char* PlacementPolicyShortName(PlacementPolicy policy);
// Accepts both the long and the short names. Returns false on anything
// else, leaving *out untouched.
bool ParsePlacementPolicy(std::string_view text, PlacementPolicy* out);

struct ClusterOptions {
  int num_nodes = 1;
  int cpus_per_node = 60;
  PlacementPolicy placement = PlacementPolicy::kRoundRobin;
  // Fresh policy instance per node; required.
  std::function<std::unique_ptr<SchedulingPolicy>()> make_policy;
  // Per-node RM parameters; num_cpus is overridden with cpus_per_node.
  ResourceManager::Params rm_params;
  // Root seed; node k's RM gets the k-th fork, independent of sharding.
  std::uint64_t seed = 1;
  // Worker event loops. 1 (the default) runs the whole cluster inline on
  // the calling thread — the serial reference. Clamped to [1, num_nodes].
  int shards = 1;
  // Simulation-time cutoff; 0 means run until the workload drains.
  SimTime max_sim_time = 0;
  // Epoch-batched arrival handling (see the header comment). The escape
  // hatch (`--no_arrival_batch` in the CLIs) restores the historical
  // one-arrival-per-barrier protocol; outputs differ only in the
  // batch-protocol counters.
  bool arrival_batch = true;
  // Borrowed host-time profiler for the controller thread (null disables).
  // Controller spans: cluster.barrier_wait, cluster.drain, cluster.place.
  // With shards == 1 the node-level sim/rm/obs spans are recorded too (the
  // inline loop runs on the controller thread); with worker threads they
  // stay dark — Profiler is single-writer, and workers never touch it.
  Profiler* profiler = nullptr;
  // Flight-recorder capture. Events and time-series are merged across the
  // controller and all nodes into single deterministic artifacts; the
  // "queued" column of machine samples is always 0 in cluster mode (the
  // backlog lives in the controller, not in any node's RM).
  bool capture_events = false;
  bool capture_timeseries = false;
  // App profile lookup; null means CachedProfile().
  std::function<const AppProfile&(AppClass)> profile_source;
};

struct ClusterResult {
  // Completion order: by finish time, then node index, then per-node
  // completion order. outcome_nodes[i] is the node outcomes[i] ran on.
  std::vector<JobOutcome> outcomes;
  std::vector<int> outcome_nodes;
  bool completed = true;
  // Last completion time, or the cutoff when the run timed out.
  SimTime end_time = 0;
  int shards_used = 1;
  // High-water mark of per-node multiprogramming level.
  int max_node_running = 0;
  long long total_reallocations = 0;
  // Keyed by global job id (per-node integrals remapped).
  std::map<JobId, double> alloc_integral_us;
  // Merged JSONL, ordered by (t_us, stream, line): stream 0 is the
  // controller (job_submit / place / job_finish / run_end), stream k+1 is
  // node k (records carry a trailing "node":k field). Empty unless
  // capture_events.
  std::string events_jsonl;
  // Merged per-node CSV with a leading "node" column (see
  // WriteClusterTimeSeriesCsv). Empty unless capture_timeseries.
  std::string timeseries_csv;
  // Controller + per-node registries merged (counters summed); includes
  // cluster.* controller counters, e.g. cluster.placements.
  RegistrySnapshot counters;
};

// Simulates `workload` (submit-sorted, unique job ids) on the cluster
// described by `options` and returns the merged result. The output contract
// is that every field of ClusterResult is a pure function of (workload,
// options minus shards): the shard count only changes wall-clock time.
ClusterResult RunCluster(const std::vector<JobSpec>& workload, const ClusterOptions& options);

}  // namespace pdpa

#endif  // SRC_CLUSTER_CLUSTER_H_
