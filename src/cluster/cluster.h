// Cluster of SMPs (the paper's second future-work direction, Sec. 6): a
// set of shared-memory nodes, each managed by its own NANOS RM running its
// own scheduling policy, plus a cluster-level queuing system that places
// each arriving job on one node ("cooperation between the scheduling
// policies running on the different machines").
//
// Jobs are node-local: a malleable OpenMP application cannot span nodes, so
// the interesting new decision is *placement*, and the new failure mode is
// node-boundary fragmentation (a 30-CPU request cannot use 2x15 free CPUs
// on two different nodes).
#ifndef SRC_CLUSTER_CLUSTER_H_
#define SRC_CLUSTER_CLUSTER_H_

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "src/qs/job.h"
#include "src/rm/resource_manager.h"
#include "src/sim/simulation.h"

namespace pdpa {

// How the cluster QS picks the node for the next job.
enum class PlacementPolicy : int {
  // Rotate over nodes that can admit the job.
  kRoundRobin = 0,
  // Node with the most free processors (best chance of a large initial
  // allocation).
  kMostFreeCpus = 1,
  // Node with the fewest running jobs (spreads the ML pressure).
  kLeastLoaded = 2,
};

const char* PlacementPolicyName(PlacementPolicy policy);

class Cluster {
 public:
  struct NodeStats {
    int free_cpus = 0;
    int running_jobs = 0;
    bool can_admit = false;
  };

  // Builds `num_nodes` nodes, each with `cpus_per_node` processors and its
  // own policy instance from `make_policy`.
  Cluster(Simulation* sim, int num_nodes, int cpus_per_node,
          const std::function<std::unique_ptr<SchedulingPolicy>()>& make_policy,
          ResourceManager::Params rm_params, Rng rng);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  ResourceManager& node(int index) { return *nodes_[static_cast<std::size_t>(index)]; }

  NodeStats StatsOf(int index) const;

  // Registers the periodic RM tasks on every node.
  void Start();
  void Stop();

  // Installs callbacks shared by all nodes.
  void set_job_finish_callback(ResourceManager::JobFinishCallback callback);
  void set_state_change_callback(ResourceManager::StateChangeCallback callback);

 private:
  std::vector<std::unique_ptr<ResourceManager>> nodes_;
};

// Cluster-level queuing system: FCFS queue + placement.
class ClusterQueuingSystem {
 public:
  ClusterQueuingSystem(Simulation* sim, Cluster* cluster, std::vector<JobSpec> workload,
                       PlacementPolicy placement);

  ClusterQueuingSystem(const ClusterQueuingSystem&) = delete;
  ClusterQueuingSystem& operator=(const ClusterQueuingSystem&) = delete;

  void Start();

  bool AllJobsDone() const { return outcomes_.size() == workload_.size(); }
  const std::vector<JobOutcome>& outcomes() const { return outcomes_; }
  // Node each job ran on, parallel to outcomes().
  const std::vector<int>& outcome_nodes() const { return outcome_nodes_; }
  int queued() const { return static_cast<int>(queue_.size()); }

 private:
  void OnArrival(const JobSpec& spec);
  void TryStartJobs(SimTime now);
  // Returns the chosen node for the head job, or -1 when no node admits it.
  int ChooseNode();

  Simulation* sim_;
  Cluster* cluster_;
  std::vector<JobSpec> workload_;
  PlacementPolicy placement_;

  std::deque<JobSpec> queue_;
  std::map<JobId, JobOutcome> in_flight_;
  std::map<JobId, int> job_node_;
  std::vector<JobOutcome> outcomes_;
  std::vector<int> outcome_nodes_;
  int round_robin_next_ = 0;
  bool started_ = false;
};

}  // namespace pdpa

#endif  // SRC_CLUSTER_CLUSTER_H_
