#include "src/cluster/cluster.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"

namespace pdpa {

const char* PlacementPolicyName(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kRoundRobin:
      return "round-robin";
    case PlacementPolicy::kMostFreeCpus:
      return "most-free";
    case PlacementPolicy::kLeastLoaded:
      return "least-loaded";
  }
  return "?";
}

Cluster::Cluster(Simulation* sim, int num_nodes, int cpus_per_node,
                 const std::function<std::unique_ptr<SchedulingPolicy>()>& make_policy,
                 ResourceManager::Params rm_params, Rng rng) {
  PDPA_CHECK_GE(num_nodes, 1);
  PDPA_CHECK_GE(cpus_per_node, 1);
  rm_params.num_cpus = cpus_per_node;
  nodes_.reserve(static_cast<std::size_t>(num_nodes));
  for (int i = 0; i < num_nodes; ++i) {
    nodes_.push_back(std::make_unique<ResourceManager>(rm_params, make_policy(), sim,
                                                       /*trace=*/nullptr, rng.Fork()));
  }
}

Cluster::NodeStats Cluster::StatsOf(int index) const {
  PDPA_CHECK_GE(index, 0);
  PDPA_CHECK_LT(index, static_cast<int>(nodes_.size()));
  const ResourceManager& rm = *nodes_[static_cast<std::size_t>(index)];
  NodeStats stats;
  stats.free_cpus = rm.machine().FreeCpus();
  stats.running_jobs = rm.running_jobs();
  stats.can_admit = rm.CanStartJob();
  return stats;
}

void Cluster::Start() {
  for (auto& node : nodes_) {
    node->Start();
  }
}

void Cluster::Stop() {
  for (auto& node : nodes_) {
    node->Stop();
  }
}

void Cluster::set_job_finish_callback(ResourceManager::JobFinishCallback callback) {
  for (auto& node : nodes_) {
    node->set_job_finish_callback(callback);
  }
}

void Cluster::set_state_change_callback(ResourceManager::StateChangeCallback callback) {
  for (auto& node : nodes_) {
    node->set_state_change_callback(callback);
  }
}

ClusterQueuingSystem::ClusterQueuingSystem(Simulation* sim, Cluster* cluster,
                                           std::vector<JobSpec> workload,
                                           PlacementPolicy placement)
    : sim_(sim), cluster_(cluster), workload_(std::move(workload)), placement_(placement) {
  PDPA_CHECK(sim != nullptr);
  PDPA_CHECK(cluster != nullptr);
}

void ClusterQueuingSystem::Start() {
  PDPA_CHECK(!started_);
  started_ = true;
  cluster_->set_job_finish_callback([this](JobId job, SimTime finish_time) {
    const auto it = in_flight_.find(job);
    PDPA_CHECK(it != in_flight_.end());
    JobOutcome outcome = it->second;
    in_flight_.erase(it);
    outcome.finish = finish_time;
    outcomes_.push_back(outcome);
    outcome_nodes_.push_back(job_node_[job]);
  });
  cluster_->set_state_change_callback([this](SimTime now) { TryStartJobs(now); });
  for (const JobSpec& spec : workload_) {
    sim_->events().Schedule(spec.submit, [this, spec] { OnArrival(spec); });
  }
}

void ClusterQueuingSystem::OnArrival(const JobSpec& spec) {
  queue_.push_back(spec);
  TryStartJobs(sim_->now());
}

int ClusterQueuingSystem::ChooseNode() {
  const int nodes = cluster_->num_nodes();
  int best = -1;
  switch (placement_) {
    case PlacementPolicy::kRoundRobin: {
      for (int i = 0; i < nodes; ++i) {
        const int candidate = (round_robin_next_ + i) % nodes;
        if (cluster_->StatsOf(candidate).can_admit) {
          round_robin_next_ = (candidate + 1) % nodes;
          return candidate;
        }
      }
      return -1;
    }
    case PlacementPolicy::kMostFreeCpus: {
      int best_free = -1;
      for (int i = 0; i < nodes; ++i) {
        const Cluster::NodeStats stats = cluster_->StatsOf(i);
        if (stats.can_admit && stats.free_cpus > best_free) {
          best_free = stats.free_cpus;
          best = i;
        }
      }
      return best;
    }
    case PlacementPolicy::kLeastLoaded: {
      int best_running = 0;
      for (int i = 0; i < nodes; ++i) {
        const Cluster::NodeStats stats = cluster_->StatsOf(i);
        if (stats.can_admit && (best < 0 || stats.running_jobs < best_running)) {
          best_running = stats.running_jobs;
          best = i;
        }
      }
      return best;
    }
  }
  return -1;
}

void ClusterQueuingSystem::TryStartJobs(SimTime now) {
  while (!queue_.empty()) {
    const int node = ChooseNode();
    if (node < 0) {
      return;
    }
    const JobSpec spec = queue_.front();
    queue_.pop_front();

    JobOutcome outcome;
    outcome.id = spec.id;
    outcome.app_class = spec.app_class;
    outcome.request = spec.request;
    outcome.submit = spec.submit;
    outcome.start = now;
    in_flight_[spec.id] = outcome;
    job_node_[spec.id] = node;
    cluster_->node(node).StartJob(spec.id, MakeProfile(spec.app_class), spec.request, now,
                                  spec.rigid);
  }
}

}  // namespace pdpa
