#include "src/cluster/cluster.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <limits>
#include <mutex>
#include <queue>
#include <set>
#include <sstream>
#include <thread>
#include <utility>

#include "src/common/logging.h"
#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/obs/event_log.h"
#include "src/obs/timeseries.h"
#include "src/sim/simulation.h"

namespace pdpa {

const char* PlacementPolicyName(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kRoundRobin:
      return "round-robin";
    case PlacementPolicy::kMostFreeCpus:
      return "most-free";
    case PlacementPolicy::kLeastLoaded:
      return "least-loaded";
  }
  return "?";
}

const char* PlacementPolicyShortName(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kRoundRobin:
      return "rr";
    case PlacementPolicy::kMostFreeCpus:
      return "mf";
    case PlacementPolicy::kLeastLoaded:
      return "ll";
  }
  return "?";
}

bool ParsePlacementPolicy(std::string_view text, PlacementPolicy* out) {
  if (text == "round-robin" || text == "rr") {
    *out = PlacementPolicy::kRoundRobin;
    return true;
  }
  if (text == "most-free" || text == "mf") {
    *out = PlacementPolicy::kMostFreeCpus;
    return true;
  }
  if (text == "least-loaded" || text == "ll") {
    *out = PlacementPolicy::kLeastLoaded;
    return true;
  }
  return false;
}

namespace {

constexpr SimTime kNever = std::numeric_limits<SimTime>::max();

// One SMP node: a private Simulation plus its NANOS RM and flight-recorder
// sinks. The "visible activity" flags accumulate the node-local facts the
// controller must observe (completions and admission flips); they are
// written by whichever thread is advancing the node's shard and read by the
// controller only while that shard is stopped — the engine mutex provides
// the happens-before edge, audit builds additionally verify log-sink
// confinement via the Handoff protocol.
struct Node {
  int index = 0;
  Registry registry;
  Simulation sim{&registry};
  std::unique_ptr<ResourceManager> rm;

  std::ostringstream events_sink;
  std::unique_ptr<EventLog> event_log;            // null unless capturing
  std::unique_ptr<TimeSeriesSampler> timeseries;  // null unless capturing

  // Completions since the controller last drained this node, in callback
  // order, as *local* job ids (dense per node, so the RM's JobId-indexed
  // tables stay small no matter how many global jobs the cluster runs).
  std::vector<JobId> finished_local;
  // Controller's last synced view of rm->CanStartJob(), and whether any
  // flip (in either direction) happened since — a flip-and-back still
  // pauses the shard, and the controller deterministically re-syncs to the
  // (unchanged) final value in both the sharded and the serial run.
  bool admit_shadow = false;
  bool admit_changed = false;
  bool in_visible_list = false;

  // rm->Start() active. A started node with zero jobs is parked again at
  // the completion batch that emptied it, which keeps idle node event
  // queues empty — the engine's termination argument (and AdvanceTo's
  // no-skipped-events contract) depends on that.
  bool started = false;

  // Local id -> workload entry / start time.
  std::vector<const JobSpec*> local_spec;
  std::vector<SimTime> local_start;

  // Key of this node's freshest shard-heap entry; kNever when none. Heap
  // entries are invalidated lazily: an entry is live iff its key still
  // equals queued_at.
  SimTime queued_at = kNever;

  SimTime NextEventTime() { return sim.events().empty() ? kNever : sim.events().NextTime(); }
  bool HasVisible() const { return !finished_local.empty() || admit_changed; }
  void HandoffSinks() {
    if (event_log != nullptr) {
      event_log->HandoffConfinement();
    }
    if (timeseries != nullptr) {
      timeseries->HandoffConfinement();
    }
  }
};

enum class ShardState {
  kQuiesced,       // no work at or before the barrier; heap top is stale-free
  kRunning,        // dispatched; a worker is (or will be) advancing it
  kPausedVisible,  // stopped at visible_time with undrained visible activity
  kExit,           // run over; worker should return
};

struct HeapEntry {
  SimTime t = 0;
  Node* node = nullptr;
};

struct HeapEntryAfter {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    if (a.t != b.t) {
      return a.t > b.t;
    }
    return a.node->index > b.node->index;
  }
};

// One worker event loop over a subset of the nodes. `state`, `visible_*`
// and the heap are guarded by the engine mutex at every ownership transfer;
// `watermark` is the lock-free progress signal the controller polls to
// decide when a completion batch time is globally safe.
struct Shard {
  int index = 0;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapEntryAfter> heap;
  // Nodes with undrained visible activity, in ascending index order (the
  // heap tie-break drains same-time events lowest-node-first).
  std::vector<Node*> visible_nodes;
  SimTime visible_time = kNever;
  // Lower bound on this shard's next dispatch time while kRunning: no event
  // at or before the watermark will ever be dispatched again.
  std::atomic<SimTime> watermark{0};
  ShardState state = ShardState::kQuiesced;
  std::condition_variable_any cv;
  std::thread thread;
};

// The cluster controller plus its worker pool. The simulation advances in
// alternating strides: workers race ahead to the arrival barrier while the
// controller sleeps; the moment the earliest visible time C is globally
// safe (every still-running shard's watermark has passed C), the controller
// drains the batch at C — completions first, then placements, then parking
// — in canonical node order, and resumes the involved shards. Arrivals are
// handled only when every shard has quiesced at the barrier, which is
// automatic: workers never dispatch past it. With shards == 1 the same
// code runs inline on the calling thread and the watermark/condvar
// machinery is bypassed entirely — that is the serial reference the
// byte-identity contract is stated against.
class ClusterEngine {
 public:
  ClusterEngine(const std::vector<JobSpec>& workload, const ClusterOptions& options)
      : workload_(workload), options_(options) {
    PDPA_CHECK_GE(options.num_nodes, 1);
    PDPA_CHECK_GE(options.cpus_per_node, 1);
    PDPA_CHECK(options.make_policy != nullptr) << "ClusterOptions::make_policy is required";
    for (std::size_t i = 1; i < workload.size(); ++i) {
      PDPA_CHECK_GE(workload[i].submit, workload[i - 1].submit)
          << "cluster workload must be submit-sorted";
    }
    shard_count_ = std::min(std::max(options.shards, 1), options.num_nodes);
    threaded_ = shard_count_ > 1;
    batch_ = options.arrival_batch;
    profiler_ = options.profiler;
    profile_source_ = options.profile_source
                          ? options.profile_source
                          : [](AppClass app_class) -> const AppProfile& {
                              return CachedProfile(app_class);
                            };

    arrivals_ = controller_registry_.counter("cluster.arrivals");
    arrival_batches_ = controller_registry_.counter("cluster.arrival_batches");
    batched_arrivals_ = controller_registry_.counter("cluster.batched_arrivals");
    placements_ = controller_registry_.counter("cluster.placements");
    completions_ = controller_registry_.counter("cluster.completions");
    completion_batches_ = controller_registry_.counter("cluster.completion_batches");
    parks_ = controller_registry_.counter("cluster.parks");
    wakes_ = controller_registry_.counter("cluster.wakes");
    if (options.capture_events) {
      controller_log_ = std::make_unique<EventLog>(&controller_sink_);
    }

    Rng rng(options.seed);
    ResourceManager::Params rm_params = options.rm_params;
    rm_params.num_cpus = options.cpus_per_node;
    nodes_.reserve(static_cast<std::size_t>(options.num_nodes));
    for (int k = 0; k < options.num_nodes; ++k) {
      auto node = std::make_unique<Node>();
      Node* raw = node.get();
      raw->index = k;
      raw->rm = std::make_unique<ResourceManager>(rm_params, options.make_policy(), &raw->sim,
                                                  /*trace=*/nullptr, rng.Fork());
      if (options.capture_events) {
        raw->event_log = std::make_unique<EventLog>(&raw->events_sink);
        raw->event_log->set_node_tag(k);
        raw->rm->set_event_log(raw->event_log.get());
        raw->rm->policy().set_event_log(raw->event_log.get());
      }
      if (options.capture_timeseries) {
        raw->timeseries = std::make_unique<TimeSeriesSampler>();
        raw->rm->set_timeseries(raw->timeseries.get());
      }
      if (profiler_ != nullptr && shard_count_ == 1) {
        // Serial inline loop: node code runs on the controller thread, so
        // the sim/rm/obs spans can share the controller's profiler. With
        // worker threads they must stay dark (Profiler is single-writer).
        raw->rm->set_profiler(profiler_);
        raw->sim.events().set_profiler(profiler_);
        if (raw->event_log != nullptr) {
          raw->event_log->set_profiler(profiler_);
        }
      }
      raw->rm->set_job_finish_callback(
          [raw](JobId local, SimTime) { raw->finished_local.push_back(local); });
      raw->rm->set_state_change_callback([raw](SimTime) {
        const bool admit = raw->rm->CanStartJob();
        if (admit != raw->admit_shadow) {
          raw->admit_shadow = admit;
          raw->admit_changed = true;
        }
      });
      raw->admit_shadow = raw->rm->CanStartJob();
      if (raw->admit_shadow) {
        admitting_.insert(k);
      }
      nodes_.push_back(std::move(node));
    }

    shards_.reserve(static_cast<std::size_t>(shard_count_));
    for (int s = 0; s < shard_count_; ++s) {
      shards_.push_back(std::make_unique<Shard>());
      shards_.back()->index = s;
    }
    shard_of_.reserve(nodes_.size());
    for (int k = 0; k < options.num_nodes; ++k) {
      shard_of_.push_back(shards_[static_cast<std::size_t>(k % shard_count_)].get());
    }
  }

  ClusterResult Run() {
    const int total = static_cast<int>(workload_.size());
    if (threaded_) {
      for (auto& shard : shards_) {
        Shard* s = shard.get();
        s->thread = std::thread([this, s] { ShardLoop(*s); });
      }
    }

    const SimTime cutoff = options_.max_sim_time > 0 ? options_.max_sim_time : kNever;
    while (completed_ < total) {
      const SimTime arrival_t = arrival_ix_ < total
                                    ? workload_[static_cast<std::size_t>(arrival_ix_)].submit
                                    : kNever;
      // Epoch selection. While no node admits (regime B), an arrival is a
      // pure queue push that reads no node state, so the barrier jumps
      // straight to the cutoff and pending arrivals are folded into the
      // completion batches they precede. Otherwise (regime A) the next
      // arrival re-barriers exactly as in the reference protocol; arrival
      // batching then happens inside HandleArrivals' safe window.
      const bool pure_enqueue = batch_ && admitting_.empty();
      const SimTime barrier = pure_enqueue ? cutoff : std::min(arrival_t, cutoff);
      barrier_.store(barrier);

      SimTime visible = kNever;
      {
        ProfScope wait_scope(profiler_, SpanId::kClusterBarrierWait);
        if (threaded_) {
          std::unique_lock<Mutex> lock(engine_mutex_);
          DispatchRunnableLocked(barrier);
          visible = WaitActionableLocked(lock, barrier);
        } else {
          Shard& s = *shards_[0];
          const SimTime top = s.state == ShardState::kQuiesced ? ValidTop(s) : kNever;
          if (top != kNever && top <= barrier) {
            s.state = AdvanceShard(s);
          }
          if (s.state == ShardState::kPausedVisible && s.visible_time <= barrier) {
            visible = s.visible_time;
          }
        }
      }

      if (visible != kNever) {
        DrainVisible(visible);
        continue;
      }
      // Every shard has drained its work at or before the barrier. A pause
      // beyond the barrier (left over from a wider regime-B epoch) stays
      // parked: its nodes are provably absent from the admitting set, so no
      // placement can touch them before their batch time becomes actionable.
      if (arrival_t != kNever && arrival_t <= cutoff) {
        HandleArrivals(arrival_t, cutoff);
        continue;
      }
      // No arrival at or before the cutoff is left. With an unbounded
      // cutoff this is the reference protocol's stuck condition (arrivals
      // were all enqueued above, so the queue size diagnostic matches).
      PDPA_CHECK(cutoff != kNever)
          << "cluster stuck: " << queue_.size() << " queued jobs, no arrivals, no running work";
      end_time_ = cutoff;
      break;
    }

    if (threaded_) {
      std::unique_lock<Mutex> lock(engine_mutex_);
      // Stragglers from a pipelined final batch quiesce on their own (all
      // emptied nodes are parked, so no shard has work left).
      notify_past_.store(kNever);
      controller_cv_.wait(lock, [this] {
        for (const auto& shard : shards_) {
          if (shard->state == ShardState::kRunning) {
            return false;
          }
        }
        return true;
      });
      for (auto& shard : shards_) {
        shard->state = ShardState::kExit;
        shard->cv.notify_one();
      }
      lock.unlock();
      for (auto& shard : shards_) {
        shard->thread.join();
      }
    }

    return Finalize(total);
  }

 private:
  // --- shard side ---------------------------------------------------------

  // (Re)queues `node` in its shard's heap if its next event time moved.
  static void PushNode(Shard& s, Node& node) {
    const SimTime t = node.NextEventTime();
    if (t == kNever) {
      node.queued_at = kNever;
      return;
    }
    if (node.queued_at == t) {
      return;
    }
    node.queued_at = t;
    s.heap.push(HeapEntry{t, &node});
  }

  // Controller-only (shard stopped): prunes stale entries, returns the next
  // live event time.
  static SimTime ValidTop(Shard& s) {
    while (!s.heap.empty() && s.heap.top().t != s.heap.top().node->queued_at) {
      s.heap.pop();
    }
    return s.heap.empty() ? kNever : s.heap.top().t;
  }

  // Advances the shard's nodes one event at a time in (time, node) order
  // until the next event would cross the barrier (quiesce) or lies beyond
  // the first visible activity (pause — same-timestamp events drain first,
  // so a pause at C means everything at or before C has run).
  ShardState AdvanceShard(Shard& s) {
    const SimTime barrier = barrier_.load();
    bool pending_visible = false;
    SimTime visible_time = kNever;
    for (;;) {
      SimTime next_t = kNever;
      Node* node = nullptr;
      while (!s.heap.empty()) {
        const HeapEntry& top = s.heap.top();
        if (top.t != top.node->queued_at) {
          s.heap.pop();
          continue;
        }
        next_t = top.t;
        node = top.node;
        break;
      }
      if (pending_visible && next_t > visible_time) {
        s.visible_time = visible_time;
        return ShardState::kPausedVisible;
      }
      // kNever (drained heap) quiesces even against a kNever barrier.
      if (next_t == kNever || next_t > barrier) {
        return ShardState::kQuiesced;
      }
      if (threaded_) {
        PublishWatermark(s, next_t);
      }
      s.heap.pop();
      node->queued_at = kNever;
      node->sim.Step();
      if (!node->in_visible_list && node->HasVisible()) {
        node->in_visible_list = true;
        s.visible_nodes.push_back(node);
        if (!pending_visible) {
          pending_visible = true;
          visible_time = next_t;
        }
      }
      PushNode(s, *node);
    }
  }

  // Publishes shard progress and pokes the controller exactly when the
  // watermark crosses the armed batch time. The empty mutex section pairs
  // with the controller holding the mutex from arming through wait, closing
  // the lost-wakeup window.
  void PublishWatermark(Shard& s, SimTime next_t) {
    const SimTime prev = s.watermark.load(std::memory_order_relaxed);
    s.watermark.store(next_t);
    const SimTime armed = notify_past_.load();
    if (prev <= armed && next_t > armed) {
      { const MutexLock guard(&engine_mutex_); }
      controller_cv_.notify_one();
    }
  }

  void ShardLoop(Shard& s) {
    std::unique_lock<Mutex> lock(engine_mutex_);
    for (;;) {
      s.cv.wait(lock,
                [&s] { return s.state == ShardState::kRunning || s.state == ShardState::kExit; });
      if (s.state == ShardState::kExit) {
        return;
      }
      lock.unlock();
      const ShardState next = AdvanceShard(s);
      lock.lock();
      s.state = next;
      controller_cv_.notify_one();
    }
  }

  // --- controller side ----------------------------------------------------

  void DispatchRunnableLocked(SimTime barrier) {
    for (auto& shard : shards_) {
      Shard& s = *shard;
      if (s.state != ShardState::kQuiesced) {
        continue;
      }
      const SimTime top = ValidTop(s);
      if (top == kNever || top > barrier) {
        continue;
      }
      // Conservative reset: the worker publishes a real watermark on its
      // first dispatch; a stale high value must not fake batch readiness.
      s.watermark.store(0);
      s.state = ShardState::kRunning;
      s.cv.notify_one();
    }
  }

  // Blocks until either the earliest visible time C <= barrier is globally
  // safe (returned) or every shard has quiesced at the barrier (kNever). A
  // pause beyond the barrier — left over from a wider regime-B epoch — is
  // not actionable this cycle and does not count as running either: its
  // batch drains in a later cycle once the barrier catches up to it.
  SimTime WaitActionableLocked(std::unique_lock<Mutex>& lock, SimTime barrier) {
    for (;;) {
      SimTime candidate = kNever;
      bool any_running = false;
      for (const auto& shard : shards_) {
        if (shard->state == ShardState::kPausedVisible && shard->visible_time <= barrier) {
          candidate = std::min(candidate, shard->visible_time);
        } else if (shard->state == ShardState::kRunning) {
          any_running = true;
        }
      }
      // Arm before scanning watermarks: a worker that crosses `candidate`
      // after our scan is then guaranteed to observe the armed value and
      // notify.
      notify_past_.store(candidate);
      if (candidate != kNever) {
        bool safe = true;
        for (const auto& shard : shards_) {
          if (shard->state == ShardState::kRunning && shard->watermark.load() <= candidate) {
            safe = false;
            break;
          }
        }
        if (safe) {
          return candidate;
        }
      } else if (!any_running) {
        return kNever;
      }
      controller_cv_.wait(lock);
    }
  }

  // Handles the visible batch at `t` and then — regime B only — keeps
  // draining successive globally-safe pause times in the same controller
  // wakeup. Coalescing t2 is safe when every quiesced shard's next live
  // event and every running shard's watermark lie strictly beyond t2: no
  // shard can then produce an event at or before t2 that is not already
  // part of t2's paused batches. Watermarks are monotone, so the lock-held
  // scan cannot race with a worker crossing t2 afterwards. The loop exits
  // on a regime switch (some node admits again — the outer loop must
  // re-barrier at the next arrival) and hands a not-yet-safe t2 back to
  // the outer loop, which arms notify_past_ and waits properly. Drains stay
  // globally ascending in time in both modes, so the batch counters are
  // shard-count-invariant.
  void DrainVisible(SimTime t) {
    for (;;) {
      if (batch_) {
        EnqueueArrivalsBefore(t);
      }
      {
        ProfScope drain_scope(profiler_, SpanId::kClusterDrain);
        HandleVisibleBatch(t);
      }
      if (!batch_ || !admitting_.empty()) {
        return;
      }
      SimTime t2 = kNever;
      {
        std::unique_lock<Mutex> lock(engine_mutex_, std::defer_lock);
        if (threaded_) {
          lock.lock();
        }
        for (const auto& shard : shards_) {
          if (shard->state == ShardState::kPausedVisible) {
            t2 = std::min(t2, shard->visible_time);
          }
        }
        if (t2 == kNever) {
          return;
        }
        for (const auto& shard : shards_) {
          Shard& s = *shard;
          if (s.state == ShardState::kQuiesced && ValidTop(s) <= t2) {
            return;  // a shard needs a redispatch below t2 first
          }
          if (s.state == ShardState::kRunning && s.watermark.load() <= t2) {
            return;  // not yet provably safe; the outer loop waits for it
          }
        }
      }
      t = t2;
    }
  }

  // Regime-B feeder: while no node admits, an arrival strictly before the
  // completion batch at `t` is a pure queue push that reads no node state,
  // logged and counted exactly as its own barrier cycle would have done
  // (submits before t precede finishes at t; arrivals at t itself wait
  // until after the batch, matching the reference finish-before-submit tie
  // order).
  void EnqueueArrivalsBefore(SimTime t) {
    const int total = static_cast<int>(workload_.size());
    if (arrival_ix_ >= total || workload_[static_cast<std::size_t>(arrival_ix_)].submit >= t) {
      return;
    }
    arrival_batches_->Increment();
    while (arrival_ix_ < total && workload_[static_cast<std::size_t>(arrival_ix_)].submit < t) {
      const JobSpec& spec = workload_[static_cast<std::size_t>(arrival_ix_)];
      ++arrival_ix_;
      arrivals_->Increment();
      batched_arrivals_->Increment();
      if (controller_log_ != nullptr) {
        controller_log_->JobSubmit(spec.submit, spec.id, AppClassName(spec.app_class),
                                   spec.request, spec.rigid);
      }
      queue_.push_back(&spec);
    }
  }

  // Earliest instant any node could produce an event, over all shards: a
  // paused shard's next activity is its undrained visible time (its heap
  // top is strictly later), a quiesced shard's is its next live heap entry.
  // Controller-only, with no shard running.
  SimTime EarliestClusterEvent() {
    SimTime e = kNever;
    for (const auto& shard : shards_) {
      Shard& s = *shard;
      e = std::min(e, s.state == ShardState::kPausedVisible ? s.visible_time : ValidTop(s));
    }
    return e;
  }

  // Drains every shard paused at exactly `t`: records completions, syncs
  // admission, places queued jobs, parks emptied nodes — all in canonical
  // (time, node-index) order — then resumes the involved shards.
  void HandleVisibleBatch(SimTime t) {
    completion_batches_->Increment();
    batch_shards_.clear();
    batch_nodes_.clear();
    {
      std::unique_lock<Mutex> lock(engine_mutex_, std::defer_lock);
      if (threaded_) {
        lock.lock();
      }
      for (auto& shard : shards_) {
        if (shard->state == ShardState::kPausedVisible && shard->visible_time == t) {
          batch_shards_.push_back(shard.get());
        }
      }
    }
    for (Shard* s : batch_shards_) {
      for (Node* node : s->visible_nodes) {
        batch_nodes_.push_back(node);
      }
      s->visible_nodes.clear();
    }
    std::sort(batch_nodes_.begin(), batch_nodes_.end(),
              [](const Node* a, const Node* b) { return a->index < b->index; });

    for (Node* node : batch_nodes_) {
      node->in_visible_list = false;
      if (!node->finished_local.empty()) {
        end_time_ = t;
      }
      for (const JobId local : node->finished_local) {
        const JobSpec& spec = *node->local_spec[static_cast<std::size_t>(local)];
        JobOutcome outcome;
        outcome.id = spec.id;
        outcome.app_class = spec.app_class;
        outcome.request = spec.request;
        outcome.submit = spec.submit;
        outcome.start = node->local_start[static_cast<std::size_t>(local)];
        outcome.finish = t;
        outcomes_.push_back(outcome);
        outcome_nodes_.push_back(node->index);
        ++completed_;
        completions_->Increment();
        if (controller_log_ != nullptr) {
          controller_log_->JobFinish(t, spec.id, spec.submit, outcome.start);
        }
      }
      node->finished_local.clear();
      node->admit_changed = false;
      SetAdmitting(node->index, node->admit_shadow);
    }

    TryStartJobs(t);
    for (Node* node : batch_nodes_) {
      MaybePark(*node);
    }
    ReleaseTouchedNodes();

    {
      std::unique_lock<Mutex> lock(engine_mutex_, std::defer_lock);
      if (threaded_) {
        lock.lock();
      }
      for (Shard* s : batch_shards_) {
        s->visible_time = kNever;
        s->state = ShardState::kQuiesced;
      }
    }
  }

  // All shards have drained at or before the barrier and the arrival at t
  // is due: enqueue every arrival at t (workload order), place, and — with
  // batching on — keep consuming later arrival groups while each strictly
  // precedes the earliest possible node event E (recomputed after every
  // group's placements). Inside the window no node can produce any event,
  // so the controller state each rr/mf/ll decision reads is exactly the
  // state the one-arrival-per-barrier protocol would read at that group's
  // own barrier cycle — placements are byte-identical.
  void HandleArrivals(SimTime t, SimTime cutoff) {
    arrival_batches_->Increment();
    const int total = static_cast<int>(workload_.size());
    bool first_group = true;
    for (;;) {
      while (arrival_ix_ < total &&
             workload_[static_cast<std::size_t>(arrival_ix_)].submit == t) {
        const JobSpec& spec = workload_[static_cast<std::size_t>(arrival_ix_)];
        ++arrival_ix_;
        arrivals_->Increment();
        if (!first_group) {
          batched_arrivals_->Increment();
        }
        if (controller_log_ != nullptr) {
          controller_log_->JobSubmit(t, spec.id, AppClassName(spec.app_class), spec.request,
                                     spec.rigid);
        }
        queue_.push_back(&spec);
      }
      TryStartJobs(t);
      ReleaseTouchedNodes();
      if (!batch_ || arrival_ix_ >= total) {
        return;
      }
      first_group = false;
      const SimTime next_t = workload_[static_cast<std::size_t>(arrival_ix_)].submit;
      if (next_t > cutoff || next_t >= EarliestClusterEvent()) {
        return;
      }
      t = next_t;
    }
  }

  void TryStartJobs(SimTime now) {
    while (!queue_.empty()) {
      const int k = ChooseNode();
      if (k < 0) {
        return;
      }
      const JobSpec* spec = queue_.front();
      queue_.pop_front();
      PlaceJob(*spec, k, now);
    }
  }

  // Picks the node for the head job from the admitting set (kept exact at
  // every decision point), ties always to the lowest index.
  int ChooseNode() {
    if (admitting_.empty()) {
      return -1;
    }
    switch (options_.placement) {
      case PlacementPolicy::kRoundRobin: {
        auto it = admitting_.lower_bound(rr_next_);
        if (it == admitting_.end()) {
          it = admitting_.begin();
        }
        const int k = *it;
        rr_next_ = (k + 1) % options_.num_nodes;
        return k;
      }
      case PlacementPolicy::kMostFreeCpus: {
        int best = -1;
        int best_free = -1;
        for (const int k : admitting_) {
          const int free = nodes_[static_cast<std::size_t>(k)]->rm->machine().FreeCpus();
          if (free > best_free) {
            best_free = free;
            best = k;
            if (free == options_.cpus_per_node) {
              break;  // an empty node cannot be beaten
            }
          }
        }
        return best;
      }
      case PlacementPolicy::kLeastLoaded: {
        int best = -1;
        int best_running = 0;
        for (const int k : admitting_) {
          const int running = nodes_[static_cast<std::size_t>(k)]->rm->running_jobs();
          if (best < 0 || running < best_running) {
            best_running = running;
            best = k;
            if (running == 0) {
              break;
            }
          }
        }
        return best;
      }
    }
    return -1;
  }

  void PlaceJob(const JobSpec& spec, int k, SimTime now) {
    ProfScope place_scope(profiler_, SpanId::kClusterPlace);
    Node& node = *nodes_[static_cast<std::size_t>(k)];
    TouchNode(node);
    if (!node.started) {
      WakeNode(node, now);
    } else if (node.sim.now() < now) {
      // Idle-but-started node lagging the controller clock; nothing can be
      // pending before `now` (its shard drained everything at or before the
      // handled time), so the warp is safe.
      node.sim.AdvanceTo(now);
    }
    const JobId local = static_cast<JobId>(node.local_spec.size());
    node.local_spec.push_back(&spec);
    node.local_start.push_back(now);
    node.rm->StartJob(local, profile_source_(spec.app_class), spec.request, now, spec.rigid);
    placements_->Increment();
    max_node_running_ = std::max(max_node_running_, node.rm->running_jobs());
    if (controller_log_ != nullptr) {
      place_scratch_.clear();
      JsonObjectWriter writer(&place_scratch_);
      writer.Field("type", "place");
      writer.Field("t_us", static_cast<long long>(now));
      writer.Field("job", static_cast<long long>(spec.id));
      writer.Field("node", k);
      writer.Field("local", static_cast<long long>(local));
      writer.Finish();
      controller_log_->Emit(place_scratch_);
    }
    node.admit_shadow = node.rm->CanStartJob();
    node.admit_changed = false;
    SetAdmitting(k, node.admit_shadow);
    PushNode(*shard_of_[static_cast<std::size_t>(k)], node);
  }

  void WakeNode(Node& node, SimTime t) {
    PDPA_CHECK(node.sim.events().empty()) << "parked node " << node.index << " has events";
    node.sim.AdvanceTo(t);
    node.rm->Start();
    node.started = true;
    wakes_->Increment();
  }

  void MaybePark(Node& node) {
    if (!node.started || node.rm->running_jobs() != 0) {
      return;
    }
    TouchNode(node);
    node.rm->Stop();
    PDPA_CHECK(node.sim.events().empty())
        << "node " << node.index << " still has events after Stop()";
    node.started = false;
    node.queued_at = kNever;
    parks_->Increment();
  }

  void SetAdmitting(int k, bool admit) {
    if (admit) {
      admitting_.insert(k);
    } else {
      admitting_.erase(k);
    }
  }

  // Claims a node's log sinks for the controller thread (audit builds) and
  // remembers to release them before the node's shard resumes.
  void TouchNode(Node& node) {
    node.HandoffSinks();
    touched_nodes_.push_back(&node);
  }

  void ReleaseTouchedNodes() {
    for (Node* node : touched_nodes_) {
      node->HandoffSinks();
    }
    touched_nodes_.clear();
  }

  ClusterResult Finalize(int total) {
    // Cutoff path: nodes may still be running jobs. Advance each to the
    // cutoff (its remaining events are all beyond it) and flush.
    for (auto& node_ptr : nodes_) {
      Node& node = *node_ptr;
      if (!node.started) {
        continue;
      }
      node.HandoffSinks();
      if (node.sim.now() < end_time_) {
        node.sim.AdvanceTo(end_time_);
      }
      node.rm->Stop();
      node.started = false;
    }
    if (controller_log_ != nullptr) {
      controller_log_->RunEnd(end_time_, total, completed_ == total);
    }

    ClusterResult result;
    result.outcomes = std::move(outcomes_);
    result.outcome_nodes = std::move(outcome_nodes_);
    result.completed = completed_ == total;
    result.end_time = end_time_;
    result.shards_used = shard_count_;
    result.max_node_running = max_node_running_;
    for (auto& node_ptr : nodes_) {
      Node& node = *node_ptr;
      result.total_reallocations += node.rm->total_reallocations();
      for (const auto& [local, integral] : node.rm->alloc_integral_us()) {
        result.alloc_integral_us[node.local_spec[static_cast<std::size_t>(local)]->id] +=
            integral;
      }
    }
    if (options_.capture_events) {
      controller_log_->Flush();
      std::vector<std::string> streams;
      streams.reserve(nodes_.size() + 1);
      streams.push_back(controller_sink_.str());
      for (auto& node_ptr : nodes_) {
        node_ptr->event_log->Flush();
        streams.push_back(node_ptr->events_sink.str());
      }
      result.events_jsonl = MergeEventStreams(streams);
    }
    if (options_.capture_timeseries) {
      std::vector<const TimeSeriesSampler*> samplers;
      samplers.reserve(nodes_.size());
      for (auto& node_ptr : nodes_) {
        samplers.push_back(node_ptr->timeseries.get());
      }
      std::ostringstream csv;
      WriteClusterTimeSeriesCsv(samplers, csv);
      result.timeseries_csv = csv.str();
    }
    std::vector<RegistrySnapshot> parts;
    parts.reserve(nodes_.size() + 1);
    parts.push_back(controller_registry_.Snapshot());
    for (auto& node_ptr : nodes_) {
      parts.push_back(node_ptr->registry.Snapshot());
    }
    std::vector<const RegistrySnapshot*> part_ptrs;
    part_ptrs.reserve(parts.size());
    for (const RegistrySnapshot& part : parts) {
      part_ptrs.push_back(&part);
    }
    result.counters = MergeRegistrySnapshots(part_ptrs);
    return result;
  }

  const std::vector<JobSpec>& workload_;
  const ClusterOptions& options_;
  int shard_count_ = 1;
  bool threaded_ = false;
  // Epoch batching enabled (ClusterOptions::arrival_batch). Off restores the
  // historical one-arrival-per-barrier protocol bit for bit.
  bool batch_ = true;
  // Controller-thread profiler; null when profiling is off.
  Profiler* profiler_ = nullptr;
  std::function<const AppProfile&(AppClass)> profile_source_;

  Registry controller_registry_;
  Counter* arrivals_ = nullptr;
  Counter* arrival_batches_ = nullptr;
  Counter* batched_arrivals_ = nullptr;
  Counter* placements_ = nullptr;
  Counter* completions_ = nullptr;
  Counter* completion_batches_ = nullptr;
  Counter* parks_ = nullptr;
  Counter* wakes_ = nullptr;
  std::ostringstream controller_sink_;
  std::unique_ptr<EventLog> controller_log_;
  std::string place_scratch_;

  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<Shard*> shard_of_;

  // Controller scheduling state.
  std::set<int> admitting_;
  std::deque<const JobSpec*> queue_;
  int rr_next_ = 0;
  int arrival_ix_ = 0;
  int completed_ = 0;
  SimTime end_time_ = 0;
  int max_node_running_ = 0;
  std::vector<JobOutcome> outcomes_;
  std::vector<int> outcome_nodes_;
  std::vector<Shard*> batch_shards_;
  std::vector<Node*> batch_nodes_;
  std::vector<Node*> touched_nodes_;

  // Cross-thread coordination (threaded mode only). Ranked above the fork
  // group lock (a worker may enter the engine while its sweep cell holds no
  // other lock) and below the Registry: the engine never holds this across
  // counter registration (DESIGN.md §8). std::unique_lock via the
  // BasicLockable aliases, because the controller/shard wait loops need
  // condition_variable_any.
  Mutex engine_mutex_{PDPA_LOCK_RANK(30)};
  std::condition_variable_any controller_cv_;
  std::atomic<SimTime> barrier_{0};
  // The batch time the controller is currently waiting on; workers notify
  // when their watermark first crosses it.
  std::atomic<SimTime> notify_past_{kNever};
};

}  // namespace

ClusterResult RunCluster(const std::vector<JobSpec>& workload, const ClusterOptions& options) {
  ClusterEngine engine(workload, options);
  return engine.Run();
}

}  // namespace pdpa
