// A fixed-capacity CPU set, the unit of space-sharing allocation.
//
// Stored as raw 64-bit words (not std::bitset) so scans are word-at-a-time:
// First/Next/Count/ToVector skip empty words and use countr_zero/popcount
// instead of probing all 128 slots bit by bit. These scans sit on the RM's
// allocation hot path (every ApplyAllocation walks owner sets).
#ifndef SRC_MACHINE_CPUSET_H_
#define SRC_MACHINE_CPUSET_H_

#include <array>
#include <bit>
#include <cstdint>
#include <string>
#include <vector>

namespace pdpa {

// Upper bound on machine size; the paper's Origin 2000 has 64 CPUs.
inline constexpr int kMaxCpus = 128;

class CpuSet {
 public:
  CpuSet() = default;

  static CpuSet Range(int first, int count);

  void Add(int cpu);
  void Remove(int cpu);
  bool Contains(int cpu) const;
  int Count() const;
  bool Empty() const {
    for (const std::uint64_t word : words_) {
      if (word != 0) {
        return false;
      }
    }
    return true;
  }
  void Clear() { words_.fill(0); }

  // Lowest-numbered CPU in the set, or -1 when empty.
  int First() const;

  // Lowest-numbered CPU strictly greater than `cpu`, or -1 when none.
  // `for (int c = set.First(); c >= 0; c = set.Next(c))` visits every CPU.
  int Next(int cpu) const;

  std::vector<int> ToVector() const;

  CpuSet Union(const CpuSet& other) const;
  CpuSet Intersect(const CpuSet& other) const;
  // CPUs in this set but not in `other`.
  CpuSet Minus(const CpuSet& other) const;

  bool operator==(const CpuSet& other) const { return words_ == other.words_; }

  // Compact human-readable form, e.g. "0-3,8,10-11".
  std::string ToString() const;

 private:
  static constexpr int kWords = kMaxCpus / 64;
  std::array<std::uint64_t, kWords> words_{};
};

}  // namespace pdpa

#endif  // SRC_MACHINE_CPUSET_H_
