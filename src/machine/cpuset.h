// A fixed-capacity CPU set, the unit of space-sharing allocation.
#ifndef SRC_MACHINE_CPUSET_H_
#define SRC_MACHINE_CPUSET_H_

#include <bitset>
#include <string>
#include <vector>

namespace pdpa {

// Upper bound on machine size; the paper's Origin 2000 has 64 CPUs.
inline constexpr int kMaxCpus = 128;

class CpuSet {
 public:
  CpuSet() = default;

  static CpuSet Range(int first, int count);

  void Add(int cpu);
  void Remove(int cpu);
  bool Contains(int cpu) const;
  int Count() const;
  bool Empty() const { return bits_.none(); }
  void Clear() { bits_.reset(); }

  // Lowest-numbered CPU in the set, or -1 when empty.
  int First() const;

  std::vector<int> ToVector() const;

  CpuSet Union(const CpuSet& other) const;
  CpuSet Intersect(const CpuSet& other) const;
  // CPUs in this set but not in `other`.
  CpuSet Minus(const CpuSet& other) const;

  bool operator==(const CpuSet& other) const { return bits_ == other.bits_; }

  // Compact human-readable form, e.g. "0-3,8,10-11".
  std::string ToString() const;

 private:
  std::bitset<kMaxCpus> bits_;
};

}  // namespace pdpa

#endif  // SRC_MACHINE_CPUSET_H_
