#include "src/machine/cpuset.h"

#include "src/common/logging.h"
#include "src/common/strings.h"

namespace pdpa {

CpuSet CpuSet::Range(int first, int count) {
  CpuSet set;
  for (int cpu = first; cpu < first + count; ++cpu) {
    set.Add(cpu);
  }
  return set;
}

void CpuSet::Add(int cpu) {
  PDPA_CHECK_GE(cpu, 0);
  PDPA_CHECK_LT(cpu, kMaxCpus);
  words_[static_cast<std::size_t>(cpu >> 6)] |= std::uint64_t{1} << (cpu & 63);
}

void CpuSet::Remove(int cpu) {
  PDPA_CHECK_GE(cpu, 0);
  PDPA_CHECK_LT(cpu, kMaxCpus);
  words_[static_cast<std::size_t>(cpu >> 6)] &= ~(std::uint64_t{1} << (cpu & 63));
}

bool CpuSet::Contains(int cpu) const {
  if (cpu < 0 || cpu >= kMaxCpus) {
    return false;
  }
  return (words_[static_cast<std::size_t>(cpu >> 6)] >> (cpu & 63)) & 1;
}

int CpuSet::Count() const {
  int count = 0;
  for (const std::uint64_t word : words_) {
    count += std::popcount(word);
  }
  return count;
}

int CpuSet::First() const {
  for (int w = 0; w < kWords; ++w) {
    const std::uint64_t word = words_[static_cast<std::size_t>(w)];
    if (word != 0) {
      return w * 64 + std::countr_zero(word);
    }
  }
  return -1;
}

int CpuSet::Next(int cpu) const {
  if (cpu < -1) {
    return First();
  }
  if (cpu + 1 >= kMaxCpus) {
    return -1;
  }
  const int from = cpu + 1;
  int w = from >> 6;
  // Mask off the bits at and below `cpu` in its word, then scan forward.
  std::uint64_t word = words_[static_cast<std::size_t>(w)] & (~std::uint64_t{0} << (from & 63));
  for (;;) {
    if (word != 0) {
      return w * 64 + std::countr_zero(word);
    }
    if (++w >= kWords) {
      return -1;
    }
    word = words_[static_cast<std::size_t>(w)];
  }
}

std::vector<int> CpuSet::ToVector() const {
  std::vector<int> cpus;
  cpus.reserve(static_cast<std::size_t>(Count()));
  for (int w = 0; w < kWords; ++w) {
    std::uint64_t word = words_[static_cast<std::size_t>(w)];
    while (word != 0) {
      cpus.push_back(w * 64 + std::countr_zero(word));
      word &= word - 1;  // clear the lowest set bit
    }
  }
  return cpus;
}

CpuSet CpuSet::Union(const CpuSet& other) const {
  CpuSet result;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    result.words_[w] = words_[w] | other.words_[w];
  }
  return result;
}

CpuSet CpuSet::Intersect(const CpuSet& other) const {
  CpuSet result;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    result.words_[w] = words_[w] & other.words_[w];
  }
  return result;
}

CpuSet CpuSet::Minus(const CpuSet& other) const {
  CpuSet result;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    result.words_[w] = words_[w] & ~other.words_[w];
  }
  return result;
}

std::string CpuSet::ToString() const {
  std::string out;
  int run_start = -1;
  int prev = -2;
  auto flush = [&](int run_end) {
    if (run_start < 0) {
      return;
    }
    if (!out.empty()) {
      out += ",";
    }
    if (run_start == run_end) {
      out += StrFormat("%d", run_start);
    } else {
      out += StrFormat("%d-%d", run_start, run_end);
    }
  };
  for (int cpu = First(); cpu >= 0; cpu = Next(cpu)) {
    if (cpu != prev + 1) {
      flush(prev);
      run_start = cpu;
    }
    prev = cpu;
  }
  flush(prev);
  return out;
}

}  // namespace pdpa
