#include "src/machine/cpuset.h"

#include "src/common/logging.h"
#include "src/common/strings.h"

namespace pdpa {

CpuSet CpuSet::Range(int first, int count) {
  CpuSet set;
  for (int cpu = first; cpu < first + count; ++cpu) {
    set.Add(cpu);
  }
  return set;
}

void CpuSet::Add(int cpu) {
  PDPA_CHECK_GE(cpu, 0);
  PDPA_CHECK_LT(cpu, kMaxCpus);
  bits_.set(static_cast<std::size_t>(cpu));
}

void CpuSet::Remove(int cpu) {
  PDPA_CHECK_GE(cpu, 0);
  PDPA_CHECK_LT(cpu, kMaxCpus);
  bits_.reset(static_cast<std::size_t>(cpu));
}

bool CpuSet::Contains(int cpu) const {
  if (cpu < 0 || cpu >= kMaxCpus) {
    return false;
  }
  return bits_.test(static_cast<std::size_t>(cpu));
}

int CpuSet::Count() const { return static_cast<int>(bits_.count()); }

int CpuSet::First() const {
  for (int cpu = 0; cpu < kMaxCpus; ++cpu) {
    if (bits_.test(static_cast<std::size_t>(cpu))) {
      return cpu;
    }
  }
  return -1;
}

std::vector<int> CpuSet::ToVector() const {
  std::vector<int> cpus;
  cpus.reserve(bits_.count());
  for (int cpu = 0; cpu < kMaxCpus; ++cpu) {
    if (bits_.test(static_cast<std::size_t>(cpu))) {
      cpus.push_back(cpu);
    }
  }
  return cpus;
}

CpuSet CpuSet::Union(const CpuSet& other) const {
  CpuSet result;
  result.bits_ = bits_ | other.bits_;
  return result;
}

CpuSet CpuSet::Intersect(const CpuSet& other) const {
  CpuSet result;
  result.bits_ = bits_ & other.bits_;
  return result;
}

CpuSet CpuSet::Minus(const CpuSet& other) const {
  CpuSet result;
  result.bits_ = bits_ & ~other.bits_;
  return result;
}

std::string CpuSet::ToString() const {
  std::string out;
  int run_start = -1;
  int prev = -2;
  auto flush = [&](int run_end) {
    if (run_start < 0) {
      return;
    }
    if (!out.empty()) {
      out += ",";
    }
    if (run_start == run_end) {
      out += StrFormat("%d", run_start);
    } else {
      out += StrFormat("%d-%d", run_start, run_end);
    }
  };
  for (int cpu : ToVector()) {
    if (cpu != prev + 1) {
      flush(prev);
      run_start = cpu;
    }
    prev = cpu;
  }
  flush(prev);
  return out;
}

}  // namespace pdpa
