#include "src/machine/machine.h"

#include <algorithm>

#include "src/common/logging.h"

namespace pdpa {

Machine::Machine(int usable_cpus) : num_cpus_(usable_cpus) {
  PDPA_CHECK_GT(usable_cpus, 0);
  PDPA_CHECK_LE(usable_cpus, kMaxCpus);
  owner_.assign(static_cast<std::size_t>(usable_cpus), kIdleJob);
}

int Machine::FreeCpus() const {
  int free = 0;
  for (JobId owner : owner_) {
    if (owner == kIdleJob) {
      ++free;
    }
  }
  return free;
}

JobId Machine::OwnerOf(int cpu) const {
  PDPA_CHECK_GE(cpu, 0);
  PDPA_CHECK_LT(cpu, num_cpus_);
  return owner_[static_cast<std::size_t>(cpu)];
}

CpuSet Machine::CpusOf(JobId job) const {
  CpuSet set;
  for (int cpu = 0; cpu < num_cpus_; ++cpu) {
    if (owner_[static_cast<std::size_t>(cpu)] == job) {
      set.Add(cpu);
    }
  }
  return set;
}

int Machine::CountOf(JobId job) const {
  int count = 0;
  for (JobId owner : owner_) {
    if (owner == job) {
      ++count;
    }
  }
  return count;
}

std::vector<JobId> Machine::RunningJobs() const {
  std::vector<JobId> jobs;
  for (JobId owner : owner_) {
    if (owner != kIdleJob && std::find(jobs.begin(), jobs.end(), owner) == jobs.end()) {
      jobs.push_back(owner);
    }
  }
  return jobs;
}

std::vector<CpuHandoff> Machine::ApplyAllocation(const std::map<JobId, int>& target) {
  // Validate the request before mutating anything.
  int total = 0;
  for (const auto& [job, count] : target) {
    PDPA_CHECK_GE(count, 0) << "job " << job;
    total += count;
  }
  PDPA_CHECK_LE(total, num_cpus_);

  std::vector<CpuHandoff> handoffs;

  // Phase 1: shrink. Jobs above target (or absent from target) release their
  // highest-numbered CPUs first so partitions stay contiguous-ish and the
  // kept CPUs are the longest-held ones (affinity).
  std::map<JobId, int> current;
  for (int cpu = 0; cpu < num_cpus_; ++cpu) {
    const JobId owner = owner_[static_cast<std::size_t>(cpu)];
    if (owner != kIdleJob) {
      ++current[owner];
    }
  }
  for (const auto& [job, count] : current) {
    const auto it = target.find(job);
    const int want = it == target.end() ? 0 : it->second;
    int excess = count - want;
    for (int cpu = num_cpus_ - 1; cpu >= 0 && excess > 0; --cpu) {
      if (owner_[static_cast<std::size_t>(cpu)] == job) {
        owner_[static_cast<std::size_t>(cpu)] = kIdleJob;
        handoffs.push_back(CpuHandoff{cpu, job, kIdleJob});
        --excess;
      }
    }
  }

  // Phase 2: grow. Jobs below target take the lowest-numbered idle CPUs.
  // Deterministic iteration order (std::map) keeps runs reproducible.
  for (const auto& [job, want] : target) {
    int have = 0;
    for (JobId owner : owner_) {
      if (owner == job) {
        ++have;
      }
    }
    for (int cpu = 0; cpu < num_cpus_ && have < want; ++cpu) {
      if (owner_[static_cast<std::size_t>(cpu)] == kIdleJob) {
        // If this CPU was released in phase 1 the handoff list already has a
        // (cpu, from, idle) entry; collapse the pair into a direct handoff so
        // migration accounting sees one move, not two.
        bool collapsed = false;
        for (CpuHandoff& h : handoffs) {
          if (h.cpu == cpu && h.to == kIdleJob) {
            h.to = job;
            collapsed = true;
            break;
          }
        }
        if (!collapsed) {
          handoffs.push_back(CpuHandoff{cpu, kIdleJob, job});
        }
        owner_[static_cast<std::size_t>(cpu)] = job;
        ++have;
      }
    }
    PDPA_CHECK_EQ(have, want) << "job " << job;
  }
  return handoffs;
}

std::vector<CpuHandoff> Machine::ApplyPartial(const std::vector<std::pair<JobId, int>>& target) {
  // Validate before mutating: the named jobs' growth must fit in the CPUs
  // they free plus the idle pool (other jobs are untouched by contract).
  int want_total = 0;
  int have_total = 0;
  int free = 0;
  for (const auto& [job, count] : target) {
    PDPA_CHECK_GE(count, 0) << "job " << job;
    want_total += count;
  }
  for (int cpu = 0; cpu < num_cpus_; ++cpu) {
    const JobId owner = owner_[static_cast<std::size_t>(cpu)];
    if (owner == kIdleJob) {
      ++free;
      continue;
    }
    for (const auto& [job, count] : target) {
      if (job == owner) {
        ++have_total;
        break;
      }
    }
  }
  PDPA_CHECK_LE(want_total, have_total + free);

  std::vector<CpuHandoff> handoffs;

  // Phase 1: shrink, ascending JobId (the input is sorted), releasing the
  // highest-numbered CPUs first — identical order to ApplyAllocation
  // restricted to the named jobs, so affinity behavior matches.
  for (const auto& [job, want] : target) {
    int excess = CountOf(job) - want;
    for (int cpu = num_cpus_ - 1; cpu >= 0 && excess > 0; --cpu) {
      if (owner_[static_cast<std::size_t>(cpu)] == job) {
        owner_[static_cast<std::size_t>(cpu)] = kIdleJob;
        handoffs.push_back(CpuHandoff{cpu, job, kIdleJob});
        --excess;
      }
    }
  }

  // Phase 2: grow, ascending JobId, taking the lowest-numbered idle CPUs.
  for (const auto& [job, want] : target) {
    int have = CountOf(job);
    for (int cpu = 0; cpu < num_cpus_ && have < want; ++cpu) {
      if (owner_[static_cast<std::size_t>(cpu)] == kIdleJob) {
        // Collapse a phase-1 release of this CPU into one direct handoff so
        // migration accounting sees one move, not two.
        bool collapsed = false;
        for (CpuHandoff& h : handoffs) {
          if (h.cpu == cpu && h.to == kIdleJob) {
            h.to = job;
            collapsed = true;
            break;
          }
        }
        if (!collapsed) {
          handoffs.push_back(CpuHandoff{cpu, kIdleJob, job});
        }
        owner_[static_cast<std::size_t>(cpu)] = job;
        ++have;
      }
    }
    PDPA_CHECK_EQ(have, want) << "job " << job;
  }
  return handoffs;
}

std::vector<CpuHandoff> Machine::ReleaseJob(JobId job) {
  std::vector<CpuHandoff> handoffs;
  for (int cpu = 0; cpu < num_cpus_; ++cpu) {
    if (owner_[static_cast<std::size_t>(cpu)] == job) {
      owner_[static_cast<std::size_t>(cpu)] = kIdleJob;
      handoffs.push_back(CpuHandoff{cpu, job, kIdleJob});
    }
  }
  return handoffs;
}

void Machine::SetOwner(int cpu, JobId job) {
  PDPA_CHECK_GE(cpu, 0);
  PDPA_CHECK_LT(cpu, num_cpus_);
  owner_[static_cast<std::size_t>(cpu)] = job;
}

}  // namespace pdpa
