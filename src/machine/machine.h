// Machine model: a shared-memory multiprocessor managed by space-sharing.
//
// The machine tracks which job owns each CPU. Policies decide *counts*; the
// machine turns counts into concrete CPU sets while preserving affinity
// (a job keeps the CPUs it already owns whenever possible), which is what the
// NANOS RM does on the Origin 2000 and what keeps data locality intact.
#ifndef SRC_MACHINE_MACHINE_H_
#define SRC_MACHINE_MACHINE_H_

#include <map>
#include <utility>
#include <vector>

#include "src/common/ids.h"
#include "src/machine/cpuset.h"

namespace pdpa {

// One concrete reassignment performed by ApplyAllocation: CPU `cpu` moved
// from job `from` to job `to` (either may be kIdleJob).
struct CpuHandoff {
  int cpu = 0;
  JobId from = kIdleJob;
  JobId to = kIdleJob;
};

class Machine {
 public:
  // `usable_cpus` is the number of CPUs handed to the scheduler; the paper
  // uses 60 of the Origin's 64 (the rest run the OS and the tracing tool).
  explicit Machine(int usable_cpus);

  int num_cpus() const { return num_cpus_; }
  int FreeCpus() const;

  JobId OwnerOf(int cpu) const;
  CpuSet CpusOf(JobId job) const;
  int CountOf(JobId job) const;

  // All jobs that currently own at least one CPU.
  std::vector<JobId> RunningJobs() const;

  // Reassigns CPUs so that each job in `target` owns exactly the given
  // count. Jobs absent from `target` but currently owning CPUs are released
  // entirely. Affinity is preserved: shrinking jobs give up their
  // highest-numbered CPUs; growing jobs first take idle CPUs, then CPUs
  // released by shrinking jobs. Returns the concrete handoffs (used by the
  // trace recorder to count migrations).
  std::vector<CpuHandoff> ApplyAllocation(const std::map<JobId, int>& target);

  // Like ApplyAllocation, but touches only the jobs named in `target`
  // (sorted ascending by JobId); every other job keeps its CPUs untouched.
  // This is the resource manager's hot path: plans name a handful of jobs,
  // so there is no need to materialize a full-machine map. Produces exactly
  // the handoffs ApplyAllocation would for a full map that names all other
  // jobs at their current counts.
  std::vector<CpuHandoff> ApplyPartial(const std::vector<std::pair<JobId, int>>& target);

  // Releases every CPU owned by `job` (job completion).
  std::vector<CpuHandoff> ReleaseJob(JobId job);

  // Direct single-CPU assignment, used by the time-sharing (IRIX) model that
  // bypasses space-sharing partitions.
  void SetOwner(int cpu, JobId job);

 private:
  int num_cpus_;
  std::vector<JobId> owner_;  // indexed by cpu
};

}  // namespace pdpa

#endif  // SRC_MACHINE_MACHINE_H_
