#include "src/rm/mccann_dynamic.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/obs/counters.h"

namespace pdpa {

McCannDynamic::McCannDynamic() : McCannDynamic(Params{}) {}

McCannDynamic::McCannDynamic(Params params) : params_(params) {
  PDPA_CHECK_GE(params.fixed_ml, 1);
  PDPA_CHECK_GE(params.probe, 0);
  BindInstruments(Registry::Default());
}

void McCannDynamic::BindInstruments(Registry& registry) {
  redistributions_ = registry.counter("policy.dynamic.redistributions");
}

AllocationPlan McCannDynamic::OnJobStart(const PolicyContext& ctx, JobId job) {
  (void)job;
  // A new application is assumed fully parallel until it reports.
  return Redistribute(ctx);
}

AllocationPlan McCannDynamic::OnJobFinish(const PolicyContext& ctx, JobId job) {
  useful_.erase(job);
  return Redistribute(ctx);
}

AllocationPlan McCannDynamic::OnReport(const PolicyContext& ctx, const PerfReport& report) {
  // Idleness = 1 - efficiency: processors the application is not using.
  const double eff = std::clamp(report.efficiency, 0.0, 1.5);
  useful_[report.job] =
      std::max(1, static_cast<int>(std::lround(report.procs * eff)) + params_.probe);
  return Redistribute(ctx);
}

AllocationPlan McCannDynamic::OnQuantum(const PolicyContext& ctx) { return Redistribute(ctx); }

bool McCannDynamic::ShouldAdmit(const PolicyContext& ctx) const {
  return static_cast<int>(ctx.jobs.size()) < params_.fixed_ml;
}

AllocationPlan McCannDynamic::Redistribute(const PolicyContext& ctx) const {
  AllocationPlan plan;
  if (ctx.jobs.empty()) {
    return plan;
  }
  redistributions_->Increment();
  // Equal redistribution capped by min(request, useful parallelism):
  // water-filling, like Equipartition, but with the dynamic caps — this is
  // what moves processors away from applications with reported idleness the
  // moment the report arrives.
  std::map<JobId, int> cap;
  for (const PolicyJobInfo& job : ctx.jobs) {
    const auto it = useful_.find(job.id);
    const int useful = it == useful_.end() ? job.request : it->second;
    cap[job.id] = std::min(job.request, useful);
    plan[job.id] = 0;
  }
  int remaining = ctx.total_cpus;
  bool progress = true;
  while (remaining > 0 && progress) {
    progress = false;
    for (const PolicyJobInfo& job : ctx.jobs) {
      if (remaining == 0) {
        break;
      }
      if (plan[job.id] < cap[job.id]) {
        ++plan[job.id];
        --remaining;
        progress = true;
      }
    }
  }
  // Run-to-completion floor.
  for (const PolicyJobInfo& job : ctx.jobs) {
    plan[job.id] = std::max(plan[job.id], 1);
  }
  return plan;
}

}  // namespace pdpa
