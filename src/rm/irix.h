// Native-IRIX scheduling model: priority-aged time sharing with processor
// affinity, no coordination with the queuing system, and no malleability —
// each application runs OMP_NUM_THREADS (= its request) kernel threads for
// its whole life.
//
// The model reproduces the failure modes the paper diagnoses (Sec. 5.1.1):
// with the fixed ML of 4 and 30-thread requests the machine is ~2x
// overcommitted, threads time-slice, affinity is imperfect, and kernel
// threads migrate constantly — short bursts, many migrations, degraded
// application performance.
#ifndef SRC_RM_IRIX_H_
#define SRC_RM_IRIX_H_

#include <map>
#include <vector>

#include "src/common/rng.h"
#include "src/rm/policy.h"

namespace pdpa {

class IrixTimeShare : public SchedulingPolicy {
 public:
  struct Params {
    int fixed_ml = 4;
    // vruntime lead a running thread may accumulate over the hungriest
    // waiter before it is preempted. Larger values = longer bursts; the
    // default is calibrated against the sub-second burst lengths of Table 2.
    SimDuration affinity_bonus = 80 * kMillisecond;
    // Fraction of a tick of useful work a migrated thread loses re-warming
    // caches/pages on the new CPU.
    double migration_cost = 0.35;
    // Contention/barrier-spin penalty per unit of overcommit beyond 1.0
    // (MP_BLOCKTIME spinning wastes the slice of threads waiting at
    // barriers while the machine is oversubscribed).
    double overcommit_penalty = 0.5;
    // Per-tick multiplicative vruntime jitter (work imbalance); this is
    // what desynchronizes epochs and produces sustained migration churn.
    double vruntime_jitter = 0.15;
    // OMP_DYNAMIC=TRUE (the paper's setting): the SGI-MP library slowly
    // adjusts each application's thread count toward its fair share of the
    // machine. The adjustment is sluggish — the paper's diagnosis is the
    // "unresponsiveness of the native runtime system to changes in the
    // system load" — so overcommit persists through every transient.
    bool omp_dynamic = true;
    SimDuration omp_adjust_period = 20 * kSecond;
    // Threads added/removed per adjustment.
    int omp_adjust_step = 1;
    // The library never drops a team below this fraction of its request
    // (it adjusts around the program's own parallelism, not the machine).
    double omp_min_fraction = 0.6;
  };

  explicit IrixTimeShare(Params params, Rng rng);

  std::string name() const override { return "IRIX"; }
  bool is_time_sharing() const override { return true; }

  AllocationPlan OnJobStart(const PolicyContext& ctx, JobId job) override;
  AllocationPlan OnJobFinish(const PolicyContext& ctx, JobId job) override;
  bool ShouldAdmit(const PolicyContext& ctx) const override;

  std::map<JobId, TimeShare> TimeShareTick(Machine& machine, const PolicyContext& ctx,
                                           SimDuration dt,
                                           std::vector<CpuHandoff>* handoffs) override;

  // Total kernel-thread migrations performed so far (threads dispatched on a
  // CPU different from their previous one).
  long long total_thread_migrations() const { return total_thread_migrations_; }

  // Current kernel-thread count of `job` (for tests).
  int ThreadCountOf(JobId job) const;

 protected:
  void BindInstruments(Registry& registry) override;

 private:
  struct Thread {
    JobId job = kIdleJob;
    int last_cpu = -1;
    bool running = false;
    double vruntime_s = 0.0;
  };

  // Slow OMP_DYNAMIC thread-count adaptation toward the fair share.
  void AdjustThreadCounts(const PolicyContext& ctx, int ncpus);

  Params params_;
  Rng rng_;
  std::vector<Thread> threads_;
  Counter* dispatch_ticks_ = nullptr;
  long long total_thread_migrations_ = 0;
  SimTime next_adjust_ = 0;
  SimTime clock_ = 0;
};

}  // namespace pdpa

#endif  // SRC_RM_IRIX_H_
