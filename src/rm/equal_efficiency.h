// Equal_efficiency (Nguyen, Zahorjan, Vaswani): allocate processors using
// runtime-measured efficiencies, extrapolated to unmeasured allocations, so
// the most efficient applications receive the most processors and marginal
// efficiency is equalized.
//
// The paper (Sec. 5.1) observes two weaknesses that this implementation
// reproduces faithfully: the extrapolation is very sensitive to measurement
// noise (high allocation variance, costly reallocations), and there is no
// target efficiency bounding the allocation of poorly scaling applications.
#ifndef SRC_RM_EQUAL_EFFICIENCY_H_
#define SRC_RM_EQUAL_EFFICIENCY_H_

#include <map>
#include <vector>

#include "src/rm/policy.h"

namespace pdpa {

class EqualEfficiency : public SchedulingPolicy {
 public:
  struct Params {
    int fixed_ml = 4;
    // Exponent assumed for jobs with a single measurement: S(p) ~ p^alpha.
    double default_alpha = 0.85;
    // Clamp for the fitted exponent.
    double min_alpha = 0.0;
    double max_alpha = 1.3;
    // Number of recent measurements kept per job.
    int history = 8;
  };

  EqualEfficiency();
  explicit EqualEfficiency(Params params);

  std::string name() const override { return "Equal_efficiency"; }

  AllocationPlan OnJobStart(const PolicyContext& ctx, JobId job) override;
  AllocationPlan OnJobFinish(const PolicyContext& ctx, JobId job) override;
  AllocationPlan OnReport(const PolicyContext& ctx, const PerfReport& report) override;
  AllocationPlan OnQuantum(const PolicyContext& ctx) override;
  bool ShouldAdmit(const PolicyContext& ctx) const override;

  // Extrapolated speedup for a job at allocation p; exposed for tests.
  double ExtrapolatedSpeedup(JobId job, double p) const;

 protected:
  void BindInstruments(Registry& registry) override;

 private:
  struct Sample {
    int procs = 0;
    double speedup = 1.0;
  };
  struct JobModel {
    std::vector<Sample> samples;  // most recent last
  };

  AllocationPlan Reallocate(const PolicyContext& ctx) const;

  Params params_;
  std::map<JobId, JobModel> models_;
  Counter* reallocations_ = nullptr;
};

}  // namespace pdpa

#endif  // SRC_RM_EQUAL_EFFICIENCY_H_
