#include "src/rm/equal_efficiency.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/obs/counters.h"

namespace pdpa {

EqualEfficiency::EqualEfficiency() : EqualEfficiency(Params{}) {}

EqualEfficiency::EqualEfficiency(Params params) : params_(params) {
  PDPA_CHECK_GE(params.fixed_ml, 1);
  PDPA_CHECK_GE(params.history, 2);
  BindInstruments(Registry::Default());
}

void EqualEfficiency::BindInstruments(Registry& registry) {
  reallocations_ = registry.counter("policy.equal_eff.reallocations");
}

AllocationPlan EqualEfficiency::OnJobStart(const PolicyContext& ctx, JobId job) {
  models_[job] = JobModel{};
  return Reallocate(ctx);
}

AllocationPlan EqualEfficiency::OnJobFinish(const PolicyContext& ctx, JobId job) {
  models_.erase(job);
  return Reallocate(ctx);
}

AllocationPlan EqualEfficiency::OnReport(const PolicyContext& ctx, const PerfReport& report) {
  JobModel& model = models_[report.job];
  model.samples.push_back(Sample{report.procs, report.speedup});
  if (static_cast<int>(model.samples.size()) > params_.history) {
    model.samples.erase(model.samples.begin());
  }
  // Reallocating on every report is what makes Equal_efficiency "too
  // sensitive to small changes in the efficiency measurements" (Sec. 5.1).
  return Reallocate(ctx);
}

AllocationPlan EqualEfficiency::OnQuantum(const PolicyContext& ctx) { return Reallocate(ctx); }

bool EqualEfficiency::ShouldAdmit(const PolicyContext& ctx) const {
  return static_cast<int>(ctx.jobs.size()) < params_.fixed_ml;
}

double EqualEfficiency::ExtrapolatedSpeedup(JobId job, double p) const {
  if (p <= 0.0) {
    return 0.0;
  }
  const auto it = models_.find(job);
  if (it == models_.end() || it->second.samples.empty()) {
    // No knowledge: optimistically assume linear speedup (this is what makes
    // the policy hand 30 processors to a brand-new job).
    return p;
  }
  const std::vector<Sample>& samples = it->second.samples;
  const Sample& latest = samples.back();
  double alpha = params_.default_alpha;
  // Fit the exponent through the two most recent samples at distinct
  // processor counts: S(p) = S1 * (p / p1)^alpha.
  for (auto rit = samples.rbegin() + 1; rit != samples.rend(); ++rit) {
    if (rit->procs != latest.procs && rit->procs > 0 && rit->speedup > 0.0) {
      const double num = std::log(latest.speedup / rit->speedup);
      const double den = std::log(static_cast<double>(latest.procs) / rit->procs);
      if (std::abs(den) > 1e-9) {
        alpha = std::clamp(num / den, params_.min_alpha, params_.max_alpha);
      }
      break;
    }
  }
  const double base_p = static_cast<double>(latest.procs);
  return latest.speedup * std::pow(p / base_p, alpha);
}

AllocationPlan EqualEfficiency::Reallocate(const PolicyContext& ctx) const {
  AllocationPlan plan;
  if (ctx.jobs.empty()) {
    return plan;
  }
  reallocations_->Increment();
  // Everyone gets one processor (run-to-completion floor), then processors
  // go one at a time to the job whose *extrapolated* efficiency at its next
  // allocation is highest.
  int remaining = ctx.total_cpus;
  for (const PolicyJobInfo& job : ctx.jobs) {
    plan[job.id] = 1;
    --remaining;
  }
  if (remaining < 0) {
    // More jobs than processors cannot happen with the paper's MLs.
    return plan;
  }
  while (remaining > 0) {
    double best_eff = -1.0;
    JobId best_job = kIdleJob;
    int best_request = 0;
    for (const PolicyJobInfo& job : ctx.jobs) {
      const int next = plan[job.id] + 1;
      if (next > job.request) {
        continue;
      }
      const double eff = ExtrapolatedSpeedup(job.id, next) / next;
      if (eff > best_eff) {
        best_eff = eff;
        best_job = job.id;
        best_request = job.request;
      }
    }
    if (best_job == kIdleJob) {
      break;  // Every job is at its request.
    }
    (void)best_request;
    ++plan[best_job];
    --remaining;
  }
  return plan;
}

}  // namespace pdpa
