// NANOS Resource Manager: the user-level processor scheduler.
//
// The RM owns the machine and the per-job runtime bindings, drives the
// scheduling policy at job arrival / completion / performance-report events
// and at quantum boundaries, enforces its decisions on the machine, and
// coordinates with the queuing system (admission callbacks).
//
// Inner-loop design (the hot path of every sweep cell):
//   * Running jobs live in a dense slot-indexed vector with a free list and
//     a stable JobId -> slot map; iteration order is a compact vector of
//     slot indices in arrival order. No per-tick map lookups.
//   * Per-job hot state (allocations, elision readiness, next-boundary
//     instants, segment anchors) lives in a slot-indexed HotStateArena
//     (src/sim/hot_state.h) shared with the Applications, so the horizon
//     min and the policy-context fill are linear scans over parallel
//     arrays.
//   * Event-horizon tick elision: the progress "tick" is a one-shot event
//     the RM reschedules itself. Whenever every running application is in
//     steady state (warmup converged, no reconfiguration freeze), dynamics
//     are exactly linear until the next iteration boundary, so the RM parks
//     the tick at the event horizon — the earliest of the next boundary,
//     the next scheduler quantum (unless the policy is quantum-passive),
//     and the next time-series sample — and advances the whole span in one
//     closed-form Advance. When nothing bounds the horizon (idle machine,
//     passive policy, no sampling) the tick is parked unscheduled until a
//     job start pulls it back. Coarsened runs are byte-identical to
//     fine-tick runs (segment-anchored integration in Application);
//     `Params::exact_ticks` is the escape hatch that forces a tick at every
//     grid point.
#ifndef SRC_RM_RESOURCE_MANAGER_H_
#define SRC_RM_RESOURCE_MANAGER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/machine/machine.h"
#include "src/obs/counters.h"
#include "src/obs/event_log.h"
#include "src/obs/timeseries.h"
#include "src/rm/policy.h"
#include "src/runtime/nth_lib.h"
#include "src/sim/hot_state.h"
#include "src/sim/simulation.h"
#include "src/trace/trace_recorder.h"

namespace pdpa {

class ResourceManager {
 public:
  struct Params {
    int num_cpus = 60;
    // Progress/trace granularity.
    SimDuration tick = 20 * kMillisecond;
    // Scheduling quantum (policy OnQuantum cadence).
    SimDuration quantum = 100 * kMillisecond;
    SelfAnalyzerParams analyzer;
    AppCosts app_costs;
    // Escape hatch: fire the progress tick at every grid point even when
    // event-horizon analysis would allow eliding (A/B validation; the
    // golden-equivalence tests compare exact vs elided runs byte for byte).
    bool exact_ticks = false;
    // Boundary batching: under elision with a quantum- AND report-passive
    // policy and no event-log/time-series sinks, iteration boundaries carry
    // no scheduling consequence, so the tick can park past *many* boundaries
    // at once — at the penultimate drain tick and the completion tick of
    // each job — instead of materializing every boundary. Schedule-visible
    // outputs (outcomes, finish times, allocation integrals, report counts
    // and efficiency histograms) are byte-identical to the per-boundary
    // schedule; only rm.ticks / rm.ticks_elided and gauge sampling instants
    // differ. Opt-in because committed single-node baselines pin exact tick
    // counts.
    bool boundary_batch = false;
  };

  // (job, finish_time) after the job's processors have been released.
  using JobFinishCallback = std::function<void(JobId, SimTime)>;
  // Invoked whenever scheduling state changed in a way that may allow the
  // queuing system to start more jobs.
  using StateChangeCallback = std::function<void(SimTime)>;

  ResourceManager(Params params, std::unique_ptr<SchedulingPolicy> policy, Simulation* sim,
                  TraceRecorder* trace, Rng rng);

  ResourceManager(const ResourceManager&) = delete;
  ResourceManager& operator=(const ResourceManager&) = delete;

  void set_job_finish_callback(JobFinishCallback callback) { on_finish_ = std::move(callback); }
  void set_state_change_callback(StateChangeCallback callback) {
    on_state_change_ = std::move(callback);
  }

  // Flight-recorder sinks (all borrowed, all optional). The event log also
  // reaches the policy through SchedulingPolicy::set_event_log; wire both
  // before Start().
  void set_event_log(EventLog* log) { events_ = log; }
  void set_timeseries(TimeSeriesSampler* sampler) { timeseries_ = sampler; }
  // Borrowed host-time profiler; null (the default) disables span timing.
  // Wraps the progress tick (rm.tick), the quantum scan (rm.quantum) and
  // every policy callback (policy.decide).
  void set_profiler(Profiler* profiler) { profiler_ = profiler; }
  // Lets machine samples include the queuing system's backlog.
  void set_queue_depth_provider(std::function<int()> provider) {
    queue_depth_ = std::move(provider);
  }

  // Registers the tick and quantum tasks; call once before running.
  void Start();

  // Scheduling-machinery state at a quiescent instant (no running jobs, no
  // pending reports): everything needed to resume the tick/quantum cadence
  // of a run whose prefix was simulated elsewhere. Used by shared-prefix
  // forking (see RunExperimentFrom in src/workload/experiment.h).
  struct ResumeState {
    SimTime origin = 0;       // grid phase (simulation time at Start())
    SimTime advanced_to = 0;  // last grid instant the prefix ticked at
    SimTime next_ts_sample = 0;
  };
  // Captures the resume state of this (running, idle-machine) RM.
  ResumeState ResumeStateNow() const;
  // Start() variant for forked runs: adopts the prefix's grid phase and
  // cadence instead of anchoring at sim->now(). Call with the simulation
  // clock already restored to the divergence instant, after the queuing
  // system has scheduled its arrivals (event-order parity: the resumed
  // tick/quantum events must carry later sequence numbers than the arrival
  // events, exactly as in the cold run they replace).
  void StartResumed(const ResumeState& state);

  // Stops the periodic tasks (end of experiment drain). Under elision this
  // first advances every job to the last grid instant at or before now, so
  // cutoff runs observe exactly the state a fine-tick run would have.
  void Stop();

  // Queuing-system side: may one more job start now?
  bool CanStartJob() const;

  // Starts `job` immediately. Requires CanStartJob() for space-sharing
  // policies. `request` overrides the profile's default when > 0. Rigid
  // jobs keep a fixed process count and may be folded (see Application).
  void StartJob(JobId job, const AppProfile& profile, int request, SimTime now,
                bool rigid = false);

  Machine& machine() { return machine_; }
  const Machine& machine() const { return machine_; }
  SchedulingPolicy& policy() { return *policy_; }
  const SchedulingPolicy& policy() const { return *policy_; }

  int running_jobs() const { return static_cast<int>(order_.size()); }
  bool HasJob(JobId job) const { return SlotOf(job) >= 0; }
  int AllocationOf(JobId job) const;

  // Integral of per-job allocation over time, for average-allocation
  // metrics: cpu-microseconds per job (running jobs merged over the archive
  // of finished ones).
  std::map<JobId, double> alloc_integral_us() const;

  // Number of times any job's allocation was actually changed (the
  // "reallocations are not free" count the paper uses against
  // Equal_efficiency and Dynamic).
  long long total_reallocations() const { return total_reallocations_; }

  const Params& params() const { return params_; }

 private:
  // Cold per-slot companion of the hot-state arena: the binding plus
  // sampling bookkeeping. Identity fields (arrival, request, rigid) live in
  // the arena's slot-parallel arrays.
  struct RunningJob {
    std::unique_ptr<NthLibBinding> binding;
    // kIdleJob marks a free slot (mirrored in hot_.job_id).
    JobId id = kIdleJob;
    // Latest SelfAnalyzer measurement, for the time-series sampler.
    double last_speedup = 0.0;
    double last_efficiency = 0.0;
    // Allocation-integral watermark of the last emitted time-series window.
    double sampled_integral_us = 0.0;
    SimTime last_sample = 0;
    // Boundary-batching cache: the material stop computed for this slot and
    // the hot-state change epoch it was computed at (see MaterialStop).
    SimTime material_stop = 0;
    std::uint64_t material_epoch = ~0ull;
  };

  // Fills and returns the reusable scratch context (no per-call allocation
  // once the jobs vector capacity has grown).
  const PolicyContext& FillContext(SimTime now) const;
  int SlotOf(JobId job) const {
    return job >= 0 && static_cast<std::size_t>(job) < slot_of_job_.size() ? slot_of_job_[job]
                                                                           : -1;
  }
  int AllocateSlot();

  void OnTickEvent();
  void OnTick(SimTime now);
  void OnQuantum(SimTime now);

  // Advances every running job over (advanced_to_, target] in one span.
  void AdvanceAllTo(SimTime target);
  // Closed-form advance of all jobs over [from, from + dt).
  void AdvanceSpan(SimTime from, SimDuration dt);
  // Before a mid-span mutation at `now`: advance to the last grid instant
  // strictly before now (the ticks a fine run would already have fired).
  // No-op when not eliding or already caught up.
  void CatchUp(SimTime now);

  // (Re)schedules the one-shot tick event at `when`; no-op if already there.
  void ScheduleTickAt(SimTime when);
  // End of OnTick: park the next tick at the event horizon — unscheduled
  // entirely when the horizon is unbounded — or one tick ahead when any job
  // is unsteady (or elision is off).
  void ScheduleNextTick(SimTime now);
  // Earliest instant the next tick must fire at, grid-aligned: min over the
  // per-job published boundary horizons (a linear scan of the hot-state
  // arrays), the next quantum (skipped for quantum-passive policies), and
  // the next time-series sample. 0 when some job is unsteady;
  // kHorizonNever when nothing bounds the horizon.
  SimTime ElisionHorizon(SimTime now);
  // Boundary-batching fast path: earliest grid instant > now at which this
  // slot's job has a *material* event — a boundary whose tick the reference
  // schedule observably depends on. For a settled job that is the penultimate
  // drain tick (largest grid instant strictly before the completion tick,
  // where every still-drainable report must be flushed) and the completion
  // tick itself; during the baseline phase it is every boundary (the analyzer
  // reacts at each one); for a job whose analyzer can never engage it is the
  // completion tick only. Grid-aligned; kHorizonNever when the job cannot
  // progress. Requires fast_path_ and ready_at[slot] <= now.
  SimTime MaterialStop(int slot, SimTime now);

  SimTime GridCeil(SimTime t) const;
  // Largest grid instant < t (clamped to advanced_to_).
  SimTime GridFloorBefore(SimTime t) const;
  // Largest grid instant <= t (clamped to advanced_to_).
  SimTime GridFloorAtOrBefore(SimTime t) const;
  SimTime NextQuantumAfter(SimTime t) const;

  // PDPA_AUDIT builds: verifies machine/job-table consistency after every
  // mutation (every owned CPU maps to a live slot; per-job bookkeeping
  // matches the machine partition; allocations fit the machine). Call sites
  // compile away in normal builds.
#ifdef PDPA_AUDIT
  void AuditInvariants(const char* where) const;
#endif

  void ApplyPlan(const AllocationPlan& plan, SimTime now, const char* trigger);
  void DrainReports(SimTime now);
  void CheckCompletions(SimTime now);
  // Emits the [last_sample, now) time-series window for one job.
  void FlushAppSample(int slot, SimTime now);
  // Emits app windows for every running job plus one machine point.
  void SampleTimeseries(SimTime now);

  Params params_;
  std::unique_ptr<SchedulingPolicy> policy_;
  Simulation* sim_;
  TraceRecorder* trace_;  // may be null
  Rng rng_;
  Machine machine_;

  // Dense job table: stable slots + free list + JobId -> slot + arrival
  // order (slot indices, batch-compacted when jobs finish). Hot per-job
  // state is slot-parallel in hot_; the Applications own and publish the
  // dynamics columns of their slots.
  HotStateArena hot_;
  std::vector<RunningJob> slots_;
  std::vector<int> free_slots_;
  std::vector<int> slot_of_job_;
  std::vector<int> order_;

  std::vector<PerfReport> pending_reports_;
  // Reused drain buffer (swapped with pending_reports_ per drain round).
  std::vector<PerfReport> report_batch_;
  // Integral archive of finished jobs (merged into alloc_integral_us()).
  std::map<JobId, double> finished_integral_us_;
  long long total_reallocations_ = 0;

  mutable PolicyContext scratch_ctx_;
  std::vector<std::pair<JobId, int>> plan_scratch_;

  JobFinishCallback on_finish_;
  StateChangeCallback on_state_change_;

  // Tick-event state. The tick is a self-rescheduled one-shot (not a
  // periodic task) so it can be parked at the event horizon and pulled back
  // to the fine grid on mid-span mutations.
  bool elide_ = false;
  // elide_ plus a policy whose OnQuantum is a guaranteed no-op: the quantum
  // periodic is not scheduled at all and does not cap the elision horizon.
  bool quantum_passive_ = false;
  // Boundary batching engaged: params_.boundary_batch plus a fully passive
  // policy (quantum and report) and no event-log / time-series / trace sinks,
  // whose exact per-boundary drain instants the outputs could observe.
  bool fast_path_ = false;
  bool tick_active_ = false;   // Start() .. Stop()
  bool tick_pending_ = false;  // a tick event is outstanding
  EventId tick_event_ = 0;
  SimTime tick_at_ = 0;      // fire time of the outstanding tick event
  SimTime tick_origin_ = 0;  // grid phase (simulation time at Start())
  SimTime advanced_to_ = 0;  // all jobs integrated up to here
  int quantum_task_ = -1;

  EventLog* events_ = nullptr;               // may be null
  TimeSeriesSampler* timeseries_ = nullptr;  // may be null
  Profiler* profiler_ = nullptr;             // may be null
  std::function<int()> queue_depth_;
  SimTime next_ts_sample_ = 0;

  // Per-run instruments, resolved once from the simulation's registry.
  Registry* registry_;
  Counter* jobs_started_;
  Counter* jobs_finished_;
  Counter* reallocations_;
  Counter* plans_applied_;
  Counter* cpu_handoffs_;
  Counter* cpu_migrations_;
  Counter* perf_reports_;
  Counter* ticks_fired_;
  Counter* ticks_elided_;
  Gauge* free_cpus_gauge_;
  Histogram* report_efficiency_;
};

}  // namespace pdpa

#endif  // SRC_RM_RESOURCE_MANAGER_H_
