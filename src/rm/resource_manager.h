// NANOS Resource Manager: the user-level processor scheduler.
//
// The RM owns the machine and the per-job runtime bindings, drives the
// scheduling policy at job arrival / completion / performance-report events
// and at quantum boundaries, enforces its decisions on the machine, and
// coordinates with the queuing system (admission callbacks).
#ifndef SRC_RM_RESOURCE_MANAGER_H_
#define SRC_RM_RESOURCE_MANAGER_H_

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/machine/machine.h"
#include "src/obs/counters.h"
#include "src/obs/event_log.h"
#include "src/obs/timeseries.h"
#include "src/rm/policy.h"
#include "src/runtime/nth_lib.h"
#include "src/sim/simulation.h"
#include "src/trace/trace_recorder.h"

namespace pdpa {

class ResourceManager {
 public:
  struct Params {
    int num_cpus = 60;
    // Progress/trace granularity.
    SimDuration tick = 20 * kMillisecond;
    // Scheduling quantum (policy OnQuantum cadence).
    SimDuration quantum = 100 * kMillisecond;
    SelfAnalyzerParams analyzer;
    AppCosts app_costs;
  };

  // (job, finish_time) after the job's processors have been released.
  using JobFinishCallback = std::function<void(JobId, SimTime)>;
  // Invoked whenever scheduling state changed in a way that may allow the
  // queuing system to start more jobs.
  using StateChangeCallback = std::function<void(SimTime)>;

  ResourceManager(Params params, std::unique_ptr<SchedulingPolicy> policy, Simulation* sim,
                  TraceRecorder* trace, Rng rng);

  ResourceManager(const ResourceManager&) = delete;
  ResourceManager& operator=(const ResourceManager&) = delete;

  void set_job_finish_callback(JobFinishCallback callback) { on_finish_ = std::move(callback); }
  void set_state_change_callback(StateChangeCallback callback) {
    on_state_change_ = std::move(callback);
  }

  // Flight-recorder sinks (all borrowed, all optional). The event log also
  // reaches the policy through SchedulingPolicy::set_event_log; wire both
  // before Start().
  void set_event_log(EventLog* log) { events_ = log; }
  void set_timeseries(TimeSeriesSampler* sampler) { timeseries_ = sampler; }
  // Lets machine samples include the queuing system's backlog.
  void set_queue_depth_provider(std::function<int()> provider) {
    queue_depth_ = std::move(provider);
  }

  // Registers the periodic tick and quantum tasks; call once before running.
  void Start();

  // Stops the periodic tasks (end of experiment drain).
  void Stop();

  // Queuing-system side: may one more job start now?
  bool CanStartJob() const;

  // Starts `job` immediately. Requires CanStartJob() for space-sharing
  // policies. `request` overrides the profile's default when > 0. Rigid
  // jobs keep a fixed process count and may be folded (see Application).
  void StartJob(JobId job, const AppProfile& profile, int request, SimTime now,
                bool rigid = false);

  Machine& machine() { return machine_; }
  const Machine& machine() const { return machine_; }
  SchedulingPolicy& policy() { return *policy_; }
  const SchedulingPolicy& policy() const { return *policy_; }

  int running_jobs() const { return static_cast<int>(jobs_.size()); }
  bool HasJob(JobId job) const { return jobs_.contains(job); }
  int AllocationOf(JobId job) const;

  // Integral of per-job allocation over time, for average-allocation
  // metrics: cpu-microseconds per job.
  const std::map<JobId, double>& alloc_integral_us() const { return alloc_integral_us_; }

  // Number of times any job's allocation was actually changed (the
  // "reallocations are not free" count the paper uses against
  // Equal_efficiency and Dynamic).
  long long total_reallocations() const { return total_reallocations_; }

  const Params& params() const { return params_; }

 private:
  struct RunningJob {
    std::unique_ptr<NthLibBinding> binding;
    SimTime arrival = 0;
    int request = 0;
    bool rigid = false;
    // Latest SelfAnalyzer measurement, for the time-series sampler.
    double last_speedup = 0.0;
    double last_efficiency = 0.0;
    // Allocation-integral watermark of the last emitted time-series window.
    double sampled_integral_us = 0.0;
    SimTime last_sample = 0;
  };

  PolicyContext BuildContext(SimTime now) const;
  void OnTick(SimTime now);
  void OnQuantum(SimTime now);
  void ApplyPlan(const AllocationPlan& plan, SimTime now, const char* trigger);
  void DrainReports(SimTime now);
  void CheckCompletions(SimTime now);
  // Emits the [last_sample, now) time-series window for one job.
  void FlushAppSample(JobId job, RunningJob& running, SimTime now);
  // Emits app windows for every running job plus one machine point.
  void SampleTimeseries(SimTime now);

  Params params_;
  std::unique_ptr<SchedulingPolicy> policy_;
  Simulation* sim_;
  TraceRecorder* trace_;  // may be null
  Rng rng_;
  Machine machine_;

  std::map<JobId, RunningJob> jobs_;
  std::vector<JobId> arrival_order_;
  std::vector<PerfReport> pending_reports_;
  std::map<JobId, double> alloc_integral_us_;
  long long total_reallocations_ = 0;

  JobFinishCallback on_finish_;
  StateChangeCallback on_state_change_;
  int tick_task_ = -1;
  int quantum_task_ = -1;

  EventLog* events_ = nullptr;           // may be null
  TimeSeriesSampler* timeseries_ = nullptr;  // may be null
  std::function<int()> queue_depth_;
  SimTime next_ts_sample_ = 0;

  // Per-run instruments, resolved once from the simulation's registry.
  Registry* registry_;
  Counter* jobs_started_;
  Counter* jobs_finished_;
  Counter* reallocations_;
  Counter* plans_applied_;
  Counter* cpu_handoffs_;
  Counter* cpu_migrations_;
  Counter* perf_reports_;
  Gauge* free_cpus_gauge_;
  Histogram* report_efficiency_;
};

}  // namespace pdpa

#endif  // SRC_RM_RESOURCE_MANAGER_H_
